//! # gcm — Generic database cost models for hierarchical memory systems
//!
//! Umbrella crate re-exporting the whole workspace: a full reproduction of
//! Manegold, Boncz & Kersten, *Generic Database Cost Models for Hierarchical
//! Memory Systems* (CWI INS-R0203 / VLDB 2002).
//!
//! * [`hardware`] — the unified hardware model (paper §2): cache levels,
//!   TLBs, buffer pools, machine presets (including the paper's SGI
//!   Origin2000, Table 3).
//! * [`sim`] — the measurement substrate: a set-associative LRU cache
//!   simulator with per-level hit/miss counters and a charged-latency clock
//!   (substitute for the paper's R10000 hardware event counters).
//! * [`core`] — the paper's contribution: data regions, basic access
//!   patterns, the miss-estimation formulas (Eq 4.2–4.9), the `⊕`/`⊙`
//!   combinators with cache-state and footprint rules (§5), and cost
//!   scoring (Eq 3.1/6.1).
//! * [`engine`] — a column-oriented main-memory engine whose operators are
//!   generic over a pluggable memory backend — the cache simulator or the
//!   host's real memory — and describe themselves in the pattern language
//!   (paper Table 2); results are byte-identical across backends.
//! * [`calibrate`] — the Calibrator: recovers the hardware parameters by
//!   micro-benchmarking the memory hierarchy (paper §2.3 / `[MBK00b]`),
//!   against the simulator or — with real pointer chases — the very
//!   machine the tests run on (`calibrate::calibrate_host`).
//! * [`workload`] — deterministic data generators for the experiments.
//! * [`service`] — the cache-contention-aware query service: a plan cache
//!   keyed by (plan fingerprint, statistics epoch), a `⊙`-priced admission
//!   controller that batches queries only when the composed patterns beat
//!   serial execution, and a thread-pool executor over per-query simulated
//!   hierarchy views.
//! * [`obs`] — the observability layer: per-thread span tracing with
//!   backend counter deltas, `EXPLAIN ANALYZE` support, log-linear latency
//!   histograms with Prometheus/JSON-lines exporters, and a model-drift
//!   monitor that flags stale calibration.
//! * [`net`] — the thread-per-core network ingress: epoll shard threads
//!   over raw syscalls, a length-prefixed wire protocol, per-tenant SLO
//!   budgets enforced by `⊙`-priced sojourn projections (overload is shed
//!   fail-fast before execution), socket-level back-pressure, and an
//!   open-loop Poisson/Zipf load generator.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

pub use gcm_calibrate as calibrate;
pub use gcm_core as core;
pub use gcm_engine as engine;
pub use gcm_hardware as hardware;
pub use gcm_net as net;
pub use gcm_obs as obs;
pub use gcm_service as service;
pub use gcm_sim as sim;
pub use gcm_trie as trie;
pub use gcm_workload as workload;
