//! Fully text-driven costing: machine description and access pattern
//! both given as plain text — no Rust needed to cost a new algorithm on
//! a new machine (the paper's §7 workflow, literally as a "pattern
//! language").
//!
//! ```bash
//! cargo run --release --example cost_from_text
//! ```

use gcm::core::parse::{parse_pattern, Catalog};
use gcm::core::{CostModel, Region};
use gcm::hardware::spec_from_text;

const MACHINE: &str = "
# a laptop-class machine, as one would transcribe from a datasheet
machine Laptop @ 2400 MHz
cache L1   48KB line 64  assoc 12  seq 2   rand 5
cache L2  1280KB line 64 assoc 10  seq 10  rand 18
cache L3   12MB line 64  assoc 12  seq 30  rand 80
tlb   TLB  entries 2048  page 4KB  miss 25
";

fn main() {
    let hw = spec_from_text(MACHINE).expect("machine text parses");
    println!("machine parsed from text:\n{}", hw.characteristics_table());
    let model = CostModel::new(hw);

    // Declare the data regions once...
    let mut catalog = Catalog::new();
    catalog.add(Region::new("U", 10_000_000, 8));
    catalog.add(Region::new("V", 10_000_000, 8));
    catalog.add(Region::new("H", 33_554_432, 16));
    catalog.add(Region::new("W", 10_000_000, 16));

    // ...and cost algorithms straight from their textual descriptions.
    let candidates = [
        (
            "textbook hash join",
            "s_trav(V) ⊙ r_trav(H) ⊕ s_trav(U) ⊙ r_acc(H, 10000000) ⊙ s_trav(W)",
        ),
        (
            "merge join (pre-sorted)",
            "s_trav(U) ⊙ s_trav(V) ⊙ s_trav(W)",
        ),
        (
            "64-way partition of U",
            "s_trav(U) ⊙ nest(W, 64, s_trav, rnd)",
        ),
        ("key-only aggregation scan", "s_trav(U, u=8)"),
    ];
    println!("pattern-text costing (10M-tuple workloads):");
    for (label, text) in candidates {
        let pattern = parse_pattern(text, &catalog).expect("pattern text parses");
        let report = model.report(&pattern);
        println!("  {label:<28} {text}");
        println!("      -> T_mem = {:.1} ms", report.mem_ns / 1e6);
    }
}
