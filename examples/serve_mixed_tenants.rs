//! The serving layer end to end: a 50-query multi-tenant queue through
//! the cache-contention-aware query service.
//!
//! Three tenants share one machine (a 4-core modern SMP with an
//! SSD-backed buffer pool — the paper's §7 unified level, shared by all
//! cores): a point-lookup tenant, a scan-heavy tenant, and a join-heavy
//! tenant whose grouped join touches a hash table near the pool's
//! capacity. Arrivals are Zipf-skewed across tenants and selectivities
//! are quantized, so the 50 requests map onto a handful of distinct
//! plans — the workload a plan cache serves warm.
//!
//! What to watch:
//! * the **plan cache** optimizes each distinct plan once (hit rate
//!   ≥ 80% after warmup);
//! * the **⊙-priced admission controller** batches the streaming
//!   scan/point mix up to the core budget, but runs two heavy joins
//!   *serially* — their composed footprints would overrun the shared
//!   pool and the model prices the thrashing before it can happen;
//! * the **executor pool** measures every admitted batch on real
//!   worker threads over footprint-proportional hierarchy views, and
//!   the measured batch walls land within 40% of the ⊙ predictions;
//! * the **build registry** hands the join-heavy tenant's repeated
//!   joins one immutable hash-join build side: the first query pays for
//!   the build, every later one probes it for free, and the shared
//!   footprint is counted once in the ⊙ prices (Eq 5.3 with shared
//!   data) — watch the "shared builds … built / … reused" line.

use gcm::engine::plan::LogicalPlan;
use gcm::hardware::presets;
use gcm::service::{mix, QueryService, TenantTables};
use gcm::workload::{TenantClass, Workload};

fn main() {
    let spec = presets::with_ssd_buffer_pool(presets::modern_smp(4), 96 * 8192, 8192);
    println!("machine: {}\n", spec.name);
    let mut svc = QueryService::new(spec);
    let mut wl = Workload::new(2002);

    // --- Register each tenant's slice of the catalog. ---
    let point_dim = svc.register_table("point.D", wl.shuffled_keys(65_536), 8);
    let scan_star = wl.star_scenario(131_072, 2_048, 0);
    let scan_fact = svc.register_table("scan.F", scan_star.fact, 8);
    let join_star = wl.star_scenario(240_000, 16_000, 1);
    let join_fact = svc.register_table("join.F", join_star.fact, 8);
    let join_dim = svc.register_table("join.D", join_star.dims[0].clone(), 8);
    let tenants = [
        TenantTables {
            fact: point_dim,
            dim: point_dim,
            key_bound: 65_536,
        },
        TenantTables {
            fact: scan_fact,
            dim: scan_fact,
            key_bound: 2_048,
        },
        TenantTables {
            fact: join_fact,
            dim: join_dim,
            key_bound: 16_000,
        },
    ];
    let classes = [
        TenantClass::PointLookup,
        TenantClass::ScanHeavy,
        TenantClass::JoinHeavy,
    ];

    // --- 50 Zipf-skewed requests, submitted through the plan cache. ---
    let requests = wl.query_mix(50, &classes, 1.1);
    let mut heavy_ids = Vec::new();
    for req in &requests {
        let plan = mix::plan_for(req, &tenants[req.tenant]);
        let id = svc.submit(plan).expect("registered tables");
        if req.class == TenantClass::JoinHeavy && req.selectivity >= 0.5 {
            heavy_ids.push(id);
        }
    }
    let by_tenant = |t: usize| requests.iter().filter(|r| r.tenant == t).count();
    println!(
        "queue: 50 queries (point {}, scan {}, join {}; {} heavy joins)",
        by_tenant(0),
        by_tenant(1),
        by_tenant(2),
        heavy_ids.len()
    );

    // --- Drain: the scheduler forms batches, the pool executes them. ---
    svc.run().expect("queue drains");
    let m = svc.metrics().clone();
    println!("\nper-batch record:");
    for b in &m.batches {
        println!(
            "  size {}  predicted wall {:>8.2} ms  measured {:>8.2} ms  accuracy {:>4.2}  {:?}",
            b.size(),
            b.predicted_wall_ns / 1e6,
            b.measured_wall_ns / 1e6,
            b.accuracy(),
            b.ids,
        );
    }
    println!("\n{m}");

    // --- The claims, asserted. ---
    assert_eq!(m.queries.len(), 50);
    assert!(
        m.hit_rate() >= 0.8,
        "plan-cache hit rate {:.2} below 80%",
        m.hit_rate()
    );
    assert!(
        m.max_batch_size() > 1,
        "the scan/point mix must batch above 1"
    );
    // Measured batch walls track the ⊙ predictions within 40%.
    for b in &m.batches {
        assert!(
            (0.6..=1.4).contains(&b.accuracy()),
            "batch {:?} accuracy {:.2} out of tolerance",
            b.ids,
            b.accuracy()
        );
    }
    // Repeated joins over one dimension share a single immutable build
    // side: the first query pays for it, every later one skips it.
    assert!(
        m.builds_reused >= 1,
        "join-heavy repeats must reuse the shared build ({} built / {} reused)",
        m.builds_built,
        m.builds_reused
    );

    // --- The backoff, isolated: two heavy joins, alone in the queue. ---
    let q = LogicalPlan::scan(join_fact)
        .select_lt(8_000)
        .join(LogicalPlan::scan(join_dim))
        .group_count();
    svc.submit(q.clone()).unwrap();
    svc.submit(q).unwrap();
    let first = svc.next_batch().expect("two queries pending");
    let second = svc.next_batch().expect("one query left");
    assert_eq!(
        (first.size(), second.size()),
        (1, 1),
        "two heavy joins must serialize"
    );
    println!(
        "heavy-join pair: scheduled as {} + {} (composed footprints would overrun the pool)",
        first.size(),
        second.size()
    );
    svc.execute_batch(first).unwrap();
    svc.execute_batch(second).unwrap();
    println!("\nall service-layer claims hold ✓");
}
