//! Calibrate the host machine and emit the report as JSON.
//!
//! Runs the native calibration probes (cache-capacity/line/latency
//! sweeps, sustained-bandwidth streams, TLB and prefetch-depth
//! detection) against the real machine, prints a human-readable
//! summary, and then the whole [`gcm::calibrate::CalibrationReport`]
//! through its JSON serializer (`gcm-calibration/v1`, built on
//! [`gcm::obs::json`]) — the form worth committing next to a bench
//! artifact so later runs on the same host can be diffed.
//!
//!     cargo run --release --example host_report

fn main() {
    // Keep the sweep modest (16 MiB ceiling) so the example is quick;
    // a real calibration run would raise this past the outermost cache.
    let r = gcm::calibrate::calibrate_host(16 * 1024 * 1024);

    println!("detected {} data-cache level(s):", r.caches.len());
    for (i, c) in r.caches.iter().enumerate() {
        let bw = r
            .sustained_bw
            .get(i)
            .map_or(String::from("-"), |b| format!("{b:.2} B/ns"));
        println!(
            "  L{}: {:>8} KiB, {:>3} B lines, seq {:>6.1} ns, rand {:>6.1} ns, sustained {bw}",
            i + 1,
            c.capacity / 1024,
            c.line,
            c.seq_miss_ns,
            c.rand_miss_ns,
        );
    }
    match &r.tlb {
        Some(t) => println!(
            "  TLB: {} entries of {} KiB pages, miss {:.1} ns",
            t.entries,
            t.page / 1024,
            t.miss_ns
        ),
        None => println!("  TLB: not detected"),
    }
    println!("  prefetch depth: {}", r.prefetch_depth);

    println!("\n{}", r.to_json());
}
