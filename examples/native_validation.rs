//! Calibrate → model → measure, on *this* machine: the paper's workflow
//! end to end on real hardware.
//!
//! 1. Calibrate the host's memory hierarchy with real pointer chases
//!    and sweeps (`gcm_calibrate::calibrate_host`).
//! 2. Instantiate the cost model from the detected parameters.
//! 3. Execute query plans on the native backend (real buffers, wall
//!    clock) and compare the model's predictions with the measured
//!    walls — plus the sim backend run of the same plans, whose outputs
//!    must be byte-identical.
//!
//! ```text
//! cargo run --release --example native_validation
//! ```

use gcm_calibrate::calibrate_host;
use gcm_core::{CostModel, CpuCost};
use gcm_engine::native::calibrate_per_op_ns;
use gcm_engine::plan::{run_on, PhysicalPlan, TableDef};
use gcm_engine::planner::JoinAlgorithm;
use gcm_engine::{ExecContext, MemoryBackend, NativeBackend};
use gcm_hardware::presets;
use gcm_workload::Workload;

fn main() {
    // 1. Calibrate the running machine.
    let report = calibrate_host(16 * 1024 * 1024);
    println!("calibrated host hierarchy (timing-detected):");
    for (i, c) in report.caches.iter().enumerate() {
        println!(
            "  level {}: capacity {:>9} B, seq {:>7.2} ns, rand {:>7.2} ns",
            i + 1,
            c.capacity,
            c.seq_miss_ns,
            c.rand_miss_ns
        );
    }
    let spec = report
        .to_spec("host (calibrated)", 1_000.0)
        .expect("valid calibrated spec");
    let model = CostModel::new(spec);
    let per_op = calibrate_per_op_ns();
    println!("in-cache CPU calibration: {per_op:.3} ns/logical-op\n");

    // 2. A star-schema workload and three plans.
    let star = Workload::new(42).star_scenario(60_000, 6_000, 1);
    let tables = vec![
        TableDef::new("F", star.fact, 8),
        TableDef::new("D", star.dims[0].clone(), 8),
    ];
    let plans = [
        (
            "select+aggregate",
            PhysicalPlan::scan(0).select_lt(3_000).group_count(),
        ),
        (
            "hash join",
            PhysicalPlan::scan(0)
                .select_lt(4_000)
                .join_with(PhysicalPlan::scan(1), JoinAlgorithm::Hash)
                .group_count(),
        ),
        (
            "part. hash join (m=16)",
            PhysicalPlan::scan(0)
                .join_with(
                    PhysicalPlan::scan(1),
                    JoinAlgorithm::PartitionedHash { m: 16 },
                )
                .group_count(),
        ),
    ];

    // 3. Execute natively, compare against the calibrated model (and
    //    the sim backend for result equality).
    println!("plan                      predicted [ms]  measured [ms]   ratio   rows");
    for (name, plan) in plans {
        let mut native = ExecContext::native();
        let (run, stats) = run_on(&mut native, &plan, &tables).expect("plan executes");
        let predicted = CpuCost::per_op(per_op).eq61_ns(model.mem_ns(&run.pattern), stats.ops);
        let measured = NativeBackend::elapsed_ns(&stats.mem);

        let mut sim = ExecContext::new(presets::tiny());
        let (sim_run, _) = run_on(&mut sim, &plan, &tables).expect("plan executes");
        assert_eq!(
            native.relation_bytes(&run.output),
            sim.relation_bytes(&sim_run.output),
            "sim and native outputs must be byte-identical"
        );

        println!(
            "{name:<25} {:>13.2} {:>14.2} {:>7.2}  {:>6}",
            predicted / 1e6,
            measured / 1e6,
            predicted / measured,
            run.output.n()
        );
    }
    println!("\noutputs byte-identical across sim and native backends ✓");
}
