//! The network ingress tier end to end: a TCP server in front of the
//! query service, driven to 2× its measured capacity by the open-loop
//! load generator.
//!
//! `NetServer::start` warms the plan cache, binds a loopback listener,
//! and spawns the thread-per-core epoll shards; the load generator
//! then offers a Zipf-skewed three-tenant mix at twice the rate the
//! machine can serve, with Poisson arrivals timed on the sender's
//! clock (coordinated-omission-free: a request's latency starts at its
//! *scheduled* arrival, so queueing under overload is charged to the
//! server, not hidden in the sender).
//!
//! What to watch:
//! * with **no SLO**, every request is eventually served — but the
//!   backlog grows for the whole run and the tail latencies are pure
//!   queue time;
//! * with a **per-class sojourn budget**, the `⊙`-priced shed gate
//!   projects each query's sojourn at arrival and refuses the doomed
//!   ones once (commit-once, fail-fast): `SHED` responses come back in
//!   milliseconds, and the served tail stays near the budget instead
//!   of the backlog depth.

#[cfg(not(target_os = "linux"))]
fn main() {
    eprintln!("net_demo needs the Linux epoll ingress tier; skipping");
}

#[cfg(target_os = "linux")]
fn main() {
    use gcm::hardware::presets;
    use gcm::net::loadgen::{self, LoadReport, LoadgenConfig};
    use gcm::net::{NetConfig, NetServer};
    use gcm::service::{plan_for, QueryService, ServiceConfig, SloPolicy, TenantTables};
    use gcm::workload::{TenantClass, Workload};
    use std::time::{Duration, Instant};

    const REQUESTS: usize = 96;
    const TENANTS: [TenantClass; 3] = [
        TenantClass::PointLookup,
        TenantClass::ScanHeavy,
        TenantClass::JoinHeavy,
    ];

    fn service(slo: Option<SloPolicy>) -> (QueryService, Vec<TenantTables>) {
        let cfg = ServiceConfig {
            slo,
            ..ServiceConfig::default()
        };
        let mut svc = QueryService::with_config(presets::modern_smp(4), cfg);
        let mut wl = Workload::new(2002);
        let star = wl.star_scenario(30_000, 2_000, 1);
        let fact = svc.register_table("demo.F", star.fact, 8);
        let dim = svc.register_table("demo.D", star.dims[0].clone(), 8);
        let t = TenantTables {
            fact,
            dim,
            key_bound: 2_000,
        };
        (svc, vec![t, t, t])
    }

    // Measure the in-process ceiling (closed loop, plan-cache warm).
    let (mut svc, tenants) = service(None);
    let mix = Workload::new(7).query_mix(REQUESTS, &TENANTS, 0.99);
    let (mut qps, mut solo_ns) = (0.0, 0.0);
    for _ in 0..2 {
        let t0 = Instant::now();
        for req in &mix {
            svc.submit(plan_for(req, &tenants[req.tenant]))
                .expect("plan");
        }
        while let Some(batch) = svc.next_batch() {
            svc.execute_batch_native(batch).expect("native execution");
        }
        let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
        qps = REQUESTS as f64 / elapsed;
        solo_ns = elapsed * 1e9 / REQUESTS as f64;
    }
    println!(
        "in-process ceiling: {qps:.0} qps (mean solo {:.2} ms)\n",
        solo_ns / 1e6
    );

    let drive = |slo: Option<SloPolicy>| -> LoadReport {
        let (svc, tenants) = service(slo);
        let server = NetServer::start(svc, tenants, NetConfig::default()).expect("server start");
        let report = loadgen::run(
            server.addr(),
            &LoadgenConfig {
                requests: REQUESTS,
                offered_qps: 2.0 * qps,
                seed: 7,
                drain_timeout: Duration::from_secs(60),
                ..LoadgenConfig::default()
            },
        )
        .expect("load run");
        server.shutdown();
        report
    };

    let budget_ns = 40.0 * solo_ns;
    for (title, slo) in [
        ("2x overload, no SLO", None),
        ("2x overload, SLO gate", Some(SloPolicy::uniform(budget_ns))),
    ] {
        let r = drive(slo);
        println!(
            "{title}: offered {:.0} qps, achieved {:.0} qps | served {} shed {} lost {}",
            r.offered_qps, r.achieved_qps, r.served, r.shed, r.lost
        );
        for c in &r.classes {
            if c.sent == 0 {
                continue;
            }
            println!(
                "  {:>12}: served {:>3} (p99 {:>8.2} ms)  shed {:>3} (p99 {:>8.2} ms)",
                c.class.label(),
                c.served,
                c.served_latency.p99() as f64 / 1e6,
                c.shed,
                c.shed_latency.p99() as f64 / 1e6,
            );
        }
        if slo.is_some() {
            println!("  budget per class: {:.2} ms", budget_ns / 1e6);
        }
        println!();
    }
}
