//! Quickstart: describe an algorithm's memory access in the pattern
//! language and get its predicted cost on a described machine — then
//! execute the real algorithm on the simulator and compare.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use gcm::core::{library, CostModel, Region};
use gcm::engine::{ops, ExecContext};
use gcm::hardware::presets;
use gcm::workload::Workload;

fn main() {
    // 1. A machine: the paper's SGI Origin2000 (Table 3).
    let hw = presets::origin2000();
    println!("machine under the model:\n{}", hw.characteristics_table());

    // 2. Data regions: two 1M-tuple tables, a hash table, an output.
    let n = 1_000_000u64;
    let u = Region::new("U", n, 8);
    let v = Region::new("V", n, 8);
    let h = Region::new("H", (2 * n).next_power_of_two(), 16);
    let w = Region::new("W", n, 16);

    // 3. The algorithm as an access pattern (paper Table 2)...
    let pattern = library::hash_join(u, v, h, w);
    println!("hash_join(U, V) → W in the pattern language:\n    {pattern}\n");

    // ...and its cost, derived automatically (Eq 4.x + 5.x + 3.1).
    let model = CostModel::new(hw.clone());
    let report = model.report(&pattern);
    println!("predicted cost:\n{report}\n");

    // 4. Validate against the simulator: run a real hash join (scaled to
    //    256K tuples so this example finishes in about a second).
    let n_run = 262_144u64;
    let mut ctx = ExecContext::new(hw.clone());
    let (uk, vk) = Workload::new(1).join_pair(n_run as usize);
    let u_rel = ctx.relation_from_keys("U", &uk, 8);
    let v_rel = ctx.relation_from_keys("V", &vk, 8);
    let (out, stats) = ctx.measure(|c| ops::hash::hash_join(c, &u_rel, &v_rel, "W", 16));
    println!(
        "executed for real over the simulator ({n_run} tuples, {} matches):",
        out.n()
    );

    let h_run = Region::new("H", (2 * n_run).next_power_of_two(), 16);
    let run_pattern =
        ops::hash::hash_join_pattern(u_rel.region(), v_rel.region(), &h_run, out.region());
    let run_report = model.report(&run_pattern);
    println!("  level   measured misses   predicted misses");
    for (i, lvl) in hw.levels().iter().enumerate() {
        let m = stats.mem.levels[i].seq_misses + stats.mem.levels[i].rand_misses;
        println!(
            "  {:<7} {:>15} {:>18.0}",
            lvl.name,
            m,
            run_report.levels[i].misses()
        );
    }
    println!(
        "  memory time: measured {:.1} ms, predicted {:.1} ms",
        stats.mem.clock_ns / 1e6,
        run_report.mem_ns / 1e6
    );
}
