//! The whole-plan optimizer end to end (paper §1 grown to §6's whole
//! queries): a four-operator, two-join star query
//!
//! ```text
//! γ_count( σ(F.key < t) ⋈ D1 ⋈ D2 )
//! ```
//!
//! The optimizer enumerates complete physical plans (join algorithms
//! per node), prices each as **one** composed pattern — Eq 5.2 cache-
//! state threading and Eq 5.3 footprint sharing included — and picks a
//! winner. Every enumerated plan is then executed for real on the
//! Origin2000 simulator, and the chosen plan must land within 25% of
//! the measured best.
//!
//! ```bash
//! cargo run --release --example optimize_query
//! ```

use gcm::core::CostModel;
use gcm::engine::plan::{execute, LogicalPlan, Optimizer, TableStats};
use gcm::engine::planner::DEFAULT_PLANNER_PER_OP_NS;
use gcm::engine::ExecContext;
use gcm::hardware::presets;
use gcm::workload::Workload;

const FACT_N: usize = 40_000;
const DIM_N: usize = 10_000;
const SELECTIVITY: f64 = 0.5;

fn main() {
    let spec = presets::origin2000();
    let model = CostModel::new(spec.clone());

    // The data: a star scenario with two dimensions over one key domain.
    let star = Workload::new(42).star_scenario(FACT_N, DIM_N, 2);
    let threshold = star.threshold(SELECTIVITY);

    // The query and its logical statistics (the §1 oracle).
    let logical = LogicalPlan::scan(0)
        .select_lt(threshold)
        .join(LogicalPlan::scan(1))
        .join(LogicalPlan::scan(2))
        .group_count();
    let stats = [
        TableStats::uniform(FACT_N as u64, 8, DIM_N as u64, false),
        TableStats::key_column(DIM_N as u64, 8, false),
        TableStats::key_column(DIM_N as u64, 8, false),
    ];
    println!("query: {logical}");
    println!(
        "tables: F = {FACT_N} FK tuples over [0, {DIM_N}), D1/D2 = {DIM_N} PK tuples; \
         selectivity {SELECTIVITY}\n"
    );

    // Enumerate and price whole plans.
    let plans = Optimizer::new(&model)
        .enumerate(&logical, &stats)
        .expect("the star query plans");
    assert!(
        plans.len() >= 4,
        "expected ≥ 4 enumerated plans, got {}",
        plans.len()
    );

    // Execute every enumerated plan on a fresh simulator instance.
    println!(
        "{} physical plans, predicted vs simulator-measured:",
        plans.len()
    );
    let mut measured_ns = Vec::new();
    for (i, planned) in plans.iter().enumerate() {
        let mut ctx = ExecContext::new(spec.clone());
        let tables = [
            ctx.relation_from_keys("F", &star.fact, 8),
            ctx.relation_from_keys("D1", &star.dims[0], 8),
            ctx.relation_from_keys("D2", &star.dims[1], 8),
        ];
        let (run, stats) = {
            let mut out = None;
            let (_, s) = ctx.measure(|c| {
                out = Some(execute(c, &planned.plan, &tables).expect("plan executes"));
            });
            (out.unwrap(), s)
        };
        let measured = stats.total_ns(DEFAULT_PLANNER_PER_OP_NS);
        measured_ns.push(measured);
        println!(
            "  [{i}]{} predicted {:>9.2} ms   measured {:>9.2} ms   ({} groups out)",
            if i == 0 { " (chosen)" } else { "         " },
            planned.total_ns() / 1e6,
            measured / 1e6,
            run.output.n()
        );
        println!("       {}", planned.plan);
    }

    // The model-guided choice must be measurably near-best.
    let chosen = measured_ns[0];
    let best = measured_ns.iter().copied().fold(f64::INFINITY, f64::min);
    let best_idx = measured_ns.iter().position(|&m| m == best).unwrap();
    println!(
        "\nchosen plan measured {:.2} ms; best enumerated (plan [{best_idx}]) measured {:.2} ms \
         ({:+.1}% vs best)",
        chosen / 1e6,
        best / 1e6,
        (chosen / best - 1.0) * 100.0
    );
    assert!(
        chosen <= 1.25 * best,
        "chosen plan ({chosen} ns) must be within 25% of the measured best ({best} ns)"
    );
    println!("the model-guided choice is within 25% of the measured best ✓");
}
