//! The unified-model claim (paper §2.3, §7): viewing the buffer pool as
//! one more cache level, disk I/O cost falls out of the *same* formulas.
//!
//! This example extends the Origin2000 with a buffer-pool level (64 MB
//! of memory caching 8 KB disk pages) and prices table scans and joins
//! whose data exceeds main memory — the classic sequential-vs-random I/O
//! trade-off appears without any I/O-specific modelling.
//!
//! ```bash
//! cargo run --release --example io_cost
//! ```

use gcm::core::{library, CostModel, Pattern, Region};
use gcm::hardware::{mib, presets};

fn main() {
    let pool = mib(64);
    let hw = presets::with_buffer_pool(presets::origin2000(), pool, 8192);
    println!(
        "machine with the buffer pool as cache level N+1:\n{}",
        hw.characteristics_table()
    );
    let model = CostModel::new(hw.clone());

    // A 512 MB table: 8× the buffer pool.
    let n = 64 * 1024 * 1024u64;
    let table = Region::new("T", n, 8);

    // Sequential scan: pays one sequential page fault per page.
    let scan = model.report(&library::scan(table.clone()));
    let bp_scan = scan.level("BP").expect("buffer pool level");
    println!("sequential scan of a 512 MB table:");
    println!(
        "  page faults: {:.0} (all sequential), I/O time {:.1} s, total {:.1} s\n",
        bp_scan.misses(),
        bp_scan.ns / 1e9,
        scan.mem_ns / 1e9
    );

    // Random traversal of the same table: every page fault pays a seek.
    let rand = model.report(&Pattern::r_trav(table.clone()));
    let bp_rand = rand.level("BP").expect("buffer pool level");
    println!("random traversal of the same table:");
    println!(
        "  page faults: {:.0} (random), I/O time {:.1} s, total {:.1} s",
        bp_rand.misses(),
        bp_rand.ns / 1e9,
        rand.mem_ns / 1e9
    );
    println!(
        "  random/sequential I/O cost ratio: {:.0}x — the classic disk trade-off,\n  \
         produced by the same Eq 4.4 that modelled memory above\n",
        bp_rand.ns / bp_scan.ns
    );

    // Join strategy flips when the hash table spills to disk: a
    // partitioned hash join keeps each partition's table memory-resident.
    let u = Region::new("U", n, 8);
    let v = Region::new("V", n, 8);
    let h = Region::new("H", (2 * n).next_power_of_two(), 16);
    let w = Region::new("W", n, 16);
    let plain = model.mem_ns(&library::hash_join(u.clone(), v.clone(), h, w.clone()));
    // 64 partitions: per-partition hash table = 32 MB < the 64 MB pool.
    let parted = model.mem_ns(&library::partitioned_hash_join_uniform(u, v, w, 64, 16));
    println!("hash join of two 512 MB tables (hash table 8x the buffer pool):");
    println!(
        "  plain hash join:        {:>10.1} s   (random page faults per probe)",
        plain / 1e9
    );
    println!(
        "  partitioned hash join:  {:>10.1} s   (partitions memory-resident)",
        parted / 1e9
    );
    println!(
        "  => the optimizer picks partitioning, exactly as it did for L2 —\n  \
         one model, every level of the hierarchy."
    );
}
