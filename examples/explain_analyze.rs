//! EXPLAIN ANALYZE: per-plan-node predicted vs measured cost.
//!
//! Optimizes a two-join star query, executes it over the cache
//! simulator with the node tracer attached, and prints the annotated
//! tree: every operator node carries the model's Eq 6.1 prediction
//! (memory time from the node's access pattern, priced with the cache
//! state its upstream nodes left behind, plus the CPU charge), the
//! measured charged time from the simulator's counters, their ratio,
//! and the per-cache-level predicted vs measured miss breakdown. The
//! same report also feeds a model-drift monitor and serializes to
//! JSON.
//!
//! On the native backend the measured column is wall-clock ns and the
//! miss rows disappear (real hardware does not report which level
//! satisfied a load) — the text/JSON shape is the same.
//!
//!     cargo run --release --example explain_analyze

use gcm::core::{CostModel, CpuCost};
use gcm::engine::plan::{explain_analyze, LogicalPlan, Optimizer, TableStats};
use gcm::engine::ExecContext;
use gcm::hardware::presets;
use gcm::obs::DriftMonitor;
use gcm::workload::Workload;

fn main() {
    let spec = presets::tiny_smp(4);
    let mut wl = Workload::new(7);
    let star = wl.star_scenario(30_000, 2_000, 2);

    // σ(F.key < 500) ⋈ D0 ⋈ D1, grouped count on top: two joins.
    let logical = LogicalPlan::scan(0)
        .select_lt(500)
        .join(LogicalPlan::scan(1))
        .join(LogicalPlan::scan(2))
        .group_count();
    let stats = [
        TableStats::uniform(30_000, 8, 2_000, false),
        TableStats::key_column(2_000, 8, false),
        TableStats::key_column(2_000, 8, false),
    ];

    let model = CostModel::new(spec.thread_view(1));
    let planned = Optimizer::new(&model)
        .optimize(&logical, &stats)
        .expect("plan optimizes");
    println!("physical plan: {}\n", planned.plan);

    let mut ctx = ExecContext::new(spec);
    let tables = [
        ctx.relation_from_keys("F", &star.fact, 8),
        ctx.relation_from_keys("D0", &star.dims[0], 8),
        ctx.relation_from_keys("D1", &star.dims[1], 8),
    ];
    let cpu = CpuCost::default_planner();
    let (run, report) = explain_analyze(
        &mut ctx,
        &planned.plan,
        &tables,
        &model,
        &cpu,
        CpuCost::DEFAULT_PLANNER_PER_OP_NS,
    )
    .expect("plan executes");

    println!("{}", report.to_text());
    println!("output rows: {}\n", run.output.n());

    // The same per-node ratios feed the drift monitor; with an honest
    // CPU calibration nothing should be flagged.
    let drift = DriftMonitor::new();
    report.feed(&drift);
    println!(
        "drift after one honest run: recalibrate = {}",
        drift.needs_recalibration()
    );

    println!("\nJSON form:\n{}", report.to_json());
}
