//! EXPLAIN ANALYZE: per-plan-node predicted vs measured cost.
//!
//! Optimizes a two-join star query, executes it over the cache
//! simulator with the node tracer attached, and prints the annotated
//! tree: every operator node carries the model's Eq 6.1 prediction
//! (memory time from the node's access pattern, priced with the cache
//! state its upstream nodes left behind, plus the CPU charge), the
//! measured charged time from the simulator's counters, their ratio,
//! and the per-cache-level predicted vs measured miss breakdown. The
//! same report also feeds a model-drift monitor and serializes to
//! JSON.
//!
//! On the native backend the measured column is wall-clock ns, and the
//! miss rows hold real hardware counter readings (`L1d`/`LLC`/`dTLB`)
//! when the host exposes a PMU (`perf_event_paranoid` ≤ 2 or
//! `CAP_PERFMON`, and a hypervisor with a vPMU) — where it does not,
//! the rows are honestly absent and the run says why. Either way the
//! report lands in a flight-recorder ring for post-hoc dumping.
//!
//!     cargo run --release --example explain_analyze

use gcm::core::{CostModel, CpuCost};
use gcm::engine::plan::{explain_analyze, LogicalPlan, Optimizer, TableStats};
use gcm::engine::ExecContext;
use gcm::hardware::presets;
use gcm::obs::{DriftMonitor, FlightRecorder};
use gcm::workload::Workload;

fn main() {
    let spec = presets::tiny_smp(4);
    let mut wl = Workload::new(7);
    let star = wl.star_scenario(30_000, 2_000, 2);

    // σ(F.key < 500) ⋈ D0 ⋈ D1, grouped count on top: two joins.
    let logical = LogicalPlan::scan(0)
        .select_lt(500)
        .join(LogicalPlan::scan(1))
        .join(LogicalPlan::scan(2))
        .group_count();
    let stats = [
        TableStats::uniform(30_000, 8, 2_000, false),
        TableStats::key_column(2_000, 8, false),
        TableStats::key_column(2_000, 8, false),
    ];

    let model = CostModel::new(spec.thread_view(1));
    let planned = Optimizer::new(&model)
        .optimize(&logical, &stats)
        .expect("plan optimizes");
    println!("physical plan: {}\n", planned.plan);

    let mut ctx = ExecContext::new(spec);
    let tables = [
        ctx.relation_from_keys("F", &star.fact, 8),
        ctx.relation_from_keys("D0", &star.dims[0], 8),
        ctx.relation_from_keys("D1", &star.dims[1], 8),
    ];
    let cpu = CpuCost::default_planner();
    let (run, report) = explain_analyze(
        &mut ctx,
        &planned.plan,
        &tables,
        &model,
        &cpu,
        CpuCost::DEFAULT_PLANNER_PER_OP_NS,
    )
    .expect("plan executes");

    println!("{}", report.to_text());
    println!("output rows: {}\n", run.output.n());

    // The same per-node ratios feed the drift monitor; with an honest
    // CPU calibration nothing should be flagged.
    let drift = DriftMonitor::new();
    report.feed(&drift);
    println!(
        "drift after one honest run: recalibrate = {}",
        drift.needs_recalibration()
    );

    println!("\nJSON form:\n{}", report.to_json());

    // The same EXPLAIN on host memory, with hardware performance
    // counters attached where the host allows them: the miss rows stop
    // being simulated and become PMU ground truth.
    let mut native = ExecContext::native();
    let status = native.mem.attach_pmu();
    println!("\nnative backend, PMU: {status}");
    let native_tables = [
        native.relation_from_keys("F", &star.fact, 8),
        native.relation_from_keys("D0", &star.dims[0], 8),
        native.relation_from_keys("D1", &star.dims[1], 8),
    ];
    let (_, native_report) = explain_analyze(
        &mut native,
        &planned.plan,
        &native_tables,
        &model,
        &cpu,
        CpuCost::DEFAULT_PLANNER_PER_OP_NS,
    )
    .expect("plan executes natively");
    println!("{}", native_report.to_text());

    // Both reports ride the flight-recorder ring: the last N EXPLAIN
    // ANALYZE runs, dumpable as JSON lines after the fact.
    let flight = FlightRecorder::new(8);
    flight.record("sim", &report.to_json());
    flight.record("native", &native_report.to_json());
    println!(
        "flight recorder retains {} report(s); dump is one JSON line each",
        flight.len()
    );
}
