//! The paper's motivating use-case (§1): a query optimizer choosing the
//! most suitable join algorithm from predicted physical cost.
//!
//! Ranks nested-loop, (sort+)merge, hash, and partitioned-hash joins for
//! a range of input sizes and sortedness, then executes the top two
//! candidates on the simulator to confirm the model picked the real
//! winner.
//!
//! ```bash
//! cargo run --release --example join_planner
//! ```

use gcm::core::{CostModel, Region};
use gcm::engine::planner::{rank_joins, JoinAlgorithm, JoinInputs};
use gcm::engine::{ops, ExecContext};
use gcm::hardware::presets;
use gcm::workload::Workload;

fn main() {
    let hw = presets::origin2000();
    let model = CostModel::new(hw.clone());

    for (n, sorted) in [(30_000u64, false), (1_000_000, false), (1_000_000, true)] {
        let inputs = JoinInputs {
            u: Region::new("U", n, 8),
            v: Region::new("V", n, 8),
            out_w: 16,
            out_n: n,
            u_sorted: sorted,
            v_sorted: sorted,
        };
        println!(
            "join of two {n}-tuple tables ({}):",
            if sorted { "already sorted" } else { "unsorted" }
        );
        let ranked = rank_joins(&model, &inputs);
        for c in &ranked {
            println!(
                "  {:<42} T = {:>9.1} ms  (mem {:>9.1} + cpu {:>8.1})",
                c.algorithm.to_string(),
                c.total_ns() / 1e6,
                c.mem_ns / 1e6,
                c.cpu_ns / 1e6
            );
        }
        println!();
    }

    // Execute the two fastest candidates of the unsorted 256K case and
    // check the model's ranking against simulated reality.
    let n = 262_144u64;
    let inputs = JoinInputs {
        u: Region::new("U", n, 8),
        v: Region::new("V", n, 8),
        out_w: 16,
        out_n: n,
        u_sorted: false,
        v_sorted: false,
    };
    let ranked = rank_joins(&model, &inputs);
    println!("validating the top-2 prediction for n = {n} (unsorted):");
    let (uk, vk) = Workload::new(2).join_pair(n as usize);
    let mut results = Vec::new();
    for choice in ranked.iter().take(2) {
        let mut ctx = ExecContext::new(hw.clone());
        let u = ctx.relation_from_keys("U", &uk, 8);
        let v = ctx.relation_from_keys("V", &vk, 8);
        let (_, stats) = ctx.measure(|c| match &choice.algorithm {
            JoinAlgorithm::Hash => {
                ops::hash::hash_join(c, &u, &v, "W", 16);
            }
            JoinAlgorithm::PartitionedHash { m } => {
                ops::part_hash_join::part_hash_join(c, &u, &v, *m, "W", 16);
            }
            JoinAlgorithm::Merge { .. } => {
                ops::sort::quick_sort(c, &u);
                ops::sort::quick_sort(c, &v);
                ops::merge_join::merge_join(c, &u, &v, "W", 16);
            }
            JoinAlgorithm::NestedLoop => unreachable!("never ranks top-2 at this size"),
        });
        let measured_ms = stats.total_ns(4.0) / 1e6;
        println!(
            "  {:<42} predicted {:>8.1} ms   measured {:>8.1} ms",
            choice.algorithm.to_string(),
            choice.total_ns() / 1e6,
            measured_ms
        );
        results.push(measured_ms);
    }
    let agrees = results.windows(2).all(|w| w[0] <= w[1]);
    // Two candidates the model prices within ~15% of each other are a
    // declared tie: either may win on a given run.
    let near_tie = ranked[1].total_ns() / ranked[0].total_ns() < 1.15;
    println!(
        "model ranking confirmed by simulation: {}",
        match (agrees, near_tie) {
            (true, _) => "yes",
            (false, true) => "near-tie (predicted within 15%; measured order within noise)",
            (false, false) => "NO",
        }
    );
}
