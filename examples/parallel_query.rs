//! The multi-core model end to end: DOP as a plan dimension.
//!
//! On an 8-core commodity machine (private L1/L2, shared 32 MB L3) the
//! optimizer enumerates a degree of parallelism per stage, pricing a
//! DOP-`d` stage as the `⊙`-composition of `d` per-thread patterns on
//! the shared level (Eq 5.3 across cores) while private levels see only
//! their own thread. Three things must fall out:
//!
//! 1. a large partition-parallel hash join earns DOP > 1;
//! 2. a cache-resident join stays at DOP 1 (the thread-spawn charge
//!    cannot be amortised);
//! 3. with the fan-out pinned low, scaling DOP stops paying once the
//!    ⊙-composed footprint (d concurrent partition-sized hash tables)
//!    blows past the shared L3 — the optimizer backs off to the
//!    configuration that keeps the composed footprint inside the level.
//!
//! ```bash
//! cargo run --release --example parallel_query
//! ```

use gcm::core::{CacheState, CostModel, Region};
use gcm::engine::parallel::par_hash_join_patterns;
use gcm::engine::plan::{LogicalPlan, Optimizer, TableStats};
use gcm::engine::planner::JoinAlgorithm;
use gcm::hardware::presets;

const BIG_N: u64 = 4_000_000;
const SMALL_N: u64 = 512;

fn join_stats(n: u64) -> Vec<TableStats> {
    vec![
        TableStats::key_column(n, 8, false),
        TableStats::key_column(n, 8, false),
    ]
}

fn main() {
    let spec = presets::modern_smp(8);
    let model = CostModel::new(spec.clone());
    println!("{}", spec.characteristics_table());

    let q = LogicalPlan::scan(0).join(LogicalPlan::scan(1));

    // 1. The big join: the optimizer should parallelise it.
    let plans = Optimizer::new(&model)
        .with_beam(12)
        .enumerate(&q, &join_stats(BIG_N))
        .expect("plans enumerate");
    println!("big join ({BIG_N} ⋈ {BIG_N} rows) — top plans (predicted elapsed):");
    for p in plans.iter().take(5) {
        println!(
            "  {:>10.2} ms  DOP {}  {}",
            p.total_ns() / 1e6,
            p.plan.max_dop(),
            p.plan
        );
    }
    let best = &plans[0];
    assert!(
        best.plan.max_dop() > 1,
        "the big join must earn DOP > 1, got {}",
        best.plan
    );
    assert!(
        matches!(
            best.plan.join_algorithms()[0],
            JoinAlgorithm::PartitionedHash { .. }
        ),
        "expected a partition-parallel hash join, got {}",
        best.plan
    );
    let serial = plans
        .iter()
        .find(|p| p.plan.max_dop() == 1)
        .expect("a serial alternative survives the beam");
    println!(
        "  chosen DOP {} is predicted {:.1}x faster than the best serial plan\n",
        best.plan.max_dop(),
        serial.total_ns() / best.total_ns()
    );

    // 2. The cache-resident join: parallelism cannot be amortised.
    let small = Optimizer::new(&model)
        .optimize(&q, &join_stats(SMALL_N))
        .expect("small join plans");
    println!(
        "cache-resident join ({SMALL_N} ⋈ {SMALL_N} rows): chosen {:>8.1} µs  DOP {}  {}",
        small.total_ns() / 1e3,
        small.plan.max_dop(),
        small.plan
    );
    assert_eq!(
        small.plan.max_dop(),
        1,
        "a cache-resident join must stay serial"
    );

    // 3. Backoff: pin the fan-out to m = 8 for *every* DOP, so each
    // partition's hash table is ~2·N/8 16-byte entries (~16 MB at
    // N = 4M) — half the shared L3 on its own. The ⊙-composed footprint
    // of d concurrent threads overruns the level d-fold, so the DOP
    // sweep flattens: past the blow-out, extra threads buy much less
    // than their linear share.
    println!(
        "\nDOP sweep with fan-out pinned at m = 8 (per-partition table ≈ half the shared L3):"
    );
    let u = Region::new("U", BIG_N, 8);
    let v = Region::new("V", BIG_N, 8);
    let w = Region::new("W", BIG_N, 16);
    let mut walls = Vec::new();
    for dop in [1u64, 2, 4, 8] {
        let up = Region::new("Up", BIG_N, 8);
        let vp = Region::new("Vp", BIG_N, 8);
        let threads = par_hash_join_patterns(&u, &v, &w, &up, &vp, 8, dop);
        let par = model.advance_parallel(&threads, &mut model.staged(&CacheState::cold()));
        println!(
            "  DOP {dop}: predicted wall {:>8.2} ms  (speedup {:.2}x)",
            par.wall_ns / 1e6,
            walls.first().copied().unwrap_or(par.wall_ns) / par.wall_ns
        );
        walls.push(par.wall_ns);
    }
    let speedup8 = walls[0] / walls[3];
    println!(
        "  8 threads on a blown shared level reach only {speedup8:.2}x — \
         far from the 8x that private levels alone would promise."
    );
    assert!(
        speedup8 < 5.0,
        "shared-L3 contention must cap the pinned-fanout speedup, got {speedup8:.2}x"
    );

    // The optimizer's answer to the blow-out: a fan-out that keeps every
    // thread's table cache-sized — its chosen plan at full DOP must beat
    // the pinned-fanout DOP-8 stage outright.
    assert!(
        best.mem_ns < walls[3],
        "the chosen plan ({:.2} ms) must beat the blown m=8 DOP-8 stage ({:.2} ms)",
        best.mem_ns / 1e6,
        walls[3] / 1e6
    );
    println!(
        "\nthe optimizer instead picks {} — composed footprint kept inside the \
         shared level, predicted {:.2} ms ✓",
        best.plan,
        best.total_ns() / 1e6
    );
}
