//! The full workflow of the paper, end to end: *calibrate* an unknown
//! machine, *instantiate* the cost model with the measured parameters,
//! and *predict* — without ever reading the machine's real
//! configuration (paper §2.3/§7: "Adaptation of the model to a specific
//! hardware is done by instantiating the parameters with the respective
//! values of the very hardware").
//!
//! ```bash
//! cargo run --release --example calibrate_then_model
//! ```

use gcm::calibrate::{comparison_table, Calibrator};
use gcm::core::{library, CostModel, Region};
use gcm::hardware::presets;

fn main() {
    // The "unknown" machine. Only the Calibrator gets to touch it.
    let secret = presets::origin2000();

    println!("step 1 — calibrate (blind micro-benchmarks):\n");
    let mut cal = Calibrator::new(secret.clone(), 16 * 1024 * 1024);
    let report = cal.run();
    println!("{}", comparison_table(&secret, &report));

    println!("step 2 — build a hardware description from the measurements:\n");
    let calibrated = report
        .to_spec("calibrated machine", secret.cpu_mhz)
        .expect("calibration yields a valid spec");
    println!("{}", calibrated.characteristics_table());

    println!("step 3 — predict with both and compare:\n");
    let truth = CostModel::new(secret);
    let measured = CostModel::new(calibrated);
    let n = 1_000_000u64;
    let mk = |name: &str| -> (String, f64, f64) {
        let u = Region::new("U", n, 8);
        let v = Region::new("V", n, 8);
        let h = Region::new("H", (2 * n).next_power_of_two(), 16);
        let w = Region::new("W", n, 16);
        let p = match name {
            "quick_sort" => library::quick_sort(u),
            "merge_join" => library::merge_join(u, v, w),
            "hash_join" => library::hash_join(u, v, h, w),
            "partition(64)" => library::partition(u, w, 64),
            _ => unreachable!(),
        };
        (
            name.to_string(),
            truth.mem_ns(&p) / 1e6,
            measured.mem_ns(&p) / 1e6,
        )
    };
    println!("operator           T_mem true-spec    T_mem calibrated   deviation");
    for name in ["quick_sort", "merge_join", "hash_join", "partition(64)"] {
        let (name, t, m) = mk(name);
        println!(
            "{name:<18} {t:>12.1} ms {m:>15.1} ms {:>10.1}%",
            (m / t - 1.0) * 100.0
        );
    }
    println!("\nthe calibrated model reproduces the true-spec predictions — the\nmodel needs no privileged knowledge of the hardware.");
}
