//! Tuning the partitioning fan-out with the cost model (the Figure-7d
//! decision): pick `m` large enough that partitions fit the cache, but
//! below the TLB/L1 cliffs — and reach for multi-pass radix clustering
//! when one pass cannot do both.
//!
//! ```bash
//! cargo run --release --example partition_tuning
//! ```

use gcm::core::{CostModel, Region};
use gcm::engine::ops::radix::radix_partition_pattern;
use gcm::engine::planner::rank_partition_fanouts;
use gcm::engine::{ops, ExecContext};
use gcm::hardware::presets;
use gcm::workload::Workload;

fn main() {
    let hw = presets::origin2000();
    let model = CostModel::new(hw.clone());
    let n = 2 * 1024 * 1024u64; // 16 MB table
    let input = Region::new("U", n, 8);

    // 1. Single-pass fan-out sweep, priced by the model.
    let candidates: Vec<u64> = (1..=20).map(|i| 1u64 << i).collect();
    println!("single-pass partitioning of a 16 MB table — model prices per fan-out:");
    let ranked = rank_partition_fanouts(&model, &input, &candidates);
    let mut by_m = ranked.clone();
    by_m.sort_by_key(|&(m, _)| m);
    for (m, ns) in &by_m {
        let marker = match *m {
            64 => "  <- TLB entries",
            1024 => "  <- L1 lines",
            32768 => "  <- L2 lines",
            _ => "",
        };
        println!("  m = {m:>8}: {:>8.1} ms{marker}", ns / 1e6);
    }
    println!("cheapest fan-out: m = {}\n", ranked[0].0);

    // 2. Reaching 4096 clusters: one pass (past the cliffs) vs two radix
    //    passes of 64 — model and simulator agree.
    let w = Region::new("W", n, 8);
    let single = model.mem_ns(&radix_partition_pattern(&input, &w, 12, 1));
    let multi = model.mem_ns(&radix_partition_pattern(&input, &w, 12, 2));
    println!("reaching 4096 clusters (12 radix bits):");
    println!(
        "  predicted: 1 pass x 4096-way = {:.1} ms, 2 passes x 64-way = {:.1} ms",
        single / 1e6,
        multi / 1e6
    );

    let n_run = 524_288u64; // 4 MB table keeps this example fast
    let keys = Workload::new(3).shuffled_keys(n_run as usize);
    let mut measured = Vec::new();
    for passes in [1u32, 2] {
        let mut ctx = ExecContext::new(hw.clone());
        let rel = ctx.relation_from_keys("U", &keys, 8);
        let (_, stats) = ctx.measure(|c| {
            ops::radix::radix_partition(c, &rel, 12, passes, "R");
        });
        measured.push(stats.mem.clock_ns / 1e6);
    }
    println!(
        "  measured ({n_run} tuples): 1 pass = {:.1} ms, 2 passes = {:.1} ms",
        measured[0], measured[1]
    );
    println!(
        "  multi-pass radix clustering wins: {}",
        if measured[1] < measured[0] && multi < single {
            "confirmed"
        } else {
            "NO"
        }
    );
}
