//! A single level of the memory hierarchy (paper §2.1, Table 1).

use std::fmt;

/// Cache placement policy: to how many distinct lines may a given memory
/// address be mapped (paper §2.1, "Associativity").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Associativity {
    /// `A = 1`: each address maps to exactly one line. Cheapest lookup,
    /// most conflict misses.
    DirectMapped,
    /// `A = n`-way set associative: an address may be placed in any of `n`
    /// candidate lines of its set; LRU picks the victim.
    Ways(u32),
    /// `A = #`: any address may occupy any line; no conflict misses, only
    /// compulsory and capacity misses remain. TLBs are usually fully
    /// associative.
    Full,
}

impl Associativity {
    /// Resolve the associativity to a concrete number of ways for a cache
    /// with `lines` total lines.
    pub fn ways(&self, lines: u64) -> u64 {
        match self {
            Associativity::DirectMapped => 1,
            Associativity::Ways(n) => u64::from(*n).min(lines.max(1)),
            Associativity::Full => lines.max(1),
        }
    }
}

impl fmt::Display for Associativity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Associativity::DirectMapped => write!(f, "direct-mapped"),
            Associativity::Ways(n) => write!(f, "{n}-way"),
            Associativity::Full => write!(f, "fully-associative"),
        }
    }
}

/// What kind of hierarchy level this is. The cost formulas are identical for
/// all kinds (that is the point of the unified model); the kind only
/// controls a few second-order behaviours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LevelKind {
    /// An ordinary data cache (L1, L2, L3, ...).
    Cache,
    /// A translation-lookaside buffer. Its "line size" is the memory page
    /// size; there is no distinction between sequential and random latency,
    /// and a TLB miss transfers no data (paper §2.2).
    Tlb,
    /// Main memory viewed as a cache for secondary storage: the buffer pool
    /// of a disk-resident database. Line size is the disk page size; the
    /// sequential/random latency split models sequential vs. seek-bound I/O
    /// (paper §2.3 and §7).
    BufferPool,
}

impl fmt::Display for LevelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LevelKind::Cache => write!(f, "cache"),
            LevelKind::Tlb => write!(f, "TLB"),
            LevelKind::BufferPool => write!(f, "buffer-pool"),
        }
    }
}

/// Is a hierarchy level private to one core or shared by all of them?
///
/// The paper's machines are single-CPU, so every level is effectively
/// private. On a multi-core machine the distinction drives the
/// concurrent-execution rule (§5.2) *across threads*: patterns running on
/// different cores compete for a [`Shared`](Sharing::Shared) level exactly
/// like the paper's `⊙`-composed patterns compete for one cache, while a
/// [`Private`](Sharing::Private) level sees only its own core's pattern.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Sharing {
    /// One instance per core (typical for L1/L2 and TLBs).
    #[default]
    Private,
    /// A single instance serving all cores (typical for the LLC, and for
    /// main memory viewed as a buffer pool).
    Shared,
}

impl fmt::Display for Sharing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sharing::Private => write!(f, "private"),
            Sharing::Shared => write!(f, "shared"),
        }
    }
}

/// One level of the memory hierarchy, characterised by the parameters of the
/// paper's Table 1.
///
/// The latencies stored here are *miss* latencies `l_i` (the paper's
/// `λ_{i+1}` dualism in §2.3): the extra time charged when an access misses
/// in this level and has to be served by the next one. L1 *access* latency
/// is considered part of the pure CPU cost (paper §2.2) and does not appear.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheLevel {
    /// Human-readable name, e.g. `"L1"`, `"L2"`, `"TLB"`.
    pub name: String,
    /// What kind of level this is.
    pub kind: LevelKind,
    /// Capacity `C_i` in bytes.
    pub capacity: u64,
    /// Line (block) size `B_i` in bytes. For a TLB this is the page size.
    pub line: u64,
    /// Associativity `A_i`.
    pub assoc: Associativity,
    /// Sequential miss latency `l_s,i` in nanoseconds: cost of a miss within
    /// a line-adjacent (EDO-friendly) access stream.
    pub seq_miss_ns: f64,
    /// Random miss latency `l_r,i` in nanoseconds: cost of a miss at an
    /// unpredictable address.
    pub rand_miss_ns: f64,
    /// Private-per-core or shared-across-cores. Irrelevant (and
    /// conventionally [`Sharing::Private`]) on single-core machines.
    pub sharing: Sharing,
}

impl CacheLevel {
    /// Number of lines `#_i = C_i / B_i`.
    pub fn lines(&self) -> u64 {
        self.capacity / self.line
    }

    /// Sequential miss bandwidth `b_s,i = B_i / l_s,i` in bytes/ns (= GB/s).
    pub fn seq_bandwidth(&self) -> f64 {
        self.line as f64 / self.seq_miss_ns
    }

    /// Random miss bandwidth `b_r,i = B_i / l_r,i` in bytes/ns (= GB/s).
    pub fn rand_bandwidth(&self) -> f64 {
        self.line as f64 / self.rand_miss_ns
    }

    /// Number of sets for the set-associative organisation.
    pub fn sets(&self) -> u64 {
        let lines = self.lines().max(1);
        lines / self.assoc.ways(lines).max(1)
    }

    /// A scaled copy of this level with only `1/denom` of the capacity (and
    /// hence of the lines) available. Used by the concurrent-execution rule
    /// (paper §5.2): patterns executed concurrently divide the cache among
    /// themselves proportionally to their footprints.
    ///
    /// `num/denom` is the fraction of the cache granted; line size,
    /// associativity and latencies are unchanged.
    pub fn scaled(&self, num: f64, denom: f64) -> CacheLevel {
        debug_assert!(num > 0.0 && denom > 0.0);
        let frac = (num / denom).clamp(0.0, 1.0);
        let mut scaled = self.clone();
        // Keep at least one line so the formulas stay well-defined.
        let cap = ((self.capacity as f64) * frac).round() as u64;
        scaled.capacity = cap.max(self.line);
        scaled
    }

    /// True if this level distinguishes sequential from random miss latency.
    pub fn distinguishes_seq_rand(&self) -> bool {
        (self.seq_miss_ns - self.rand_miss_ns).abs() > f64::EPSILON
    }
}

impl fmt::Display for CacheLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}): C={} B, B={} B, #={}, {}, l_s={} ns, l_r={} ns",
            self.name,
            self.kind,
            self.capacity,
            self.line,
            self.lines(),
            self.assoc,
            self.seq_miss_ns,
            self.rand_miss_ns
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CacheLevel {
        CacheLevel {
            name: "L1".into(),
            kind: LevelKind::Cache,
            capacity: 32 * 1024,
            line: 32,
            assoc: Associativity::Ways(2),
            seq_miss_ns: 8.0,
            rand_miss_ns: 24.0,
            sharing: Sharing::Private,
        }
    }

    #[test]
    fn derived_quantities() {
        let l = sample();
        assert_eq!(l.lines(), 1024);
        assert_eq!(l.sets(), 512);
        assert!((l.seq_bandwidth() - 4.0).abs() < 1e-12); // 32 B / 8 ns
        assert!((l.rand_bandwidth() - 32.0 / 24.0).abs() < 1e-12);
    }

    #[test]
    fn associativity_ways() {
        assert_eq!(Associativity::DirectMapped.ways(1024), 1);
        assert_eq!(Associativity::Ways(8).ways(1024), 8);
        assert_eq!(Associativity::Full.ways(1024), 1024);
        // Requesting more ways than lines clamps.
        assert_eq!(Associativity::Ways(16).ways(4), 4);
    }

    #[test]
    fn scaling_preserves_line_and_floor() {
        let l = sample();
        let half = l.scaled(1.0, 2.0);
        assert_eq!(half.capacity, 16 * 1024);
        assert_eq!(half.line, 32);
        // Scaling far below one line floors at one line.
        let tiny = l.scaled(1.0, 1e9);
        assert_eq!(tiny.capacity, 32);
        assert_eq!(tiny.lines(), 1);
    }

    #[test]
    fn fully_associative_has_one_set() {
        let mut l = sample();
        l.assoc = Associativity::Full;
        assert_eq!(l.sets(), 1);
    }

    #[test]
    fn display_is_informative() {
        let s = sample().to_string();
        assert!(s.contains("L1"));
        assert!(s.contains("2-way"));
    }

    #[test]
    fn sharing_defaults_to_private() {
        assert_eq!(Sharing::default(), Sharing::Private);
        assert_eq!(Sharing::Private.to_string(), "private");
        assert_eq!(Sharing::Shared.to_string(), "shared");
    }
}
