//! # Unified hardware model for hierarchical memory systems
//!
//! This crate implements Section 2 of Manegold, Boncz & Kersten,
//! *Generic Database Cost Models for Hierarchical Memory Systems*
//! (CWI INS-R0203, 2002).
//!
//! A computer's memory hardware is described as a cascading hierarchy of
//! `N` levels of caches (including TLBs, and — by the same abstraction —
//! main memory viewed as a cache for disk pages). Each level `i` is
//! characterised by a small set of parameters (the paper's Table 1):
//!
//! | symbol   | meaning                                   |
//! |----------|-------------------------------------------|
//! | `C_i`    | capacity in bytes                         |
//! | `B_i`    | cache line (block) size in bytes          |
//! | `#_i`    | number of lines, `C_i / B_i`              |
//! | `A_i`    | associativity                             |
//! | `l_s,i`  | sequential miss latency (ns)              |
//! | `l_r,i`  | random miss latency (ns)                  |
//! | `b_s,i`  | sequential miss bandwidth, `B_i / l_s,i`  |
//! | `b_r,i`  | random miss bandwidth, `B_i / l_r,i`      |
//!
//! The distinction between *sequential* and *random* miss latency models the
//! Extended-Data-Output (EDO) / prefetch behaviour of DRAM: sequential
//! access streams exploit excess bandwidth, random accesses pay the full
//! latency (paper §2.2).
//!
//! TLBs are modelled as caches whose line size is the memory page size and
//! whose capacity is `entries × page size`; they are usually fully
//! associative and have identical sequential and random latency, and a TLB
//! miss transfers no data (paper §2.2, "Address translation").
//!
//! # Quickstart
//!
//! ```
//! use gcm_hardware::presets;
//!
//! let hw = presets::origin2000();
//! assert_eq!(hw.levels().len(), 3); // L1, L2, TLB
//! let l1 = &hw.levels()[0];
//! assert_eq!(l1.lines(), 1024);
//! ```

pub mod builder;
pub mod error;
pub mod level;
pub mod presets;
pub mod spec;
pub mod stride;
pub mod text;

pub use builder::HardwareBuilder;
pub use error::HardwareError;
pub use level::{Associativity, CacheLevel, LevelKind, Sharing};
pub use spec::HardwareSpec;
pub use text::{spec_from_text, spec_to_text, TextError};

/// Convenience: kibibytes to bytes.
pub const fn kib(n: u64) -> u64 {
    n * 1024
}

/// Convenience: mebibytes to bytes.
pub const fn mib(n: u64) -> u64 {
    n * 1024 * 1024
}

/// Convenience: gibibytes to bytes.
pub const fn gib(n: u64) -> u64 {
    n * 1024 * 1024 * 1024
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_helpers() {
        assert_eq!(kib(32), 32768);
        assert_eq!(mib(4), 4 * 1024 * 1024);
        assert_eq!(gib(1), 1 << 30);
    }
}
