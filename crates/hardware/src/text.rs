//! A minimal text format for hardware descriptions, so a machine can be
//! modelled from a config file (e.g. one filled in from `/proc`, vendor
//! datasheets, or the Calibrator's output) without writing Rust.
//!
//! Format: one `machine` line, then one line per level, inside-out.
//! `#` starts a comment; blank lines are ignored.
//!
//! ```text
//! machine  My Box  @ 3000 MHz
//! cache L1   32KB line 64  assoc 8     seq 2    rand 4
//! cache L2    1MB line 64  assoc 16    seq 8    rand 14
//! tlb   TLB  entries 1536  page 4KB    miss 30
//! pool  BP   64MB  page 8KB            seq 80000 rand 6000000
//! ```
//!
//! Sizes accept `B`/`KB`/`MB`/`GB` suffixes (binary units); latencies
//! are nanoseconds; `assoc` accepts a number, `direct`, or `full`.

use crate::error::HardwareError;
use crate::level::{Associativity, CacheLevel, LevelKind};
use crate::spec::HardwareSpec;
use std::fmt;

/// A syntax error in a hardware description file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for TextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TextError {}

impl From<(usize, HardwareError)> for TextError {
    fn from((line, e): (usize, HardwareError)) -> TextError {
        TextError {
            line,
            message: e.to_string(),
        }
    }
}

fn parse_bytes(tok: &str, line: usize) -> Result<u64, TextError> {
    let t = tok.trim().to_ascii_uppercase();
    let (num, mult) = if let Some(n) = t.strip_suffix("GB") {
        (n, 1u64 << 30)
    } else if let Some(n) = t.strip_suffix("MB") {
        (n, 1 << 20)
    } else if let Some(n) = t.strip_suffix("KB") {
        (n, 1 << 10)
    } else if let Some(n) = t.strip_suffix("B") {
        (n, 1)
    } else {
        (t.as_str(), 1)
    };
    num.trim()
        .parse::<u64>()
        .map(|v| v * mult)
        .map_err(|_| TextError {
            line,
            message: format!("bad size '{tok}'"),
        })
}

fn parse_f64(tok: &str, line: usize) -> Result<f64, TextError> {
    tok.trim().parse().map_err(|_| TextError {
        line,
        message: format!("bad number '{tok}'"),
    })
}

/// Fetch the token after the keyword `key` in `tokens`.
fn after<'a>(tokens: &[&'a str], key: &str, line: usize) -> Result<&'a str, TextError> {
    tokens
        .iter()
        .position(|&t| t.eq_ignore_ascii_case(key))
        .and_then(|i| tokens.get(i + 1).copied())
        .ok_or_else(|| TextError {
            line,
            message: format!("missing '{key} <value>'"),
        })
}

/// Parse a hardware description from text (see the module docs for the
/// format).
pub fn spec_from_text(src: &str) -> Result<HardwareSpec, TextError> {
    let mut name = String::from("unnamed machine");
    let mut cpu_mhz = 1000.0;
    let mut levels: Vec<CacheLevel> = Vec::new();
    let mut saw_machine = false;

    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens[0].to_ascii_lowercase().as_str() {
            "machine" => {
                saw_machine = true;
                // machine <name words...> [@ <mhz> MHz]
                if let Some(at) = tokens.iter().position(|&t| t == "@") {
                    name = tokens[1..at].join(" ");
                    let mhz_tok = tokens.get(at + 1).copied().ok_or(TextError {
                        line: line_no,
                        message: "expected '@ <MHz>'".into(),
                    })?;
                    cpu_mhz = parse_f64(mhz_tok, line_no)?;
                } else {
                    name = tokens[1..].join(" ");
                }
            }
            "cache" => {
                let lvl_name = tokens.get(1).ok_or(TextError {
                    line: line_no,
                    message: "cache needs a name".into(),
                })?;
                let capacity = parse_bytes(
                    tokens.get(2).copied().ok_or(TextError {
                        line: line_no,
                        message: "cache needs a capacity".into(),
                    })?,
                    line_no,
                )?;
                let line_b = parse_bytes(after(&tokens, "line", line_no)?, line_no)?;
                let assoc_tok = after(&tokens, "assoc", line_no)?;
                let assoc = match assoc_tok.to_ascii_lowercase().as_str() {
                    "direct" => Associativity::DirectMapped,
                    "full" => Associativity::Full,
                    n => Associativity::Ways(n.parse().map_err(|_| TextError {
                        line: line_no,
                        message: format!("bad associativity '{n}'"),
                    })?),
                };
                levels.push(CacheLevel {
                    name: lvl_name.to_string(),
                    kind: LevelKind::Cache,
                    capacity,
                    line: line_b,
                    assoc,
                    seq_miss_ns: parse_f64(after(&tokens, "seq", line_no)?, line_no)?,
                    rand_miss_ns: parse_f64(after(&tokens, "rand", line_no)?, line_no)?,
                });
            }
            "tlb" => {
                let lvl_name = tokens.get(1).ok_or(TextError {
                    line: line_no,
                    message: "tlb needs a name".into(),
                })?;
                let entries = parse_bytes(after(&tokens, "entries", line_no)?, line_no)?;
                let page = parse_bytes(after(&tokens, "page", line_no)?, line_no)?;
                let miss = parse_f64(after(&tokens, "miss", line_no)?, line_no)?;
                levels.push(CacheLevel {
                    name: lvl_name.to_string(),
                    kind: LevelKind::Tlb,
                    capacity: entries * page,
                    line: page,
                    assoc: Associativity::Full,
                    seq_miss_ns: miss,
                    rand_miss_ns: miss,
                });
            }
            "pool" => {
                let lvl_name = tokens.get(1).ok_or(TextError {
                    line: line_no,
                    message: "pool needs a name".into(),
                })?;
                let capacity = parse_bytes(
                    tokens.get(2).copied().ok_or(TextError {
                        line: line_no,
                        message: "pool needs a capacity".into(),
                    })?,
                    line_no,
                )?;
                let page = parse_bytes(after(&tokens, "page", line_no)?, line_no)?;
                levels.push(CacheLevel {
                    name: lvl_name.to_string(),
                    kind: LevelKind::BufferPool,
                    capacity,
                    line: page,
                    assoc: Associativity::Full,
                    seq_miss_ns: parse_f64(after(&tokens, "seq", line_no)?, line_no)?,
                    rand_miss_ns: parse_f64(after(&tokens, "rand", line_no)?, line_no)?,
                });
            }
            other => {
                return Err(TextError {
                    line: line_no,
                    message: format!("unknown directive '{other}'"),
                })
            }
        }
    }
    if !saw_machine {
        return Err(TextError {
            line: 0,
            message: "missing 'machine' line".into(),
        });
    }
    HardwareSpec::new(name, cpu_mhz, levels).map_err(|e| (0usize, e).into())
}

/// Render a spec back to the text format (round-trip companion of
/// [`spec_from_text`]).
pub fn spec_to_text(spec: &HardwareSpec) -> String {
    let mut out = format!("machine {} @ {} MHz\n", spec.name, spec.cpu_mhz);
    for l in spec.levels() {
        match l.kind {
            LevelKind::Cache => {
                let assoc = match l.assoc {
                    Associativity::DirectMapped => "direct".to_string(),
                    Associativity::Full => "full".to_string(),
                    Associativity::Ways(n) => n.to_string(),
                };
                out.push_str(&format!(
                    "cache {} {}B line {} assoc {} seq {} rand {}\n",
                    l.name, l.capacity, l.line, assoc, l.seq_miss_ns, l.rand_miss_ns
                ));
            }
            LevelKind::Tlb => {
                out.push_str(&format!(
                    "tlb {} entries {} page {} miss {}\n",
                    l.name,
                    l.lines(),
                    l.line,
                    l.seq_miss_ns
                ));
            }
            LevelKind::BufferPool => {
                out.push_str(&format!(
                    "pool {} {}B page {} seq {} rand {}\n",
                    l.name, l.capacity, l.line, l.seq_miss_ns, l.rand_miss_ns
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    const SAMPLE: &str = "
# a three-level commodity box
machine My Box @ 3000 MHz
cache L1   32KB line 64  assoc 8   seq 2  rand 4
cache L2    1MB line 64  assoc 16  seq 8  rand 14
tlb   TLB  entries 1536  page 4KB  miss 30
pool  BP   64MB  page 8KB  seq 80000 rand 6000000
";

    #[test]
    fn parses_full_machine() {
        let spec = spec_from_text(SAMPLE).unwrap();
        assert_eq!(spec.name, "My Box");
        assert_eq!(spec.cpu_mhz, 3000.0);
        assert_eq!(spec.levels().len(), 4);
        let l1 = spec.level("L1").unwrap();
        assert_eq!(l1.capacity, 32 * 1024);
        assert_eq!(l1.assoc, Associativity::Ways(8));
        let tlb = spec.level("TLB").unwrap();
        assert_eq!(tlb.lines(), 1536);
        assert_eq!(tlb.line, 4096);
        let bp = spec.level("BP").unwrap();
        assert_eq!(bp.kind, LevelKind::BufferPool);
        assert_eq!(bp.capacity, 64 << 20);
    }

    #[test]
    fn round_trips_presets() {
        for spec in [
            presets::origin2000(),
            presets::tiny(),
            presets::modern_commodity(),
        ] {
            let text = spec_to_text(&spec);
            let back = spec_from_text(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(back.levels(), spec.levels(), "{text}");
            assert_eq!(back.cpu_mhz, spec.cpu_mhz);
        }
    }

    #[test]
    fn direct_and_full_associativity_keywords() {
        let spec = spec_from_text(
            "machine m @ 100 MHz\ncache L1 1KB line 32 assoc direct seq 1 rand 2\ncache L2 4KB line 32 assoc full seq 5 rand 9",
        )
        .unwrap();
        assert_eq!(spec.level("L1").unwrap().assoc, Associativity::DirectMapped);
        assert_eq!(spec.level("L2").unwrap().assoc, Associativity::Full);
    }

    #[test]
    fn error_reporting() {
        let e = spec_from_text("cache L1 1KB line 32 assoc 2 seq 1 rand 2").unwrap_err();
        assert!(e.message.contains("machine"), "{e}");
        let e2 = spec_from_text("machine m\nwidget L1").unwrap_err();
        assert_eq!(e2.line, 2);
        assert!(e2.message.contains("unknown directive"), "{e2}");
        let e3 =
            spec_from_text("machine m\ncache L1 1KB line 31 assoc 2 seq 1 rand 2").unwrap_err();
        assert!(e3.message.contains("power of two"), "{e3}");
        let e4 =
            spec_from_text("machine m\ncache L1 banana line 32 assoc 2 seq 1 rand 2").unwrap_err();
        assert!(e4.message.contains("bad size"), "{e4}");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let spec = spec_from_text(
            "# header\n\nmachine m @ 250 MHz # trailing\n# mid\ncache L1 2KB line 32 assoc 2 seq 5 rand 15\n",
        )
        .unwrap();
        assert_eq!(spec.levels().len(), 1);
    }
}
