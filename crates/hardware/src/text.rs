//! A minimal text format for hardware descriptions, so a machine can be
//! modelled from a config file (e.g. one filled in from `/proc`, vendor
//! datasheets, or the Calibrator's output) without writing Rust.
//!
//! Format: one `machine` line, then one line per level, inside-out.
//! `#` starts a comment; blank lines are ignored.
//!
//! ```text
//! machine  My Box  @ 3000 MHz
//! cache L1   32KB line 64  assoc 8     seq 2    rand 4
//! cache L2    1MB line 64  assoc 16    seq 8    rand 14
//! tlb   TLB  entries 1536  page 4KB    miss 30
//! pool  BP   64MB  page 8KB            seq 80000 rand 6000000
//! ```
//!
//! Sizes accept `B`/`KB`/`MB`/`GB` suffixes (binary units); latencies
//! are nanoseconds; `assoc` accepts a number, `direct`, or `full`.
//!
//! Multi-core machines add `cores <n>` to the `machine` line and a
//! trailing `shared` token on every level that is shared across cores
//! (levels default to private-per-core):
//!
//! ```text
//! machine SMP Box @ 3000 MHz cores 8
//! cache L1   32KB line 64  assoc 8   seq 2  rand 4
//! cache L3   32MB line 64  assoc 16  seq 25 rand 90  shared
//! ```

use crate::error::HardwareError;
use crate::level::{Associativity, CacheLevel, LevelKind, Sharing};
use crate::spec::HardwareSpec;
use std::fmt;

/// A syntax error in a hardware description file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for TextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TextError {}

impl From<(usize, HardwareError)> for TextError {
    fn from((line, e): (usize, HardwareError)) -> TextError {
        TextError {
            line,
            message: e.to_string(),
        }
    }
}

fn parse_bytes(tok: &str, line: usize) -> Result<u64, TextError> {
    let t = tok.trim().to_ascii_uppercase();
    let (num, mult) = if let Some(n) = t.strip_suffix("GB") {
        (n, 1u64 << 30)
    } else if let Some(n) = t.strip_suffix("MB") {
        (n, 1 << 20)
    } else if let Some(n) = t.strip_suffix("KB") {
        (n, 1 << 10)
    } else if let Some(n) = t.strip_suffix("B") {
        (n, 1)
    } else {
        (t.as_str(), 1)
    };
    num.trim()
        .parse::<u64>()
        .map(|v| v * mult)
        .map_err(|_| TextError {
            line,
            message: format!("bad size '{tok}'"),
        })
}

fn parse_f64(tok: &str, line: usize) -> Result<f64, TextError> {
    tok.trim().parse().map_err(|_| TextError {
        line,
        message: format!("bad number '{tok}'"),
    })
}

/// Fetch the token after the keyword `key` in `tokens`.
fn after<'a>(tokens: &[&'a str], key: &str, line: usize) -> Result<&'a str, TextError> {
    tokens
        .iter()
        .position(|&t| t.eq_ignore_ascii_case(key))
        .and_then(|i| tokens.get(i + 1).copied())
        .ok_or_else(|| TextError {
            line,
            message: format!("missing '{key} <value>'"),
        })
}

/// A trailing `shared` token marks a level as shared across cores.
/// Only the *last* token counts, so a level named "shared" (token 1)
/// is not misread as the keyword.
fn parse_sharing(tokens: &[&str]) -> Sharing {
    if tokens
        .last()
        .is_some_and(|t| t.eq_ignore_ascii_case("shared"))
    {
        Sharing::Shared
    } else {
        Sharing::Private
    }
}

/// Parse a hardware description from text (see the module docs for the
/// format).
pub fn spec_from_text(src: &str) -> Result<HardwareSpec, TextError> {
    let mut name = String::from("unnamed machine");
    let mut cpu_mhz = 1000.0;
    let mut cores = 1u32;
    let mut levels: Vec<CacheLevel> = Vec::new();
    let mut saw_machine = false;

    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens[0].to_ascii_lowercase().as_str() {
            "machine" => {
                saw_machine = true;
                // machine <name words...> [@ <mhz> MHz] [cores <n>]
                if let Some(at) = tokens.iter().position(|&t| t == "@") {
                    // The name is everything before '@' — it may contain
                    // the word "cores"; only a `cores` token *after* the
                    // clock clause is the keyword.
                    name = tokens[1..at].join(" ");
                    let mhz_tok = tokens.get(at + 1).copied().ok_or(TextError {
                        line: line_no,
                        message: "expected '@ <MHz>'".into(),
                    })?;
                    cpu_mhz = parse_f64(mhz_tok, line_no)?;
                    let tail_from = at + 2;
                    if let Some(c) = tokens
                        .get(tail_from..)
                        .unwrap_or(&[])
                        .iter()
                        .position(|t| t.eq_ignore_ascii_case("cores"))
                        .map(|i| i + tail_from)
                    {
                        let n_tok = tokens.get(c + 1).copied().ok_or(TextError {
                            line: line_no,
                            message: "expected 'cores <n>'".into(),
                        })?;
                        cores = n_tok.parse().map_err(|_| TextError {
                            line: line_no,
                            message: format!("bad core count '{n_tok}'"),
                        })?;
                    }
                } else {
                    // No clock clause: recognise only a *trailing*
                    // `cores <number>`, so names containing the word
                    // "cores" still parse (and round-trip) as names.
                    let mut name_end = tokens.len();
                    if tokens.len() >= 4 && tokens[tokens.len() - 2].eq_ignore_ascii_case("cores") {
                        if let Ok(n) = tokens[tokens.len() - 1].parse::<u32>() {
                            cores = n;
                            name_end = tokens.len() - 2;
                        }
                    }
                    name = tokens[1..name_end].join(" ");
                }
            }
            "cache" => {
                let lvl_name = tokens.get(1).ok_or(TextError {
                    line: line_no,
                    message: "cache needs a name".into(),
                })?;
                let capacity = parse_bytes(
                    tokens.get(2).copied().ok_or(TextError {
                        line: line_no,
                        message: "cache needs a capacity".into(),
                    })?,
                    line_no,
                )?;
                let line_b = parse_bytes(after(&tokens, "line", line_no)?, line_no)?;
                let assoc_tok = after(&tokens, "assoc", line_no)?;
                let assoc = match assoc_tok.to_ascii_lowercase().as_str() {
                    "direct" => Associativity::DirectMapped,
                    "full" => Associativity::Full,
                    n => Associativity::Ways(n.parse().map_err(|_| TextError {
                        line: line_no,
                        message: format!("bad associativity '{n}'"),
                    })?),
                };
                levels.push(CacheLevel {
                    name: lvl_name.to_string(),
                    kind: LevelKind::Cache,
                    capacity,
                    line: line_b,
                    assoc,
                    seq_miss_ns: parse_f64(after(&tokens, "seq", line_no)?, line_no)?,
                    rand_miss_ns: parse_f64(after(&tokens, "rand", line_no)?, line_no)?,
                    sharing: parse_sharing(&tokens),
                });
            }
            "tlb" => {
                let lvl_name = tokens.get(1).ok_or(TextError {
                    line: line_no,
                    message: "tlb needs a name".into(),
                })?;
                let entries = parse_bytes(after(&tokens, "entries", line_no)?, line_no)?;
                let page = parse_bytes(after(&tokens, "page", line_no)?, line_no)?;
                let miss = parse_f64(after(&tokens, "miss", line_no)?, line_no)?;
                levels.push(CacheLevel {
                    name: lvl_name.to_string(),
                    kind: LevelKind::Tlb,
                    capacity: entries * page,
                    line: page,
                    assoc: Associativity::Full,
                    seq_miss_ns: miss,
                    rand_miss_ns: miss,
                    sharing: parse_sharing(&tokens),
                });
            }
            "pool" => {
                let lvl_name = tokens.get(1).ok_or(TextError {
                    line: line_no,
                    message: "pool needs a name".into(),
                })?;
                let capacity = parse_bytes(
                    tokens.get(2).copied().ok_or(TextError {
                        line: line_no,
                        message: "pool needs a capacity".into(),
                    })?,
                    line_no,
                )?;
                let page = parse_bytes(after(&tokens, "page", line_no)?, line_no)?;
                levels.push(CacheLevel {
                    name: lvl_name.to_string(),
                    kind: LevelKind::BufferPool,
                    capacity,
                    line: page,
                    assoc: Associativity::Full,
                    seq_miss_ns: parse_f64(after(&tokens, "seq", line_no)?, line_no)?,
                    rand_miss_ns: parse_f64(after(&tokens, "rand", line_no)?, line_no)?,
                    sharing: parse_sharing(&tokens),
                });
            }
            other => {
                return Err(TextError {
                    line: line_no,
                    message: format!("unknown directive '{other}'"),
                })
            }
        }
    }
    if !saw_machine {
        return Err(TextError {
            line: 0,
            message: "missing 'machine' line".into(),
        });
    }
    HardwareSpec::new(name, cpu_mhz, levels)
        .and_then(|s| s.with_cores(cores))
        .map_err(|e| (0usize, e).into())
}

/// Render a spec back to the text format (round-trip companion of
/// [`spec_from_text`]).
pub fn spec_to_text(spec: &HardwareSpec) -> String {
    let mut out = format!("machine {} @ {} MHz", spec.name, spec.cpu_mhz);
    if spec.cores() > 1 {
        out.push_str(&format!(" cores {}", spec.cores()));
    }
    out.push('\n');
    for l in spec.levels() {
        let shared = match l.sharing {
            Sharing::Shared => " shared",
            Sharing::Private => "",
        };
        match l.kind {
            LevelKind::Cache => {
                let assoc = match l.assoc {
                    Associativity::DirectMapped => "direct".to_string(),
                    Associativity::Full => "full".to_string(),
                    Associativity::Ways(n) => n.to_string(),
                };
                out.push_str(&format!(
                    "cache {} {}B line {} assoc {} seq {} rand {}{shared}\n",
                    l.name, l.capacity, l.line, assoc, l.seq_miss_ns, l.rand_miss_ns
                ));
            }
            LevelKind::Tlb => {
                out.push_str(&format!(
                    "tlb {} entries {} page {} miss {}{shared}\n",
                    l.name,
                    l.lines(),
                    l.line,
                    l.seq_miss_ns
                ));
            }
            LevelKind::BufferPool => {
                out.push_str(&format!(
                    "pool {} {}B page {} seq {} rand {}{shared}\n",
                    l.name, l.capacity, l.line, l.seq_miss_ns, l.rand_miss_ns
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    const SAMPLE: &str = "
# a three-level commodity box
machine My Box @ 3000 MHz
cache L1   32KB line 64  assoc 8   seq 2  rand 4
cache L2    1MB line 64  assoc 16  seq 8  rand 14
tlb   TLB  entries 1536  page 4KB  miss 30
pool  BP   64MB  page 8KB  seq 80000 rand 6000000
";

    #[test]
    fn parses_full_machine() {
        let spec = spec_from_text(SAMPLE).unwrap();
        assert_eq!(spec.name, "My Box");
        assert_eq!(spec.cpu_mhz, 3000.0);
        assert_eq!(spec.levels().len(), 4);
        let l1 = spec.level("L1").unwrap();
        assert_eq!(l1.capacity, 32 * 1024);
        assert_eq!(l1.assoc, Associativity::Ways(8));
        let tlb = spec.level("TLB").unwrap();
        assert_eq!(tlb.lines(), 1536);
        assert_eq!(tlb.line, 4096);
        let bp = spec.level("BP").unwrap();
        assert_eq!(bp.kind, LevelKind::BufferPool);
        assert_eq!(bp.capacity, 64 << 20);
    }

    #[test]
    fn round_trips_presets() {
        for spec in [
            presets::origin2000(),
            presets::tiny(),
            presets::modern_commodity(),
            presets::tiny_smp(4),
            presets::modern_smp(8),
            presets::with_buffer_pool(presets::tiny_smp(2), 64 << 20, 8192),
        ] {
            let text = spec_to_text(&spec);
            let back = spec_from_text(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(back.levels(), spec.levels(), "{text}");
            assert_eq!(back.cpu_mhz, spec.cpu_mhz);
            assert_eq!(back.cores(), spec.cores(), "{text}");
        }
    }

    #[test]
    fn cores_and_shared_tokens_parse() {
        let spec = spec_from_text(
            "machine SMP Box @ 3000 MHz cores 8\n\
             cache L1 32KB line 64 assoc 8 seq 2 rand 4\n\
             cache L3 32MB line 64 assoc 16 seq 25 rand 90 shared",
        )
        .unwrap();
        assert_eq!(spec.name, "SMP Box");
        assert_eq!(spec.cores(), 8);
        assert_eq!(spec.level("L1").unwrap().sharing, Sharing::Private);
        assert_eq!(spec.level("L3").unwrap().sharing, Sharing::Shared);
        // A bad core count after the clock clause is a parse error.
        let e = spec_from_text(
            "machine m @ 100 MHz cores zero\ncache L1 1KB line 32 assoc 2 seq 1 rand 2",
        )
        .unwrap_err();
        assert!(e.message.contains("bad core count"), "{e}");
        // Without a clock clause a trailing `cores <n>` still works.
        let spec =
            spec_from_text("machine m cores 4\ncache L1 1KB line 32 assoc 2 seq 1 rand 2").unwrap();
        assert_eq!(spec.cores(), 4);
        assert_eq!(spec.name, "m");
    }

    #[test]
    fn level_named_shared_stays_private() {
        // Only a *trailing* `shared` token is the keyword; a level that
        // happens to be named "shared" must not be marked Shared.
        let spec = spec_from_text(
            "machine m @ 100 MHz\n\
             cache shared 1KB line 32 assoc 2 seq 1 rand 2\n\
             cache L2 4KB line 32 assoc 2 seq 5 rand 9 shared",
        )
        .unwrap();
        assert_eq!(spec.level("shared").unwrap().sharing, Sharing::Private);
        assert_eq!(spec.level("L2").unwrap().sharing, Sharing::Shared);
        let back = spec_from_text(&spec_to_text(&spec)).unwrap();
        assert_eq!(back.levels(), spec.levels());
    }

    #[test]
    fn names_containing_the_word_cores_survive() {
        // "cores" inside the machine name must not be taken for the
        // keyword — including on a full round-trip.
        let line1 = "cache L1 1KB line 32 assoc 2 seq 1 rand 2";
        let spec = spec_from_text(&format!("machine quad cores box @ 3000 MHz\n{line1}")).unwrap();
        assert_eq!(spec.name, "quad cores box");
        assert_eq!(spec.cores(), 1);
        let back = spec_from_text(&spec_to_text(&spec)).unwrap();
        assert_eq!(back.name, "quad cores box");
        assert_eq!(back.cores(), 1);
        // With no clock clause, a non-numeric tail stays part of the name.
        let spec = spec_from_text(&format!("machine my cores rig\n{line1}")).unwrap();
        assert_eq!(spec.name, "my cores rig");
        assert_eq!(spec.cores(), 1);
        // ...and the SMP round-trip still carries both clauses.
        let smp = spec_from_text(&format!(
            "machine quad cores box @ 3000 MHz cores 8\n{line1}"
        ))
        .unwrap();
        assert_eq!(smp.name, "quad cores box");
        assert_eq!(smp.cores(), 8);
        let back = spec_from_text(&spec_to_text(&smp)).unwrap();
        assert_eq!(back.cores(), 8);
        assert_eq!(back.name, "quad cores box");
    }

    #[test]
    fn direct_and_full_associativity_keywords() {
        let spec = spec_from_text(
            "machine m @ 100 MHz\ncache L1 1KB line 32 assoc direct seq 1 rand 2\ncache L2 4KB line 32 assoc full seq 5 rand 9",
        )
        .unwrap();
        assert_eq!(spec.level("L1").unwrap().assoc, Associativity::DirectMapped);
        assert_eq!(spec.level("L2").unwrap().assoc, Associativity::Full);
    }

    #[test]
    fn error_reporting() {
        let e = spec_from_text("cache L1 1KB line 32 assoc 2 seq 1 rand 2").unwrap_err();
        assert!(e.message.contains("machine"), "{e}");
        let e2 = spec_from_text("machine m\nwidget L1").unwrap_err();
        assert_eq!(e2.line, 2);
        assert!(e2.message.contains("unknown directive"), "{e2}");
        let e3 =
            spec_from_text("machine m\ncache L1 1KB line 31 assoc 2 seq 1 rand 2").unwrap_err();
        assert!(e3.message.contains("power of two"), "{e3}");
        let e4 =
            spec_from_text("machine m\ncache L1 banana line 32 assoc 2 seq 1 rand 2").unwrap_err();
        assert!(e4.message.contains("bad size"), "{e4}");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let spec = spec_from_text(
            "# header\n\nmachine m @ 250 MHz # trailing\n# mid\ncache L1 2KB line 32 assoc 2 seq 5 rand 15\n",
        )
        .unwrap();
        assert_eq!(spec.levels().len(), 1);
    }
}
