//! Host-memory stride primitives shared by the native backend, the
//! vectorized kernel layer, and the host calibrator.
//!
//! Three consumers perform the same fundamental operation — walk a real
//! host buffer at a fixed stride, actually loading one word per step so
//! the optimizer cannot elide the traffic:
//!
//! * `gcm-engine`'s `NativeBackend` touches one word per cache line of
//!   every charged access,
//! * `gcm-engine`'s kernels sweep relations at tuple stride,
//! * `gcm-calibrate`'s host probes time exactly such sweeps to recover
//!   latencies and bandwidths.
//!
//! Keeping the stride loop in one tested helper means the kernel and the
//! calibrator can never drift apart: the loop the calibrator times is
//! the loop the backend charges. The software-prefetch hints and the
//! N-ahead distance rule live here for the same reason — the distance
//! formula is derived from the very latency/bandwidth parameters this
//! crate describes ([`crate::CacheLevel`]).

/// Load one little-endian `u64` every `stride` bytes of `buf`, folding
/// the values with wrapping addition; returns `(fold, steps)`. Steps
/// are taken while a full 8-byte word fits, i.e.
/// `steps = ⌊(len − 8)/stride⌋ + 1` for `len ≥ 8` (0 otherwise).
///
/// The fold result is returned (rather than discarded internally) so
/// callers can [`std::hint::black_box`] it — the loads must survive
/// optimization for both the charged backend and the timed calibrator.
#[inline]
pub fn sweep_fold(buf: &[u8], stride: usize) -> (u64, u64) {
    assert!(stride >= 8, "stride must cover the 8-byte word read");
    let mut acc = 0u64;
    let mut steps = 0u64;
    let mut off = 0usize;
    while off + 8 <= buf.len() {
        acc = acc.wrapping_add(u64::from_le_bytes(
            buf[off..off + 8].try_into().expect("8 bytes"),
        ));
        steps += 1;
        off += stride;
    }
    (acc, steps)
}

/// Number of `line`-byte cache lines the byte range
/// `[addr, addr + len)` touches (`line` a power of two, `len ≥ 1`) —
/// the one straddle rule every line-accounting site shares.
#[inline]
pub fn lines_touched(addr: u64, len: u64, line: u64) -> u64 {
    debug_assert!(line.is_power_of_two());
    debug_assert!(len >= 1);
    ((addr + len - 1) / line) - (addr / line) + 1
}

/// Software-prefetch the cache line holding `p` for a forthcoming
/// *read* (temporal, all levels). A hint only: never faults, never
/// counts as an access; compiles to nothing on non-x86-64 targets.
#[inline]
pub fn prefetch_read(p: *const u8) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: PREFETCHT0 is a hint; it cannot fault even on invalid
    // addresses (Intel SDM vol. 2B) — no memory is dereferenced.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Software-prefetch the line holding `p` for a forthcoming *write*.
/// x86-64 has no separate write-prefetch in baseline SSE, so this emits
/// the same T0 hint (bringing the line in shared state is still the
/// bulk of the win); a hint only, like [`prefetch_read`].
#[inline]
pub fn prefetch_write(p: *const u8) {
    prefetch_read(p);
}

/// N-ahead software-prefetch distance, in items, from the calibrated
/// latency/bandwidth ratio: a prefetch issued `D` items early hides a
/// full miss when `D · (item time) ≥ latency`, and the steady-state
/// item time of a stream moving `item_bytes` per item at sustained
/// bandwidth `bytes_per_ns` is `item_bytes / bytes_per_ns`. Hence
/// `D = ⌈latency · bandwidth / item_bytes⌉`, clamped to `[1, 64]`
/// (beyond ~64 lines ahead the hint outruns every real prefetch queue).
#[inline]
pub fn prefetch_distance(latency_ns: f64, bytes_per_ns: f64, item_bytes: u64) -> u64 {
    let well_formed = latency_ns > 0.0 && bytes_per_ns > 0.0 && item_bytes > 0;
    if !well_formed {
        return 1;
    }
    let d = (latency_ns * bytes_per_ns / item_bytes as f64).ceil();
    (d as u64).clamp(1, 64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_fold_counts_steps_and_sums() {
        // 4 words, stride 8: every word read once.
        let mut buf = Vec::new();
        for w in [1u64, 2, 3, 4] {
            buf.extend_from_slice(&w.to_le_bytes());
        }
        assert_eq!(sweep_fold(&buf, 8), (10, 4));
        // Stride 16: words 0 and 2 only.
        assert_eq!(sweep_fold(&buf, 16), (4, 2));
        // A 64-byte-line walk over 129 bytes touches 3 line heads
        // (offsets 0, 64, 128 — the last only if a word fits; 129 bytes
        // leave just 1 byte at offset 128, so 2 steps).
        let long = vec![0u8; 129];
        assert_eq!(sweep_fold(&long, 64).1, 2);
        let exact = vec![0u8; 136]; // offset 128 + 8 fits
        assert_eq!(sweep_fold(&exact, 64).1, 3);
        // Degenerate buffers take no steps.
        assert_eq!(sweep_fold(&[0u8; 7], 8), (0, 0));
        assert_eq!(sweep_fold(&[], 8), (0, 0));
    }

    #[test]
    fn lines_touched_handles_straddles() {
        // Aligned 8-byte access: one line.
        assert_eq!(lines_touched(4096, 8, 64), 1);
        // Access straddling a 64-byte boundary: two lines.
        assert_eq!(lines_touched(4156, 8, 64), 2);
        // Last in-line position: still one line.
        assert_eq!(lines_touched(4152, 8, 64), 1);
        // A full 4 KB span at line 64: 64 lines.
        assert_eq!(lines_touched(4096, 4096, 64), 64);
        // Unaligned full span: 65.
        assert_eq!(lines_touched(4100, 4096, 64), 65);
        // Sub-word accesses never touch zero lines.
        assert_eq!(lines_touched(4096, 1, 64), 1);
    }

    #[test]
    fn prefetch_hints_are_safe_on_any_address() {
        // Hints must not fault — even on null or dangling pointers.
        prefetch_read(std::ptr::null());
        prefetch_write(std::ptr::null());
        let v = [0u8; 8];
        prefetch_read(v.as_ptr());
    }

    #[test]
    fn prefetch_distance_follows_latency_bandwidth_ratio() {
        // 100 ns latency, 8 bytes/ns stream, 64-byte lines: 12.5 → 13.
        assert_eq!(prefetch_distance(100.0, 8.0, 64), 13);
        // Tiny latency: floor of 1.
        assert_eq!(prefetch_distance(0.5, 1.0, 64), 1);
        // Huge ratio: clamped at 64.
        assert_eq!(prefetch_distance(1e6, 100.0, 8), 64);
        // Degenerate inputs fall back to 1.
        assert_eq!(prefetch_distance(0.0, 8.0, 64), 1);
        assert_eq!(prefetch_distance(10.0, 0.0, 64), 1);
        assert_eq!(prefetch_distance(10.0, 8.0, 0), 1);
    }
}
