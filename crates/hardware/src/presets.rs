//! Ready-made hardware descriptions.
//!
//! [`origin2000`] reproduces the paper's Table 3 (the SGI Origin2000 the
//! experiments in §6 ran on). [`tiny`] is a deliberately small machine used
//! throughout the test suites so cache cliffs are reachable with a few
//! kilobytes of data. [`modern_commodity`] is a contemporary three-cache-
//! level machine, and [`with_buffer_pool`] demonstrates the unified-model
//! claim that disk I/O is just one more level (paper §7).

use crate::level::{Associativity, CacheLevel, LevelKind, Sharing};
use crate::spec::HardwareSpec;
use crate::{kib, mib};

/// The paper's experimentation platform (Table 3): SGI Origin2000,
/// MIPS R10000 at 250 MHz.
///
/// | level | capacity | line | lines | l_s | l_r |
/// |-------|----------|------|-------|-----|-----|
/// | L1    | 32 KB    | 32 B | 1024  | 8 ns (2 cy) | 24 ns (6 cy) |
/// | L2    | 4 MB     | 128 B| 32768 | 188 ns (47 cy) | 400 ns (100 cy) |
/// | TLB   | 64 × 16 KB pages = 1 MB | 16 KB | 64 | 228 ns (57 cy) | 228 ns |
pub fn origin2000() -> HardwareSpec {
    HardwareSpec::new(
        "SGI Origin2000 (MIPS R10000, 250 MHz)",
        250.0,
        vec![
            CacheLevel {
                name: "L1".into(),
                kind: LevelKind::Cache,
                capacity: kib(32),
                line: 32,
                assoc: Associativity::Ways(2),
                seq_miss_ns: 8.0,
                rand_miss_ns: 24.0,
                sharing: Sharing::Private,
            },
            CacheLevel {
                name: "L2".into(),
                kind: LevelKind::Cache,
                capacity: mib(4),
                line: 128,
                assoc: Associativity::Ways(2),
                seq_miss_ns: 188.0,
                rand_miss_ns: 400.0,
                sharing: Sharing::Private,
            },
            CacheLevel {
                name: "TLB".into(),
                kind: LevelKind::Tlb,
                capacity: 64 * kib(16),
                line: kib(16),
                assoc: Associativity::Full,
                seq_miss_ns: 228.0,
                rand_miss_ns: 228.0,
                sharing: Sharing::Private,
            },
        ],
    )
    .expect("origin2000 preset is valid")
}

/// The Origin2000 with *fully associative* data caches.
///
/// The analytical model ignores conflict misses (it models a fully
/// associative cache); this preset lets experiments separate capacity from
/// conflict effects (used by the associativity ablation bench).
pub fn origin2000_full_assoc() -> HardwareSpec {
    let base = origin2000();
    let levels = base
        .levels()
        .iter()
        .cloned()
        .map(|mut l| {
            l.assoc = Associativity::Full;
            l
        })
        .collect();
    HardwareSpec::new(
        format!("{} [fully associative]", base.name),
        base.cpu_mhz,
        levels,
    )
    .expect("valid")
}

/// A small machine for unit tests: cliffs are reachable with kilobytes of
/// data, so debug-mode tests stay fast.
///
/// | level | capacity | line | lines |
/// |-------|----------|------|-------|
/// | L1    | 2 KB     | 32 B | 64    |
/// | L2    | 16 KB    | 64 B | 256   |
/// | TLB   | 8 × 1 KB pages = 8 KB | 1 KB | 8 |
pub fn tiny() -> HardwareSpec {
    HardwareSpec::new(
        "tiny test machine",
        100.0,
        vec![
            CacheLevel {
                name: "L1".into(),
                kind: LevelKind::Cache,
                capacity: kib(2),
                line: 32,
                assoc: Associativity::Ways(2),
                seq_miss_ns: 5.0,
                rand_miss_ns: 15.0,
                sharing: Sharing::Private,
            },
            CacheLevel {
                name: "L2".into(),
                kind: LevelKind::Cache,
                capacity: kib(16),
                line: 64,
                assoc: Associativity::Ways(4),
                seq_miss_ns: 50.0,
                rand_miss_ns: 150.0,
                sharing: Sharing::Private,
            },
            CacheLevel {
                name: "TLB".into(),
                kind: LevelKind::Tlb,
                capacity: 8 * kib(1),
                line: kib(1),
                assoc: Associativity::Full,
                seq_miss_ns: 100.0,
                rand_miss_ns: 100.0,
                sharing: Sharing::Private,
            },
        ],
    )
    .expect("tiny preset is valid")
}

/// The tiny machine with fully-associative caches (for model-vs-simulator
/// agreement tests, where conflict misses would add noise the analytical
/// model deliberately does not predict).
pub fn tiny_full_assoc() -> HardwareSpec {
    let base = tiny();
    let levels = base
        .levels()
        .iter()
        .cloned()
        .map(|mut l| {
            l.assoc = Associativity::Full;
            l
        })
        .collect();
    HardwareSpec::new(
        format!("{} [fully associative]", base.name),
        base.cpu_mhz,
        levels,
    )
    .expect("valid")
}

/// A contemporary commodity machine: three data-cache levels plus TLB.
/// Latencies are rounded from published figures for a ~3 GHz desktop part.
pub fn modern_commodity() -> HardwareSpec {
    HardwareSpec::new(
        "modern commodity (3 GHz, 3-level cache)",
        3000.0,
        vec![
            CacheLevel {
                name: "L1".into(),
                kind: LevelKind::Cache,
                capacity: kib(32),
                line: 64,
                assoc: Associativity::Ways(8),
                seq_miss_ns: 2.0,
                rand_miss_ns: 4.0,
                sharing: Sharing::Private,
            },
            CacheLevel {
                name: "L2".into(),
                kind: LevelKind::Cache,
                capacity: mib(1),
                line: 64,
                assoc: Associativity::Ways(16),
                seq_miss_ns: 8.0,
                rand_miss_ns: 14.0,
                sharing: Sharing::Private,
            },
            CacheLevel {
                name: "L3".into(),
                kind: LevelKind::Cache,
                capacity: mib(32),
                line: 64,
                assoc: Associativity::Ways(16),
                seq_miss_ns: 25.0,
                rand_miss_ns: 90.0,
                // The LLC of a commodity part serves all cores; with the
                // default single core this is purely descriptive.
                sharing: Sharing::Shared,
            },
            CacheLevel {
                name: "TLB".into(),
                kind: LevelKind::Tlb,
                capacity: 1536 * kib(4),
                line: kib(4),
                assoc: Associativity::Full,
                seq_miss_ns: 30.0,
                rand_miss_ns: 30.0,
                sharing: Sharing::Private,
            },
        ],
    )
    .expect("modern preset is valid")
}

/// Extend a machine with a buffer-pool level: main memory of `pool_bytes`
/// acting as a cache for `page` -sized disk pages.
///
/// This realises the paper's unified-model claim (§2.3, §7): viewing the
/// buffer pool as a cache for I/O operations, disk cost falls out of the
/// same formulas. Default latencies model a ~2002 disk: sequential
/// transfer-bound pages vs seek-bound random pages.
pub fn with_buffer_pool(base: HardwareSpec, pool_bytes: u64, page: u64) -> HardwareSpec {
    // 8 KB page: sequential ≈ 80 µs (100 MB/s stream), random adds a
    // ~6 ms seek+rotate.
    let transfer_ns = page as f64 / 100e6 * 1e9;
    pooled(base, pool_bytes, page, "disk", transfer_ns, 6.0e6)
}

/// Shared buffer-pool construction of [`with_buffer_pool`] /
/// [`with_ssd_buffer_pool`]: one more [`BufferPool`](LevelKind) level
/// below the caches, charged `transfer_ns` per sequential page and an
/// extra `access_ns` per random one.
fn pooled(
    base: HardwareSpec,
    pool_bytes: u64,
    page: u64,
    suffix: &str,
    transfer_ns: f64,
    access_ns: f64,
) -> HardwareSpec {
    let mut levels: Vec<CacheLevel> = base.levels().to_vec();
    levels.push(CacheLevel {
        name: "BP".into(),
        kind: LevelKind::BufferPool,
        capacity: pool_bytes,
        line: page,
        // The buffer pool replacement policy approximates full associativity.
        assoc: Associativity::Full,
        seq_miss_ns: transfer_ns,
        rand_miss_ns: access_ns + transfer_ns,
        // Main memory is one instance regardless of core count.
        sharing: Sharing::Shared,
    });
    let cores = base.cores();
    HardwareSpec::new(format!("{} + {suffix}", base.name), base.cpu_mhz, levels)
        .expect("valid")
        .with_cores(cores)
        .expect("valid core count")
}

/// Extend a machine with an SSD-backed buffer-pool level — the same
/// unified-model construction as [`with_buffer_pool`], with flash-era
/// latencies: page transfers ≈ 400 MB/s sequential, and a ~100 µs access
/// overhead instead of a mechanical seek, so random pages cost about 5×
/// sequential ones rather than the disk's ~75×. The serving-layer
/// experiments run on this level: its milder random/sequential skew
/// keeps model-vs-simulator agreement tight at query scale while
/// capacity contention between coexisting queries still dominates
/// everything else on the machine.
pub fn with_ssd_buffer_pool(base: HardwareSpec, pool_bytes: u64, page: u64) -> HardwareSpec {
    // 8 KB page: sequential ≈ 20 µs (400 MB/s stream), random adds a
    // ~100 µs flash access.
    let transfer_ns = page as f64 / 400e6 * 1e9;
    pooled(base, pool_bytes, page, "ssd", transfer_ns, 100_000.0)
}

/// The tiny test machine as a `cores`-way SMP: per-core (private) L1 and
/// TLB, one shared L2. The multi-core analogue of [`tiny`] — cache
/// cliffs *and* sharing effects are reachable with kilobytes of data, so
/// parallel-executor tests stay fast.
pub fn tiny_smp(cores: u32) -> HardwareSpec {
    let base = tiny();
    let levels = base
        .levels()
        .iter()
        .cloned()
        .map(|mut l| {
            if l.name == "L2" {
                l.sharing = Sharing::Shared;
            }
            l
        })
        .collect();
    HardwareSpec::new(
        format!("tiny test machine ({cores}-core SMP)"),
        base.cpu_mhz,
        levels,
    )
    .expect("tiny_smp preset is valid")
    .with_cores(cores)
    .expect("valid core count")
}

/// The modern commodity machine as a `cores`-way SMP: private L1/L2/TLB
/// per core, the 32 MB L3 shared by all cores — the shape of a current
/// desktop/server part. The ≥4-core preset of the parallel-speedup
/// experiments.
pub fn modern_smp(cores: u32) -> HardwareSpec {
    let base = modern_commodity();
    HardwareSpec::new(
        format!("modern commodity ({cores}-core SMP)"),
        base.cpu_mhz,
        base.levels().to_vec(),
    )
    .expect("modern_smp preset is valid")
    .with_cores(cores)
    .expect("valid core count")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin2000_matches_table3() {
        let hw = origin2000();
        let l1 = hw.level("L1").unwrap();
        assert_eq!(l1.capacity, 32 * 1024);
        assert_eq!(l1.line, 32);
        assert_eq!(l1.lines(), 1024);
        let l2 = hw.level("L2").unwrap();
        assert_eq!(l2.capacity, 4 * 1024 * 1024);
        assert_eq!(l2.line, 128);
        assert_eq!(l2.lines(), 32768);
        let tlb = hw.level("TLB").unwrap();
        assert_eq!(tlb.lines(), 64);
        assert_eq!(tlb.line, 16 * 1024);
        assert_eq!(tlb.capacity, 1024 * 1024); // "(virtual) capacity 1 MB"

        // Latency table: 2/6 cycles L1, 47/100 cycles L2, 57 cycles TLB.
        assert!((hw.ns_to_cycles(l1.seq_miss_ns) - 2.0).abs() < 1e-9);
        assert!((hw.ns_to_cycles(l1.rand_miss_ns) - 6.0).abs() < 1e-9);
        assert!((hw.ns_to_cycles(l2.seq_miss_ns) - 47.0).abs() < 1e-9);
        assert!((hw.ns_to_cycles(l2.rand_miss_ns) - 100.0).abs() < 1e-9);
        assert!((hw.ns_to_cycles(tlb.seq_miss_ns) - 57.0).abs() < 1e-9);
    }

    #[test]
    fn table3_bandwidths() {
        // Paper Table 3: L1 miss bandwidth 3815 MB/s seq / 1272 MB/s rand,
        // L2 555 MB/s seq / 246 MB/s rand. (B/l in bytes/ns = GB/s.)
        let hw = origin2000();
        let l1 = hw.level("L1").unwrap();
        let l2 = hw.level("L2").unwrap();
        assert!((l1.seq_bandwidth() * 1000.0 - 4000.0).abs() < 200.0); // ≈3815 MB/s
        assert!((l1.rand_bandwidth() * 1000.0 - 1333.0).abs() < 70.0); // ≈1272 MB/s
        assert!((l2.seq_bandwidth() * 1000.0 - 681.0).abs() < 130.0); // ≈555 MB/s
        assert!((l2.rand_bandwidth() * 1000.0 - 320.0).abs() < 80.0); // ≈246 MB/s
    }

    #[test]
    fn tiny_is_small_and_valid() {
        let hw = tiny();
        assert!(hw.level("L1").unwrap().capacity <= 4096);
        assert_eq!(hw.tlbs().count(), 1);
    }

    #[test]
    fn modern_has_three_cache_levels() {
        assert_eq!(modern_commodity().data_caches().count(), 3);
    }

    #[test]
    fn smp_presets_mark_sharing() {
        let t = tiny_smp(4);
        assert_eq!(t.cores(), 4);
        assert_eq!(t.level("L1").unwrap().sharing, Sharing::Private);
        assert_eq!(t.level("L2").unwrap().sharing, Sharing::Shared);
        assert_eq!(t.level("TLB").unwrap().sharing, Sharing::Private);
        let m = modern_smp(8);
        assert_eq!(m.cores(), 8);
        assert_eq!(m.level("L3").unwrap().sharing, Sharing::Shared);
        assert_eq!(m.level("L2").unwrap().sharing, Sharing::Private);
        // Single-core presets stay single-core.
        assert_eq!(tiny().cores(), 1);
        assert_eq!(origin2000().cores(), 1);
    }

    #[test]
    fn thread_view_of_tiny_smp_splits_l2() {
        let t = tiny_smp(4);
        let view = t.thread_view(4);
        assert_eq!(view.level("L1").unwrap().capacity, kib(2));
        assert_eq!(view.level("L2").unwrap().capacity, kib(4));
    }

    #[test]
    fn buffer_pool_extends_hierarchy() {
        let hw = with_buffer_pool(origin2000(), 64 * 1024 * 1024, 8192);
        let bp = hw.level("BP").unwrap();
        assert_eq!(bp.kind, LevelKind::BufferPool);
        assert!(bp.rand_miss_ns > bp.seq_miss_ns * 10.0); // seek dominates
        assert_eq!(hw.levels().len(), 4);
    }

    #[test]
    fn ssd_pool_is_shared_and_mildly_skewed() {
        let hw = with_ssd_buffer_pool(modern_smp(4), 112 * 8192, 8192);
        assert_eq!(hw.cores(), 4);
        let bp = hw.level("BP").unwrap();
        assert_eq!(bp.kind, LevelKind::BufferPool);
        assert_eq!(bp.sharing, Sharing::Shared);
        assert_eq!(bp.lines(), 112);
        // Flash skew: random ≈ 5–6× sequential, nothing like a seek.
        let skew = bp.rand_miss_ns / bp.seq_miss_ns;
        assert!((3.0..10.0).contains(&skew), "skew {skew}");
        let disk = with_buffer_pool(modern_smp(4), 112 * 8192, 8192);
        assert!(disk.level("BP").unwrap().rand_miss_ns > 10.0 * bp.rand_miss_ns);
    }

    #[test]
    fn full_assoc_variants() {
        for l in origin2000_full_assoc().levels() {
            assert_eq!(l.assoc, Associativity::Full);
        }
        for l in tiny_full_assoc().levels() {
            assert_eq!(l.assoc, Associativity::Full);
        }
    }
}
