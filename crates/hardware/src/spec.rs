//! A complete machine description: CPU speed plus a hierarchy of cache
//! levels (paper §2.3, "Unified Hardware Model").

use crate::error::HardwareError;
use crate::level::{CacheLevel, LevelKind, Sharing};
use std::fmt;

/// A complete hardware description.
///
/// Levels are ordered from closest-to-CPU outward (L1, L2, …, then the TLB,
/// then optionally a buffer-pool level for disk I/O). The paper's cost model
/// treats all levels "individually, though equally" (Eq 3.1): the total
/// memory cost is the sum over all levels of misses scored by miss latency,
/// so the order only matters for the simulator, not for the model.
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareSpec {
    /// Machine name for reports.
    pub name: String,
    /// CPU clock speed in MHz; used to convert calibrated CPU cycles to
    /// nanoseconds (paper Eq 6.1).
    pub cpu_mhz: f64,
    levels: Vec<CacheLevel>,
    cores: u32,
}

impl HardwareSpec {
    /// Build and validate a hardware description (single-core; use
    /// [`with_cores`](HardwareSpec::with_cores) for SMP machines).
    pub fn new(
        name: impl Into<String>,
        cpu_mhz: f64,
        levels: Vec<CacheLevel>,
    ) -> Result<Self, HardwareError> {
        let spec = HardwareSpec {
            name: name.into(),
            cpu_mhz,
            levels,
            cores: 1,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// The same machine with `cores` identical cores. Levels marked
    /// [`Sharing::Private`] exist once per core; [`Sharing::Shared`]
    /// levels are contended by all cores.
    pub fn with_cores(mut self, cores: u32) -> Result<Self, HardwareError> {
        if cores == 0 {
            return Err(HardwareError::BadCoreCount { cores });
        }
        self.cores = cores;
        Ok(self)
    }

    /// Number of cores (1 unless set via
    /// [`with_cores`](HardwareSpec::with_cores)).
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// The machine as seen by **one of `dop` concurrently running
    /// threads**: private levels keep their full capacity (every core has
    /// its own), while each shared level is cut to a `1/dop` share
    /// (rounded down to whole lines, at least one line) — the §5.2
    /// concurrent-execution rule applied across cores with equal shares.
    ///
    /// The view is a single-core machine; it is the substrate the
    /// partition-parallel executor runs each worker thread on.
    pub fn thread_view(&self, dop: u32) -> HardwareSpec {
        let dop = dop.max(1);
        let levels = self
            .levels
            .iter()
            .map(|l| {
                if l.sharing == Sharing::Shared && dop > 1 {
                    let mut v = l.clone();
                    let lines = (l.lines() / u64::from(dop)).max(1);
                    v.capacity = lines * l.line;
                    v
                } else {
                    l.clone()
                }
            })
            .collect();
        HardwareSpec {
            name: format!("{} [1/{dop} thread view]", self.name),
            cpu_mhz: self.cpu_mhz,
            levels,
            cores: 1,
        }
    }

    fn validate(&self) -> Result<(), HardwareError> {
        if !(self.cpu_mhz.is_finite() && self.cpu_mhz > 0.0) {
            return Err(HardwareError::BadCpuSpeed { mhz: self.cpu_mhz });
        }
        if self.levels.is_empty() {
            return Err(HardwareError::NoLevels);
        }
        for l in &self.levels {
            if l.capacity == 0 {
                return Err(HardwareError::ZeroCapacity {
                    level: l.name.clone(),
                });
            }
            if l.line == 0 {
                return Err(HardwareError::ZeroLine {
                    level: l.name.clone(),
                });
            }
            if !l.line.is_power_of_two() {
                return Err(HardwareError::LineNotPowerOfTwo {
                    level: l.name.clone(),
                    line: l.line,
                });
            }
            if l.capacity % l.line != 0 {
                return Err(HardwareError::LineDoesNotDivideCapacity {
                    level: l.name.clone(),
                    capacity: l.capacity,
                    line: l.line,
                });
            }
            for v in [l.seq_miss_ns, l.rand_miss_ns] {
                if !(v.is_finite() && v > 0.0) {
                    return Err(HardwareError::BadLatency {
                        level: l.name.clone(),
                        value: v,
                    });
                }
            }
        }
        // Data-cache inclusion: line sizes must not shrink outward.
        let caches: Vec<&CacheLevel> = self
            .levels
            .iter()
            .filter(|l| l.kind == LevelKind::Cache)
            .collect();
        for pair in caches.windows(2) {
            if pair[1].line < pair[0].line {
                return Err(HardwareError::LineShrinks {
                    outer: pair[1].name.clone(),
                    inner: pair[0].name.clone(),
                });
            }
        }
        Ok(())
    }

    /// All levels, ordered inside-out.
    pub fn levels(&self) -> &[CacheLevel] {
        &self.levels
    }

    /// Only the data-cache levels (excluding TLBs and buffer pool),
    /// ordered inside-out.
    pub fn data_caches(&self) -> impl Iterator<Item = &CacheLevel> {
        self.levels.iter().filter(|l| l.kind == LevelKind::Cache)
    }

    /// The TLB levels (usually zero or one).
    pub fn tlbs(&self) -> impl Iterator<Item = &CacheLevel> {
        self.levels.iter().filter(|l| l.kind == LevelKind::Tlb)
    }

    /// Look a level up by name.
    pub fn level(&self, name: &str) -> Option<&CacheLevel> {
        self.levels.iter().find(|l| l.name == name)
    }

    /// Index of a level by name.
    pub fn level_index(&self, name: &str) -> Option<usize> {
        self.levels.iter().position(|l| l.name == name)
    }

    /// Convert CPU cycles to nanoseconds at this machine's clock speed.
    pub fn cycles_to_ns(&self, cycles: f64) -> f64 {
        cycles * 1000.0 / self.cpu_mhz
    }

    /// Convert nanoseconds to CPU cycles at this machine's clock speed.
    pub fn ns_to_cycles(&self, ns: f64) -> f64 {
        ns * self.cpu_mhz / 1000.0
    }

    /// A copy of this spec in which every level's capacity is scaled by
    /// `num/denom` (see [`CacheLevel::scaled`]). Used by the
    /// concurrent-execution combinator.
    pub fn scaled(&self, num: f64, denom: f64) -> HardwareSpec {
        HardwareSpec {
            name: self.name.clone(),
            cpu_mhz: self.cpu_mhz,
            levels: self.levels.iter().map(|l| l.scaled(num, denom)).collect(),
            cores: self.cores,
        }
    }

    /// Render the paper's Table 1 / Table 3 style characteristics table.
    pub fn characteristics_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "machine: {}\nCPU speed: {} MHz\n",
            self.name, self.cpu_mhz
        ));
        if self.cores > 1 {
            out.push_str(&format!("cores: {}\n", self.cores));
        }
        out.push_str(
            "level      kind         C [bytes]      B [bytes]  #lines     assoc            l_s [ns]  l_r [ns]\n",
        );
        for l in &self.levels {
            out.push_str(&format!(
                "{:<10} {:<12} {:>14} {:>14} {:>7}    {:<16} {:>8}  {:>8}\n",
                l.name,
                l.kind.to_string(),
                l.capacity,
                l.line,
                l.lines(),
                l.assoc.to_string(),
                l.seq_miss_ns,
                l.rand_miss_ns,
            ));
        }
        out
    }
}

impl fmt::Display for HardwareSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.characteristics_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::Associativity;

    fn lvl(name: &str, cap: u64, line: u64, kind: LevelKind) -> CacheLevel {
        CacheLevel {
            name: name.into(),
            kind,
            capacity: cap,
            line,
            assoc: Associativity::Ways(2),
            seq_miss_ns: 10.0,
            rand_miss_ns: 20.0,
            sharing: Sharing::Private,
        }
    }

    #[test]
    fn valid_spec_builds() {
        let hw = HardwareSpec::new(
            "test",
            100.0,
            vec![
                lvl("L1", 1024, 32, LevelKind::Cache),
                lvl("L2", 8192, 64, LevelKind::Cache),
                lvl("TLB", 4096, 1024, LevelKind::Tlb),
            ],
        )
        .unwrap();
        assert_eq!(hw.data_caches().count(), 2);
        assert_eq!(hw.tlbs().count(), 1);
        assert_eq!(hw.level("L2").unwrap().lines(), 128);
        assert_eq!(hw.level_index("TLB"), Some(2));
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            HardwareSpec::new("x", 100.0, vec![]),
            Err(HardwareError::NoLevels)
        );
    }

    #[test]
    fn rejects_zero_capacity() {
        let e = HardwareSpec::new("x", 100.0, vec![lvl("L1", 0, 32, LevelKind::Cache)]);
        assert!(matches!(e, Err(HardwareError::ZeroCapacity { .. })));
    }

    #[test]
    fn rejects_non_pow2_line() {
        let e = HardwareSpec::new("x", 100.0, vec![lvl("L1", 96, 24, LevelKind::Cache)]);
        assert!(matches!(e, Err(HardwareError::LineNotPowerOfTwo { .. })));
    }

    #[test]
    fn rejects_indivisible_line() {
        let e = HardwareSpec::new("x", 100.0, vec![lvl("L1", 100, 32, LevelKind::Cache)]);
        assert!(matches!(
            e,
            Err(HardwareError::LineDoesNotDivideCapacity { .. })
        ));
    }

    #[test]
    fn rejects_shrinking_cache_lines_but_not_tlb() {
        let e = HardwareSpec::new(
            "x",
            100.0,
            vec![
                lvl("L1", 1024, 64, LevelKind::Cache),
                lvl("L2", 8192, 32, LevelKind::Cache),
            ],
        );
        assert!(matches!(e, Err(HardwareError::LineShrinks { .. })));
        // A TLB with a big "line" (page) between caches is fine.
        let ok = HardwareSpec::new(
            "x",
            100.0,
            vec![
                lvl("L1", 1024, 32, LevelKind::Cache),
                lvl("TLB", 4096, 2048, LevelKind::Tlb),
                lvl("L2", 8192, 64, LevelKind::Cache),
            ],
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn rejects_bad_latency_and_cpu() {
        let mut bad = lvl("L1", 1024, 32, LevelKind::Cache);
        bad.rand_miss_ns = -1.0;
        assert!(matches!(
            HardwareSpec::new("x", 100.0, vec![bad]),
            Err(HardwareError::BadLatency { .. })
        ));
        assert!(matches!(
            HardwareSpec::new("x", 0.0, vec![lvl("L1", 1024, 32, LevelKind::Cache)]),
            Err(HardwareError::BadCpuSpeed { .. })
        ));
    }

    #[test]
    fn cycle_conversion_roundtrip() {
        let hw =
            HardwareSpec::new("x", 250.0, vec![lvl("L1", 1024, 32, LevelKind::Cache)]).unwrap();
        // 250 MHz: 1 cycle = 4 ns.
        assert!((hw.cycles_to_ns(1.0) - 4.0).abs() < 1e-12);
        assert!((hw.ns_to_cycles(hw.cycles_to_ns(123.0)) - 123.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_halves_capacity() {
        let hw =
            HardwareSpec::new("x", 100.0, vec![lvl("L1", 1024, 32, LevelKind::Cache)]).unwrap();
        let half = hw.scaled(1.0, 2.0);
        assert_eq!(half.levels()[0].capacity, 512);
    }

    #[test]
    fn cores_default_and_builder() {
        let hw =
            HardwareSpec::new("x", 100.0, vec![lvl("L1", 1024, 32, LevelKind::Cache)]).unwrap();
        assert_eq!(hw.cores(), 1);
        let smp = hw.clone().with_cores(8).unwrap();
        assert_eq!(smp.cores(), 8);
        assert_eq!(
            hw.with_cores(0),
            Err(HardwareError::BadCoreCount { cores: 0 })
        );
    }

    #[test]
    fn thread_view_scales_only_shared_levels() {
        let mut l2 = lvl("L2", 8192, 64, LevelKind::Cache);
        l2.sharing = Sharing::Shared;
        let hw = HardwareSpec::new("x", 100.0, vec![lvl("L1", 1024, 32, LevelKind::Cache), l2])
            .unwrap()
            .with_cores(4)
            .unwrap();
        let view = hw.thread_view(4);
        assert_eq!(view.cores(), 1);
        // Private L1 keeps its full capacity; shared L2 is quartered.
        assert_eq!(view.level("L1").unwrap().capacity, 1024);
        assert_eq!(view.level("L2").unwrap().capacity, 2048);
        // dop = 1 leaves everything intact.
        assert_eq!(hw.thread_view(1).level("L2").unwrap().capacity, 8192);
        // Extreme dop floors at one line.
        assert_eq!(hw.thread_view(1_000_000).level("L2").unwrap().capacity, 64);
    }

    #[test]
    fn characteristics_table_reports_cores() {
        let hw = HardwareSpec::new("x", 100.0, vec![lvl("L1", 1024, 32, LevelKind::Cache)])
            .unwrap()
            .with_cores(4)
            .unwrap();
        assert!(hw.characteristics_table().contains("cores: 4"));
        // Single-core specs keep the original table shape.
        let single = HardwareSpec::new("x", 100.0, vec![lvl("L1", 1024, 32, LevelKind::Cache)]);
        assert!(!single.unwrap().characteristics_table().contains("cores:"));
    }
}
