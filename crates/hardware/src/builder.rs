//! Fluent construction of custom [`HardwareSpec`]s.

use crate::error::HardwareError;
use crate::level::{Associativity, CacheLevel, LevelKind, Sharing};
use crate::spec::HardwareSpec;

/// Fluent builder for a [`HardwareSpec`].
///
/// ```
/// use gcm_hardware::{HardwareBuilder, Associativity};
///
/// let hw = HardwareBuilder::new("my box", 1000.0)
///     .cache("L1", 64 * 1024, 64, Associativity::Ways(8), 3.0, 6.0)
///     .cache("L2", 2 * 1024 * 1024, 64, Associativity::Ways(16), 20.0, 60.0)
///     .tlb("TLB", 128, 4096, 40.0)
///     .build()
///     .unwrap();
/// assert_eq!(hw.levels().len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct HardwareBuilder {
    name: String,
    cpu_mhz: f64,
    levels: Vec<CacheLevel>,
    cores: u32,
}

impl HardwareBuilder {
    /// Start a description for a machine running at `cpu_mhz` MHz.
    pub fn new(name: impl Into<String>, cpu_mhz: f64) -> Self {
        HardwareBuilder {
            name: name.into(),
            cpu_mhz,
            levels: Vec::new(),
            cores: 1,
        }
    }

    /// Declare the machine to have `cores` identical cores.
    pub fn cores(mut self, cores: u32) -> Self {
        self.cores = cores;
        self
    }

    /// Mark the most recently appended level as shared across cores
    /// (levels default to private-per-core).
    pub fn shared(mut self) -> Self {
        if let Some(last) = self.levels.last_mut() {
            last.sharing = Sharing::Shared;
        }
        self
    }

    /// Append a data-cache level (inside-out order).
    pub fn cache(
        mut self,
        name: impl Into<String>,
        capacity: u64,
        line: u64,
        assoc: Associativity,
        seq_miss_ns: f64,
        rand_miss_ns: f64,
    ) -> Self {
        self.levels.push(CacheLevel {
            name: name.into(),
            kind: LevelKind::Cache,
            capacity,
            line,
            assoc,
            seq_miss_ns,
            rand_miss_ns,
            sharing: Sharing::Private,
        });
        self
    }

    /// Append a TLB with `entries` entries over `page`-byte pages and a
    /// single miss latency (TLBs do not distinguish sequential from random
    /// access, paper §2.2).
    pub fn tlb(mut self, name: impl Into<String>, entries: u64, page: u64, miss_ns: f64) -> Self {
        self.levels.push(CacheLevel {
            name: name.into(),
            kind: LevelKind::Tlb,
            capacity: entries * page,
            line: page,
            assoc: Associativity::Full,
            seq_miss_ns: miss_ns,
            rand_miss_ns: miss_ns,
            sharing: Sharing::Private,
        });
        self
    }

    /// Append a buffer-pool level: `pool` bytes of main memory caching
    /// `page`-byte disk pages with the given sequential/random page costs.
    pub fn buffer_pool(
        mut self,
        name: impl Into<String>,
        pool: u64,
        page: u64,
        seq_miss_ns: f64,
        rand_miss_ns: f64,
    ) -> Self {
        self.levels.push(CacheLevel {
            name: name.into(),
            kind: LevelKind::BufferPool,
            capacity: pool,
            line: page,
            assoc: Associativity::Full,
            seq_miss_ns,
            rand_miss_ns,
            // The buffer pool is main memory: one instance for all cores.
            sharing: Sharing::Shared,
        });
        self
    }

    /// Validate and produce the spec.
    pub fn build(self) -> Result<HardwareSpec, HardwareError> {
        HardwareSpec::new(self.name, self.cpu_mhz, self.levels)?.with_cores(self.cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_mixed_hierarchy() {
        let hw = HardwareBuilder::new("b", 500.0)
            .cache("L1", 1024, 32, Associativity::DirectMapped, 4.0, 10.0)
            .tlb("TLB", 16, 4096, 80.0)
            .buffer_pool("BP", 1 << 20, 8192, 80_000.0, 6_000_000.0)
            .build()
            .unwrap();
        assert_eq!(hw.levels().len(), 3);
        assert_eq!(hw.level("TLB").unwrap().capacity, 16 * 4096);
        assert_eq!(hw.level("BP").unwrap().kind, LevelKind::BufferPool);
    }

    #[test]
    fn cores_and_shared_levels() {
        let hw = HardwareBuilder::new("smp", 3000.0)
            .cores(8)
            .cache("L1", 32 * 1024, 64, Associativity::Ways(8), 2.0, 4.0)
            .cache("L3", 32 << 20, 64, Associativity::Ways(16), 25.0, 90.0)
            .shared()
            .build()
            .unwrap();
        assert_eq!(hw.cores(), 8);
        assert_eq!(hw.level("L1").unwrap().sharing, Sharing::Private);
        assert_eq!(hw.level("L3").unwrap().sharing, Sharing::Shared);
        // shared() on an empty builder is a no-op, not a panic.
        assert!(HardwareBuilder::new("e", 100.0).shared().build().is_err());
    }

    #[test]
    fn propagates_validation_errors() {
        let r = HardwareBuilder::new("b", 500.0)
            .cache("L1", 1000, 24, Associativity::Full, 4.0, 10.0)
            .build();
        assert!(r.is_err());
    }
}
