//! Validation errors for hardware descriptions.

use std::fmt;

/// An invalid hardware description.
#[derive(Debug, Clone, PartialEq)]
pub enum HardwareError {
    /// A cache level has zero capacity.
    ZeroCapacity { level: String },
    /// A cache level has a zero line size.
    ZeroLine { level: String },
    /// Line size does not divide the capacity.
    LineDoesNotDivideCapacity {
        level: String,
        capacity: u64,
        line: u64,
    },
    /// Line size is not a power of two (required by the simulator's
    /// address-to-set mapping; real hardware lines are powers of two too).
    LineNotPowerOfTwo { level: String, line: u64 },
    /// A latency is not a positive, finite number.
    BadLatency { level: String, value: f64 },
    /// The hierarchy has no data-cache level at all.
    NoLevels,
    /// Data-cache levels must have non-decreasing line sizes so that a line
    /// of level `i` is contained in a line of level `i+1` (TLBs are exempt:
    /// they form a parallel hierarchy keyed by pages).
    LineShrinks { outer: String, inner: String },
    /// CPU speed must be positive.
    BadCpuSpeed { mhz: f64 },
    /// A machine needs at least one core.
    BadCoreCount { cores: u32 },
}

impl fmt::Display for HardwareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HardwareError::ZeroCapacity { level } => {
                write!(f, "cache level {level} has zero capacity")
            }
            HardwareError::ZeroLine { level } => {
                write!(f, "cache level {level} has zero line size")
            }
            HardwareError::LineDoesNotDivideCapacity {
                level,
                capacity,
                line,
            } => write!(
                f,
                "cache level {level}: line size {line} does not divide capacity {capacity}"
            ),
            HardwareError::LineNotPowerOfTwo { level, line } => {
                write!(
                    f,
                    "cache level {level}: line size {line} is not a power of two"
                )
            }
            HardwareError::BadLatency { level, value } => {
                write!(
                    f,
                    "cache level {level}: latency {value} must be positive and finite"
                )
            }
            HardwareError::NoLevels => write!(f, "hardware description has no cache levels"),
            HardwareError::LineShrinks { outer, inner } => write!(
                f,
                "cache level {outer} has a smaller line than inner level {inner}"
            ),
            HardwareError::BadCpuSpeed { mhz } => {
                write!(f, "CPU speed {mhz} MHz must be positive and finite")
            }
            HardwareError::BadCoreCount { cores } => {
                write!(f, "a machine needs at least one core, got {cores}")
            }
        }
    }
}

impl std::error::Error for HardwareError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = HardwareError::LineDoesNotDivideCapacity {
            level: "L1".into(),
            capacity: 100,
            line: 32,
        };
        assert!(e.to_string().contains("does not divide"));
        assert!(HardwareError::NoLevels
            .to_string()
            .contains("no cache levels"));
    }
}
