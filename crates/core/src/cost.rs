//! Scoring misses with latencies: the paper's Eq 3.1 and Eq 6.1.
//!
//! ```text
//! T_mem = Σ_i ( Ms_i · l_s,i  +  Mr_i · l_r,i )        (3.1)
//! T     = T_mem + T_cpu                                 (6.1)
//! ```
//!
//! `T_cpu` is the pure CPU cost of the algorithm, calibrated once per
//! algorithm in an in-cache setting (paper §6.1); [`CpuCost`] carries that
//! calibration.

use crate::eval::{self, footprint_lines, CacheState};
use crate::misses::{Geometry, MissPair};
use crate::pattern::Pattern;
use crate::region::Region;
use gcm_hardware::{HardwareSpec, Sharing};
use std::fmt;

/// Cost contribution of one cache level.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelCost {
    /// Level name (e.g. `"L2"`).
    pub name: String,
    /// Estimated sequential misses `Ms_i`.
    pub seq_misses: f64,
    /// Estimated random misses `Mr_i`.
    pub rand_misses: f64,
    /// `Ms_i·l_s,i + Mr_i·l_r,i` in nanoseconds.
    pub ns: f64,
}

impl LevelCost {
    /// Total misses at this level.
    pub fn misses(&self) -> f64 {
        self.seq_misses + self.rand_misses
    }
}

/// Full per-level cost breakdown for one pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct CostReport {
    /// Per-level breakdown, in spec order.
    pub levels: Vec<LevelCost>,
    /// Total memory access time `T_mem` (Eq 3.1) in nanoseconds.
    pub mem_ns: f64,
}

impl CostReport {
    /// Misses at the level called `name`, if present.
    pub fn level(&self, name: &str) -> Option<&LevelCost> {
        self.levels.iter().find(|l| l.name == name)
    }

    /// Total misses across all levels.
    pub fn total_misses(&self) -> f64 {
        self.levels.iter().map(LevelCost::misses).sum()
    }
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "level   seq misses      rand misses     time [ns]")?;
        for l in &self.levels {
            writeln!(
                f,
                "{:<7} {:>14.1} {:>16.1} {:>13.1}",
                l.name, l.seq_misses, l.rand_misses, l.ns
            )?;
        }
        write!(f, "T_mem = {:.1} ns", self.mem_ns)
    }
}

/// Pure CPU cost of an algorithm, calibrated in-cache (paper §6.1): a
/// fixed overhead plus a per-logical-operation cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuCost {
    /// Fixed start-up cost in nanoseconds.
    pub fixed_ns: f64,
    /// Cost per logical operation in nanoseconds.
    pub per_op_ns: f64,
}

impl CpuCost {
    /// The default per-logical-operation charge of the planner stack
    /// (see [`CpuCost::default_planner`]), in nanoseconds.
    pub const DEFAULT_PLANNER_PER_OP_NS: f64 = 4.0;

    /// A calibration with zero fixed cost.
    pub fn per_op(per_op_ns: f64) -> CpuCost {
        CpuCost {
            fixed_ns: 0.0,
            per_op_ns,
        }
    }

    /// The default planner calibration: zero fixed cost,
    /// [`DEFAULT_PLANNER_PER_OP_NS`](CpuCost::DEFAULT_PLANNER_PER_OP_NS)
    /// per logical operation. The paper calibrates `T_cpu` per algorithm
    /// (§6.1); every costing layer that has not been handed a machine
    /// calibration uses this single shared default, so the planner, the
    /// whole-plan optimizer, and the service price CPU identically.
    pub const fn default_planner() -> CpuCost {
        CpuCost {
            fixed_ns: 0.0,
            per_op_ns: CpuCost::DEFAULT_PLANNER_PER_OP_NS,
        }
    }

    /// `T_cpu` for `ops` logical operations.
    pub fn ns(&self, ops: u64) -> f64 {
        self.fixed_ns + self.per_op_ns * ops as f64
    }

    /// Eq 6.1, `T = T_mem + T_cpu`, in one place: memory time plus this
    /// calibration's CPU charge for `ops` logical operations. Both the
    /// model side ([`CostModel::total_ns`], predicted `T_mem`) and the
    /// measured side (`gcm-engine`'s `RunStats::total_ns`, charged
    /// `T_mem`) route through this helper, so the formula can never
    /// drift between prediction and measurement.
    pub fn eq61_ns(&self, mem_ns: f64, ops: u64) -> f64 {
        mem_ns + self.ns(ops)
    }
}

/// Parameters of the bandwidth/overlap extension to Eq 6.1.
///
/// The paper's Eq 6.1 (`T = T_mem + T_cpu`) assumes scalar,
/// non-overlapped execution: every miss stalls the CPU for its full
/// latency. Out-of-order cores running vectorized, software-prefetched
/// kernels violate both assumptions — sequential misses stream at the
/// machine's *sustained* bandwidth rather than paying `l_s` each, and
/// memory time overlaps with compute. The extended total is
///
/// ```text
/// T = max(T_mem_bw, T_cpu) + α · min(T_mem_bw, T_cpu)
/// ```
///
/// where `T_mem_bw` reprices each level's **sequential** misses at a
/// per-level sustained-bandwidth ceiling (`line_i / bw_i` per miss;
/// random misses still pay `l_r,i` — a dependent pointer chase cannot
/// be streamed), and `α ∈ [0, 1]` is the non-overlapped fraction:
/// `α = 1` means no overlap (the paper's serial addition), `α = 0`
/// perfect overlap (the slower of the two resources hides the other
/// entirely).
///
/// With `α = 1` and no sustained-bandwidth entries, the extension
/// degenerates **exactly** (bit-for-bit) to Eq 6.1 — levels without a
/// calibrated bandwidth charge `l_s,i` per sequential miss, precisely
/// Eq 3.1's term.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlapParams {
    /// Non-overlapped fraction `α ∈ [0, 1]` of the smaller of
    /// `T_mem_bw` and `T_cpu`.
    pub alpha: f64,
    /// Calibrated sustained sequential bandwidth per level, in
    /// bytes/ns, aligned with the spec's level order. Levels beyond the
    /// vector's length (or with a non-positive entry) fall back to the
    /// latency-derived price `l_s,i` — in particular a trailing TLB
    /// level, which transfers no data and has no meaningful bandwidth.
    pub sustained_bw: Vec<f64>,
}

impl OverlapParams {
    /// The degenerate parameters reproducing Eq 6.1 exactly: `α = 1`,
    /// no sustained-bandwidth ceilings.
    pub fn eq61() -> OverlapParams {
        OverlapParams {
            alpha: 1.0,
            sustained_bw: Vec::new(),
        }
    }

    /// Overlap parameters with the given non-overlapped fraction and
    /// per-level sustained bandwidths (bytes/ns, spec level order).
    pub fn new(alpha: f64, sustained_bw: Vec<f64>) -> OverlapParams {
        OverlapParams {
            alpha: alpha.clamp(0.0, 1.0),
            sustained_bw,
        }
    }

    /// The price of one sequential miss at level `idx` with line size
    /// `line` and latency-derived price `seq_miss_ns`: `line / bw` if a
    /// sustained bandwidth was calibrated for the level, else exactly
    /// `seq_miss_ns` (so the fallback cannot drift from Eq 3.1 by
    /// floating-point round-trips through `seq_bandwidth()`).
    pub fn seq_unit_ns(&self, idx: usize, line: u64, seq_miss_ns: f64) -> f64 {
        match self.sustained_bw.get(idx).copied() {
            Some(bw) if bw > 0.0 => line as f64 / bw,
            _ => seq_miss_ns,
        }
    }
}

/// The extended total of [`OverlapParams`]: both resource times and the
/// overlap-combined result.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlapReport {
    /// Bandwidth-repriced memory time `T_mem_bw`, ns.
    pub mem_bw_ns: f64,
    /// CPU time `T_cpu`, ns.
    pub cpu_ns: f64,
    /// Non-overlapped fraction used.
    pub alpha: f64,
    /// `max(T_mem_bw, T_cpu) + α·min(T_mem_bw, T_cpu)`, ns.
    pub total_ns: f64,
}

impl OverlapReport {
    /// Combine the two resource times under the overlap rule.
    pub fn combine(mem_bw_ns: f64, cpu_ns: f64, alpha: f64) -> OverlapReport {
        let (hi, lo) = if mem_bw_ns >= cpu_ns {
            (mem_bw_ns, cpu_ns)
        } else {
            (cpu_ns, mem_bw_ns)
        };
        OverlapReport {
            mem_bw_ns,
            cpu_ns,
            alpha,
            total_ns: hi + alpha * lo,
        }
    }
}

/// Per-level cache states for *staged* pricing: one logical
/// [`CacheState`] per hierarchy level, threaded across explicit
/// [`CostModel::advance`] / [`CostModel::advance_parallel`] calls.
///
/// Pricing one compound `⊕` pattern in a single [`CostModel::report`]
/// call threads the state internally; staged pricing exposes the same
/// threading *between* calls, which is what lets a multi-core stage (a
/// different combination rule per level) sit in the middle of an
/// otherwise sequential plan.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchyState {
    states: Vec<CacheState>,
}

impl HierarchyState {
    /// The state of level `idx` (spec order).
    pub fn level(&self, idx: usize) -> &CacheState {
        &self.states[idx]
    }
}

/// Cost of a *batch* of coexisting queries (see
/// [`CostModel::batch_cost`]): each query's whole compound pattern is
/// one member of the `⊙`-composition, priced both composed (sharing the
/// shared levels) and solo (running alone), so an admission controller
/// can compare batched against serial execution.
#[derive(Debug, Clone)]
pub struct BatchCost {
    /// Each query's memory time inside the batch, ns: shared levels are
    /// divided among the queries proportionally to their footprints
    /// (Eq 5.3 across cores), private levels see one query each.
    pub per_query_ns: Vec<f64>,
    /// Each query's memory time running alone from the same initial
    /// state, ns.
    pub solo_ns: Vec<f64>,
}

impl BatchCost {
    /// The batch's elapsed memory time: the slowest member, since all
    /// queries run concurrently.
    pub fn wall_ns(&self) -> f64 {
        self.per_query_ns.iter().copied().fold(0.0, f64::max)
    }

    /// Elapsed memory time of running the members one after the other
    /// instead (each from the same initial state).
    pub fn serial_ns(&self) -> f64 {
        self.solo_ns.iter().sum()
    }

    /// Predicted speedup of batching over serial execution (> 1 means
    /// the batch wins; heavy shared-level contention pushes it < 1).
    pub fn speedup(&self) -> f64 {
        let wall = self.wall_ns();
        if wall > 0.0 {
            self.serial_ns() / wall
        } else {
            1.0
        }
    }
}

/// Cost of one stage executed by `d` concurrent threads
/// (see [`CostModel::advance_parallel`]).
#[derive(Debug, Clone)]
pub struct ParallelCost {
    /// Aggregate per-level breakdown: miss counts and memory time summed
    /// over all threads (total machine work, not elapsed time).
    pub report: CostReport,
    /// Each thread's own memory time across all levels, ns.
    pub per_thread_ns: Vec<f64>,
    /// The stage's elapsed (wall-clock) memory time: the slowest
    /// thread, since all threads run concurrently.
    pub wall_ns: f64,
}

/// The cost model for one machine: estimates misses per level and scores
/// them with the machine's latencies.
#[derive(Debug, Clone)]
pub struct CostModel {
    spec: HardwareSpec,
}

impl CostModel {
    /// A cost model for the given machine.
    pub fn new(spec: HardwareSpec) -> CostModel {
        CostModel { spec }
    }

    /// The machine description.
    pub fn spec(&self) -> &HardwareSpec {
        &self.spec
    }

    /// Estimated misses per level (cold caches), in spec order.
    pub fn misses(&self, p: &Pattern) -> Vec<MissPair> {
        eval::eval(p, self.spec.levels())
    }

    /// Estimated misses per level starting from `state` (one shared
    /// logical state, applied per level).
    pub fn misses_from(&self, p: &Pattern, state: &CacheState) -> Vec<MissPair> {
        self.spec
            .levels()
            .iter()
            .map(|lvl| {
                let mut st = state.clone();
                eval::eval_level(p, &Geometry::of(lvl), &mut st)
            })
            .collect()
    }

    /// Full cost report: per-level misses scored with latencies (Eq 3.1).
    pub fn report(&self, p: &Pattern) -> CostReport {
        self.score(self.misses(p))
    }

    /// Full cost report starting from a warm [`CacheState`] — the Eq 5.2
    /// surface for whole-plan composition: pricing a pattern that runs
    /// *right after* another one (whose residue `state` describes)
    /// instead of against cold caches.
    pub fn report_from(&self, p: &Pattern, state: &CacheState) -> CostReport {
        self.score(self.misses_from(p, state))
    }

    fn score(&self, pairs: Vec<MissPair>) -> CostReport {
        let levels: Vec<LevelCost> = self
            .spec
            .levels()
            .iter()
            .zip(&pairs)
            .map(|(lvl, m)| LevelCost {
                name: lvl.name.clone(),
                seq_misses: m.seq,
                rand_misses: m.rand,
                ns: m.seq * lvl.seq_miss_ns + m.rand * lvl.rand_miss_ns,
            })
            .collect();
        let mem_ns = levels.iter().map(|l| l.ns).sum();
        CostReport { levels, mem_ns }
    }

    /// `T_mem` (Eq 3.1) in nanoseconds.
    pub fn mem_ns(&self, p: &Pattern) -> f64 {
        self.report(p).mem_ns
    }

    /// `T = T_mem + T_cpu` (Eq 6.1) in nanoseconds, for an algorithm that
    /// performs `ops` logical operations under the `cpu` calibration
    /// (via the shared [`CpuCost::eq61_ns`] helper).
    pub fn total_ns(&self, p: &Pattern, cpu: CpuCost, ops: u64) -> f64 {
        cpu.eq61_ns(self.mem_ns(p), ops)
    }

    /// `T_mem_bw`: Eq 3.1's miss counts repriced under the per-level
    /// sustained-bandwidth ceilings of `ov` (see [`OverlapParams`]).
    /// Sequential misses at a level with a calibrated bandwidth cost
    /// `line_i / bw_i` each; everything else keeps its Eq 3.1 price, so
    /// with no calibrated bandwidths this *is* [`CostModel::mem_ns`].
    pub fn mem_bw_ns(&self, p: &Pattern, ov: &OverlapParams) -> f64 {
        self.spec
            .levels()
            .iter()
            .zip(self.misses(p))
            .enumerate()
            .map(|(i, (lvl, m))| {
                m.seq * ov.seq_unit_ns(i, lvl.line, lvl.seq_miss_ns) + m.rand * lvl.rand_miss_ns
            })
            .sum()
    }

    /// The bandwidth/overlap extension of Eq 6.1:
    /// `T = max(T_mem_bw, T_cpu) + α·min(T_mem_bw, T_cpu)` with
    /// `T_mem_bw` from [`CostModel::mem_bw_ns`] and `T_cpu` from the
    /// `cpu` calibration. With [`OverlapParams::eq61`] this equals
    /// [`CostModel::total_ns`] exactly.
    pub fn overlap_ns(
        &self,
        p: &Pattern,
        cpu: CpuCost,
        ops: u64,
        ov: &OverlapParams,
    ) -> OverlapReport {
        OverlapReport::combine(self.mem_bw_ns(p, ov), cpu.ns(ops), ov.alpha)
    }

    /// Begin a staged pricing pass: every level starts from (a copy of)
    /// the logical `initial` state.
    pub fn staged(&self, initial: &CacheState) -> HierarchyState {
        HierarchyState {
            states: vec![initial.clone(); self.spec.levels().len()],
        }
    }

    /// Price one sequential stage from the current staged state,
    /// advancing it. A fold of `advance` over `⊕`-phases reproduces
    /// [`CostModel::report_from`] on the composed pattern exactly.
    pub fn advance(&self, p: &Pattern, st: &mut HierarchyState) -> CostReport {
        let pairs: Vec<MissPair> = self
            .spec
            .levels()
            .iter()
            .zip(st.states.iter_mut())
            .map(|(lvl, state)| eval::eval_level(p, &Geometry::of(lvl), state))
            .collect();
        self.score(pairs)
    }

    /// Price one plan node end to end from the current staged state:
    /// [`advance`](CostModel::advance) for `T_mem` under the threaded
    /// cache state (Eq 5.2), plus `cpu.ns(ops)` for `T_cpu` — the
    /// per-node Eq 6.1 hook `EXPLAIN ANALYZE` prices its tree with.
    /// Returns the per-level report and the node's total nanoseconds.
    pub fn advance_total(
        &self,
        p: &Pattern,
        st: &mut HierarchyState,
        cpu: &CpuCost,
        ops: u64,
    ) -> (CostReport, f64) {
        let report = self.advance(p, st);
        let total = cpu.eq61_ns(report.mem_ns, ops);
        (report, total)
    }

    /// Price one stage executed by `threads.len()` concurrent threads on
    /// separate cores — the `⊙` rule of Eq 5.3 applied *across cores*,
    /// level by level:
    ///
    /// * a [`Shared`](Sharing::Shared) level is divided among all
    ///   threads proportionally to their footprints, exactly like the
    ///   coexisting patterns of a single-threaded `⊙`;
    /// * a [`Private`](Sharing::Private) level exists once per core, so
    ///   each thread sees its full capacity. Thread 0 (the core that ran
    ///   the preceding serial stages) starts from the incoming state;
    ///   the other cores' private caches start cold.
    ///
    /// The stage's elapsed memory time is the slowest thread
    /// ([`ParallelCost::wall_ns`]); with skewed per-thread patterns the
    /// straggler dominates, which is precisely the effect partition skew
    /// has on a partition-parallel operator. Afterwards the state holds
    /// thread 0's residue at private levels and the threads' combined
    /// residue at shared levels.
    pub fn advance_parallel(&self, threads: &[Pattern], st: &mut HierarchyState) -> ParallelCost {
        self.advance_parallel_shared(threads, st, &[])
    }

    /// [`advance_parallel`](CostModel::advance_parallel) with *shared
    /// data*: regions in `shared` (immutable structures several threads
    /// reference, e.g. one hash-join build probed by co-admitted
    /// queries) are counted **once** in each shared level's capacity
    /// denominator, not once per referencing thread — the threads
    /// revisit the same physical lines, so under Eq 5.3 the data claims
    /// one footprint. Each thread's numerator keeps its full footprint
    /// (its claim on the level includes the shared lines it revisits),
    /// so shares can sum above 1; they are clamped at 1 per thread (a
    /// thread never sees more than the whole level). An empty `shared`
    /// reproduces [`advance_parallel`](CostModel::advance_parallel)
    /// exactly.
    pub fn advance_parallel_shared(
        &self,
        threads: &[Pattern],
        st: &mut HierarchyState,
        shared: &[Region],
    ) -> ParallelCost {
        let d = threads.len();
        if d <= 1 {
            let report = match threads.first() {
                Some(p) => self.advance(p, st),
                None => self.advance(&Pattern::empty(), st),
            };
            let wall_ns = report.mem_ns;
            return ParallelCost {
                per_thread_ns: vec![wall_ns],
                wall_ns,
                report,
            };
        }
        let mut shared_unique: Vec<&Region> = Vec::with_capacity(shared.len());
        for r in shared {
            if !shared_unique.iter().any(|s| s.id() == r.id()) {
                shared_unique.push(r);
            }
        }
        let shared_ids: Vec<crate::region::RegionId> =
            shared_unique.iter().map(|r| r.id()).collect();
        let mut per_thread_ns = vec![0.0; d];
        let mut levels = Vec::with_capacity(self.spec.levels().len());
        for (lvl, state) in self.spec.levels().iter().zip(st.states.iter_mut()) {
            let geo = Geometry::of(lvl);
            let mut pairs = Vec::with_capacity(d);
            if lvl.sharing == Sharing::Shared {
                let feet: Vec<f64> = threads.iter().map(|t| footprint_lines(t, &geo)).collect();
                // Capacity denominator: per-thread footprints with the
                // shared regions excluded, plus each referenced shared
                // region's lines exactly once.
                let mut denom: f64 = threads
                    .iter()
                    .map(|t| eval::footprint_lines_excluding(t, &geo, &shared_ids))
                    .sum();
                for r in &shared_unique {
                    if threads.iter().any(|t| eval::references_region(t, r.id())) {
                        denom += r.lines(geo.b as u64).max(1.0);
                    }
                }
                let mut merged = CacheState::cold();
                for (t, foot) in threads.iter().zip(&feet) {
                    let share = if denom > 0.0 {
                        (foot / denom).min(1.0)
                    } else {
                        1.0
                    };
                    let mut sub = state.clone();
                    pairs.push(eval::eval_level(t, &geo.scaled(share), &mut sub));
                    merged.merge_add(&sub);
                }
                *state = merged;
            } else {
                let mut core0 = None;
                for (i, t) in threads.iter().enumerate() {
                    let mut sub = if i == 0 {
                        state.clone()
                    } else {
                        CacheState::cold()
                    };
                    pairs.push(eval::eval_level(t, &geo, &mut sub));
                    if i == 0 {
                        core0 = Some(sub);
                    }
                }
                *state = core0.expect("d >= 2 threads");
            }
            let mut sum = MissPair::default();
            for (t, pair) in pairs.iter().enumerate() {
                per_thread_ns[t] += pair.seq * lvl.seq_miss_ns + pair.rand * lvl.rand_miss_ns;
                sum += *pair;
            }
            levels.push(LevelCost {
                name: lvl.name.clone(),
                seq_misses: sum.seq,
                rand_misses: sum.rand,
                ns: sum.seq * lvl.seq_miss_ns + sum.rand * lvl.rand_miss_ns,
            });
        }
        let mem_ns = levels.iter().map(|l| l.ns).sum();
        let wall_ns = per_thread_ns.iter().copied().fold(0.0, f64::max);
        ParallelCost {
            report: CostReport { levels, mem_ns },
            per_thread_ns,
            wall_ns,
        }
    }

    /// Price a batch of heterogeneous coexisting queries — the `⊙` rule
    /// of Eq 5.3 applied *across queries*: each member pattern is one
    /// query's whole compound plan, all of them running concurrently on
    /// separate cores of this machine. Shared levels are divided among
    /// the queries by footprint; private levels see one query each
    /// (every core beyond the first starts cold, exactly as in
    /// [`CostModel::advance_parallel`]). Each query is additionally
    /// priced *solo* from the same `initial` state, so the caller can
    /// compare the batched wall time against serial execution — the
    /// admission predicate of a batch scheduler.
    pub fn batch_cost(&self, queries: &[Pattern], initial: &CacheState) -> BatchCost {
        self.batch_cost_shared(queries, initial, &[])
    }

    /// [`batch_cost`](CostModel::batch_cost) with *shared data*: regions
    /// in `shared` are counted once in every shared level's capacity
    /// denominator no matter how many member queries reference them
    /// ([`advance_parallel_shared`](CostModel::advance_parallel_shared))
    /// — the pricing rule for co-admitted queries probing one shared
    /// hash-join build. Solo prices are unaffected (a query alone never
    /// double-counts anything).
    pub fn batch_cost_shared(
        &self,
        queries: &[Pattern],
        initial: &CacheState,
        shared: &[Region],
    ) -> BatchCost {
        if queries.is_empty() {
            return BatchCost {
                per_query_ns: Vec::new(),
                solo_ns: Vec::new(),
            };
        }
        let par = self.advance_parallel_shared(queries, &mut self.staged(initial), shared);
        let solo_ns = queries
            .iter()
            .map(|q| self.report_from(q, initial).mem_ns)
            .collect();
        BatchCost {
            per_query_ns: par.per_thread_ns,
            solo_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::Region;
    use gcm_hardware::presets;

    #[test]
    fn report_scores_misses_with_latencies() {
        let hw = presets::tiny(); // L1: 5/15 ns, L2: 50/150 ns, TLB: 100 ns
        let model = CostModel::new(hw);
        let a = Region::new("A", 1000, 8); // 8000 B
        let rep = model.report(&Pattern::s_trav(a));
        // L1: 250 sequential misses × 5 ns.
        let l1 = rep.level("L1").unwrap();
        assert!((l1.seq_misses - 250.0).abs() < 1e-9);
        assert!((l1.ns - 1250.0).abs() < 1e-9);
        // L2: 125 × 50 ns.
        let l2 = rep.level("L2").unwrap();
        assert!((l2.ns - 6250.0).abs() < 1e-9);
        // TLB: 8 pages; TLB misses use the single latency.
        let tlb = rep.level("TLB").unwrap();
        assert!((tlb.ns - 800.0).abs() < 1e-9);
        assert!((rep.mem_ns - (1250.0 + 6250.0 + 800.0)).abs() < 1e-9);
    }

    #[test]
    fn random_misses_cost_more() {
        let hw = presets::tiny();
        let model = CostModel::new(hw);
        let a = Region::new("A", 1000, 8);
        let b = Region::new("B", 1000, 8);
        let seq_cost = model.mem_ns(&Pattern::s_trav(a));
        let rand_cost = model.mem_ns(&Pattern::r_trav(b));
        assert!(rand_cost > seq_cost);
    }

    #[test]
    fn eq61_total_adds_cpu() {
        let model = CostModel::new(presets::tiny());
        let a = Region::new("A", 1000, 8);
        let p = Pattern::s_trav(a);
        let cpu = CpuCost {
            fixed_ns: 500.0,
            per_op_ns: 2.0,
        };
        let t = model.total_ns(&p, cpu, 1000);
        assert!((t - (model.mem_ns(&p) + 2500.0)).abs() < 1e-9);
    }

    #[test]
    fn warm_state_reduces_cost() {
        let model = CostModel::new(presets::tiny());
        let a = Region::new("A", 100, 8); // fits every level
        let p = Pattern::s_trav(a.clone());
        let mut warm = CacheState::cold();
        warm.set(&a, 1.0);
        let cold: f64 = model.misses(&p).iter().map(|m| m.total()).sum();
        let warmed: f64 = model.misses_from(&p, &warm).iter().map(|m| m.total()).sum();
        assert!(cold > 0.0);
        assert_eq!(warmed, 0.0);
    }

    #[test]
    fn report_from_warm_state_is_cheaper() {
        let model = CostModel::new(presets::tiny());
        let a = Region::new("A", 100, 8); // fits every level
        let p = Pattern::s_trav(a.clone());
        let cold = model.report(&p);
        let mut warm = CacheState::cold();
        warm.set(&a, 1.0);
        let warmed = model.report_from(&p, &warm);
        assert!(cold.mem_ns > 0.0);
        assert_eq!(warmed.mem_ns, 0.0);
        // A cold starting state reproduces the plain report.
        let recold = model.report_from(&p, &CacheState::cold());
        assert_eq!(recold, cold);
    }

    #[test]
    fn report_display_contains_levels() {
        let model = CostModel::new(presets::tiny());
        let a = Region::new("A", 100, 8);
        let s = model.report(&Pattern::s_trav(a)).to_string();
        assert!(s.contains("L1") && s.contains("TLB") && s.contains("T_mem"));
    }

    #[test]
    fn staged_advance_matches_composed_report() {
        // Folding advance over the ⊕-phases must reproduce pricing the
        // composed pattern in one shot — including the Eq 5.2 reuse.
        let model = CostModel::new(presets::tiny());
        let a = Region::new("A", 700, 8);
        let b = Region::new("B", 2_000, 8);
        let phases = [
            Pattern::s_trav(a.clone()),
            Pattern::r_trav(b.clone()),
            Pattern::r_trav(a.clone()), // partially warm after phase 1? no — b evicted it
            Pattern::s_trav(b),
        ];
        let mut st = model.staged(&CacheState::cold());
        let staged: f64 = phases
            .iter()
            .map(|p| model.advance(p, &mut st).mem_ns)
            .sum();
        let composed = model.report(&Pattern::seq(phases.to_vec())).mem_ns;
        assert!((staged - composed).abs() < 1e-9, "{staged} vs {composed}");
    }

    #[test]
    fn parallel_stage_on_private_levels_costs_a_thread_slice_per_thread() {
        // All-private machine: every thread gets a full cache, so each
        // thread's time is just its own (1/d-sized) pattern and the wall
        // time is 1/d of the serial stage.
        let model = CostModel::new(presets::tiny()); // all levels private
        let u = Region::new("U", 64_000, 8);
        let serial = model.report(&Pattern::s_trav(u.clone())).mem_ns;
        let d = 4;
        let threads: Vec<Pattern> = (0..d).map(|_| Pattern::s_trav(u.slice(d))).collect();
        let mut st = model.staged(&CacheState::cold());
        let par = model.advance_parallel(&threads, &mut st);
        assert_eq!(par.per_thread_ns.len(), 4);
        let ratio = par.wall_ns / serial;
        assert!((ratio - 0.25).abs() < 0.01, "wall/serial = {ratio}");
        // Aggregate work is unchanged (the data is swept exactly once).
        assert!((par.report.mem_ns - serial).abs() < 1e-6 * serial);
    }

    #[test]
    fn parallel_stage_contends_for_shared_levels() {
        // tiny_smp shares L2. Four concurrent random traversals over
        // L2-sized working sets blow past each thread's quarter share, so
        // the ⊙-composed stage must cost *more* L2 time in aggregate than
        // the same four traversals run back to back on private caches.
        let shared = CostModel::new(presets::tiny_smp(4));
        let private = CostModel::new(presets::tiny());
        let d = 4usize;
        let regions: Vec<Region> = (0..d)
            .map(|i| Region::new(format!("R{i}"), 1_500, 8)) // 12 KB ≈ ¾ L2 each
            .collect();
        let threads: Vec<Pattern> = regions
            .iter()
            .map(|r| Pattern::rr_trav(r.clone(), 8, 4))
            .collect();
        let contended = shared
            .advance_parallel(&threads, &mut shared.staged(&CacheState::cold()))
            .report
            .level("L2")
            .unwrap()
            .ns;
        let isolated = private
            .advance_parallel(&threads, &mut private.staged(&CacheState::cold()))
            .report
            .level("L2")
            .unwrap()
            .ns;
        assert!(
            contended > 1.5 * isolated,
            "shared-L2 contention must show: {contended} vs {isolated}"
        );
    }

    #[test]
    fn skewed_threads_make_the_straggler_the_wall() {
        let model = CostModel::new(presets::tiny_smp(4));
        let u = Region::new("U", 40_000, 8);
        // Thread 0 gets 70% of the items, the rest split the remainder.
        let threads = vec![
            Pattern::s_trav(u.slice_items(28_000)),
            Pattern::s_trav(u.slice_items(4_000)),
            Pattern::s_trav(u.slice_items(4_000)),
            Pattern::s_trav(u.slice_items(4_000)),
        ];
        let par = model.advance_parallel(&threads, &mut model.staged(&CacheState::cold()));
        assert!((par.wall_ns - par.per_thread_ns[0]).abs() < 1e-9);
        assert!(par.per_thread_ns[0] > 3.0 * par.per_thread_ns[1]);
        // Balanced threads would finish in ~¼ the aggregate time; the
        // skewed schedule's wall is dominated by the straggler.
        assert!(par.wall_ns > 0.6 * par.report.mem_ns);
    }

    #[test]
    fn parallel_stage_with_one_thread_is_the_serial_stage() {
        let model = CostModel::new(presets::tiny_smp(4));
        let u = Region::new("U", 10_000, 8);
        let p = Pattern::s_trav(u);
        let serial = model
            .advance(&p, &mut model.staged(&CacheState::cold()))
            .mem_ns;
        let par = model.advance_parallel(
            std::slice::from_ref(&p),
            &mut model.staged(&CacheState::cold()),
        );
        assert_eq!(par.wall_ns, serial);
        assert_eq!(par.per_thread_ns, vec![serial]);
        // Zero threads: a no-op stage.
        let none = model.advance_parallel(&[], &mut model.staged(&CacheState::cold()));
        assert_eq!(none.wall_ns, 0.0);
    }

    #[test]
    fn batch_of_streaming_queries_beats_serial() {
        // Sequential sweeps have footprint 1: coexisting scans barely
        // contend, so the batch wall is far below the serial sum.
        let model = CostModel::new(presets::tiny_smp(4));
        let queries: Vec<Pattern> = (0..4)
            .map(|i| Pattern::s_trav(Region::new(format!("Q{i}"), 20_000, 8)))
            .collect();
        let batch = model.batch_cost(&queries, &CacheState::cold());
        assert_eq!(batch.per_query_ns.len(), 4);
        assert_eq!(batch.solo_ns.len(), 4);
        assert!(
            batch.speedup() > 2.5,
            "streaming batch speedup {:.2} should be near-linear",
            batch.speedup()
        );
        assert!((batch.serial_ns() - batch.solo_ns.iter().sum::<f64>()).abs() < 1e-9);
    }

    #[test]
    fn contending_batch_backs_off_below_serial() {
        // Repeated random traversals over working sets that fit the
        // shared L2 alone but not together: composed, every revisit
        // misses, so batching must price *worse* than serial.
        let model = CostModel::new(presets::tiny_smp(4));
        let queries: Vec<Pattern> = (0..2)
            .map(|i| Pattern::rr_trav(Region::new(format!("Q{i}"), 1_500, 8), 8, 64))
            .collect();
        let batch = model.batch_cost(&queries, &CacheState::cold());
        assert!(
            batch.speedup() < 1.0,
            "contended batch speedup {:.2} must fall below serial",
            batch.speedup()
        );
        assert!(batch.wall_ns() > batch.serial_ns());
    }

    #[test]
    fn shared_region_is_counted_once_across_the_batch() {
        // Two identical probe patterns over ONE hash-table region that
        // fits the shared L2 alone but not twice. Counting the table per
        // query halves each query's share and thrashes; declaring it
        // shared restores (almost) the whole level to each member.
        let model = CostModel::new(presets::tiny_smp(4));
        let h = Region::new("H", 1_500, 8); // 12 KB vs 16 KB shared L2
        let mk = |i: usize| {
            Pattern::conc(vec![
                Pattern::s_trav(Region::new(format!("U{i}"), 20_000, 8)),
                Pattern::r_acc(h.clone(), 20_000),
            ])
        };
        let queries = vec![mk(0), mk(1)];
        let unshared = model.batch_cost(&queries, &CacheState::cold());
        let shared =
            model.batch_cost_shared(&queries, &CacheState::cold(), std::slice::from_ref(&h));
        assert!(
            shared.wall_ns() < 0.7 * unshared.wall_ns(),
            "sharing the build must cut the wall: {} vs {}",
            shared.wall_ns(),
            unshared.wall_ns()
        );
        // Solo prices are untouched by the sharing declaration.
        for (a, b) in shared.solo_ns.iter().zip(&unshared.solo_ns) {
            assert!((a - b).abs() < 1e-9);
        }
        // Declaring a region nobody references changes nothing.
        let foreign = Region::new("X", 4_000, 8);
        let noop = model.batch_cost_shared(&queries, &CacheState::cold(), &[foreign]);
        assert!((noop.wall_ns() - unshared.wall_ns()).abs() < 1e-9);
        // Duplicate declarations collapse to one.
        let dup = model.batch_cost_shared(&queries, &CacheState::cold(), &[h.clone(), h]);
        assert!((dup.wall_ns() - shared.wall_ns()).abs() < 1e-9);
    }

    #[test]
    fn empty_shared_list_reproduces_batch_cost() {
        let model = CostModel::new(presets::tiny_smp(4));
        let queries: Vec<Pattern> = (0..3)
            .map(|i| Pattern::rr_trav(Region::new(format!("Q{i}"), 1_200, 8), 4, 64))
            .collect();
        let plain = model.batch_cost(&queries, &CacheState::cold());
        let empty = model.batch_cost_shared(&queries, &CacheState::cold(), &[]);
        assert_eq!(plain.per_query_ns, empty.per_query_ns);
        assert_eq!(plain.solo_ns, empty.solo_ns);
    }

    #[test]
    fn heterogeneous_batch_reports_per_query_times() {
        let model = CostModel::new(presets::tiny_smp(2));
        let big = Pattern::s_trav(Region::new("B", 50_000, 8));
        let small = Pattern::s_trav(Region::new("S", 500, 8));
        let batch = model.batch_cost(&[big, small], &CacheState::cold());
        assert!(batch.per_query_ns[0] > 10.0 * batch.per_query_ns[1]);
        assert!((batch.wall_ns() - batch.per_query_ns[0]).abs() < 1e-9);
        // A singleton batch is just the solo price.
        let solo = model.batch_cost(
            &[Pattern::s_trav(Region::new("A", 1_000, 8))],
            &CacheState::cold(),
        );
        assert!((solo.wall_ns() - solo.serial_ns()).abs() < 1e-9);
        assert!((solo.speedup() - 1.0).abs() < 1e-9);
        // An empty batch is a no-op.
        let none = model.batch_cost(&[], &CacheState::cold());
        assert_eq!(none.wall_ns(), 0.0);
        assert_eq!(none.serial_ns(), 0.0);
        assert!((none.speedup() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn warm_initial_state_discounts_the_whole_batch() {
        let model = CostModel::new(presets::tiny_smp(2));
        let r = Region::new("R", 100, 8); // fits every level
        let queries = vec![Pattern::s_trav(r.clone()), Pattern::r_trav(r.clone())];
        let cold = model.batch_cost(&queries, &CacheState::cold());
        let mut warm = CacheState::cold();
        warm.set(&r, 1.0);
        let warmed = model.batch_cost(&queries, &warm);
        assert!(warmed.wall_ns() < cold.wall_ns());
        assert_eq!(warmed.serial_ns(), 0.0);
    }

    #[test]
    fn overlap_with_alpha_one_and_no_bandwidths_is_eq61_exactly() {
        // The degenerate parameters must reproduce Eq 6.1 bit-for-bit,
        // on every preset and both memory-heavy and cpu-heavy op counts.
        for hw in [
            presets::tiny(),
            presets::origin2000(),
            presets::modern_commodity(),
        ] {
            let model = CostModel::new(hw);
            let a = Region::new("A", 10_000, 8);
            let b = Region::new("B", 3_000, 16);
            let p = Pattern::seq(vec![Pattern::s_trav(a), Pattern::r_trav(b)]);
            let cpu = CpuCost::per_op(4.0);
            for ops in [0u64, 1_000, 50_000_000] {
                let rep = model.overlap_ns(&p, cpu, ops, &OverlapParams::eq61());
                assert_eq!(rep.total_ns, model.total_ns(&p, cpu, ops));
                assert_eq!(rep.mem_bw_ns, model.mem_ns(&p));
            }
        }
    }

    #[test]
    fn sustained_bandwidth_reprices_sequential_misses_only() {
        let model = CostModel::new(presets::tiny()); // L1 line 32, l_s 5 ns
        let a = Region::new("A", 1000, 8); // 8000 B → 250 L1 seq misses
        let p = Pattern::s_trav(a.clone());
        // Double the L1 bandwidth (32/5 = 6.4 → 12.8 B/ns): the L1 term
        // halves, other levels are untouched.
        let ov = OverlapParams::new(1.0, vec![12.8]);
        let base = model.mem_ns(&p);
        let priced = model.mem_bw_ns(&p, &ov);
        assert!(
            (base - priced - 250.0 * 2.5).abs() < 1e-9,
            "{base} vs {priced}"
        );
        // Random misses keep their latency price under any bandwidth.
        let r = Pattern::r_trav(a);
        let ov_fast = OverlapParams::new(1.0, vec![1e9, 1e9, 1e9]);
        let rep = model.report(&r);
        let rand_only: f64 = model
            .spec()
            .levels()
            .iter()
            .zip(&rep.levels)
            .map(|(lvl, l)| l.rand_misses * lvl.rand_miss_ns)
            .sum();
        assert!((model.mem_bw_ns(&r, &ov_fast) - rand_only).abs() < 1e-6);
        // Non-positive entries fall back to the latency price.
        let ov_zero = OverlapParams::new(1.0, vec![0.0, -1.0]);
        assert_eq!(model.mem_bw_ns(&p, &ov_zero), base);
    }

    #[test]
    fn overlap_combines_max_plus_alpha_min() {
        let r = OverlapReport::combine(100.0, 40.0, 0.5);
        assert_eq!(r.total_ns, 120.0);
        // Symmetric in the two resources.
        assert_eq!(OverlapReport::combine(40.0, 100.0, 0.5).total_ns, 120.0);
        // α = 0: the slower resource hides the faster one entirely.
        assert_eq!(OverlapReport::combine(100.0, 40.0, 0.0).total_ns, 100.0);
        // α = 1: plain addition.
        assert_eq!(OverlapReport::combine(100.0, 40.0, 1.0).total_ns, 140.0);
        // Alpha is clamped at construction.
        assert_eq!(OverlapParams::new(7.0, Vec::new()).alpha, 1.0);
        assert_eq!(OverlapParams::new(-1.0, Vec::new()).alpha, 0.0);
    }

    #[test]
    fn cpu_cost_helpers() {
        let c = CpuCost::per_op(3.0);
        assert_eq!(c.ns(10), 30.0);
        let c2 = CpuCost {
            fixed_ns: 100.0,
            per_op_ns: 1.0,
        };
        assert_eq!(c2.ns(0), 100.0);
        // The shared planner default: 4 ns/op, no fixed cost.
        let d = CpuCost::default_planner();
        assert_eq!(d, CpuCost::per_op(CpuCost::DEFAULT_PLANNER_PER_OP_NS));
        assert_eq!(d.ns(10), 40.0);
        // The shared Eq 6.1 helper: T = T_mem + T_cpu.
        assert_eq!(c2.eq61_ns(1000.0, 7), 1000.0 + 107.0);
        assert_eq!(d.eq61_ns(0.0, 3), 12.0);
    }
}
