//! Scoring misses with latencies: the paper's Eq 3.1 and Eq 6.1.
//!
//! ```text
//! T_mem = Σ_i ( Ms_i · l_s,i  +  Mr_i · l_r,i )        (3.1)
//! T     = T_mem + T_cpu                                 (6.1)
//! ```
//!
//! `T_cpu` is the pure CPU cost of the algorithm, calibrated once per
//! algorithm in an in-cache setting (paper §6.1); [`CpuCost`] carries that
//! calibration.

use crate::eval::{self, CacheState};
use crate::misses::{Geometry, MissPair};
use crate::pattern::Pattern;
use gcm_hardware::HardwareSpec;
use std::fmt;

/// Cost contribution of one cache level.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelCost {
    /// Level name (e.g. `"L2"`).
    pub name: String,
    /// Estimated sequential misses `Ms_i`.
    pub seq_misses: f64,
    /// Estimated random misses `Mr_i`.
    pub rand_misses: f64,
    /// `Ms_i·l_s,i + Mr_i·l_r,i` in nanoseconds.
    pub ns: f64,
}

impl LevelCost {
    /// Total misses at this level.
    pub fn misses(&self) -> f64 {
        self.seq_misses + self.rand_misses
    }
}

/// Full per-level cost breakdown for one pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct CostReport {
    /// Per-level breakdown, in spec order.
    pub levels: Vec<LevelCost>,
    /// Total memory access time `T_mem` (Eq 3.1) in nanoseconds.
    pub mem_ns: f64,
}

impl CostReport {
    /// Misses at the level called `name`, if present.
    pub fn level(&self, name: &str) -> Option<&LevelCost> {
        self.levels.iter().find(|l| l.name == name)
    }

    /// Total misses across all levels.
    pub fn total_misses(&self) -> f64 {
        self.levels.iter().map(LevelCost::misses).sum()
    }
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "level   seq misses      rand misses     time [ns]")?;
        for l in &self.levels {
            writeln!(
                f,
                "{:<7} {:>14.1} {:>16.1} {:>13.1}",
                l.name, l.seq_misses, l.rand_misses, l.ns
            )?;
        }
        write!(f, "T_mem = {:.1} ns", self.mem_ns)
    }
}

/// Pure CPU cost of an algorithm, calibrated in-cache (paper §6.1): a
/// fixed overhead plus a per-logical-operation cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuCost {
    /// Fixed start-up cost in nanoseconds.
    pub fixed_ns: f64,
    /// Cost per logical operation in nanoseconds.
    pub per_op_ns: f64,
}

impl CpuCost {
    /// A calibration with zero fixed cost.
    pub fn per_op(per_op_ns: f64) -> CpuCost {
        CpuCost {
            fixed_ns: 0.0,
            per_op_ns,
        }
    }

    /// `T_cpu` for `ops` logical operations.
    pub fn ns(&self, ops: u64) -> f64 {
        self.fixed_ns + self.per_op_ns * ops as f64
    }
}

/// The cost model for one machine: estimates misses per level and scores
/// them with the machine's latencies.
#[derive(Debug, Clone)]
pub struct CostModel {
    spec: HardwareSpec,
}

impl CostModel {
    /// A cost model for the given machine.
    pub fn new(spec: HardwareSpec) -> CostModel {
        CostModel { spec }
    }

    /// The machine description.
    pub fn spec(&self) -> &HardwareSpec {
        &self.spec
    }

    /// Estimated misses per level (cold caches), in spec order.
    pub fn misses(&self, p: &Pattern) -> Vec<MissPair> {
        eval::eval(p, self.spec.levels())
    }

    /// Estimated misses per level starting from `state` (one shared
    /// logical state, applied per level).
    pub fn misses_from(&self, p: &Pattern, state: &CacheState) -> Vec<MissPair> {
        self.spec
            .levels()
            .iter()
            .map(|lvl| {
                let mut st = state.clone();
                eval::eval_level(p, &Geometry::of(lvl), &mut st)
            })
            .collect()
    }

    /// Full cost report: per-level misses scored with latencies (Eq 3.1).
    pub fn report(&self, p: &Pattern) -> CostReport {
        self.score(self.misses(p))
    }

    /// Full cost report starting from a warm [`CacheState`] — the Eq 5.2
    /// surface for whole-plan composition: pricing a pattern that runs
    /// *right after* another one (whose residue `state` describes)
    /// instead of against cold caches.
    pub fn report_from(&self, p: &Pattern, state: &CacheState) -> CostReport {
        self.score(self.misses_from(p, state))
    }

    fn score(&self, pairs: Vec<MissPair>) -> CostReport {
        let levels: Vec<LevelCost> = self
            .spec
            .levels()
            .iter()
            .zip(&pairs)
            .map(|(lvl, m)| LevelCost {
                name: lvl.name.clone(),
                seq_misses: m.seq,
                rand_misses: m.rand,
                ns: m.seq * lvl.seq_miss_ns + m.rand * lvl.rand_miss_ns,
            })
            .collect();
        let mem_ns = levels.iter().map(|l| l.ns).sum();
        CostReport { levels, mem_ns }
    }

    /// `T_mem` (Eq 3.1) in nanoseconds.
    pub fn mem_ns(&self, p: &Pattern) -> f64 {
        self.report(p).mem_ns
    }

    /// `T = T_mem + T_cpu` (Eq 6.1) in nanoseconds, for an algorithm that
    /// performs `ops` logical operations under the `cpu` calibration.
    pub fn total_ns(&self, p: &Pattern, cpu: CpuCost, ops: u64) -> f64 {
        self.mem_ns(p) + cpu.ns(ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::Region;
    use gcm_hardware::presets;

    #[test]
    fn report_scores_misses_with_latencies() {
        let hw = presets::tiny(); // L1: 5/15 ns, L2: 50/150 ns, TLB: 100 ns
        let model = CostModel::new(hw);
        let a = Region::new("A", 1000, 8); // 8000 B
        let rep = model.report(&Pattern::s_trav(a));
        // L1: 250 sequential misses × 5 ns.
        let l1 = rep.level("L1").unwrap();
        assert!((l1.seq_misses - 250.0).abs() < 1e-9);
        assert!((l1.ns - 1250.0).abs() < 1e-9);
        // L2: 125 × 50 ns.
        let l2 = rep.level("L2").unwrap();
        assert!((l2.ns - 6250.0).abs() < 1e-9);
        // TLB: 8 pages; TLB misses use the single latency.
        let tlb = rep.level("TLB").unwrap();
        assert!((tlb.ns - 800.0).abs() < 1e-9);
        assert!((rep.mem_ns - (1250.0 + 6250.0 + 800.0)).abs() < 1e-9);
    }

    #[test]
    fn random_misses_cost_more() {
        let hw = presets::tiny();
        let model = CostModel::new(hw);
        let a = Region::new("A", 1000, 8);
        let b = Region::new("B", 1000, 8);
        let seq_cost = model.mem_ns(&Pattern::s_trav(a));
        let rand_cost = model.mem_ns(&Pattern::r_trav(b));
        assert!(rand_cost > seq_cost);
    }

    #[test]
    fn eq61_total_adds_cpu() {
        let model = CostModel::new(presets::tiny());
        let a = Region::new("A", 1000, 8);
        let p = Pattern::s_trav(a);
        let cpu = CpuCost {
            fixed_ns: 500.0,
            per_op_ns: 2.0,
        };
        let t = model.total_ns(&p, cpu, 1000);
        assert!((t - (model.mem_ns(&p) + 2500.0)).abs() < 1e-9);
    }

    #[test]
    fn warm_state_reduces_cost() {
        let model = CostModel::new(presets::tiny());
        let a = Region::new("A", 100, 8); // fits every level
        let p = Pattern::s_trav(a.clone());
        let mut warm = CacheState::cold();
        warm.set(&a, 1.0);
        let cold: f64 = model.misses(&p).iter().map(|m| m.total()).sum();
        let warmed: f64 = model.misses_from(&p, &warm).iter().map(|m| m.total()).sum();
        assert!(cold > 0.0);
        assert_eq!(warmed, 0.0);
    }

    #[test]
    fn report_from_warm_state_is_cheaper() {
        let model = CostModel::new(presets::tiny());
        let a = Region::new("A", 100, 8); // fits every level
        let p = Pattern::s_trav(a.clone());
        let cold = model.report(&p);
        let mut warm = CacheState::cold();
        warm.set(&a, 1.0);
        let warmed = model.report_from(&p, &warm);
        assert!(cold.mem_ns > 0.0);
        assert_eq!(warmed.mem_ns, 0.0);
        // A cold starting state reproduces the plain report.
        let recold = model.report_from(&p, &CacheState::cold());
        assert_eq!(recold, cold);
    }

    #[test]
    fn report_display_contains_levels() {
        let model = CostModel::new(presets::tiny());
        let a = Region::new("A", 100, 8);
        let s = model.report(&Pattern::s_trav(a)).to_string();
        assert!(s.contains("L1") && s.contains("TLB") && s.contains("T_mem"));
    }

    #[test]
    fn cpu_cost_helpers() {
        let c = CpuCost::per_op(3.0);
        assert_eq!(c.ns(10), 30.0);
        let c2 = CpuCost {
            fixed_ns: 100.0,
            per_op_ns: 1.0,
        };
        assert_eq!(c2.ns(0), 100.0);
    }
}
