//! The paper's Table 2: access-pattern descriptions of typical database
//! algorithms, expressed in the pattern language.
//!
//! Each function takes the data regions an operator touches and returns
//! the compound [`Pattern`] describing its memory behaviour; the cost
//! function then falls out automatically via [`crate::CostModel`]. This is
//! the paper's central workflow: *describing* an algorithm is all that is
//! needed to *cost* it.

use crate::pattern::{Direction, GlobalOrder, LatencyClass, LocalPattern, Pattern};
use crate::region::Region;

/// `scan(U)`: one sequential sweep of the input.
pub fn scan(u: Region) -> Pattern {
    Pattern::s_trav(u)
}

/// `select(U) → W`: sweep the input, write qualifying tuples
/// sequentially. `w.n` encodes the selectivity.
pub fn select(u: Region, w: Region) -> Pattern {
    Pattern::conc(vec![Pattern::s_trav(u), Pattern::s_trav(w)])
}

/// `project(U, u_bytes) → W`: sweep the input touching only `u_bytes` of
/// each tuple, write the projection sequentially.
pub fn project(u: Region, u_bytes: u64, w: Region) -> Pattern {
    Pattern::conc(vec![Pattern::s_trav_u(u, u_bytes), Pattern::s_trav(w)])
}

/// `build_hash(V) → H`: sweep the inner input, hop randomly through the
/// hash-table region (paper §3.2: a good hash function destroys any
/// order, so the output cursor is modelled as random).
pub fn build_hash(v: Region, h: Region) -> Pattern {
    Pattern::conc(vec![Pattern::s_trav(v), Pattern::r_trav(h)])
}

/// `probe_hash(U, H) → W`: sweep the outer input, hit the hash table at
/// `U.n` random places, write matches sequentially.
pub fn probe_hash(u: Region, h: Region, w: Region) -> Pattern {
    let probes = u.n;
    Pattern::conc(vec![
        Pattern::s_trav(u),
        Pattern::r_acc(h, probes),
        Pattern::s_trav(w),
    ])
}

/// `hash_join(U, V) → W` with hash table `H` on `V`:
/// `(s_trav(V) ⊙ r_trav(H)) ⊕ (s_trav(U) ⊙ r_acc(H, U.n) ⊙ s_trav(W))`.
pub fn hash_join(u: Region, v: Region, h: Region, w: Region) -> Pattern {
    Pattern::seq(vec![build_hash(v, h.clone()), probe_hash(u, h, w)])
}

/// `merge_join(U, V) → W` over sorted inputs: three concurrent sequential
/// sweeps.
pub fn merge_join(u: Region, v: Region, w: Region) -> Pattern {
    Pattern::conc(vec![
        Pattern::s_trav(u),
        Pattern::s_trav(v),
        Pattern::s_trav(w),
    ])
}

/// `nested_loop_join(U, V) → W`: the outer input is swept once while the
/// inner input is swept `U.n` times (uni-directional in the textbook
/// formulation).
pub fn nested_loop_join(u: Region, v: Region, w: Region) -> Pattern {
    let k = u.n.max(1);
    Pattern::conc(vec![
        Pattern::s_trav(u),
        Pattern::rs_trav(v, k, Direction::Uni),
        Pattern::s_trav(w),
    ])
}

/// `quick_sort(U)` in place (paper §6.2): two concurrent sequential
/// cursors converge over each segment; the recursion proceeds
/// depth-first. Depth `i` sorts `2^i` segments of `U.n/2^i` items, so
/// one depth sweeps the whole table once and there are `⌈log₂ U.n⌉`
/// depths:
///
/// ```text
/// ⊕_{i=0}^{log n − 1}  2^i × ( s_trav(U/2^{i+1}) ⊙ s_trav(U/2^{i+1}) )
/// ```
///
/// The slices keep `U`'s identity, so the state rules of §5.1 yield the
/// Figure-7a step: depths whose segments fit a cache level cost nothing
/// at that level beyond the first touch.
pub fn quick_sort(u: Region) -> Pattern {
    let depth = if u.n <= 1 {
        1
    } else {
        (u.n as f64).log2().ceil() as u64
    };
    let passes = (0..depth)
        .map(|i| {
            let half = u.slice(1u64 << (i + 1).min(63));
            let pass = Pattern::conc(vec![Pattern::s_trav(half.clone()), Pattern::s_trav(half)]);
            Pattern::repeat(1u64 << i.min(63), pass)
        })
        .collect();
    Pattern::seq(passes)
}

/// `partition(U, m) → W`: sweep the input; the output region `W` (the
/// concatenation of the `m` partition buffers) is written through an
/// interleaved multi-cursor pattern whose global cursor is random for
/// hash partitioning (paper §3.2):
/// `s_trav(U) ⊙ nest(W, m, s_trav, rnd)`.
pub fn partition(u: Region, w: Region, m: u64) -> Pattern {
    let item = w.w;
    Pattern::conc(vec![
        Pattern::s_trav(u),
        Pattern::nest(
            w,
            m,
            LocalPattern::SeqTraversal {
                u: item,
                latency: LatencyClass::Sequential,
            },
            GlobalOrder::Random,
        ),
    ])
}

/// Range (clustered) partitioning: the global cursor visits the output
/// buffers in storage order, reusing open lines bi-directionally.
pub fn range_partition(u: Region, w: Region, m: u64) -> Pattern {
    let item = w.w;
    Pattern::conc(vec![
        Pattern::s_trav(u),
        Pattern::nest(
            w,
            m,
            LocalPattern::SeqTraversal {
                u: item,
                latency: LatencyClass::Sequential,
            },
            GlobalOrder::Sequential(Direction::Bi),
        ),
    ])
}

/// `partitioned_hash_join`: join the matching partitions pair-wise,
/// `⊕_j hash_join(U_j, V_j, H_j, W_j)` (paper §6.2). The inputs are the
/// per-partition regions; use [`partitioned_hash_join_uniform`] to derive
/// them from whole-table regions.
pub fn partitioned_hash_join(parts: Vec<(Region, Region, Region, Region)>) -> Pattern {
    Pattern::seq(
        parts
            .into_iter()
            .map(|(u_j, v_j, h_j, w_j)| hash_join(u_j, v_j, h_j, w_j))
            .collect(),
    )
}

/// Partitioned hash-join over `m` uniform partitions of `U ⋈ V → W`, with
/// hash-table entries of `h_entry_w` bytes. Builds the per-partition
/// regions (input/output slices share their parents' identity; each
/// partition's hash table is a fresh region) and delegates to
/// [`partitioned_hash_join`].
pub fn partitioned_hash_join_uniform(
    u: Region,
    v: Region,
    w: Region,
    m: u64,
    h_entry_w: u64,
) -> Pattern {
    assert!(m >= 1);
    let parts = (0..m)
        .map(|j| {
            (
                u.slice(m),
                v.slice(m),
                Region::new(format!("H{j}"), v.n / m, h_entry_w),
                w.slice(m),
            )
        })
        .collect();
    partitioned_hash_join(parts)
}

/// Sort-based aggregation / duplicate elimination: sort, then one sweep
/// producing the (smaller) output.
pub fn sort_aggregate(u: Region, w: Region) -> Pattern {
    Pattern::seq(vec![
        quick_sort(u.clone()),
        Pattern::conc(vec![Pattern::s_trav(u), Pattern::s_trav(w)]),
    ])
}

/// Hash-based aggregation / duplicate elimination: sweep the input while
/// updating a hash table of groups at `U.n` random places, then sweep the
/// table to emit results.
pub fn hash_aggregate(u: Region, h: Region, w: Region) -> Pattern {
    let probes = u.n;
    Pattern::seq(vec![
        Pattern::conc(vec![Pattern::s_trav(u), Pattern::r_acc(h.clone(), probes)]),
        Pattern::conc(vec![Pattern::s_trav(h), Pattern::s_trav(w)]),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use gcm_hardware::presets;

    fn model() -> CostModel {
        CostModel::new(presets::tiny())
    }

    fn reg(name: &str, n: u64, w: u64) -> Region {
        Region::new(name, n, w)
    }

    #[test]
    fn table2_renderings() {
        let u = reg("U", 1000, 8);
        let v = reg("V", 1000, 8);
        let h = reg("H", 1000, 16);
        let w = reg("W", 1000, 8);
        assert_eq!(scan(u.clone()).to_string(), "s_trav(U)");
        assert_eq!(
            select(u.clone(), w.clone()).to_string(),
            "s_trav(U) ⊙ s_trav(W)"
        );
        assert_eq!(
            hash_join(u.clone(), v.clone(), h.clone(), w.clone()).to_string(),
            "s_trav(V) ⊙ r_trav(H) ⊕ s_trav(U) ⊙ r_acc(H, 1000) ⊙ s_trav(W)"
        );
        assert_eq!(
            merge_join(u.clone(), v, w.clone()).to_string(),
            "s_trav(U) ⊙ s_trav(V) ⊙ s_trav(W)"
        );
        assert_eq!(
            partition(u, w, 64).to_string(),
            "s_trav(U) ⊙ nest(W, 64, s_trav, rnd)"
        );
    }

    #[test]
    fn quick_sort_has_log_depth() {
        let u = reg("U", 1024, 8);
        match quick_sort(u) {
            Pattern::Seq(passes) => assert_eq!(passes.len(), 10),
            _ => panic!("expected Seq"),
        }
        // Tiny inputs still produce one pass.
        let one = quick_sort(reg("U1", 1, 8));
        assert!(one.is_basic() || matches!(one, Pattern::Conc(_)));
    }

    #[test]
    fn hash_join_cost_jumps_when_table_exceeds_cache() {
        let m = model(); // tiny: L2 = 16 KB
        let mk = |n: u64| {
            let u = reg("U", n, 8);
            let v = reg("V", n, 8);
            let h = reg("H", n, 16);
            let w = reg("W", n, 8);
            m.mem_ns(&hash_join(u, v, h, w)) / n as f64
        };
        let small = mk(512); // H = 8 KB, fits L2
        let large = mk(8192); // H = 128 KB, 8× L2
        assert!(
            large > 2.0 * small,
            "per-tuple cost must cliff: {small:.1} -> {large:.1}"
        );
    }

    #[test]
    fn merge_join_is_linear_in_input() {
        let m = model();
        let mk = |n: u64| m.mem_ns(&merge_join(reg("U", n, 8), reg("V", n, 8), reg("W", n, 8)));
        let c1 = mk(10_000);
        let c2 = mk(20_000);
        let ratio = c2 / c1;
        assert!((ratio - 2.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn nested_loop_join_dwarfs_hash_join() {
        let m = model();
        let n = 4096;
        let nl = m.mem_ns(&nested_loop_join(
            reg("U", n, 8),
            reg("V", n, 8),
            reg("W", n, 8),
        ));
        let hj = m.mem_ns(&hash_join(
            reg("U", n, 8),
            reg("V", n, 8),
            reg("H", n, 16),
            reg("W", n, 8),
        ));
        assert!(nl > 20.0 * hj, "nested loop {nl} vs hash {hj}");
    }

    #[test]
    fn partitioned_hash_join_beats_plain_on_big_inputs() {
        // The paper's headline result (Fig 7e): once partitions fit the
        // cache, partitioned hash-join wins.
        let m = model();
        let n = 32_768; // H = 512 KB vs 16 KB L2
        let plain = m.mem_ns(&hash_join(
            reg("U", n, 8),
            reg("V", n, 8),
            reg("H", n, 16),
            reg("W", n, 8),
        ));
        let parts = 64; // per-partition H = 8 KB, fits L2
        let pj = m.mem_ns(&partitioned_hash_join_uniform(
            reg("U", n, 8),
            reg("V", n, 8),
            reg("W", n, 8),
            parts,
            16,
        ));
        assert!(pj < plain, "partitioned {pj} must beat plain {plain}");
    }

    #[test]
    fn partition_cost_cliffs_with_fanout() {
        let m = model(); // tiny L1: 64 lines; TLB: 8 pages
        let n = 32_768;
        let mk = |parts: u64| m.mem_ns(&partition(reg("U", n, 8), reg("W", n, 8), parts));
        let below = mk(4);
        let above = mk(4096);
        assert!(above > 3.0 * below, "fan-out cliff: {below} -> {above}");
        // Range partitioning reuses lines and stays cheaper.
        let range = m.mem_ns(&range_partition(reg("U", n, 8), reg("W", n, 8), 4096));
        assert!(range < above);
    }

    #[test]
    fn aggregates_produce_costs() {
        let m = model();
        let u = reg("U", 10_000, 8);
        let h = reg("H", 100, 16);
        let w = reg("W", 100, 8);
        let hash = m.mem_ns(&hash_aggregate(u.clone(), h, w.clone()));
        let sort = m.mem_ns(&sort_aggregate(u, w));
        assert!(hash > 0.0 && sort > 0.0);
        // Few groups: the hash table stays cached, hashing beats sorting.
        assert!(hash < sort);
    }
}
