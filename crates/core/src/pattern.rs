//! The access-pattern language (paper §3.2–§3.3).
//!
//! Database algorithms are described as combinations of a handful of basic
//! patterns. The two combinators are *sequential execution* `⊕` (one
//! pattern after the other) and *concurrent execution* `⊙` (patterns
//! interleaved over the same time span); `⊙` binds tighter than `⊕` and is
//! commutative, `⊕` is not (paper §3.3).

use crate::region::Region;
use std::fmt;

/// Can a sequential traversal actually achieve *sequential* miss latency?
///
/// The paper (§4.1) observes that this depends on the implementation (data
/// dependencies, outstanding-miss limits), not just the algorithm, and
/// therefore offers two variants: `s_trav^s` (achieves sequential latency)
/// and `s_trav^r` (misses are scored with random latency). Miss *counts*
/// are identical; only the scoring differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LatencyClass {
    /// `s_trav^s`: misses counted as sequential.
    Sequential,
    /// `s_trav^r`: misses counted as random.
    Random,
}

/// Sweep direction of repeated traversals (paper §3.2, `rs_trav`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// All sweeps run in the same direction: a sweep that exceeds the
    /// cache gets no reuse from its predecessor.
    Uni,
    /// Alternating directions: each sweep starts where the previous one
    /// ended and reuses whatever the cache still holds.
    Bi,
}

/// Order in which the *global* cursor of an interleaved multi-cursor
/// access visits the local cursors (paper §3.2, `nest`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GlobalOrder {
    /// Local cursors visited in storage order.
    Sequential(Direction),
    /// Local cursors visited in random order (e.g. hash partitioning).
    Random,
}

/// The local pattern each sub-region cursor of a `nest` performs.
#[derive(Debug, Clone, PartialEq)]
pub enum LocalPattern {
    /// Each local cursor advances sequentially (`u` bytes per item).
    SeqTraversal { u: u64, latency: LatencyClass },
    /// Each local cursor performs a random traversal.
    RandTraversal { u: u64 },
}

/// A (basic or compound) data access pattern.
///
/// Constructors for the basic patterns live on this type (e.g.
/// [`Pattern::s_trav`]); [`crate::library`] provides the paper's Table-2
/// operator descriptions built from them.
#[derive(Debug, Clone, PartialEq)]
pub enum Pattern {
    /// `s_trav(R, u)`: one sequential sweep over `R`, touching `u` bytes
    /// of each item.
    STrav {
        r: Region,
        u: u64,
        latency: LatencyClass,
    },
    /// `rs_trav(k, d, R, u)`: `k` sequential sweeps, uni- or
    /// bi-directional.
    RsTrav {
        r: Region,
        u: u64,
        k: u64,
        dir: Direction,
        latency: LatencyClass,
    },
    /// `r_trav(R, u)`: touch every item exactly once, in random order.
    RTrav { r: Region, u: u64 },
    /// `rr_trav(k, R, u)`: `k` independent random traversals.
    RrTrav { r: Region, u: u64, k: u64 },
    /// `r_acc(R, q, u)`: `q` independent random accesses with replacement.
    RAcc { r: Region, u: u64, accesses: u64 },
    /// `nest(R, m, P, g)`: `R` divided into `m` equal sub-regions, each
    /// with a local cursor performing `local`; the global cursor picks
    /// local cursors in order `g`.
    Nest {
        r: Region,
        m: u64,
        local: LocalPattern,
        order: GlobalOrder,
    },
    /// `P₁ ⊕ P₂ ⊕ …`: sequential execution.
    Seq(Vec<Pattern>),
    /// `P₁ ⊙ P₂ ⊙ …`: concurrent execution.
    Conc(Vec<Pattern>),
    /// `k × P`: `k` sequential executions of the same sub-pattern
    /// (shorthand for `P ⊕ P ⊕ …` that stays compact for the exponential
    /// segment counts of divide-and-conquer algorithms; the evaluator
    /// exploits that iterations beyond the first all start from the same
    /// cache state).
    Repeat { k: u64, inner: Box<Pattern> },
}

impl Pattern {
    /// `s_trav^s(R)` touching all `R.w` bytes per item.
    pub fn s_trav(r: Region) -> Pattern {
        let u = r.w;
        Pattern::STrav {
            r,
            u,
            latency: LatencyClass::Sequential,
        }
    }

    /// `s_trav^s(R, u)` touching `u ≤ R.w` bytes per item.
    pub fn s_trav_u(r: Region, u: u64) -> Pattern {
        assert!(u >= 1 && u <= r.w, "need 1 <= u <= R.w");
        Pattern::STrav {
            r,
            u,
            latency: LatencyClass::Sequential,
        }
    }

    /// `s_trav^r(R, u)`: a sequential sweep whose implementation cannot
    /// reach sequential latency (paper §4.1).
    pub fn s_trav_r(r: Region, u: u64) -> Pattern {
        assert!(u >= 1 && u <= r.w, "need 1 <= u <= R.w");
        Pattern::STrav {
            r,
            u,
            latency: LatencyClass::Random,
        }
    }

    /// `rs_trav(k, d, R)` touching all bytes per item.
    pub fn rs_trav(r: Region, k: u64, dir: Direction) -> Pattern {
        let u = r.w;
        Pattern::RsTrav {
            r,
            u,
            k,
            dir,
            latency: LatencyClass::Sequential,
        }
    }

    /// `rs_trav(k, d, R, u)`.
    pub fn rs_trav_u(r: Region, u: u64, k: u64, dir: Direction) -> Pattern {
        assert!(u >= 1 && u <= r.w, "need 1 <= u <= R.w");
        Pattern::RsTrav {
            r,
            u,
            k,
            dir,
            latency: LatencyClass::Sequential,
        }
    }

    /// `r_trav(R)` touching all bytes per item.
    pub fn r_trav(r: Region) -> Pattern {
        let u = r.w;
        Pattern::RTrav { r, u }
    }

    /// `r_trav(R, u)`.
    pub fn r_trav_u(r: Region, u: u64) -> Pattern {
        assert!(u >= 1 && u <= r.w, "need 1 <= u <= R.w");
        Pattern::RTrav { r, u }
    }

    /// `rr_trav(k, R, u)`.
    pub fn rr_trav(r: Region, u: u64, k: u64) -> Pattern {
        assert!(u >= 1 && u <= r.w, "need 1 <= u <= R.w");
        Pattern::RrTrav { r, u, k }
    }

    /// `r_acc(R, q)`: `q` random accesses touching whole items.
    pub fn r_acc(r: Region, accesses: u64) -> Pattern {
        let u = r.w;
        Pattern::RAcc { r, u, accesses }
    }

    /// `r_acc(R, q, u)`.
    pub fn r_acc_u(r: Region, u: u64, accesses: u64) -> Pattern {
        assert!(u >= 1 && u <= r.w, "need 1 <= u <= R.w");
        Pattern::RAcc { r, u, accesses }
    }

    /// `nest(R, m, P, g)`.
    pub fn nest(r: Region, m: u64, local: LocalPattern, order: GlobalOrder) -> Pattern {
        assert!(m >= 1, "need at least one sub-region");
        Pattern::Nest { r, m, local, order }
    }

    /// The empty pattern `ε`: the identity of both `⊕` and `⊙`. It
    /// touches no memory, costs nothing, and leaves the cache state
    /// untouched — the well-defined meaning of an empty composition.
    pub fn empty() -> Pattern {
        Pattern::Seq(Vec::new())
    }

    /// True if this is the no-op pattern (an empty composition).
    pub fn is_empty(&self) -> bool {
        matches!(self, Pattern::Seq(ps) if ps.is_empty())
    }

    /// Sequential execution `⊕` of `parts` (flattens nested `Seq`s and
    /// drops no-op parts). An empty `parts` yields [`Pattern::empty`],
    /// the zero-cost identity — not a degenerate `Seq([])`-with-
    /// unspecified-semantics node.
    pub fn seq(parts: Vec<Pattern>) -> Pattern {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Pattern::Seq(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        if flat.len() == 1 {
            flat.pop().unwrap()
        } else {
            Pattern::Seq(flat)
        }
    }

    /// Concurrent execution `⊙` of `parts` (flattens nested `Conc`s and
    /// drops no-op parts). An empty `parts` yields [`Pattern::empty`]:
    /// zero footprint, zero cost, cache state untouched.
    pub fn conc(parts: Vec<Pattern>) -> Pattern {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Pattern::Conc(inner) => flat.extend(inner),
                other if other.is_empty() => {}
                other => flat.push(other),
            }
        }
        if flat.len() == 1 {
            flat.pop().unwrap()
        } else if flat.is_empty() {
            Pattern::empty()
        } else {
            Pattern::Conc(flat)
        }
    }

    /// `k × self`: sequential repetition (collapses `k = 1`).
    pub fn repeat(k: u64, inner: Pattern) -> Pattern {
        if k == 1 {
            inner
        } else {
            Pattern::Repeat {
                k,
                inner: Box::new(inner),
            }
        }
    }

    /// `self ⊕ other`.
    pub fn then(self, other: Pattern) -> Pattern {
        Pattern::seq(vec![self, other])
    }

    /// `self ⊙ other`.
    pub fn with(self, other: Pattern) -> Pattern {
        Pattern::conc(vec![self, other])
    }

    /// True if this is a basic (non-compound) pattern.
    pub fn is_basic(&self) -> bool {
        !matches!(
            self,
            Pattern::Seq(_) | Pattern::Conc(_) | Pattern::Repeat { .. }
        )
    }

    /// The region a basic pattern operates on.
    pub fn region(&self) -> Option<&Region> {
        match self {
            Pattern::STrav { r, .. }
            | Pattern::RsTrav { r, .. }
            | Pattern::RTrav { r, .. }
            | Pattern::RrTrav { r, .. }
            | Pattern::RAcc { r, .. }
            | Pattern::Nest { r, .. } => Some(r),
            Pattern::Seq(_) | Pattern::Conc(_) | Pattern::Repeat { .. } => None,
        }
    }

    /// All basic patterns in execution order (pre-order over the tree).
    pub fn leaves(&self) -> Vec<&Pattern> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves<'a>(&'a self, out: &mut Vec<&'a Pattern>) {
        match self {
            Pattern::Seq(ps) | Pattern::Conc(ps) => {
                for p in ps {
                    p.collect_leaves(out);
                }
            }
            Pattern::Repeat { inner, .. } => inner.collect_leaves(out),
            leaf => out.push(leaf),
        }
    }
}

impl fmt::Display for Pattern {
    /// Renders the pattern in the paper's notation, e.g.
    /// `s_trav(U) ⊙ r_trav(H) ⊕ s_trav(V) ⊙ r_acc(H, 1000) ⊙ s_trav(W)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn fmt_u(f: &mut fmt::Formatter<'_>, r: &Region, u: u64) -> fmt::Result {
            if u == r.w {
                write!(f, "{r}")
            } else {
                write!(f, "{r}, u={u}")
            }
        }
        match self {
            Pattern::STrav { r, u, latency } => {
                let sup = match latency {
                    LatencyClass::Sequential => "",
                    LatencyClass::Random => "ʳ",
                };
                write!(f, "s_trav{sup}(")?;
                fmt_u(f, r, *u)?;
                write!(f, ")")
            }
            Pattern::RsTrav { r, u, k, dir, .. } => {
                let d = match dir {
                    Direction::Uni => "uni",
                    Direction::Bi => "bi",
                };
                write!(f, "rs_trav({k}, {d}, ")?;
                fmt_u(f, r, *u)?;
                write!(f, ")")
            }
            Pattern::RTrav { r, u } => {
                write!(f, "r_trav(")?;
                fmt_u(f, r, *u)?;
                write!(f, ")")
            }
            Pattern::RrTrav { r, u, k } => {
                write!(f, "rr_trav({k}, ")?;
                fmt_u(f, r, *u)?;
                write!(f, ")")
            }
            Pattern::RAcc { r, u, accesses } => {
                write!(f, "r_acc(")?;
                fmt_u(f, r, *u)?;
                write!(f, ", {accesses})")
            }
            Pattern::Nest { r, m, local, order } => {
                let l = match local {
                    LocalPattern::SeqTraversal { .. } => "s_trav",
                    LocalPattern::RandTraversal { .. } => "r_trav",
                };
                let g = match order {
                    GlobalOrder::Sequential(Direction::Uni) => "seq/uni",
                    GlobalOrder::Sequential(Direction::Bi) => "seq/bi",
                    GlobalOrder::Random => "rnd",
                };
                write!(f, "nest({r}, {m}, {l}, {g})")
            }
            Pattern::Repeat { k, inner } => {
                if inner.is_basic() {
                    write!(f, "{k} × {inner}")
                } else {
                    write!(f, "{k} × ({inner})")
                }
            }
            Pattern::Seq(ps) => {
                if ps.is_empty() {
                    return write!(f, "ε");
                }
                let mut first = true;
                for p in ps {
                    if !first {
                        write!(f, " ⊕ ")?;
                    }
                    first = false;
                    write!(f, "{p}")?;
                }
                Ok(())
            }
            Pattern::Conc(ps) => {
                let mut first = true;
                for p in ps {
                    if !first {
                        write!(f, " ⊙ ")?;
                    }
                    first = false;
                    // ⊙ binds tighter than ⊕: parenthesise nested ⊕.
                    if matches!(p, Pattern::Seq(_)) {
                        write!(f, "({p})")?;
                    } else {
                        write!(f, "{p}")?;
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg(name: &str) -> Region {
        Region::new(name, 100, 8)
    }

    #[test]
    fn display_basic_patterns() {
        assert_eq!(Pattern::s_trav(reg("U")).to_string(), "s_trav(U)");
        assert_eq!(Pattern::s_trav_u(reg("U"), 4).to_string(), "s_trav(U, u=4)");
        assert_eq!(Pattern::r_trav(reg("H")).to_string(), "r_trav(H)");
        assert_eq!(Pattern::r_acc(reg("H"), 500).to_string(), "r_acc(H, 500)");
        assert_eq!(
            Pattern::rs_trav(reg("V"), 3, Direction::Bi).to_string(),
            "rs_trav(3, bi, V)"
        );
        assert_eq!(
            Pattern::rr_trav(reg("V"), 8, 2).to_string(),
            "rr_trav(2, V)"
        );
        assert_eq!(
            Pattern::nest(
                reg("W"),
                64,
                LocalPattern::SeqTraversal {
                    u: 8,
                    latency: LatencyClass::Sequential
                },
                GlobalOrder::Random
            )
            .to_string(),
            "nest(W, 64, s_trav, rnd)"
        );
    }

    #[test]
    fn display_compound_with_precedence() {
        let u = reg("U");
        let h = reg("H");
        let w = reg("W");
        let p = Pattern::seq(vec![
            Pattern::conc(vec![Pattern::s_trav(u.clone()), Pattern::r_trav(h.clone())]),
            Pattern::conc(vec![Pattern::s_trav(w), Pattern::r_acc(h, 100)]),
        ]);
        assert_eq!(
            p.to_string(),
            "s_trav(U) ⊙ r_trav(H) ⊕ s_trav(W) ⊙ r_acc(H, 100)"
        );
    }

    #[test]
    fn seq_inside_conc_is_parenthesised() {
        let p = Pattern::conc(vec![
            Pattern::s_trav(reg("A")),
            Pattern::Seq(vec![Pattern::s_trav(reg("B")), Pattern::s_trav(reg("C"))]),
        ]);
        assert_eq!(p.to_string(), "s_trav(A) ⊙ (s_trav(B) ⊕ s_trav(C))");
    }

    #[test]
    fn combinators_flatten() {
        let p = Pattern::seq(vec![
            Pattern::s_trav(reg("A")),
            Pattern::seq(vec![Pattern::s_trav(reg("B")), Pattern::s_trav(reg("C"))]),
        ]);
        match &p {
            Pattern::Seq(ps) => assert_eq!(ps.len(), 3),
            _ => panic!("expected Seq"),
        }
        let c = Pattern::conc(vec![
            Pattern::conc(vec![Pattern::s_trav(reg("A")), Pattern::s_trav(reg("B"))]),
            Pattern::s_trav(reg("C")),
        ]);
        match &c {
            Pattern::Conc(ps) => assert_eq!(ps.len(), 3),
            _ => panic!("expected Conc"),
        }
    }

    #[test]
    fn singleton_combinators_collapse() {
        let p = Pattern::seq(vec![Pattern::s_trav(reg("A"))]);
        assert!(p.is_basic());
        let c = Pattern::conc(vec![Pattern::r_trav(reg("A"))]);
        assert!(c.is_basic());
    }

    #[test]
    fn empty_compositions_are_the_noop_pattern() {
        // ⊕ and ⊙ of nothing are both the identity ε, not degenerate
        // Seq([]) / Conc([]) nodes with unspecified semantics.
        assert_eq!(Pattern::seq(vec![]), Pattern::empty());
        assert_eq!(Pattern::conc(vec![]), Pattern::empty());
        assert!(Pattern::empty().is_empty());
        assert!(!Pattern::empty().is_basic());
        assert_eq!(Pattern::empty().to_string(), "ε");
        assert!(Pattern::empty().leaves().is_empty());
        assert_eq!(Pattern::empty().region(), None);
    }

    #[test]
    fn noop_parts_are_dropped_from_compositions() {
        let a = Pattern::s_trav(reg("A"));
        // ε is the identity of both combinators.
        assert_eq!(
            Pattern::seq(vec![Pattern::empty(), a.clone(), Pattern::empty()]),
            a
        );
        assert_eq!(
            Pattern::conc(vec![Pattern::empty(), a.clone(), Pattern::empty()]),
            a
        );
        // A composition of nothing but ε collapses back to ε.
        assert_eq!(
            Pattern::conc(vec![Pattern::empty(), Pattern::empty()]),
            Pattern::empty()
        );
    }

    #[test]
    fn leaves_enumerates_in_order() {
        let p = Pattern::seq(vec![
            Pattern::conc(vec![Pattern::s_trav(reg("A")), Pattern::r_trav(reg("B"))]),
            Pattern::s_trav(reg("C")),
        ]);
        let names: Vec<String> = p
            .leaves()
            .iter()
            .map(|l| l.region().unwrap().name().to_string())
            .collect();
        assert_eq!(names, ["A", "B", "C"]);
    }

    #[test]
    #[should_panic(expected = "need 1 <= u <= R.w")]
    fn u_larger_than_width_rejected() {
        let _ = Pattern::s_trav_u(reg("A"), 9);
    }
}
