//! Data regions (paper §3.1).
//!
//! A data region `R` is the unified description of a data structure: `R.n`
//! data items of `R.w` bytes each. A relational table is a region with
//! `R.n` = cardinality and `R.w` = tuple width; a tree is a region with
//! `R.n` = node count and `R.w` = node size; a hash table is a region of
//! buckets. `||R|| = R.n · R.w` is the region size and
//! `|R|_i = ⌈||R|| / B_i⌉` the number of level-`i` cache lines it covers.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Identity of a region. Two patterns refer to *the same memory* exactly
/// when their regions share an id — that is what the cache-state rules of
/// §5.1 key on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u64);

/// A data region (paper §3.1), possibly a slice of a larger root region.
///
/// Slices keep the root's identity and total size: the evaluator's
/// cache-state bookkeeping measures cached fractions *of the root*, which
/// is what makes recursive patterns like quick-sort (repeated sweeps over
/// ever-smaller segments of one table) come out right.
#[derive(Debug, Clone, PartialEq)]
pub struct Region {
    id: RegionId,
    name: String,
    /// Number of data items `R.n` in this (slice of the) region.
    pub n: u64,
    /// Width `R.w` of one data item in bytes.
    pub w: u64,
    /// Size in bytes of the *root* region this is a slice of
    /// (`= n·w` for a non-slice).
    root_bytes: u64,
}

impl Region {
    /// A fresh region of `n` items of `w` bytes. `w` must be positive;
    /// `n = 0` is allowed (empty inputs are legal operator arguments).
    pub fn new(name: impl Into<String>, n: u64, w: u64) -> Region {
        assert!(w > 0, "region width must be positive");
        Region {
            id: RegionId(NEXT_ID.fetch_add(1, Ordering::Relaxed)),
            name: name.into(),
            n,
            w,
            root_bytes: n * w,
        }
    }

    /// The region's identity.
    pub fn id(&self) -> RegionId {
        self.id
    }

    /// The region's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `||R||`: size of this (slice of the) region in bytes.
    pub fn bytes(&self) -> u64 {
        self.n * self.w
    }

    /// Size in bytes of the root region.
    pub fn root_bytes(&self) -> u64 {
        self.root_bytes
    }

    /// `|R|` at line size `B`: number of cache lines covered.
    pub fn lines(&self, line: u64) -> f64 {
        (self.bytes() as f64 / line as f64).ceil()
    }

    /// Number of items that fit into a cache of `capacity` bytes.
    pub fn items_fitting(&self, capacity: u64) -> f64 {
        (capacity as f64 / self.w as f64).floor()
    }

    /// A slice covering `1/denom` of this region's items (same identity,
    /// same root size). Used e.g. by the quick-sort pattern, where each
    /// recursion level runs concurrent traversals over segment halves.
    pub fn slice(&self, denom: u64) -> Region {
        assert!(denom > 0);
        Region {
            id: self.id,
            name: self.name.clone(),
            n: self.n / denom,
            w: self.w,
            root_bytes: self.root_bytes,
        }
    }

    /// A slice with an explicit item count (same identity, same root size).
    pub fn slice_items(&self, n: u64) -> Region {
        Region {
            id: self.id,
            name: self.name.clone(),
            n,
            w: self.w,
            root_bytes: self.root_bytes,
        }
    }

    /// Reinterpret the same memory with a different item width (e.g. a
    /// table of `n` `w`-byte tuples viewed as `n·w/8` 8-byte words). Keeps
    /// identity and root size; `new_w` must divide the slice size.
    pub fn reinterpret(&self, new_w: u64) -> Region {
        assert!(
            new_w > 0 && self.bytes().is_multiple_of(new_w),
            "width must tile the region"
        );
        Region {
            id: self.id,
            name: self.name.clone(),
            n: self.bytes() / new_w,
            w: new_w,
            root_bytes: self.root_bytes,
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_lines() {
        let r = Region::new("R", 1000, 16);
        assert_eq!(r.bytes(), 16000);
        assert_eq!(r.lines(32), 500.0);
        assert_eq!(r.lines(64), 250.0);
        // Non-dividing line size rounds up.
        let r2 = Region::new("R2", 3, 10);
        assert_eq!(r2.lines(32), 1.0);
        assert_eq!(r2.lines(16), 2.0);
    }

    #[test]
    fn items_fitting() {
        let r = Region::new("R", 1000, 16);
        assert_eq!(r.items_fitting(1024), 64.0);
    }

    #[test]
    fn identities_are_unique_but_slices_share() {
        let a = Region::new("A", 10, 8);
        let b = Region::new("B", 10, 8);
        assert_ne!(a.id(), b.id());
        let half = a.slice(2);
        assert_eq!(half.id(), a.id());
        assert_eq!(half.n, 5);
        assert_eq!(half.root_bytes(), 80);
        assert_eq!(half.bytes(), 40);
    }

    #[test]
    fn slice_items_and_reinterpret() {
        let a = Region::new("A", 16, 16);
        let s = a.slice_items(4);
        assert_eq!(s.n, 4);
        assert_eq!(s.root_bytes(), 256);
        let v = a.reinterpret(8);
        assert_eq!(v.n, 32);
        assert_eq!(v.w, 8);
        assert_eq!(v.bytes(), a.bytes());
        assert_eq!(v.id(), a.id());
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_rejected() {
        let _ = Region::new("bad", 10, 0);
    }

    #[test]
    fn empty_region_is_legal() {
        let r = Region::new("empty", 0, 8);
        assert_eq!(r.bytes(), 0);
        assert_eq!(r.lines(64), 0.0);
    }
}
