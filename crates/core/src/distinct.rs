//! Expected number of distinct items touched by `r_acc` (paper §4.6).
//!
//! `r_acc(R, r)` performs `r` independent random accesses *with
//! replacement* over the `R.n` items of a region. The paper derives the
//! expected number `D` of distinct items via Stirling numbers of the
//! second kind:
//!
//! ```text
//! D = Σ_d  d · C(n,d) · S(r,d) · d! / n^r
//! ```
//!
//! That sum is exactly the classic occupancy expectation, which has the
//! closed form `D = n · (1 − (1 − 1/n)^r)`: each particular item is missed
//! by all `r` draws with probability `(1−1/n)^r`. [`expected_distinct`]
//! implements the closed form (numerically robust for the huge `n`, `r`
//! the experiments use); [`expected_distinct_stirling`] implements the
//! paper's sum directly and is used by the test suite to confirm the two
//! agree (see also the `ablation_distinct` bench).

/// Expected number of distinct items after `r` uniform random draws (with
/// replacement) from `n` items — closed form.
pub fn expected_distinct(n: u64, r: u64) -> f64 {
    if n == 0 || r == 0 {
        return 0.0;
    }
    let nf = n as f64;
    // (1 - 1/n)^r via exp(r·ln(1-1/n)), stable for large n.
    let miss_p = ((1.0 - 1.0 / nf).ln() * r as f64).exp();
    nf * (1.0 - miss_p)
}

/// Stirling numbers of the second kind `S(r, d)` for all `d ≤ r`, by the
/// triangular recurrence `S(r,d) = d·S(r−1,d) + S(r−1,d−1)`, as `f64`
/// (sufficient for the cross-validation range).
pub fn stirling2_row(r: usize) -> Vec<f64> {
    let mut row = vec![0.0; r + 1];
    if r == 0 {
        row[0] = 1.0;
        return row;
    }
    row[0] = 1.0; // S(0,0)
    let mut prev = row.clone();
    for i in 1..=r {
        row = vec![0.0; r + 1];
        for d in 1..=i {
            row[d] = d as f64 * prev[d] + prev[d - 1];
        }
        prev = row.clone();
    }
    row
}

/// Stirling numbers of the second kind in log space: `ln S(r, d)` for
/// all `d ≤ r` (`-inf` where `S = 0`). Stable far beyond the `f64`
/// overflow point of the plain recurrence.
pub fn stirling2_row_ln(r: usize) -> Vec<f64> {
    fn log_add_exp(a: f64, b: f64) -> f64 {
        if a == f64::NEG_INFINITY {
            return b;
        }
        if b == f64::NEG_INFINITY {
            return a;
        }
        let (hi, lo) = if a > b { (a, b) } else { (b, a) };
        hi + (lo - hi).exp().ln_1p()
    }
    let mut prev = vec![f64::NEG_INFINITY; r + 1];
    prev[0] = 0.0; // ln S(0,0) = ln 1
    if r == 0 {
        return prev;
    }
    let mut row = prev.clone();
    for i in 1..=r {
        row = vec![f64::NEG_INFINITY; r + 1];
        for (d, slot) in row.iter_mut().enumerate().take(i + 1).skip(1) {
            // ln S(i,d) = ln( d·S(i−1,d) + S(i−1,d−1) )
            *slot = log_add_exp((d as f64).ln() + prev[d], prev[d - 1]);
        }
        prev = row.clone();
    }
    row
}

/// The paper's exact expectation: `Σ_d d·C(n,d)·S(r,d)·d!/n^r`.
///
/// Used to validate [`expected_distinct`], not in the cost formulas
/// themselves (the table is O(r²)). Works entirely in log space, so it
/// is exact-to-f64 even where the Stirling numbers themselves overflow.
pub fn expected_distinct_stirling(n: u64, r: u64) -> f64 {
    if n == 0 || r == 0 {
        return 0.0;
    }
    let s_row = stirling2_row_ln(r as usize);
    let nf = n as f64;
    let ln_n_pow_r = nf.ln() * r as f64;
    let mut expectation = 0.0;
    let dmax = (n as usize).min(r as usize);
    // ln C(n,d) + ln d! accumulated incrementally.
    let mut ln_choose = 0.0; // ln C(n,0)
    let mut ln_fact = 0.0; // ln 0!
    #[allow(clippy::needless_range_loop)] // d is arithmetic, not just an index
    for d in 1..=dmax {
        ln_choose += ((n - d as u64 + 1) as f64).ln() - (d as f64).ln();
        ln_fact += (d as f64).ln();
        if s_row[d] == f64::NEG_INFINITY {
            continue;
        }
        let ln_term = ln_choose + s_row[d] + ln_fact - ln_n_pow_r;
        expectation += d as f64 * ln_term.exp();
    }
    expectation
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stirling_small_values() {
        // S(4, ·) = [0, 1, 7, 6, 1]
        let row = stirling2_row(4);
        assert_eq!(row[1], 1.0);
        assert_eq!(row[2], 7.0);
        assert_eq!(row[3], 6.0);
        assert_eq!(row[4], 1.0);
        // S(5,3) = 25
        assert_eq!(stirling2_row(5)[3], 25.0);
    }

    #[test]
    fn stirling_row_zero() {
        assert_eq!(stirling2_row(0), vec![1.0]);
    }

    #[test]
    fn closed_form_edge_cases() {
        assert_eq!(expected_distinct(0, 5), 0.0);
        assert_eq!(expected_distinct(5, 0), 0.0);
        // One draw touches exactly one item.
        assert!((expected_distinct(100, 1) - 1.0).abs() < 1e-12);
        // n = 1: any number of draws touches the single item.
        assert!((expected_distinct(1, 10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_space_stirling_matches_plain() {
        let plain = stirling2_row(20);
        let logs = stirling2_row_ln(20);
        for d in 1..=20 {
            let back = logs[d].exp();
            assert!(
                (back - plain[d]).abs() / plain[d].max(1.0) < 1e-9,
                "d={d}: {back} vs {}",
                plain[d]
            );
        }
    }

    #[test]
    fn log_space_stirling_survives_large_r() {
        // S(256, d) overflows f64; the log-space sum must stay finite and
        // agree with the closed form.
        let st = expected_distinct_stirling(64, 256);
        let cf = expected_distinct(64, 256);
        assert!(st.is_finite());
        assert!((st - cf).abs() < 1e-6 * cf, "{st} vs {cf}");
    }

    #[test]
    fn closed_form_matches_stirling_sum() {
        for &(n, r) in &[(2u64, 3u64), (5, 5), (10, 7), (8, 16), (20, 20), (30, 10)] {
            let cf = expected_distinct(n, r);
            let st = expected_distinct_stirling(n, r);
            assert!(
                (cf - st).abs() < 1e-6 * st.max(1.0),
                "n={n} r={r}: closed={cf} stirling={st}"
            );
        }
    }

    #[test]
    fn distinct_is_monotone_and_bounded() {
        let n = 1000;
        let mut prev = 0.0;
        for r in [1u64, 10, 100, 1000, 10_000, 100_000] {
            let d = expected_distinct(n, r);
            assert!(d > prev, "monotone in r");
            assert!(d <= n as f64 + 1e-9, "bounded by n");
            assert!(d <= r as f64 + 1e-9, "bounded by r");
            prev = d;
        }
        // Saturates to n for r >> n.
        assert!((expected_distinct(n, 1_000_000) - n as f64).abs() < 1e-6);
    }

    #[test]
    fn coupon_collector_landmark() {
        // After n draws from n items, expected distinct ≈ n(1 − 1/e).
        let d = expected_distinct(1_000_000, 1_000_000);
        let expect = 1_000_000.0 * (1.0 - (-1.0f64).exp());
        assert!((d - expect).abs() / expect < 1e-3);
    }

    #[test]
    fn huge_inputs_are_stable() {
        // Values the fig7c experiment actually uses.
        let d = expected_distinct(1 << 24, 1 << 24);
        assert!(d.is_finite() && d > 0.0);
        let d2 = expected_distinct(u32::MAX as u64, 1 << 30);
        assert!(d2.is_finite() && d2 <= u32::MAX as f64);
    }
}
