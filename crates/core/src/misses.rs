//! Cache-miss estimation for the basic access patterns
//! (paper §4, Equations 4.2–4.9).
//!
//! Every function here estimates misses **for one cache level**, described
//! by its [`Geometry`] (capacity `C`, line size `B`, line count `#`). The
//! paper's hypothesis (Eq 3.1) is that levels can be treated individually
//! though equally; the evaluator in [`crate::eval`] simply runs these
//! estimators once per level.
//!
//! Misses come in two flavours, [`MissPair::seq`] and [`MissPair::rand`],
//! scored later with the level's sequential respectively random miss
//! latency. Purely random patterns produce only random misses (§4.1).
//!
//! Where the source scan of the paper garbles an equation, the
//! reconstruction is documented inline and in `DESIGN.md` §2; every
//! reconstruction is validated against the cache simulator in the
//! integration suite.

use crate::distinct::expected_distinct;
use crate::pattern::{Direction, GlobalOrder, LatencyClass, LocalPattern};
use crate::region::Region;
use gcm_hardware::CacheLevel;
use std::ops::{Add, AddAssign, Mul};

/// Estimated sequential and random misses at one cache level
/// (the paper's pair `⟨Ms, Mr⟩`, Eq 4.1).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MissPair {
    /// Misses scored with sequential miss latency.
    pub seq: f64,
    /// Misses scored with random miss latency.
    pub rand: f64,
}

impl MissPair {
    /// A pair with only sequential misses.
    pub fn seq(n: f64) -> MissPair {
        MissPair { seq: n, rand: 0.0 }
    }

    /// A pair with only random misses.
    pub fn rand(n: f64) -> MissPair {
        MissPair { seq: 0.0, rand: n }
    }

    /// Total misses regardless of flavour.
    pub fn total(&self) -> f64 {
        self.seq + self.rand
    }

    /// Route a miss count to the flavour selected by `class`.
    pub fn classed(n: f64, class: LatencyClass) -> MissPair {
        match class {
            LatencyClass::Sequential => MissPair::seq(n),
            LatencyClass::Random => MissPair::rand(n),
        }
    }
}

impl Add for MissPair {
    type Output = MissPair;
    fn add(self, o: MissPair) -> MissPair {
        MissPair {
            seq: self.seq + o.seq,
            rand: self.rand + o.rand,
        }
    }
}

impl AddAssign for MissPair {
    fn add_assign(&mut self, o: MissPair) {
        self.seq += o.seq;
        self.rand += o.rand;
    }
}

impl Mul<f64> for MissPair {
    type Output = MissPair;
    fn mul(self, s: f64) -> MissPair {
        MissPair {
            seq: self.seq * s,
            rand: self.rand * s,
        }
    }
}

/// The cost-relevant geometry of one cache level: capacity `C`, line size
/// `B`, line count `#`. Extracted from a (possibly capacity-scaled)
/// [`CacheLevel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometry {
    /// Capacity `C` in bytes.
    pub c: f64,
    /// Line size `B` in bytes.
    pub b: f64,
    /// Number of lines `# = C/B`.
    pub lines: f64,
}

impl Geometry {
    /// Geometry of a hardware level.
    pub fn of(level: &CacheLevel) -> Geometry {
        let c = level.capacity as f64;
        let b = level.line as f64;
        Geometry { c, b, lines: c / b }
    }

    /// A geometry with only `frac` of the capacity (and lines) available;
    /// line size is unchanged. Used by the concurrent-execution rule.
    pub fn scaled(&self, frac: f64) -> Geometry {
        let frac = frac.clamp(0.0, 1.0);
        let c = (self.c * frac).max(self.b);
        Geometry {
            c,
            b: self.b,
            lines: c / self.b,
        }
    }
}

/// Expected cache lines loaded per access of `u` consecutive bytes at a
/// uniformly random alignment within a `b`-byte line (paper Eq 4.3/4.5,
/// Figure 4/5).
///
/// Derivation: write `u = q·b + rem` with `rem ∈ [1, b]` (the paper's
/// `mod'` convention). An access starting at in-line offset `a` loads
/// `q + 1` lines when `a + rem ≤ b` and `q + 2` otherwise; averaging over
/// the `b` equally likely offsets gives
/// `⌊(u−1)/b⌋ + 1 + ((u−1) mod b)/b`.
pub fn lines_per_item(u: u64, b: f64) -> f64 {
    if u == 0 {
        return 0.0;
    }
    let bi = b as u64;
    let q = (u - 1) / bi;
    let rem = (u - 1) % bi;
    q as f64 + 1.0 + rem as f64 / b
}

/// True if the untouched gap between adjacent accesses spans at least a
/// full cache line — the case split used throughout §4.
fn gap_at_least_line(r: &Region, u: u64, b: f64) -> bool {
    (r.w.saturating_sub(u)) as f64 >= b
}

/// Raw miss count of a single sequential traversal `s_trav(R, u)`
/// (Eq 4.2 / 4.3). The caller routes it to the flavour of the traversal's
/// [`LatencyClass`].
pub fn s_trav_count(r: &Region, u: u64, g: &Geometry) -> f64 {
    if r.n == 0 {
        return 0.0;
    }
    if gap_at_least_line(r, u, g.b) {
        // Eq 4.3: each item loads its own lines; no line is shared between
        // items, and alignment is averaged.
        r.n as f64 * lines_per_item(u, g.b)
    } else {
        // Eq 4.2: gaps smaller than a line mean every line covered by R is
        // loaded exactly once.
        r.lines(g.b as u64)
    }
}

/// Misses of `s_trav` with the latency flavour applied.
pub fn s_trav(r: &Region, u: u64, class: LatencyClass, g: &Geometry) -> MissPair {
    MissPair::classed(s_trav_count(r, u, g), class)
}

/// Misses of a single random traversal `r_trav(R, u)` (Eq 4.4 / 4.5).
///
/// Gap ≥ line: identical count to the sequential case (Eq 4.5) — adjacent
/// accesses share no lines, so order cannot matter.
///
/// Gap < line (Eq 4.4, reconstructed — see `DESIGN.md`): every covered
/// line is loaded at least once (`|R|`). Once `||R||` exceeds the
/// capacity, a line that serves several items may be evicted between their
/// (temporally scattered) accesses; the `R.n − |R|` accesses that would
/// have reused a line lose that reuse with probability `1 − C/||R||`:
///
/// ```text
/// Mr = |R| + max(0, 1 − C/||R||) · max(0, R.n − |R|)
/// ```
///
/// Limits: `||R|| ≤ C` ⇒ `|R|` (same as sequential);
/// `||R|| → ∞` ⇒ `R.n` (every access misses) — the two invariants §4.4
/// states.
pub fn r_trav(r: &Region, u: u64, g: &Geometry) -> MissPair {
    if r.n == 0 {
        return MissPair::default();
    }
    if gap_at_least_line(r, u, g.b) {
        return MissPair::rand(r.n as f64 * lines_per_item(u, g.b));
    }
    let lines = r.lines(g.b as u64);
    let size = r.bytes() as f64;
    let lost = (1.0 - g.c / size).max(0.0);
    let reusable = (r.n as f64 - lines).max(0.0);
    MissPair::rand(lines + lost * reusable)
}

/// Misses of a repetitive sequential traversal `rs_trav(k, d, R, u)`
/// (Eq 4.6).
///
/// With the first traversal touching `M1` lines: if they all fit
/// (`M1 ≤ #`), only the first sweep misses. Otherwise uni-directional
/// sweeps get no reuse (`k·M1`), while bi-directional sweeps reuse the `#`
/// lines resident at the turning point (`M1 + (k−1)(M1 − #)`).
pub fn rs_trav(
    r: &Region,
    u: u64,
    k: u64,
    dir: Direction,
    class: LatencyClass,
    g: &Geometry,
) -> MissPair {
    if r.n == 0 || k == 0 {
        return MissPair::default();
    }
    let m1 = s_trav_count(r, u, g);
    let kf = k as f64;
    let count = if m1 <= g.lines {
        m1
    } else {
        match dir {
            Direction::Uni => kf * m1,
            Direction::Bi => m1 + (kf - 1.0) * (m1 - g.lines),
        }
    };
    MissPair::classed(count, class)
}

/// Misses of a repetitive random traversal `rr_trav(k, R, u)` (Eq 4.7).
///
/// When one traversal's lines fit the cache, only the first sweep misses.
/// Otherwise the `#` most recently used lines survive between sweeps and
/// each is reused with probability `#/M1` (the paper's estimate), so each
/// subsequent sweep misses `M1 − #·(#/M1)` times.
pub fn rr_trav(r: &Region, u: u64, k: u64, g: &Geometry) -> MissPair {
    if r.n == 0 || k == 0 {
        return MissPair::default();
    }
    let m1 = r_trav(r, u, g).total();
    let kf = k as f64;
    let count = if m1 <= g.lines {
        m1
    } else {
        m1 + (kf - 1.0) * (m1 - g.lines * (g.lines / m1))
    };
    MissPair::rand(count)
}

/// Distinct lines `I` touched by `q` random accesses hitting `D` distinct
/// items (paper §4.6).
///
/// Gap ≥ line: no line serves two items, so `I = D · lines_per_item`.
/// Gap < line: the paper bounds `I` between the packed estimate
/// `Î = D·R.w/B` (all touched items adjacent) and the spread estimate
/// `Ĩ = min(D·lines_per_item, |R|)`, and linearly combines them with
/// weight `D/R.n` (dense hit sets behave packed, sparse ones spread).
pub fn r_acc_distinct_lines(r: &Region, u: u64, d: f64, g: &Geometry) -> f64 {
    if d <= 0.0 {
        return 0.0;
    }
    if gap_at_least_line(r, u, g.b) {
        return d * lines_per_item(u, g.b);
    }
    let packed = (d * r.w as f64 / g.b).ceil();
    let spread = (d * lines_per_item(u, g.b)).min(r.lines(g.b as u64));
    let density = if r.n == 0 {
        1.0
    } else {
        (d / r.n as f64).clamp(0.0, 1.0)
    };
    density * packed + (1.0 - density) * spread
}

/// Misses of `r_acc(R, q, u)` (Eq 4.8): `q` independent random accesses
/// with replacement.
///
/// `D` = expected distinct items touched (closed form of the paper's
/// Stirling-number expectation, see [`crate::distinct`]), `I` = distinct
/// lines. The `q` accesses perform `T = q·⌈u/B⌉` line visits in total
/// (for gaps ≥ line, `lines_per_item` visits); the first visit of each of
/// the `I` distinct lines must miss, and — following the Eq 4.7 reuse
/// estimate, where each of the `#` resident lines is the needed one with
/// probability `#/I` — each of the `T − I` revisits finds its line
/// evicted with probability `1 − (#/I)²` once `I > #`:
///
/// ```text
/// M = I                              if I ≤ #
/// M = I + (T − I)·(1 − (#/I)²)       otherwise
/// ```
///
/// Limits: a cached region costs at most `I ≤ |R|` however many accesses;
/// an arbitrarily large region costs one miss per line visit.
pub fn r_acc(r: &Region, u: u64, q: u64, g: &Geometry) -> MissPair {
    if r.n == 0 || q == 0 {
        return MissPair::default();
    }
    let d = expected_distinct(r.n, q);
    let i = r_acc_distinct_lines(r, u, d, g);
    if i <= 0.0 {
        return MissPair::default();
    }
    let per_access = if gap_at_least_line(r, u, g.b) {
        lines_per_item(u, g.b)
    } else {
        (u as f64 / g.b).ceil().max(1.0)
    };
    let t = q as f64 * per_access;
    let count = if i <= g.lines {
        i
    } else {
        let reuse_p = (g.lines / i) * (g.lines / i);
        i + (t - i).max(0.0) * (1.0 - reuse_p)
    };
    MissPair::rand(count)
}

/// Misses of an interleaved multi-cursor access
/// `nest(R, m, P, g)` (Eq 4.9) — the partitioning pattern.
///
/// `R` is divided into `m` equal sub-regions, each with a local cursor
/// performing `local`; a global cursor interleaves the local cursors in
/// `order`.
///
/// * Local **random** patterns: interleaving random cursors is just a
///   different random permutation of the same accesses, so the whole thing
///   behaves like the local pattern applied to all of `R` (§4.7.1).
/// * Local **sequential** with untouched gaps ≥ line: no line is shared
///   between items, so the count equals the whole-region traversal count;
///   the latency flavour degrades to random unless the global order is
///   itself sequential (§4.7.2, first case).
/// * Local **sequential** with gaps < line: each cursor keeps
///   `⌈u/B⌉` lines "open". While the `λ = m·⌈u/B⌉` open lines fit the
///   cache, every covered line is loaded exactly once (`|R|`). Once
///   `λ > #`, a cursor's open line is evicted before its next visit with
///   probability `1 − Δ/λ`, where `Δ` is the number of open lines that
///   survive one global round: `Δ = #` for a bi-directional sequential
///   global cursor, `Δ = 0` for uni-directional, and `Δ = #·#/λ` for a
///   random global cursor (the Eq 4.7 estimate). The
///   `R.n·⌈u/B⌉ − |R|` would-be reuses that fail are extra random misses.
///   This reproduces the partitioning cliffs of Figure 7d at `m ≈ #` for
///   every level.
pub fn nest(
    r: &Region,
    m: u64,
    local: &LocalPattern,
    order: GlobalOrder,
    g: &Geometry,
) -> MissPair {
    if r.n == 0 || m == 0 {
        return MissPair::default();
    }
    match local {
        LocalPattern::RandTraversal { u } => r_trav(r, *u, g),
        LocalPattern::SeqTraversal { u, latency } => {
            let u = *u;
            if gap_at_least_line(r, u, g.b) {
                let count = r.n as f64 * lines_per_item(u, g.b);
                let class = match order {
                    GlobalOrder::Sequential(_) => *latency,
                    GlobalOrder::Random => LatencyClass::Random,
                };
                return MissPair::classed(count, class);
            }
            let per_item = (u as f64 / g.b).ceil().max(1.0);
            let open = m as f64 * per_item; // λ: concurrently open lines
            let base = r.lines(g.b as u64);
            if open <= g.lines {
                let class = match order {
                    GlobalOrder::Sequential(_) => *latency,
                    GlobalOrder::Random => LatencyClass::Random,
                };
                return MissPair::classed(base, class);
            }
            let surviving = match order {
                GlobalOrder::Sequential(Direction::Bi) => g.lines,
                GlobalOrder::Sequential(Direction::Uni) => 0.0,
                GlobalOrder::Random => g.lines * (g.lines / open),
            };
            let reuse_p = (surviving / open).clamp(0.0, 1.0);
            let touches = r.n as f64 * per_item;
            let extra = (touches - base).max(0.0) * (1.0 - reuse_p);
            // Heavy interleaving destroys the EDO stream: everything random.
            MissPair::rand(base + extra)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo(c: u64, b: u64) -> Geometry {
        Geometry {
            c: c as f64,
            b: b as f64,
            lines: c as f64 / b as f64,
        }
    }

    // ---- lines_per_item (Eq 4.3's alignment average) ----

    #[test]
    fn lines_per_item_exact_values() {
        // u = B: (1 + 7·2)/8 pattern → 1 + (B−1)/B.
        assert!((lines_per_item(8, 8.0) - 1.875).abs() < 1e-12);
        // u = 1: always exactly 1 line.
        assert!((lines_per_item(1, 32.0) - 1.0).abs() < 1e-12);
        // u = 3, B = 8: 1 + 2/8.
        assert!((lines_per_item(3, 8.0) - 1.25).abs() < 1e-12);
        // u = 2B: ⌊(2B−1)/B⌋ + 1 + (B−1)/B = 2 + 7/8.
        assert!((lines_per_item(16, 8.0) - 2.875).abs() < 1e-12);
        assert_eq!(lines_per_item(0, 8.0), 0.0);
    }

    #[test]
    fn lines_per_item_is_brute_force_average() {
        // Check against direct enumeration of alignments for many (u, B).
        for b in [8u64, 32, 64] {
            for u in 1..=3 * b {
                let direct: f64 = (0..b)
                    .map(|a| ((a + u) as f64 / b as f64).ceil())
                    .sum::<f64>()
                    / b as f64;
                let formula = lines_per_item(u, b as f64);
                assert!(
                    (direct - formula).abs() < 1e-9,
                    "u={u} b={b}: direct={direct} formula={formula}"
                );
            }
        }
    }

    // ---- s_trav (Eq 4.2/4.3) ----

    #[test]
    fn s_trav_dense_counts_region_lines() {
        // 1000 items × 8 B = 8000 B on 32-B lines → 250 lines.
        let r = Region::new("R", 1000, 8);
        let g = geo(1024, 32);
        assert_eq!(s_trav_count(&r, 8, &g), 250.0);
        // u < w but gap < B still loads every line.
        let r2 = Region::new("R2", 1000, 16);
        assert_eq!(s_trav_count(&r2, 4, &g), 500.0);
    }

    #[test]
    fn s_trav_sparse_counts_per_item_lines() {
        // w = 128, u = 8, B = 32: gap = 120 ≥ 32 → per-item lines.
        let r = Region::new("R", 1000, 128);
        let g = geo(1024, 32);
        let m = s_trav_count(&r, 8, &g);
        assert!((m - 1000.0 * lines_per_item(8, 32.0)).abs() < 1e-9);
        assert!(m < r.lines(32)); // fewer than all lines
    }

    #[test]
    fn s_trav_latency_flavour() {
        let r = Region::new("R", 100, 8);
        let g = geo(1024, 32);
        let s = s_trav(&r, 8, LatencyClass::Sequential, &g);
        assert!(s.rand == 0.0 && s.seq == 25.0);
        let rm = s_trav(&r, 8, LatencyClass::Random, &g);
        assert!(rm.seq == 0.0 && rm.rand == 25.0);
    }

    // ---- r_trav (Eq 4.4/4.5) ----

    #[test]
    fn r_trav_fitting_region_equals_s_trav() {
        // §4.4 invariant: ||R|| ≤ C ⇒ random = sequential count.
        let r = Region::new("R", 100, 8); // 800 B < 1024
        let g = geo(1024, 32);
        assert!((r_trav(&r, 8, &g).total() - s_trav_count(&r, 8, &g)).abs() < 1e-9);
    }

    #[test]
    fn r_trav_oversized_region_exceeds_s_trav() {
        // §4.4 invariant: ||R|| > C ⇒ random > sequential count.
        let r = Region::new("R", 10_000, 8); // 80 KB >> 1 KB
        let g = geo(1024, 32);
        let rt = r_trav(&r, 8, &g).total();
        let st = s_trav_count(&r, 8, &g);
        assert!(rt > st, "random {rt} must exceed sequential {st}");
        // And approaches one miss per item for huge regions.
        assert!(rt < 10_000.0 + 1.0);
        assert!(rt > 0.9 * 10_000.0 * (1.0 - 1024.0 / 80_000.0));
    }

    #[test]
    fn r_trav_sparse_equals_s_trav_count() {
        // §4.4 invariant: gap ≥ B ⇒ counts equal regardless of cache size.
        let r = Region::new("R", 5_000, 256);
        let g = geo(1024, 32);
        assert!((r_trav(&r, 8, &g).total() - s_trav_count(&r, 8, &g)).abs() < 1e-9);
    }

    #[test]
    fn r_trav_is_pure_random() {
        let r = Region::new("R", 100, 8);
        assert_eq!(r_trav(&r, 8, &geo(1024, 32)).seq, 0.0);
    }

    // ---- rs_trav (Eq 4.6) ----

    #[test]
    fn rs_trav_cached_region_pays_once() {
        let r = Region::new("R", 10, 8); // 80 B ≪ 1 KB
        let g = geo(1024, 32);
        let m1 = s_trav_count(&r, 8, &g);
        for dir in [Direction::Uni, Direction::Bi] {
            let m = rs_trav(&r, 8, 10, dir, LatencyClass::Sequential, &g);
            assert!((m.total() - m1).abs() < 1e-9, "{dir:?}");
        }
    }

    #[test]
    fn rs_trav_uni_pays_every_sweep() {
        let r = Region::new("R", 1000, 8); // 8 KB > 1 KB
        let g = geo(1024, 32);
        let m1 = s_trav_count(&r, 8, &g);
        let m = rs_trav(&r, 8, 4, Direction::Uni, LatencyClass::Sequential, &g);
        assert!((m.total() - 4.0 * m1).abs() < 1e-9);
    }

    #[test]
    fn rs_trav_bi_saves_cache_lines() {
        let r = Region::new("R", 1000, 8);
        let g = geo(1024, 32); // 32 lines
        let m1 = s_trav_count(&r, 8, &g); // 250
        let m = rs_trav(&r, 8, 4, Direction::Bi, LatencyClass::Sequential, &g);
        assert!((m.total() - (m1 + 3.0 * (m1 - 32.0))).abs() < 1e-9);
        // Bi ≤ Uni always.
        let uni = rs_trav(&r, 8, 4, Direction::Uni, LatencyClass::Sequential, &g);
        assert!(m.total() <= uni.total());
    }

    // ---- rr_trav (Eq 4.7) ----

    #[test]
    fn rr_trav_cached_region_pays_once() {
        let r = Region::new("R", 10, 8);
        let g = geo(1024, 32);
        let m = rr_trav(&r, 8, 5, &g);
        assert!((m.total() - r_trav(&r, 8, &g).total()).abs() < 1e-9);
    }

    #[test]
    fn rr_trav_large_region_partial_reuse() {
        let r = Region::new("R", 1000, 8);
        let g = geo(1024, 32);
        let m1 = r_trav(&r, 8, &g).total();
        let m = rr_trav(&r, 8, 3, &g).total();
        // Between "full reuse" (m1) and "no reuse" (3·m1).
        assert!(m > m1 && m < 3.0 * m1);
        // Exact Eq 4.7 value.
        let expect = m1 + 2.0 * (m1 - 32.0 * (32.0 / m1));
        assert!((m - expect).abs() < 1e-9);
    }

    // ---- r_acc (Eq 4.8) ----

    #[test]
    fn r_acc_zero_cases() {
        let r = Region::new("R", 100, 8);
        let g = geo(1024, 32);
        assert_eq!(r_acc(&r, 8, 0, &g).total(), 0.0);
        let empty = Region::new("E", 0, 8);
        assert_eq!(r_acc(&empty, 8, 100, &g).total(), 0.0);
    }

    #[test]
    fn r_acc_fitting_region_bounded_by_lines() {
        let r = Region::new("R", 100, 8); // 800 B < 1 KB cache
        let g = geo(1024, 32);
        // However many accesses, a cached region costs at most |R| misses.
        let m = r_acc(&r, 8, 1_000_000, &g).total();
        assert!(m <= r.lines(32) + 1e-9);
    }

    #[test]
    fn r_acc_grows_with_accesses_on_oversized_region() {
        let r = Region::new("R", 100_000, 8); // 800 KB
        let g = geo(1024, 32);
        let m1 = r_acc(&r, 8, 1_000, &g).total();
        let m2 = r_acc(&r, 8, 100_000, &g).total();
        assert!(m2 > m1);
        // Roughly one miss per access when nothing fits.
        assert!(m2 > 0.8 * 100_000.0);
    }

    #[test]
    fn r_acc_few_hits_cost_their_lines() {
        let r = Region::new("R", 1_000_000, 8);
        let g = geo(1024, 32);
        // 10 accesses over a million items: ~10 distinct lines (plus the
        // alignment average's fractional extra), essentially all missing.
        let m = r_acc(&r, 8, 10, &g).total();
        assert!(m > 9.0 && m < 14.0, "m={m}");
    }

    // ---- nest (Eq 4.9) ----

    #[test]
    fn nest_local_random_behaves_like_r_trav() {
        let r = Region::new("R", 10_000, 8);
        let g = geo(1024, 32);
        let n = nest(
            &r,
            16,
            &LocalPattern::RandTraversal { u: 8 },
            GlobalOrder::Random,
            &g,
        );
        assert!((n.total() - r_trav(&r, 8, &g).total()).abs() < 1e-9);
    }

    #[test]
    fn nest_few_partitions_cost_region_lines() {
        // m below the line count: pure sequential writes, |R| misses.
        let r = Region::new("R", 10_000, 8); // 80 KB, 2500 lines of 32 B
        let g = geo(1024, 32); // 32 lines
        let m = 8; // 8 open lines ≤ 32
        let n = nest(
            &r,
            m,
            &LocalPattern::SeqTraversal {
                u: 8,
                latency: LatencyClass::Sequential,
            },
            GlobalOrder::Random,
            &g,
        );
        assert!((n.total() - r.lines(32)).abs() < 1e-9);
        // Random global order: counted as random misses.
        assert_eq!(n.seq, 0.0);
    }

    #[test]
    fn nest_cliff_at_line_count() {
        // The Figure-7d cliff: misses jump once m exceeds #.
        let r = Region::new("R", 100_000, 8);
        let g = geo(1024, 32); // # = 32
        let local = LocalPattern::SeqTraversal {
            u: 8,
            latency: LatencyClass::Sequential,
        };
        let below = nest(&r, 32, &local, GlobalOrder::Random, &g).total();
        let above = nest(&r, 4096, &local, GlobalOrder::Random, &g).total();
        assert!((below - r.lines(32)).abs() < 1e-9);
        // below = |R| = 25 000 lines; above saturates towards R.n = 100 000.
        assert!(above > 3.0 * below, "cliff: {below} -> {above}");
        // Saturates at ~one miss per item for m ≫ #.
        let extreme = nest(&r, 1 << 20, &local, GlobalOrder::Random, &g).total();
        assert!(extreme <= 100_000.0 + r.lines(32));
        assert!(extreme > 0.95 * 100_000.0);
    }

    #[test]
    fn nest_monotone_in_m_past_cliff() {
        let r = Region::new("R", 100_000, 8);
        let g = geo(1024, 32);
        let local = LocalPattern::SeqTraversal {
            u: 8,
            latency: LatencyClass::Sequential,
        };
        let mut prev = 0.0;
        for m in [32u64, 64, 128, 1024, 16_384] {
            let cur = nest(&r, m, &local, GlobalOrder::Random, &g).total();
            assert!(cur >= prev - 1e-9, "m={m}: {cur} < {prev}");
            prev = cur;
        }
    }

    #[test]
    fn nest_bi_sequential_global_reuses_lines() {
        let r = Region::new("R", 100_000, 8);
        let g = geo(1024, 32);
        let local = LocalPattern::SeqTraversal {
            u: 8,
            latency: LatencyClass::Sequential,
        };
        let m = 64; // 2× the line count
        let bi = nest(&r, m, &local, GlobalOrder::Sequential(Direction::Bi), &g).total();
        let uni = nest(&r, m, &local, GlobalOrder::Sequential(Direction::Uni), &g).total();
        let rnd = nest(&r, m, &local, GlobalOrder::Random, &g).total();
        assert!(bi < rnd, "bi {bi} < rnd {rnd}");
        assert!(rnd < uni, "rnd {rnd} < uni {uni}");
    }

    #[test]
    fn nest_sparse_items_cost_per_item_lines() {
        // Wide items, small u: gap ≥ B ⇒ per-item lines, whatever m.
        let r = Region::new("R", 1000, 256);
        let g = geo(1024, 32);
        let local = LocalPattern::SeqTraversal {
            u: 8,
            latency: LatencyClass::Sequential,
        };
        for m in [2u64, 64, 1024] {
            let n = nest(&r, m, &local, GlobalOrder::Random, &g).total();
            assert!((n - 1000.0 * lines_per_item(8, 32.0)).abs() < 1e-9);
        }
    }

    // ---- MissPair arithmetic ----

    #[test]
    fn miss_pair_ops() {
        let a = MissPair::seq(2.0) + MissPair::rand(3.0);
        assert_eq!(a.total(), 5.0);
        let b = a * 2.0;
        assert_eq!(b.seq, 4.0);
        assert_eq!(b.rand, 6.0);
        let mut c = MissPair::default();
        c += b;
        assert_eq!(c, b);
    }
}
