//! Parsing the pattern language (the inverse of the `Display`
//! rendering): cost functions from *text*.
//!
//! The paper's workflow ends with "describing the algorithms' data
//! access in a kind of pattern language" (§7). This module makes that
//! language round-trippable: a pattern printed by the library parses
//! back to an equivalent pattern, and new operators can be costed from a
//! one-line description without writing Rust:
//!
//! ```
//! use gcm_core::parse::{parse_pattern, Catalog};
//! use gcm_core::Region;
//!
//! let mut cat = Catalog::new();
//! cat.add(Region::new("U", 1_000_000, 8));
//! cat.add(Region::new("H", 2_097_152, 16));
//! let p = parse_pattern("s_trav(U) ⊙ r_acc(H, 500000)", &cat).unwrap();
//! assert_eq!(p.to_string(), "s_trav(U) ⊙ r_acc(H, 500000)");
//! ```
//!
//! Grammar (`⊙` binds tighter than `⊕`; `N ×` repetition tighter still;
//! ASCII spellings `(+)`, `(.)`, `x` are accepted):
//!
//! ```text
//! pattern  := conc ( '⊕' conc )*
//! conc     := repeat ( '⊙' repeat )*
//! repeat   := [ INT '×' ] atom
//! atom     := '(' pattern ')' | call
//! call     := NAME '(' args ')'
//! ```

use crate::pattern::{Direction, GlobalOrder, LatencyClass, LocalPattern, Pattern};
use crate::region::Region;
use std::collections::HashMap;
use std::fmt;

/// Known regions, by name, for resolving identifiers in pattern text.
#[derive(Debug, Default)]
pub struct Catalog {
    regions: HashMap<String, Region>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a region under its own name.
    pub fn add(&mut self, r: Region) -> &mut Self {
        self.regions.insert(r.name().to_string(), r);
        self
    }

    /// Look a region up by name.
    pub fn get(&self, name: &str) -> Option<&Region> {
        self.regions.get(name)
    }
}

/// A parse error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
    catalog: &'a Catalog,
}

/// Parse pattern text against a region catalog.
pub fn parse_pattern(src: &str, catalog: &Catalog) -> Result<Pattern, ParseError> {
    let mut p = Parser {
        src,
        pos: 0,
        catalog,
    };
    let pat = p.pattern()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(p.error("trailing input"));
    }
    Ok(pat)
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.rest().chars().next() {
            if c.is_whitespace() {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn eat_any(&mut self, tokens: &[&str]) -> bool {
        tokens.iter().any(|t| self.eat(t))
    }

    fn pattern(&mut self) -> Result<Pattern, ParseError> {
        let mut parts = vec![self.conc()?];
        while self.eat_any(&["⊕", "(+)"]) {
            parts.push(self.conc()?);
        }
        Ok(Pattern::seq(parts))
    }

    fn conc(&mut self) -> Result<Pattern, ParseError> {
        let mut parts = vec![self.repeat()?];
        while self.eat_any(&["⊙", "(.)"]) {
            parts.push(self.repeat()?);
        }
        Ok(Pattern::conc(parts))
    }

    fn repeat(&mut self) -> Result<Pattern, ParseError> {
        self.skip_ws();
        let save = self.pos;
        if let Ok(k) = self.integer() {
            if self.eat_any(&["×", "x"]) {
                let inner = self.atom()?;
                return Ok(Pattern::repeat(k, inner));
            }
            self.pos = save; // not a repetition: backtrack
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Pattern, ParseError> {
        if self.eat("(") {
            let inner = self.pattern()?;
            if !self.eat(")") {
                return Err(self.error("expected ')'"));
            }
            return Ok(inner);
        }
        self.call()
    }

    fn call(&mut self) -> Result<Pattern, ParseError> {
        let name = self.identifier()?;
        if !self.eat("(") {
            return Err(self.error(format!("expected '(' after '{name}'")));
        }
        let pat = match name.as_str() {
            "s_trav" | "s_travʳ" | "s_trav_r" => {
                let r = self.region()?;
                let u = self.opt_u(&r)?;
                if name == "s_trav" {
                    Pattern::s_trav_u(r, u)
                } else {
                    Pattern::s_trav_r(r, u)
                }
            }
            "r_trav" => {
                let r = self.region()?;
                let u = self.opt_u(&r)?;
                Pattern::r_trav_u(r, u)
            }
            "rs_trav" => {
                // rs_trav(k, uni|bi, R [, u=N])
                let k = self.integer()?;
                self.expect_comma()?;
                let dir = self.direction()?;
                self.expect_comma()?;
                let r = self.region()?;
                let u = self.opt_u(&r)?;
                Pattern::rs_trav_u(r, u, k, dir)
            }
            "rr_trav" => {
                let k = self.integer()?;
                self.expect_comma()?;
                let r = self.region()?;
                let u = self.opt_u(&r)?;
                Pattern::rr_trav(r, u, k)
            }
            "r_acc" => {
                // r_acc(R [, u=N], q)
                let r = self.region()?;
                let u = self.opt_u(&r)?;
                self.expect_comma()?;
                let q = self.integer()?;
                Pattern::r_acc_u(r, u, q)
            }
            "nest" => {
                // nest(R, m, s_trav|r_trav, rnd|seq/uni|seq/bi)
                let r = self.region()?;
                self.expect_comma()?;
                let m = self.integer()?;
                self.expect_comma()?;
                let local_name = self.identifier()?;
                self.expect_comma()?;
                let order = self.global_order()?;
                let u = r.w;
                let local = match local_name.as_str() {
                    "s_trav" => LocalPattern::SeqTraversal {
                        u,
                        latency: LatencyClass::Sequential,
                    },
                    "r_trav" => LocalPattern::RandTraversal { u },
                    other => return Err(self.error(format!("unknown local pattern '{other}'"))),
                };
                Pattern::nest(r, m, local, order)
            }
            other => return Err(self.error(format!("unknown pattern '{other}'"))),
        };
        if !self.eat(")") {
            return Err(self.error("expected ')'"));
        }
        Ok(pat)
    }

    fn opt_u(&mut self, r: &Region) -> Result<u64, ParseError> {
        let save = self.pos;
        if self.eat(",") {
            self.skip_ws();
            if self.rest().starts_with("u=") {
                self.pos += 2;
                return self.integer();
            }
            self.pos = save;
        }
        Ok(r.w)
    }

    fn expect_comma(&mut self) -> Result<(), ParseError> {
        if self.eat(",") {
            Ok(())
        } else {
            Err(self.error("expected ','"))
        }
    }

    fn direction(&mut self) -> Result<Direction, ParseError> {
        let id = self.identifier()?;
        match id.as_str() {
            "uni" => Ok(Direction::Uni),
            "bi" => Ok(Direction::Bi),
            other => Err(self.error(format!("expected 'uni' or 'bi', got '{other}'"))),
        }
    }

    fn global_order(&mut self) -> Result<GlobalOrder, ParseError> {
        let id = self.identifier()?;
        match id.as_str() {
            "rnd" => Ok(GlobalOrder::Random),
            "seq" => {
                if !self.eat("/") {
                    return Err(self.error("expected 'seq/uni' or 'seq/bi'"));
                }
                Ok(GlobalOrder::Sequential(self.direction()?))
            }
            other => Err(self.error(format!("expected 'rnd' or 'seq/..', got '{other}'"))),
        }
    }

    fn region(&mut self) -> Result<Region, ParseError> {
        let name = self.identifier()?;
        self.catalog
            .get(&name)
            .cloned()
            .ok_or_else(|| self.error(format!("unknown region '{name}'")))
    }

    fn identifier(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        let start = self.pos;
        for c in self.rest().chars() {
            if c.is_alphanumeric() || c == '_' || c == 'ʳ' {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
        if self.pos == start {
            Err(self.error("expected identifier"))
        } else {
            Ok(self.src[start..self.pos].to_string())
        }
    }

    fn integer(&mut self) -> Result<u64, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.rest().starts_with(|c: char| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error("expected integer"));
        }
        self.src[start..self.pos]
            .parse()
            .map_err(|e| self.error(format!("bad integer: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add(Region::new("U", 1000, 8));
        c.add(Region::new("V", 1000, 8));
        c.add(Region::new("H", 2048, 16));
        c.add(Region::new("W", 1000, 16));
        c
    }

    #[test]
    fn parses_basic_patterns() {
        let c = catalog();
        for src in [
            "s_trav(U)",
            "s_trav(U, u=4)",
            "r_trav(H)",
            "rs_trav(3, bi, V)",
            "rr_trav(2, V)",
            "r_acc(H, 500)",
            "nest(W, 64, s_trav, rnd)",
            "nest(W, 8, s_trav, seq/bi)",
            "nest(W, 8, r_trav, rnd)",
        ] {
            let p = parse_pattern(src, &c).unwrap_or_else(|e| panic!("{src}: {e}"));
            assert!(p.is_basic(), "{src}");
        }
    }

    #[test]
    fn display_round_trips() {
        let c = catalog();
        let originals = vec![
            library::hash_join(
                c.get("U").unwrap().clone(),
                c.get("V").unwrap().clone(),
                c.get("H").unwrap().clone(),
                c.get("W").unwrap().clone(),
            ),
            library::merge_join(
                c.get("U").unwrap().clone(),
                c.get("V").unwrap().clone(),
                c.get("W").unwrap().clone(),
            ),
            library::partition(c.get("U").unwrap().clone(), c.get("W").unwrap().clone(), 16),
            library::nested_loop_join(
                c.get("U").unwrap().clone(),
                c.get("V").unwrap().clone(),
                c.get("W").unwrap().clone(),
            ),
        ];
        for p in originals {
            let text = p.to_string();
            let reparsed = parse_pattern(&text, &c).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(reparsed.to_string(), text, "round trip failed");
        }
    }

    #[test]
    fn parsed_pattern_costs_like_built_pattern() {
        let c = catalog();
        let built = library::hash_join(
            c.get("U").unwrap().clone(),
            c.get("V").unwrap().clone(),
            c.get("H").unwrap().clone(),
            c.get("W").unwrap().clone(),
        );
        let parsed = parse_pattern(&built.to_string(), &c).unwrap();
        let model = crate::CostModel::new(gcm_hardware::presets::tiny());
        assert!((model.mem_ns(&built) - model.mem_ns(&parsed)).abs() < 1e-6);
    }

    #[test]
    fn ascii_operator_spellings() {
        let c = catalog();
        let p = parse_pattern("s_trav(U) (.) r_trav(H) (+) s_trav(V)", &c).unwrap();
        assert_eq!(p.to_string(), "s_trav(U) ⊙ r_trav(H) ⊕ s_trav(V)");
        let rep = parse_pattern("4 x (s_trav(U) (.) s_trav(V))", &c).unwrap();
        assert_eq!(rep.to_string(), "4 × (s_trav(U) ⊙ s_trav(V))");
    }

    #[test]
    fn parenthesised_precedence() {
        let c = catalog();
        let p = parse_pattern("s_trav(U) ⊙ (s_trav(V) ⊕ s_trav(W))", &c).unwrap();
        assert_eq!(p.to_string(), "s_trav(U) ⊙ (s_trav(V) ⊕ s_trav(W))");
    }

    #[test]
    fn repeat_parses() {
        let c = catalog();
        let p = parse_pattern("8 × s_trav(U)", &c).unwrap();
        match p {
            Pattern::Repeat { k, .. } => assert_eq!(k, 8),
            other => panic!("expected Repeat, got {other}"),
        }
    }

    #[test]
    fn error_positions_and_messages() {
        let c = catalog();
        let e = parse_pattern("s_trav(X)", &c).unwrap_err();
        assert!(e.message.contains("unknown region 'X'"), "{e}");
        let e2 = parse_pattern("bogus(U)", &c).unwrap_err();
        assert!(e2.message.contains("unknown pattern"), "{e2}");
        let e3 = parse_pattern("s_trav(U) extra", &c).unwrap_err();
        assert!(e3.message.contains("trailing"), "{e3}");
        let e4 = parse_pattern("rs_trav(3, sideways, V)", &c).unwrap_err();
        assert!(e4.message.contains("uni"), "{e4}");
    }

    #[test]
    fn random_latency_variant() {
        let c = catalog();
        let p = parse_pattern("s_trav_r(U, u=4)", &c).unwrap();
        match p {
            Pattern::STrav { latency, u, .. } => {
                assert_eq!(latency, LatencyClass::Random);
                assert_eq!(u, 4);
            }
            other => panic!("unexpected {other}"),
        }
    }
}
