//! # gcm-core — Generic database cost models for hierarchical memory systems
//!
//! The core of the reproduction of Manegold, Boncz & Kersten (CWI
//! INS-R0203 / VLDB 2002): a *generic* technique for deriving the memory
//! access cost of database algorithms.
//!
//! The workflow the paper proposes (and this crate implements):
//!
//! 1. Describe data structures as [`Region`]s (`R.n` items × `R.w` bytes,
//!    §3.1).
//! 2. Describe an algorithm's memory behaviour as a [`Pattern`]: a
//!    combination of six basic access patterns under sequential (`⊕`) and
//!    concurrent (`⊙`) execution (§3.2–3.3; ready-made descriptions of the
//!    classic operators are in [`library`], the paper's Table 2).
//! 3. Let the model estimate sequential/random misses per cache level
//!    (Eq 4.2–4.9 in [`misses`], combination rules Eq 5.1–5.3 in [`eval`])
//!    and score them with the machine's miss latencies (Eq 3.1/6.1 in
//!    [`cost`]).
//!
//! ```
//! use gcm_core::{library, CostModel, Region};
//! use gcm_hardware::presets;
//!
//! let model = CostModel::new(presets::origin2000());
//! let u = Region::new("U", 1_000_000, 8);
//! let v = Region::new("V", 1_000_000, 8);
//! let h = Region::new("H", 1_000_000, 16);
//! let w = Region::new("W", 1_000_000, 8);
//!
//! let pattern = library::hash_join(u, v, h, w);
//! println!("{pattern}");           // the paper's pattern language
//! let report = model.report(&pattern);
//! assert!(report.mem_ns > 0.0);
//! ```

pub mod cost;
pub mod distinct;
pub mod eval;
pub mod library;
pub mod misses;
pub mod parse;
pub mod pattern;
pub mod region;

pub use cost::{
    BatchCost, CostModel, CostReport, CpuCost, HierarchyState, LevelCost, OverlapParams,
    OverlapReport, ParallelCost,
};
pub use eval::{footprint_lines, footprint_lines_excluding, references_region, CacheState};
pub use misses::{Geometry, MissPair};
pub use pattern::{Direction, GlobalOrder, LatencyClass, LocalPattern, Pattern};
pub use region::{Region, RegionId};
