//! Evaluating compound patterns: cache state, footprints, and the
//! `⊕`/`⊙` combination rules (paper §5).
//!
//! The evaluator walks a [`Pattern`] once per cache level (Eq 3.1 treats
//! levels independently), threading a [`CacheState`] that records which
//! fraction of each data region the level currently holds:
//!
//! * **Sequential execution `⊕`** (§5.1/5.2): patterns run one after the
//!   other; a pattern over a region the previous pattern left (partially)
//!   cached saves misses. A fully cached region costs nothing; random
//!   patterns benefit *proportionally* from a partially cached region;
//!   sequential patterns benefit only from a fully cached one (the cached
//!   fraction would have to be exactly the "head" of the region, which we
//!   cannot know). After a pattern, (only) its region remains cached, with
//!   fraction `min(1, C/||R||)`.
//! * **Concurrent execution `⊙`** (§5.2/Eq 5.3): patterns compete for the
//!   cache and are each granted a share proportional to their *footprint*
//!   (the lines they potentially revisit): single sequential traversals
//!   revisit nothing (footprint 1 line), as do random traversals with
//!   gaps ≥ line; every other basic pattern may revisit its whole region
//!   (`|R|` lines). Each pattern is then evaluated against a cache scaled
//!   to its share, and afterwards each region is cached in proportion to
//!   its share.

use crate::misses::{Geometry, MissPair};
use crate::pattern::{LocalPattern, Pattern};
use crate::region::RegionId;
use crate::{misses, region::Region};
use gcm_hardware::CacheLevel;
use std::collections::HashMap;

/// Which fraction of each region's *root* bytes a cache level holds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CacheState {
    frac: HashMap<RegionId, f64>,
}

impl CacheState {
    /// An empty (cold) cache.
    pub fn cold() -> CacheState {
        CacheState::default()
    }

    /// Cached fraction of the region's root (0 if unknown).
    pub fn fraction(&self, r: &Region) -> f64 {
        self.frac.get(&r.id()).copied().unwrap_or(0.0)
    }

    /// Declare a region (fraction of its root) resident — e.g. to model a
    /// warm start.
    pub fn set(&mut self, r: &Region, fraction: f64) {
        self.frac.insert(r.id(), fraction.clamp(0.0, 1.0));
    }

    /// True if the region's root is (essentially) fully resident.
    pub fn fully_cached(&self, r: &Region) -> bool {
        self.fraction(r) >= 1.0 - 1e-9
    }

    fn replace_with(&mut self, r: &Region, geo: &Geometry) {
        // Paper §5.1: after a pattern, (only) the last region remains, with
        // fraction min(C, ||R||)/root.
        self.frac.clear();
        let cached = geo.c.min(r.bytes() as f64);
        let root = r.root_bytes() as f64;
        if root > 0.0 {
            self.frac.insert(r.id(), (cached / root).clamp(0.0, 1.0));
        }
    }

    pub(crate) fn merge_add(&mut self, other: &CacheState) {
        for (id, f) in &other.frac {
            let e = self.frac.entry(*id).or_insert(0.0);
            *e = (*e + f).clamp(0.0, 1.0);
        }
    }
}

/// Does this basic pattern benefit *proportionally* from a partially
/// cached region (paper Eq 5.1: the random patterns do; sequential
/// patterns require the full region)?
fn benefits_proportionally(p: &Pattern) -> bool {
    matches!(
        p,
        Pattern::RTrav { .. }
            | Pattern::RrTrav { .. }
            | Pattern::RAcc { .. }
            | Pattern::Nest {
                local: LocalPattern::RandTraversal { .. },
                ..
            }
    )
}

/// Footprint of a pattern at a level, in cache lines (paper §5.2): the
/// number of lines the pattern potentially revisits.
pub fn footprint_lines(p: &Pattern, geo: &Geometry) -> f64 {
    match p {
        Pattern::STrav { .. } => 1.0,
        Pattern::RTrav { r, u } => {
            if (r.w.saturating_sub(*u)) as f64 >= geo.b {
                1.0
            } else {
                r.lines(geo.b as u64).max(1.0)
            }
        }
        Pattern::RsTrav { r, .. }
        | Pattern::RrTrav { r, .. }
        | Pattern::RAcc { r, .. }
        | Pattern::Nest { r, .. } => r.lines(geo.b as u64).max(1.0),
        // Sequentially executed patterns never coexist: the combination's
        // footprint is the largest individual one (documented assumption,
        // DESIGN.md §2). The empty composition ε claims no lines at all,
        // so it never steals a share from ⊙-siblings.
        Pattern::Seq(ps) => ps
            .iter()
            .map(|q| footprint_lines(q, geo))
            .fold(0.0_f64, f64::max)
            .max(if ps.is_empty() { 0.0 } else { 1.0 }),
        // Concurrent patterns coexist: footprints add (paper §5.2).
        Pattern::Conc(ps) => ps.iter().map(|q| footprint_lines(q, geo)).sum(),
        // Repetitions of one pattern occupy what one iteration occupies.
        Pattern::Repeat { inner, .. } => footprint_lines(inner, geo),
    }
}

/// [`footprint_lines`], with regions in `exclude` contributing nothing:
/// the footprint of everything the pattern touches *except* the listed
/// regions. The ⊙-with-shared-data rule
/// ([`crate::CostModel::advance_parallel_shared`]) uses this to count an
/// immutable region that several concurrent patterns reference — a
/// shared hash-join build — **once** in the capacity denominator instead
/// of once per referencing pattern (they revisit the *same* lines, so
/// under Eq 5.3 the data claims one footprint, not `d`).
pub fn footprint_lines_excluding(p: &Pattern, geo: &Geometry, exclude: &[RegionId]) -> f64 {
    match p {
        Pattern::Seq(ps) => ps
            .iter()
            .map(|q| footprint_lines_excluding(q, geo, exclude))
            .fold(0.0_f64, f64::max)
            .max(if ps.is_empty() { 0.0 } else { 1.0 }),
        Pattern::Conc(ps) => ps
            .iter()
            .map(|q| footprint_lines_excluding(q, geo, exclude))
            .sum(),
        Pattern::Repeat { inner, .. } => footprint_lines_excluding(inner, geo, exclude),
        basic => {
            let r = basic.region().expect("basic pattern has a region");
            if exclude.contains(&r.id()) {
                0.0
            } else {
                footprint_lines(basic, geo)
            }
        }
    }
}

/// Does the pattern contain a leaf over region `id`?
pub fn references_region(p: &Pattern, id: RegionId) -> bool {
    match p {
        Pattern::Seq(ps) | Pattern::Conc(ps) => ps.iter().any(|q| references_region(q, id)),
        Pattern::Repeat { inner, .. } => references_region(inner, id),
        basic => basic.region().is_some_and(|r| r.id() == id),
    }
}

/// Raw (cold-cache) misses of a basic pattern at one level.
fn basic_misses(p: &Pattern, geo: &Geometry) -> MissPair {
    match p {
        Pattern::STrav { r, u, latency } => misses::s_trav(r, *u, *latency, geo),
        Pattern::RsTrav {
            r,
            u,
            k,
            dir,
            latency,
        } => misses::rs_trav(r, *u, *k, *dir, *latency, geo),
        Pattern::RTrav { r, u } => misses::r_trav(r, *u, geo),
        Pattern::RrTrav { r, u, k } => misses::rr_trav(r, *u, *k, geo),
        Pattern::RAcc { r, u, accesses } => misses::r_acc(r, *u, *accesses, geo),
        Pattern::Nest { r, m, local, order } => misses::nest(r, *m, local, *order, geo),
        Pattern::Seq(_) | Pattern::Conc(_) | Pattern::Repeat { .. } => {
            unreachable!("compound handled by eval")
        }
    }
}

/// Evaluate `p` at one cache level with geometry `geo`, starting from (and
/// updating) `state`. Returns the estimated miss pair for this level
/// (Eq 5.1–5.3).
pub fn eval_level(p: &Pattern, geo: &Geometry, state: &mut CacheState) -> MissPair {
    match p {
        Pattern::Seq(ps) => {
            // Eq 5.2: children run in order, sharing the evolving state.
            let mut total = MissPair::default();
            for child in ps {
                total += eval_level(child, geo, state);
            }
            total
        }
        Pattern::Repeat { k, inner } => {
            // k sequential executions of the same sub-pattern. The first
            // runs from the incoming state; iterations 2..k all start
            // from the state the previous iteration left (which is a
            // fixed point after one iteration, since the state update
            // depends only on the pattern itself).
            if *k == 0 {
                return MissPair::default();
            }
            let first = eval_level(inner, geo, state);
            if *k == 1 {
                return first;
            }
            let steady = eval_level(inner, geo, state);
            first + steady * (*k - 1) as f64
        }
        Pattern::Conc(ps) => {
            // Eq 5.3: divide the cache proportionally to footprints; every
            // child starts from the same incoming state. An empty ⊙ is a
            // no-op: zero misses, state untouched (the constructors
            // canonicalise it away, but a hand-built node must not reset
            // the state to cold via the empty merge below).
            if ps.is_empty() {
                return MissPair::default();
            }
            let feet: Vec<f64> = ps.iter().map(|q| footprint_lines(q, geo)).collect();
            let total_foot: f64 = feet.iter().sum();
            let mut total = MissPair::default();
            let mut merged = CacheState::cold();
            for (child, foot) in ps.iter().zip(&feet) {
                let share = if total_foot > 0.0 {
                    foot / total_foot
                } else {
                    1.0
                };
                let sub_geo = geo.scaled(share);
                let mut sub_state = state.clone();
                total += eval_level(child, &sub_geo, &mut sub_state);
                // Each child's resulting residency (computed against its
                // scaled share) contributes to the combined state.
                merged.merge_add(&sub_state);
            }
            *state = merged;
            total
        }
        basic => {
            let r = basic.region().expect("basic pattern has a region");
            let rho = state.fraction(r);
            let raw = basic_misses(basic, geo);
            // A sequential pattern over a *slice* of a partially cached
            // region is free when the slice fits within the region's
            // cached bytes: this is how recursive divide-and-conquer
            // algorithms (quick-sort, §6.2) stop missing once their
            // working segments fit the cache — the paper's Figure-7a
            // step. A full-region sequential pattern still requires full
            // residency (the cached fraction would have to be exactly the
            // region's head, which we cannot know; §5.1).
            // Strictly smaller: a segment that exactly equals the cached
            // bytes thrashes at the margin under LRU (its own traversal
            // plus any concurrent traffic evicts its tail), so only
            // strictly-fitting segments ride for free.
            let cached_bytes = rho * r.root_bytes() as f64;
            let slice_cached = (r.bytes() as f64) < cached_bytes;
            let result = if state.fully_cached(r) || slice_cached {
                MissPair::default()
            } else if benefits_proportionally(basic) {
                raw * (1.0 - rho)
            } else {
                raw
            };
            state.replace_with(r, geo);
            result
        }
    }
}

/// Evaluate `p` against every level of a hardware spec, starting cold.
/// Returns one [`MissPair`] per level, in spec order.
pub fn eval(p: &Pattern, levels: &[CacheLevel]) -> Vec<MissPair> {
    levels
        .iter()
        .map(|lvl| {
            let mut state = CacheState::cold();
            eval_level(p, &Geometry::of(lvl), &mut state)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;
    use gcm_hardware::presets;

    fn geo(c: u64, b: u64) -> Geometry {
        Geometry {
            c: c as f64,
            b: b as f64,
            lines: c as f64 / b as f64,
        }
    }

    #[test]
    fn seq_of_disjoint_regions_sums() {
        let a = Region::new("A", 1000, 8);
        let b = Region::new("B", 1000, 8);
        let g = geo(1024, 32);
        let pa = Pattern::s_trav(a);
        let pb = Pattern::s_trav(b);
        let ma = eval_level(&pa, &g, &mut CacheState::cold()).total();
        let mb = eval_level(&pb, &g, &mut CacheState::cold()).total();
        let seq = Pattern::seq(vec![pa, pb]);
        let m = eval_level(&seq, &g, &mut CacheState::cold()).total();
        assert!((m - (ma + mb)).abs() < 1e-9);
    }

    #[test]
    fn seq_reuse_of_fully_cached_region_is_free() {
        // Region fits the cache: second traversal costs nothing (Eq 5.1).
        let a = Region::new("A", 100, 8); // 800 B < 1 KB
        let g = geo(1024, 32);
        let p = Pattern::seq(vec![Pattern::s_trav(a.clone()), Pattern::s_trav(a)]);
        let once = Pattern::s_trav(Region::new("X", 100, 8));
        let m = eval_level(&p, &g, &mut CacheState::cold()).total();
        let m1 = eval_level(&once, &g, &mut CacheState::cold()).total();
        assert!((m - m1).abs() < 1e-9);
    }

    #[test]
    fn seq_partial_cache_benefits_random_not_sequential() {
        // Region is 2× the cache: ρ = 0.5 after the first sweep.
        let a = Region::new("A", 256, 8); // 2048 B vs 1024 B cache
        let g = geo(1024, 32);
        // Sequential second sweep: no benefit (needs full residency).
        let p_seq = Pattern::seq(vec![Pattern::s_trav(a.clone()), Pattern::s_trav(a.clone())]);
        let m_seq = eval_level(&p_seq, &g, &mut CacheState::cold()).total();
        assert!((m_seq - 2.0 * 64.0).abs() < 1e-9); // 2 × |R| lines

        // Random second sweep: proportional benefit.
        let p_rand = Pattern::seq(vec![Pattern::s_trav(a.clone()), Pattern::r_trav(a.clone())]);
        let m_rand = eval_level(&p_rand, &g, &mut CacheState::cold()).total();
        let r_cold = eval_level(&Pattern::r_trav(a), &g, &mut CacheState::cold()).total();
        assert!((m_rand - (64.0 + 0.5 * r_cold)).abs() < 1e-9);
    }

    #[test]
    fn state_replacement_evicts_previous_region() {
        // A fits; then a big B sweep evicts it; A costs full misses again.
        let a = Region::new("A", 100, 8);
        let b = Region::new("B", 10_000, 8);
        let g = geo(1024, 32);
        let p = Pattern::seq(vec![
            Pattern::s_trav(a.clone()),
            Pattern::s_trav(b),
            Pattern::s_trav(a.clone()),
        ]);
        let m = eval_level(&p, &g, &mut CacheState::cold()).total();
        let expect = 25.0 + 2500.0 + 25.0;
        assert!((m - expect).abs() < 1e-9);
    }

    #[test]
    fn warm_start_via_explicit_state() {
        let a = Region::new("A", 100, 8);
        let g = geo(1024, 32);
        let mut st = CacheState::cold();
        st.set(&a, 1.0);
        let m = eval_level(&Pattern::s_trav(a), &g, &mut st).total();
        assert_eq!(m, 0.0);
    }

    #[test]
    fn conc_divides_cache_by_footprint() {
        // s_trav (footprint 1) ⊙ r_trav over region = cache size: the
        // random traversal gets essentially the whole cache, so its misses
        // stay near the fitting-case |R|.
        let a = Region::new("A", 100_000, 8);
        let h = Region::new("H", 128, 8); // 1024 B = full cache
        let g = geo(1024, 32);
        let p = Pattern::conc(vec![Pattern::s_trav(a.clone()), Pattern::r_trav(h.clone())]);
        let m = eval_level(&p, &g, &mut CacheState::cold()).total();
        let scan = 100_000.0 * 8.0 / 32.0;
        let h_lines = 32.0;
        // r_trav of H at ~full cache: ≈ |H| plus a small shortfall because
        // its share is (|H|)/(|H|+1) of the cache.
        assert!(m > scan + h_lines - 1e-9);
        assert!(m < scan + h_lines + 110.0, "m={m}");
    }

    #[test]
    fn conc_equal_footprints_split_evenly() {
        // Two random traversals over cache-sized regions: each gets half
        // the cache, so each sees ~half its region uncachable.
        let a = Region::new("A", 128, 8);
        let b = Region::new("B", 128, 8);
        let g = geo(1024, 32);
        let p = Pattern::conc(vec![Pattern::r_trav(a.clone()), Pattern::r_trav(b)]);
        let m = eval_level(&p, &g, &mut CacheState::cold()).total();
        let solo = eval_level(&Pattern::r_trav(a), &g, &mut CacheState::cold()).total();
        assert!(
            m > 2.0 * solo,
            "interference must cost extra: {m} vs 2×{solo}"
        );
    }

    #[test]
    fn conc_state_contains_both_regions() {
        let a = Region::new("A", 64, 8); // 512 B
        let b = Region::new("B", 64, 8); // 512 B
        let g = geo(1024, 32);
        let p = Pattern::conc(vec![Pattern::r_trav(a.clone()), Pattern::r_trav(b.clone())]);
        let mut st = CacheState::cold();
        eval_level(&p, &g, &mut st);
        assert!(st.fraction(&a) > 0.9);
        assert!(st.fraction(&b) > 0.9);
    }

    #[test]
    fn quicksort_shape_state_carries_through_seq_of_conc() {
        // Two passes of half-region concurrent sweeps over a fitting table:
        // the second pass is free (the Fig 7a step).
        let u = Region::new("U", 100, 8); // 800 B < 1 KB
        let g = geo(1024, 32);
        let pass = |r: &Region| {
            Pattern::conc(vec![
                Pattern::s_trav(r.slice(2)),
                Pattern::s_trav(r.slice(2)),
            ])
        };
        let p = Pattern::seq(vec![pass(&u), pass(&u)]);
        let m = eval_level(&p, &g, &mut CacheState::cold()).total();
        // One full sweep's worth of misses only (both halves, once).
        assert!((m - 26.0).abs() < 2.0, "m={m}"); // 2×⌈400/32⌉ = 26 lines

        // Oversized table: both passes pay.
        let big = Region::new("B", 10_000, 8);
        let pb = Pattern::seq(vec![pass(&big), pass(&big)]);
        let mb = eval_level(&pb, &g, &mut CacheState::cold()).total();
        assert!(mb > 1.9 * 2500.0);
    }

    #[test]
    fn eval_runs_per_level() {
        let hw = presets::tiny();
        let a = Region::new("A", 1000, 8);
        let pairs = eval(&Pattern::s_trav(a), hw.levels());
        assert_eq!(pairs.len(), 3);
        // L1 (32 B lines): 250 misses; L2 (64 B): 125; TLB (1 KB pages): 8.
        assert!((pairs[0].total() - 250.0).abs() < 1e-9);
        assert!((pairs[1].total() - 125.0).abs() < 1e-9);
        assert!((pairs[2].total() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn footprints() {
        let g = geo(1024, 32);
        let small = Region::new("S", 100, 8); // 25 lines
        assert_eq!(footprint_lines(&Pattern::s_trav(small.clone()), &g), 1.0);
        assert_eq!(footprint_lines(&Pattern::r_trav(small.clone()), &g), 25.0);
        // Sparse random traversal never revisits a line.
        let wide = Region::new("W", 100, 256);
        assert_eq!(footprint_lines(&Pattern::r_trav_u(wide, 8), &g), 1.0);
        // Conc sums, Seq maxes.
        let c = Pattern::conc(vec![
            Pattern::s_trav(small.clone()),
            Pattern::r_trav(small.clone()),
        ]);
        assert_eq!(footprint_lines(&c, &g), 26.0);
        let s = Pattern::seq(vec![Pattern::s_trav(small.clone()), Pattern::r_trav(small)]);
        assert_eq!(footprint_lines(&s, &g), 25.0);
    }

    #[test]
    fn empty_composition_costs_nothing_and_preserves_state() {
        let g = geo(1024, 32);
        let a = Region::new("A", 100, 8);
        // ε has zero cost from any starting state...
        let mut st = CacheState::cold();
        st.set(&a, 0.7);
        let before = st.clone();
        for p in [
            Pattern::empty(),
            Pattern::Seq(vec![]),
            Pattern::Conc(vec![]), // hand-built degenerate node
        ] {
            assert_eq!(eval_level(&p, &g, &mut st).total(), 0.0, "{p}");
            assert_eq!(st, before, "state must survive a no-op: {p}");
        }
        // ...zero footprint, so it claims no ⊙ share...
        assert_eq!(footprint_lines(&Pattern::empty(), &g), 0.0);
        // ...and composing it with a real pattern changes nothing.
        let real = Pattern::r_trav(a.clone());
        let solo = eval_level(&real, &g, &mut CacheState::cold()).total();
        let padded = Pattern::conc(vec![Pattern::empty(), real.clone()]);
        let with_eps = eval_level(&padded, &g, &mut CacheState::cold()).total();
        assert_eq!(solo, with_eps);
    }

    #[test]
    fn deep_nesting_evaluates() {
        // ⊕ of ⊙ of ⊕: regression test for recursion handling.
        let a = Region::new("A", 100, 8);
        let b = Region::new("B", 100, 8);
        let inner = Pattern::seq(vec![Pattern::s_trav(a.clone()), Pattern::r_trav(b.clone())]);
        let p = Pattern::seq(vec![
            Pattern::conc(vec![inner, Pattern::s_trav(a.clone())]),
            Pattern::r_acc(b, 50),
        ]);
        let g = geo(1024, 32);
        let m = eval_level(&p, &g, &mut CacheState::cold());
        assert!(m.total() > 0.0 && m.total().is_finite());
    }
}
