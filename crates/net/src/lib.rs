//! # gcm-net — thread-per-core ingress with ⊙-priced load shedding
//!
//! The network front end of the serving stack: a pinned acceptor plus
//! one epoll poll-loop thread per core ([`shard`]), a compact
//! length-prefixed wire protocol ([`wire`]), bounded per-shard ingress
//! queues feeding the [`gcm_service::QueryService`] batch scheduler
//! ([`server`]), and an open-loop Poisson/Zipf load generator
//! ([`loadgen`]).
//!
//! The point of putting the cost model *in* the network tier: overload
//! control usually guesses (queue length thresholds, static rate
//! limits). Here the admission layer already prices every pending
//! query's memory-hierarchy behaviour with the paper's ⊙ composition,
//! so the shed decision can be a *projection* — "given the work ahead
//! of it and the measured model-to-wall scale, this query will blow
//! its class's sojourn budget" — made at arrival cost, long before any
//! execution is wasted on a doomed request. Back-pressure to the
//! socket is the complementary half: queues are bounded, and a full
//! queue simply stops the shard reading, which closes the TCP window.
//!
//! Everything is dependency-free: epoll, pipes, and CPU affinity are
//! raw `extern "C"` shims ([`sys`]) following the
//! `gcm_obs::pmu` precedent, so the crate builds offline with plain
//! std. The event-loop modules are Linux-only; [`wire`] and
//! [`loadgen`]'s schedule math are portable.

#[cfg(target_os = "linux")]
pub mod sys;

pub mod wire;

#[cfg(target_os = "linux")]
pub mod shard;

#[cfg(target_os = "linux")]
pub mod server;

pub mod loadgen;

pub use loadgen::{ClassReport, LoadReport, LoadgenConfig};
#[cfg(target_os = "linux")]
pub use server::{Clock, NetConfig, NetServer};
pub use wire::{
    encode_response, encode_submit, Frame, FrameDecoder, ResponseFrame, SubmitFrame, WireError,
    MAX_FRAME,
};
