//! Raw epoll / pipe / CPU-affinity shims — the event loop's kernel
//! interface without the `libc` crate.
//!
//! Follows the `perf_event_open` precedent in `gcm_obs::pmu`: the
//! handful of symbols the poll loop needs (`epoll_create1`,
//! `epoll_ctl`, `epoll_wait`, `pipe2`, `read`, `write`, `close`,
//! `sched_setaffinity`) are declared `extern "C"` against the libc the
//! Rust runtime already links, so the workspace stays dependency-free.
//! This module is Linux-only (gated at the crate root); the wire codec
//! and load-generator math compile everywhere.
//!
//! [`Poller`] is a minimal level-triggered epoll wrapper: register a
//! fd with a `u64` token and an interest mask, wait, get back
//! [`Event`]s. Level-triggered is what makes read-readiness *gating*
//! work: a shard that stops polling `EPOLLIN` on a connection (because
//! its ingress queue is full) simply stops being told about readable
//! data — the bytes sit in the kernel socket buffer, the TCP window
//! closes, and the sender blocks. That is the whole back-pressure
//! path; no application-level acking needed.

use std::io;
use std::os::unix::io::RawFd;

/// Readable interest (also delivered on error/hang-up so a read can
/// observe the EOF).
pub const EPOLLIN: u32 = 0x1;
/// Writable interest.
pub const EPOLLOUT: u32 = 0x4;
const EPOLLERR: u32 = 0x8;
const EPOLLHUP: u32 = 0x10;
/// Peer shut down its write side.
const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;
const O_NONBLOCK: i32 = 0o4000;
const O_CLOEXEC: i32 = 0o2000000;
const EINTR: i32 = 4;
const EAGAIN: i32 = 11;

/// One readiness notification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Data (or EOF/error — reads observe those too) can be read.
    pub readable: bool,
    /// The fd accepts writes again.
    pub writable: bool,
    /// The peer hung up or the fd errored; the connection is done.
    pub closed: bool,
}

// The kernel ABI packs epoll_event on x86_64 only.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

// Symbols std's libc link already provides (see module docs).
extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn pipe2(fds: *mut i32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
    fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    fn __errno_location() -> *mut i32;
}

fn errno() -> i32 {
    unsafe { *__errno_location() }
}

fn last_err(what: &str) -> io::Error {
    io::Error::other(format!("{what} failed (errno {})", errno()))
}

/// A level-triggered epoll instance.
#[derive(Debug)]
pub struct Poller {
    epfd: i32,
}

impl Poller {
    /// A fresh epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poller> {
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(last_err("epoll_create1"));
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest | EPOLLRDHUP,
            data: token,
        };
        let arg = if op == EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut ev as *mut EpollEvent
        };
        if unsafe { epoll_ctl(self.epfd, op, fd, arg) } < 0 {
            return Err(last_err("epoll_ctl"));
        }
        Ok(())
    }

    /// Register `fd` with a token and an `EPOLLIN`/`EPOLLOUT` mask.
    pub fn add(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Change a registered fd's interest mask (0 mutes it — the gating
    /// move).
    pub fn modify(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Deregister a fd.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Wait up to `timeout_ms` (−1 blocks) and fill `out` with ready
    /// events. An interrupted wait returns 0 events, not an error.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        const MAX_EVENTS: usize = 64;
        let mut buf = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        let n = unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), MAX_EVENTS as i32, timeout_ms) };
        if n < 0 {
            if errno() == EINTR {
                out.clear();
                return Ok(0);
            }
            return Err(last_err("epoll_wait"));
        }
        out.clear();
        for raw in buf.iter().take(n as usize) {
            let e = *raw;
            let bits = e.events;
            out.push(Event {
                token: e.data,
                readable: bits & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                writable: bits & EPOLLOUT != 0,
                closed: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
            });
        }
        Ok(n as usize)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe { close(self.epfd) };
    }
}

/// A nonblocking self-pipe: the cross-thread wake-up for a poll loop.
/// Register [`read_fd`](WakePipe::read_fd) in the loop's [`Poller`];
/// any thread may [`wake`](WakePipe::wake) it.
#[derive(Debug)]
pub struct WakePipe {
    r: i32,
    w: i32,
}

impl WakePipe {
    /// A fresh pipe pair (both ends nonblocking, close-on-exec).
    pub fn new() -> io::Result<WakePipe> {
        let mut fds = [0i32; 2];
        if unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) } < 0 {
            return Err(last_err("pipe2"));
        }
        Ok(WakePipe {
            r: fds[0],
            w: fds[1],
        })
    }

    /// The read end, for [`Poller::add`].
    pub fn read_fd(&self) -> RawFd {
        self.r
    }

    /// Nudge the poll loop. A full pipe already guarantees a pending
    /// wake-up, so `EAGAIN` is success.
    pub fn wake(&self) {
        let byte = 1u8;
        unsafe { write(self.w, &byte, 1) };
    }

    /// Swallow every queued wake-up byte.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { read(self.r, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                debug_assert!(n > 0 || errno() == EAGAIN || errno() == EINTR || n == 0);
                break;
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        unsafe {
            close(self.r);
            close(self.w);
        }
    }
}

// Raw fds are plain integers; both ends are used from multiple threads
// only through atomic syscalls (write ≤ PIPE_BUF, read into local
// buffers).
unsafe impl Send for WakePipe {}
unsafe impl Sync for WakePipe {}

/// Best-effort: pin the calling thread to one CPU. Returns whether the
/// kernel accepted the mask (sandboxes and cpuset-restricted hosts may
/// refuse; the caller keeps running unpinned).
pub fn pin_to_core(core: usize) -> bool {
    let mut mask = [0u64; 16]; // 1024-bit cpu_set_t
    let (word, bit) = (core / 64, core % 64);
    if word >= mask.len() {
        return false;
    }
    mask[word] = 1u64 << bit;
    unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) == 0 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_pipe_wakes_the_poller() {
        let poller = Poller::new().unwrap();
        let pipe = WakePipe::new().unwrap();
        poller.add(pipe.read_fd(), 7, EPOLLIN).unwrap();
        let mut events = Vec::new();
        // Nothing pending: a short wait times out empty.
        poller.wait(&mut events, 10).unwrap();
        assert!(events.is_empty());
        // A wake from "another thread" is delivered with the token.
        pipe.wake();
        pipe.wake();
        poller.wait(&mut events, 1_000).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        assert!(!events[0].closed);
        // Drained, the pipe goes quiet (level-triggered would re-fire
        // otherwise).
        pipe.drain();
        poller.wait(&mut events, 10).unwrap();
        assert!(events.is_empty());
        poller.delete(pipe.read_fd()).unwrap();
    }

    #[test]
    fn interest_masks_gate_delivery() {
        let poller = Poller::new().unwrap();
        let pipe = WakePipe::new().unwrap();
        // Registered with an empty mask: a pending byte is NOT
        // delivered — the read-readiness gate.
        poller.add(pipe.read_fd(), 1, 0).unwrap();
        pipe.wake();
        let mut events = Vec::new();
        poller.wait(&mut events, 10).unwrap();
        assert!(events.is_empty(), "muted fd must stay silent");
        // Re-opening the gate delivers the byte that waited.
        poller.modify(pipe.read_fd(), 1, EPOLLIN).unwrap();
        poller.wait(&mut events, 1_000).unwrap();
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn pin_to_core_is_best_effort() {
        // Accepting or refusing are both fine; crashing is not.
        let _ = pin_to_core(0);
        assert!(!pin_to_core(usize::MAX), "absurd core must be refused");
    }
}
