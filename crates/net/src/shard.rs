//! Shard threads: each owns an epoll loop over a private set of
//! nonblocking connections — the thread-per-core half of the ingress
//! tier.
//!
//! The acceptor hands a fresh [`TcpStream`] to exactly one shard (via
//! [`SharedShard::incoming`] plus a wake), and from then on only that
//! shard's thread touches the socket: reads, decodes, writes. The only
//! cross-thread traffic is the bounded ingress queue toward the
//! scheduler and the outbound response list back — both plain
//! mutex-guarded containers, each crossing paired with a [`WakePipe`]
//! nudge so neither side spins.
//!
//! Back-pressure is a two-stage dam:
//!
//! 1. decoded frames that do not fit the ingress queue stay in the
//!    connection's `pending` list;
//! 2. a connection holding pending frames has its `EPOLLIN` interest
//!    removed ("gated") so the level-triggered poller stops reporting
//!    it. Unread bytes accumulate in the kernel socket buffer, the TCP
//!    window closes, and the client's `write` blocks — the shed
//!    decision stays with the ⊙-priced scheduler, while the network
//!    merely slows the firehose down.
//!
//! When the scheduler drains the queue it wakes the shard, which
//! re-feeds pending frames and lifts the gate.

use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};

use gcm_obs::registry::labeled;
use gcm_obs::MetricsRegistry;

use crate::sys::{pin_to_core, Event, Poller, WakePipe, EPOLLIN, EPOLLOUT};
use crate::wire::{encode_response, Frame, FrameDecoder, ResponseFrame, SubmitFrame};

/// Frames received over the wire.
pub const FRAMES_RX_TOTAL: &str = "gcm_net_frames_rx_total";
/// Connections whose byte stream failed to decode and were dropped.
pub const WIRE_ERRORS_TOTAL: &str = "gcm_net_wire_errors_total";
/// Connections accepted onto a shard, labelled by shard.
pub const CONNECTIONS_TOTAL: &str = "gcm_net_connections_total";
/// High-water mark of a shard's ingress queue, labelled by shard.
pub const INGRESS_DEPTH_PEAK: &str = "gcm_net_ingress_depth_peak";

/// The poller token reserved for the shard's wake pipe.
const WAKE_TOKEN: u64 = u64::MAX;

/// One decoded submission, stamped with where it came from and when.
#[derive(Debug, Clone, Copy)]
pub struct IngressItem {
    /// Which shard owns the connection.
    pub shard: usize,
    /// Shard-local connection token, for routing the response back.
    pub conn: u64,
    /// The client's request.
    pub frame: SubmitFrame,
    /// Arrival wall-clock, server epoch nanoseconds.
    pub arrival_ns: u64,
}

/// The mailbox a shard shares with the acceptor and the scheduler.
pub struct SharedShard {
    /// Fresh sockets from the acceptor, claimed on the next loop turn.
    pub incoming: Mutex<Vec<TcpStream>>,
    /// Bounded queue of decoded submissions toward the scheduler.
    pub ingress: Mutex<VecDeque<IngressItem>>,
    /// Capacity of `ingress`; beyond it the dam closes.
    pub ingress_cap: usize,
    /// Responses from the scheduler, keyed by connection token.
    pub outbound: Mutex<Vec<(u64, ResponseFrame)>>,
    /// Nudges the shard's poll loop.
    pub wake: WakePipe,
    /// Set once: finish outstanding writes, then exit.
    pub stop: AtomicBool,
}

impl SharedShard {
    /// A mailbox for one shard.
    pub fn new(ingress_cap: usize) -> std::io::Result<SharedShard> {
        Ok(SharedShard {
            incoming: Mutex::new(Vec::new()),
            ingress: Mutex::new(VecDeque::new()),
            ingress_cap,
            outbound: Mutex::new(Vec::new()),
            wake: WakePipe::new()?,
            stop: AtomicBool::new(false),
        })
    }

    /// Queue a response for delivery and nudge the loop.
    pub fn send_response(&self, conn: u64, frame: ResponseFrame) {
        self.outbound.lock().unwrap().push((conn, frame));
        self.wake.wake();
    }
}

/// Doorbell the shards ring when new work lands in an ingress queue,
/// so the scheduler thread can sleep instead of polling.
#[derive(Default)]
pub struct SchedSignal {
    seq: Mutex<u64>,
    cv: Condvar,
}

impl SchedSignal {
    /// Ring the doorbell.
    pub fn notify(&self) {
        *self.seq.lock().unwrap() += 1;
        self.cv.notify_all();
    }

    /// Wait until rung or `timeout` elapses.
    pub fn wait(&self, timeout: std::time::Duration) {
        let seq = self.seq.lock().unwrap();
        let before = *seq;
        let _unused = self
            .cv
            .wait_timeout_while(seq, timeout, |s| *s == before)
            .unwrap();
    }
}

struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Decoded submissions that did not fit the ingress queue.
    pending: VecDeque<SubmitFrame>,
    /// Partially written response bytes.
    outbox: Vec<u8>,
    /// How far into `outbox` the socket has accepted.
    written: usize,
    /// Current epoll interest mask.
    interest: u32,
    /// Peer hung up; close once the outbox drains.
    eof: bool,
}

impl Conn {
    fn outbox_pending(&self) -> bool {
        self.written < self.outbox.len()
    }
}

/// Runs one shard's poll loop until [`SharedShard::stop`] is set and
/// all queued responses are flushed. `now_ns` supplies arrival stamps
/// from the server's epoch clock.
pub fn run_shard(
    shard_id: usize,
    shared: &SharedShard,
    signal: &SchedSignal,
    metrics: &MetricsRegistry,
    pin: Option<usize>,
    now_ns: impl Fn() -> u64,
) -> std::io::Result<()> {
    if let Some(core) = pin {
        pin_to_core(core);
    }
    let poller = Poller::new()?;
    poller.add(shared.wake.read_fd(), WAKE_TOKEN, EPOLLIN)?;

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token: u64 = 0;
    let mut events: Vec<Event> = Vec::new();
    let shard_label = shard_id.to_string();

    loop {
        let stopping = shared.stop.load(Ordering::Acquire);
        poller.wait(&mut events, 1)?;
        let mut woke = false;
        let mut touched: Vec<u64> = Vec::new();
        for ev in &events {
            if ev.token == WAKE_TOKEN {
                woke = true;
            } else {
                touched.push(ev.token);
            }
        }
        if woke {
            shared.wake.drain();
        }

        // Adopt sockets the acceptor parked for us.
        let fresh: Vec<TcpStream> = std::mem::take(&mut *shared.incoming.lock().unwrap());
        for stream in fresh {
            stream.set_nonblocking(true)?;
            let token = next_token;
            next_token += 1;
            poller.add(stream.as_raw_fd(), token, EPOLLIN)?;
            conns.insert(
                token,
                Conn {
                    stream,
                    decoder: FrameDecoder::new(),
                    pending: VecDeque::new(),
                    outbox: Vec::new(),
                    written: 0,
                    interest: EPOLLIN,
                    eof: false,
                },
            );
            metrics.inc(&labeled(CONNECTIONS_TOTAL, &[("shard", &shard_label)]), 1);
        }

        // Deliver scheduler responses into per-connection outboxes.
        let responses: Vec<(u64, ResponseFrame)> =
            std::mem::take(&mut *shared.outbound.lock().unwrap());
        for (conn_token, frame) in responses {
            if let Some(conn) = conns.get_mut(&conn_token) {
                encode_response(&frame, &mut conn.outbox);
            }
        }

        // Service every connection that is ready, gated, or has bytes
        // to flush. A wake also retries gated conns: the scheduler just
        // drained the queue.
        let mut work: Vec<u64> = touched;
        for (&token, conn) in &conns {
            if conn.outbox_pending() || (woke && !conn.pending.is_empty()) {
                work.push(token);
            }
        }
        work.sort_unstable();
        work.dedup();

        let mut dead: Vec<u64> = Vec::new();
        for token in work {
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            if service_conn(
                shard_id,
                token,
                conn,
                shared,
                signal,
                metrics,
                &poller,
                &now_ns,
                &shard_label,
            )
            .is_err()
            {
                dead.push(token);
            }
        }
        for token in dead {
            if let Some(conn) = conns.remove(&token) {
                let _ = poller.delete(conn.stream.as_raw_fd());
            }
        }

        if stopping {
            let drained = conns.values().all(|c| !c.outbox_pending())
                && shared.outbound.lock().unwrap().is_empty();
            if drained {
                return Ok(());
            }
        }
    }
}

/// Pump one connection: feed pending frames to the queue, read + decode
/// new bytes, flush the outbox, and keep the epoll interest mask in
/// sync. `Err` means the connection is finished (EOF, I/O error, or
/// wire corruption) and must be dropped by the caller.
#[allow(clippy::too_many_arguments)]
fn service_conn(
    shard_id: usize,
    token: u64,
    conn: &mut Conn,
    shared: &SharedShard,
    signal: &SchedSignal,
    metrics: &MetricsRegistry,
    poller: &Poller,
    now_ns: &impl Fn() -> u64,
    shard_label: &str,
) -> Result<(), ()> {
    // Stage 1: move previously decoded frames into the ingress queue.
    let mut delivered = false;
    {
        let mut q = shared.ingress.lock().unwrap();
        while !conn.pending.is_empty() && q.len() < shared.ingress_cap {
            let frame = conn.pending.pop_front().unwrap();
            q.push_back(IngressItem {
                shard: shard_id,
                conn: token,
                frame,
                arrival_ns: now_ns(),
            });
            delivered = true;
        }
        metrics.gauge_max(
            &labeled(INGRESS_DEPTH_PEAK, &[("shard", shard_label)]),
            q.len() as f64,
        );
    }
    if delivered {
        signal.notify();
    }

    // Stage 2: read while the dam is open.
    let mut buf = [0u8; 4096];
    while conn.pending.is_empty() && !conn.eof {
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                conn.eof = true;
            }
            Ok(n) => {
                conn.decoder.push(&buf[..n]);
                loop {
                    match conn.decoder.next() {
                        Ok(Some(Frame::Submit(frame))) => {
                            metrics.inc(FRAMES_RX_TOTAL, 1);
                            let mut q = shared.ingress.lock().unwrap();
                            if q.len() < shared.ingress_cap {
                                q.push_back(IngressItem {
                                    shard: shard_id,
                                    conn: token,
                                    frame,
                                    arrival_ns: now_ns(),
                                });
                                metrics.gauge_max(
                                    &labeled(INGRESS_DEPTH_PEAK, &[("shard", shard_label)]),
                                    q.len() as f64,
                                );
                                drop(q);
                                signal.notify();
                            } else {
                                drop(q);
                                conn.pending.push_back(frame);
                            }
                        }
                        Ok(Some(Frame::Response(_))) => {
                            // Clients must not send responses.
                            metrics.inc(WIRE_ERRORS_TOTAL, 1);
                            return Err(());
                        }
                        Ok(None) => break,
                        Err(_e) => {
                            metrics.inc(WIRE_ERRORS_TOTAL, 1);
                            return Err(());
                        }
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return Err(()),
        }
    }

    // Stage 3: flush the outbox.
    while conn.outbox_pending() {
        match conn.stream.write(&conn.outbox[conn.written..]) {
            Ok(0) => return Err(()),
            Ok(n) => {
                conn.written += n;
                if conn.written == conn.outbox.len() {
                    conn.outbox.clear();
                    conn.written = 0;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return Err(()),
        }
    }

    // A hung-up peer is done once its responses are out.
    if conn.eof && !conn.outbox_pending() {
        return Err(());
    }

    // Stage 4: reconcile the interest mask. Reads stay gated while
    // frames are parked; writes are only interesting while a flush is
    // stuck.
    let want = if conn.pending.is_empty() && !conn.eof {
        EPOLLIN
    } else {
        0
    } | if conn.outbox_pending() { EPOLLOUT } else { 0 };
    if want != conn.interest {
        poller
            .modify(conn.stream.as_raw_fd(), token, want)
            .map_err(|_| ())?;
        conn.interest = want;
    }
    Ok(())
}
