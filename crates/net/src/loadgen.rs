//! Open-loop load generator: the million-user stand-in.
//!
//! A closed-loop client (send, wait, send) slows itself down exactly
//! when the server struggles, hiding the overload it was meant to
//! create. This generator is *open-loop*: request `i`'s send time is
//! scheduled up front from a Poisson process
//! ([`gcm_workload::Workload::poisson_arrivals`]) and latency is
//! measured from that *scheduled* arrival — so time a request spends
//! stuck behind a closed TCP window (back-pressure) or waiting for the
//! sender to catch up counts against the server, not for it. That is
//! the standard fix for coordinated omission.
//!
//! Tenants are skewed Zipf via [`Workload::query_mix`], matching the
//! service's multi-tenant assumptions: a few hot tenants dominate.
//! Everything is seed-deterministic; only the measured clock varies
//! between runs.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use gcm_obs::Histogram;
use gcm_workload::{TenantClass, Workload};

use crate::wire::{encode_submit, Frame, FrameDecoder, ResponseFrame, SubmitFrame};

/// Load-run knobs.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Total requests to offer.
    pub requests: usize,
    /// Offered (scheduled) arrival rate, queries per second.
    pub offered_qps: f64,
    /// Client connections; request `i` rides connection `i % connections`.
    pub connections: usize,
    /// Tenant id → class table (index is the wire tenant id).
    pub tenants: Vec<TenantClass>,
    /// Zipf skew across tenants (0 = uniform).
    pub zipf_theta: f64,
    /// Workload seed: same seed, same requests and schedule.
    pub seed: u64,
    /// How long to wait for stragglers after the last send.
    pub drain_timeout: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            requests: 1_000,
            offered_qps: 1_000.0,
            connections: 4,
            tenants: vec![
                TenantClass::PointLookup,
                TenantClass::ScanHeavy,
                TenantClass::JoinHeavy,
            ],
            zipf_theta: 0.99,
            seed: 42,
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// Per-class outcome of a load run.
#[derive(Debug, Clone)]
pub struct ClassReport {
    /// The class these numbers describe.
    pub class: TenantClass,
    /// Requests offered.
    pub sent: u64,
    /// Requests executed to completion.
    pub served: u64,
    /// Requests refused by the SLO gate.
    pub shed: u64,
    /// Open-loop latency (scheduled arrival → response) of served
    /// requests, ns.
    pub served_latency: Histogram,
    /// Same measure for shed requests — the fail-fast check compares
    /// this histogram's p99 against the served one.
    pub shed_latency: Histogram,
}

/// Outcome of one open-loop run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// The scheduled rate.
    pub offered_qps: f64,
    /// Served completions over the wall time of the whole run.
    pub achieved_qps: f64,
    /// Requests actually written to sockets.
    pub sent: u64,
    /// Served responses received.
    pub served: u64,
    /// Shed responses received.
    pub shed: u64,
    /// Requests never answered within the drain timeout.
    pub lost: u64,
    /// First scheduled send → last response (or drain deadline), ns.
    pub elapsed_ns: u64,
    /// Per-class breakdown, one entry per [`TenantClass::ALL`] member.
    pub classes: Vec<ClassReport>,
    /// Every response paired with its request and open-loop latency.
    pub responses: Vec<(SubmitFrame, ResponseFrame, u64)>,
}

impl LoadReport {
    /// The report for one class.
    pub fn class(&self, class: TenantClass) -> &ClassReport {
        &self.classes[class.index() as usize]
    }
}

struct Received {
    frame: ResponseFrame,
    recv_ns: u64,
}

/// Drive a server at `addr` with the configured open-loop schedule and
/// collect every response. Blocks the calling thread for the duration
/// of the run (sends are paced here; receives run on per-connection
/// threads).
pub fn run(addr: std::net::SocketAddr, cfg: &LoadgenConfig) -> std::io::Result<LoadReport> {
    assert!(cfg.requests > 0 && cfg.connections > 0 && cfg.offered_qps > 0.0);
    assert!(!cfg.tenants.is_empty());

    // The deterministic half: who asks what, when.
    let mut wl = Workload::new(cfg.seed);
    let mix = wl.query_mix(cfg.requests, &cfg.tenants, cfg.zipf_theta);
    let arrivals = wl.poisson_arrivals(cfg.requests, 1e9 / cfg.offered_qps);
    let frames: Vec<SubmitFrame> = mix
        .iter()
        .enumerate()
        .map(|(i, req)| SubmitFrame {
            id: i as u64,
            tenant: req.tenant as u32,
            class: req.class,
            selectivity_bits: req.selectivity.to_bits(),
        })
        .collect();

    // One writer stream + one reader thread per connection.
    let epoch = Instant::now();
    let done = Arc::new(AtomicBool::new(false));
    let received_total = Arc::new(AtomicU64::new(0));
    let inbox: Arc<Mutex<Vec<Received>>> = Arc::new(Mutex::new(Vec::new()));
    let mut writers: Vec<TcpStream> = Vec::with_capacity(cfg.connections);
    let mut readers = Vec::with_capacity(cfg.connections);
    for _ in 0..cfg.connections {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut rx = stream.try_clone()?;
        rx.set_read_timeout(Some(Duration::from_millis(50)))?;
        let done = Arc::clone(&done);
        let inbox = Arc::clone(&inbox);
        let received_total = Arc::clone(&received_total);
        readers.push(std::thread::spawn(move || {
            let mut decoder = FrameDecoder::new();
            let mut buf = [0u8; 4096];
            loop {
                match rx.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => {
                        decoder.push(&buf[..n]);
                        let recv_ns = epoch.elapsed().as_nanos() as u64;
                        let mut batch = Vec::new();
                        while let Ok(Some(Frame::Response(frame))) = decoder.next() {
                            batch.push(Received { frame, recv_ns });
                        }
                        if !batch.is_empty() {
                            received_total.fetch_add(batch.len() as u64, Ordering::Relaxed);
                            inbox.lock().unwrap().extend(batch);
                        }
                    }
                    Err(e)
                        if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
                    {
                        if done.load(Ordering::Acquire) {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => break,
                }
            }
        }));
        writers.push(stream);
    }

    // Paced open-loop sends. write_all blocks when back-pressure
    // closes the window — the schedule keeps charging the server.
    let mut bytes = Vec::with_capacity(32);
    let mut sent = 0u64;
    for (i, frame) in frames.iter().enumerate() {
        let due = Duration::from_nanos(arrivals[i]);
        if let Some(wait) = due.checked_sub(epoch.elapsed()) {
            std::thread::sleep(wait);
        }
        bytes.clear();
        encode_submit(frame, &mut bytes);
        writers[i % cfg.connections].write_all(&bytes)?;
        sent += 1;
    }

    // Wait for every answer, bounded by the drain timeout.
    let deadline = Instant::now() + cfg.drain_timeout;
    while received_total.load(Ordering::Relaxed) < sent && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    done.store(true, Ordering::Release);
    drop(writers);
    for r in readers {
        let _ = r.join();
    }

    // Stitch responses back to their scheduled arrivals.
    let received = Arc::try_unwrap(inbox)
        .map(|m| m.into_inner().unwrap())
        .unwrap_or_default();
    let mut classes: Vec<ClassReport> = TenantClass::ALL
        .iter()
        .map(|&class| ClassReport {
            class,
            sent: 0,
            served: 0,
            shed: 0,
            served_latency: Histogram::new(),
            shed_latency: Histogram::new(),
        })
        .collect();
    for frame in &frames {
        classes[frame.class.index() as usize].sent += 1;
    }
    let mut responses = Vec::with_capacity(received.len());
    let mut served = 0u64;
    let mut shed = 0u64;
    let mut last_ns = 0u64;
    for r in received {
        let id = r.frame.id() as usize;
        if id >= frames.len() {
            continue;
        }
        let submit = frames[id];
        let latency = r.recv_ns.saturating_sub(arrivals[id]);
        last_ns = last_ns.max(r.recv_ns);
        let report = &mut classes[submit.class.index() as usize];
        match r.frame {
            ResponseFrame::Served { .. } => {
                served += 1;
                report.served += 1;
                report.served_latency.record(latency);
            }
            ResponseFrame::Shed { .. } => {
                shed += 1;
                report.shed += 1;
                report.shed_latency.record(latency);
            }
        }
        responses.push((submit, r.frame, latency));
    }
    let elapsed_ns = if last_ns > 0 {
        last_ns
    } else {
        epoch.elapsed().as_nanos() as u64
    };
    Ok(LoadReport {
        offered_qps: cfg.offered_qps,
        achieved_qps: served as f64 / (elapsed_ns as f64 / 1e9).max(1e-9),
        sent,
        served,
        shed,
        lost: sent - served - shed,
        elapsed_ns,
        classes,
        responses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_for_a_seed() {
        let cfg = LoadgenConfig::default();
        let mut a = Workload::new(cfg.seed);
        let mix_a = a.query_mix(50, &cfg.tenants, cfg.zipf_theta);
        let arr_a = a.poisson_arrivals(50, 1e9 / cfg.offered_qps);
        let mut b = Workload::new(cfg.seed);
        let mix_b = b.query_mix(50, &cfg.tenants, cfg.zipf_theta);
        let arr_b = b.poisson_arrivals(50, 1e9 / cfg.offered_qps);
        assert_eq!(mix_a, mix_b);
        assert_eq!(arr_a, arr_b);
    }

    #[test]
    fn class_report_lookup_matches_index() {
        let report = LoadReport {
            offered_qps: 1.0,
            achieved_qps: 0.0,
            sent: 0,
            served: 0,
            shed: 0,
            lost: 0,
            elapsed_ns: 0,
            classes: TenantClass::ALL
                .iter()
                .map(|&class| ClassReport {
                    class,
                    sent: 0,
                    served: 0,
                    shed: 0,
                    served_latency: Histogram::new(),
                    shed_latency: Histogram::new(),
                })
                .collect(),
            responses: Vec::new(),
        };
        for class in TenantClass::ALL {
            assert_eq!(report.class(class).class, class);
        }
    }
}
