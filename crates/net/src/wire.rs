//! Compact length-prefixed wire protocol for query submit / response.
//!
//! Every frame is `u32` little-endian payload length followed by the
//! payload; the payload's first byte is a tag. Three frame kinds:
//!
//! | tag | direction | payload layout (little-endian)                          |
//! |-----|-----------|---------------------------------------------------------|
//! | 1   | c → s     | tag, id `u64`, tenant `u32`, class `u8`, sel bits `u64` |
//! | 2   | s → c     | tag, id `u64`, output_n `u64`, output_hash `u64`, sojourn `u64` |
//! | 3   | s → c     | tag, id `u64`, sojourn `u64`                            |
//!
//! Selectivity travels as raw `f64` bits so the round trip is exact —
//! the overload test asserts byte-identical `output_hash` against a
//! direct [`gcm_service`] execution, which needs bit-equal plans.
//!
//! The decoder is a pure pushdown buffer: feed bytes with
//! [`FrameDecoder::push`], pull frames with [`FrameDecoder::next`].
//! Malformed input (oversized length, unknown tag, wrong payload size,
//! out-of-range class) yields a typed [`WireError`] — never a panic —
//! so a shard can drop exactly the offending connection and keep its
//! poll loop alive. The property suite in `tests/net_wire.rs` hammers
//! this with truncated, oversized, and garbage frames.

use gcm_workload::TenantClass;

/// Largest accepted payload. Real frames are ≤ 33 bytes; anything
/// larger is garbage or an attack, rejected before buffering.
pub const MAX_FRAME: usize = 64;

const TAG_SUBMIT: u8 = 1;
const TAG_SERVED: u8 = 2;
const TAG_SHED: u8 = 3;

const SUBMIT_LEN: usize = 22;
const SERVED_LEN: usize = 33;
const SHED_LEN: usize = 17;

/// A client's query submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitFrame {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Tenant identifier; selects the tenant's table pair server-side.
    pub tenant: u32,
    /// Workload class — determines plan shape, priority, SLO budget.
    pub class: TenantClass,
    /// Predicate selectivity as raw `f64` bits (exact round trip).
    pub selectivity_bits: u64,
}

impl SubmitFrame {
    /// The selectivity as a float.
    pub fn selectivity(&self) -> f64 {
        f64::from_bits(self.selectivity_bits)
    }
}

/// The server's verdict on one submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseFrame {
    /// Executed: result cardinality + FNV-1a content hash, plus queue
    /// sojourn (submit → response enqueue) in wall nanoseconds.
    Served {
        id: u64,
        output_n: u64,
        output_hash: u64,
        sojourn_ns: u64,
    },
    /// Shed by the SLO admission gate before execution.
    Shed { id: u64, sojourn_ns: u64 },
}

impl ResponseFrame {
    /// The correlation id of the submission this answers.
    pub fn id(&self) -> u64 {
        match *self {
            ResponseFrame::Served { id, .. } | ResponseFrame::Shed { id, .. } => id,
        }
    }
}

/// Any decoded frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Frame {
    Submit(SubmitFrame),
    Response(ResponseFrame),
}

/// Why a byte stream stopped being a valid frame stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Declared payload length exceeds [`MAX_FRAME`].
    Oversized { len: u32 },
    /// First payload byte is not a known tag.
    UnknownTag { tag: u8 },
    /// Payload length disagrees with the tag's fixed layout (zero
    /// length frames land here too, as tag 0 never decodes).
    BadLength { tag: u8, len: u32 },
    /// Class byte outside the [`TenantClass`] range.
    BadClass { value: u8 },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            WireError::Oversized { len } => {
                write!(
                    f,
                    "frame payload of {len} bytes exceeds the {MAX_FRAME}-byte cap"
                )
            }
            WireError::UnknownTag { tag } => write!(f, "unknown frame tag {tag}"),
            WireError::BadLength { tag, len } => {
                write!(f, "tag {tag} frame with invalid payload length {len}")
            }
            WireError::BadClass { value } => write!(f, "tenant class byte {value} out of range"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append a submit frame (length prefix included) to `out`.
pub fn encode_submit(frame: &SubmitFrame, out: &mut Vec<u8>) {
    out.extend_from_slice(&(SUBMIT_LEN as u32).to_le_bytes());
    out.push(TAG_SUBMIT);
    out.extend_from_slice(&frame.id.to_le_bytes());
    out.extend_from_slice(&frame.tenant.to_le_bytes());
    out.push(frame.class.index());
    out.extend_from_slice(&frame.selectivity_bits.to_le_bytes());
}

/// Append a response frame (length prefix included) to `out`.
pub fn encode_response(frame: &ResponseFrame, out: &mut Vec<u8>) {
    match *frame {
        ResponseFrame::Served {
            id,
            output_n,
            output_hash,
            sojourn_ns,
        } => {
            out.extend_from_slice(&(SERVED_LEN as u32).to_le_bytes());
            out.push(TAG_SERVED);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&output_n.to_le_bytes());
            out.extend_from_slice(&output_hash.to_le_bytes());
            out.extend_from_slice(&sojourn_ns.to_le_bytes());
        }
        ResponseFrame::Shed { id, sojourn_ns } => {
            out.extend_from_slice(&(SHED_LEN as u32).to_le_bytes());
            out.push(TAG_SHED);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&sojourn_ns.to_le_bytes());
        }
    }
}

fn u64_at(payload: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(payload[at..at + 8].try_into().unwrap())
}

fn decode_payload(payload: &[u8]) -> Result<Frame, WireError> {
    let tag = payload[0];
    let len = payload.len() as u32;
    match tag {
        TAG_SUBMIT => {
            if payload.len() != SUBMIT_LEN {
                return Err(WireError::BadLength { tag, len });
            }
            let class_byte = payload[13];
            let class = TenantClass::from_index(class_byte)
                .ok_or(WireError::BadClass { value: class_byte })?;
            Ok(Frame::Submit(SubmitFrame {
                id: u64_at(payload, 1),
                tenant: u32::from_le_bytes(payload[9..13].try_into().unwrap()),
                class,
                selectivity_bits: u64_at(payload, 14),
            }))
        }
        TAG_SERVED => {
            if payload.len() != SERVED_LEN {
                return Err(WireError::BadLength { tag, len });
            }
            Ok(Frame::Response(ResponseFrame::Served {
                id: u64_at(payload, 1),
                output_n: u64_at(payload, 9),
                output_hash: u64_at(payload, 17),
                sojourn_ns: u64_at(payload, 25),
            }))
        }
        TAG_SHED => {
            if payload.len() != SHED_LEN {
                return Err(WireError::BadLength { tag, len });
            }
            Ok(Frame::Response(ResponseFrame::Shed {
                id: u64_at(payload, 1),
                sojourn_ns: u64_at(payload, 9),
            }))
        }
        other => Err(WireError::UnknownTag { tag: other }),
    }
}

/// Incremental frame decoder over an untrusted byte stream.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    start: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Feed bytes read from the socket.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Pull the next complete frame. `Ok(None)` means more bytes are
    /// needed; `Err` means the stream is corrupt and the connection
    /// should be dropped (the decoder makes no attempt to resync).
    /// Not an `Iterator`: the fallible tri-state return has no clean
    /// `Option<Item>` shape.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Frame>, WireError> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().unwrap());
        if len == 0 {
            return Err(WireError::BadLength { tag: 0, len });
        }
        // Reject a hostile length before waiting for (or allocating)
        // the payload.
        if len as usize > MAX_FRAME {
            return Err(WireError::Oversized { len });
        }
        if avail.len() < 4 + len as usize {
            return Ok(None);
        }
        let frame = decode_payload(&avail[4..4 + len as usize])?;
        self.start += 4 + len as usize;
        // Reclaim consumed prefix once it dominates the buffer.
        if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submit() -> SubmitFrame {
        SubmitFrame {
            id: 42,
            tenant: 7,
            class: TenantClass::JoinHeavy,
            selectivity_bits: 0.375f64.to_bits(),
        }
    }

    #[test]
    fn frames_round_trip_byte_for_byte() {
        let frames = [
            Frame::Submit(submit()),
            Frame::Response(ResponseFrame::Served {
                id: 42,
                output_n: 1_000,
                output_hash: 0xdead_beef_cafe_f00d,
                sojourn_ns: 250_000,
            }),
            Frame::Response(ResponseFrame::Shed {
                id: 43,
                sojourn_ns: 9_999,
            }),
        ];
        let mut bytes = Vec::new();
        for f in &frames {
            match f {
                Frame::Submit(s) => encode_submit(s, &mut bytes),
                Frame::Response(r) => encode_response(r, &mut bytes),
            }
        }
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        for want in &frames {
            assert_eq!(dec.next().unwrap(), Some(*want));
        }
        assert_eq!(dec.next().unwrap(), None);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn partial_delivery_one_byte_at_a_time() {
        let mut bytes = Vec::new();
        encode_submit(&submit(), &mut bytes);
        let mut dec = FrameDecoder::new();
        for (i, b) in bytes.iter().enumerate() {
            dec.push(std::slice::from_ref(b));
            let got = dec.next().unwrap();
            if i + 1 < bytes.len() {
                assert_eq!(got, None, "frame complete too early at byte {i}");
            } else {
                assert_eq!(got, Some(Frame::Submit(submit())));
            }
        }
    }

    #[test]
    fn hostile_inputs_error_without_panicking() {
        // Oversized declared length: rejected from the prefix alone.
        let mut dec = FrameDecoder::new();
        dec.push(&(MAX_FRAME as u32 + 1).to_le_bytes());
        assert_eq!(
            dec.next(),
            Err(WireError::Oversized {
                len: MAX_FRAME as u32 + 1
            })
        );

        // Zero-length frame.
        let mut dec = FrameDecoder::new();
        dec.push(&0u32.to_le_bytes());
        assert_eq!(dec.next(), Err(WireError::BadLength { tag: 0, len: 0 }));

        // Unknown tag.
        let mut dec = FrameDecoder::new();
        dec.push(&1u32.to_le_bytes());
        dec.push(&[9]);
        assert_eq!(dec.next(), Err(WireError::UnknownTag { tag: 9 }));

        // Submit frame with a class byte out of range.
        let mut bytes = Vec::new();
        encode_submit(&submit(), &mut bytes);
        bytes[4 + 13] = 3;
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        assert_eq!(dec.next(), Err(WireError::BadClass { value: 3 }));

        // Right tag, wrong payload size.
        let mut dec = FrameDecoder::new();
        dec.push(&2u32.to_le_bytes());
        dec.push(&[TAG_SERVED, 0]);
        assert_eq!(
            dec.next(),
            Err(WireError::BadLength {
                tag: TAG_SERVED,
                len: 2
            })
        );
    }

    #[test]
    fn selectivity_bits_survive_exactly() {
        for sel in [0.002, 0.01, 0.25, 0.5, 1.0, f64::MIN_POSITIVE] {
            let f = SubmitFrame {
                id: 1,
                tenant: 0,
                class: TenantClass::PointLookup,
                selectivity_bits: sel.to_bits(),
            };
            let mut bytes = Vec::new();
            encode_submit(&f, &mut bytes);
            let mut dec = FrameDecoder::new();
            dec.push(&bytes);
            match dec.next().unwrap().unwrap() {
                Frame::Submit(got) => assert_eq!(got.selectivity().to_bits(), sel.to_bits()),
                other => panic!("wrong frame {other:?}"),
            }
        }
    }

    #[test]
    fn decoder_compacts_its_buffer() {
        let mut one = Vec::new();
        encode_submit(&submit(), &mut one);
        let mut dec = FrameDecoder::new();
        // Push enough frames that the consumed prefix passes the 4 KiB
        // compaction threshold and is reclaimed.
        for _ in 0..400 {
            dec.push(&one);
        }
        let mut n = 0;
        while let Some(_f) = dec.next().unwrap() {
            n += 1;
        }
        assert_eq!(n, 400);
        assert!(
            dec.start < 4096,
            "consumed prefix should have been reclaimed"
        );
    }
}
