//! The ingress server: acceptor + shard threads in front of one
//! [`QueryService`] scheduler.
//!
//! Thread layout (`N` = [`NetConfig::shards`]):
//!
//! ```text
//! acceptor ──round-robin──▶ shard 0 ─┐  bounded          ┌─▶ batch → native exec
//!                           shard 1 ─┼─ ingress ─▶ sched ┤
//!                           shard N ─┘  queues           └─▶ shed → fail-fast reply
//!                              ▲                   │
//!                              └──── responses ────┘
//! ```
//!
//! The scheduler thread owns the [`QueryService`] outright — no lock
//! around planning or execution. Each drain cycle it empties every
//! shard's ingress queue into the service (stamping arrivals with the
//! server's epoch clock), asks [`QueryService::next_batch_at`] for the
//! shed set and the next ⊙-priced batch, answers shed queries
//! immediately (that is the fail-fast promise: a shed reply costs one
//! frame, not one execution), executes the batch against real memory,
//! and routes each result back to the shard/connection it came from.
//!
//! On start the scheduler runs a *warmup*: one query per tenant ×
//! class × selectivity bucket pushed through the full native path with
//! the SLO gate disabled. That seeds the plan cache and — critically —
//! the model-ns → wall-ns [`wall_scale`](QueryService::wall_scale)
//! EWMA. Without it the first real projection would compare model
//! nanoseconds against wall budgets and shed everything in sight.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gcm_obs::registry::labeled;
use gcm_obs::MetricsRegistry;
use gcm_service::{plan_for, QueryService, TenantTables};
use gcm_workload::{QueryRequest, TenantClass};

use crate::shard::{run_shard, IngressItem, SchedSignal, SharedShard};
use crate::wire::ResponseFrame;

/// Wall-clock sojourn (arrival → response enqueue) per class, ns.
pub const SOJOURN_NS: &str = "gcm_net_sojourn_ns";
/// Responses sent, labelled served/shed.
pub const RESPONSES_TOTAL: &str = "gcm_net_responses_total";

/// Ingress-tier knobs.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Shard (poll-loop) threads. Thread-per-core wants one per core;
    /// 0 means "available parallelism".
    pub shards: usize,
    /// Per-shard ingress queue bound — beyond it the read-readiness
    /// gate closes and back-pressure reaches the socket.
    pub ingress_capacity: usize,
    /// Pin the acceptor to core 0 and shard `i` to core `1 + i`
    /// (best-effort; refused pins are ignored).
    pub pin_threads: bool,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            shards: 0,
            ingress_capacity: 1024,
            pin_threads: false,
        }
    }
}

/// Monotonic nanoseconds since the server's epoch — the one clock
/// arrivals, shed projections, and sojourns all share.
#[derive(Debug, Clone, Copy)]
pub struct Clock {
    epoch: Instant,
}

impl Clock {
    fn new() -> Clock {
        Clock {
            epoch: Instant::now(),
        }
    }

    /// Nanoseconds since the epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

struct Route {
    shard: usize,
    conn: u64,
    client_id: u64,
    class: TenantClass,
    arrival_ns: u64,
}

/// A running ingress server. Dropping it leaks the threads; call
/// [`shutdown`](NetServer::shutdown) to drain and get the service
/// back.
pub struct NetServer {
    addr: SocketAddr,
    shards: Vec<Arc<SharedShard>>,
    signal: Arc<SchedSignal>,
    stop: Arc<AtomicBool>,
    metrics: Arc<MetricsRegistry>,
    acceptor: JoinHandle<()>,
    shard_handles: Vec<JoinHandle<io::Result<()>>>,
    scheduler: JoinHandle<QueryService>,
}

impl NetServer {
    /// Bind a loopback listener and launch acceptor, shards, and the
    /// scheduler (which first runs the plan-cache / wall-scale warmup
    /// described in the module docs). `tenants[i]` holds the tables
    /// queries for tenant id `i` bind against.
    pub fn start(
        mut svc: QueryService,
        tenants: Vec<TenantTables>,
        cfg: NetConfig,
    ) -> io::Result<NetServer> {
        assert!(!tenants.is_empty(), "need at least one tenant");
        // Warm up before the listener exists: no client can race the
        // cache seeding, and the first accepted request already sees a
        // seeded wall-scale EWMA.
        warmup(&mut svc, &tenants);
        let shard_n = if cfg.shards == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            cfg.shards
        };
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let clock = Clock::new();
        let metrics = Arc::new(MetricsRegistry::new());
        let signal = Arc::new(SchedSignal::default());
        let stop = Arc::new(AtomicBool::new(false));
        let mut shards = Vec::with_capacity(shard_n);
        for _ in 0..shard_n {
            shards.push(Arc::new(SharedShard::new(cfg.ingress_capacity)?));
        }

        let mut shard_handles = Vec::with_capacity(shard_n);
        for (i, shared) in shards.iter().enumerate() {
            let shared = Arc::clone(shared);
            let signal = Arc::clone(&signal);
            let registry = Arc::clone(&metrics);
            let pin = cfg.pin_threads.then_some(1 + i);
            shard_handles.push(
                std::thread::Builder::new()
                    .name(format!("gcm-net-shard-{i}"))
                    .spawn(move || {
                        run_shard(i, &shared, &signal, &registry, pin, move || clock.now_ns())
                    })?,
            );
        }

        let acceptor = {
            let shards = shards.clone();
            let stop = Arc::clone(&stop);
            let pin = cfg.pin_threads.then_some(0usize);
            std::thread::Builder::new()
                .name("gcm-net-acceptor".into())
                .spawn(move || accept_loop(listener, &shards, &stop, pin))?
        };

        let scheduler = {
            let shards = shards.clone();
            let signal = Arc::clone(&signal);
            let stop = Arc::clone(&stop);
            let registry = Arc::clone(&metrics);
            std::thread::Builder::new()
                .name("gcm-net-sched".into())
                .spawn(move || schedule_loop(svc, tenants, shards, signal, stop, registry, clock))?
        };

        Ok(NetServer {
            addr,
            shards,
            signal,
            stop,
            metrics,
            acceptor,
            shard_handles,
            scheduler,
        })
    }

    /// The bound loopback address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The ingress tier's own metrics registry (frames, connections,
    /// per-class sojourns). Service-side metrics stay in the
    /// [`QueryService`] this server was started with.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Stop accepting, drain queued work (every accepted submission is
    /// answered — served or shed), flush responses, and hand the
    /// [`QueryService`] back for inspection.
    pub fn shutdown(self) -> QueryService {
        self.stop.store(true, Ordering::Release);
        self.signal.notify();
        let _ = self.acceptor.join();
        let svc = self.scheduler.join().expect("scheduler thread panicked");
        for shared in &self.shards {
            shared.stop.store(true, Ordering::Release);
            shared.wake.wake();
        }
        for h in self.shard_handles {
            let _ = h.join();
        }
        svc
    }
}

fn accept_loop(
    listener: TcpListener,
    shards: &[Arc<SharedShard>],
    stop: &AtomicBool,
    pin: Option<usize>,
) {
    if let Some(core) = pin {
        crate::sys::pin_to_core(core);
    }
    let mut next = 0usize;
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                let shard = &shards[next % shards.len()];
                next += 1;
                shard.incoming.lock().unwrap().push(stream);
                shard.wake.wake();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_micros(500));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

/// One query per tenant × class × selectivity bucket through the full
/// native path, SLO gate off: seeds the plan cache and the wall-scale
/// EWMA before the first client request can be projected against a
/// budget.
fn warmup(svc: &mut QueryService, tenants: &[TenantTables]) {
    let saved = svc.set_slo(None);
    for (tenant, tables) in tenants.iter().enumerate() {
        for class in TenantClass::ALL {
            for &selectivity in class.selectivity_buckets() {
                let req = QueryRequest {
                    tenant,
                    class,
                    selectivity,
                };
                let _ = svc.submit_classed(plan_for(&req, tables), class, 0);
            }
        }
    }
    while let (_, Some(batch)) = svc.next_batch_at(0) {
        let _ = svc.execute_batch_native_observed(batch);
    }
    svc.set_slo(saved);
}

fn schedule_loop(
    mut svc: QueryService,
    tenants: Vec<TenantTables>,
    shards: Vec<Arc<SharedShard>>,
    signal: Arc<SchedSignal>,
    stop: Arc<AtomicBool>,
    metrics: Arc<MetricsRegistry>,
    clock: Clock,
) -> QueryService {
    let mut routes: HashMap<u64, Route> = HashMap::new();
    loop {
        // Pull everything the shards decoded, then wake them so gated
        // connections see the freed capacity.
        let mut drained: Vec<IngressItem> = Vec::new();
        for shared in &shards {
            let mut q = shared.ingress.lock().unwrap();
            if !q.is_empty() {
                drained.extend(q.drain(..));
            }
        }
        if !drained.is_empty() {
            for shared in &shards {
                shared.wake.wake();
            }
        }
        for item in drained {
            let tenant = item.frame.tenant as usize % tenants.len();
            let req = QueryRequest {
                tenant,
                class: item.frame.class,
                selectivity: item.frame.selectivity(),
            };
            let plan = plan_for(&req, &tenants[tenant]);
            match svc.submit_classed(plan, item.frame.class, item.arrival_ns) {
                Ok(qid) => {
                    routes.insert(
                        qid,
                        Route {
                            shard: item.shard,
                            conn: item.conn,
                            client_id: item.frame.id,
                            class: item.frame.class,
                            arrival_ns: item.arrival_ns,
                        },
                    );
                }
                Err(_) => {
                    // Unplannable request: fail fast, like a shed.
                    respond(
                        &shards,
                        &metrics,
                        item.shard,
                        item.conn,
                        item.frame.class,
                        ResponseFrame::Shed {
                            id: item.frame.id,
                            sojourn_ns: clock.now_ns().saturating_sub(item.arrival_ns),
                        },
                    );
                }
            }
        }

        if svc.queue_len() == 0 {
            if stop.load(Ordering::Acquire) {
                let empty = shards.iter().all(|s| s.ingress.lock().unwrap().is_empty());
                if empty {
                    return svc;
                }
                continue;
            }
            signal.wait(Duration::from_millis(1));
            continue;
        }

        let (shed, batch) = svc.next_batch_at(clock.now_ns());
        for record in shed {
            if let Some(route) = routes.remove(&record.id) {
                respond(
                    &shards,
                    &metrics,
                    route.shard,
                    route.conn,
                    route.class,
                    ResponseFrame::Shed {
                        id: route.client_id,
                        sojourn_ns: clock.now_ns().saturating_sub(route.arrival_ns),
                    },
                );
            }
        }
        let Some(batch) = batch else { continue };
        let member_ids = batch.ids();
        match svc.execute_batch_native_observed(batch) {
            Ok(runs) => {
                for (qid, run) in runs {
                    if let Some(route) = routes.remove(&qid) {
                        respond(
                            &shards,
                            &metrics,
                            route.shard,
                            route.conn,
                            route.class,
                            ResponseFrame::Served {
                                id: route.client_id,
                                output_n: run.output_n,
                                output_hash: run.output_hash,
                                sojourn_ns: clock.now_ns().saturating_sub(route.arrival_ns),
                            },
                        );
                    }
                }
            }
            Err(_) => {
                // Execution refused the whole batch (a planning-layer
                // inconsistency, not per-query data): fail its members
                // fast rather than stranding the clients.
                for qid in member_ids {
                    if let Some(route) = routes.remove(&qid) {
                        respond(
                            &shards,
                            &metrics,
                            route.shard,
                            route.conn,
                            route.class,
                            ResponseFrame::Shed {
                                id: route.client_id,
                                sojourn_ns: clock.now_ns().saturating_sub(route.arrival_ns),
                            },
                        );
                    }
                }
            }
        }
    }
}

fn respond(
    shards: &[Arc<SharedShard>],
    metrics: &MetricsRegistry,
    shard: usize,
    conn: u64,
    class: TenantClass,
    frame: ResponseFrame,
) {
    let (kind, sojourn_ns) = match frame {
        ResponseFrame::Served { sojourn_ns, .. } => ("served", sojourn_ns),
        ResponseFrame::Shed { sojourn_ns, .. } => ("shed", sojourn_ns),
    };
    metrics.inc(&labeled(RESPONSES_TOTAL, &[("kind", kind)]), 1);
    metrics.observe_ns(
        &labeled(SOJOURN_NS, &[("class", class.label()), ("kind", kind)]),
        sojourn_ns as f64,
    );
    shards[shard].send_response(conn, frame);
}
