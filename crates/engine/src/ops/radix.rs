//! Multi-pass radix partitioning — the `[MBK00a]` answer to the
//! Figure-7d cliff.
//!
//! Single-pass partitioning thrashes once the fan-out `m` exceeds a
//! level's line/entry count (`nest` with `m > #`, §4.7). Radix
//! clustering reaches a large total fan-out `2^bits` in `p` passes of
//! fan-out `2^(bits/p)` each: every pass keeps its open-line working set
//! below the cliffs, at the price of re-reading the data once per pass.
//! The cost model prices exactly that trade-off:
//!
//! ```text
//! radix(U, bits, p) = ⊕_{i=1}^{p} ( s_trav(U) ⊙ nest(W, 2^{bits/p}, s_trav, rnd) )
//! ```

use crate::backend::MemoryBackend;
use crate::ctx::ExecContext;
use crate::ops::mix;
use crate::ops::partition::Partitioned;
use crate::relation::Relation;
use gcm_core::{library, Pattern, Region};

/// The radix "digit" of a key for a pass covering `bits` bits ending
/// `shift` bits from the top of the mixed key.
#[inline]
fn digit(key: u64, shift: u32, bits: u32) -> u64 {
    (mix(key) << shift) >> (64 - bits)
}

/// Radix-partition `input` into `2^bits` clusters using `passes` passes
/// of (roughly) equal per-pass fan-out. `passes = 1` degenerates to
/// plain hash partitioning on the top `bits` bits.
///
/// Returns the fully clustered output; cluster `j` holds the tuples
/// whose top `bits` mixed-key bits equal `j`.
pub fn radix_partition<B: MemoryBackend>(
    ctx: &mut ExecContext<B>,
    input: &Relation,
    bits: u32,
    passes: u32,
    out_name: &str,
) -> Partitioned {
    assert!((1..=32).contains(&bits), "1..=32 radix bits");
    assert!(passes >= 1 && passes <= bits, "1..=bits passes");
    let n = input.n();
    let w = input.w();

    // Per-pass bit widths (earlier passes take the larger share).
    let base = bits / passes;
    let extra = bits % passes;
    let pass_bits: Vec<u32> = (0..passes).map(|p| base + u32::from(p < extra)).collect();

    // Ping-pong buffers. The first pass reads `input`; later passes read
    // the previous output. Cluster boundaries refine every pass.
    let mut src = input.clone();
    let mut bounds: Vec<u64> = vec![0, n]; // current cluster boundaries
    let mut done_bits = 0u32;
    let mut out = input.clone(); // replaced in the first pass
    for (p, &pb) in pass_bits.iter().enumerate() {
        let fanout = 1u64 << pb;
        out = ctx.relation(&format!("{out_name}.p{p}"), n, w);
        let mut new_bounds = Vec::with_capacity((bounds.len() - 1) * fanout as usize + 1);
        new_bounds.push(0);
        // Process each existing cluster independently: its tuples are
        // scattered over `fanout` sub-clusters. Only `fanout` output
        // cursors are ever open at once — that is the whole trick.
        for c in 0..bounds.len() - 1 {
            let (lo, hi) = (bounds[c], bounds[c + 1]);
            // Host-side counting pass (cardinality oracle, as in
            // ops::partition).
            let mut counts = vec![0u64; fanout as usize];
            for i in lo..hi {
                let key = ctx.mem.host_read_u64(src.tuple(i));
                counts[digit(key, done_bits, pb) as usize] += 1;
            }
            let mut cursors = Vec::with_capacity(fanout as usize);
            let mut acc = lo;
            for &cnt in &counts {
                cursors.push(acc);
                acc += cnt;
                new_bounds.push(acc);
            }
            // Scatter, software-prefetching the destination cursor of
            // the tuple N ahead for write: with a large open fan-out
            // the scattered stores are the cache-hostile part, and the
            // hint is computed from the same digit function the scatter
            // itself uses (uncharged; distance 0 on the simulator).
            let dist = ctx.mem.prefetch_distance();
            for i in lo..hi {
                if dist > 0 && i + dist < hi {
                    let ahead = ctx.mem.host_read_u64(src.tuple(i + dist));
                    let da = digit(ahead, done_bits, pb) as usize;
                    ctx.mem.prefetch_write(out.tuple(cursors[da]));
                }
                let key = ctx.read_tuple(&src, i);
                ctx.count_ops(1);
                let d = digit(key, done_bits, pb) as usize;
                let dst = cursors[d];
                cursors[d] += 1;
                ctx.copy_tuple(&src, i, &out, dst);
            }
        }
        bounds = new_bounds;
        done_bits += pb;
        src = out.clone();
    }
    Partitioned {
        rel: out,
        offsets: bounds,
    }
}

/// Pattern of [`radix_partition`]: one `s_trav ⊙ nest` phase per pass,
/// each with only the per-pass fan-out open.
pub fn radix_partition_pattern(input: &Region, output: &Region, bits: u32, passes: u32) -> Pattern {
    let base = bits / passes;
    let extra = bits % passes;
    let phases = (0..passes)
        .map(|p| {
            let pb = base + u32::from(p < extra);
            library::partition(input.clone(), output.clone(), 1u64 << pb)
        })
        .collect();
    Pattern::seq(phases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcm_hardware::presets;
    use gcm_workload::Workload;

    fn ctx() -> ExecContext {
        ExecContext::new(presets::tiny())
    }

    #[test]
    fn clusters_are_digit_homogeneous() {
        let mut c = ctx();
        let keys = Workload::new(1).shuffled_keys(2000);
        let input = c.relation_from_keys("U", &keys, 8);
        let bits = 6;
        let parts = radix_partition(&mut c, &input, bits, 2, "R");
        assert_eq!(parts.m(), 64);
        for j in 0..parts.m() {
            let p = parts.part(j);
            for i in 0..p.n() {
                let k = c.mem.host().read_u64(p.tuple(i));
                assert_eq!(digit(k, 0, bits), j, "tuple in wrong cluster");
            }
        }
    }

    #[test]
    fn multiset_preserved_across_passes() {
        let mut c = ctx();
        let keys = Workload::new(2).shuffled_keys(1500);
        let input = c.relation_from_keys("U", &keys, 8);
        let parts = radix_partition(&mut c, &input, 8, 3, "R");
        let mut got: Vec<u64> = (0..1500)
            .map(|i| c.mem.host().read_u64(parts.rel.tuple(i)))
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..1500).collect::<Vec<u64>>());
    }

    #[test]
    fn one_pass_matches_hash_partition_semantics() {
        let mut c = ctx();
        let keys = Workload::new(3).shuffled_keys(500);
        let input = c.relation_from_keys("U", &keys, 8);
        let parts = radix_partition(&mut c, &input, 4, 1, "R");
        assert_eq!(parts.m(), 16);
        assert_eq!(*parts.offsets.last().unwrap(), 500);
    }

    #[test]
    fn two_passes_beat_one_pass_past_the_cliff() {
        // tiny TLB: 8 entries; L1: 64 lines. A 4096-way single pass is
        // far past both cliffs; 2 passes of 64 stay under the L1 cliff.
        let run = |passes: u32| {
            let mut c = ctx();
            let keys = Workload::new(4).shuffled_keys(16_384);
            let input = c.relation_from_keys("U", &keys, 8);
            c.cold_caches();
            let (_, stats) = c.measure(|c| {
                radix_partition(c, &input, 12, passes, "R");
            });
            stats.mem.clock_ns
        };
        let single = run(1);
        let multi = run(2);
        assert!(
            multi < single,
            "2-pass radix must beat 1-pass 4096-way: {multi} vs {single}"
        );
    }

    #[test]
    fn model_prices_the_same_tradeoff() {
        // The pattern description reproduces the measured preference.
        let model = gcm_core::CostModel::new(presets::tiny());
        let u = Region::new("U", 16_384, 8);
        let w = Region::new("W", 16_384, 8);
        let single = model.mem_ns(&radix_partition_pattern(&u, &w, 12, 1));
        let multi = model.mem_ns(&radix_partition_pattern(&u, &w, 12, 2));
        assert!(multi < single, "model: {multi} vs {single}");
    }

    #[test]
    fn pattern_renders_passes() {
        let u = Region::new("U", 1000, 8);
        let w = Region::new("W", 1000, 8);
        let p = radix_partition_pattern(&u, &w, 8, 2);
        let s = p.to_string();
        assert_eq!(s.matches("nest").count(), 2);
        assert!(s.contains("nest(W, 16"));
    }

    #[test]
    fn uneven_bit_split() {
        let mut c = ctx();
        let keys = Workload::new(5).shuffled_keys(400);
        let input = c.relation_from_keys("U", &keys, 8);
        // 7 bits over 2 passes: 4 + 3.
        let parts = radix_partition(&mut c, &input, 7, 2, "R");
        assert_eq!(parts.m(), 128);
    }
}
