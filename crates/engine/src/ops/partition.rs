//! Partitioning (paper §6.2, Figure 7d).
//!
//! The input is read sequentially; each tuple is appended to one of `m`
//! output buffers. Within each buffer writes are sequential; the buffer
//! *order* follows the hash of the keys, i.e. is random. That is exactly
//! the interleaved multi-cursor pattern:
//!
//! ```text
//! partition(U, m) = s_trav(U) ⊙ nest(W, m, s_trav, rnd)
//! ```
//!
//! The famous result this reproduces: the cost cliffs each time `m`
//! exceeds a level's line/entry count (TLB entries, then L1 lines, then
//! L2 lines), because every open output line gets evicted between two
//! writes to the same buffer.
//!
//! Buffer sizes are precomputed host-side (an exact-cardinality oracle;
//! MonetDB's radix cluster does a separate counting pass, which the
//! paper's §6.2 experiment models and measures without — we follow the
//! paper).

use crate::backend::MemoryBackend;
use crate::ctx::ExecContext;
use crate::ops::mix;
use crate::relation::Relation;
use gcm_core::{library, Pattern, Region};

/// A partitioned relation: one dense output region holding the `m`
/// buffers back to back.
#[derive(Debug)]
pub struct Partitioned {
    /// The output region (all buffers, contiguous).
    pub rel: Relation,
    /// Partition boundaries: buffer `j` spans
    /// `offsets[j] .. offsets[j+1]` (tuple indices), `m + 1` entries.
    pub offsets: Vec<u64>,
}

impl Partitioned {
    /// Number of partitions.
    pub fn m(&self) -> u64 {
        (self.offsets.len() - 1) as u64
    }

    /// Partition `j` as a relation view (shares the output's region
    /// identity).
    pub fn part(&self, j: u64) -> Relation {
        let first = self.offsets[j as usize];
        let count = self.offsets[j as usize + 1] - first;
        self.rel.subrange(first, count)
    }
}

/// Bucket of a key for fan-out `m`.
#[inline]
pub fn bucket_of(key: u64, m: u64) -> u64 {
    // Use the high bits of the mixed key: independent from the low bits
    // the hash table uses, so partitioned hash-join sub-tables stay
    // uniform.
    ((mix(key) >> 32) * m) >> 32
}

/// Hash-partition `input` into `m` buffers.
pub fn hash_partition<B: MemoryBackend>(
    ctx: &mut ExecContext<B>,
    input: &Relation,
    m: u64,
    out_name: &str,
) -> Partitioned {
    assert!(m >= 1 && m <= u32::MAX as u64);
    // Host-side counting pass (cardinality oracle); the per-tuple bucket
    // is remembered so the scatter need not re-hash.
    let mut counts = vec![0u64; m as usize];
    let mut buckets = Vec::with_capacity(input.n() as usize);
    for i in 0..input.n() {
        let key = ctx.mem.host_read_u64(input.tuple(i));
        let b = bucket_of(key, m);
        counts[b as usize] += 1;
        buckets.push(b as u32);
    }
    let mut offsets = Vec::with_capacity(m as usize + 1);
    let mut acc = 0u64;
    offsets.push(0);
    for c in &counts {
        acc += c;
        offsets.push(acc);
    }

    let out = ctx.relation(out_name, input.n(), input.w());
    let mut cursors: Vec<u64> = offsets[..m as usize].to_vec();
    // One logical op per tuple (the bucket decision); the scatter routes
    // through the backend's bulk entry point, where the native kernel
    // issues an N-ahead write prefetch of the destination cursor of the
    // future tuple — the open-buffer stores are the nest() pattern's
    // random component (uncharged hint; the simulator runs the
    // reference loop with identical accounting).
    if input.n() > 0 {
        ctx.count_ops(input.n());
        ctx.mem.partition_scatter_bulk(
            input.tuple(0),
            input.n(),
            input.w(),
            out.tuple(0),
            &buckets,
            &mut cursors,
        );
    }
    Partitioned { rel: out, offsets }
}

/// Pattern of [`hash_partition`]: `s_trav(U) ⊙ nest(W, m, s_trav, rnd)`.
pub fn partition_pattern(input: &Region, output: &Region, m: u64) -> Pattern {
    library::partition(input.clone(), output.clone(), m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcm_hardware::presets;
    use gcm_workload::Workload;

    fn ctx() -> ExecContext {
        ExecContext::new(presets::tiny())
    }

    #[test]
    fn partitions_preserve_multiset() {
        let mut c = ctx();
        let keys = Workload::new(8).shuffled_keys(1000);
        let input = c.relation_from_keys("U", &keys, 8);
        let parts = hash_partition(&mut c, &input, 7, "W");
        assert_eq!(parts.m(), 7);
        assert_eq!(*parts.offsets.last().unwrap(), 1000);
        let mut out_keys: Vec<u64> = (0..1000)
            .map(|i| c.mem.host().read_u64(parts.rel.tuple(i)))
            .collect();
        out_keys.sort_unstable();
        assert_eq!(out_keys, (0..1000).collect::<Vec<u64>>());
    }

    #[test]
    fn every_tuple_lands_in_its_bucket() {
        let mut c = ctx();
        let keys = Workload::new(9).shuffled_keys(500);
        let input = c.relation_from_keys("U", &keys, 8);
        let m = 5;
        let parts = hash_partition(&mut c, &input, m, "W");
        for j in 0..m {
            let p = parts.part(j);
            for i in 0..p.n() {
                let k = c.mem.host().read_u64(p.tuple(i));
                assert_eq!(bucket_of(k, m), j);
            }
        }
    }

    #[test]
    fn single_partition_is_a_copy() {
        let mut c = ctx();
        let keys = vec![5, 3, 8, 1];
        let input = c.relation_from_keys("U", &keys, 8);
        let parts = hash_partition(&mut c, &input, 1, "W");
        let got: Vec<u64> = (0..4)
            .map(|i| c.mem.host().read_u64(parts.rel.tuple(i)))
            .collect();
        assert_eq!(got, keys); // order preserved within the single bucket
    }

    #[test]
    fn buckets_are_reasonably_balanced() {
        let mut c = ctx();
        let keys = Workload::new(10).shuffled_keys(8000);
        let input = c.relation_from_keys("U", &keys, 8);
        let parts = hash_partition(&mut c, &input, 8, "W");
        for j in 0..8 {
            let size = parts.part(j).n();
            assert!((700..1300).contains(&size), "bucket {j} has {size}");
        }
    }

    #[test]
    fn fanout_cliff_in_tlb_misses() {
        // tiny TLB: 8 entries. m = 4 keeps all open pages mapped; m = 64
        // thrashes the TLB — the Figure 7d effect.
        let tlb_misses = |m: u64| {
            let mut c = ctx();
            let keys = Workload::new(11).shuffled_keys(16_384); // 128 KB
            let input = c.relation_from_keys("U", &keys, 8);
            c.cold_caches();
            let (_, stats) = c.measure(|c| {
                hash_partition(c, &input, m, "W");
            });
            let tlb = c.mem.spec().level_index("TLB").unwrap();
            stats.misses_at(tlb)
        };
        let low = tlb_misses(4);
        let high = tlb_misses(64);
        assert!(high > 3 * low, "TLB cliff: {low} -> {high}");
    }

    #[test]
    fn pattern_renders() {
        let mut c = ctx();
        let u = c.relation("U", 100, 8);
        let w = c.relation("W", 100, 8);
        assert_eq!(
            partition_pattern(u.region(), w.region(), 64).to_string(),
            "s_trav(U) ⊙ nest(W, 64, s_trav, rnd)"
        );
    }

    #[test]
    fn empty_input() {
        let mut c = ctx();
        let input = c.relation("U", 0, 8);
        let parts = hash_partition(&mut c, &input, 4, "W");
        assert_eq!(parts.m(), 4);
        assert_eq!(*parts.offsets.last().unwrap(), 0);
    }
}
