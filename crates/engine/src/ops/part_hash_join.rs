//! Partitioned hash-join (paper §6.2, Figure 7e).
//!
//! Both inputs are hash-partitioned on the join key with the same fan-out;
//! matching partition pairs are then hash-joined independently. Once each
//! partition's hash table fits in a cache level, the random probe traffic
//! stays inside that level — the cache-conscious join of
//! [SKN94, MBK00a] whose cost model this paper automates:
//!
//! ```text
//! part_hash_join(U, V) = partition(U, m) ⊕ partition(V, m)
//!                      ⊕ ⊕_{j=1}^{m} hash_join(U_j, V_j)
//! ```

use crate::backend::MemoryBackend;
use crate::ctx::ExecContext;
use crate::ops::hash::{build_hash, hash_join_with_table, ENTRY_BYTES};
use crate::ops::partition::{hash_partition, partition_pattern};
use crate::relation::Relation;
use gcm_core::{library, Pattern, Region};

/// Join `u ⋈ v` via `m`-way partitioning; returns the concatenated match
/// output (one `out_w`-byte tuple per matching pair).
pub fn part_hash_join<B: MemoryBackend>(
    ctx: &mut ExecContext<B>,
    u: &Relation,
    v: &Relation,
    m: u64,
    out_name: &str,
    out_w: u64,
) -> Relation {
    let pu = hash_partition(ctx, u, m, &format!("{out_name}.Up"));
    let pv = hash_partition(ctx, v, m, &format!("{out_name}.Vp"));
    join_partitions(ctx, &pu, &pv, out_name, out_w)
}

/// The join phase only: hash-join each matching partition pair of two
/// already-partitioned inputs (the experiment of Figure 7e, which sweeps
/// the partition size with the partitioning cost excluded).
pub fn join_partitions<B: MemoryBackend>(
    ctx: &mut ExecContext<B>,
    pu: &crate::ops::partition::Partitioned,
    pv: &crate::ops::partition::Partitioned,
    out_name: &str,
    out_w: u64,
) -> Relation {
    assert_eq!(pu.m(), pv.m(), "fan-outs must match");
    let m = pu.m();
    // Join each partition pair into per-partition outputs, then expose
    // them as one relation. Output sizes come from the per-pair joins; we
    // first compute total matches host-side to allocate the output once.
    let mut results: Vec<Relation> = Vec::with_capacity(m as usize);
    let dist = ctx.mem.prefetch_distance();
    for j in 0..m {
        // Warm-ahead: while pair j is joined, hint the first lines of
        // the *next* pair's inputs (the per-pair build and probe inside
        // the loop body carry their own N-ahead prefetching).
        if dist > 0 && j + 1 < m {
            let (un, vn) = (pu.part(j + 1), pv.part(j + 1));
            if un.n() > 0 {
                ctx.mem.prefetch_read(un.tuple(0));
            }
            if vn.n() > 0 {
                ctx.mem.prefetch_read(vn.tuple(0));
            }
        }
        let uj = pu.part(j);
        let vj = pv.part(j);
        let table = build_hash(ctx, &vj, &format!("{out_name}.H{j}"));
        let out_j = hash_join_with_table(ctx, &uj, &table, &format!("{out_name}.{j}"), out_w);
        results.push(out_j);
    }
    // Concatenate results into a single dense output relation.
    let total: u64 = results.iter().map(Relation::n).sum();
    let out = ctx.relation(out_name, total, out_w);
    let mut cursor = 0u64;
    for r in &results {
        for i in 0..r.n() {
            // Host-side concatenation: the per-partition writes were
            // already simulated; this is bookkeeping, not algorithm.
            let key = ctx.mem.host_read_u64(r.tuple(i));
            ctx.mem.host_write_u64(out.tuple(cursor), key);
            cursor += 1;
        }
    }
    out
}

/// Pattern of [`part_hash_join`]:
/// `partition(U,m) ⊕ partition(V,m) ⊕ ⊕_j hash_join(U_j, V_j, H_j, W_j)`.
///
/// The per-partition input/output regions are uniform slices of their
/// parents; each partition's hash table is a fresh region of
/// `2·V.n/m` 16-byte entries (the engine's load factor ½, rounded to the
/// model's resolution).
pub fn part_hash_join_pattern(
    u: &Region,
    v: &Region,
    w: &Region,
    m: u64,
    u_parted: &Region,
    v_parted: &Region,
) -> Pattern {
    let mut phases = vec![
        partition_pattern(u, u_parted, m),
        partition_pattern(v, v_parted, m),
    ];
    let table_slots = (2 * (v.n / m.max(1)).max(1)).next_power_of_two();
    let parts = (0..m)
        .map(|j| {
            (
                u_parted.slice(m),
                v_parted.slice(m),
                Region::new(format!("H{j}"), table_slots, ENTRY_BYTES),
                w.slice(m),
            )
        })
        .collect();
    phases.push(library::partitioned_hash_join(parts));
    Pattern::seq(phases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::hash::hash_join;
    use gcm_hardware::presets;
    use gcm_workload::Workload;

    fn ctx() -> ExecContext {
        ExecContext::new(presets::tiny())
    }

    #[test]
    fn joins_one_to_one_like_plain_hash_join() {
        let mut c = ctx();
        let (uk, vk) = Workload::new(20).join_pair(1000);
        let u = c.relation_from_keys("U", &uk, 8);
        let v = c.relation_from_keys("V", &vk, 8);
        let out = part_hash_join(&mut c, &u, &v, 8, "W", 16);
        assert_eq!(out.n(), 1000);
        let mut keys: Vec<u64> = (0..1000)
            .map(|i| c.mem.host().read_u64(out.tuple(i)))
            .collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..1000).collect::<Vec<u64>>());
    }

    #[test]
    fn matches_plain_hash_join_results() {
        let mut c = ctx();
        let uk = Workload::new(21).uniform_keys_bounded(400, 300);
        let vk = Workload::new(22).uniform_keys_bounded(300, 300);
        let u = c.relation_from_keys("U", &uk, 8);
        let v = c.relation_from_keys("V", &vk, 8);
        let plain = hash_join(&mut c, &u, &v, "Wp", 16);
        let parted = part_hash_join(&mut c, &u, &v, 4, "Wq", 16);
        assert_eq!(plain.n(), parted.n());
        let mut a: Vec<u64> = (0..plain.n())
            .map(|i| c.mem.host().read_u64(plain.tuple(i)))
            .collect();
        let mut b: Vec<u64> = (0..parted.n())
            .map(|i| c.mem.host().read_u64(parted.tuple(i)))
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn single_partition_degenerates_to_hash_join() {
        let mut c = ctx();
        let (uk, vk) = Workload::new(23).join_pair(200);
        let u = c.relation_from_keys("U", &uk, 8);
        let v = c.relation_from_keys("V", &vk, 8);
        let out = part_hash_join(&mut c, &u, &v, 1, "W", 16);
        assert_eq!(out.n(), 200);
    }

    #[test]
    fn partitioning_cuts_probe_misses_on_big_tables() {
        // The headline crossover (Fig 7e): with H ≫ L2, partitioned join
        // takes fewer L2 misses than the plain one.
        let n = 16_384usize; // H = 512 KB vs tiny L2 = 16 KB
        let l2_misses = |m: Option<u64>| {
            let mut c = ctx();
            let (uk, vk) = Workload::new(24).join_pair(n);
            let u = c.relation_from_keys("U", &uk, 8);
            let v = c.relation_from_keys("V", &vk, 8);
            c.cold_caches();
            let (_, stats) = c.measure(|c| match m {
                None => {
                    hash_join(c, &u, &v, "W", 16);
                }
                Some(m) => {
                    part_hash_join(c, &u, &v, m, "W", 16);
                }
            });
            let l2 = c.mem.spec().level_index("L2").unwrap();
            stats.misses_at(l2)
        };
        let plain = l2_misses(None);
        let parted = l2_misses(Some(64)); // per-partition H = 8 KB < L2
        assert!(
            parted < plain,
            "partitioned join must save L2 misses: {parted} vs {plain}"
        );
    }

    #[test]
    fn pattern_renders_three_phases() {
        let mut c = ctx();
        let u = c.relation("U", 1000, 8);
        let v = c.relation("V", 1000, 8);
        let w = c.relation("W", 1000, 16);
        let up = c.relation("Up", 1000, 8);
        let vp = c.relation("Vp", 1000, 8);
        let p = part_hash_join_pattern(
            u.region(),
            v.region(),
            w.region(),
            4,
            up.region(),
            vp.region(),
        );
        let s = p.to_string();
        assert!(s.contains("nest(Up, 4"));
        assert!(s.contains("nest(Vp, 4"));
        assert!(s.contains("r_acc(H0"));
        assert!(s.contains("r_acc(H3"));
    }

    #[test]
    fn empty_inputs() {
        let mut c = ctx();
        let u = c.relation("U", 0, 8);
        let v = c.relation("V", 0, 8);
        let out = part_hash_join(&mut c, &u, &v, 4, "W", 16);
        assert_eq!(out.n(), 0);
    }
}
