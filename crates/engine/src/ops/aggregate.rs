//! Aggregation and duplicate elimination (paper §3.2: "usually
//! implemented using sorting or hashing; thus, they perform the
//! respective patterns").

use crate::backend::MemoryBackend;
use crate::ctx::ExecContext;
use crate::ops::hash::{HashTable, EMPTY};
use crate::ops::sort::quick_sort;
use crate::relation::Relation;
use gcm_core::{library, Pattern, Region};

/// Hash-based group-by count: returns a relation of `(group_key, count)`
/// pairs (width 16), in table order.
pub fn hash_group_count<B: MemoryBackend>(
    ctx: &mut ExecContext<B>,
    input: &Relation,
    out_name: &str,
) -> Relation {
    // Host-side distinct count (cardinality oracle) to size table/output.
    let mut distinct = 0u64;
    {
        let mut seen = std::collections::HashSet::new();
        for i in 0..input.n() {
            if seen.insert(ctx.mem.host_read_u64(input.tuple(i))) {
                distinct += 1;
            }
        }
    }
    let table = HashTable::alloc(ctx, &format!("H({out_name})"), distinct.max(1));
    // Aggregate: probe; on hit increment the count in place, else insert
    // 1. The upsert's random table line N tuples ahead is
    // software-prefetched for write (uncharged hint; distance 0 on the
    // simulator skips it).
    let dist = ctx.mem.prefetch_distance();
    let mask = table.capacity() - 1;
    for i in 0..input.n() {
        if dist > 0 && i + dist < input.n() {
            let ahead = ctx.mem.host_read_u64(input.tuple(i + dist));
            ctx.mem
                .prefetch_write(table.slot_addr(crate::ops::mix(ahead) & mask));
        }
        let key = ctx.read_tuple(input, i);
        ctx.count_ops(1);
        upsert_count(ctx, &table, key);
    }
    // Emit: sweep the table, writing occupied slots out sequentially.
    let out = ctx.relation(out_name, distinct, 16);
    let mut cursor = 0u64;
    for s in 0..table.capacity() {
        let addr = table_slot_addr(&table, s);
        let key = ctx.mem.read_u64(addr);
        if key != EMPTY {
            let count = ctx.mem.read_u64(addr + 8);
            ctx.mem.touch(out.tuple(cursor), 16);
            ctx.mem.host_write_u64(out.tuple(cursor), key);
            ctx.mem.host_write_u64(out.tuple(cursor) + 8, count);
            ctx.count_ops(1);
            cursor += 1;
        }
    }
    debug_assert_eq!(cursor, distinct);
    out
}

fn table_slot_addr(table: &HashTable, slot: u64) -> gcm_sim::Addr {
    table.slot_addr(slot)
}

fn upsert_count<B: MemoryBackend>(ctx: &mut ExecContext<B>, table: &HashTable, key: u64) {
    upsert_add(ctx, table, key, 1);
}

/// Add `delta` to `key`'s count in a counting hash table, inserting the
/// key if absent (simulated accesses; linear probing). Also the merge
/// primitive of the parallel aggregation's per-thread partials
/// ([`crate::parallel`]).
pub(crate) fn upsert_add<B: MemoryBackend>(
    ctx: &mut ExecContext<B>,
    table: &HashTable,
    key: u64,
    delta: u64,
) {
    let mask = table.capacity() - 1;
    let mut slot = crate::ops::mix(key) & mask;
    loop {
        let addr = table_slot_addr(table, slot);
        let resident = ctx.mem.read_u64(addr);
        ctx.count_ops(1);
        if resident == key {
            let c = ctx.mem.read_u64(addr + 8);
            ctx.mem.write_u64(addr + 8, c + delta);
            return;
        }
        if resident == EMPTY {
            ctx.mem.touch(addr, 16);
            ctx.mem.host_write_u64(addr, key);
            ctx.mem.host_write_u64(addr + 8, delta);
            return;
        }
        slot = (slot + 1) & mask;
    }
}

/// Pattern of [`hash_group_count`]:
/// `s_trav(U) ⊙ r_acc(H, U.n) ⊕ s_trav(H) ⊙ s_trav(W)`.
pub fn hash_group_pattern(input: &Region, h: &Region, output: &Region) -> Pattern {
    library::hash_aggregate(input.clone(), h.clone(), output.clone())
}

/// Sort-based duplicate elimination: sorts the input in place, then
/// emits each distinct key once.
pub fn sort_dedup<B: MemoryBackend>(
    ctx: &mut ExecContext<B>,
    input: &Relation,
    out_name: &str,
) -> Relation {
    quick_sort(ctx, input);
    // Distinct count, host-side.
    let mut distinct = 0u64;
    {
        let mut prev = None;
        for i in 0..input.n() {
            let k = ctx.mem.host_read_u64(input.tuple(i));
            if prev != Some(k) {
                distinct += 1;
                prev = Some(k);
            }
        }
    }
    let out = ctx.relation(out_name, distinct, input.w());
    let mut cursor = 0u64;
    let mut prev = None;
    for i in 0..input.n() {
        let k = ctx.read_tuple(input, i);
        ctx.count_ops(1);
        if prev != Some(k) {
            ctx.copy_tuple(input, i, &out, cursor);
            cursor += 1;
            prev = Some(k);
        }
    }
    out
}

/// Pattern of [`sort_dedup`]: `quick_sort(U) ⊕ s_trav(U) ⊙ s_trav(W)`.
pub fn sort_dedup_pattern(input: &Region, output: &Region) -> Pattern {
    library::sort_aggregate(input.clone(), output.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcm_hardware::presets;
    use gcm_workload::Workload;

    fn ctx() -> ExecContext {
        ExecContext::new(presets::tiny())
    }

    #[test]
    fn group_counts_are_exact() {
        let mut c = ctx();
        let input = c.relation_from_keys("U", &[3, 1, 3, 2, 3, 1], 8);
        let out = hash_group_count(&mut c, &input, "G");
        assert_eq!(out.n(), 3);
        let mut groups: Vec<(u64, u64)> = (0..3)
            .map(|i| {
                (
                    c.mem.host().read_u64(out.tuple(i)),
                    c.mem.host().read_u64(out.tuple(i) + 8),
                )
            })
            .collect();
        groups.sort_unstable();
        assert_eq!(groups, [(1, 2), (2, 1), (3, 3)]);
    }

    #[test]
    fn group_count_skewed_input() {
        let mut c = ctx();
        let keys = Workload::new(30).zipf_keys(2000, 50, 1.0);
        let input = c.relation_from_keys("U", &keys, 8);
        let out = hash_group_count(&mut c, &input, "G");
        let total: u64 = (0..out.n())
            .map(|i| c.mem.host().read_u64(out.tuple(i) + 8))
            .sum();
        assert_eq!(total, 2000);
    }

    #[test]
    fn dedup_removes_duplicates() {
        let mut c = ctx();
        let input = c.relation_from_keys("U", &[5, 1, 5, 2, 1, 1], 8);
        let out = sort_dedup(&mut c, &input, "D");
        assert_eq!(out.n(), 3);
        let got: Vec<u64> = (0..3)
            .map(|i| c.mem.host().read_u64(out.tuple(i)))
            .collect();
        assert_eq!(got, [1, 2, 5]);
    }

    #[test]
    fn dedup_of_distinct_keys_is_identity_sized() {
        let mut c = ctx();
        let keys = Workload::new(31).shuffled_keys(500);
        let input = c.relation_from_keys("U", &keys, 8);
        let out = sort_dedup(&mut c, &input, "D");
        assert_eq!(out.n(), 500);
    }

    #[test]
    fn patterns_render() {
        let mut c = ctx();
        let u = c.relation("U", 100, 8);
        let h = c.relation("H", 64, 16);
        let w = c.relation("W", 32, 16);
        assert!(hash_group_pattern(u.region(), h.region(), w.region())
            .to_string()
            .contains("r_acc(H"));
        assert!(sort_dedup_pattern(u.region(), w.region())
            .to_string()
            .contains("⊕"));
    }
}
