//! Merge-join over sorted inputs (paper §6.2, Figure 7b): three
//! concurrent sequential traversals, `s_trav(U) ⊙ s_trav(V) ⊙ s_trav(W)`.

use crate::backend::MemoryBackend;
use crate::ctx::ExecContext;
use crate::relation::Relation;
use gcm_core::{library, Pattern, Region};

/// Join two key-sorted relations; emits one output tuple per matching
/// pair `(u.key == v.key)` into a fresh relation of width `out_w`
/// (key + zero payload). Handles duplicate keys on both sides.
///
/// Logical ops: one per cursor advance and one per emitted tuple.
pub fn merge_join<B: MemoryBackend>(
    ctx: &mut ExecContext<B>,
    u: &Relation,
    v: &Relation,
    out_name: &str,
    out_w: u64,
) -> Relation {
    // Unsorted inputs would silently produce garbage (the cursors only
    // move forward); fail fast in debug builds. Host-side reads, so the
    // check never perturbs the release-mode counters.
    debug_assert!(
        is_sorted_host(ctx, u),
        "merge_join: outer input {:?} is not key-sorted (sort it first, \
         or plan a Merge join with sort_u = true)",
        u.region().name()
    );
    debug_assert!(
        is_sorted_host(ctx, v),
        "merge_join: inner input {:?} is not key-sorted (sort it first, \
         or plan a Merge join with sort_v = true)",
        v.region().name()
    );
    // Cardinality oracle (host-side): count matches to size the output.
    let matches = count_matches_host(ctx, u, v);
    let out = ctx.relation(out_name, matches, out_w);

    let (mut i, mut j, mut o) = (0u64, 0u64, 0u64);
    while i < u.n() && j < v.n() {
        let ku = ctx.read_key(u, i);
        let kv = ctx.read_key(v, j);
        ctx.count_ops(1);
        if ku < kv {
            i += 1;
        } else if ku > kv {
            j += 1;
        } else {
            // Emit the full group product for duplicate keys.
            let j_start = j;
            let mut jj = j_start;
            while jj < v.n() && ctx.read_key(v, jj) == ku {
                ctx.write_tuple(&out, o, ku);
                ctx.count_ops(1);
                o += 1;
                jj += 1;
            }
            i += 1;
            // Advance j only when u has no duplicate of this key left.
            if i >= u.n() || ctx.mem.host_read_u64(u.tuple(i)) != ku {
                j = jj;
            }
        }
    }
    debug_assert_eq!(o, matches);
    out
}

/// Host-side sortedness check backing the debug assertions above
/// (branch-eliminated, but still referenced, in release builds).
fn is_sorted_host<B: MemoryBackend>(ctx: &ExecContext<B>, rel: &Relation) -> bool {
    (1..rel.n())
        .all(|i| ctx.mem.host_read_u64(rel.tuple(i - 1)) <= ctx.mem.host_read_u64(rel.tuple(i)))
}

fn count_matches_host<B: MemoryBackend>(ctx: &ExecContext<B>, u: &Relation, v: &Relation) -> u64 {
    let (mut i, mut j, mut m) = (0u64, 0u64, 0u64);
    let host = &ctx.mem;
    while i < u.n() && j < v.n() {
        let ku = host.host_read_u64(u.tuple(i));
        let kv = host.host_read_u64(v.tuple(j));
        if ku < kv {
            i += 1;
        } else if ku > kv {
            j += 1;
        } else {
            let mut jj = j;
            while jj < v.n() && host.host_read_u64(v.tuple(jj)) == ku {
                m += 1;
                jj += 1;
            }
            i += 1;
            if i >= u.n() || host.host_read_u64(u.tuple(i)) != ku {
                j = jj;
            }
        }
    }
    m
}

/// Pattern of [`merge_join`]: `s_trav(U) ⊙ s_trav(V) ⊙ s_trav(W)`.
pub fn merge_join_pattern(u: &Region, v: &Region, w: &Region) -> Pattern {
    library::merge_join(u.clone(), v.clone(), w.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcm_hardware::presets;

    fn ctx() -> ExecContext {
        ExecContext::new(presets::tiny())
    }

    #[test]
    fn one_to_one_match() {
        let mut c = ctx();
        let u = c.relation_from_keys("U", &[1, 2, 3, 4, 5], 8);
        let v = c.relation_from_keys("V", &[1, 2, 3, 4, 5], 8);
        let w = merge_join(&mut c, &u, &v, "W", 16);
        assert_eq!(w.n(), 5);
        for i in 0..5 {
            assert_eq!(c.mem.host().read_u64(w.tuple(i)), i + 1);
        }
    }

    #[test]
    fn partial_overlap() {
        let mut c = ctx();
        let u = c.relation_from_keys("U", &[1, 3, 5, 7], 8);
        let v = c.relation_from_keys("V", &[2, 3, 4, 7, 9], 8);
        let w = merge_join(&mut c, &u, &v, "W", 16);
        assert_eq!(w.n(), 2);
        assert_eq!(c.mem.host().read_u64(w.tuple(0)), 3);
        assert_eq!(c.mem.host().read_u64(w.tuple(1)), 7);
    }

    #[test]
    fn duplicates_produce_products() {
        let mut c = ctx();
        let u = c.relation_from_keys("U", &[2, 2, 3], 8);
        let v = c.relation_from_keys("V", &[2, 2, 2, 3], 8);
        let w = merge_join(&mut c, &u, &v, "W", 16);
        // 2×3 for key 2 plus 1×1 for key 3.
        assert_eq!(w.n(), 7);
    }

    #[test]
    fn disjoint_inputs_produce_nothing() {
        let mut c = ctx();
        let u = c.relation_from_keys("U", &[1, 2], 8);
        let v = c.relation_from_keys("V", &[3, 4], 8);
        let w = merge_join(&mut c, &u, &v, "W", 16);
        assert_eq!(w.n(), 0);
    }

    #[test]
    fn empty_input() {
        let mut c = ctx();
        let u = c.relation("U", 0, 8);
        let v = c.relation_from_keys("V", &[1], 8);
        let w = merge_join(&mut c, &u, &v, "W", 16);
        assert_eq!(w.n(), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "is not key-sorted")]
    fn unsorted_input_is_rejected_in_debug() {
        let mut c = ctx();
        let u = c.relation_from_keys("U", &[3, 1, 2], 8);
        let v = c.relation_from_keys("V", &[1, 2, 3], 8);
        let _ = merge_join(&mut c, &u, &v, "W", 16);
    }

    #[test]
    fn misses_are_sequential_and_linear() {
        // Merge-join's accesses are pure streams: sequential misses
        // dominate and cost scales linearly with input size (§6.2).
        let mut c = ctx();
        let keys: Vec<u64> = (0..4096).collect();
        let u = c.relation_from_keys("U", &keys, 8);
        let v = c.relation_from_keys("V", &keys, 8);
        let (_, stats) = c.measure(|c| {
            merge_join(c, &u, &v, "W", 16);
        });
        let l1 = c.mem.spec().level_index("L1").unwrap();
        let s = stats.mem.levels[l1];
        assert!(
            s.seq_misses > 10 * s.rand_misses,
            "sequential misses must dominate: {s}"
        );
    }

    #[test]
    fn pattern_renders() {
        let mut c = ctx();
        let u = c.relation("U", 10, 8);
        let v = c.relation("V", 10, 8);
        let w = c.relation("W", 10, 16);
        assert_eq!(
            merge_join_pattern(u.region(), v.region(), w.region()).to_string(),
            "s_trav(U) ⊙ s_trav(V) ⊙ s_trav(W)"
        );
    }
}
