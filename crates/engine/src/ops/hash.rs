//! Hash table and hash-join (paper §6.2, Figure 7c).
//!
//! The hash table is a single open-addressing region `H` (linear probing,
//! load factor ≤ ½) of 16-byte entries `[key, value]`. A "good" hash
//! function destroys any input order, so both building and probing hop
//! through `H` at effectively random positions — which is exactly how the
//! model describes them (§3.2):
//!
//! ```text
//! hash_join(U, V) = s_trav(V) ⊙ r_trav(H)            (build)
//!                 ⊕ s_trav(U) ⊙ r_acc(H, U.n) ⊙ s_trav(W)   (probe)
//! ```

use crate::backend::MemoryBackend;
use crate::ctx::ExecContext;
use crate::ops::mix;
use crate::relation::Relation;
use gcm_core::{library, Pattern, Region};

/// Sentinel key marking an empty slot. Workload keys must differ from it.
pub const EMPTY: u64 = u64::MAX;

/// Entry width: `[key: u64, value: u64]`.
pub const ENTRY_BYTES: u64 = 16;

/// Table capacity in slots for `items` entries at load factor ≤ ½: the
/// next power of two ≥ 2·items. The one sizing rule shared by the real
/// tables ([`HashTable::alloc`]) and every model-side table region, so
/// predictions can never drift from the executed table size.
pub fn table_slots(items: u64) -> u64 {
    (2 * items.max(1)).next_power_of_two()
}

/// An open-addressing hash table in simulated memory.
#[derive(Debug)]
pub struct HashTable {
    slots: Relation,
    mask: u64,
}

impl HashTable {
    /// Allocate an empty table sized for `items` entries at load factor
    /// ≤ ½ (capacity = next power of two ≥ 2·items). The empty-slot
    /// sentinel fill is host-side setup.
    pub fn alloc<B: MemoryBackend>(ctx: &mut ExecContext<B>, name: &str, items: u64) -> HashTable {
        let capacity = table_slots(items);
        let slots = ctx.relation(name, capacity, ENTRY_BYTES);
        for i in 0..capacity {
            ctx.mem.host_write_u64(slots.tuple(i), EMPTY);
        }
        HashTable {
            slots,
            mask: capacity - 1,
        }
    }

    /// Table capacity in slots.
    pub fn capacity(&self) -> u64 {
        self.mask + 1
    }

    /// The model region describing the table.
    pub fn region(&self) -> &Region {
        self.slots.region()
    }

    /// Size in bytes, `||H||`.
    pub fn bytes(&self) -> u64 {
        self.slots.bytes()
    }

    /// Address of slot `slot` (for operators updating entries in place).
    pub fn slot_addr(&self, slot: u64) -> gcm_sim::Addr {
        self.slots.tuple(slot)
    }

    /// Insert `key → value` (simulated accesses; linear probing).
    /// Duplicate keys are stored in separate slots.
    pub fn insert<B: MemoryBackend>(
        ctx: &mut ExecContext<B>,
        table: &HashTable,
        key: u64,
        value: u64,
    ) {
        debug_assert_ne!(key, EMPTY);
        let mut slot = mix(key) & table.mask;
        loop {
            let addr = table.slots.tuple(slot);
            let resident = ctx.mem.read_u64(addr);
            ctx.count_ops(1);
            if resident == EMPTY {
                ctx.mem.touch(addr, ENTRY_BYTES);
                ctx.mem.host_write_u64(addr, key);
                ctx.mem.host_write_u64(addr + 8, value);
                return;
            }
            slot = (slot + 1) & table.mask;
        }
    }

    /// Probe for `key`; returns the first matching value (simulated).
    pub fn probe<B: MemoryBackend>(
        ctx: &mut ExecContext<B>,
        table: &HashTable,
        key: u64,
    ) -> Option<u64> {
        let mut slot = mix(key) & table.mask;
        loop {
            let addr = table.slots.tuple(slot);
            let resident = ctx.mem.read_u64(addr);
            ctx.count_ops(1);
            if resident == key {
                return Some(ctx.mem.read_u64(addr + 8));
            }
            if resident == EMPTY {
                return None;
            }
            slot = (slot + 1) & table.mask;
        }
    }

    /// Probe for `key`, visiting *all* matches (duplicate build keys) via
    /// `visit(value)` (simulated).
    pub fn probe_all<B: MemoryBackend>(
        ctx: &mut ExecContext<B>,
        table: &HashTable,
        key: u64,
        mut visit: impl FnMut(&mut ExecContext<B>, u64),
    ) {
        let mut slot = mix(key) & table.mask;
        loop {
            let addr = table.slots.tuple(slot);
            let resident = ctx.mem.read_u64(addr);
            ctx.count_ops(1);
            if resident == EMPTY {
                return;
            }
            if resident == key {
                let v = ctx.mem.read_u64(addr + 8);
                visit(ctx, v);
            }
            slot = (slot + 1) & table.mask;
        }
    }
}

/// CPU-operation estimate of the build phase over `items` inner tuples
/// — the build's share of the planner's hash-join `ops` (read + hash +
/// probe step + store per tuple). The service subtracts exactly this
/// share when a query reuses a shared build instead of building.
pub fn build_ops(items: u64) -> u64 {
    4 * items
}

/// The slot array `[key₀, value₀, key₁, value₁, …]` (EMPTY-filled) that
/// [`build_hash`] over a relation with these keys produces — computed
/// host-side, a **pure function of the key sequence**. Because the
/// layout is deterministic, co-admitted queries probing the same table
/// can share one immutable build and still produce byte-identical join
/// output (probing visits slots in the same order either way).
pub fn build_layout(keys: &[u64]) -> Vec<u64> {
    let capacity = table_slots(keys.len() as u64);
    let mask = capacity - 1;
    // Empty slots carry the EMPTY key and a zero value word — the same
    // bytes [`HashTable::alloc`] leaves behind (it sentinel-fills only
    // the key word of each slot; fresh memory is zeroed).
    let mut slots = vec![0u64; 2 * capacity as usize];
    for i in 0..capacity as usize {
        slots[2 * i] = EMPTY;
    }
    for (i, &key) in keys.iter().enumerate() {
        debug_assert_ne!(key, EMPTY);
        let mut slot = mix(key) & mask;
        while slots[2 * slot as usize] != EMPTY {
            slot = (slot + 1) & mask;
        }
        slots[2 * slot as usize] = key;
        slots[2 * slot as usize + 1] = i as u64;
    }
    slots
}

impl HashTable {
    /// Materialize a pre-computed [`build_layout`] into memory as
    /// host-side setup — the reuse path of a shared build: no charged
    /// build accesses, identical bytes to what [`build_hash`] would
    /// have produced.
    pub fn from_layout<B: MemoryBackend>(
        ctx: &mut ExecContext<B>,
        name: &str,
        layout: &[u64],
    ) -> HashTable {
        let capacity = (layout.len() / 2) as u64;
        debug_assert!(capacity.is_power_of_two());
        let slots = ctx.relation(name, capacity, ENTRY_BYTES);
        for (i, pair) in layout.chunks_exact(2).enumerate() {
            let addr = slots.tuple(i as u64);
            ctx.mem.host_write_u64(addr, pair[0]);
            ctx.mem.host_write_u64(addr + 8, pair[1]);
        }
        HashTable {
            slots,
            mask: capacity - 1,
        }
    }
}

/// Build a hash table over `v` (value = tuple index), reading the full
/// inner tuples sequentially.
///
/// On backends that advertise a prefetch distance, the home slot of the
/// key N tuples ahead is software-prefetched before each insert — the
/// build's table stores land at effectively random lines, so the hint
/// overlaps their misses with the current insert's work. (Peeking the
/// future key is an uncharged hint computation; the charged accesses
/// are unchanged, and the simulator's distance of 0 skips it entirely.)
pub fn build_hash<B: MemoryBackend>(
    ctx: &mut ExecContext<B>,
    v: &Relation,
    name: &str,
) -> HashTable {
    let table = HashTable::alloc(ctx, name, v.n());
    let dist = ctx.mem.prefetch_distance();
    for i in 0..v.n() {
        if dist > 0 && i + dist < v.n() {
            let ahead = ctx.mem.host_read_u64(v.tuple(i + dist));
            ctx.mem
                .prefetch_write(table.slots.tuple(mix(ahead) & table.mask));
        }
        let key = ctx.read_tuple(v, i);
        HashTable::insert(ctx, &table, key, i);
    }
    table
}

/// Hash-join `u ⋈ v` (equal keys): builds on `v`, probes with `u`, writes
/// one `out_w`-byte tuple per match.
pub fn hash_join<B: MemoryBackend>(
    ctx: &mut ExecContext<B>,
    u: &Relation,
    v: &Relation,
    out_name: &str,
    out_w: u64,
) -> Relation {
    let table = build_hash(ctx, v, &format!("H({out_name})"));
    hash_join_with_table(ctx, u, &table, out_name, out_w)
}

/// The probe phase only, against a pre-built table.
pub fn hash_join_with_table<B: MemoryBackend>(
    ctx: &mut ExecContext<B>,
    u: &Relation,
    table: &HashTable,
    out_name: &str,
    out_w: u64,
) -> Relation {
    // Cardinality oracle: host-side count of matches. The oracle's
    // random table reads are real loads on native memory, so it gets
    // the same N-ahead hint as the charged probe below (uncharged, and
    // skipped entirely at the simulator's distance of 0).
    let dist = ctx.mem.prefetch_distance();
    let mut matches = 0u64;
    for i in 0..u.n() {
        if dist > 0 && i + dist < u.n() {
            let ahead = ctx.mem.host_read_u64(u.tuple(i + dist));
            ctx.mem
                .prefetch_read(table.slots.tuple(mix(ahead) & table.mask));
        }
        let key = ctx.mem.host_read_u64(u.tuple(i));
        let mut slot = mix(key) & table.mask;
        loop {
            let resident = ctx.mem.host_read_u64(table.slots.tuple(slot));
            if resident == EMPTY {
                break;
            }
            if resident == key {
                matches += 1;
            }
            slot = (slot + 1) & table.mask;
        }
    }
    let out = ctx.relation(out_name, matches, out_w);
    let mut cursor = 0u64;
    // Probe with N-ahead software prefetch of the home slot of the key
    // `dist` tuples ahead: the probe's dependent random table loads are
    // exactly what the paper prices as `r_acc(H)`, and the hint is what
    // lets an out-of-order core overlap them.
    for i in 0..u.n() {
        if dist > 0 && i + dist < u.n() {
            let ahead = ctx.mem.host_read_u64(u.tuple(i + dist));
            ctx.mem
                .prefetch_read(table.slots.tuple(mix(ahead) & table.mask));
        }
        let key = ctx.read_tuple(u, i);
        HashTable::probe_all(ctx, table, key, |ctx, _v| {
            ctx.write_tuple(&out, cursor, key);
            ctx.count_ops(1);
            cursor += 1;
        });
    }
    debug_assert_eq!(cursor, matches);
    out
}

/// Pattern of [`build_hash`]: `s_trav(V) ⊙ r_trav(H)`.
pub fn build_hash_pattern(v: &Region, h: &Region) -> Pattern {
    library::build_hash(v.clone(), h.clone())
}

/// Pattern of [`hash_join`]:
/// `s_trav(V) ⊙ r_trav(H) ⊕ s_trav(U) ⊙ r_acc(H, U.n) ⊙ s_trav(W)`.
pub fn hash_join_pattern(u: &Region, v: &Region, h: &Region, w: &Region) -> Pattern {
    library::hash_join(u.clone(), v.clone(), h.clone(), w.clone())
}

/// Pattern of [`hash_join_with_table`] — the probe phase alone, for a
/// query reusing a shared build: `s_trav(U) ⊙ r_acc(H, U.n) ⊙ s_trav(W)`.
pub fn probe_hash_pattern(u: &Region, h: &Region, w: &Region) -> Pattern {
    library::probe_hash(u.clone(), h.clone(), w.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcm_hardware::presets;
    use gcm_workload::Workload;

    fn ctx() -> ExecContext {
        ExecContext::new(presets::tiny())
    }

    #[test]
    fn insert_then_probe() {
        let mut c = ctx();
        let t = HashTable::alloc(&mut c, "H", 16);
        HashTable::insert(&mut c, &t, 42, 7);
        HashTable::insert(&mut c, &t, 43, 8);
        assert_eq!(HashTable::probe(&mut c, &t, 42), Some(7));
        assert_eq!(HashTable::probe(&mut c, &t, 43), Some(8));
        assert_eq!(HashTable::probe(&mut c, &t, 44), None);
    }

    #[test]
    fn capacity_is_power_of_two_with_headroom() {
        let mut c = ctx();
        let t = HashTable::alloc(&mut c, "H", 100);
        assert_eq!(t.capacity(), 256);
        assert!(t.capacity().is_power_of_two());
    }

    #[test]
    fn many_inserts_all_findable() {
        let mut c = ctx();
        let t = HashTable::alloc(&mut c, "H", 1000);
        for k in 0..1000 {
            HashTable::insert(&mut c, &t, k, k * 3);
        }
        for k in 0..1000 {
            assert_eq!(HashTable::probe(&mut c, &t, k), Some(k * 3));
        }
        assert_eq!(HashTable::probe(&mut c, &t, 1001), None);
    }

    #[test]
    fn duplicate_keys_all_visited() {
        let mut c = ctx();
        let t = HashTable::alloc(&mut c, "H", 8);
        HashTable::insert(&mut c, &t, 5, 10);
        HashTable::insert(&mut c, &t, 5, 11);
        let mut seen = Vec::new();
        HashTable::probe_all(&mut c, &t, 5, |_, v| seen.push(v));
        seen.sort_unstable();
        assert_eq!(seen, [10, 11]);
    }

    #[test]
    fn hash_join_one_to_one() {
        let mut c = ctx();
        let mut wl = Workload::new(5);
        let (uk, vk) = wl.join_pair(500);
        let u = c.relation_from_keys("U", &uk, 8);
        let v = c.relation_from_keys("V", &vk, 8);
        let out = hash_join(&mut c, &u, &v, "W", 16);
        assert_eq!(out.n(), 500);
        let mut keys: Vec<u64> = (0..500)
            .map(|i| c.mem.host().read_u64(out.tuple(i)))
            .collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..500).collect::<Vec<u64>>());
    }

    #[test]
    fn hash_join_partial_match() {
        let mut c = ctx();
        let u = c.relation_from_keys("U", &[1, 2, 3, 100], 8);
        let v = c.relation_from_keys("V", &[2, 3, 4], 8);
        let out = hash_join(&mut c, &u, &v, "W", 16);
        assert_eq!(out.n(), 2);
    }

    #[test]
    fn hash_join_empty_sides() {
        let mut c = ctx();
        let u = c.relation("U", 0, 8);
        let v = c.relation_from_keys("V", &[1], 8);
        assert_eq!(hash_join(&mut c, &u, &v, "W", 16).n(), 0);
        let u2 = c.relation_from_keys("U2", &[1], 8);
        let v2 = c.relation("V2", 0, 8);
        assert_eq!(hash_join(&mut c, &u2, &v2, "W2", 16).n(), 1 - 1);
    }

    #[test]
    fn probe_misses_jump_when_table_exceeds_cache() {
        // The Fig 7c cliff, in miniature: per-probe misses grow once
        // ||H|| > C2 (tiny L2 = 16 KB).
        let per_probe_l2 = |n: u64| {
            let mut c = ctx();
            let mut wl = Workload::new(6);
            let (uk, vk) = wl.join_pair(n as usize);
            let u = c.relation_from_keys("U", &uk, 8);
            let v = c.relation_from_keys("V", &vk, 8);
            // Probe against the still-warm table (the paper's hash-join
            // probes right after building): a fitting table then probes
            // nearly free, an oversized one misses per probe.
            let table = build_hash(&mut c, &v, "H");
            let (_, stats) = c.measure(|c| {
                for i in 0..u.n() {
                    let key = c.read_tuple(&u, i);
                    HashTable::probe(c, &table, key);
                }
            });
            let l2 = c.mem.spec().level_index("L2").unwrap();
            stats.misses_at(l2) as f64 / n as f64
        };
        let small = per_probe_l2(256); // H = 16 KB·½ — fits L2
        let large = per_probe_l2(8192); // H = 512 KB ≫ L2
        assert!(
            large > 4.0 * small,
            "per-probe L2 misses must cliff: {small:.3} -> {large:.3}"
        );
    }

    #[test]
    fn layout_is_byte_identical_to_a_charged_build() {
        // The shared-build contract: materializing `build_layout` must
        // reproduce a charged `build_hash` bit for bit, so sharing a
        // build can never change join results.
        let mut c = ctx();
        let mut wl = Workload::new(11);
        let keys = wl.shuffled_keys(1_000);
        let v = c.relation_from_keys("V", &keys, 8);
        let built = build_hash(&mut c, &v, "H");
        let layout = build_layout(&keys);
        let shared = HashTable::from_layout(&mut c, "Hs", &layout);
        assert_eq!(built.capacity(), shared.capacity());
        assert_eq!(
            c.relation_bytes(&built.slots),
            c.relation_bytes(&shared.slots),
            "layout must match the charged build byte for byte"
        );
        // And the layout probes correctly.
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(HashTable::probe(&mut c, &shared, k), Some(i as u64));
        }
    }

    #[test]
    fn pattern_renders() {
        let mut c = ctx();
        let u = c.relation("U", 10, 8);
        let v = c.relation("V", 10, 8);
        let h = c.relation("H", 32, 16);
        let w = c.relation("W", 10, 16);
        let p = hash_join_pattern(u.region(), v.region(), h.region(), w.region());
        assert_eq!(
            p.to_string(),
            "s_trav(V) ⊙ r_trav(H) ⊕ s_trav(U) ⊙ r_acc(H, 10) ⊙ s_trav(W)"
        );
    }
}
