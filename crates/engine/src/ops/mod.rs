//! The database operators of the paper's experiments (§6), each with:
//!
//! * `run(...)` — the real implementation, executing over simulated
//!   memory (results are bit-exact and tested against host-side
//!   references), and
//! * `pattern(...)` — its self-description in the access-pattern language
//!   (the paper's Table 2), from which [`gcm_core::CostModel`] derives the
//!   predicted cost.
//!
//! That pairing is the point of the reproduction: the validation
//! experiments compare the simulator-measured misses/time of `run` with
//! the model-predicted misses/time of `pattern`.

pub mod aggregate;
pub mod btree;
pub mod hash;
pub mod merge_join;
pub mod nl_join;
pub mod part_hash_join;
pub mod partition;
pub mod radix;
pub mod scan;
pub mod set_ops;
pub mod sort;

/// 64-bit finalizer (SplitMix64's) used as the engine's hash function: a
/// "good" hash in the paper's sense — it destroys any input order, which
/// is exactly why the model treats hash-table access as random (§3.2).
#[inline]
pub fn mix(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::mix;

    #[test]
    fn mix_is_deterministic_and_spreading() {
        assert_eq!(mix(1), mix(1));
        assert_ne!(mix(1), mix(2));
        // Low bits of sequential keys must decorrelate.
        let mut buckets = [0u32; 16];
        for k in 0..16_000u64 {
            buckets[(mix(k) & 15) as usize] += 1;
        }
        for b in buckets {
            assert!((800..1200).contains(&b), "bucket {b}");
        }
    }
}
