//! Table scan, selection and projection: the purely sequential unary
//! operators (paper §3.2).

use crate::backend::MemoryBackend;
use crate::ctx::ExecContext;
use crate::relation::{Relation, KEY_BYTES};
use gcm_core::{library, Pattern, Region};

/// Scan the relation and sum the keys, touching `u` bytes of each tuple
/// (`u = 8` reads just the key; `u = rel.w()` reads whole tuples).
///
/// Routed through [`MemoryBackend::scan_sum_bulk`]: the simulator's
/// default replays the historical per-tuple charged loop bit-for-bit,
/// while the native backend substitutes a SIMD sweep for the dense
/// key-only case. Logical ops: one per tuple, on every backend.
pub fn scan_sum<B: MemoryBackend>(ctx: &mut ExecContext<B>, rel: &Relation, u: u64) -> u64 {
    let u = u.clamp(KEY_BYTES, rel.w());
    let sum = ctx.mem.scan_sum_bulk(rel.base(), rel.n(), rel.w(), u);
    ctx.count_ops(rel.n());
    sum
}

/// Pattern of [`scan_sum`]: `s_trav(U, u)`, with `u` clamped to the
/// *same* `[8, w]` range the executor enforces (it must read the 8-byte
/// key of every tuple, so `u < 8` still touches 8 bytes) — model and
/// executor can never disagree on the touched width.
pub fn scan_pattern(input: &Region, u: u64) -> Pattern {
    let lo = KEY_BYTES.min(input.w.max(1));
    Pattern::s_trav_u(input.clone(), u.clamp(lo, input.w.max(lo)))
}

/// Select tuples with `key < threshold` into a fresh output relation
/// (exact-sized; the qualifying count is precomputed host-side, which
/// costs no simulated accesses — mirroring an exact-cardinality oracle,
/// as the paper assumes for the logical cost component, §1).
pub fn select_lt<B: MemoryBackend>(
    ctx: &mut ExecContext<B>,
    rel: &Relation,
    threshold: u64,
    out_name: &str,
) -> Relation {
    // Host-side count (cardinality oracle).
    let mut hits = 0u64;
    for i in 0..rel.n() {
        if ctx.mem.host_read_u64(rel.tuple(i)) < threshold {
            hits += 1;
        }
    }
    let out = ctx.relation(out_name, hits, rel.w());
    // Charged pass through the backend's bulk filter: the default is
    // the historical per-tuple touch-then-copy loop; the native backend
    // vectorizes the predicate. Logical ops: one per input tuple.
    let copied =
        ctx.mem
            .select_lt_bulk(rel.base(), rel.n(), rel.w(), threshold, out.base(), out.w());
    ctx.count_ops(rel.n());
    debug_assert_eq!(copied, hits, "oracle and charged pass must agree");
    out
}

/// Pattern of [`select_lt`]: `s_trav(U) ⊙ s_trav(W)`.
pub fn select_pattern(input: &Region, output: &Region) -> Pattern {
    library::select(input.clone(), output.clone())
}

/// Project the first `u` bytes of every tuple into an output relation of
/// width `u`.
pub fn project<B: MemoryBackend>(
    ctx: &mut ExecContext<B>,
    rel: &Relation,
    u: u64,
    out_name: &str,
) -> Relation {
    assert!((8..=rel.w()).contains(&u), "projection width must be 8..=w");
    let out = ctx.relation(out_name, rel.n(), u);
    for i in 0..rel.n() {
        let src = rel.tuple(i);
        ctx.mem.touch(src, u);
        let dst = out.tuple(i);
        ctx.mem.touch(dst, u);
        let key = ctx.mem.host_read_u64(src);
        ctx.mem.host_write_u64(dst, key);
        ctx.count_ops(1);
    }
    out
}

/// Pattern of [`project`]: `s_trav(U, u) ⊙ s_trav(W)`.
pub fn project_pattern(input: &Region, u: u64, output: &Region) -> Pattern {
    library::project(input.clone(), u, output.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcm_hardware::presets;

    fn ctx() -> ExecContext {
        ExecContext::new(presets::tiny())
    }

    #[test]
    fn scan_sums_keys() {
        let mut c = ctx();
        let rel = c.relation_from_keys("R", &[1, 2, 3, 4], 16);
        assert_eq!(scan_sum(&mut c, &rel, 8), 10);
        assert_eq!(c.ops(), 4);
    }

    #[test]
    fn scan_narrow_touch_misses_less() {
        // u = 8 on wide tuples must touch fewer lines than u = w.
        let mut c = ctx();
        let keys: Vec<u64> = (0..512).collect();
        let rel = c.relation_from_keys("R", &keys, 128);
        let (_, narrow) = c.measure(|c| {
            scan_sum(c, &rel, 8);
        });
        c.cold_caches();
        let (_, full) = c.measure(|c| {
            scan_sum(c, &rel, 128);
        });
        assert!(narrow.mem.total_misses() < full.mem.total_misses());
    }

    #[test]
    fn select_filters_correctly() {
        let mut c = ctx();
        let rel = c.relation_from_keys("R", &[5, 1, 9, 3, 7], 16);
        let out = select_lt(&mut c, &rel, 6, "W");
        assert_eq!(out.n(), 3);
        let got: Vec<u64> = (0..3)
            .map(|i| c.mem.host().read_u64(out.tuple(i)))
            .collect();
        assert_eq!(got, [5, 1, 3]);
    }

    #[test]
    fn select_empty_result() {
        let mut c = ctx();
        let rel = c.relation_from_keys("R", &[5, 6], 16);
        let out = select_lt(&mut c, &rel, 0, "W");
        assert_eq!(out.n(), 0);
    }

    #[test]
    fn project_copies_keys() {
        let mut c = ctx();
        let rel = c.relation_from_keys("R", &[4, 5, 6], 32);
        let out = project(&mut c, &rel, 8, "P");
        assert_eq!(out.w(), 8);
        for i in 0..3 {
            assert_eq!(c.mem.host().read_u64(out.tuple(i)), 4 + i);
        }
    }

    #[test]
    fn pattern_clamp_matches_executor_clamp() {
        // Regression: the executor reads at least the 8-byte key per
        // tuple, so the model must price u < 8 as u = 8 — previously it
        // clamped to [1, w] and under-predicted narrow scans.
        let r = Region::new("R", 1024, 128);
        for u in [0u64, 1, 4, 7] {
            assert_eq!(
                scan_pattern(&r, u).to_string(),
                scan_pattern(&r, 8).to_string(),
                "u = {u} must price like u = 8"
            );
        }
        // In range and above-w clamps are unchanged.
        assert_eq!(scan_pattern(&r, 64).to_string(), "s_trav(R, u=64)");
        // Clamped to u = w, which renders as a plain full-width s_trav.
        assert_eq!(scan_pattern(&r, 4096).to_string(), "s_trav(R)");
    }

    #[test]
    fn patterns_render() {
        let mut c = ctx();
        let rel = c.relation_from_keys("R", &[1, 2], 16);
        assert_eq!(scan_pattern(rel.region(), 8).to_string(), "s_trav(R, u=8)");
        let out = c.relation("W", 2, 16);
        assert!(select_pattern(rel.region(), out.region())
            .to_string()
            .contains("⊙"));
    }
}
