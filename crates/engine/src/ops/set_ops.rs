//! Set operations over sorted inputs (paper §3.2: "the appropriate
//! treatment of union, intersection and set-difference can be derived
//! respectively" from the binary-operator discussion).
//!
//! All three are single merge passes — three concurrent sequential
//! traversals, like merge-join:
//!
//! ```text
//! union/intersect/diff(U, V) = s_trav(U) ⊙ s_trav(V) ⊙ s_trav(W)
//! ```
//!
//! only the output cardinality differs (which the logical-cost oracle
//! provides, §1).

use crate::backend::MemoryBackend;
use crate::ctx::ExecContext;
use crate::relation::Relation;
use gcm_core::{library, Pattern, Region};

/// Which set operation a merge pass performs (set semantics: inputs are
/// treated as sets; duplicates within an input collapse).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    /// Keys present in either input.
    Union,
    /// Keys present in both inputs.
    Intersect,
    /// Keys present in the left input but not the right.
    Difference,
}

fn advance_dups<B: MemoryBackend>(
    ctx: &ExecContext<B>,
    rel: &Relation,
    mut i: u64,
    key: u64,
) -> u64 {
    while i < rel.n() && ctx.mem.host_read_u64(rel.tuple(i)) == key {
        i += 1;
    }
    i
}

fn count_host<B: MemoryBackend>(
    ctx: &ExecContext<B>,
    u: &Relation,
    v: &Relation,
    op: SetOp,
) -> u64 {
    let (mut i, mut j, mut out) = (0u64, 0u64, 0u64);
    let host = &ctx.mem;
    while i < u.n() || j < v.n() {
        let ku = (i < u.n()).then(|| host.host_read_u64(u.tuple(i)));
        let kv = (j < v.n()).then(|| host.host_read_u64(v.tuple(j)));
        match (ku, kv) {
            (Some(a), Some(b)) if a == b => {
                if matches!(op, SetOp::Union | SetOp::Intersect) {
                    out += 1;
                }
                i = advance_dups(ctx, u, i, a);
                j = advance_dups(ctx, v, j, b);
            }
            (Some(a), Some(b)) if a < b => {
                if matches!(op, SetOp::Union | SetOp::Difference) {
                    out += 1;
                }
                i = advance_dups(ctx, u, i, a);
            }
            (Some(_), Some(b)) => {
                if matches!(op, SetOp::Union) {
                    out += 1;
                }
                j = advance_dups(ctx, v, j, b);
            }
            (Some(a), None) => {
                if matches!(op, SetOp::Union | SetOp::Difference) {
                    out += 1;
                }
                i = advance_dups(ctx, u, i, a);
            }
            (None, Some(b)) => {
                if matches!(op, SetOp::Union) {
                    out += 1;
                }
                j = advance_dups(ctx, v, j, b);
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
    out
}

/// Execute `op` over two key-sorted relations, producing a sorted,
/// duplicate-free output of the same tuple width as `u`.
pub fn set_op<B: MemoryBackend>(
    ctx: &mut ExecContext<B>,
    u: &Relation,
    v: &Relation,
    op: SetOp,
    out_name: &str,
) -> Relation {
    let out_n = count_host(ctx, u, v, op);
    let out = ctx.relation(out_name, out_n, u.w());
    let (mut i, mut j, mut cursor) = (0u64, 0u64, 0u64);
    let emit = |ctx: &mut ExecContext<B>, key: u64, cursor: &mut u64| {
        ctx.write_tuple(&out, *cursor, key);
        ctx.count_ops(1);
        *cursor += 1;
    };
    while i < u.n() || j < v.n() {
        let ku = (i < u.n()).then(|| ctx.read_key(u, i));
        let kv = (j < v.n()).then(|| ctx.read_key(v, j));
        ctx.count_ops(1);
        match (ku, kv) {
            (Some(a), Some(b)) if a == b => {
                if matches!(op, SetOp::Union | SetOp::Intersect) {
                    emit(ctx, a, &mut cursor);
                }
                i = advance_dups(ctx, u, i, a);
                j = advance_dups(ctx, v, j, b);
            }
            (Some(a), Some(b)) if a < b => {
                if matches!(op, SetOp::Union | SetOp::Difference) {
                    emit(ctx, a, &mut cursor);
                }
                i = advance_dups(ctx, u, i, a);
            }
            (Some(_), Some(b)) => {
                if matches!(op, SetOp::Union) {
                    emit(ctx, b, &mut cursor);
                }
                j = advance_dups(ctx, v, j, b);
            }
            (Some(a), None) => {
                if matches!(op, SetOp::Union | SetOp::Difference) {
                    emit(ctx, a, &mut cursor);
                }
                i = advance_dups(ctx, u, i, a);
            }
            (None, Some(b)) => {
                if matches!(op, SetOp::Union) {
                    emit(ctx, b, &mut cursor);
                }
                j = advance_dups(ctx, v, j, b);
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
    debug_assert_eq!(cursor, out_n);
    out
}

/// Pattern of any [`set_op`]: `s_trav(U) ⊙ s_trav(V) ⊙ s_trav(W)` —
/// identical to merge-join's; only `W.n` differs.
pub fn set_op_pattern(u: &Region, v: &Region, w: &Region) -> Pattern {
    library::merge_join(u.clone(), v.clone(), w.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcm_hardware::presets;

    fn ctx() -> ExecContext {
        ExecContext::new(presets::tiny())
    }

    fn keys_of(c: &ExecContext, rel: &Relation) -> Vec<u64> {
        (0..rel.n())
            .map(|i| c.mem.host().read_u64(rel.tuple(i)))
            .collect()
    }

    #[test]
    fn union_merges_and_dedups() {
        let mut c = ctx();
        let u = c.relation_from_keys("U", &[1, 3, 3, 5], 8);
        let v = c.relation_from_keys("V", &[2, 3, 6], 8);
        let w = set_op(&mut c, &u, &v, SetOp::Union, "W");
        assert_eq!(keys_of(&c, &w), [1, 2, 3, 5, 6]);
    }

    #[test]
    fn intersect_keeps_common() {
        let mut c = ctx();
        let u = c.relation_from_keys("U", &[1, 2, 4, 8], 8);
        let v = c.relation_from_keys("V", &[2, 3, 4, 9], 8);
        let w = set_op(&mut c, &u, &v, SetOp::Intersect, "W");
        assert_eq!(keys_of(&c, &w), [2, 4]);
    }

    #[test]
    fn difference_keeps_left_only() {
        let mut c = ctx();
        let u = c.relation_from_keys("U", &[1, 2, 4, 8], 8);
        let v = c.relation_from_keys("V", &[2, 3, 4], 8);
        let w = set_op(&mut c, &u, &v, SetOp::Difference, "W");
        assert_eq!(keys_of(&c, &w), [1, 8]);
    }

    #[test]
    fn empty_sides() {
        let mut c = ctx();
        let u = c.relation_from_keys("U", &[1, 2], 8);
        let e = c.relation("E", 0, 8);
        let w1 = set_op(&mut c, &u, &e, SetOp::Union, "W1");
        assert_eq!(keys_of(&c, &w1), [1, 2]);
        assert_eq!(set_op(&mut c, &u, &e, SetOp::Intersect, "W2").n(), 0);
        let w3 = set_op(&mut c, &u, &e, SetOp::Difference, "W3");
        assert_eq!(keys_of(&c, &w3), [1, 2]);
        let w4 = set_op(&mut c, &e, &u, SetOp::Union, "W4");
        assert_eq!(keys_of(&c, &w4), [1, 2]);
        assert_eq!(set_op(&mut c, &e, &u, SetOp::Difference, "W5").n(), 0);
    }

    #[test]
    fn identical_inputs() {
        let mut c = ctx();
        let u = c.relation_from_keys("U", &[1, 2, 3], 8);
        let v = c.relation_from_keys("V", &[1, 2, 3], 8);
        assert_eq!(set_op(&mut c, &u, &v, SetOp::Union, "W1").n(), 3);
        assert_eq!(set_op(&mut c, &u, &v, SetOp::Intersect, "W2").n(), 3);
        assert_eq!(set_op(&mut c, &u, &v, SetOp::Difference, "W3").n(), 0);
    }

    #[test]
    fn misses_match_merge_model() {
        // Like merge-join, set ops are pure streams: model must be exact.
        let spec = presets::tiny();
        let mut c = ExecContext::new(spec.clone());
        let a: Vec<u64> = (0..4096).map(|i| i * 2).collect(); // evens
        let b: Vec<u64> = (0..4096).map(|i| i * 2 + 1).collect(); // odds
        let u = c.relation_from_keys("U", &a, 8);
        let v = c.relation_from_keys("V", &b, 8);
        let (w, stats) = c.measure(|c| set_op(c, &u, &v, SetOp::Union, "W"));
        assert_eq!(w.n(), 8192);
        let model = gcm_core::CostModel::new(spec.clone());
        let report = model.report(&set_op_pattern(u.region(), v.region(), w.region()));
        let l1 = spec.level_index("L1").unwrap();
        let measured = (stats.mem.levels[l1].seq_misses + stats.mem.levels[l1].rand_misses) as f64;
        let predicted = report.levels[l1].misses();
        assert!(
            (predicted / measured - 1.0).abs() < 0.15,
            "L1: measured {measured} predicted {predicted}"
        );
    }
}
