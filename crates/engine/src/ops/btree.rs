//! Index lookups over a bulk-loaded, implicit B+-tree.
//!
//! The paper's §3.1 notes that "more complex structures like trees are
//! modeled by regions with `R.n` representing the number of nodes and
//! `R.w` the size of a single node"; the cache-conscious-tree line of
//! work it cites ([RR99, RR00]) tunes the node size to the cache line.
//! This operator realises both: an array-packed B+-tree whose node size
//! is a build parameter, with a batch-lookup access pattern of one
//! `r_acc` per level:
//!
//! ```text
//! lookup(T, q) = ⊕_{level} r_acc(T_level, q)
//! ```
//!
//! (each level of the tree is its own region; lookups hit one node per
//! level at effectively random positions).

use crate::backend::MemoryBackend;
use crate::ctx::ExecContext;
use crate::relation::Relation;
use gcm_core::{Pattern, Region};

/// An implicit B+-tree over sorted keys: level 0 is the sorted key
/// array; level `d+1` holds every `fanout`-th boundary key of level `d`.
/// All levels are dense arrays of `node_w`-byte nodes with
/// `fanout = node_w / 8` keys each.
#[derive(Debug)]
pub struct BTree {
    /// Per-level key arrays, leaf level first.
    levels: Vec<Relation>,
    fanout: u64,
}

impl BTree {
    /// Bulk-load from the (sorted) `keys`; `node_w` must be a multiple
    /// of 8 and at least 16 (≥ 2 keys per node).
    pub fn build<B: MemoryBackend>(
        ctx: &mut ExecContext<B>,
        keys: &[u64],
        node_w: u64,
        name: &str,
    ) -> BTree {
        assert!(
            node_w >= 16 && node_w.is_multiple_of(8),
            "node must hold >= 2 keys"
        );
        assert!(!keys.is_empty(), "cannot index an empty table");
        debug_assert!(keys.windows(2).all(|p| p[0] <= p[1]), "keys must be sorted");
        let fanout = node_w / 8;
        let mut levels = Vec::new();
        // Leaf level: the keys themselves, packed into nodes.
        let mut current: Vec<u64> = keys.to_vec();
        let mut depth = 0usize;
        loop {
            let n_keys = current.len() as u64;
            let rel = ctx.relation(&format!("{name}.L{depth}"), n_keys.div_ceil(fanout), node_w);
            for (i, &k) in current.iter().enumerate() {
                let node = i as u64 / fanout;
                let slot = i as u64 % fanout;
                ctx.mem.host_write_u64(rel.tuple(node) + slot * 8, k);
            }
            // Pad the last node with u64::MAX sentinels.
            let last = rel.n() - 1;
            for slot in (n_keys - last * fanout)..fanout {
                ctx.mem.host_write_u64(rel.tuple(last) + slot * 8, u64::MAX);
            }
            let node_count = rel.n();
            levels.push(rel);
            if node_count <= 1 {
                break;
            }
            // Next level: the first key of each node.
            current = (0..node_count)
                .map(|nd| {
                    let level = levels.last().expect("just pushed");
                    ctx.mem.host_read_u64(level.tuple(nd))
                })
                .collect();
            depth += 1;
        }
        BTree { levels, fanout }
    }

    /// Number of levels (1 = the tree is a single node).
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// The per-level regions, root first (for pattern construction and
    /// diagnostics).
    pub fn level_regions(&self) -> Vec<Region> {
        self.levels
            .iter()
            .rev()
            .map(|l| l.region().clone())
            .collect()
    }

    /// Total bytes of all levels.
    pub fn bytes(&self) -> u64 {
        self.levels.iter().map(Relation::bytes).sum()
    }

    /// Look one key up (simulated accesses): descend from the root,
    /// scanning one node per level. Returns true if the key exists.
    pub fn lookup<B: MemoryBackend>(&self, ctx: &mut ExecContext<B>, key: u64) -> bool {
        let mut node = 0u64;
        for (depth, level) in self.levels.iter().enumerate().rev() {
            let addr = level.tuple(node);
            ctx.mem.touch(addr, level.w());
            // In-node search (host-side data, simulated touch above).
            let mut child = 0u64;
            let mut found = false;
            for slot in 0..self.fanout {
                let k = ctx.mem.host_read_u64(addr + slot * 8);
                ctx.count_ops(1);
                if k == key {
                    found = true;
                }
                if k <= key && k != u64::MAX {
                    child = slot;
                } else {
                    break;
                }
            }
            if depth == 0 {
                return found;
            }
            node = node * self.fanout + child;
        }
        false
    }

    /// Pattern of a batch of `q` lookups: `⊕_level r_acc(T_level, q)`
    /// (root first; the root and upper levels usually stay cached, which
    /// the `r_acc` capacity term prices automatically).
    pub fn lookup_pattern(&self, q: u64) -> Pattern {
        Pattern::seq(
            self.level_regions()
                .into_iter()
                .map(|r| Pattern::r_acc(r, q))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcm_hardware::presets;
    use gcm_workload::Workload;

    fn ctx() -> ExecContext {
        ExecContext::new(presets::tiny())
    }

    #[test]
    fn finds_all_present_keys() {
        let mut c = ctx();
        let keys: Vec<u64> = (0..500).map(|i| i * 3).collect();
        let tree = BTree::build(&mut c, &keys, 32, "T");
        for &k in &keys {
            assert!(tree.lookup(&mut c, k), "key {k} must be found");
        }
    }

    #[test]
    fn rejects_absent_keys() {
        let mut c = ctx();
        let keys: Vec<u64> = (0..500).map(|i| i * 3).collect();
        let tree = BTree::build(&mut c, &keys, 32, "T");
        for k in [1u64, 2, 4, 1501, 10_000] {
            assert!(!tree.lookup(&mut c, k), "key {k} must be absent");
        }
    }

    #[test]
    fn height_shrinks_with_wider_nodes() {
        let mut c = ctx();
        let keys: Vec<u64> = (0..4096).collect();
        let narrow = BTree::build(&mut c, &keys, 16, "N"); // 2 keys/node
        let wide = BTree::build(&mut c, &keys, 128, "W"); // 16 keys/node
        assert!(wide.height() < narrow.height());
        assert_eq!(narrow.height(), 12); // log2(4096)
        assert_eq!(wide.height(), 3); // log16(4096)
    }

    #[test]
    fn single_node_tree() {
        let mut c = ctx();
        let tree = BTree::build(&mut c, &[5, 7], 32, "S");
        assert_eq!(tree.height(), 1);
        assert!(tree.lookup(&mut c, 5));
        assert!(!tree.lookup(&mut c, 6));
    }

    #[test]
    fn line_sized_nodes_beat_tiny_nodes() {
        // The [RR99] effect: nodes matching the cache line need fewer
        // misses per lookup than 16-byte nodes (deeper tree, one miss per
        // level) — measured on the simulator.
        let probes = Workload::new(7).random_indices(2000, 16_384);
        let run = |node_w: u64| {
            let mut c = ctx();
            let keys: Vec<u64> = (0..16_384).collect();
            let tree = BTree::build(&mut c, &keys, node_w, "T");
            c.cold_caches();
            let (_, stats) = c.measure(|c| {
                for &p in &probes {
                    tree.lookup(c, p as u64);
                }
            });
            let l1 = c.mem.spec().level_index("L1").unwrap();
            stats.misses_at(l1)
        };
        let tiny_nodes = run(16);
        let line_nodes = run(32); // tiny machine's L1 line
        assert!(
            line_nodes < tiny_nodes,
            "line-sized nodes {line_nodes} must beat 16-byte nodes {tiny_nodes}"
        );
    }

    #[test]
    fn model_predicts_per_level_costs() {
        // Batch lookups: the model must charge the lower levels (big
        // regions) much more than the root levels (cached).
        let mut c = ctx();
        let keys: Vec<u64> = (0..32_768).collect();
        let tree = BTree::build(&mut c, &keys, 64, "T");
        let model = gcm_core::CostModel::new(presets::tiny());
        let q = 10_000;
        let pattern = tree.lookup_pattern(q);
        let report = model.report(&pattern);
        assert!(report.mem_ns > 0.0);
        // Leaf level alone must dominate: compare against a root-only
        // pattern.
        let root_only = Pattern::r_acc(tree.level_regions()[0].clone(), q);
        assert!(model.mem_ns(&pattern) > 5.0 * model.mem_ns(&root_only));
    }

    #[test]
    fn measured_vs_predicted_batch_lookups() {
        let spec = presets::tiny_full_assoc();
        let mut c = ExecContext::new(spec.clone());
        let keys: Vec<u64> = (0..32_768).collect();
        let tree = BTree::build(&mut c, &keys, 64, "T");
        let probes = Workload::new(8).random_indices(5000, 32_768);
        c.cold_caches();
        let (_, stats) = c.measure(|c| {
            for &p in &probes {
                tree.lookup(c, p as u64);
            }
        });
        let model = gcm_core::CostModel::new(spec.clone());
        let report = model.report(&tree.lookup_pattern(5000));
        let l2 = spec.level_index("L2").unwrap();
        let measured = stats.misses_at(l2) as f64;
        let predicted = report.levels[l2].misses();
        let ratio = predicted / measured;
        assert!(
            (0.5..2.0).contains(&ratio),
            "L2 lookup misses: measured {measured} predicted {predicted}"
        );
    }
}
