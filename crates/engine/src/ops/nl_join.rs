//! Nested-loop join: the baseline join (paper §3.2's binary-operator
//! discussion): the outer input is swept once, the inner input once per
//! outer tuple — `s_trav(U) ⊙ rs_trav(U.n, uni, V) ⊙ s_trav(W)`.

use crate::backend::MemoryBackend;
use crate::ctx::ExecContext;
use crate::relation::Relation;
use gcm_core::{library, Pattern, Region};

/// Join `u ⋈ v` by scanning `v` once per tuple of `u`. Quadratic: use
/// only as the model's baseline comparator.
pub fn nested_loop_join<B: MemoryBackend>(
    ctx: &mut ExecContext<B>,
    u: &Relation,
    v: &Relation,
    out_name: &str,
    out_w: u64,
) -> Relation {
    // Cardinality oracle.
    let mut matches = 0u64;
    for i in 0..u.n() {
        let ku = ctx.mem.host_read_u64(u.tuple(i));
        for j in 0..v.n() {
            if ctx.mem.host_read_u64(v.tuple(j)) == ku {
                matches += 1;
            }
        }
    }
    let out = ctx.relation(out_name, matches, out_w);
    let mut cursor = 0u64;
    for i in 0..u.n() {
        let ku = ctx.read_tuple(u, i);
        for j in 0..v.n() {
            let kv = ctx.read_tuple(v, j);
            ctx.count_ops(1);
            if kv == ku {
                ctx.write_tuple(&out, cursor, ku);
                cursor += 1;
            }
        }
    }
    out
}

/// Pattern of [`nested_loop_join`]:
/// `s_trav(U) ⊙ rs_trav(U.n, uni, V) ⊙ s_trav(W)`.
pub fn nested_loop_join_pattern(u: &Region, v: &Region, w: &Region) -> Pattern {
    library::nested_loop_join(u.clone(), v.clone(), w.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcm_hardware::presets;

    fn ctx() -> ExecContext {
        ExecContext::new(presets::tiny())
    }

    #[test]
    fn finds_all_matches() {
        let mut c = ctx();
        let u = c.relation_from_keys("U", &[1, 2, 2, 9], 8);
        let v = c.relation_from_keys("V", &[2, 1, 2], 8);
        let out = nested_loop_join(&mut c, &u, &v, "W", 16);
        // key 1: 1 match; each key-2 outer tuple: 2 matches → 5 total.
        assert_eq!(out.n(), 5);
    }

    #[test]
    fn no_matches() {
        let mut c = ctx();
        let u = c.relation_from_keys("U", &[1], 8);
        let v = c.relation_from_keys("V", &[2], 8);
        assert_eq!(nested_loop_join(&mut c, &u, &v, "W", 16).n(), 0);
    }

    #[test]
    fn inner_fitting_cache_pays_once() {
        // Inner table within L1: repeated sweeps cost no further misses
        // (the rs_trav branch of Eq 4.6).
        let mut c = ctx();
        let uk: Vec<u64> = (0..64).collect();
        let vk: Vec<u64> = (0..64).collect();
        let u = c.relation_from_keys("U", &uk, 8);
        let v = c.relation_from_keys("V", &vk, 8); // 512 B < 2 KB L1
        c.cold_caches();
        let (_, stats) = c.measure(|c| {
            nested_loop_join(c, &u, &v, "W", 16);
        });
        let l1 = c.mem.spec().level_index("L1").unwrap();
        // v: 16 lines once; u: 16 lines; out: 64 tuples × 16 B = 32 lines.
        assert!(
            stats.misses_at(l1) < 100,
            "L1 misses {} should stay near compulsory",
            stats.misses_at(l1)
        );
    }

    #[test]
    fn pattern_renders() {
        let mut c = ctx();
        let u = c.relation("U", 10, 8);
        let v = c.relation("V", 20, 8);
        let w = c.relation("W", 10, 16);
        assert_eq!(
            nested_loop_join_pattern(u.region(), v.region(), w.region()).to_string(),
            "s_trav(U) ⊙ rs_trav(10, uni, V) ⊙ s_trav(W)"
        );
    }
}
