//! In-place quick-sort (paper §6.2, Figure 7a).
//!
//! The paper's formulation: two cursors start at the front and back of the
//! segment and sweep towards each other, swapping tuples; at the meeting
//! point the segment splits and recursion proceeds depth-first. One
//! recursion level sweeps the whole table once, and there are `⌈log₂ n⌉`
//! levels:
//!
//! ```text
//! quick_sort(U) = ⊕_{i=1}^{log n} ( s_trav(U/2) ⊙ s_trav(U/2) )
//! ```

use crate::backend::MemoryBackend;
use crate::ctx::ExecContext;
use crate::relation::Relation;
use gcm_core::{library, Pattern, Region};

/// Sort the relation in place by key (Hoare partitioning with two
/// converging cursors, exactly the access pattern the paper models).
///
/// Logical ops: one per comparison and one per swap.
pub fn quick_sort<B: MemoryBackend>(ctx: &mut ExecContext<B>, rel: &Relation) {
    if rel.n() < 2 {
        return;
    }
    // Explicit stack of [lo, hi) segments (depth-first, like the paper).
    let mut stack: Vec<(u64, u64)> = vec![(0, rel.n())];
    while let Some((lo, hi)) = stack.pop() {
        let len = hi - lo;
        if len < 2 {
            continue;
        }
        // Median-of-three pivot (reads are simulated).
        let mid = lo + len / 2;
        let a = ctx.read_key(rel, lo);
        let b = ctx.read_key(rel, mid);
        let c = ctx.read_key(rel, hi - 1);
        ctx.count_ops(3);
        let pivot = median3(a, b, c);

        // Hoare partition: front and back cursors converge.
        let mut i = lo;
        let mut j = hi - 1;
        loop {
            loop {
                let k = ctx.read_key(rel, i);
                ctx.count_ops(1);
                if k >= pivot {
                    break;
                }
                i += 1;
            }
            loop {
                let k = ctx.read_key(rel, j);
                ctx.count_ops(1);
                if k <= pivot {
                    break;
                }
                j -= 1;
            }
            if i >= j {
                break;
            }
            ctx.swap_tuples(rel, i, j);
            ctx.count_ops(1);
            i += 1;
            if j == 0 {
                break;
            }
            j -= 1;
        }
        let split = j + 1;
        // Guard against degenerate splits (all-equal keys).
        if split > lo && split < hi {
            stack.push((lo, split));
            stack.push((split, hi));
        } else {
            // Fall back to splitting off the pivot position.
            let p = split.clamp(lo + 1, hi - 1);
            stack.push((lo, p));
            stack.push((p, hi));
        }
    }
}

/// Pattern of [`quick_sort`]:
/// `⊕_{i=1}^{log n} ( s_trav(U/2) ⊙ s_trav(U/2) )`.
pub fn quick_sort_pattern(input: &Region) -> Pattern {
    library::quick_sort(input.clone())
}

/// Expected logical ops of quick-sort on `n` tuples: ~`n·log₂ n`
/// comparisons plus ~`n/2·log₂ n` swaps (used by the Eq 6.1 CPU
/// predictor).
pub fn quick_sort_expected_ops(n: u64) -> u64 {
    if n < 2 {
        return 0;
    }
    let logn = (n as f64).log2().ceil();
    (n as f64 * logn * 1.5) as u64
}

fn median3(a: u64, b: u64, c: u64) -> u64 {
    a.max(b).min(a.min(b).max(c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcm_hardware::presets;
    use gcm_workload::Workload;

    fn ctx() -> ExecContext {
        ExecContext::new(presets::tiny())
    }

    fn is_sorted(c: &ExecContext, rel: &Relation) -> bool {
        (1..rel.n())
            .all(|i| c.mem.host().read_u64(rel.tuple(i - 1)) <= c.mem.host().read_u64(rel.tuple(i)))
    }

    #[test]
    fn sorts_shuffled_keys() {
        let mut c = ctx();
        let keys = Workload::new(1).shuffled_keys(1000);
        let rel = c.relation_from_keys("U", &keys, 8);
        quick_sort(&mut c, &rel);
        assert!(is_sorted(&c, &rel));
        // Permutation preserved: keys are exactly 0..n.
        for i in 0..1000 {
            assert_eq!(c.mem.host().read_u64(rel.tuple(i)), i);
        }
    }

    #[test]
    fn sorts_wide_tuples_with_payload() {
        let mut c = ctx();
        let keys = Workload::new(2).shuffled_keys(256);
        let rel = c.relation_from_keys("U", &keys, 32);
        // Tag each tuple's payload with its key for integrity checking.
        for i in 0..256 {
            let k = c.mem.host().read_u64(rel.tuple(i));
            c.mem.host_mut().write_u64(rel.tuple(i) + 8, k * 7 + 1);
        }
        quick_sort(&mut c, &rel);
        assert!(is_sorted(&c, &rel));
        for i in 0..256 {
            let k = c.mem.host().read_u64(rel.tuple(i));
            assert_eq!(c.mem.host().read_u64(rel.tuple(i) + 8), k * 7 + 1);
        }
    }

    #[test]
    fn handles_duplicates_and_presorted() {
        let mut c = ctx();
        let rel = c.relation_from_keys("U", &[3, 3, 3, 3, 3, 3, 3, 3], 8);
        quick_sort(&mut c, &rel);
        assert!(is_sorted(&c, &rel));
        let sorted: Vec<u64> = (0..128).collect();
        let rel2 = c.relation_from_keys("U2", &sorted, 8);
        quick_sort(&mut c, &rel2);
        assert!(is_sorted(&c, &rel2));
        let rev: Vec<u64> = (0..128).rev().collect();
        let rel3 = c.relation_from_keys("U3", &rev, 8);
        quick_sort(&mut c, &rel3);
        assert!(is_sorted(&c, &rel3));
    }

    #[test]
    fn tiny_inputs() {
        let mut c = ctx();
        let r0 = c.relation("E", 0, 8);
        quick_sort(&mut c, &r0); // no panic
        let r1 = c.relation_from_keys("S", &[9], 8);
        quick_sort(&mut c, &r1);
        assert_eq!(c.mem.host().read_u64(r1.tuple(0)), 9);
        let r2 = c.relation_from_keys("P", &[9, 1], 8);
        quick_sort(&mut c, &r2);
        assert!(is_sorted(&c, &r2));
    }

    #[test]
    fn op_count_is_n_log_n_ish() {
        let mut c = ctx();
        let keys = Workload::new(3).shuffled_keys(4096);
        let rel = c.relation_from_keys("U", &keys, 8);
        let (_, stats) = c.measure(|c| quick_sort(c, &rel));
        let n_log_n = 4096.0 * 12.0;
        assert!(
            (stats.ops as f64) > n_log_n && (stats.ops as f64) < 4.0 * n_log_n,
            "ops = {}",
            stats.ops
        );
    }

    #[test]
    fn in_cache_table_avoids_repeat_misses() {
        // Table ≪ L2: only the first pass misses in L2 (the Fig 7a step).
        let mut c = ctx();
        let keys = Workload::new(4).shuffled_keys(512); // 4 KB < 16 KB L2
        let rel = c.relation_from_keys("U", &keys, 8);
        let (_, stats) = c.measure(|c| quick_sort(c, &rel));
        let l2 = c.mem.spec().level_index("L2").unwrap();
        let compulsory = 4096 / 64; // ||U|| / B2
        assert!(
            stats.mem.levels[l2].seq_misses + stats.mem.levels[l2].rand_misses <= 2 * compulsory,
            "L2 misses should be ~compulsory only"
        );
    }

    #[test]
    fn pattern_depth_matches_log() {
        let mut c = ctx();
        let rel = c.relation("U", 1024, 8);
        match quick_sort_pattern(rel.region()) {
            Pattern::Seq(ps) => assert_eq!(ps.len(), 10),
            _ => panic!("expected Seq"),
        }
        assert!(quick_sort_expected_ops(1024) > 10_000);
    }
}
