//! A cost-based planner on top of the generic model — the paper's
//! motivating use-case (§1): "the query optimizer uses this information
//! to choose the most suitable algorithm and/or implementation for each
//! operator".
//!
//! The planner enumerates join algorithms (and partitioning fan-outs),
//! prices each via its pattern description and Eq 6.1, and ranks them.

use crate::ops;
use gcm_core::{CostModel, CpuCost, Region};
use std::fmt;

/// A candidate join algorithm.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinAlgorithm {
    /// Scan the inner input once per outer tuple.
    NestedLoop,
    /// Merge-join; `sort_u`/`sort_v` record whether an input must be
    /// sorted first (quick-sort cost is added).
    Merge { sort_u: bool, sort_v: bool },
    /// Build a hash table on the inner input, probe with the outer.
    Hash,
    /// Partition both inputs `m` ways, then hash-join partition pairs.
    PartitionedHash { m: u64 },
}

impl fmt::Display for JoinAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinAlgorithm::NestedLoop => write!(f, "nested-loop join"),
            JoinAlgorithm::Merge { sort_u, sort_v } => {
                write!(f, "merge join")?;
                match (sort_u, sort_v) {
                    (false, false) => Ok(()),
                    (true, false) => write!(f, " (sort outer)"),
                    (false, true) => write!(f, " (sort inner)"),
                    (true, true) => write!(f, " (sort both)"),
                }
            }
            JoinAlgorithm::Hash => write!(f, "hash join"),
            JoinAlgorithm::PartitionedHash { m } => {
                write!(f, "partitioned hash join (m = {m})")
            }
        }
    }
}

/// One priced plan alternative.
#[derive(Debug, Clone)]
pub struct PlanChoice {
    /// The algorithm.
    pub algorithm: JoinAlgorithm,
    /// Predicted memory time (Eq 3.1), ns.
    pub mem_ns: f64,
    /// Predicted CPU time, ns.
    pub cpu_ns: f64,
}

impl PlanChoice {
    /// Predicted total time (Eq 6.1), ns.
    pub fn total_ns(&self) -> f64 {
        self.mem_ns + self.cpu_ns
    }
}

/// Join statistics the planner needs: input cardinalities/widths and
/// whether the inputs arrive sorted (the logical cost component, which
/// the paper assumes a perfect oracle for, §1).
#[derive(Debug, Clone)]
pub struct JoinInputs {
    /// Outer input.
    pub u: Region,
    /// Inner input.
    pub v: Region,
    /// Output tuple width.
    pub out_w: u64,
    /// Expected output cardinality.
    pub out_n: u64,
    /// Outer input already sorted on the join key?
    pub u_sorted: bool,
    /// Inner input already sorted?
    pub v_sorted: bool,
}

/// CPU calibration per logical operation (engine-wide constant; the
/// paper calibrates `T_cpu` per algorithm — per-algorithm op counts
/// below play that role).
const PLANNER_PER_OP_NS: f64 = 4.0;

/// Price all candidate join algorithms, cheapest first.
pub fn rank_joins(model: &CostModel, inputs: &JoinInputs) -> Vec<PlanChoice> {
    let cpu = CpuCost::per_op(PLANNER_PER_OP_NS);
    let u = &inputs.u;
    let v = &inputs.v;
    let w = Region::new("W", inputs.out_n, inputs.out_w);
    let mut choices = Vec::new();

    // Nested loop.
    {
        let p = ops::nl_join::nested_loop_join_pattern(u, v, &w);
        let ops_count = u.n.saturating_mul(v.n);
        choices.push(PlanChoice {
            algorithm: JoinAlgorithm::NestedLoop,
            mem_ns: model.mem_ns(&p),
            cpu_ns: cpu.ns(ops_count),
        });
    }

    // Merge (with sorts as needed).
    {
        let mut phases = Vec::new();
        let mut ops_count = 2 * (u.n + v.n) + inputs.out_n;
        if !inputs.u_sorted {
            phases.push(gcm_core::library::quick_sort(u.clone()));
            ops_count += ops::sort::quick_sort_expected_ops(u.n);
        }
        if !inputs.v_sorted {
            phases.push(gcm_core::library::quick_sort(v.clone()));
            ops_count += ops::sort::quick_sort_expected_ops(v.n);
        }
        phases.push(ops::merge_join::merge_join_pattern(u, v, &w));
        let p = gcm_core::Pattern::seq(phases);
        choices.push(PlanChoice {
            algorithm: JoinAlgorithm::Merge {
                sort_u: !inputs.u_sorted,
                sort_v: !inputs.v_sorted,
            },
            mem_ns: model.mem_ns(&p),
            cpu_ns: cpu.ns(ops_count),
        });
    }

    // Plain hash.
    {
        let h = Region::new(
            "H",
            (2 * v.n.max(1)).next_power_of_two(),
            ops::hash::ENTRY_BYTES,
        );
        let p = ops::hash::hash_join_pattern(u, v, &h, &w);
        choices.push(PlanChoice {
            algorithm: JoinAlgorithm::Hash,
            mem_ns: model.mem_ns(&p),
            cpu_ns: cpu.ns(4 * v.n + 4 * u.n + inputs.out_n),
        });
    }

    // Partitioned hash at candidate fan-outs: one per cache level (the
    // smallest m that makes a partition's hash table fit that level).
    for lvl in model.spec().data_caches() {
        let table_bytes = 2 * v.n.max(1) * ops::hash::ENTRY_BYTES;
        let mut m = (table_bytes / lvl.capacity.max(1))
            .max(1)
            .next_power_of_two();
        // Respect the partitioning cliff: the fan-out must stay below the
        // smallest level's line count or partitioning itself thrashes
        // (use multi-pass partitioning beyond; see ops::radix).
        let min_lines = model
            .spec()
            .levels()
            .iter()
            .map(gcm_hardware::CacheLevel::lines)
            .min()
            .unwrap_or(64);
        m = m.min(min_lines.max(2));
        if m < 2 {
            continue;
        }
        let up = Region::new("Up", u.n, u.w);
        let vp = Region::new("Vp", v.n, v.w);
        let p = ops::part_hash_join::part_hash_join_pattern(u, v, &w, m, &up, &vp);
        choices.push(PlanChoice {
            algorithm: JoinAlgorithm::PartitionedHash { m },
            mem_ns: model.mem_ns(&p),
            cpu_ns: cpu.ns(2 * (u.n + v.n) + 4 * v.n + 4 * u.n + inputs.out_n),
        });
    }

    choices.sort_by(|a, b| a.total_ns().total_cmp(&b.total_ns()));
    choices.dedup_by(|a, b| a.algorithm == b.algorithm);
    choices
}

/// The cheapest join algorithm for the inputs.
pub fn choose_join(model: &CostModel, inputs: &JoinInputs) -> PlanChoice {
    rank_joins(model, inputs)
        .into_iter()
        .next()
        .expect("at least one candidate")
}

/// Price a partitioning fan-out sweep and return `(m, predicted_ns)`
/// pairs, cheapest-per-tuple fan-outs first — the partition-tuning
/// use-case of Figure 7d.
pub fn rank_partition_fanouts(
    model: &CostModel,
    input: &Region,
    candidates: &[u64],
) -> Vec<(u64, f64)> {
    let mut out: Vec<(u64, f64)> = candidates
        .iter()
        .map(|&m| {
            let w = Region::new("W", input.n, input.w);
            let p = ops::partition::partition_pattern(input, &w, m);
            (m, model.mem_ns(&p))
        })
        .collect();
    out.sort_by(|a, b| a.1.total_cmp(&b.1));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcm_hardware::presets;

    fn model() -> CostModel {
        CostModel::new(presets::origin2000())
    }

    fn inputs(n: u64, sorted: bool) -> JoinInputs {
        JoinInputs {
            u: Region::new("U", n, 8),
            v: Region::new("V", n, 8),
            out_w: 16,
            out_n: n,
            u_sorted: sorted,
            v_sorted: sorted,
        }
    }

    #[test]
    fn sorted_inputs_pick_merge() {
        let choice = choose_join(&model(), &inputs(1_000_000, true));
        assert!(matches!(
            choice.algorithm,
            JoinAlgorithm::Merge {
                sort_u: false,
                sort_v: false
            }
        ));
    }

    #[test]
    fn big_unsorted_inputs_prefer_partitioned_over_plain_hash() {
        // On the Origin2000, hashing a table beyond the 1 MB TLB reach is
        // TLB-bound; single-pass partitioning (fan-out capped below the
        // TLB entry count) recovers part of that, and the sequential-
        // access sort+merge pipeline wins outright — the memory-access
        // economics that motivated the radix-cluster line of work
        // ([MBK00a]; see ops::radix for the multi-pass answer).
        let ranked = rank_joins(&model(), &inputs(4_000_000, false));
        assert!(
            matches!(ranked[0].algorithm, JoinAlgorithm::Merge { .. }),
            "picked {}",
            ranked[0].algorithm
        );
        let pos = |pred: fn(&JoinAlgorithm) -> bool| {
            ranked.iter().position(|c| pred(&c.algorithm)).unwrap()
        };
        let part = pos(|a| matches!(a, JoinAlgorithm::PartitionedHash { .. }));
        let hash = pos(|a| matches!(a, JoinAlgorithm::Hash));
        assert!(part < hash, "partitioned must rank above plain hash");
    }

    #[test]
    fn tlb_fitting_table_picks_plain_hash() {
        // H = 1 MB = the TLB reach: hashing stays cheap and beats paying
        // two sorts.
        let choice = choose_join(&model(), &inputs(30_000, false));
        assert!(
            matches!(choice.algorithm, JoinAlgorithm::Hash),
            "picked {}",
            choice.algorithm
        );
    }

    #[test]
    fn nested_loop_never_wins_at_scale() {
        {
            let ranked = rank_joins(&model(), &inputs(100_000, false));
            let last = ranked.last().unwrap();
            assert!(matches!(last.algorithm, JoinAlgorithm::NestedLoop));
        }
    }

    #[test]
    fn fanout_ranking_avoids_the_cliff() {
        let m = model();
        let input = Region::new("U", 2_000_000, 8);
        let ranked = rank_partition_fanouts(&m, &input, &[2, 16, 64, 512, 4096, 65_536, 1 << 20]);
        // The cheapest fan-outs stay below the TLB entry count (64).
        let (best_m, _) = ranked[0];
        assert!(
            best_m <= 64,
            "best fan-out {best_m} should dodge the TLB cliff"
        );
        // The most expensive candidate is far past every cliff.
        let (worst_m, worst_ns) = *ranked.last().unwrap();
        assert!(worst_m >= 65_536);
        assert!(worst_ns > 2.0 * ranked[0].1);
    }

    #[test]
    fn display_names() {
        assert_eq!(JoinAlgorithm::Hash.to_string(), "hash join");
        assert_eq!(
            JoinAlgorithm::Merge {
                sort_u: true,
                sort_v: false
            }
            .to_string(),
            "merge join (sort outer)"
        );
        assert_eq!(
            JoinAlgorithm::PartitionedHash { m: 8 }.to_string(),
            "partitioned hash join (m = 8)"
        );
    }
}
