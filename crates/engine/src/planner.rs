//! A cost-based planner on top of the generic model — the paper's
//! motivating use-case (§1): "the query optimizer uses this information
//! to choose the most suitable algorithm and/or implementation for each
//! operator".
//!
//! The planner enumerates join algorithms (and partitioning fan-outs),
//! prices each via its pattern description and Eq 6.1, and ranks them.
//! It is also the *per-node costing engine* of the whole-plan optimizer
//! ([`crate::plan::Optimizer`]): [`join_candidates`] yields each
//! algorithm's pattern description and logical-op estimate, which the
//! optimizer composes across a whole plan tree with `⊕` before pricing.

use crate::ops;
use gcm_core::{CostModel, CpuCost, Pattern, Region};
use std::fmt;

/// A candidate join algorithm.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinAlgorithm {
    /// Scan the inner input once per outer tuple.
    NestedLoop,
    /// Merge-join; `sort_u`/`sort_v` record whether an input must be
    /// sorted first (quick-sort cost is added).
    Merge { sort_u: bool, sort_v: bool },
    /// Build a hash table on the inner input, probe with the outer.
    Hash,
    /// Partition both inputs `m` ways, then hash-join partition pairs.
    PartitionedHash { m: u64 },
}

impl fmt::Display for JoinAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinAlgorithm::NestedLoop => write!(f, "nested-loop join"),
            JoinAlgorithm::Merge { sort_u, sort_v } => {
                write!(f, "merge join")?;
                match (sort_u, sort_v) {
                    (false, false) => Ok(()),
                    (true, false) => write!(f, " (sort outer)"),
                    (false, true) => write!(f, " (sort inner)"),
                    (true, true) => write!(f, " (sort both)"),
                }
            }
            JoinAlgorithm::Hash => write!(f, "hash join"),
            JoinAlgorithm::PartitionedHash { m } => {
                write!(f, "partitioned hash join (m = {m})")
            }
        }
    }
}

/// One priced plan alternative.
#[derive(Debug, Clone)]
pub struct PlanChoice {
    /// The algorithm.
    pub algorithm: JoinAlgorithm,
    /// Predicted memory time (Eq 3.1), ns.
    pub mem_ns: f64,
    /// Predicted CPU time, ns.
    pub cpu_ns: f64,
}

impl PlanChoice {
    /// Predicted total time (Eq 6.1), ns.
    pub fn total_ns(&self) -> f64 {
        self.mem_ns + self.cpu_ns
    }
}

/// Join statistics the planner needs: input cardinalities/widths and
/// whether the inputs arrive sorted (the logical cost component, which
/// the paper assumes a perfect oracle for, §1).
#[derive(Debug, Clone)]
pub struct JoinInputs {
    /// Outer input.
    pub u: Region,
    /// Inner input.
    pub v: Region,
    /// Output tuple width.
    pub out_w: u64,
    /// Expected output cardinality.
    pub out_n: u64,
    /// Outer input already sorted on the join key?
    pub u_sorted: bool,
    /// Inner input already sorted?
    pub v_sorted: bool,
}

/// Default CPU calibration per logical operation (the paper calibrates
/// `T_cpu` per algorithm — the per-algorithm op counts in
/// [`join_candidates`] play that role). Callers with a calibrated
/// machine thread their own [`CpuCost`] via [`rank_joins_with`]. The
/// value lives in [`CpuCost::DEFAULT_PLANNER_PER_OP_NS`] so every layer
/// of the planner stack shares one calibration
/// ([`CpuCost::default_planner`]); this alias keeps the planner-local
/// name the experiments use.
pub const DEFAULT_PLANNER_PER_OP_NS: f64 = CpuCost::DEFAULT_PLANNER_PER_OP_NS;

/// One join algorithm's physical description: its access pattern over
/// the given input/output regions plus its logical-operation estimate.
/// This is the per-node currency the whole-plan optimizer composes.
#[derive(Debug, Clone)]
pub struct JoinCandidate {
    /// The algorithm.
    pub algorithm: JoinAlgorithm,
    /// The node's compound access pattern (sorts included for merge).
    pub pattern: Pattern,
    /// Estimated logical CPU operations (Eq 6.1's `T_cpu` input).
    pub ops: u64,
}

/// Enumerate every candidate join algorithm for the inputs, writing the
/// given output region `w` (pass the region the *consumer* of this join
/// will read, so whole-plan costing sees the producer/consumer reuse of
/// Eq 5.2).
pub fn join_candidates(model: &CostModel, inputs: &JoinInputs, w: &Region) -> Vec<JoinCandidate> {
    let u = &inputs.u;
    let v = &inputs.v;
    let mut out = Vec::new();

    // Nested loop.
    out.push(JoinCandidate {
        algorithm: JoinAlgorithm::NestedLoop,
        pattern: ops::nl_join::nested_loop_join_pattern(u, v, w),
        ops: u.n.saturating_mul(v.n),
    });

    // Merge (with sorts as needed).
    {
        let mut phases = Vec::new();
        let mut ops_count = 2 * (u.n + v.n) + inputs.out_n;
        if !inputs.u_sorted {
            phases.push(gcm_core::library::quick_sort(u.clone()));
            ops_count += ops::sort::quick_sort_expected_ops(u.n);
        }
        if !inputs.v_sorted {
            phases.push(gcm_core::library::quick_sort(v.clone()));
            ops_count += ops::sort::quick_sort_expected_ops(v.n);
        }
        phases.push(ops::merge_join::merge_join_pattern(u, v, w));
        out.push(JoinCandidate {
            algorithm: JoinAlgorithm::Merge {
                sort_u: !inputs.u_sorted,
                sort_v: !inputs.v_sorted,
            },
            pattern: Pattern::seq(phases),
            ops: ops_count,
        });
    }

    // Plain hash.
    {
        let h = Region::new("H", ops::hash::table_slots(v.n), ops::hash::ENTRY_BYTES);
        out.push(JoinCandidate {
            algorithm: JoinAlgorithm::Hash,
            pattern: ops::hash::hash_join_pattern(u, v, &h, w),
            // Build share + probe share: kept in sync with the shared-
            // build CPU adjustment through `ops::hash::build_ops`.
            ops: ops::hash::build_ops(v.n) + 4 * u.n + inputs.out_n,
        });
    }

    // Partitioned hash at candidate fan-outs: one per cache level (the
    // smallest m that makes a partition's hash table fit that level).
    for lvl in model.spec().data_caches() {
        let table_bytes = ops::hash::table_slots(v.n) * ops::hash::ENTRY_BYTES;
        let Some(m) = fitting_fanout(model, table_bytes, lvl) else {
            continue;
        };
        if out
            .iter()
            .any(|c| c.algorithm == (JoinAlgorithm::PartitionedHash { m }))
        {
            // Two levels clamped to the same fan-out: one candidate.
            continue;
        }
        let up = Region::new("Up", u.n, u.w);
        let vp = Region::new("Vp", v.n, v.w);
        out.push(JoinCandidate {
            algorithm: JoinAlgorithm::PartitionedHash { m },
            pattern: ops::part_hash_join::part_hash_join_pattern(u, v, w, m, &up, &vp),
            ops: 2 * (u.n + v.n) + 4 * v.n + 4 * u.n + inputs.out_n,
        });
    }

    out
}

/// The smallest power-of-two fan-out that makes one `bytes`-sized chunk
/// of data fit cache level `lvl`, clamped below the smallest level's
/// line count — past that the partitioning itself thrashes, the
/// Figure 7d cliff (use multi-pass partitioning beyond; see
/// [`crate::ops::radix`]). `None` when the data already fits (fan-out
/// below 2), i.e. partitioning buys nothing at this level.
pub fn fitting_fanout(
    model: &CostModel,
    bytes: u64,
    lvl: &gcm_hardware::CacheLevel,
) -> Option<u64> {
    let min_lines = model
        .spec()
        .levels()
        .iter()
        .map(gcm_hardware::CacheLevel::lines)
        .min()
        .unwrap_or(64)
        .max(2);
    let m = bytes
        .div_ceil(lvl.capacity.max(1))
        .max(1)
        .next_power_of_two()
        .min(min_lines);
    (m >= 2).then_some(m)
}

/// Price all candidate join algorithms in isolation (cold caches) under
/// the given CPU calibration, cheapest first.
pub fn rank_joins_with(model: &CostModel, inputs: &JoinInputs, cpu: CpuCost) -> Vec<PlanChoice> {
    let w = Region::new("W", inputs.out_n, inputs.out_w);
    let mut choices: Vec<PlanChoice> = join_candidates(model, inputs, &w)
        .into_iter()
        .map(|c| PlanChoice {
            algorithm: c.algorithm,
            mem_ns: model.mem_ns(&c.pattern),
            cpu_ns: cpu.ns(c.ops),
        })
        .collect();
    choices.sort_by(|a, b| a.total_ns().total_cmp(&b.total_ns()));
    choices.dedup_by(|a, b| a.algorithm == b.algorithm);
    choices
}

/// [`rank_joins_with`] under the default per-op CPU calibration.
pub fn rank_joins(model: &CostModel, inputs: &JoinInputs) -> Vec<PlanChoice> {
    rank_joins_with(model, inputs, CpuCost::default_planner())
}

/// The cheapest join algorithm for the inputs under the given CPU
/// calibration, or `None` if no algorithm is applicable.
pub fn choose_join_with(
    model: &CostModel,
    inputs: &JoinInputs,
    cpu: CpuCost,
) -> Option<PlanChoice> {
    rank_joins_with(model, inputs, cpu).into_iter().next()
}

/// The cheapest join algorithm for the inputs, or `None` if no
/// algorithm is applicable.
pub fn choose_join(model: &CostModel, inputs: &JoinInputs) -> Option<PlanChoice> {
    choose_join_with(model, inputs, CpuCost::default_planner())
}

/// Price a partitioning fan-out sweep and return `(m, predicted_ns)`
/// pairs, cheapest-per-tuple fan-outs first — the partition-tuning
/// use-case of Figure 7d.
pub fn rank_partition_fanouts(
    model: &CostModel,
    input: &Region,
    candidates: &[u64],
) -> Vec<(u64, f64)> {
    let mut out: Vec<(u64, f64)> = candidates
        .iter()
        .map(|&m| {
            let w = Region::new("W", input.n, input.w);
            let p = ops::partition::partition_pattern(input, &w, m);
            (m, model.mem_ns(&p))
        })
        .collect();
    out.sort_by(|a, b| a.1.total_cmp(&b.1));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcm_hardware::presets;

    fn model() -> CostModel {
        CostModel::new(presets::origin2000())
    }

    fn inputs(n: u64, sorted: bool) -> JoinInputs {
        JoinInputs {
            u: Region::new("U", n, 8),
            v: Region::new("V", n, 8),
            out_w: 16,
            out_n: n,
            u_sorted: sorted,
            v_sorted: sorted,
        }
    }

    #[test]
    fn sorted_inputs_pick_merge() {
        let choice = choose_join(&model(), &inputs(1_000_000, true)).expect("candidates exist");
        assert!(matches!(
            choice.algorithm,
            JoinAlgorithm::Merge {
                sort_u: false,
                sort_v: false
            }
        ));
    }

    #[test]
    fn big_unsorted_inputs_prefer_partitioned_over_plain_hash() {
        // On the Origin2000, hashing a table beyond the 1 MB TLB reach is
        // TLB-bound; single-pass partitioning (fan-out capped below the
        // TLB entry count) recovers part of that, and the sequential-
        // access sort+merge pipeline wins outright — the memory-access
        // economics that motivated the radix-cluster line of work
        // ([MBK00a]; see ops::radix for the multi-pass answer).
        let ranked = rank_joins(&model(), &inputs(4_000_000, false));
        assert!(
            matches!(ranked[0].algorithm, JoinAlgorithm::Merge { .. }),
            "picked {}",
            ranked[0].algorithm
        );
        let pos = |pred: fn(&JoinAlgorithm) -> bool| {
            ranked.iter().position(|c| pred(&c.algorithm)).unwrap()
        };
        let part = pos(|a| matches!(a, JoinAlgorithm::PartitionedHash { .. }));
        let hash = pos(|a| matches!(a, JoinAlgorithm::Hash));
        assert!(part < hash, "partitioned must rank above plain hash");
    }

    #[test]
    fn tlb_fitting_table_picks_plain_hash() {
        // H = 1 MB = the TLB reach: hashing stays cheap and beats paying
        // two sorts.
        let choice = choose_join(&model(), &inputs(30_000, false)).expect("candidates exist");
        assert!(
            matches!(choice.algorithm, JoinAlgorithm::Hash),
            "picked {}",
            choice.algorithm
        );
    }

    #[test]
    fn nested_loop_never_wins_at_scale() {
        {
            let ranked = rank_joins(&model(), &inputs(100_000, false));
            let last = ranked.last().unwrap();
            assert!(matches!(last.algorithm, JoinAlgorithm::NestedLoop));
        }
    }

    #[test]
    fn fanout_ranking_avoids_the_cliff() {
        let m = model();
        let input = Region::new("U", 2_000_000, 8);
        let ranked = rank_partition_fanouts(&m, &input, &[2, 16, 64, 512, 4096, 65_536, 1 << 20]);
        // The cheapest fan-outs stay below the TLB entry count (64).
        let (best_m, _) = ranked[0];
        assert!(
            best_m <= 64,
            "best fan-out {best_m} should dodge the TLB cliff"
        );
        // The most expensive candidate is far past every cliff.
        let (worst_m, worst_ns) = *ranked.last().unwrap();
        assert!(worst_m >= 65_536);
        assert!(worst_ns > 2.0 * ranked[0].1);
    }

    #[test]
    fn candidates_carry_patterns_and_ops() {
        let m = model();
        let ins = inputs(10_000, false);
        let w = Region::new("W", ins.out_n, ins.out_w);
        let cands = join_candidates(&m, &ins, &w);
        assert!(cands.len() >= 4, "NL, merge, hash, ≥1 partitioned");
        for c in &cands {
            assert!(c.ops > 0, "{} has no op estimate", c.algorithm);
            assert!(m.mem_ns(&c.pattern) > 0.0, "{} has no pattern", c.algorithm);
        }
        // The merge candidate's pattern includes the two sorts.
        let merge = cands
            .iter()
            .find(|c| matches!(c.algorithm, JoinAlgorithm::Merge { .. }))
            .unwrap();
        assert!(matches!(
            merge.algorithm,
            JoinAlgorithm::Merge {
                sort_u: true,
                sort_v: true
            }
        ));
    }

    #[test]
    fn clamped_fanouts_produce_one_candidate() {
        // On the tiny machine both data caches clamp to the TLB's 8
        // lines for a big build side: only one PartitionedHash survives.
        let m = CostModel::new(presets::tiny());
        let ins = inputs(4096, false);
        let w = Region::new("W", ins.out_n, ins.out_w);
        let cands = join_candidates(&m, &ins, &w);
        let part: Vec<_> = cands
            .iter()
            .filter(|c| matches!(c.algorithm, JoinAlgorithm::PartitionedHash { .. }))
            .collect();
        assert_eq!(part.len(), 1, "duplicate fan-outs must dedup");
        assert_eq!(part[0].algorithm, JoinAlgorithm::PartitionedHash { m: 8 });
    }

    #[test]
    fn cpu_calibration_is_threaded() {
        // A 100× per-op cost must flow into the ranking: CPU-heavy
        // algorithms (sorts) get penalised relative to the default.
        let m = model();
        let ins = inputs(100_000, false);
        let default = rank_joins(&m, &ins);
        let slow_cpu = rank_joins_with(&m, &ins, CpuCost::per_op(400.0));
        let merge_cpu = |ranked: &[PlanChoice]| {
            ranked
                .iter()
                .find(|c| matches!(c.algorithm, JoinAlgorithm::Merge { .. }))
                .unwrap()
                .cpu_ns
        };
        assert!((merge_cpu(&slow_cpu) / merge_cpu(&default) - 100.0).abs() < 1e-6);
        // The default entry point matches the explicit default calibration.
        let explicit = rank_joins_with(&m, &ins, CpuCost::default_planner());
        assert_eq!(default.len(), explicit.len());
        for (a, b) in default.iter().zip(&explicit) {
            assert_eq!(a.algorithm, b.algorithm);
            assert!((a.total_ns() - b.total_ns()).abs() < 1e-9);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(JoinAlgorithm::Hash.to_string(), "hash join");
        assert_eq!(
            JoinAlgorithm::Merge {
                sort_u: true,
                sort_v: false
            }
            .to_string(),
            "merge join (sort outer)"
        );
        assert_eq!(
            JoinAlgorithm::PartitionedHash { m: 8 }.to_string(),
            "partitioned hash join (m = 8)"
        );
    }
}
