//! Relations: fixed-width tuples in backend memory.
//!
//! The engine is column-oriented in spirit (like the paper's Monet
//! platform): a [`Relation`] is a single dense array of `n` fixed-width
//! tuples whose first 8 bytes are a `u64` key and whose remaining
//! `w − 8` bytes are payload. That layout is exactly a data region in the
//! model's sense (§3.1), and every relation carries its [`Region`].
//!
//! A relation is addressed by `base + i·w` offsets into whichever
//! [`MemoryBackend`](crate::backend::MemoryBackend) allocated it —
//! simulated arena or native buffer — so the same `Relation` value works
//! unchanged on either substrate (both use the same [`Addr`] space and
//! bump-allocation rules).

use gcm_core::Region;
use gcm_sim::Addr;

/// Minimum tuple width: the 8-byte key.
pub const KEY_BYTES: u64 = 8;

/// A dense table of fixed-width tuples in simulated memory.
#[derive(Debug, Clone)]
pub struct Relation {
    base: Addr,
    n: u64,
    w: u64,
    region: Region,
}

impl Relation {
    /// Wrap an allocated range as a relation. `w ≥ 8` (the key).
    pub fn new(name: impl Into<String>, base: Addr, n: u64, w: u64) -> Relation {
        assert!(w >= KEY_BYTES, "tuple width must hold the 8-byte key");
        Relation {
            base,
            n,
            w,
            region: Region::new(name, n, w),
        }
    }

    /// Base address of the first tuple.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Tuple count `R.n`.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Tuple width `R.w` in bytes.
    pub fn w(&self) -> u64 {
        self.w
    }

    /// Total size `||R||` in bytes.
    pub fn bytes(&self) -> u64 {
        self.n * self.w
    }

    /// The model region describing this relation.
    pub fn region(&self) -> &Region {
        &self.region
    }

    /// Address of tuple `i`.
    #[inline]
    pub fn tuple(&self, i: u64) -> Addr {
        debug_assert!(i < self.n, "tuple index {i} out of {}", self.n);
        self.base + i * self.w
    }

    /// Address of tuple `i`'s key (same as [`Relation::tuple`]).
    #[inline]
    pub fn key_addr(&self, i: u64) -> Addr {
        self.tuple(i)
    }

    /// A view of the contiguous sub-range `[first, first+count)` as a
    /// relation sharing this relation's region identity (a model slice).
    pub fn subrange(&self, first: u64, count: u64) -> Relation {
        assert!(first + count <= self.n);
        Relation {
            base: self.base + first * self.w,
            n: count,
            w: self.w,
            region: self.region.slice_items(count),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addressing() {
        let r = Relation::new("R", 4096, 10, 16);
        assert_eq!(r.tuple(0), 4096);
        assert_eq!(r.tuple(3), 4096 + 48);
        assert_eq!(r.bytes(), 160);
        assert_eq!(r.region().n, 10);
        assert_eq!(r.region().w, 16);
    }

    #[test]
    fn subrange_shares_region_identity() {
        let r = Relation::new("R", 4096, 100, 16);
        let s = r.subrange(10, 20);
        assert_eq!(s.base(), 4096 + 160);
        assert_eq!(s.n(), 20);
        assert_eq!(s.region().id(), r.region().id());
        assert_eq!(s.region().root_bytes(), 1600);
    }

    #[test]
    #[should_panic(expected = "tuple width must hold")]
    fn narrow_tuples_rejected() {
        let _ = Relation::new("bad", 0, 1, 4);
    }
}
