//! Vectorized kernels: SIMD scan/filter/aggregate primitives and the
//! software-prefetch policy, underneath the [`MemoryBackend`] trait.
//!
//! The paper's native validation path (`NativeBackend`) historically
//! mirrored the model's *accounting* — one black-boxed 8-byte load per
//! 64-byte line — which makes it instruction-bound where real engines
//! are bandwidth-bound. This module supplies the "as fast as the
//! hardware allows" execution the model's bandwidth/overlap extension
//! (`gcm_core::OverlapParams`) prices:
//!
//! * **SIMD sweeps** ([`sum_words`], [`lt_mask`]) process dense 8-byte
//!   keys in `u64x8`-style blocks. With the `simd` cargo feature (on by
//!   default) an AVX2 path is selected **at runtime** via
//!   [`is_x86_feature_detected!`]; otherwise — feature off, non-x86
//!   target, or no AVX2 at runtime — a scalar block-of-8 fallback runs,
//!   written so the autovectorizer can widen it. Both paths fold with
//!   wrapping addition, which is associative and commutative, so every
//!   dispatch returns **bit-identical** results.
//! * **Software prefetch** for the cache-hostile operators (hash probe,
//!   radix/hash scatter): operators ask the backend for an N-ahead
//!   distance ([`MemoryBackend::prefetch_distance`]) and hint the line
//!   they will need N items from now. The distance comes from the
//!   calibrated latency/bandwidth ratio
//!   ([`gcm_hardware::stride::prefetch_distance`]): a miss is hidden
//!   when it is issued `latency × bandwidth / item` items early.
//!
//! Kernels operate on raw byte slices (the native backend's slab is a
//! `Vec<u8>` with no 8-byte alignment guarantee), reading keys with
//! unaligned little-endian loads.
//!
//! [`MemoryBackend`]: crate::backend::MemoryBackend
//! [`MemoryBackend::prefetch_distance`]: crate::backend::MemoryBackend::prefetch_distance

use crate::backend::MemoryBackend;

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod simd;

/// Which kernel implementation [`active`] selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// Scalar block fallback (still autovectorizable).
    Scalar,
    /// Explicit AVX2 `u64x4`-pair (≙ `u64x8`) lanes.
    Simd,
}

/// The implementation the current build *and* machine dispatch to:
/// [`Dispatch::Simd`] only when the `simd` feature is compiled in, the
/// target is x86-64, and the CPU reports AVX2 at runtime.
pub fn active() -> Dispatch {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return Dispatch::Simd;
        }
    }
    Dispatch::Scalar
}

/// Fallback prefetch distance (items ahead) used before any calibration
/// is available: 8 lines ahead hides ~80 ns of latency at ~6 B/ns — the
/// right order of magnitude for every machine in the paper's Table 1
/// and for current commodity parts.
pub const DEFAULT_PREFETCH_DISTANCE: u64 = 8;

/// Prefetch distance for a calibrated machine spec: the
/// latency/bandwidth rule of [`gcm_hardware::stride::prefetch_distance`]
/// applied to the outermost data-cache level (whose random-miss latency
/// is what a probe or scatter stalls on), with the innermost line size
/// as the item granularity. Falls back to
/// [`DEFAULT_PREFETCH_DISTANCE`] on a spec without data caches.
pub fn prefetch_distance_for(spec: &gcm_hardware::HardwareSpec) -> u64 {
    match spec.data_caches().last() {
        Some(outer) => gcm_hardware::stride::prefetch_distance(
            outer.rand_miss_ns,
            outer.seq_bandwidth(),
            outer.line.max(1),
        ),
        None => DEFAULT_PREFETCH_DISTANCE,
    }
}

/// Wrapping sum of the dense little-endian `u64` words of `buf`
/// (trailing bytes beyond the last full word are ignored), dispatched
/// per [`active`]. Bit-identical to a scalar left-to-right fold.
pub fn sum_words(buf: &[u8]) -> u64 {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 presence was just verified at runtime.
            return unsafe { simd::sum_words_avx2(buf) };
        }
    }
    sum_words_scalar(buf)
}

/// Scalar (block-of-8, autovectorizable) implementation of
/// [`sum_words`].
pub fn sum_words_scalar(buf: &[u8]) -> u64 {
    let mut lanes = [0u64; 8];
    let mut chunks = buf.chunks_exact(64);
    for c in chunks.by_ref() {
        for (l, w) in lanes.iter_mut().zip(c.chunks_exact(8)) {
            *l = l.wrapping_add(u64::from_le_bytes(w.try_into().expect("8 bytes")));
        }
    }
    let mut acc = lanes.iter().fold(0u64, |a, l| a.wrapping_add(*l));
    for w in chunks.remainder().chunks_exact(8) {
        acc = acc.wrapping_add(u64::from_le_bytes(w.try_into().expect("8 bytes")));
    }
    acc
}

/// Compare up to 64 dense little-endian `u64` keys in `buf` against
/// `threshold` (unsigned `<`); bit `j` of the result is set iff key `j`
/// qualifies. Dispatched per [`active`]; both paths agree bit-for-bit.
///
/// Panics if `buf` holds more than 64 whole words (the mask would
/// overflow).
pub fn lt_mask(buf: &[u8], threshold: u64) -> u64 {
    assert!(buf.len() <= 512, "lt_mask processes at most 64 keys");
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 presence was just verified at runtime.
            return unsafe { simd::lt_mask_avx2(buf, threshold) };
        }
    }
    lt_mask_scalar(buf, threshold)
}

/// Scalar implementation of [`lt_mask`].
pub fn lt_mask_scalar(buf: &[u8], threshold: u64) -> u64 {
    let mut mask = 0u64;
    for (j, w) in buf.chunks_exact(8).enumerate() {
        if u64::from_le_bytes(w.try_into().expect("8 bytes")) < threshold {
            mask |= 1u64 << j;
        }
    }
    mask
}

/// Issue a read prefetch for the tuple `dist` items ahead of `i` in a
/// strided relation, if one exists — the shared N-ahead helper of the
/// prefetched operators. No-op when the backend's distance is 0 (the
/// simulator) or the lookahead runs past the relation.
#[inline]
pub fn prefetch_tuple_ahead<B: MemoryBackend>(
    mem: &mut B,
    base: gcm_sim::Addr,
    n: u64,
    w: u64,
    i: u64,
    dist: u64,
) {
    if dist > 0 && i + dist < n {
        mem.prefetch_read(base + (i + dist) * w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcm_hardware::presets;

    fn words(keys: &[u64]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(keys.len() * 8);
        for k in keys {
            buf.extend_from_slice(&k.to_le_bytes());
        }
        buf
    }

    #[test]
    fn sum_dispatch_matches_scalar_bit_for_bit() {
        // Odd lengths, wrap-around values, empty and sub-word buffers.
        let cases: Vec<Vec<u64>> = vec![
            vec![],
            vec![7],
            (0..7).collect(),
            (0..64).collect(),
            (0..1037u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .collect(),
            vec![u64::MAX; 513],
        ];
        for keys in cases {
            let buf = words(&keys);
            let reference = keys.iter().fold(0u64, |a, k| a.wrapping_add(*k));
            assert_eq!(sum_words_scalar(&buf), reference);
            assert_eq!(sum_words(&buf), reference, "n = {}", keys.len());
        }
        // Trailing partial word is ignored.
        let mut buf = words(&[1, 2]);
        buf.extend_from_slice(&[0xFF; 5]);
        assert_eq!(sum_words(&buf), 3);
    }

    #[test]
    fn lt_mask_dispatch_matches_scalar_bit_for_bit() {
        let keys: Vec<u64> = (0..64u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i))
            .collect();
        let buf = words(&keys);
        for threshold in [0, 1, u64::MAX / 2, u64::MAX] {
            let scalar = lt_mask_scalar(&buf, threshold);
            assert_eq!(lt_mask(&buf, threshold), scalar, "t = {threshold}");
        }
        // Unsigned semantics: keys with the top bit set compare correctly.
        let high = words(&[u64::MAX, 0, 1 << 63]);
        assert_eq!(lt_mask(&high, 1 << 63), 0b010);
        assert_eq!(lt_mask_scalar(&high, 1 << 63), 0b010);
        // Partial chunks.
        assert_eq!(lt_mask(&words(&[3, 9, 4]), 5), 0b101);
        assert_eq!(lt_mask(&[], 5), 0);
    }

    #[test]
    fn active_dispatch_is_consistent_with_feature_and_cpu() {
        let d = active();
        #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
        assert_eq!(d, Dispatch::Scalar);
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        assert_eq!(
            d == Dispatch::Simd,
            std::arch::is_x86_feature_detected!("avx2")
        );
    }

    #[test]
    fn prefetch_distance_for_spec_tracks_the_outer_level() {
        // origin2000 memory: the distance follows lat·bw/line, clamped.
        let d = prefetch_distance_for(&presets::origin2000());
        assert!((1..=64).contains(&d), "d = {d}");
        // A slower outer level (higher latency, same bandwidth shape)
        // never *reduces* the distance on the same line size.
        let tiny = prefetch_distance_for(&presets::tiny());
        assert!((1..=64).contains(&tiny));
    }
}
