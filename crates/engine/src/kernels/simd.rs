//! Explicit AVX2 implementations of the kernel primitives.
//!
//! Compiled only with the `simd` feature on x86-64; callers in
//! [`super`] verify AVX2 at runtime with [`is_x86_feature_detected!`]
//! before entering these `unsafe` functions. All loads are unaligned
//! (`loadu`) — the native slab carries no alignment guarantee.

use core::arch::x86_64::{
    __m256i, _mm256_add_epi64, _mm256_castsi256_pd, _mm256_cmpgt_epi64, _mm256_loadu_si256,
    _mm256_movemask_pd, _mm256_set1_epi64x, _mm256_setzero_si256, _mm256_storeu_si256,
    _mm256_xor_si256,
};

/// Wrapping sum of the dense little-endian `u64` words of `buf` on two
/// `u64x4` accumulators (one `u64x8` block per iteration).
///
/// # Safety
/// The caller must have verified AVX2 support at runtime.
#[target_feature(enable = "avx2")]
pub unsafe fn sum_words_avx2(buf: &[u8]) -> u64 {
    let mut lo = _mm256_setzero_si256();
    let mut hi = _mm256_setzero_si256();
    let mut chunks = buf.chunks_exact(64);
    for c in chunks.by_ref() {
        let p = c.as_ptr() as *const __m256i;
        lo = _mm256_add_epi64(lo, _mm256_loadu_si256(p));
        hi = _mm256_add_epi64(hi, _mm256_loadu_si256(p.add(1)));
    }
    let folded = _mm256_add_epi64(lo, hi);
    let mut lanes = [0u64; 4];
    _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, folded);
    let mut acc = lanes.iter().fold(0u64, |a, l| a.wrapping_add(*l));
    for w in chunks.remainder().chunks_exact(8) {
        acc = acc.wrapping_add(u64::from_le_bytes(w.try_into().expect("8 bytes")));
    }
    acc
}

/// Unsigned `key < threshold` mask over up to 64 dense keys.
///
/// AVX2 has only a *signed* 64-bit compare; XOR-ing both sides with the
/// sign bit maps unsigned order onto signed order
/// (`a <u b ⟺ (a ^ 2⁶³) <s (b ^ 2⁶³)`).
///
/// # Safety
/// The caller must have verified AVX2 support at runtime.
#[target_feature(enable = "avx2")]
pub unsafe fn lt_mask_avx2(buf: &[u8], threshold: u64) -> u64 {
    debug_assert!(buf.len() <= 512);
    let bias = _mm256_set1_epi64x(i64::MIN);
    let t = _mm256_xor_si256(_mm256_set1_epi64x(threshold as i64), bias);
    let mut mask = 0u64;
    let mut j = 0u32;
    let mut chunks = buf.chunks_exact(32);
    for c in chunks.by_ref() {
        let keys = _mm256_xor_si256(_mm256_loadu_si256(c.as_ptr() as *const __m256i), bias);
        // key < t ⟺ t > key; movemask over the 4 lane sign bits.
        let gt = _mm256_cmpgt_epi64(t, keys);
        let bits = _mm256_movemask_pd(_mm256_castsi256_pd(gt)) as u64;
        mask |= bits << j;
        j += 4;
    }
    for w in chunks.remainder().chunks_exact(8) {
        if u64::from_le_bytes(w.try_into().expect("8 bytes")) < threshold {
            mask |= 1u64 << j;
        }
        j += 1;
    }
    mask
}
