//! Partition-parallel execution on a multi-core machine model.
//!
//! The paper's concurrent-execution operator `⊙` (§5.2, Eq 5.3) prices
//! patterns that *coexist* and compete for a cache. On a multi-core
//! machine the same rule prices **threads**: a stage run at degree of
//! parallelism `d` is the `⊙`-composition of `d` per-thread patterns on
//! every [`Shared`](gcm_hardware::Sharing::Shared) level, while
//! [`Private`](gcm_hardware::Sharing::Private) levels see only their own
//! thread's pattern ([`gcm_core::CostModel::advance_parallel`]).
//!
//! This module is the *measured* side of that claim: real
//! [`std::thread::scope`] worker threads, each computing real results
//! over its own simulated memory hierarchy — an [`ExecContext`] on the
//! machine's [`thread_view`](gcm_hardware::HardwareSpec::thread_view),
//! which grants the thread its full private levels but only a `1/d`
//! share of every shared level. A stage's measured elapsed time is the
//! slowest thread's charged memory time plus its CPU time (Eq 6.1), so
//! partition skew shows up exactly as a straggler, and shared-level
//! contention shows up as per-thread misses that a single-core run would
//! not pay.
//!
//! Three partition-parallel operators are provided:
//!
//! * [`par_filter_lt`] — parallel scan + filter over key chunks;
//! * [`par_group_count`] — parallel aggregation with per-thread partial
//!   tables and a sequential merge;
//! * [`par_hash_join`] — partition-parallel hash join: every thread
//!   radix-partitions its chunk of both inputs ([`ops::radix`]), then
//!   owns a disjoint partition range and joins the matching pairs.
//!
//! The model-side descriptions ([`par_select_patterns`],
//! [`par_group_patterns`], [`par_hash_join_patterns`]) build the
//! per-thread patterns the optimizer and the `parallel_speedup` bench
//! price via `advance_parallel`.

use crate::backend::{MemoryBackend, SimBackend};
use crate::ctx::ExecContext;
use crate::native::NativeBackend;
use crate::ops;
use crate::ops::hash::HashTable;
use crate::relation::Relation;
use gcm_core::{library, Pattern, Region};
use gcm_hardware::HardwareSpec;
use gcm_obs::span::{Span, SpanKind, SpanSink};
use std::ops::Range;

/// A factory of per-worker execution contexts: how a parallel stage
/// obtains the memory substrate each of its threads runs on. The sim
/// flavour ([`SimWorkers`]) hands every worker its own simulated
/// hierarchy on the machine's 1/d thread view; the native flavour
/// ([`NativeWorkers`]) hands every worker real host memory — the workers
/// are genuine [`std::thread::scope`] threads either way, but on native
/// memory they actually contend for the machine's caches instead of
/// simulating the contention.
pub trait WorkerContexts: Sync {
    /// The backend every worker context wraps.
    type Backend: MemoryBackend;

    /// A fresh context for one worker thread.
    fn worker(&self) -> ExecContext<Self::Backend>;

    /// A fresh context for a sequential (merge) phase on the full
    /// machine.
    fn merge(&self) -> ExecContext<Self::Backend>;
}

/// Simulated per-thread hierarchies: each worker sees the machine's
/// [`thread_view`](HardwareSpec::thread_view) for the stage's DOP, the
/// merge phase sees the whole machine.
#[derive(Debug, Clone)]
pub struct SimWorkers {
    view: HardwareSpec,
    full: HardwareSpec,
}

impl SimWorkers {
    /// Worker contexts for a `dop`-way stage on `spec`.
    pub fn new(spec: &HardwareSpec, dop: usize) -> SimWorkers {
        SimWorkers {
            view: spec.thread_view(dop as u32),
            full: spec.thread_view(1),
        }
    }
}

impl WorkerContexts for SimWorkers {
    type Backend = SimBackend;

    fn worker(&self) -> ExecContext<SimBackend> {
        ExecContext::new(self.view.clone())
    }

    fn merge(&self) -> ExecContext<SimBackend> {
        ExecContext::new(self.full.clone())
    }
}

/// Native worker contexts: every worker thread allocates and scans real
/// host buffers, so a stage's measured wall time is genuine concurrent
/// execution on the actual machine (hardware shares its caches itself —
/// no view construction required or possible).
#[derive(Debug, Clone, Copy, Default)]
pub struct NativeWorkers {
    /// Optional per-worker backing-store pre-reservation, bytes.
    pub capacity: usize,
}

impl WorkerContexts for NativeWorkers {
    type Backend = NativeBackend;

    fn worker(&self) -> ExecContext<NativeBackend> {
        if self.capacity > 0 {
            ExecContext::native_with_capacity(self.capacity)
        } else {
            ExecContext::native()
        }
    }

    fn merge(&self) -> ExecContext<NativeBackend> {
        self.worker()
    }
}

/// Per-worker result triple: output, measured ns, logical ops.
type WorkerOut<T> = (T, f64, u64);

/// Result of one parallel stage: real output plus the measured
/// (simulated) timing of every worker.
#[derive(Debug, Clone)]
pub struct ParRun<T> {
    /// The stage's output, assembled from the workers.
    pub out: T,
    /// Measured elapsed time: the slowest worker, plus any sequential
    /// merge phase (Eq 6.1 per thread: charged memory ns + per-op CPU).
    pub wall_ns: f64,
    /// Each worker's own measured time. [`par_group_count`] appends
    /// the sequential merge phase as one extra trailing entry, so its
    /// length is `dop + 1` there.
    pub thread_ns: Vec<f64>,
    /// Total logical CPU operations across all workers (and merge).
    pub ops: u64,
    /// The subset of `ops` performed in a sequential phase (e.g. the
    /// aggregation merge) — work a DOP cannot divide.
    pub serial_ops: u64,
}

/// Append one [`SpanKind::Worker`] span per worker of a finished
/// parallel stage. `t0_ns` is the stage's start on the recorder's
/// clock (capture [`SpanSink::now_ns`] before launching the stage);
/// each worker's span ends at `t0_ns + thread_ns[i]` — its *measured*
/// time (charged on sim, wall on native), which is the number the
/// straggler analysis cares about. Per-worker op counts are not
/// tracked, so the spans carry timing only.
pub fn record_worker_spans<T>(sink: &mut SpanSink, stage: &str, t0_ns: u64, run: &ParRun<T>) {
    if !sink.active() {
        return;
    }
    for (i, ns) in run.thread_ns.iter().enumerate() {
        sink.record(Span {
            name: format!("{stage}/worker{i}"),
            kind: SpanKind::Worker,
            start_ns: t0_ns,
            end_ns: t0_ns + ns.max(0.0).round() as u64,
            elapsed_ns: *ns,
            accesses: 0,
            level_misses: Vec::new(),
            ops: 0,
            lane: 0,
            seq: 0,
        });
    }
}

/// Split `0..n` into `dop` near-equal contiguous chunks (the leading
/// chunks take the remainder; empty chunks are legal).
pub fn chunk_ranges(n: usize, dop: usize) -> Vec<Range<usize>> {
    let dop = dop.max(1);
    let base = n / dop;
    let extra = n % dop;
    let mut out = Vec::with_capacity(dop);
    let mut start = 0;
    for t in 0..dop {
        let len = base + usize::from(t < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Read a relation's keys back from backend memory (host-side).
fn keys_of<B: MemoryBackend>(ctx: &ExecContext<B>, rel: &Relation) -> Vec<u64> {
    (0..rel.n())
        .map(|i| ctx.mem.host_read_u64(rel.tuple(i)))
        .collect()
}

/// Parallel scan + filter: every worker filters its chunk of `keys` on
/// its own [`thread_view`](HardwareSpec::thread_view) context; the
/// outputs are concatenated in chunk order.
pub fn par_filter_lt(
    spec: &HardwareSpec,
    keys: &[u64],
    threshold: u64,
    dop: usize,
    per_op_ns: f64,
) -> ParRun<Vec<u64>> {
    par_filter_lt_on(&SimWorkers::new(spec, dop), keys, threshold, dop, per_op_ns)
}

/// [`par_filter_lt`] on real host memory: the same partition-parallel
/// filter, each worker over native buffers (per-op CPU time is inside
/// the wall clock, so no calibration parameter is needed).
pub fn par_filter_lt_native(keys: &[u64], threshold: u64, dop: usize) -> ParRun<Vec<u64>> {
    par_filter_lt_on(&NativeWorkers::default(), keys, threshold, dop, 0.0)
}

/// The backend-generic realisation of [`par_filter_lt`].
pub fn par_filter_lt_on<W: WorkerContexts>(
    workers: &W,
    keys: &[u64],
    threshold: u64,
    dop: usize,
    per_op_ns: f64,
) -> ParRun<Vec<u64>> {
    let results: Vec<WorkerOut<Vec<u64>>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunk_ranges(keys.len(), dop)
            .into_iter()
            .map(|range| {
                let chunk = &keys[range];
                s.spawn(move || {
                    let mut ctx = workers.worker();
                    let rel = ctx.relation_from_keys("U", chunk, 8);
                    let mut out = None;
                    let (_, stats) = ctx.measure(|c| {
                        out = Some(ops::scan::select_lt(c, &rel, threshold, "W"));
                    });
                    let out = keys_of(&ctx, &out.expect("select ran"));
                    (out, stats.total_ns(per_op_ns), stats.ops)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });
    let thread_ns: Vec<f64> = results.iter().map(|r| r.1).collect();
    ParRun {
        wall_ns: thread_ns.iter().copied().fold(0.0, f64::max),
        ops: results.iter().map(|r| r.2).sum(),
        out: results.into_iter().flat_map(|r| r.0).collect(),
        thread_ns,
        serial_ops: 0,
    }
}

/// Parallel aggregation (group-by count): every worker aggregates its
/// chunk into a private partial table; a sequential merge phase then
/// adds the partials into one final table. Returns `(key, count)` pairs
/// in merge-table order.
pub fn par_group_count(
    spec: &HardwareSpec,
    keys: &[u64],
    dop: usize,
    per_op_ns: f64,
) -> ParRun<Vec<(u64, u64)>> {
    par_group_count_on(&SimWorkers::new(spec, dop), keys, dop, per_op_ns)
}

/// [`par_group_count`] on real host memory.
pub fn par_group_count_native(keys: &[u64], dop: usize) -> ParRun<Vec<(u64, u64)>> {
    par_group_count_on(&NativeWorkers::default(), keys, dop, 0.0)
}

/// The backend-generic realisation of [`par_group_count`].
pub fn par_group_count_on<W: WorkerContexts>(
    workers: &W,
    keys: &[u64],
    dop: usize,
    per_op_ns: f64,
) -> ParRun<Vec<(u64, u64)>> {
    let partials: Vec<WorkerOut<Vec<(u64, u64)>>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunk_ranges(keys.len(), dop)
            .into_iter()
            .map(|range| {
                let chunk = &keys[range];
                s.spawn(move || {
                    let mut ctx = workers.worker();
                    let rel = ctx.relation_from_keys("U", chunk, 8);
                    let mut out = None;
                    let (_, stats) = ctx.measure(|c| {
                        out = Some(ops::aggregate::hash_group_count(c, &rel, "G"));
                    });
                    let out = out.expect("aggregate ran");
                    let pairs: Vec<(u64, u64)> = (0..out.n())
                        .map(|i| {
                            let t = out.tuple(i);
                            (ctx.mem.host_read_u64(t), ctx.mem.host_read_u64(t + 8))
                        })
                        .collect();
                    (pairs, stats.total_ns(per_op_ns), stats.ops)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });
    let mut thread_ns: Vec<f64> = partials.iter().map(|p| p.1).collect();
    let phase_wall = thread_ns.iter().copied().fold(0.0, f64::max);
    let mut total_ops: u64 = partials.iter().map(|p| p.2).sum();

    // Sequential merge on the full machine: add every partial pair into
    // one final counting table, then sweep it.
    let mut ctx = workers.merge();
    let all: Vec<(u64, u64)> = partials.into_iter().flat_map(|p| p.0).collect();
    let cat = ctx.relation("P", all.len() as u64, 16);
    for (i, (k, c)) in all.iter().enumerate() {
        ctx.mem.host_write_u64(cat.tuple(i as u64), *k);
        ctx.mem.host_write_u64(cat.tuple(i as u64) + 8, *c);
    }
    let distinct = {
        let mut seen = std::collections::HashSet::new();
        all.iter().filter(|(k, _)| seen.insert(*k)).count() as u64
    };
    let table = HashTable::alloc(&mut ctx, "H", distinct.max(1));
    let mut merged = Vec::new();
    let (_, merge_stats) = ctx.measure(|c| {
        for i in 0..cat.n() {
            let addr = cat.tuple(i);
            c.mem.touch(addr, 16);
            let (k, cnt) = (c.mem.host_read_u64(addr), c.mem.host_read_u64(addr + 8));
            c.count_ops(1);
            ops::aggregate::upsert_add(c, &table, k, cnt);
        }
        for slot in 0..table.capacity() {
            let addr = table.slot_addr(slot);
            let k = c.mem.read_u64(addr);
            if k != ops::hash::EMPTY {
                merged.push((k, c.mem.read_u64(addr + 8)));
                c.count_ops(1);
            }
        }
    });
    total_ops += merge_stats.ops;
    let merge_ns = merge_stats.total_ns(per_op_ns);
    thread_ns.push(merge_ns);
    ParRun {
        out: merged,
        wall_ns: phase_wall + merge_ns,
        thread_ns,
        ops: total_ops,
        serial_ops: merge_stats.ops,
    }
}

/// Partition-parallel hash join of `u ⋈ v` (equal keys, one output key
/// per matching pair), `2^bits`-way partitioned, executed by `dop`
/// worker threads (`dop` must divide `2^bits`).
///
/// Phase 1 (parallel): every worker radix-partitions its chunk of both
/// inputs into `2^bits` clusters ([`ops::radix::radix_partition`] — the
/// existing single-pass radix cluster, so cluster `j` is
/// digit-homogeneous across workers). Phase 2 (parallel): worker `t`
/// owns the disjoint cluster range `t·2^bits/dop ..`, gathers those
/// clusters from every phase-1 output, and hash-joins each matching
/// pair. Measured wall time is `max(phase 1) + max(phase 2)`.
pub fn par_hash_join(
    spec: &HardwareSpec,
    u_keys: &[u64],
    v_keys: &[u64],
    bits: u32,
    dop: usize,
    per_op_ns: f64,
) -> ParRun<Vec<u64>> {
    par_hash_join_on(
        &SimWorkers::new(spec, dop),
        u_keys,
        v_keys,
        bits,
        dop,
        per_op_ns,
    )
}

/// [`par_hash_join`] on real host memory: scoped worker threads
/// radix-partitioning and joining over native buffers, concurrently for
/// real.
pub fn par_hash_join_native(
    u_keys: &[u64],
    v_keys: &[u64],
    bits: u32,
    dop: usize,
) -> ParRun<Vec<u64>> {
    par_hash_join_on(&NativeWorkers::default(), u_keys, v_keys, bits, dop, 0.0)
}

/// The backend-generic realisation of [`par_hash_join`].
pub fn par_hash_join_on<W: WorkerContexts>(
    workers: &W,
    u_keys: &[u64],
    v_keys: &[u64],
    bits: u32,
    dop: usize,
    per_op_ns: f64,
) -> ParRun<Vec<u64>> {
    let m = 1u64 << bits;
    assert!(
        dop as u64 <= m && m.is_multiple_of(dop as u64),
        "dop {dop} must divide the fan-out {m}"
    );

    // Phase 1: partition chunks of both sides.
    type Buckets = Vec<Vec<u64>>;
    let phase1: Vec<(Buckets, Buckets, f64, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = chunk_ranges(u_keys.len(), dop)
            .into_iter()
            .zip(chunk_ranges(v_keys.len(), dop))
            .map(|(ur, vr)| {
                let (uc, vc) = (&u_keys[ur], &v_keys[vr]);
                s.spawn(move || {
                    let mut ctx = workers.worker();
                    let u = ctx.relation_from_keys("U", uc, 8);
                    let v = ctx.relation_from_keys("V", vc, 8);
                    let mut parts = None;
                    let (_, stats) = ctx.measure(|c| {
                        let pu = ops::radix::radix_partition(c, &u, bits, 1, "Up");
                        let pv = ops::radix::radix_partition(c, &v, bits, 1, "Vp");
                        parts = Some((pu, pv));
                    });
                    let (pu, pv) = parts.expect("partitioning ran");
                    let buckets = |p: &ops::partition::Partitioned| -> Buckets {
                        (0..m).map(|j| keys_of(&ctx, &p.part(j))).collect()
                    };
                    (
                        buckets(&pu),
                        buckets(&pv),
                        stats.total_ns(per_op_ns),
                        stats.ops,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });
    let p1_ns: Vec<f64> = phase1.iter().map(|p| p.2).collect();
    let p1_wall = p1_ns.iter().copied().fold(0.0, f64::max);
    let mut total_ops: u64 = phase1.iter().map(|p| p.3).sum();

    // Phase 2: worker t joins its disjoint cluster range.
    let per_thread = (m / dop as u64) as usize;
    let phase2: Vec<WorkerOut<Vec<u64>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..dop)
            .map(|t| {
                let phase1 = &phase1;
                s.spawn(move || {
                    let mut ctx = workers.worker();
                    let mut joined = Vec::new();
                    let mut ns = 0.0;
                    let mut ops_count = 0;
                    for j in t * per_thread..(t + 1) * per_thread {
                        let gather =
                            |side: fn(&(Buckets, Buckets, f64, u64)) -> &Buckets| -> Vec<u64> {
                                phase1
                                    .iter()
                                    .flat_map(|p| side(p)[j].iter().copied())
                                    .collect()
                            };
                        let uj = gather(|p| &p.0);
                        let vj = gather(|p| &p.1);
                        if uj.is_empty() || vj.is_empty() {
                            continue;
                        }
                        let u = ctx.relation_from_keys("Uj", &uj, 8);
                        let v = ctx.relation_from_keys("Vj", &vj, 8);
                        let mut out = None;
                        let (_, stats) = ctx.measure(|c| {
                            out = Some(ops::hash::hash_join(c, &u, &v, "W", 16));
                        });
                        joined.extend(keys_of(&ctx, &out.expect("join ran")));
                        ns += stats.total_ns(per_op_ns);
                        ops_count += stats.ops;
                    }
                    (joined, ns, ops_count)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });
    let p2_ns: Vec<f64> = phase2.iter().map(|p| p.1).collect();
    let p2_wall = p2_ns.iter().copied().fold(0.0, f64::max);
    total_ops += phase2.iter().map(|p| p.2).sum::<u64>();
    let thread_ns: Vec<f64> = p1_ns.iter().zip(&p2_ns).map(|(a, b)| a + b).collect();
    ParRun {
        out: phase2.into_iter().flat_map(|p| p.0).collect(),
        wall_ns: p1_wall + p2_wall,
        thread_ns,
        ops: total_ops,
        serial_ops: 0,
    }
}

// ---------------------------------------------------------------------
// Model-side descriptions: the per-thread patterns the optimizer and the
// speedup bench price via `CostModel::advance_parallel`.
// ---------------------------------------------------------------------

/// Per-thread patterns of a `dop`-way parallel filter: each thread
/// sweeps a `1/dop` slice of the input and writes its slice of the
/// output — `select(U/d, W/d)` per thread.
pub fn par_select_patterns(u: &Region, w: &Region, dop: u64) -> Vec<Pattern> {
    (0..dop.max(1))
        .map(|_| library::select(u.slice(dop.max(1)), w.slice(dop.max(1))))
        .collect()
}

/// Per-thread patterns plus the sequential merge stage of a `dop`-way
/// parallel aggregation with `distinct` expected groups: each thread
/// aggregates its input slice into a private partial table; the merge
/// re-aggregates the concatenated partials into the final table/output.
///
/// Returns `(thread_patterns, merge_pattern)`.
pub fn par_group_patterns(
    u: &Region,
    distinct: u64,
    w: &Region,
    dop: u64,
) -> (Vec<Pattern>, Pattern) {
    let dop = dop.max(1);
    let slots = ops::hash::table_slots(distinct);
    let threads: Vec<Pattern> = (0..dop)
        .map(|t| {
            let h_t = Region::new(format!("Hp{t}"), slots, ops::hash::ENTRY_BYTES);
            let w_t = Region::new(format!("Gp{t}"), distinct.max(1), 16);
            library::hash_aggregate(u.slice(dop), h_t, w_t)
        })
        .collect();
    let merge = if dop == 1 {
        Pattern::empty()
    } else {
        let cat = Region::new("Pcat", dop * distinct.max(1), 16);
        let h = Region::new("H", slots, ops::hash::ENTRY_BYTES);
        library::hash_aggregate(cat, h, w.clone())
    };
    (threads, merge)
}

/// Per-thread patterns of a `dop`-way partition-parallel hash join with
/// total fan-out `m` (each thread partitions its `1/dop` chunk of both
/// inputs `m` ways, then joins its `m/dop` owned cluster pairs).
///
/// `up`/`vp` are the partitioned-copy regions (shared identities across
/// the partition and join phases, so Eq 5.2 prices the re-read of the
/// freshly written clusters).
pub fn par_hash_join_patterns(
    u: &Region,
    v: &Region,
    w: &Region,
    up: &Region,
    vp: &Region,
    m: u64,
    dop: u64,
) -> Vec<Pattern> {
    let dop = dop.max(1).min(m);
    let per_thread = (m / dop).max(1);
    let table_slots = ops::hash::table_slots(v.n / m.max(1));
    (0..dop)
        .map(|t| {
            let parts = (0..per_thread)
                .map(|j| {
                    (
                        up.slice(m),
                        vp.slice(m),
                        Region::new(
                            format!("H{}", t * per_thread + j),
                            table_slots,
                            ops::hash::ENTRY_BYTES,
                        ),
                        w.slice(m),
                    )
                })
                .collect();
            Pattern::seq(vec![
                library::partition(u.slice(dop), up.slice(dop), m),
                library::partition(v.slice(dop), vp.slice(dop), m),
                library::partitioned_hash_join(parts),
            ])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcm_core::{CacheState, CostModel};
    use gcm_hardware::presets;
    use gcm_workload::Workload;

    const PER_OP: f64 = 4.0;

    fn serial_filter(keys: &[u64], t: u64) -> Vec<u64> {
        keys.iter().copied().filter(|&k| k < t).collect()
    }

    #[test]
    fn chunks_cover_and_balance() {
        let r = chunk_ranges(10, 4);
        assert_eq!(r, vec![0..3, 3..6, 6..8, 8..10]);
        assert_eq!(chunk_ranges(0, 3), vec![0..0, 0..0, 0..0]);
        assert_eq!(chunk_ranges(5, 1), vec![0..5]);
        // dop > n: trailing chunks are empty but the cover is exact.
        let r = chunk_ranges(2, 4);
        assert_eq!(r.last().unwrap().end, 2);
    }

    #[test]
    fn parallel_filter_matches_serial() {
        let spec = presets::tiny_smp(4);
        let keys = Workload::new(91).shuffled_keys(5_000);
        for dop in [1, 2, 4] {
            let run = par_filter_lt(&spec, &keys, 1_000, dop, PER_OP);
            assert_eq!(run.out, serial_filter(&keys, 1_000), "dop {dop}");
            assert_eq!(run.thread_ns.len(), dop);
            assert!(run.wall_ns > 0.0 && run.ops > 0);
        }
    }

    #[test]
    fn parallel_filter_speeds_up_in_simulated_wall_time() {
        let spec = presets::tiny_smp(4);
        let keys = Workload::new(92).shuffled_keys(32_768);
        let t1 = par_filter_lt(&spec, &keys, 10_000, 1, PER_OP).wall_ns;
        let t4 = par_filter_lt(&spec, &keys, 10_000, 4, PER_OP).wall_ns;
        let speedup = t1 / t4;
        assert!(
            speedup > 2.5,
            "4-way filter speedup {speedup:.2} should be near-linear"
        );
    }

    #[test]
    fn parallel_group_count_matches_serial() {
        let spec = presets::tiny_smp(4);
        let keys = Workload::new(93).zipf_keys(8_000, 500, 1.0);
        let serial = {
            let mut counts = std::collections::HashMap::new();
            for &k in &keys {
                *counts.entry(k).or_insert(0u64) += 1;
            }
            counts
        };
        for dop in [1, 2, 4] {
            let run = par_group_count(&spec, &keys, dop, PER_OP);
            let mut got: Vec<(u64, u64)> = run.out.clone();
            got.sort_unstable();
            let mut want: Vec<(u64, u64)> = serial.iter().map(|(&k, &c)| (k, c)).collect();
            want.sort_unstable();
            assert_eq!(got, want, "dop {dop}");
        }
    }

    #[test]
    fn parallel_join_matches_serial_hash_join() {
        let spec = presets::tiny_smp(4);
        let mut wl = Workload::new(94);
        let (uk, vk) = wl.join_pair(3_000);
        for dop in [1, 2, 4] {
            let run = par_hash_join(&spec, &uk, &vk, 4, dop, PER_OP);
            let mut got = run.out.clone();
            got.sort_unstable();
            assert_eq!(got, (0..3_000).collect::<Vec<u64>>(), "dop {dop}");
        }
        // Partial matches too.
        let uk = wl.uniform_keys_bounded(1_000, 300);
        let vk = wl.uniform_keys_bounded(400, 300);
        let par = par_hash_join(&spec, &uk, &vk, 4, 4, PER_OP);
        let mut got = par.out.clone();
        got.sort_unstable();
        let mut want = Vec::new();
        for &k in &uk {
            for &v in &vk {
                if k == v {
                    want.push(k);
                }
            }
        }
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn skewed_keys_produce_a_straggler() {
        // Zipf-skewed probe keys: the hash spreads *distinct* keys
        // evenly, so partition skew comes from duplicate hot keys — a
        // handful of head keys carry most probes, and the worker owning
        // their clusters dominates the wall clock.
        let spec = presets::tiny_smp(4);
        let mut wl = Workload::new(95);
        let uk = wl.zipf_keys(32_768, 4_096, 1.8);
        let vk = wl.shuffled_keys(4_096);
        let run = par_hash_join(&spec, &uk, &vk, 4, 4, PER_OP);
        let max = run.thread_ns.iter().copied().fold(0.0, f64::max);
        let min = run.thread_ns.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            max > 1.5 * min,
            "skew must imbalance workers: {:?}",
            run.thread_ns
        );
        // Balanced (uniform, distinct) keys stay near-even.
        let (uu, vv) = wl.join_pair(16_384);
        let even = par_hash_join(&spec, &uu, &vv, 4, 4, PER_OP);
        let emax = even.thread_ns.iter().copied().fold(0.0, f64::max);
        let emin = even.thread_ns.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(emax < 1.3 * emin, "uniform keys: {:?}", even.thread_ns);
    }

    #[test]
    fn predicted_wall_tracks_measured_wall_for_the_join() {
        // The ⊙-composed model prediction and the thread-view simulator
        // measurement must agree on the parallel join's elapsed time
        // within the usual model-vs-sim tolerance.
        let spec = presets::tiny_smp(4);
        let model = CostModel::new(spec.clone());
        let mut wl = Workload::new(96);
        let (uk, vk) = wl.join_pair(16_384);
        for dop in [1usize, 2, 4] {
            let run = par_hash_join(&spec, &uk, &vk, 4, dop, PER_OP);
            let u = Region::new("U", uk.len() as u64, 8);
            let v = Region::new("V", vk.len() as u64, 8);
            let w = Region::new("W", uk.len() as u64, 16);
            let up = Region::new("Up", uk.len() as u64, 8);
            let vp = Region::new("Vp", vk.len() as u64, 8);
            let threads = par_hash_join_patterns(&u, &v, &w, &up, &vp, 16, dop as u64);
            let par = model.advance_parallel(&threads, &mut model.staged(&CacheState::cold()));
            let predicted = par.wall_ns + PER_OP * run.ops as f64 / dop as f64;
            let ratio = predicted / run.wall_ns;
            assert!(
                (0.4..2.5).contains(&ratio),
                "dop {dop}: predicted {predicted:.0} vs measured {:.0} (ratio {ratio:.2})",
                run.wall_ns
            );
        }
    }

    #[test]
    fn native_parallel_operators_match_sim_results() {
        // The same parallel stages on real host memory: genuine
        // concurrent threads over native buffers must produce exactly
        // the results of the simulated run (only timing differs).
        let spec = presets::tiny_smp(4);
        let keys = Workload::new(97).zipf_keys(4_000, 300, 1.0);
        for dop in [1, 2, 4] {
            let sim = par_filter_lt(&spec, &keys, 150, dop, PER_OP);
            let native = par_filter_lt_native(&keys, 150, dop);
            assert_eq!(sim.out, native.out, "filter dop {dop}");
            assert!(native.wall_ns > 0.0, "wall clock must advance");
            assert_eq!(native.thread_ns.len(), dop);

            let sim_g = par_group_count(&spec, &keys, dop, PER_OP);
            let native_g = par_group_count_native(&keys, dop);
            let sort = |mut v: Vec<(u64, u64)>| {
                v.sort_unstable();
                v
            };
            assert_eq!(sort(sim_g.out), sort(native_g.out), "group dop {dop}");
        }
        let mut wl = Workload::new(98);
        let (uk, vk) = wl.join_pair(2_000);
        for dop in [1, 2, 4] {
            let sim = par_hash_join(&spec, &uk, &vk, 4, dop, PER_OP);
            let native = par_hash_join_native(&uk, &vk, 4, dop);
            let sort = |mut v: Vec<u64>| {
                v.sort_unstable();
                v
            };
            assert_eq!(sort(sim.out), sort(native.out), "join dop {dop}");
            assert_eq!(native.ops, sim.ops, "identical logical work");
        }
    }

    #[test]
    fn worker_spans_cover_every_thread() {
        let spec = presets::tiny_smp(4);
        let keys = Workload::new(99).shuffled_keys(2_000);
        let recorder = gcm_obs::SpanRecorder::new();
        let mut sink = recorder.sink();
        let t0 = sink.now_ns();
        let run = par_filter_lt(&spec, &keys, 500, 4, PER_OP);
        record_worker_spans(&mut sink, "filter", t0, &run);
        let spans = recorder.drain();
        assert_eq!(spans.len(), 4);
        for (i, s) in spans.iter().enumerate() {
            assert_eq!(s.name, format!("filter/worker{i}"));
            assert!(s.elapsed_ns > 0.0);
            assert!(s.end_ns >= s.start_ns);
        }
    }

    #[test]
    fn pattern_builders_shapes() {
        let u = Region::new("U", 1_000, 8);
        let w = Region::new("W", 500, 8);
        assert_eq!(par_select_patterns(&u, &w, 4).len(), 4);
        let (threads, merge) = par_group_patterns(&u, 100, &w, 4);
        assert_eq!(threads.len(), 4);
        assert!(!merge.is_empty());
        // dop = 1: no merge stage.
        let (one, merge1) = par_group_patterns(&u, 100, &w, 1);
        assert_eq!(one.len(), 1);
        assert!(merge1.is_empty());
        let up = Region::new("Up", 1_000, 8);
        let vp = Region::new("Vp", 1_000, 8);
        let v = Region::new("V", 1_000, 8);
        let joins = par_hash_join_patterns(&u, &v, &w, &up, &vp, 8, 4);
        assert_eq!(joins.len(), 4);
        for t in &joins {
            let s = t.to_string();
            assert!(s.contains("nest(Up, 8"), "{s}");
            assert!(s.contains("r_acc(H"), "{s}");
        }
    }
}
