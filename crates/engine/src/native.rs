//! The native backend: operators on the **real** memory of the host.
//!
//! [`NativeBackend`] allocates real buffers, performs real loads and
//! stores, and reports elapsed wall-clock time via [`std::time::Instant`]
//! — the measured side of the paper's §6 validation on an actual machine
//! instead of the simulator. Addressing mirrors the simulator's arena
//! exactly (bump allocation from the same base, same alignment rules), so
//! a physical plan executed on both backends performs the identical
//! sequence of logical accesses and produces byte-identical results; only
//! the substrate underneath — and therefore the *measurement* — differs.
//!
//! What native can and cannot count (see the table in
//! [`crate::backend`]): it has no per-level miss counters (those exist
//! only in hardware performance counters the portable build does not
//! read); it measures wall time, which includes CPU work, host-side
//! oracle passes, and allocation — so comparisons against the model use
//! generous documented bounds, while *result* comparisons against the
//! sim backend are exact.
//!
//! Charged accesses go through [`std::hint::black_box`] so the optimizer
//! cannot elide the loads the access-pattern language describes;
//! [`NativeBackend::cold_caches`] approximates the paper's "initially
//! empty caches" (§4.5) by sweeping an eviction buffer larger than any
//! LLC we expect to meet.

use crate::backend::MemoryBackend;
use crate::ctx::ExecContext;
use gcm_sim::Addr;
use std::hint::black_box;
use std::time::Instant;

/// Base of the native address space — identical to the simulator's
/// [`gcm_sim::arena::ARENA_BASE`] so allocation sequences produce the
/// same addresses on both backends.
const NATIVE_BASE: Addr = 4096;

/// Line granularity of charged accesses (one real load per line), the
/// ubiquitous 64-byte cache line of current hardware.
const NATIVE_LINE: u64 = 64;

/// Default eviction-sweep size: comfortably past typical LLCs.
const DEFAULT_WIPE_BYTES: usize = 32 << 20;

/// Interval counters of a native run.
///
/// Native memory cannot expose per-level miss counts; it counts what it
/// can — elapsed wall time plus the logical access/line totals the
/// operators drove through the charged interface (useful to confirm two
/// backends performed the same logical work).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NativeCounters {
    /// Elapsed wall-clock nanoseconds.
    pub elapsed_ns: f64,
    /// Charged accesses performed.
    pub accesses: u64,
    /// Cache lines touched by charged accesses (with re-touches; this is
    /// traffic, not a miss count).
    pub lines: u64,
}

/// Real host memory behind the engine's backend interface.
#[derive(Debug)]
pub struct NativeBackend {
    data: Vec<u8>,
    next: Addr,
    t0: Instant,
    accesses: u64,
    lines: u64,
    wipe: Vec<u8>,
}

impl Default for NativeBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl NativeBackend {
    /// A fresh native address space (grows on demand).
    pub fn new() -> NativeBackend {
        NativeBackend {
            data: Vec::new(),
            next: NATIVE_BASE,
            t0: Instant::now(),
            accesses: 0,
            lines: 0,
            wipe: Vec::new(),
        }
    }

    /// Pre-reserve `bytes` of backing store so mid-measurement
    /// allocations do not pay a reallocation (they still pay the zeroing
    /// of their own pages — as any real allocator would).
    pub fn with_capacity(bytes: usize) -> NativeBackend {
        let mut b = NativeBackend::new();
        b.data.reserve(bytes);
        b
    }

    /// Total bytes allocated so far.
    pub fn allocated(&self) -> u64 {
        self.next - NATIVE_BASE
    }

    #[inline]
    fn idx(&self, addr: Addr) -> usize {
        debug_assert!(addr >= NATIVE_BASE, "address {addr} below native base");
        (addr - NATIVE_BASE) as usize
    }

    /// One real 8-byte load per touched line, folded and black-boxed so
    /// the loads cannot be elided.
    #[inline]
    fn touch_lines(&mut self, addr: Addr, len: u64) {
        let first = addr & !(NATIVE_LINE - 1);
        let last = (addr + len - 1) & !(NATIVE_LINE - 1);
        let mut acc = 0u64;
        let mut a = first.max(NATIVE_BASE);
        loop {
            let i = self.idx(a);
            acc ^= u64::from_le_bytes(self.data[i..i + 8].try_into().expect("padded slab"));
            self.lines += 1;
            if a >= last {
                break;
            }
            a += NATIVE_LINE;
        }
        black_box(acc);
        self.accesses += 1;
    }
}

impl MemoryBackend for NativeBackend {
    type Counters = NativeCounters;

    fn alloc(&mut self, bytes: u64, align: u64) -> Addr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let addr = (self.next + align - 1) & !(align - 1);
        self.next = addr + bytes;
        // Pad past the last line so per-line 8-byte reads stay in bounds.
        let needed = (self.next - NATIVE_BASE) as usize + NATIVE_LINE as usize;
        if self.data.len() < needed {
            self.data.resize(needed, 0);
        }
        addr
    }

    fn line_align(&self) -> u64 {
        NATIVE_LINE
    }

    fn touch(&mut self, addr: Addr, len: u64) {
        if len == 0 {
            return;
        }
        self.touch_lines(addr, len);
    }

    fn read_u64(&mut self, addr: Addr) -> u64 {
        let i = self.idx(addr);
        self.accesses += 1;
        self.lines += 1;
        black_box(u64::from_le_bytes(
            self.data[i..i + 8].try_into().expect("8 bytes"),
        ))
    }

    fn write_u64(&mut self, addr: Addr, v: u64) {
        let i = self.idx(addr);
        self.accesses += 1;
        self.lines += 1;
        self.data[i..i + 8].copy_from_slice(&v.to_le_bytes());
    }

    fn copy(&mut self, src: Addr, dst: Addr, len: u64) {
        let s = self.idx(src);
        let d = self.idx(dst);
        self.data.copy_within(s..s + len as usize, d);
        self.accesses += 2;
        self.lines += 2 * len.div_ceil(NATIVE_LINE).max(1);
    }

    fn swap(&mut self, a: Addr, b: Addr, w: u64) {
        if a == b {
            // A self-swap is a harmless no-op on the sim backend (its
            // default reads and rewrites the tuple); keep the backends
            // behaviourally identical.
            self.touch(a, w);
            self.touch(b, w);
            return;
        }
        let (ai, bi) = (self.idx(a), self.idx(b));
        let (lo, hi) = if ai < bi { (ai, bi) } else { (bi, ai) };
        assert!(lo + w as usize <= hi, "tuples overlap");
        let (front, back) = self.data.split_at_mut(hi);
        front[lo..lo + w as usize].swap_with_slice(&mut back[..w as usize]);
        self.accesses += 2;
        self.lines += 2 * w.div_ceil(NATIVE_LINE).max(1);
    }

    fn host_read_u64(&self, addr: Addr) -> u64 {
        let i = self.idx(addr);
        u64::from_le_bytes(self.data[i..i + 8].try_into().expect("8 bytes"))
    }

    fn host_write_u64(&mut self, addr: Addr, v: u64) {
        let i = self.idx(addr);
        self.data[i..i + 8].copy_from_slice(&v.to_le_bytes());
    }

    fn host_read_bytes(&self, addr: Addr, buf: &mut [u8]) {
        let i = self.idx(addr);
        buf.copy_from_slice(&self.data[i..i + buf.len()]);
    }

    fn host_write_bytes(&mut self, addr: Addr, buf: &[u8]) {
        let i = self.idx(addr);
        self.data[i..i + buf.len()].copy_from_slice(buf);
    }

    fn counters(&self) -> NativeCounters {
        NativeCounters {
            elapsed_ns: self.t0.elapsed().as_secs_f64() * 1e9,
            accesses: self.accesses,
            lines: self.lines,
        }
    }

    fn counters_since(&self, earlier: &NativeCounters) -> NativeCounters {
        let now = self.counters();
        NativeCounters {
            elapsed_ns: now.elapsed_ns - earlier.elapsed_ns,
            accesses: now.accesses - earlier.accesses,
            lines: now.lines - earlier.lines,
        }
    }

    fn elapsed_ns(c: &NativeCounters) -> f64 {
        c.elapsed_ns
    }

    /// The wall clock already includes every nanosecond of CPU work:
    /// charging `per_op_ns × ops` on top would double-count `T_cpu`, so
    /// native total time is the elapsed time alone.
    fn total_ns(c: &NativeCounters, _ops: u64, _per_op_ns: f64) -> f64 {
        c.elapsed_ns
    }

    /// Best-effort cold caches: stream a buffer larger than any LLC we
    /// expect, with writes, so the working set of the next measurement
    /// starts (mostly) evicted. Unlike the simulator's exact flush this
    /// is approximate — another reason native timing assertions use
    /// generous bounds.
    fn cold_caches(&mut self) {
        if self.wipe.is_empty() {
            self.wipe = vec![1u8; DEFAULT_WIPE_BYTES];
        }
        let mut acc = 0u64;
        for i in (0..self.wipe.len()).step_by(NATIVE_LINE as usize) {
            acc = acc.wrapping_add(self.wipe[i] as u64);
            self.wipe[i] = acc as u8;
        }
        black_box(acc);
    }
}

impl ExecContext<NativeBackend> {
    /// An execution context on the host's real memory.
    pub fn native() -> ExecContext<NativeBackend> {
        ExecContext::with_backend(NativeBackend::new())
    }

    /// A native context with `bytes` of backing store pre-reserved.
    pub fn native_with_capacity(bytes: usize) -> ExecContext<NativeBackend> {
        ExecContext::with_backend(NativeBackend::with_capacity(bytes))
    }
}

/// Calibrate the native per-logical-op CPU charge the way the paper
/// calibrates `T_cpu` (§6.1): run an operator over an in-cache working
/// set, warm, and divide elapsed wall time by the logical ops performed.
/// Used to *predict* native totals from the cost model's `T_mem` plus
/// `per_op_ns × ops`.
pub fn calibrate_per_op_ns() -> f64 {
    let mut ctx = ExecContext::native();
    let keys: Vec<u64> = (0..2048).collect();
    let rel = ctx.relation_from_keys("cal", &keys, 8);
    // Warm the (16 KB, L1/L2-resident) working set.
    crate::ops::scan::scan_sum(&mut ctx, &rel, 8);
    let (_, stats) = ctx.measure(|c| {
        let mut acc = 0u64;
        for _ in 0..64 {
            acc = acc.wrapping_add(crate::ops::scan::scan_sum(c, &rel, 8));
        }
        black_box(acc);
    });
    (NativeBackend::elapsed_ns(&stats.mem) / stats.ops.max(1) as f64).max(0.01)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use gcm_workload::Workload;

    #[test]
    fn native_roundtrip_and_alignment() {
        let mut m = NativeBackend::new();
        let a = MemoryBackend::alloc(&mut m, 100, 64);
        assert_eq!(a % 64, 0);
        assert_eq!(a, NATIVE_BASE);
        m.write_u64(a, 0xDEAD_BEEF);
        assert_eq!(MemoryBackend::read_u64(&mut m, a), 0xDEAD_BEEF);
        m.host_write_u64(a + 8, 7);
        assert_eq!(m.host_read_u64(a + 8), 7);
        let b = MemoryBackend::alloc(&mut m, 16, 8);
        MemoryBackend::copy(&mut m, a, b, 16);
        assert_eq!(m.host_read_u64(b), 0xDEAD_BEEF);
    }

    #[test]
    fn addresses_mirror_the_sim_arena() {
        use gcm_sim::Arena;
        let mut native = NativeBackend::new();
        let mut sim = Arena::new();
        for (bytes, align) in [(100, 64), (8, 8), (4096, 128), (1, 8)] {
            assert_eq!(
                MemoryBackend::alloc(&mut native, bytes, align),
                sim.alloc(bytes, align),
                "alloc({bytes}, {align})"
            );
        }
    }

    #[test]
    fn counters_advance_monotonically() {
        let mut m = NativeBackend::new();
        let a = MemoryBackend::alloc(&mut m, 4096, 64);
        let before = m.counters();
        MemoryBackend::touch(&mut m, a, 4096);
        let d = m.counters_since(&before);
        assert_eq!(d.lines, 64);
        assert_eq!(d.accesses, 1);
        assert!(d.elapsed_ns >= 0.0);
    }

    #[test]
    fn native_context_runs_real_operators() {
        let mut ctx = ExecContext::native();
        let keys = Workload::new(9).shuffled_keys(1000);
        let rel = ctx.relation_from_keys("U", &keys, 8);
        let (sum, stats) = ctx.measure(|c| ops::scan::scan_sum(c, &rel, 8));
        assert_eq!(sum, (0..1000).sum::<u64>());
        assert_eq!(stats.ops, 1000);
        assert!(stats.total_ns(4.0) > 0.0, "wall clock must advance");
        ops::sort::quick_sort(&mut ctx, &rel);
        for i in 0..1000 {
            assert_eq!(ctx.mem.host_read_u64(rel.tuple(i)), i);
        }
    }

    #[test]
    fn native_total_ns_is_wall_clock_only() {
        let c = NativeCounters {
            elapsed_ns: 500.0,
            accesses: 1,
            lines: 1,
        };
        assert_eq!(NativeBackend::total_ns(&c, 1_000_000, 100.0), 500.0);
    }

    #[test]
    fn swap_rejects_overlap_and_swaps_payload() {
        let mut ctx = ExecContext::native();
        let rel = ctx.relation_from_keys("R", &[1, 2], 16);
        ctx.mem.host_write_u64(rel.tuple(0) + 8, 111);
        ctx.swap_tuples(&rel, 0, 1);
        assert_eq!(ctx.mem.host_read_u64(rel.tuple(0)), 2);
        assert_eq!(ctx.mem.host_read_u64(rel.tuple(1)), 1);
        assert_eq!(ctx.mem.host_read_u64(rel.tuple(1) + 8), 111);
        // Self-swap: a no-op on both backends, never a panic.
        ctx.swap_tuples(&rel, 1, 1);
        assert_eq!(ctx.mem.host_read_u64(rel.tuple(1)), 1);
    }

    #[test]
    fn per_op_calibration_is_positive_and_small() {
        let per_op = calibrate_per_op_ns();
        // An in-cache logical op costs somewhere between a fraction of a
        // ns and (on a wildly loaded CI box) a few hundred ns.
        assert!(per_op > 0.0 && per_op < 1000.0, "per_op = {per_op}");
    }

    #[test]
    fn cold_caches_is_callable_and_preserves_data() {
        let mut ctx = ExecContext::native();
        let rel = ctx.relation_from_keys("R", &[42], 8);
        ctx.cold_caches();
        assert_eq!(ctx.mem.host_read_u64(rel.tuple(0)), 42);
    }
}
