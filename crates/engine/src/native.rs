//! The native backend: operators on the **real** memory of the host.
//!
//! [`NativeBackend`] allocates real buffers, performs real loads and
//! stores, and reports elapsed wall-clock time via [`std::time::Instant`]
//! — the measured side of the paper's §6 validation on an actual machine
//! instead of the simulator. Addressing mirrors the simulator's arena
//! exactly (bump allocation from the same base, same alignment rules), so
//! a physical plan executed on both backends performs the identical
//! sequence of logical accesses and produces byte-identical results; only
//! the substrate underneath — and therefore the *measurement* — differs.
//!
//! What native can and cannot count (see the table in
//! [`crate::backend`]): by default it measures wall time plus logical
//! access/line totals — wall time includes CPU work, host-side oracle
//! passes, and allocation, so comparisons against the model use
//! generous documented bounds, while *result* comparisons against the
//! sim backend are exact. On a perf-capable Linux host,
//! [`NativeBackend::attach_pmu`] additionally opens the hardware
//! counter group of [`gcm_obs::pmu`]: counter snapshots then carry
//! real L1D/LLC/dTLB miss counts, and
//! [`MemoryBackend::counter_level_misses`] reports them as per-level
//! rows (`"L1d"`, `"LLC"`, `"dTLB"`) — the measured side of the
//! paper's Eq 6.1 *miss* predictions on real silicon. Where the
//! kernel or platform forbids counting the attach reports
//! [`PmuStatus::Unavailable`] and snapshots simply carry no PMU block;
//! absence of rows means "not observable", never "zero misses".
//!
//! Charged accesses go through [`std::hint::black_box`] so the optimizer
//! cannot elide the loads the access-pattern language describes;
//! [`NativeBackend::cold_caches`] approximates the paper's "initially
//! empty caches" (§4.5) by sweeping an eviction buffer larger than any
//! LLC we expect to meet.

use crate::backend::MemoryBackend;
use crate::ctx::ExecContext;
use crate::kernels;
use gcm_hardware::stride;
use gcm_obs::pmu::{PmuGroup, PmuSample, PmuStatus};
use gcm_sim::Addr;
use std::hint::black_box;
use std::time::Instant;

/// Base of the native address space — identical to the simulator's
/// [`gcm_sim::arena::ARENA_BASE`] so allocation sequences produce the
/// same addresses on both backends.
const NATIVE_BASE: Addr = 4096;

/// Line granularity of charged accesses (one real load per line), the
/// ubiquitous 64-byte cache line of current hardware.
const NATIVE_LINE: u64 = 64;

/// Default eviction-sweep size: comfortably past typical LLCs.
const DEFAULT_WIPE_BYTES: usize = 32 << 20;

/// Interval counters of a native run.
///
/// Always counts elapsed wall time plus the logical access/line totals
/// the operators drove through the charged interface (useful to
/// confirm two backends performed the same logical work). With a PMU
/// group attached ([`NativeBackend::attach_pmu`]) each snapshot also
/// carries the cumulative hardware sample, so interval diffs expose
/// real per-level miss counts; without one the field is `None` —
/// honestly unobservable, not zero.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NativeCounters {
    /// Elapsed wall-clock nanoseconds.
    pub elapsed_ns: f64,
    /// Charged accesses performed.
    pub accesses: u64,
    /// Cache lines touched by charged accesses (with re-touches; this is
    /// traffic, not a miss count).
    pub lines: u64,
    /// Hardware counter sample (cumulative in [`MemoryBackend::counters`]
    /// snapshots, interval in [`MemoryBackend::counters_since`] diffs)
    /// when a PMU group is attached and readable.
    pub pmu: Option<PmuSample>,
}

/// Real host memory behind the engine's backend interface.
#[derive(Debug)]
pub struct NativeBackend {
    data: Vec<u8>,
    next: Addr,
    t0: Instant,
    accesses: u64,
    lines: u64,
    wipe: Vec<u8>,
    /// Route dense bulk operations through the vectorized kernels of
    /// [`crate::kernels`] (on by default). Off = the per-tuple scalar
    /// reference path, byte-identical in results and counters.
    use_kernels: bool,
    /// N-ahead software-prefetch distance advertised to operators.
    prefetch_dist: u64,
    /// Hardware counter group, when [`NativeBackend::attach_pmu`]
    /// succeeded on this thread. Enabled for its whole lifetime;
    /// snapshots read cumulative values and diffs scope them.
    pmu: Option<PmuGroup>,
}

impl Default for NativeBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl NativeBackend {
    /// A fresh native address space (grows on demand), with the
    /// vectorized kernel path enabled and the fallback prefetch
    /// distance ([`kernels::DEFAULT_PREFETCH_DISTANCE`]).
    pub fn new() -> NativeBackend {
        NativeBackend {
            data: Vec::new(),
            next: NATIVE_BASE,
            t0: Instant::now(),
            accesses: 0,
            lines: 0,
            wipe: Vec::new(),
            use_kernels: true,
            prefetch_dist: kernels::DEFAULT_PREFETCH_DISTANCE,
            pmu: None,
        }
    }

    /// Pre-reserve `bytes` of backing store so mid-measurement
    /// allocations do not pay a reallocation (they still pay the zeroing
    /// of their own pages — as any real allocator would).
    pub fn with_capacity(bytes: usize) -> NativeBackend {
        let mut b = NativeBackend::new();
        b.data.reserve(bytes);
        b
    }

    /// A backend pinned to the scalar reference path: bulk operations
    /// run the per-tuple trait defaults and no prefetch distance is
    /// advertised. This is the baseline of the `kernel_throughput`
    /// bench and of the kernel-identity tests — it executes exactly the
    /// loops the paper's Eq 6.1 assumes.
    pub fn scalar_reference() -> NativeBackend {
        let mut b = NativeBackend::new();
        b.use_kernels = false;
        b.prefetch_dist = 0;
        b
    }

    /// Enable or disable the vectorized kernel path (disabling also
    /// silences [`MemoryBackend::prefetch_distance`]).
    pub fn set_use_kernels(&mut self, on: bool) {
        self.use_kernels = on;
    }

    /// Whether the vectorized kernel path is active.
    pub fn kernels_enabled(&self) -> bool {
        self.use_kernels
    }

    /// Override the N-ahead prefetch distance (e.g. with a calibrated
    /// value from [`kernels::prefetch_distance_for`]).
    pub fn set_prefetch_distance(&mut self, items: u64) {
        self.prefetch_dist = items;
    }

    /// Total bytes allocated so far.
    pub fn allocated(&self) -> u64 {
        self.next - NATIVE_BASE
    }

    /// Attach the standard hardware counter group
    /// ([`gcm_obs::pmu::PMU_EVENTS`]) to **this thread** and start it
    /// counting; subsequent counter snapshots carry a [`PmuSample`]
    /// and [`MemoryBackend::counter_level_misses`] reports real
    /// per-level miss rows. Returns the attach outcome: on
    /// [`PmuStatus::Unavailable`] (paranoid kernel, no PMU in this
    /// VM, non-Linux platform) the backend simply stays in the
    /// wall-clock-only mode and the reason says why.
    pub fn attach_pmu(&mut self) -> PmuStatus {
        match PmuGroup::standard() {
            Ok(group) => {
                group.enable();
                self.pmu = Some(group);
                PmuStatus::Available
            }
            Err(status) => {
                self.pmu = None;
                status
            }
        }
    }

    /// Close the attached counter group (snapshots stop carrying PMU
    /// samples). A no-op when none is attached.
    pub fn detach_pmu(&mut self) {
        self.pmu = None;
    }

    /// Whether a hardware counter group is currently attached.
    pub fn pmu_attached(&self) -> bool {
        self.pmu.is_some()
    }

    #[inline]
    fn idx(&self, addr: Addr) -> usize {
        debug_assert!(addr >= NATIVE_BASE, "address {addr} below native base");
        (addr - NATIVE_BASE) as usize
    }

    /// One real 8-byte load per touched line, via the shared
    /// [`stride::sweep_fold`] walk (the very loop the calibrator times),
    /// black-boxed so the loads cannot be elided.
    #[inline]
    fn touch_lines(&mut self, addr: Addr, len: u64) {
        let first = (addr & !(NATIVE_LINE - 1)).max(NATIVE_BASE);
        let last = (addr + len - 1) & !(NATIVE_LINE - 1);
        let lo = self.idx(first);
        let hi = self.idx(last) + 8; // alloc pads a line past the end
        let (acc, steps) = stride::sweep_fold(&self.data[lo..hi], NATIVE_LINE as usize);
        black_box(acc);
        self.lines += steps;
        self.accesses += 1;
    }
}

impl MemoryBackend for NativeBackend {
    type Counters = NativeCounters;

    fn alloc(&mut self, bytes: u64, align: u64) -> Addr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let addr = (self.next + align - 1) & !(align - 1);
        self.next = addr + bytes;
        // Pad past the last line so per-line 8-byte reads stay in bounds.
        let needed = (self.next - NATIVE_BASE) as usize + NATIVE_LINE as usize;
        if self.data.len() < needed {
            self.data.resize(needed, 0);
        }
        addr
    }

    fn line_align(&self) -> u64 {
        NATIVE_LINE
    }

    fn touch(&mut self, addr: Addr, len: u64) {
        if len == 0 {
            return;
        }
        self.touch_lines(addr, len);
    }

    fn read_u64(&mut self, addr: Addr) -> u64 {
        let i = self.idx(addr);
        self.accesses += 1;
        // An 8-byte access straddling a line boundary touches two lines.
        self.lines += stride::lines_touched(addr, 8, NATIVE_LINE);
        black_box(u64::from_le_bytes(
            self.data[i..i + 8].try_into().expect("8 bytes"),
        ))
    }

    fn write_u64(&mut self, addr: Addr, v: u64) {
        let i = self.idx(addr);
        self.accesses += 1;
        self.lines += stride::lines_touched(addr, 8, NATIVE_LINE);
        self.data[i..i + 8].copy_from_slice(&v.to_le_bytes());
    }

    fn prefetch_read(&mut self, addr: Addr) {
        if addr >= NATIVE_BASE {
            let i = (addr - NATIVE_BASE) as usize;
            if i < self.data.len() {
                stride::prefetch_read(self.data.as_ptr().wrapping_add(i));
            }
        }
    }

    fn prefetch_write(&mut self, addr: Addr) {
        if addr >= NATIVE_BASE {
            let i = (addr - NATIVE_BASE) as usize;
            if i < self.data.len() {
                stride::prefetch_write(self.data.as_ptr().wrapping_add(i));
            }
        }
    }

    fn prefetch_distance(&self) -> u64 {
        if self.use_kernels {
            self.prefetch_dist
        } else {
            0
        }
    }

    /// Dense scans (`w == u == 8`, word-aligned) run the SIMD sweep of
    /// [`kernels::sum_words`]; everything else runs the per-tuple
    /// reference loop with an N-ahead read prefetch. Both paths charge
    /// exactly what the trait default would: one access per tuple, and
    /// the lines each touch spans (an aligned 8-byte read never
    /// straddles, so the dense path is one line per tuple).
    fn scan_sum_bulk(&mut self, base: Addr, n: u64, w: u64, u: u64) -> u64 {
        if self.use_kernels && w == 8 && u == 8 && base.is_multiple_of(8) && n > 0 {
            let lo = self.idx(base);
            let hi = lo + (n * 8) as usize;
            let sum = kernels::sum_words(&self.data[lo..hi]);
            self.accesses += n;
            self.lines += n;
            return sum;
        }
        let dist = self.prefetch_distance();
        let mut sum = 0u64;
        for i in 0..n {
            if dist > 0 && i + dist < n {
                self.prefetch_read(base + (i + dist) * w);
            }
            let addr = base + i * w;
            self.touch(addr, u);
            sum = sum.wrapping_add(self.host_read_u64(addr));
        }
        sum
    }

    /// Dense selections (`w == dst_w == 8`, word-aligned) evaluate the
    /// predicate with the SIMD comparator [`kernels::lt_mask`] over
    /// 64-key blocks and copy qualifying keys from the mask bits; other
    /// shapes run the reference loop with read prefetch. Accounting
    /// matches the trait default: one access/line per tuple touched,
    /// two accesses/lines per hit copied (aligned 8-byte transfers).
    fn select_lt_bulk(
        &mut self,
        src: Addr,
        n: u64,
        w: u64,
        threshold: u64,
        dst: Addr,
        dst_w: u64,
    ) -> u64 {
        if self.use_kernels
            && w == 8
            && dst_w == 8
            && src.is_multiple_of(8)
            && dst.is_multiple_of(8)
        {
            let mut hits = 0u64;
            let mut i = 0u64;
            while i < n {
                let chunk = (n - i).min(64);
                let s = self.idx(src + i * 8);
                let mut m = kernels::lt_mask(&self.data[s..s + (chunk * 8) as usize], threshold);
                while m != 0 {
                    let j = m.trailing_zeros() as u64;
                    let from = s + (j * 8) as usize;
                    let to = self.idx(dst + hits * 8);
                    self.data.copy_within(from..from + 8, to);
                    hits += 1;
                    m &= m - 1;
                }
                i += chunk;
            }
            self.accesses += n + 2 * hits;
            self.lines += n + 2 * hits;
            return hits;
        }
        let dist = self.prefetch_distance();
        let cw = w.min(dst_w);
        let mut hits = 0u64;
        for i in 0..n {
            if dist > 0 && i + dist < n {
                self.prefetch_read(src + (i + dist) * w);
            }
            let addr = src + i * w;
            self.touch(addr, w);
            let key = self.host_read_u64(addr);
            if key < threshold {
                self.copy(addr, dst + hits * dst_w, cw);
                hits += 1;
            }
        }
        hits
    }

    /// Dense scatters (`w == 8`, word-aligned) run a raw copy loop with
    /// an N-ahead write prefetch of the destination cursor of the tuple
    /// `dist` ahead — the open-buffer stores are the partition pattern's
    /// random component, so hiding their miss is the whole game; other
    /// shapes run the reference loop. Accounting matches the trait
    /// default: one access/line touching each input tuple, two
    /// accesses/lines per charged copy (aligned 8-byte transfers).
    fn partition_scatter_bulk(
        &mut self,
        src: Addr,
        n: u64,
        w: u64,
        dst: Addr,
        buckets: &[u32],
        cursors: &mut [u64],
    ) {
        debug_assert_eq!(buckets.len() as u64, n);
        if self.use_kernels && w == 8 && src.is_multiple_of(8) && dst.is_multiple_of(8) {
            let dist = self.prefetch_dist as usize;
            let s0 = self.idx(src);
            let d0 = self.idx(dst);
            for i in 0..n as usize {
                if dist > 0 && i + dist < n as usize {
                    let ba = buckets[i + dist] as usize;
                    let di = d0 + cursors[ba] as usize * 8;
                    if di < self.data.len() {
                        stride::prefetch_write(self.data.as_ptr().wrapping_add(di));
                    }
                }
                let b = buckets[i] as usize;
                let to = d0 + cursors[b] as usize * 8;
                self.data.copy_within(s0 + i * 8..s0 + i * 8 + 8, to);
                cursors[b] += 1;
            }
            self.accesses += 3 * n;
            self.lines += 3 * n;
            return;
        }
        for i in 0..n {
            let from = src + i * w;
            self.touch(from, w);
            let b = buckets[i as usize] as usize;
            self.copy(from, dst + cursors[b] * w, w);
            cursors[b] += 1;
        }
    }

    fn copy(&mut self, src: Addr, dst: Addr, len: u64) {
        let s = self.idx(src);
        let d = self.idx(dst);
        self.data.copy_within(s..s + len as usize, d);
        self.accesses += 2;
        self.lines += 2 * len.div_ceil(NATIVE_LINE).max(1);
    }

    fn swap(&mut self, a: Addr, b: Addr, w: u64) {
        if a == b {
            // A self-swap is a harmless no-op on the sim backend (its
            // default reads and rewrites the tuple); keep the backends
            // behaviourally identical.
            self.touch(a, w);
            self.touch(b, w);
            return;
        }
        let (ai, bi) = (self.idx(a), self.idx(b));
        let (lo, hi) = if ai < bi { (ai, bi) } else { (bi, ai) };
        assert!(lo + w as usize <= hi, "tuples overlap");
        let (front, back) = self.data.split_at_mut(hi);
        front[lo..lo + w as usize].swap_with_slice(&mut back[..w as usize]);
        self.accesses += 2;
        self.lines += 2 * w.div_ceil(NATIVE_LINE).max(1);
    }

    fn host_read_u64(&self, addr: Addr) -> u64 {
        let i = self.idx(addr);
        u64::from_le_bytes(self.data[i..i + 8].try_into().expect("8 bytes"))
    }

    fn host_write_u64(&mut self, addr: Addr, v: u64) {
        let i = self.idx(addr);
        self.data[i..i + 8].copy_from_slice(&v.to_le_bytes());
    }

    fn host_read_bytes(&self, addr: Addr, buf: &mut [u8]) {
        let i = self.idx(addr);
        buf.copy_from_slice(&self.data[i..i + buf.len()]);
    }

    fn host_write_bytes(&mut self, addr: Addr, buf: &[u8]) {
        let i = self.idx(addr);
        self.data[i..i + buf.len()].copy_from_slice(buf);
    }

    fn counters(&self) -> NativeCounters {
        NativeCounters {
            elapsed_ns: self.t0.elapsed().as_secs_f64() * 1e9,
            accesses: self.accesses,
            lines: self.lines,
            pmu: self.pmu.as_ref().and_then(|g| g.read()),
        }
    }

    fn counters_since(&self, earlier: &NativeCounters) -> NativeCounters {
        let now = self.counters();
        NativeCounters {
            elapsed_ns: now.elapsed_ns - earlier.elapsed_ns,
            accesses: now.accesses - earlier.accesses,
            lines: now.lines - earlier.lines,
            // A group attached mid-interval has no baseline: its full
            // cumulative reading IS the interval.
            pmu: match (now.pmu, earlier.pmu) {
                (Some(a), Some(b)) => Some(a.since(&b)),
                (Some(a), None) => Some(a),
                _ => None,
            },
        }
    }

    fn elapsed_ns(c: &NativeCounters) -> f64 {
        c.elapsed_ns
    }

    fn counter_accesses(c: &NativeCounters) -> Option<u64> {
        Some(c.accesses)
    }

    /// Real per-level miss rows from the attached PMU group — the
    /// hardware's answer to the question the sim backend answers
    /// exactly. Without an attached (and readable) group this is
    /// empty, which every consumer treats as "not observable".
    fn counter_level_misses(&self, c: &NativeCounters) -> Vec<(String, u64)> {
        match &c.pmu {
            Some(s) => s
                .level_misses()
                .iter()
                .map(|(name, misses)| (name.to_string(), *misses))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Documented no-op: real hardware does not expose *which access*
    /// missed at which level, so native memory cannot record a
    /// per-access miss trace (aggregate per-level counts are a
    /// different story — see [`NativeBackend::attach_pmu`]). Attach
    /// reports `false`, take yields `None`, and trace consumers fall
    /// back to wall-clock-only attribution.
    fn attach_miss_trace(&mut self, _capacity: usize) -> bool {
        false
    }

    /// The wall clock already includes every nanosecond of CPU work:
    /// charging `per_op_ns × ops` on top would double-count `T_cpu`, so
    /// native total time is the elapsed time alone.
    fn total_ns(c: &NativeCounters, _ops: u64, _per_op_ns: f64) -> f64 {
        c.elapsed_ns
    }

    /// Best-effort cold caches: stream a buffer larger than any LLC we
    /// expect, with writes, so the working set of the next measurement
    /// starts (mostly) evicted. Unlike the simulator's exact flush this
    /// is approximate — another reason native timing assertions use
    /// generous bounds.
    fn cold_caches(&mut self) {
        if self.wipe.is_empty() {
            self.wipe = vec![1u8; DEFAULT_WIPE_BYTES];
        }
        let mut acc = 0u64;
        for i in (0..self.wipe.len()).step_by(NATIVE_LINE as usize) {
            acc = acc.wrapping_add(self.wipe[i] as u64);
            self.wipe[i] = acc as u8;
        }
        black_box(acc);
    }
}

impl ExecContext<NativeBackend> {
    /// An execution context on the host's real memory.
    pub fn native() -> ExecContext<NativeBackend> {
        ExecContext::with_backend(NativeBackend::new())
    }

    /// A native context with `bytes` of backing store pre-reserved.
    pub fn native_with_capacity(bytes: usize) -> ExecContext<NativeBackend> {
        ExecContext::with_backend(NativeBackend::with_capacity(bytes))
    }

    /// A native context pinned to the scalar reference path
    /// ([`NativeBackend::scalar_reference`]): no SIMD kernels, no
    /// prefetch — the measured baseline the vectorized path is compared
    /// against.
    pub fn native_scalar() -> ExecContext<NativeBackend> {
        ExecContext::with_backend(NativeBackend::scalar_reference())
    }
}

/// Calibrate the native per-logical-op CPU charge the way the paper
/// calibrates `T_cpu` (§6.1): run an operator over an in-cache working
/// set, warm, and divide elapsed wall time by the logical ops performed.
/// Used to *predict* native totals from the cost model's `T_mem` plus
/// `per_op_ns × ops`.
///
/// The probe runs on the **scalar reference** path: a logical op is one
/// per-tuple pass through the charged operator glue, which is what
/// every non-kernelized operator (hash upserts, partition scatters,
/// probes) pays per op. Calibrating on the vectorized kernels instead
/// would divide a SIMD scan's wall time over the same op count and
/// underprice every per-tuple operator several-fold.
pub fn calibrate_per_op_ns() -> f64 {
    per_op_probe(ExecContext::native_scalar())
}

/// Kernel-path companion of [`calibrate_per_op_ns`]: the same in-cache
/// probe through the vectorized kernels. This is the per-op CPU charge
/// of the *fast path* — the value to combine with the overlap
/// extension of Eq 6.1 when predicting kernelized operators (a logical
/// op the scalar glue prices at several ns costs a fraction of one
/// inside a SIMD loop).
pub fn calibrate_kernel_per_op_ns() -> f64 {
    per_op_probe(ExecContext::native())
}

fn per_op_probe(mut ctx: ExecContext<NativeBackend>) -> f64 {
    let keys: Vec<u64> = (0..2048).collect();
    let rel = ctx.relation_from_keys("cal", &keys, 8);
    // Warm the (16 KB, L1/L2-resident) working set.
    crate::ops::scan::scan_sum(&mut ctx, &rel, 8);
    let (_, stats) = ctx.measure(|c| {
        let mut acc = 0u64;
        for _ in 0..64 {
            acc = acc.wrapping_add(crate::ops::scan::scan_sum(c, &rel, 8));
        }
        black_box(acc);
    });
    (NativeBackend::elapsed_ns(&stats.mem) / stats.ops.max(1) as f64).max(0.01)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use gcm_workload::Workload;

    #[test]
    fn native_roundtrip_and_alignment() {
        let mut m = NativeBackend::new();
        let a = MemoryBackend::alloc(&mut m, 100, 64);
        assert_eq!(a % 64, 0);
        assert_eq!(a, NATIVE_BASE);
        m.write_u64(a, 0xDEAD_BEEF);
        assert_eq!(MemoryBackend::read_u64(&mut m, a), 0xDEAD_BEEF);
        m.host_write_u64(a + 8, 7);
        assert_eq!(m.host_read_u64(a + 8), 7);
        let b = MemoryBackend::alloc(&mut m, 16, 8);
        MemoryBackend::copy(&mut m, a, b, 16);
        assert_eq!(m.host_read_u64(b), 0xDEAD_BEEF);
    }

    #[test]
    fn addresses_mirror_the_sim_arena() {
        use gcm_sim::Arena;
        let mut native = NativeBackend::new();
        let mut sim = Arena::new();
        for (bytes, align) in [(100, 64), (8, 8), (4096, 128), (1, 8)] {
            assert_eq!(
                MemoryBackend::alloc(&mut native, bytes, align),
                sim.alloc(bytes, align),
                "alloc({bytes}, {align})"
            );
        }
    }

    #[test]
    fn counters_advance_monotonically() {
        let mut m = NativeBackend::new();
        let a = MemoryBackend::alloc(&mut m, 4096, 64);
        let before = m.counters();
        MemoryBackend::touch(&mut m, a, 4096);
        let d = m.counters_since(&before);
        assert_eq!(d.lines, 64);
        assert_eq!(d.accesses, 1);
        assert!(d.elapsed_ns >= 0.0);
    }

    #[test]
    fn native_context_runs_real_operators() {
        let mut ctx = ExecContext::native();
        let keys = Workload::new(9).shuffled_keys(1000);
        let rel = ctx.relation_from_keys("U", &keys, 8);
        let (sum, stats) = ctx.measure(|c| ops::scan::scan_sum(c, &rel, 8));
        assert_eq!(sum, (0..1000).sum::<u64>());
        assert_eq!(stats.ops, 1000);
        assert!(stats.total_ns(4.0) > 0.0, "wall clock must advance");
        ops::sort::quick_sort(&mut ctx, &rel);
        for i in 0..1000 {
            assert_eq!(ctx.mem.host_read_u64(rel.tuple(i)), i);
        }
    }

    #[test]
    fn native_total_ns_is_wall_clock_only() {
        let c = NativeCounters {
            elapsed_ns: 500.0,
            accesses: 1,
            lines: 1,
            pmu: None,
        };
        assert_eq!(NativeBackend::total_ns(&c, 1_000_000, 100.0), 500.0);
    }

    #[test]
    fn swap_rejects_overlap_and_swaps_payload() {
        let mut ctx = ExecContext::native();
        let rel = ctx.relation_from_keys("R", &[1, 2], 16);
        ctx.mem.host_write_u64(rel.tuple(0) + 8, 111);
        ctx.swap_tuples(&rel, 0, 1);
        assert_eq!(ctx.mem.host_read_u64(rel.tuple(0)), 2);
        assert_eq!(ctx.mem.host_read_u64(rel.tuple(1)), 1);
        assert_eq!(ctx.mem.host_read_u64(rel.tuple(1) + 8), 111);
        // Self-swap: a no-op on both backends, never a panic.
        ctx.swap_tuples(&rel, 1, 1);
        assert_eq!(ctx.mem.host_read_u64(rel.tuple(1)), 1);
    }

    #[test]
    fn per_op_calibration_is_positive_and_small() {
        let per_op = calibrate_per_op_ns();
        // An in-cache logical op costs somewhere between a fraction of a
        // ns and (on a wildly loaded CI box) a few hundred ns.
        assert!(per_op > 0.0 && per_op < 1000.0, "per_op = {per_op}");
    }

    #[test]
    fn straddling_word_access_counts_both_lines() {
        // Regression: an 8-byte access crossing a 64-B boundary used to
        // be charged one line. 4 bytes into the last word of a line it
        // spans two.
        let mut m = NativeBackend::new();
        let a = MemoryBackend::alloc(&mut m, 128, 64);
        m.host_write_u64(a + 60, 99);
        let before = m.counters();
        assert_eq!(MemoryBackend::read_u64(&mut m, a + 60), 99);
        let d = m.counters_since(&before);
        assert_eq!((d.accesses, d.lines), (1, 2));
        let before = m.counters();
        MemoryBackend::write_u64(&mut m, a + 60, 7);
        let d = m.counters_since(&before);
        assert_eq!((d.accesses, d.lines), (1, 2));
        // Aligned and in-line accesses still count one line.
        for off in [0, 8, 56] {
            let before = m.counters();
            MemoryBackend::read_u64(&mut m, a + off);
            assert_eq!(m.counters_since(&before).lines, 1, "offset {off}");
        }
    }

    #[test]
    fn prefetch_hints_are_uncharged_and_safe() {
        let mut m = NativeBackend::new();
        let a = MemoryBackend::alloc(&mut m, 256, 64);
        assert!(m.prefetch_distance() > 0);
        let before = m.counters();
        m.prefetch_read(a);
        m.prefetch_write(a + 64);
        // Out-of-slab and below-base addresses must be harmless no-ops.
        m.prefetch_read(a + (1 << 30));
        m.prefetch_write(0);
        let d = m.counters_since(&before);
        assert_eq!((d.accesses, d.lines), (0, 0));
        // The scalar reference advertises no distance.
        assert_eq!(NativeBackend::scalar_reference().prefetch_distance(), 0);
        m.set_use_kernels(false);
        assert_eq!(m.prefetch_distance(), 0);
        m.set_use_kernels(true);
        m.set_prefetch_distance(16);
        assert_eq!(m.prefetch_distance(), 16);
    }

    #[test]
    fn bulk_kernels_match_the_scalar_reference_exactly() {
        // Same relation on a kernel backend and a scalar-reference
        // backend: identical sums, hits, output bytes, AND identical
        // access/line accounting.
        let keys: Vec<u64> = (0..1000u64).map(|i| i.wrapping_mul(0x9E37)).collect();
        let run = |mem: &mut NativeBackend| {
            let src = MemoryBackend::alloc(mem, 1000 * 8, 64);
            let dst = MemoryBackend::alloc(mem, 1000 * 8, 64);
            for (i, k) in keys.iter().enumerate() {
                mem.host_write_u64(src + (i as u64) * 8, *k);
            }
            let c0 = mem.counters();
            let sum = mem.scan_sum_bulk(src, 1000, 8, 8);
            let hits = mem.select_lt_bulk(src, 1000, 8, 0x9E37 * 500, dst, 8);
            let d = mem.counters_since(&c0);
            let mut out = vec![0u8; (hits * 8) as usize];
            mem.host_read_bytes(dst, &mut out);
            (sum, hits, out, d.accesses, d.lines)
        };
        let kernel = run(&mut NativeBackend::new());
        let scalar = run(&mut NativeBackend::scalar_reference());
        assert_eq!(kernel, scalar);
        assert!(kernel.1 > 0, "the filter must select something");
        // Non-dense widths route both backends down the same strided
        // loop and still agree.
        let run_wide = |mem: &mut NativeBackend| {
            let src = MemoryBackend::alloc(mem, 100 * 32, 64);
            for i in 0..100u64 {
                mem.host_write_u64(src + i * 32, i * 3);
            }
            let c0 = mem.counters();
            let sum = mem.scan_sum_bulk(src, 100, 32, 16);
            let d = mem.counters_since(&c0);
            (sum, d.accesses, d.lines)
        };
        assert_eq!(
            run_wide(&mut NativeBackend::new()),
            run_wide(&mut NativeBackend::scalar_reference())
        );
    }

    #[test]
    fn pmu_attach_is_honest_about_availability() {
        let mut m = NativeBackend::new();
        assert!(!m.pmu_attached());
        // Without a group, snapshots carry no PMU block and per-level
        // misses are "not observable" (empty), never zero rows.
        let c = m.counters();
        assert_eq!(c.pmu, None);
        assert!(m.counter_level_misses(&c).is_empty());
        match m.attach_pmu() {
            PmuStatus::Available => {
                assert!(m.pmu_attached());
                let before = m.counters();
                assert!(before.pmu.is_some());
                let a = MemoryBackend::alloc(&mut m, 1 << 20, 64);
                MemoryBackend::touch(&mut m, a, 1 << 20);
                let d = m.counters_since(&before);
                let rows = m.counter_level_misses(&d);
                let names: Vec<&str> = rows.iter().map(|(n, _)| n.as_str()).collect();
                assert_eq!(names, ["L1d", "LLC", "dTLB"]);
                m.detach_pmu();
                assert_eq!(m.counters().pmu, None);
            }
            PmuStatus::Unavailable { reason } => {
                eprintln!(
                    "SKIPPED pmu_attach_is_honest_about_availability: pmu unavailable: {reason}"
                );
                println!(
                    "SKIPPED pmu_attach_is_honest_about_availability: pmu unavailable: {reason}"
                );
                assert!(!m.pmu_attached());
                assert_eq!(m.counters().pmu, None);
            }
        }
    }

    #[test]
    fn counters_since_adopts_a_mid_interval_pmu_attach() {
        // Synthetic check of the diff rule: (Some, None) keeps the
        // cumulative sample as the interval.
        let sample = gcm_obs::pmu::PmuSample {
            l1d_miss: 7,
            ..Default::default()
        };
        let before = NativeCounters {
            elapsed_ns: 0.0,
            accesses: 0,
            lines: 0,
            pmu: None,
        };
        let now = NativeCounters {
            elapsed_ns: 10.0,
            accesses: 1,
            lines: 1,
            pmu: Some(sample),
        };
        // Reuse the same arithmetic counters_since applies.
        let d_pmu = match (now.pmu, before.pmu) {
            (Some(a), Some(b)) => Some(a.since(&b)),
            (Some(a), None) => Some(a),
            _ => None,
        };
        assert_eq!(d_pmu.unwrap().l1d_miss, 7);
    }

    #[test]
    fn cold_caches_is_callable_and_preserves_data() {
        let mut ctx = ExecContext::native();
        let rel = ctx.relation_from_keys("R", &[42], 8);
        ctx.cold_caches();
        assert_eq!(ctx.mem.host_read_u64(rel.tuple(0)), 42);
    }
}
