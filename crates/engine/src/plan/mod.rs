//! Query plans: a tree IR, a whole-plan cost-based optimizer, and an
//! executor (the paper's motivating use-case, §1, grown to whole
//! queries, §6).
//!
//! The subsystem replaces per-operator costing with *whole-plan*
//! costing: every node of a plan tree describes itself in the access-
//! pattern language, the tree's patterns are composed with `⊕` in
//! execution order, and the composed pattern is priced in one shot — so
//! the cache-state threading of Eq 5.2 (an operator reading what its
//! producer just wrote may find it cached) and the footprint sharing of
//! Eq 5.3 (concurrent cursors inside a node compete for capacity)
//! decide between plans, not per-operator cold-cache sums.
//!
//! * [`logical`] — the algorithm-free plan tree ([`LogicalPlan`]):
//!   scan / select / join / aggregate / sort / dedup / partition over
//!   any number of base relations.
//! * [`physical`] — the executable tree ([`PhysicalPlan`]): every join
//!   node carries a [`JoinAlgorithm`](crate::planner::JoinAlgorithm),
//!   every partition node a concrete fan-out, and any parallelisable
//!   node may be wrapped in a `Parallel` annotation carrying its degree
//!   of parallelism.
//! * [`optimizer`] — enumerates physical alternatives per node (via the
//!   per-node costing engine in [`crate::planner`]), prices each
//!   complete tree stage by stage, and ranks them ([`Optimizer`]). On a
//!   multi-core machine it also enumerates a DOP per parallelisable
//!   stage, pricing a DOP-`d` stage as the `⊙`-composition of `d`
//!   per-thread patterns on shared cache levels
//!   ([`gcm_core::CostModel::advance_parallel`]) — so a stage backs off
//!   to a lower DOP when the composed footprint overruns the shared
//!   level, and to DOP 1 when the thread-spawn charge cannot be
//!   amortised.
//! * [`exec`] — lowers a physical plan onto the real operators in
//!   [`crate::ops`], returning the actual result *and* the compound
//!   pattern with actual intermediate cardinalities ([`execute`]).
//!
//! ```
//! use gcm_core::CostModel;
//! use gcm_engine::plan::{execute, LogicalPlan, Optimizer, TableStats};
//! use gcm_engine::ExecContext;
//! use gcm_hardware::presets;
//! use gcm_workload::Workload;
//!
//! // σ(F.key < 200) ⋈ D — fact table with FK draws, dimension with PKs.
//! let logical = LogicalPlan::scan(0).select_lt(200).join(LogicalPlan::scan(1));
//!
//! let mut wl = Workload::new(7);
//! let star = wl.star_scenario(2000, 400, 1);
//! let stats = [
//!     TableStats::uniform(2000, 8, 400, false),
//!     TableStats::key_column(400, 8, false),
//! ];
//!
//! // The optimizer picks the physical plan with the cheapest
//! // whole-tree predicted cost...
//! let spec = presets::tiny();
//! let model = CostModel::new(spec.clone());
//! let best = Optimizer::new(&model).optimize(&logical, &stats).unwrap();
//!
//! // ...and the executor runs it for real over the simulator.
//! let mut ctx = ExecContext::new(spec);
//! let tables = [
//!     ctx.relation_from_keys("F", &star.fact, 8),
//!     ctx.relation_from_keys("D", &star.dims[0], 8),
//! ];
//! let run = execute(&mut ctx, &best.plan, &tables).unwrap();
//! assert!(run.output.n() > 0);
//! ```

pub mod catalog;
pub mod exec;
pub mod explain;
pub mod logical;
pub mod optimizer;
pub mod physical;

/// Width of join and aggregate output tuples: the 8-byte key plus an
/// 8-byte payload/count (the engine's `(key, value)` convention).
pub const OUT_TUPLE_BYTES: u64 = 16;

pub use catalog::{StatsCatalog, StatsSnapshot};
pub use exec::{
    execute, execute_traced, execute_with_builds, run_on, BuildSource, ExecTracer, NoPrebuilt,
    NoTrace, PlanRun, PrebuiltBuild, SpanTracer, TableDef,
};
pub use explain::{explain_analyze, plan_classes, ExplainNode, ExplainReport};
pub use logical::LogicalPlan;
pub use optimizer::{Optimizer, PlanError, PlannedQuery, TableStats};
pub use physical::PhysicalPlan;

/// The reusable optimize-to-executable entry point: enumerate physical
/// plans for `plan` under `tables` with the default optimizer
/// configuration (default CPU calibration, beam 8, cold caches) and
/// return the cheapest one, ready for [`execute`]. This is the single
/// path a caching layer memoizes — one deterministic function from
/// (logical plan, statistics) to ([`PhysicalPlan`], predicted cost) —
/// so a cache hit is guaranteed to return exactly what a fresh
/// optimization would have produced.
pub fn optimize_and_lower(
    model: &gcm_core::CostModel,
    plan: &LogicalPlan,
    tables: &[TableStats],
) -> Result<PlannedQuery, PlanError> {
    Optimizer::new(model).optimize(plan, tables)
}
