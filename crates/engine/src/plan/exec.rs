//! Lowering a [`PhysicalPlan`] onto the real operators in
//! [`crate::ops`].
//!
//! Execution produces the actual result relation *and* the whole-plan
//! compound pattern with the **actual** intermediate cardinalities —
//! the execution-provided logical-cost oracle that the paper assumes
//! (§1). Comparing [`PlanRun::pattern`] priced by the model against the
//! simulator's measured counters closes the loop on a whole query, the
//! same way the Figure-7 experiments close it per operator.

use super::optimizer::PlanError;
use super::physical::PhysicalPlan;
use super::OUT_TUPLE_BYTES;
use crate::backend::MemoryBackend;
use crate::ctx::{ExecContext, RunStats};
use crate::ops;
use crate::planner::JoinAlgorithm;
use crate::relation::Relation;
use gcm_core::{Pattern, Region};
use gcm_obs::span::{Span, SpanKind, SpanSink};
use std::sync::Arc;

/// Result of executing a plan: the real output plus the compound
/// pattern describing everything that was executed.
#[derive(Debug)]
pub struct PlanRun {
    /// The final output relation.
    pub output: Relation,
    /// `node₁ ⊕ node₂ ⊕ …` in execution order, with actual intermediate
    /// cardinalities.
    pub pattern: Pattern,
}

/// An immutable, pre-computed hash-join build side shared between
/// queries (see [`gcm_core`]'s `⊙` sharing story and the service's
/// build registry).
#[derive(Debug, Clone)]
pub struct PrebuiltBuild {
    /// The **canonical** model region for this build: every query
    /// reusing the build describes its probes against this one region
    /// identity, which is what lets Eq 5.3 footprints count the build
    /// once across a batch.
    pub region: Region,
    /// The open-addressing slot array ([`ops::hash::build_layout`]):
    /// byte-identical to what a charged build over the same base table
    /// would produce.
    pub layout: Arc<Vec<u64>>,
}

/// Provider of shared build sides during plan execution. `prebuilt`
/// is consulted for every hash join whose build side is a direct base-
/// table scan; returning `Some` replaces the charged build phase with
/// host-side materialization of the shared layout (probe-only
/// execution and pattern).
pub trait BuildSource {
    /// The shared build over base table `table`, if one exists.
    fn prebuilt(&self, table: usize) -> Option<PrebuiltBuild>;
}

/// The default [`BuildSource`]: no sharing, every hash join builds its
/// own table.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPrebuilt;

impl BuildSource for NoPrebuilt {
    fn prebuilt(&self, _table: usize) -> Option<PrebuiltBuild> {
        None
    }
}

/// Execute `plan` over the catalog `tables` (indexed by the plan's scan
/// nodes). Every operator runs for real over the simulated memory of
/// `ctx`; sorts (including the sort phases of merge joins) act in place
/// on their input.
pub fn execute<B: MemoryBackend>(
    ctx: &mut ExecContext<B>,
    plan: &PhysicalPlan,
    tables: &[Relation],
) -> Result<PlanRun, PlanError> {
    execute_with_builds(ctx, plan, tables, &NoPrebuilt)
}

/// [`execute`] with a [`BuildSource`]: hash joins over base tables the
/// source covers skip their build phase and probe the shared layout —
/// same results bit for bit (the layout is a pure function of the base
/// table), build cost charged to nobody in the batch.
pub fn execute_with_builds<B: MemoryBackend>(
    ctx: &mut ExecContext<B>,
    plan: &PhysicalPlan,
    tables: &[Relation],
    builds: &dyn BuildSource,
) -> Result<PlanRun, PlanError> {
    execute_traced(ctx, plan, tables, builds, &mut NoTrace)
}

/// Observer of per-node execution: [`execute_traced`] reports every
/// operator node once, post-order (children before parents), with the
/// phases the node pushed, the backend counter delta across its
/// execution, and its logical-op delta. Scan nodes bind tables without
/// doing work and are not reported; `Parallel` wrappers are
/// transparent. Tracing never changes what executes — counter
/// snapshots are uncharged reads — so traced and untraced runs produce
/// byte-identical results.
pub trait ExecTracer<B: MemoryBackend> {
    /// Whether node reports will actually be consumed. `false` lets
    /// the executor skip counter snapshots entirely — the
    /// disabled-tracing fast path the `tracing_overhead` bench guards.
    fn active(&self) -> bool {
        true
    }

    /// One executed operator node. `class` is the stable operator
    /// class (`"select"`, `"join_hash"`, …) drift monitoring keys on;
    /// `label` is the display form; `pattern` covers exactly the
    /// phases this node pushed (with actual cardinalities).
    fn node(
        &mut self,
        mem: &B,
        label: &str,
        class: &str,
        pattern: &Pattern,
        delta: &B::Counters,
        ops: u64,
    );
}

/// The inert tracer: [`execute`]/[`execute_with_builds`] are
/// [`execute_traced`] with this.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoTrace;

impl<B: MemoryBackend> ExecTracer<B> for NoTrace {
    fn active(&self) -> bool {
        false
    }

    fn node(&mut self, _: &B, _: &str, _: &str, _: &Pattern, _: &B::Counters, _: u64) {}
}

/// An [`ExecTracer`] that records one [`SpanKind::Execute`] span per
/// operator node into a [`SpanSink`] lane, carrying the backend's
/// counter deltas (charged accesses and per-level misses on the sim
/// backend, wall-ns on native).
///
/// Children execute before their parent's own work, so each span
/// covers the node's **exclusive** time: the span's interval starts
/// where the previous completed node's ended.
pub struct SpanTracer<'a> {
    sink: &'a mut SpanSink,
    cursor_ns: u64,
}

impl<'a> SpanTracer<'a> {
    /// A tracer appending to `sink`, starting its interval clock now.
    pub fn new(sink: &'a mut SpanSink) -> SpanTracer<'a> {
        let cursor_ns = sink.now_ns();
        SpanTracer { sink, cursor_ns }
    }
}

impl<B: MemoryBackend> ExecTracer<B> for SpanTracer<'_> {
    fn active(&self) -> bool {
        self.sink.active()
    }

    fn node(
        &mut self,
        mem: &B,
        label: &str,
        _class: &str,
        _pattern: &Pattern,
        delta: &B::Counters,
        ops: u64,
    ) {
        let end_ns = self.sink.now_ns();
        self.sink.record(Span {
            name: label.to_string(),
            kind: SpanKind::Execute,
            start_ns: self.cursor_ns,
            end_ns,
            elapsed_ns: B::elapsed_ns(delta),
            accesses: B::counter_accesses(delta).unwrap_or(0),
            level_misses: mem.counter_level_misses(delta),
            ops,
            lane: 0,
            seq: 0,
        });
        self.cursor_ns = end_ns;
    }
}

/// [`execute_with_builds`] reporting every operator node to `tracer` —
/// the entry point `EXPLAIN ANALYZE` and the span-recording service
/// executor share. With an inactive tracer this is exactly the
/// untraced path.
pub fn execute_traced<B: MemoryBackend>(
    ctx: &mut ExecContext<B>,
    plan: &PhysicalPlan,
    tables: &[Relation],
    builds: &dyn BuildSource,
    tracer: &mut dyn ExecTracer<B>,
) -> Result<PlanRun, PlanError> {
    let mut phases = Vec::new();
    let mut seq = 0u64;
    let output = exec_node(ctx, plan, tables, builds, &mut phases, &mut seq, tracer)?;
    Ok(PlanRun {
        output,
        pattern: Pattern::seq(phases),
    })
}

/// A base table by value: the backend-agnostic catalog entry for
/// [`run_on`], used when the caller has not materialized [`Relation`]s
/// into a context yet.
#[derive(Debug, Clone)]
pub struct TableDef {
    /// Region/relation display name.
    pub name: String,
    /// The key column.
    pub keys: Vec<u64>,
    /// Tuple width in bytes.
    pub w: u64,
}

impl TableDef {
    /// A `w`-byte-tuple table over the given key column.
    pub fn new(name: impl Into<String>, keys: Vec<u64>, w: u64) -> TableDef {
        TableDef {
            name: name.into(),
            keys,
            w,
        }
    }
}

/// Lowering picks the backend: materialize `tables` into `ctx`'s memory
/// (host-side setup) and execute `plan` there, measuring the run. The
/// same call works on a simulated context ([`ExecContext::new`] — per-
/// level misses and charged time) and a native one
/// ([`ExecContext::native`](crate::native) — real buffers and wall-clock
/// time); results are byte-identical across backends.
pub fn run_on<B: MemoryBackend>(
    ctx: &mut ExecContext<B>,
    plan: &PhysicalPlan,
    tables: &[TableDef],
) -> Result<(PlanRun, RunStats<B>), PlanError> {
    let rels: Vec<Relation> = tables
        .iter()
        .map(|t| ctx.relation_from_keys(&t.name, &t.keys, t.w))
        .collect();
    let (run, stats) = ctx.measure(|c| execute(c, plan, &rels));
    run.map(|r| (r, stats))
}

fn next_name(seq: &mut u64) -> String {
    let name = format!("q{seq}");
    *seq += 1;
    name
}

/// The base-table index a subtree binds directly (through `Parallel`
/// wrappers), if it is a bare scan — the only build sides eligible for
/// sharing: anything with operators in between (selects, joins) is
/// query-specific data.
fn base_scan(plan: &PhysicalPlan) -> Option<usize> {
    match plan {
        PhysicalPlan::Scan { table } => Some(*table),
        PhysicalPlan::Parallel { input, .. } => base_scan(input),
        _ => None,
    }
}

/// Run one operator node's own work under the tracer: snapshot
/// counters (only when the tracer will consume them), apply `f`, and
/// report the deltas plus the phases `f` pushed.
fn run_traced<B: MemoryBackend, T>(
    ctx: &mut ExecContext<B>,
    phases: &mut Vec<Pattern>,
    tracer: &mut dyn ExecTracer<B>,
    label: &str,
    class: &str,
    f: impl FnOnce(&mut ExecContext<B>, &mut Vec<Pattern>) -> T,
) -> T {
    if !tracer.active() {
        return f(ctx, phases);
    }
    let counters_before = ctx.mem.counters();
    let ops_before = ctx.ops();
    let phases_before = phases.len();
    let out = f(ctx, phases);
    let delta = ctx.mem.counters_since(&counters_before);
    let ops = ctx.ops() - ops_before;
    let pattern = match phases.len() - phases_before {
        1 => phases[phases_before].clone(),
        _ => Pattern::seq(phases[phases_before..].to_vec()),
    };
    tracer.node(&ctx.mem, label, class, &pattern, &delta, ops);
    out
}

/// The display label and stable class of a join algorithm (shared
/// builds change the label, not the class: drift statistics should not
/// split on an execution detail).
fn join_names(algorithm: &JoinAlgorithm, shared: bool) -> (&'static str, &'static str) {
    match algorithm {
        JoinAlgorithm::NestedLoop => ("join[nl]", "join_nl"),
        JoinAlgorithm::Merge { .. } => ("join[merge]", "join_merge"),
        JoinAlgorithm::Hash if shared => ("join[hash,shared]", "join_hash"),
        JoinAlgorithm::Hash => ("join[hash]", "join_hash"),
        JoinAlgorithm::PartitionedHash { .. } => ("join[part_hash]", "join_part_hash"),
    }
}

fn exec_node<B: MemoryBackend>(
    ctx: &mut ExecContext<B>,
    plan: &PhysicalPlan,
    tables: &[Relation],
    builds: &dyn BuildSource,
    phases: &mut Vec<Pattern>,
    seq: &mut u64,
    tracer: &mut dyn ExecTracer<B>,
) -> Result<Relation, PlanError> {
    match plan {
        PhysicalPlan::Scan { table } => {
            // A scan is a binding, not work: the consuming operator
            // performs the actual traversal.
            tables.get(*table).cloned().ok_or(PlanError::UnknownTable {
                table: *table,
                tables: tables.len(),
            })
        }
        PhysicalPlan::Select { input, threshold } => {
            let current = exec_node(ctx, input, tables, builds, phases, seq, tracer)?;
            Ok(run_traced(
                ctx,
                phases,
                tracer,
                "select",
                "select",
                |ctx, phases| {
                    let name = next_name(seq);
                    let out = ops::scan::select_lt(ctx, &current, *threshold, &name);
                    phases.push(ops::scan::select_pattern(current.region(), out.region()));
                    out
                },
            ))
        }
        PhysicalPlan::Join {
            left,
            right,
            algorithm,
        } => {
            let u = exec_node(ctx, left, tables, builds, phases, seq, tracer)?;
            let v = exec_node(ctx, right, tables, builds, phases, seq, tracer)?;
            // Shared builds only apply to hash joins whose build side
            // is the base table itself.
            let prebuilt = match algorithm {
                JoinAlgorithm::Hash => base_scan(right).and_then(|t| builds.prebuilt(t)),
                _ => None,
            };
            let (label, class) = join_names(algorithm, prebuilt.is_some());
            run_traced(ctx, phases, tracer, label, class, |ctx, phases| {
                exec_join(ctx, &u, &v, algorithm, prebuilt, phases, seq)
            })
        }
        PhysicalPlan::Aggregate { input } => {
            let current = exec_node(ctx, input, tables, builds, phases, seq, tracer)?;
            Ok(run_traced(
                ctx,
                phases,
                tracer,
                "group_count",
                "aggregate",
                |ctx, phases| {
                    let name = next_name(seq);
                    let out = ops::aggregate::hash_group_count(ctx, &current, &name);
                    let h = Region::new(
                        format!("H({name})"),
                        ops::hash::table_slots(out.n()),
                        ops::hash::ENTRY_BYTES,
                    );
                    phases.push(ops::aggregate::hash_group_pattern(
                        current.region(),
                        &h,
                        out.region(),
                    ));
                    out
                },
            ))
        }
        PhysicalPlan::Sort { input } => {
            let current = exec_node(ctx, input, tables, builds, phases, seq, tracer)?;
            Ok(run_traced(
                ctx,
                phases,
                tracer,
                "sort",
                "sort",
                |ctx, phases| {
                    ops::sort::quick_sort(ctx, &current);
                    phases.push(ops::sort::quick_sort_pattern(current.region()));
                    current
                },
            ))
        }
        PhysicalPlan::Dedup { input } => {
            let current = exec_node(ctx, input, tables, builds, phases, seq, tracer)?;
            Ok(run_traced(
                ctx,
                phases,
                tracer,
                "dedup",
                "dedup",
                |ctx, phases| {
                    let name = next_name(seq);
                    let out = ops::aggregate::sort_dedup(ctx, &current, &name);
                    phases.push(ops::aggregate::sort_dedup_pattern(
                        current.region(),
                        out.region(),
                    ));
                    out
                },
            ))
        }
        PhysicalPlan::Partition { input, m } => {
            let current = exec_node(ctx, input, tables, builds, phases, seq, tracer)?;
            Ok(run_traced(
                ctx,
                phases,
                tracer,
                "partition",
                "partition",
                |ctx, phases| {
                    let name = next_name(seq);
                    let parts = ops::partition::hash_partition(ctx, &current, *m, &name);
                    phases.push(ops::partition::partition_pattern(
                        current.region(),
                        parts.rel.region(),
                        *m,
                    ));
                    parts.rel
                },
            ))
        }
        // The cache simulator is single-core: a DOP annotation changes
        // scheduling and pricing, never results, so this executor runs
        // the wrapped operator serially. The multi-threaded realisation
        // lives in [`crate::parallel`].
        PhysicalPlan::Parallel { input, .. } => {
            exec_node(ctx, input, tables, builds, phases, seq, tracer)
        }
    }
}

fn exec_join<B: MemoryBackend>(
    ctx: &mut ExecContext<B>,
    u: &Relation,
    v: &Relation,
    algorithm: &JoinAlgorithm,
    prebuilt: Option<PrebuiltBuild>,
    phases: &mut Vec<Pattern>,
    seq: &mut u64,
) -> Result<Relation, PlanError> {
    let name = next_name(seq);
    match algorithm {
        JoinAlgorithm::NestedLoop => {
            let out = ops::nl_join::nested_loop_join(ctx, u, v, &name, OUT_TUPLE_BYTES);
            phases.push(ops::nl_join::nested_loop_join_pattern(
                u.region(),
                v.region(),
                out.region(),
            ));
            Ok(out)
        }
        JoinAlgorithm::Merge { sort_u, sort_v } => {
            if *sort_u {
                ops::sort::quick_sort(ctx, u);
                phases.push(ops::sort::quick_sort_pattern(u.region()));
            }
            if *sort_v {
                ops::sort::quick_sort(ctx, v);
                phases.push(ops::sort::quick_sort_pattern(v.region()));
            }
            let out = ops::merge_join::merge_join(ctx, u, v, &name, OUT_TUPLE_BYTES);
            phases.push(ops::merge_join::merge_join_pattern(
                u.region(),
                v.region(),
                out.region(),
            ));
            Ok(out)
        }
        JoinAlgorithm::Hash => {
            if let Some(pre) = prebuilt {
                // Shared build: materialize the layout host-side
                // (uncharged — the build belongs to the registry, not
                // this query) and run probe-only. Identical output to a
                // charged build: the layout is deterministic.
                debug_assert_eq!(
                    pre.layout.len() as u64,
                    2 * ops::hash::table_slots(v.n()),
                    "shared layout sized for this build side"
                );
                let table =
                    ops::hash::HashTable::from_layout(ctx, &format!("H({name})"), &pre.layout);
                let out = ops::hash::hash_join_with_table(ctx, u, &table, &name, OUT_TUPLE_BYTES);
                // The pattern cites the *canonical* region: co-admitted
                // sharers present the same region identity, so Eq 5.3
                // footprints count the build once.
                phases.push(ops::hash::probe_hash_pattern(
                    u.region(),
                    &pre.region,
                    out.region(),
                ));
                return Ok(out);
            }
            let out = ops::hash::hash_join(ctx, u, v, &name, OUT_TUPLE_BYTES);
            let h = Region::new(
                format!("H({name})"),
                ops::hash::table_slots(v.n()),
                ops::hash::ENTRY_BYTES,
            );
            phases.push(ops::hash::hash_join_pattern(
                u.region(),
                v.region(),
                &h,
                out.region(),
            ));
            Ok(out)
        }
        JoinAlgorithm::PartitionedHash { m } => {
            let out = ops::part_hash_join::part_hash_join(ctx, u, v, *m, &name, OUT_TUPLE_BYTES);
            let up = Region::new(format!("Up({name})"), u.n(), u.w());
            let vp = Region::new(format!("Vp({name})"), v.n(), v.w());
            phases.push(ops::part_hash_join::part_hash_join_pattern(
                u.region(),
                v.region(),
                out.region(),
                *m,
                &up,
                &vp,
            ));
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcm_hardware::presets;
    use gcm_workload::Workload;

    fn setup(seed: u64, fact_n: usize, dim_n: usize) -> (ExecContext, Vec<Relation>) {
        let mut ctx = ExecContext::new(presets::tiny());
        let star = Workload::new(seed).star_scenario(fact_n, dim_n, 2);
        let tables = vec![
            ctx.relation_from_keys("F", &star.fact, 8),
            ctx.relation_from_keys("D1", &star.dims[0], 8),
            ctx.relation_from_keys("D2", &star.dims[1], 8),
        ];
        (ctx, tables)
    }

    #[test]
    fn all_join_algorithms_agree_on_results() {
        // The same logical join executed under every algorithm must
        // produce the same multiset of output keys.
        let algos = [
            JoinAlgorithm::NestedLoop,
            JoinAlgorithm::Hash,
            JoinAlgorithm::Merge {
                sort_u: true,
                sort_v: true,
            },
            JoinAlgorithm::PartitionedHash { m: 4 },
        ];
        let mut outputs: Vec<Vec<u64>> = Vec::new();
        for algo in algos {
            let (mut ctx, tables) = setup(77, 500, 100);
            let plan = PhysicalPlan::scan(0)
                .select_lt(50)
                .join_with(PhysicalPlan::scan(1), algo);
            let run = execute(&mut ctx, &plan, &tables).unwrap();
            let mut keys: Vec<u64> = (0..run.output.n())
                .map(|i| ctx.mem.host().read_u64(run.output.tuple(i)))
                .collect();
            keys.sort_unstable();
            assert!(!keys.is_empty());
            assert!(keys.iter().all(|&k| k < 50));
            outputs.push(keys);
        }
        for o in &outputs[1..] {
            assert_eq!(o, &outputs[0]);
        }
    }

    #[test]
    fn two_join_star_query_end_to_end() {
        let (mut ctx, tables) = setup(78, 2_000, 400);
        let plan = PhysicalPlan::scan(0)
            .select_lt(200)
            .join_with(PhysicalPlan::scan(1), JoinAlgorithm::Hash)
            .join_with(PhysicalPlan::scan(2), JoinAlgorithm::Hash)
            .group_count();
        let run = execute(&mut ctx, &plan, &tables).unwrap();
        // Each selected fact key matches exactly one PK per dimension,
        // so the aggregate sees one group per surviving distinct key.
        let expected: std::collections::HashSet<u64> = (0..tables[0].n())
            .map(|i| ctx.mem.host().read_u64(tables[0].tuple(i)))
            .filter(|&k| k < 200)
            .collect();
        assert_eq!(run.output.n(), expected.len() as u64);
        // Pattern covers all four operators (select ⊕ 2×join ⊕ agg).
        match &run.pattern {
            Pattern::Seq(phases) => assert_eq!(phases.len(), 7),
            p => panic!("expected Seq, got {p}"),
        }
    }

    #[test]
    fn merge_join_sort_flags_sort_in_place() {
        let (mut ctx, tables) = setup(79, 600, 300);
        let plan = PhysicalPlan::scan(0).join_with(
            PhysicalPlan::scan(1),
            JoinAlgorithm::Merge {
                sort_u: true,
                sort_v: true,
            },
        );
        let run = execute(&mut ctx, &plan, &tables).unwrap();
        assert!(run.output.n() > 0);
        // Merge output is ordered.
        for i in 1..run.output.n() {
            let a = ctx.mem.host().read_u64(run.output.tuple(i - 1));
            let b = ctx.mem.host().read_u64(run.output.tuple(i));
            assert!(a <= b);
        }
        // The pattern includes the two (multi-pass) sort phases before
        // the three-way merge sweep.
        let s = run.pattern.to_string();
        assert!(s.contains("×"), "sort passes missing: {s}");
        assert!(run.pattern.leaves().len() > 10, "{s}");
    }

    #[test]
    fn measured_misses_track_the_plan_pattern() {
        // The whole-plan pattern, priced by the model, must agree with
        // the simulator's measured misses within the usual 7e-style
        // tolerance — on a full-associativity machine so conflict
        // misses don't muddy the comparison.
        let spec = presets::tiny_full_assoc();
        let mut ctx = ExecContext::new(spec.clone());
        let star = Workload::new(80).star_scenario(4_096, 1_024, 1);
        let tables = vec![
            ctx.relation_from_keys("F", &star.fact, 8),
            ctx.relation_from_keys("D", &star.dims[0], 8),
        ];
        let plan = PhysicalPlan::scan(0)
            .select_lt(512)
            .join_with(PhysicalPlan::scan(1), JoinAlgorithm::Hash)
            .group_count();
        let (run, stats) = {
            let tables = tables.clone();
            let mut result = None;
            let (_, s) = ctx.measure(|c| {
                result = Some(execute(c, &plan, &tables).unwrap());
            });
            (result.unwrap(), s)
        };
        let model = gcm_core::CostModel::new(spec.clone());
        let report = model.report(&run.pattern);
        let l2 = spec.level_index("L2").unwrap();
        let measured = stats.misses_at(l2) as f64;
        let predicted = report.levels[l2].misses();
        let ratio = predicted / measured.max(1.0);
        assert!(
            (0.3..3.0).contains(&ratio),
            "L2 misses: measured {measured}, predicted {predicted}"
        );
    }

    #[test]
    fn parallel_wrapper_preserves_results() {
        let (mut ctx, tables) = setup(82, 800, 200);
        let serial = PhysicalPlan::scan(0)
            .select_lt(100)
            .join_with(
                PhysicalPlan::scan(1),
                JoinAlgorithm::PartitionedHash { m: 4 },
            )
            .group_count();
        let wrapped = PhysicalPlan::scan(0)
            .select_lt(100)
            .parallel(4)
            .join_with(
                PhysicalPlan::scan(1),
                JoinAlgorithm::PartitionedHash { m: 4 },
            )
            .parallel(2)
            .group_count();
        let a = execute(&mut ctx, &serial, &tables).unwrap();
        let b = execute(&mut ctx, &wrapped, &tables).unwrap();
        assert_eq!(a.output.n(), b.output.n());
        assert_eq!(a.pattern.to_string(), b.pattern.to_string());
    }

    #[test]
    fn shared_builds_preserve_results_byte_for_byte() {
        // The same plan executed with and without a shared build must
        // produce identical output bytes and drop exactly the build
        // phase from its pattern.
        struct DimBuild {
            region: Region,
            layout: Arc<Vec<u64>>,
        }
        impl BuildSource for DimBuild {
            fn prebuilt(&self, table: usize) -> Option<PrebuiltBuild> {
                (table == 1).then(|| PrebuiltBuild {
                    region: self.region.clone(),
                    layout: Arc::clone(&self.layout),
                })
            }
        }
        let star = Workload::new(83).star_scenario(1_500, 300, 1);
        let plan = PhysicalPlan::scan(0)
            .select_lt(150)
            .join_with(PhysicalPlan::scan(1), JoinAlgorithm::Hash)
            .group_count();
        let run = |shared: bool| {
            let mut ctx = ExecContext::new(presets::tiny());
            let tables = vec![
                ctx.relation_from_keys("F", &star.fact, 8),
                ctx.relation_from_keys("D", &star.dims[0], 8),
            ];
            let source = DimBuild {
                region: Region::new(
                    "H#D@0",
                    ops::hash::table_slots(star.dims[0].len() as u64),
                    ops::hash::ENTRY_BYTES,
                ),
                layout: Arc::new(ops::hash::build_layout(&star.dims[0])),
            };
            let r = if shared {
                execute_with_builds(&mut ctx, &plan, &tables, &source).unwrap()
            } else {
                execute(&mut ctx, &plan, &tables).unwrap()
            };
            let bytes = ctx.relation_bytes(&r.output);
            (bytes, r.output.n(), r.pattern.to_string())
        };
        let (plain_bytes, plain_n, plain_pat) = run(false);
        let (shared_bytes, shared_n, shared_pat) = run(true);
        assert_eq!(plain_n, shared_n);
        assert_eq!(plain_bytes, shared_bytes, "results must be byte-identical");
        // The shared run's pattern has no build phase for the dim join.
        assert!(plain_pat.contains("r_trav(H"), "{plain_pat}");
        assert!(!shared_pat.contains("r_trav(H"), "{shared_pat}");
        assert!(shared_pat.contains("r_acc(H#D@0"), "{shared_pat}");
    }

    #[test]
    fn unknown_table_errors() {
        let (mut ctx, tables) = setup(81, 100, 50);
        let plan = PhysicalPlan::scan(9);
        let err = execute(&mut ctx, &plan, &tables).unwrap_err();
        assert_eq!(
            err,
            PlanError::UnknownTable {
                table: 9,
                tables: 3
            }
        );
    }
}
