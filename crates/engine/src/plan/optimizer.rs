//! The whole-plan cost-based optimizer.
//!
//! For each join node the optimizer asks the per-node costing engine
//! ([`crate::planner::join_candidates`]) for every algorithm's pattern
//! description; for each open partition node it derives candidate
//! fan-outs from the cache hierarchy. Alternatives are combined across
//! the tree (beam-pruned at every node to keep enumeration tractable),
//! and each surviving *complete* tree is priced as **one** composed
//! pattern `node₁ ⊕ node₂ ⊕ …` in execution order — so the cache-state
//! threading of Eq 5.2 (a consumer reading its producer's still-cached
//! output) and the footprint sharing of Eq 5.3 (concurrent cursors
//! inside each node) decide the ranking, not per-operator cold-cache
//! sums.
//!
//! The logical-statistics side (cardinalities, key bounds, sortedness)
//! is the component the paper assumes a perfect oracle for (§1); here
//! it is propagated from per-table [`TableStats`] under a
//! uniform-independent-keys assumption.

use super::logical::LogicalPlan;
use super::physical::PhysicalPlan;
use super::OUT_TUPLE_BYTES;
use crate::ops;
use crate::parallel;
use crate::planner::{self, JoinInputs};
use gcm_core::distinct::expected_distinct;
use gcm_core::{CacheState, CostModel, CpuCost, Pattern, Region};
use std::fmt;

/// Default charge for putting one worker thread to work on a stage
/// (spawn/wake + scheduling + result hand-off), in nanoseconds. This is
/// what makes the optimizer keep cache-resident operators serial: a
/// stage only earns a DOP > 1 when the time it saves exceeds the
/// threads it has to pay for.
pub const DEFAULT_THREAD_SPAWN_NS: f64 = 25_000.0;

/// Why a plan could not be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A scan references a catalog index outside the provided tables.
    UnknownTable {
        /// The offending catalog index.
        table: usize,
        /// Number of tables actually provided.
        tables: usize,
    },
    /// A node produced no physical candidate (e.g. no admissible
    /// partition fan-out on a degenerate hierarchy).
    NoCandidates,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownTable { table, tables } => {
                write!(f, "plan references table {table} but only {tables} exist")
            }
            PlanError::NoCandidates => write!(f, "a plan node has no physical candidate"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Logical statistics of one base relation — the optimizer's stand-in
/// for the paper's perfect logical-cost oracle (§1). Keys are assumed
/// uniform over `[0, key_bound)`.
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Cardinality.
    pub n: u64,
    /// Tuple width in bytes.
    pub w: u64,
    /// Exclusive upper bound on key values.
    pub key_bound: u64,
    /// Expected number of distinct keys.
    pub distinct: f64,
    /// Whether the relation is key-sorted.
    pub sorted: bool,
    /// Region identity to use for this table, if pinned (see
    /// [`TableStats::pinned`]); fresh per enumeration otherwise.
    pub region: Option<Region>,
}

impl TableStats {
    /// A column of `n` uniform draws from `[0, key_bound)` — e.g. a
    /// fact table's foreign keys. The distinct count follows the §4.6
    /// occupancy expectation.
    pub fn uniform(n: u64, w: u64, key_bound: u64, sorted: bool) -> TableStats {
        TableStats {
            n,
            w,
            key_bound,
            distinct: expected_distinct(key_bound, n),
            sorted,
            region: None,
        }
    }

    /// A column holding each key of `0..n` exactly once — e.g. a
    /// dimension table's primary keys.
    pub fn key_column(n: u64, w: u64, sorted: bool) -> TableStats {
        TableStats {
            n,
            w,
            key_bound: n,
            distinct: n as f64,
            sorted,
            region: None,
        }
    }

    /// Pin the table to an existing region identity — e.g. the region
    /// of the actual [`crate::Relation`] — so a warm
    /// [`Optimizer::with_initial_state`] can refer to it.
    pub fn pinned(mut self, region: &Region) -> TableStats {
        self.region = Some(region.clone());
        self
    }
}

/// Derived statistics of an intermediate result, threaded bottom-up.
#[derive(Debug, Clone)]
struct NodeStats {
    n: u64,
    w: u64,
    key_bound: u64,
    distinct: f64,
    sorted: bool,
    /// The region this node's output occupies — shared (by id) with
    /// every pattern that reads it, which is what lets Eq 5.2 price the
    /// producer→consumer reuse.
    region: Region,
}

/// One priced complete plan.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// The executable plan.
    pub plan: PhysicalPlan,
    /// The whole-plan composed pattern (estimated cardinalities); the
    /// per-thread patterns of a DOP-`d` stage appear `⊙`-composed.
    pub pattern: Pattern,
    /// Predicted elapsed memory time, ns: Eq 3.1 threaded stage by stage
    /// (Eq 5.2), with every DOP-`d` stage priced as the `⊙`-composition
    /// of its `d` per-thread patterns on shared levels and charged at
    /// its slowest thread.
    pub mem_ns: f64,
    /// Predicted elapsed CPU time (Eq 6.1; parallel stages divide their
    /// logical ops across threads and pay the per-thread spawn charge),
    /// ns.
    pub cpu_ns: f64,
    /// Estimated logical operations across all nodes (total work, not
    /// elapsed).
    pub ops: u64,
}

impl PlannedQuery {
    /// Predicted total elapsed time (Eq 6.1), ns.
    pub fn total_ns(&self) -> f64 {
        self.mem_ns + self.cpu_ns
    }
}

/// One stage of a physical alternative: the per-thread patterns of one
/// operator (a serial operator has exactly one) plus its logical-op
/// estimate. `threads.len()` *is* the stage's degree of parallelism.
#[derive(Debug, Clone)]
struct Stage {
    threads: Vec<Pattern>,
    ops: u64,
}

impl Stage {
    fn serial(pattern: Pattern, ops: u64) -> Stage {
        Stage {
            threads: vec![pattern],
            ops,
        }
    }

    fn dop(&self) -> u64 {
        self.threads.len().max(1) as u64
    }

    /// The stage as one pattern for display/analysis: the per-thread
    /// patterns of a parallel stage are `⊙`-composed.
    fn as_pattern(&self) -> Pattern {
        match self.threads.len() {
            0 => Pattern::empty(),
            1 => self.threads[0].clone(),
            _ => Pattern::Conc(self.threads.clone()),
        }
    }
}

/// One in-progress alternative for a subtree.
#[derive(Debug, Clone)]
struct Alt {
    plan: PhysicalPlan,
    /// Stages in execution order.
    stages: Vec<Stage>,
    stats: NodeStats,
    /// Staged memory price, filled by [`Optimizer::prune`] and reused
    /// by [`Optimizer::enumerate`] when the subtree is the whole plan.
    /// Every `apply_*` constructor resets it to `None`, so a stale
    /// subtree price can never leak into a larger tree.
    priced_mem: Option<f64>,
}

impl Alt {
    fn total_ops(&self) -> u64 {
        self.stages.iter().map(|s| s.ops).sum()
    }
}

/// The whole-plan optimizer. Construct with [`Optimizer::new`], then
/// [`enumerate`](Optimizer::enumerate) or
/// [`optimize`](Optimizer::optimize).
#[derive(Debug)]
pub struct Optimizer<'a> {
    model: &'a CostModel,
    cpu: CpuCost,
    beam: usize,
    initial_state: CacheState,
    spawn_ns: f64,
}

impl<'a> Optimizer<'a> {
    /// An optimizer over the given machine model, with the default CPU
    /// calibration, a beam width of 8 alternatives per node, and cold
    /// starting caches. On a multi-core machine
    /// ([`gcm_hardware::HardwareSpec::cores`] > 1) it also enumerates a
    /// degree of parallelism per parallelisable stage.
    pub fn new(model: &'a CostModel) -> Optimizer<'a> {
        Optimizer {
            model,
            cpu: CpuCost::default_planner(),
            beam: 8,
            initial_state: CacheState::cold(),
            spawn_ns: DEFAULT_THREAD_SPAWN_NS,
        }
    }

    /// Use a different per-worker-thread charge (see
    /// [`DEFAULT_THREAD_SPAWN_NS`]).
    pub fn with_spawn_ns(mut self, spawn_ns: f64) -> Optimizer<'a> {
        self.spawn_ns = spawn_ns.max(0.0);
        self
    }

    /// Use a calibrated CPU cost instead of the default per-op
    /// constant.
    pub fn with_cpu(mut self, cpu: CpuCost) -> Optimizer<'a> {
        self.cpu = cpu;
        self
    }

    /// Keep at most `beam` alternatives per node (≥ 1). Wider beams
    /// enumerate more complete plans at higher optimization cost.
    pub fn with_beam(mut self, beam: usize) -> Optimizer<'a> {
        self.beam = beam.max(1);
        self
    }

    /// Price plans as if they start from `state` instead of cold caches
    /// (Eq 5.2 across *queries*: e.g. a plan running right after
    /// another one).
    pub fn with_initial_state(mut self, state: CacheState) -> Optimizer<'a> {
        self.initial_state = state;
        self
    }

    /// Enumerate complete physical plans (at most the beam width),
    /// each priced as one composed pattern, cheapest first.
    pub fn enumerate(
        &self,
        plan: &LogicalPlan,
        tables: &[TableStats],
    ) -> Result<Vec<PlannedQuery>, PlanError> {
        // One region per base table for the whole enumeration: a table
        // scanned twice (e.g. a self-join) must keep one identity, or
        // Eq 5.2 cannot price the rescan reuse.
        let regions: Vec<Region> = tables
            .iter()
            .enumerate()
            .map(|(i, t)| {
                t.region
                    .clone()
                    .unwrap_or_else(|| Region::new(format!("T{i}"), t.n, t.w))
            })
            .collect();
        let alts = self.alts(plan, tables, &regions)?;
        let mut out: Vec<PlannedQuery> = alts
            .into_iter()
            .map(|a| {
                let mem_ns = a.priced_mem.unwrap_or_else(|| self.price_mem(&a.stages));
                let cpu_ns = self.price_cpu(&a.stages);
                let ops = a.total_ops();
                PlannedQuery {
                    plan: a.plan,
                    pattern: Pattern::seq(a.stages.iter().map(Stage::as_pattern).collect()),
                    mem_ns,
                    cpu_ns,
                    ops,
                }
            })
            .collect();
        out.sort_by(|a, b| a.total_ns().total_cmp(&b.total_ns()));
        Ok(out)
    }

    /// Elapsed memory time of a stage list: states threaded level by
    /// level across stages (Eq 5.2); DOP-`d` stages priced by the
    /// ⊙-across-cores rule at their slowest thread.
    fn price_mem(&self, stages: &[Stage]) -> f64 {
        let mut st = self.model.staged(&self.initial_state);
        let mut mem = 0.0;
        for stage in stages {
            if stage.threads.len() <= 1 {
                if let Some(p) = stage.threads.first() {
                    mem += self.model.advance(p, &mut st).mem_ns;
                }
            } else {
                mem += self.model.advance_parallel(&stage.threads, &mut st).wall_ns;
            }
        }
        mem
    }

    /// Elapsed CPU time: every stage's logical ops divided by its DOP,
    /// plus the spawn charge for every worker a parallel stage employs.
    fn price_cpu(&self, stages: &[Stage]) -> f64 {
        let mut ns = self.cpu.fixed_ns;
        for stage in stages {
            let d = stage.dop();
            ns += self.cpu.per_op_ns * stage.ops as f64 / d as f64;
            if d > 1 {
                ns += self.spawn_ns * d as f64;
            }
        }
        ns
    }

    /// Candidate degrees of parallelism: 1, then every power of two up
    /// to the machine's core count.
    fn dop_candidates(&self) -> Vec<u64> {
        let cores = u64::from(self.model.spec().cores());
        let mut out = vec![1];
        let mut d = 2;
        while d <= cores {
            out.push(d);
            d *= 2;
        }
        out
    }

    /// The cheapest complete plan by whole-plan predicted cost.
    pub fn optimize(
        &self,
        plan: &LogicalPlan,
        tables: &[TableStats],
    ) -> Result<PlannedQuery, PlanError> {
        self.enumerate(plan, tables)?
            .into_iter()
            .next()
            .ok_or(PlanError::NoCandidates)
    }

    /// Alternatives for a subtree, beam-pruned by composed-subtree
    /// predicted cost.
    fn alts(
        &self,
        node: &LogicalPlan,
        tables: &[TableStats],
        regions: &[Region],
    ) -> Result<Vec<Alt>, PlanError> {
        let alts = match node {
            LogicalPlan::Scan { table } => {
                let t = tables.get(*table).ok_or(PlanError::UnknownTable {
                    table: *table,
                    tables: tables.len(),
                })?;
                vec![Alt {
                    priced_mem: None,
                    plan: PhysicalPlan::scan(*table),
                    stages: Vec::new(),
                    stats: NodeStats {
                        n: t.n,
                        w: t.w,
                        key_bound: t.key_bound,
                        distinct: t.distinct,
                        sorted: t.sorted,
                        region: regions[*table].clone(),
                    },
                }]
            }
            LogicalPlan::Select { input, threshold } => self
                .alts(input, tables, regions)?
                .into_iter()
                .flat_map(|a| self.apply_select(a, *threshold))
                .collect(),
            LogicalPlan::Join { left, right } => {
                let ls = self.alts(left, tables, regions)?;
                let rs = self.alts(right, tables, regions)?;
                let mut out = Vec::new();
                for l in &ls {
                    for r in &rs {
                        out.extend(self.apply_join(l, r));
                    }
                }
                out
            }
            LogicalPlan::Aggregate { input } => self
                .alts(input, tables, regions)?
                .into_iter()
                .flat_map(|a| self.apply_aggregate(a))
                .collect(),
            LogicalPlan::Sort { input } => self
                .alts(input, tables, regions)?
                .into_iter()
                .map(|a| self.apply_sort(a))
                .collect(),
            LogicalPlan::Dedup { input } => self
                .alts(input, tables, regions)?
                .into_iter()
                .map(|a| self.apply_dedup(a))
                .collect(),
            LogicalPlan::Partition { input, m } => {
                let mut out = Vec::new();
                for a in self.alts(input, tables, regions)? {
                    out.extend(self.apply_partition(&a, *m));
                }
                out
            }
        };
        if alts.is_empty() {
            return Err(PlanError::NoCandidates);
        }
        Ok(self.prune(alts))
    }

    /// Keep the `beam` cheapest alternatives by staged-subtree cost.
    /// The computed memory price is cached on each survivor, so the
    /// root-level [`Optimizer::enumerate`] does not price it again.
    fn prune(&self, mut alts: Vec<Alt>) -> Vec<Alt> {
        if alts.len() <= self.beam {
            return alts;
        }
        let mut priced: Vec<(f64, Alt)> = alts
            .drain(..)
            .map(|mut a| {
                let mem = self.price_mem(&a.stages);
                a.priced_mem = Some(mem);
                (mem + self.price_cpu(&a.stages), a)
            })
            .collect();
        priced.sort_by(|a, b| a.0.total_cmp(&b.0));
        priced.truncate(self.beam);
        priced.into_iter().map(|(_, a)| a).collect()
    }

    fn apply_select(&self, input: Alt, threshold: u64) -> Vec<Alt> {
        let s = input.stats.clone();
        let ratio = if s.key_bound == 0 {
            0.0
        } else {
            (threshold as f64 / s.key_bound as f64).min(1.0)
        };
        let out_n = (s.n as f64 * ratio).round() as u64;
        self.dop_candidates()
            .into_iter()
            .map(|dop| {
                let region = Region::new("S", out_n, s.w);
                let mut stages = input.stages.clone();
                stages.push(if dop == 1 {
                    Stage::serial(ops::scan::select_pattern(&s.region, &region), s.n)
                } else {
                    Stage {
                        threads: parallel::par_select_patterns(&s.region, &region, dop),
                        ops: s.n,
                    }
                });
                Alt {
                    priced_mem: None,
                    plan: input.plan.clone().select_lt(threshold).parallel(dop),
                    stats: NodeStats {
                        n: out_n,
                        w: s.w,
                        key_bound: s.key_bound.min(threshold),
                        // A parallel filter keeps chunk order, so
                        // sortedness survives any DOP.
                        distinct: (s.distinct * ratio).min(out_n as f64),
                        sorted: s.sorted,
                        region,
                    },
                    stages,
                }
            })
            .collect()
    }

    fn apply_join(&self, left: &Alt, right: &Alt) -> Vec<Alt> {
        let (l, r) = (&left.stats, &right.stats);
        let max_bound = l.key_bound.max(r.key_bound).max(1);
        let out_n = (l.n as f64 * r.n as f64 / max_bound as f64).round() as u64;
        let inputs = JoinInputs {
            u: l.region.clone(),
            v: r.region.clone(),
            out_w: OUT_TUPLE_BYTES,
            out_n,
            u_sorted: l.sorted,
            v_sorted: r.sorted,
        };
        let out_region = Region::new("J", out_n, OUT_TUPLE_BYTES);
        let mut out = Vec::new();
        for cand in planner::join_candidates(self.model, &inputs, &out_region) {
            let sorted = match cand.algorithm {
                planner::JoinAlgorithm::Merge { .. } => true,
                planner::JoinAlgorithm::NestedLoop | planner::JoinAlgorithm::Hash => l.sorted,
                planner::JoinAlgorithm::PartitionedHash { .. } => false,
            };
            let stats = NodeStats {
                n: out_n,
                w: OUT_TUPLE_BYTES,
                key_bound: l.key_bound.min(r.key_bound),
                distinct: l.distinct.min(r.distinct).min(out_n as f64),
                sorted,
                region: out_region.clone(),
            };
            let mut stages = left.stages.clone();
            stages.extend(right.stages.iter().cloned());
            // The partition-parallel hash join is the one algorithm with
            // a DOP dimension: every worker partitions a 1/d chunk of
            // both inputs, then owns a disjoint m/d cluster range.
            let dops = match cand.algorithm {
                planner::JoinAlgorithm::PartitionedHash { .. } => self.dop_candidates(),
                _ => vec![1],
            };
            for dop in dops {
                let mut stages = stages.clone();
                // Threads need cluster ranges of their own: lift the
                // fan-out to at least the DOP. The emitted algorithm
                // carries the *lifted* fan-out, so the plan is exactly
                // what was priced (and what the parallel executor can
                // realise: dop divides m, both powers of two).
                let (stage, algorithm) = match cand.algorithm {
                    planner::JoinAlgorithm::PartitionedHash { m } if dop > 1 => {
                        let m = m.max(dop);
                        let up = Region::new("Up", l.n, l.w);
                        let vp = Region::new("Vp", r.n, r.w);
                        (
                            Stage {
                                threads: parallel::par_hash_join_patterns(
                                    &l.region,
                                    &r.region,
                                    &out_region,
                                    &up,
                                    &vp,
                                    m,
                                    dop,
                                ),
                                ops: cand.ops,
                            },
                            planner::JoinAlgorithm::PartitionedHash { m },
                        )
                    }
                    _ => (
                        Stage::serial(cand.pattern.clone(), cand.ops),
                        cand.algorithm.clone(),
                    ),
                };
                stages.push(stage);
                out.push(Alt {
                    priced_mem: None,
                    plan: left
                        .plan
                        .clone()
                        .join_with(right.plan.clone(), algorithm)
                        .parallel(dop),
                    stages,
                    stats: stats.clone(),
                });
            }
        }
        out
    }

    fn apply_aggregate(&self, input: Alt) -> Vec<Alt> {
        let s = input.stats.clone();
        let out_n = (s.distinct.round() as u64).min(s.n);
        self.dop_candidates()
            .into_iter()
            .map(|dop| {
                let region = Region::new("G", out_n, OUT_TUPLE_BYTES);
                let mut stages = input.stages.clone();
                if dop == 1 {
                    let h = Region::new("H", ops::hash::table_slots(out_n), ops::hash::ENTRY_BYTES);
                    stages.push(Stage::serial(
                        ops::aggregate::hash_group_pattern(&s.region, &h, &region),
                        2 * s.n + out_n,
                    ));
                } else {
                    // Parallel partials + sequential merge: two stages.
                    let (threads, merge) =
                        parallel::par_group_patterns(&s.region, out_n, &region, dop);
                    stages.push(Stage {
                        threads,
                        ops: 2 * s.n,
                    });
                    stages.push(Stage::serial(merge, (2 * dop + 1) * out_n));
                }
                Alt {
                    priced_mem: None,
                    plan: input.plan.clone().group_count().parallel(dop),
                    stats: NodeStats {
                        n: out_n,
                        w: OUT_TUPLE_BYTES,
                        key_bound: s.key_bound,
                        distinct: out_n as f64,
                        sorted: false,
                        region,
                    },
                    stages,
                }
            })
            .collect()
    }

    fn apply_sort(&self, input: Alt) -> Alt {
        let s = input.stats;
        let mut stages = input.stages;
        stages.push(Stage::serial(
            ops::sort::quick_sort_pattern(&s.region),
            ops::sort::quick_sort_expected_ops(s.n),
        ));
        Alt {
            priced_mem: None,
            plan: input.plan.sort(),
            stats: NodeStats { sorted: true, ..s },
            stages,
        }
    }

    fn apply_dedup(&self, input: Alt) -> Alt {
        let s = &input.stats;
        let out_n = (s.distinct.round() as u64).min(s.n);
        let region = Region::new("D", out_n, s.w);
        let mut stages = input.stages;
        stages.push(Stage::serial(
            ops::aggregate::sort_dedup_pattern(&s.region, &region),
            ops::sort::quick_sort_expected_ops(s.n) + s.n + out_n,
        ));
        Alt {
            priced_mem: None,
            plan: input.plan.dedup(),
            stats: NodeStats {
                n: out_n,
                w: s.w,
                key_bound: s.key_bound,
                distinct: out_n as f64,
                sorted: true,
                region,
            },
            stages,
        }
    }

    fn apply_partition(&self, input: &Alt, m: Option<u64>) -> Vec<Alt> {
        let fanouts: Vec<u64> = match m {
            Some(m) => vec![m.max(1)],
            None => self.candidate_fanouts(&input.stats),
        };
        let s = &input.stats;
        fanouts
            .into_iter()
            .map(|m| {
                let region = Region::new("P", s.n, s.w);
                let mut stages = input.stages.clone();
                stages.push(Stage::serial(
                    ops::partition::partition_pattern(&s.region, &region, m),
                    s.n,
                ));
                Alt {
                    priced_mem: None,
                    plan: input.plan.clone().partition(m),
                    stages,
                    stats: NodeStats {
                        n: s.n,
                        w: s.w,
                        key_bound: s.key_bound,
                        distinct: s.distinct,
                        sorted: false,
                        region,
                    },
                }
            })
            .collect()
    }

    /// Candidate fan-outs for an open partition node: per cache level,
    /// the smallest power of two that makes one partition fit the
    /// level ([`planner::fitting_fanout`]). When the input fits every
    /// level, a minimal two-way split remains the single candidate (the
    /// node still has to partition).
    fn candidate_fanouts(&self, s: &NodeStats) -> Vec<u64> {
        let bytes = s.n.saturating_mul(s.w).max(1);
        let mut out: Vec<u64> = self
            .model
            .spec()
            .data_caches()
            .filter_map(|lvl| planner::fitting_fanout(self.model, bytes, lvl))
            .collect();
        out.sort_unstable();
        out.dedup();
        if out.is_empty() {
            out.push(2);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::JoinAlgorithm;
    use gcm_hardware::presets;

    fn model() -> CostModel {
        CostModel::new(presets::origin2000())
    }

    fn star_stats(fact_n: u64, dim_n: u64) -> Vec<TableStats> {
        vec![
            TableStats::uniform(fact_n, 8, dim_n, false),
            TableStats::key_column(dim_n, 8, false),
            TableStats::key_column(dim_n, 8, false),
        ]
    }

    fn star_query(threshold: u64) -> LogicalPlan {
        LogicalPlan::scan(0)
            .select_lt(threshold)
            .join(LogicalPlan::scan(1))
            .join(LogicalPlan::scan(2))
            .group_count()
    }

    #[test]
    fn enumerates_multiple_complete_plans() {
        let m = model();
        let q = star_query(6000);
        let plans = Optimizer::new(&m)
            .enumerate(&q, &star_stats(48_000, 12_000))
            .unwrap();
        assert!(plans.len() >= 4, "only {} plans", plans.len());
        // Every plan is complete: two join algorithms chosen.
        for p in &plans {
            assert_eq!(p.plan.join_algorithms().len(), 2);
            assert!(p.total_ns() > 0.0);
        }
        // Sorted cheapest-first.
        for w in plans.windows(2) {
            assert!(w[0].total_ns() <= w[1].total_ns());
        }
        // Alternatives genuinely differ.
        let first = plans[0].plan.to_string();
        assert!(plans.iter().any(|p| p.plan.to_string() != first));
    }

    #[test]
    fn whole_plan_cost_is_not_the_cold_sum() {
        // The composed pattern must price below the sum of its phases
        // priced cold: the consumer finds the producer's output (partly)
        // cached (Eq 5.2).
        let m = model();
        let q = LogicalPlan::scan(0)
            .select_lt(2_000)
            .join(LogicalPlan::scan(1))
            .group_count();
        let stats = vec![
            TableStats::uniform(20_000, 8, 10_000, false),
            TableStats::key_column(10_000, 8, false),
        ];
        let best = Optimizer::new(&m).optimize(&q, &stats).unwrap();
        let composed = best.mem_ns;
        let cold_sum: f64 = match &best.pattern {
            Pattern::Seq(phases) => phases.iter().map(|p| m.mem_ns(p)).sum(),
            p => m.mem_ns(p),
        };
        assert!(
            composed < 0.95 * cold_sum,
            "composed {composed:.0} ns should undercut cold sum {cold_sum:.0} ns"
        );
    }

    #[test]
    fn l1_resident_dimensions_choose_hash_joins() {
        // Dimension hash tables fit L1 on the Origin2000 (512 keys →
        // 16 KB table): probes are nearly free, while merge would pay
        // an n·log n sort of the fact side. Hash must win both joins.
        let m = model();
        let best = Optimizer::new(&m)
            .optimize(&star_query(256), &star_stats(48_000, 512))
            .unwrap();
        for algo in best.plan.join_algorithms() {
            assert!(
                matches!(algo, JoinAlgorithm::Hash),
                "expected hash join, got {algo} in {}",
                best.plan
            );
        }
    }

    #[test]
    fn streaming_scale_chooses_merge_joins() {
        // At half-million-row fact tables with 512 KB+ dimension hash
        // tables, random probe traffic loses to sequential sort+merge
        // sweeps (the §6.2 economics) — and nested loop never appears.
        let m = model();
        let plans = Optimizer::new(&m)
            .enumerate(&star_query(6000), &star_stats(480_000, 120_000))
            .unwrap();
        assert!(matches!(
            plans[0].plan.join_algorithms()[0],
            JoinAlgorithm::Merge { .. }
        ));
        for p in &plans {
            assert!(
                !p.plan
                    .join_algorithms()
                    .iter()
                    .any(|a| matches!(a, JoinAlgorithm::NestedLoop)),
                "nested loop survived the beam: {}",
                p.plan
            );
        }
    }

    #[test]
    fn sorted_dimensions_steer_to_merge() {
        // Pre-sorted inputs flip the first join to merge without sorts.
        let m = model();
        let q = LogicalPlan::scan(0).join(LogicalPlan::scan(1));
        let stats = vec![
            TableStats::key_column(4_000_000, 8, true),
            TableStats::key_column(4_000_000, 8, true),
        ];
        let best = Optimizer::new(&m).optimize(&q, &stats).unwrap();
        assert!(matches!(
            best.plan.join_algorithms()[0],
            JoinAlgorithm::Merge {
                sort_u: false,
                sort_v: false
            }
        ));
    }

    #[test]
    fn beam_truncates_enumeration() {
        let m = model();
        let q = star_query(6000);
        let stats = star_stats(48_000, 12_000);
        let wide = Optimizer::new(&m)
            .with_beam(8)
            .enumerate(&q, &stats)
            .unwrap();
        let narrow = Optimizer::new(&m)
            .with_beam(2)
            .enumerate(&q, &stats)
            .unwrap();
        assert!(wide.len() > narrow.len());
        assert_eq!(narrow.len(), 2);
        // The winner survives narrowing.
        assert_eq!(wide[0].plan, narrow[0].plan);
    }

    #[test]
    fn open_partition_fanouts_are_enumerated() {
        let m = model();
        let q = LogicalPlan::scan(0).partition(None);
        let stats = vec![TableStats::uniform(2_000_000, 8, 1 << 40, false)];
        let plans = Optimizer::new(&m).enumerate(&q, &stats).unwrap();
        assert!(!plans.is_empty());
        let mut fanouts = Vec::new();
        for p in &plans {
            match &p.plan {
                PhysicalPlan::Partition { m, .. } => fanouts.push(*m),
                other => panic!("expected partition root, got {other}"),
            }
        }
        // Fan-outs stay below the TLB entry count (64): the Figure 7d
        // cliff is respected.
        assert!(fanouts.iter().all(|&m| (2..=64).contains(&m)));
    }

    #[test]
    fn self_join_scans_share_one_region_identity() {
        // Both scans of table 0 must carry the same region id, or Eq 5.2
        // cannot price the rescan reuse.
        let m = CostModel::new(presets::tiny());
        let q = LogicalPlan::scan(0).join(LogicalPlan::scan(0));
        let stats = vec![TableStats::key_column(1_000, 8, false)];
        let best = Optimizer::new(&m).optimize(&q, &stats).unwrap();
        let base_ids: std::collections::HashSet<_> = best
            .pattern
            .leaves()
            .into_iter()
            .filter_map(|l| l.region())
            .filter(|r| r.name() == "T0")
            .map(gcm_core::Region::id)
            .collect();
        assert_eq!(base_ids.len(), 1, "expected one shared T0 identity");
    }

    #[test]
    fn unknown_table_is_reported() {
        let m = model();
        let q = LogicalPlan::scan(5);
        let err = Optimizer::new(&m)
            .optimize(&q, &star_stats(100, 10))
            .unwrap_err();
        assert_eq!(
            err,
            PlanError::UnknownTable {
                table: 5,
                tables: 3
            }
        );
        assert!(err.to_string().contains("table 5"));
    }

    #[test]
    fn multicore_parallelises_the_big_join_but_not_the_resident_one() {
        // The DOP acceptance pair on a 4-core preset: a partition-
        // parallel hash join over tables far beyond the shared L2 earns
        // DOP > 1; a cache-resident join stays serial because the spawn
        // charge cannot be amortised.
        let m = CostModel::new(presets::tiny_smp(4));
        let q = LogicalPlan::scan(0).join(LogicalPlan::scan(1));
        let join_stats = |n: u64| {
            vec![
                TableStats::key_column(n, 8, false),
                TableStats::key_column(n, 8, false),
            ]
        };
        let big = Optimizer::new(&m)
            .optimize(&q, &join_stats(65_536))
            .unwrap();
        assert!(
            big.plan.max_dop() > 1,
            "big join should parallelise: {}",
            big.plan
        );
        assert!(
            matches!(
                big.plan.join_algorithms()[0],
                JoinAlgorithm::PartitionedHash { .. }
            ),
            "expected a partition-parallel hash join, got {}",
            big.plan
        );
        let small = Optimizer::new(&m).optimize(&q, &join_stats(256)).unwrap();
        assert_eq!(
            small.plan.max_dop(),
            1,
            "cache-resident join must stay serial: {}",
            small.plan
        );
    }

    #[test]
    fn parallel_join_plans_carry_the_priced_fanout() {
        // The emitted plan must be what was priced: whenever a Parallel
        // wrapper sits on a partitioned-hash join, the fan-out in the
        // plan is the (possibly DOP-lifted) one the per-thread patterns
        // used, so dop divides m and the parallel executor can realise
        // it. Small inputs make the planner's native fan-outs (2, 4)
        // fall below the 4-way DOP candidates.
        let m = CostModel::new(presets::tiny_smp(4));
        let q = LogicalPlan::scan(0).join(LogicalPlan::scan(1));
        for n in [1_024u64, 3_000, 8_192, 65_536] {
            let stats = vec![
                TableStats::key_column(n, 8, false),
                TableStats::key_column(n, 8, false),
            ];
            let plans = Optimizer::new(&m)
                .with_beam(16)
                .enumerate(&q, &stats)
                .unwrap();
            for p in &plans {
                if let PhysicalPlan::Parallel { input, dop } = &p.plan {
                    if let PhysicalPlan::Join {
                        algorithm: JoinAlgorithm::PartitionedHash { m },
                        ..
                    } = input.as_ref()
                    {
                        assert!(
                            *m >= *dop && m % dop == 0,
                            "n={n}: dop {dop} must divide the emitted fan-out {m}: {}",
                            p.plan
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn single_core_machines_never_parallelise() {
        // cores = 1 (every pre-existing preset): the DOP dimension
        // degenerates and enumeration is exactly the serial one.
        let m = model(); // origin2000, 1 core
        let plans = Optimizer::new(&m)
            .enumerate(&star_query(6000), &star_stats(48_000, 12_000))
            .unwrap();
        for p in &plans {
            assert_eq!(p.plan.max_dop(), 1, "{}", p.plan);
        }
    }

    #[test]
    fn parallel_stage_pays_for_its_threads() {
        // With an exorbitant spawn charge even the big join stays
        // serial — the knob the DOP decision hinges on.
        let m = CostModel::new(presets::tiny_smp(4));
        let q = LogicalPlan::scan(0).join(LogicalPlan::scan(1));
        let stats = vec![
            TableStats::key_column(65_536, 8, false),
            TableStats::key_column(65_536, 8, false),
        ];
        let best = Optimizer::new(&m)
            .with_spawn_ns(1e12)
            .optimize(&q, &stats)
            .unwrap();
        assert_eq!(best.plan.max_dop(), 1, "{}", best.plan);
    }

    #[test]
    fn big_scans_parallelise_with_chunk_order_preserved() {
        let m = CostModel::new(presets::tiny_smp(4));
        let q = LogicalPlan::scan(0).select_lt(500_000).group_count();
        let stats = vec![TableStats::uniform(1_000_000, 8, 1_000_000, false)];
        let best = Optimizer::new(&m).optimize(&q, &stats).unwrap();
        // The filter stage parallelises; execution order is select, agg.
        assert!(best.plan.dops()[0] > 1, "{}", best.plan);
    }

    #[test]
    fn warm_initial_state_discounts_resident_tables() {
        // Pricing from a state where the (pinned) inputs are resident
        // must be cheaper than pricing cold.
        let m = CostModel::new(presets::tiny());
        let q = LogicalPlan::scan(0).join(LogicalPlan::scan(1));
        let fact = Region::new("F", 1_000, 8);
        let dim = Region::new("D", 500, 8);
        let stats = vec![
            TableStats::uniform(1_000, 8, 500, false).pinned(&fact),
            TableStats::key_column(500, 8, false).pinned(&dim),
        ];
        let cold = Optimizer::new(&m).optimize(&q, &stats).unwrap();
        let mut warm = CacheState::cold();
        warm.set(&fact, 1.0);
        warm.set(&dim, 1.0);
        let warmed = Optimizer::new(&m)
            .with_initial_state(warm)
            .optimize(&q, &stats)
            .unwrap();
        assert!(
            warmed.mem_ns < cold.mem_ns,
            "warm {} vs cold {}",
            warmed.mem_ns,
            cold.mem_ns
        );
    }
}
