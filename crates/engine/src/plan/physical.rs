//! The physical plan tree: a [`LogicalPlan`](super::LogicalPlan) with
//! every choice made — each join node carries a concrete
//! [`JoinAlgorithm`], each partition node a concrete fan-out.

use crate::planner::JoinAlgorithm;
use std::fmt;

/// An executable query plan. Produced by the optimizer
/// ([`super::Optimizer`]) or built directly (the [`super::exec`]
/// executor runs any well-formed physical tree).
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalPlan {
    /// A base relation (index into the catalog).
    Scan {
        /// Catalog index of the base relation.
        table: usize,
    },
    /// Keep tuples with `key < threshold`.
    Select {
        /// Producer of the tuples to filter.
        input: Box<PhysicalPlan>,
        /// Exclusive upper bound on surviving keys.
        threshold: u64,
    },
    /// Equi-join with a chosen algorithm (left = probe/outer,
    /// right = build/inner).
    Join {
        /// Outer (probe) input.
        left: Box<PhysicalPlan>,
        /// Inner (build) input.
        right: Box<PhysicalPlan>,
        /// The chosen join algorithm (sorts for merge included).
        algorithm: JoinAlgorithm,
    },
    /// Hash group-by count.
    Aggregate {
        /// Producer of the tuples to group.
        input: Box<PhysicalPlan>,
    },
    /// In-place quick-sort by key.
    Sort {
        /// Producer of the tuples to sort.
        input: Box<PhysicalPlan>,
    },
    /// Sort-based duplicate elimination.
    Dedup {
        /// Producer of the tuples to deduplicate.
        input: Box<PhysicalPlan>,
    },
    /// Hash partitioning with a concrete fan-out.
    Partition {
        /// Producer of the tuples to partition.
        input: Box<PhysicalPlan>,
        /// The chosen fan-out.
        m: u64,
    },
}

impl PhysicalPlan {
    /// Scan base relation `table`.
    pub fn scan(table: usize) -> PhysicalPlan {
        PhysicalPlan::Scan { table }
    }

    /// Filter to `key < threshold`.
    pub fn select_lt(self, threshold: u64) -> PhysicalPlan {
        PhysicalPlan::Select {
            input: Box::new(self),
            threshold,
        }
    }

    /// Join `self` (outer/probe) with `right` (inner/build) using
    /// `algorithm`.
    pub fn join_with(self, right: PhysicalPlan, algorithm: JoinAlgorithm) -> PhysicalPlan {
        PhysicalPlan::Join {
            left: Box::new(self),
            right: Box::new(right),
            algorithm,
        }
    }

    /// Group by key, counting.
    pub fn group_count(self) -> PhysicalPlan {
        PhysicalPlan::Aggregate {
            input: Box::new(self),
        }
    }

    /// Sort by key.
    pub fn sort(self) -> PhysicalPlan {
        PhysicalPlan::Sort {
            input: Box::new(self),
        }
    }

    /// Eliminate duplicate keys.
    pub fn dedup(self) -> PhysicalPlan {
        PhysicalPlan::Dedup {
            input: Box::new(self),
        }
    }

    /// Hash-partition `m` ways.
    pub fn partition(self, m: u64) -> PhysicalPlan {
        PhysicalPlan::Partition {
            input: Box::new(self),
            m,
        }
    }

    /// The join algorithms chosen along the tree, in execution order
    /// (left subtree, right subtree, node).
    pub fn join_algorithms(&self) -> Vec<&JoinAlgorithm> {
        let mut out = Vec::new();
        self.collect_joins(&mut out);
        out
    }

    fn collect_joins<'a>(&'a self, out: &mut Vec<&'a JoinAlgorithm>) {
        match self {
            PhysicalPlan::Scan { .. } => {}
            PhysicalPlan::Select { input, .. }
            | PhysicalPlan::Aggregate { input }
            | PhysicalPlan::Sort { input }
            | PhysicalPlan::Dedup { input }
            | PhysicalPlan::Partition { input, .. } => input.collect_joins(out),
            PhysicalPlan::Join {
                left,
                right,
                algorithm,
            } => {
                left.collect_joins(out);
                right.collect_joins(out);
                out.push(algorithm);
            }
        }
    }
}

impl fmt::Display for PhysicalPlan {
    /// Functional one-line rendering with algorithms spelled out, e.g.
    /// `join[hash join](select_lt<100>(scan(0)), scan(1))`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhysicalPlan::Scan { table } => write!(f, "scan({table})"),
            PhysicalPlan::Select { input, threshold } => {
                write!(f, "select_lt<{threshold}>({input})")
            }
            PhysicalPlan::Join {
                left,
                right,
                algorithm,
            } => write!(f, "join[{algorithm}]({left}, {right})"),
            PhysicalPlan::Aggregate { input } => write!(f, "group_count({input})"),
            PhysicalPlan::Sort { input } => write!(f, "sort({input})"),
            PhysicalPlan::Dedup { input } => write!(f, "dedup({input})"),
            PhysicalPlan::Partition { input, m } => write!(f, "partition<{m}>({input})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_algorithms_inline() {
        let p = PhysicalPlan::scan(0)
            .select_lt(64)
            .join_with(PhysicalPlan::scan(1), JoinAlgorithm::Hash)
            .join_with(
                PhysicalPlan::scan(2),
                JoinAlgorithm::Merge {
                    sort_u: true,
                    sort_v: false,
                },
            )
            .group_count();
        assert_eq!(
            p.to_string(),
            "group_count(join[merge join (sort outer)](\
             join[hash join](select_lt<64>(scan(0)), scan(1)), scan(2)))"
        );
    }

    #[test]
    fn join_algorithms_in_execution_order() {
        let p = PhysicalPlan::scan(0)
            .join_with(PhysicalPlan::scan(1), JoinAlgorithm::Hash)
            .join_with(
                PhysicalPlan::scan(2),
                JoinAlgorithm::PartitionedHash { m: 8 },
            );
        let algos = p.join_algorithms();
        assert_eq!(algos.len(), 2);
        assert!(matches!(algos[0], JoinAlgorithm::Hash));
        assert!(matches!(algos[1], JoinAlgorithm::PartitionedHash { m: 8 }));
    }
}
