//! The physical plan tree: a [`LogicalPlan`](super::LogicalPlan) with
//! every choice made — each join node carries a concrete
//! [`JoinAlgorithm`], each partition node a concrete fan-out.

use crate::planner::JoinAlgorithm;
use std::fmt;

/// An executable query plan. Produced by the optimizer
/// ([`super::Optimizer`]) or built directly (the [`super::exec`]
/// executor runs any well-formed physical tree).
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalPlan {
    /// A base relation (index into the catalog).
    Scan {
        /// Catalog index of the base relation.
        table: usize,
    },
    /// Keep tuples with `key < threshold`.
    Select {
        /// Producer of the tuples to filter.
        input: Box<PhysicalPlan>,
        /// Exclusive upper bound on surviving keys.
        threshold: u64,
    },
    /// Equi-join with a chosen algorithm (left = probe/outer,
    /// right = build/inner).
    Join {
        /// Outer (probe) input.
        left: Box<PhysicalPlan>,
        /// Inner (build) input.
        right: Box<PhysicalPlan>,
        /// The chosen join algorithm (sorts for merge included).
        algorithm: JoinAlgorithm,
    },
    /// Hash group-by count.
    Aggregate {
        /// Producer of the tuples to group.
        input: Box<PhysicalPlan>,
    },
    /// In-place quick-sort by key.
    Sort {
        /// Producer of the tuples to sort.
        input: Box<PhysicalPlan>,
    },
    /// Sort-based duplicate elimination.
    Dedup {
        /// Producer of the tuples to deduplicate.
        input: Box<PhysicalPlan>,
    },
    /// Hash partitioning with a concrete fan-out.
    Partition {
        /// Producer of the tuples to partition.
        input: Box<PhysicalPlan>,
        /// The chosen fan-out.
        m: u64,
    },
    /// The wrapped operator's degree of parallelism — the plan's DOP
    /// dimension. The optimizer prices it via the ⊙-across-cores rule
    /// ([`gcm_core::CostModel::advance_parallel`]); the plan executor
    /// ([`super::execute`]) runs the wrapped operator serially on its
    /// single-core simulator (results never depend on DOP). The
    /// multi-threaded realisations of the annotated operators are the
    /// standalone [`crate::parallel`] functions, which report the
    /// per-worker measured times the annotation promises.
    Parallel {
        /// The operator to run partition-parallel.
        input: Box<PhysicalPlan>,
        /// Number of worker threads (> 1; DOP-1 plans omit the wrapper).
        dop: u64,
    },
}

impl PhysicalPlan {
    /// Scan base relation `table`.
    pub fn scan(table: usize) -> PhysicalPlan {
        PhysicalPlan::Scan { table }
    }

    /// Filter to `key < threshold`.
    pub fn select_lt(self, threshold: u64) -> PhysicalPlan {
        PhysicalPlan::Select {
            input: Box::new(self),
            threshold,
        }
    }

    /// Join `self` (outer/probe) with `right` (inner/build) using
    /// `algorithm`.
    pub fn join_with(self, right: PhysicalPlan, algorithm: JoinAlgorithm) -> PhysicalPlan {
        PhysicalPlan::Join {
            left: Box::new(self),
            right: Box::new(right),
            algorithm,
        }
    }

    /// Group by key, counting.
    pub fn group_count(self) -> PhysicalPlan {
        PhysicalPlan::Aggregate {
            input: Box::new(self),
        }
    }

    /// Sort by key.
    pub fn sort(self) -> PhysicalPlan {
        PhysicalPlan::Sort {
            input: Box::new(self),
        }
    }

    /// Eliminate duplicate keys.
    pub fn dedup(self) -> PhysicalPlan {
        PhysicalPlan::Dedup {
            input: Box::new(self),
        }
    }

    /// Hash-partition `m` ways.
    pub fn partition(self, m: u64) -> PhysicalPlan {
        PhysicalPlan::Partition {
            input: Box::new(self),
            m,
        }
    }

    /// Run `self` partition-parallel with `dop` worker threads
    /// (`dop <= 1` is the serial plan: no wrapper). Re-wrapping an
    /// already-parallel node replaces its DOP instead of nesting, so a
    /// plan's structure always matches what [`PhysicalPlan::dops`]
    /// reports.
    pub fn parallel(self, dop: u64) -> PhysicalPlan {
        let input = match self {
            PhysicalPlan::Parallel { input, .. } => input,
            other => Box::new(other),
        };
        if dop <= 1 {
            *input
        } else {
            PhysicalPlan::Parallel { input, dop }
        }
    }

    /// Catalog indices of every base relation the tree scans, sorted
    /// and deduplicated (a self-join references its table once here).
    pub fn tables(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_tables(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_tables(&self, out: &mut Vec<usize>) {
        match self {
            PhysicalPlan::Scan { table } => out.push(*table),
            PhysicalPlan::Select { input, .. }
            | PhysicalPlan::Aggregate { input }
            | PhysicalPlan::Sort { input }
            | PhysicalPlan::Dedup { input }
            | PhysicalPlan::Partition { input, .. }
            | PhysicalPlan::Parallel { input, .. } => input.collect_tables(out),
            PhysicalPlan::Join { left, right, .. } => {
                left.collect_tables(out);
                right.collect_tables(out);
            }
        }
    }

    /// The join algorithms chosen along the tree, in execution order
    /// (left subtree, right subtree, node).
    pub fn join_algorithms(&self) -> Vec<&JoinAlgorithm> {
        let mut out = Vec::new();
        self.collect_joins(&mut out);
        out
    }

    fn collect_joins<'a>(&'a self, out: &mut Vec<&'a JoinAlgorithm>) {
        match self {
            PhysicalPlan::Scan { .. } => {}
            PhysicalPlan::Select { input, .. }
            | PhysicalPlan::Aggregate { input }
            | PhysicalPlan::Sort { input }
            | PhysicalPlan::Dedup { input }
            | PhysicalPlan::Partition { input, .. }
            | PhysicalPlan::Parallel { input, .. } => input.collect_joins(out),
            PhysicalPlan::Join {
                left,
                right,
                algorithm,
            } => {
                left.collect_joins(out);
                right.collect_joins(out);
                out.push(algorithm);
            }
        }
    }

    /// The degrees of parallelism chosen along the tree, in execution
    /// order (1 for every unwrapped operator).
    pub fn dops(&self) -> Vec<u64> {
        let mut out = Vec::new();
        self.collect_dops(&mut out);
        out
    }

    fn collect_dops(&self, out: &mut Vec<u64>) {
        match self {
            PhysicalPlan::Scan { .. } => {}
            PhysicalPlan::Parallel { input, dop } => {
                // The wrapped operator's own entry carries the DOP. A
                // wrapper around a work-free subtree (a bare scan is a
                // binding, not work) is a no-op annotation — consistent
                // with the executor, which ignores it.
                let before = out.len();
                input.collect_dops(out);
                if out.len() > before {
                    if let Some(last) = out.last_mut() {
                        *last = *dop;
                    }
                }
            }
            PhysicalPlan::Select { input, .. }
            | PhysicalPlan::Aggregate { input }
            | PhysicalPlan::Sort { input }
            | PhysicalPlan::Dedup { input }
            | PhysicalPlan::Partition { input, .. } => {
                input.collect_dops(out);
                out.push(1);
            }
            PhysicalPlan::Join { left, right, .. } => {
                left.collect_dops(out);
                right.collect_dops(out);
                out.push(1);
            }
        }
    }

    /// The largest degree of parallelism anywhere in the tree.
    pub fn max_dop(&self) -> u64 {
        self.dops().into_iter().max().unwrap_or(1)
    }
}

impl fmt::Display for PhysicalPlan {
    /// Functional one-line rendering with algorithms spelled out, e.g.
    /// `join[hash join](select_lt<100>(scan(0)), scan(1))`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhysicalPlan::Scan { table } => write!(f, "scan({table})"),
            PhysicalPlan::Select { input, threshold } => {
                write!(f, "select_lt<{threshold}>({input})")
            }
            PhysicalPlan::Join {
                left,
                right,
                algorithm,
            } => write!(f, "join[{algorithm}]({left}, {right})"),
            PhysicalPlan::Aggregate { input } => write!(f, "group_count({input})"),
            PhysicalPlan::Sort { input } => write!(f, "sort({input})"),
            PhysicalPlan::Dedup { input } => write!(f, "dedup({input})"),
            PhysicalPlan::Partition { input, m } => write!(f, "partition<{m}>({input})"),
            PhysicalPlan::Parallel { input, dop } => write!(f, "par<{dop}>({input})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_algorithms_inline() {
        let p = PhysicalPlan::scan(0)
            .select_lt(64)
            .join_with(PhysicalPlan::scan(1), JoinAlgorithm::Hash)
            .join_with(
                PhysicalPlan::scan(2),
                JoinAlgorithm::Merge {
                    sort_u: true,
                    sort_v: false,
                },
            )
            .group_count();
        assert_eq!(
            p.to_string(),
            "group_count(join[merge join (sort outer)](\
             join[hash join](select_lt<64>(scan(0)), scan(1)), scan(2)))"
        );
    }

    #[test]
    fn join_algorithms_in_execution_order() {
        let p = PhysicalPlan::scan(0)
            .join_with(PhysicalPlan::scan(1), JoinAlgorithm::Hash)
            .join_with(
                PhysicalPlan::scan(2),
                JoinAlgorithm::PartitionedHash { m: 8 },
            );
        let algos = p.join_algorithms();
        assert_eq!(algos.len(), 2);
        assert!(matches!(algos[0], JoinAlgorithm::Hash));
        assert!(matches!(algos[1], JoinAlgorithm::PartitionedHash { m: 8 }));
    }

    #[test]
    fn parallel_wrapper_renders_and_reports_dop() {
        let p = PhysicalPlan::scan(0)
            .select_lt(10)
            .parallel(4)
            .join_with(
                PhysicalPlan::scan(1),
                JoinAlgorithm::PartitionedHash { m: 8 },
            )
            .parallel(2)
            .group_count();
        assert_eq!(
            p.to_string(),
            "group_count(par<2>(join[partitioned hash join (m = 8)](\
             par<4>(select_lt<10>(scan(0))), scan(1))))"
        );
        // dops in execution order: select (4), join (2), aggregate (1).
        assert_eq!(p.dops(), vec![4, 2, 1]);
        assert_eq!(p.max_dop(), 4);
        // Joins are still found through the wrapper.
        assert_eq!(p.join_algorithms().len(), 1);
        // dop <= 1 adds no wrapper.
        let serial = PhysicalPlan::scan(0).select_lt(10).parallel(1);
        assert_eq!(serial.to_string(), "select_lt<10>(scan(0))");
        assert_eq!(serial.max_dop(), 1);
    }

    #[test]
    fn parallel_around_a_bare_scan_is_a_noop_annotation() {
        // A scan is a binding, not work (the executor ignores the
        // wrapper too): it contributes no dops entry, and it must not
        // steal the DOP slot of an unrelated preceding operator.
        let p = PhysicalPlan::scan(0)
            .select_lt(10)
            .join_with(PhysicalPlan::scan(1).parallel(2), JoinAlgorithm::Hash);
        assert_eq!(p.dops(), vec![1, 1]); // select, join — both serial
        assert_eq!(p.max_dop(), 1);
        assert_eq!(PhysicalPlan::scan(0).parallel(4).dops(), Vec::<u64>::new());
    }

    #[test]
    fn rewrapping_replaces_the_dop_instead_of_nesting() {
        let p = PhysicalPlan::scan(0).select_lt(10).parallel(2).parallel(4);
        assert_eq!(p.to_string(), "par<4>(select_lt<10>(scan(0)))");
        assert_eq!(p.dops(), vec![4]);
        // Re-wrapping down to 1 unwraps entirely.
        let serial = PhysicalPlan::scan(0).select_lt(10).parallel(4).parallel(1);
        assert_eq!(serial.to_string(), "select_lt<10>(scan(0))");
    }

    #[test]
    fn tables_lists_referenced_scans() {
        let p = PhysicalPlan::scan(3)
            .select_lt(64)
            .join_with(PhysicalPlan::scan(1), JoinAlgorithm::Hash)
            .parallel(2)
            .group_count();
        assert_eq!(p.tables(), vec![1, 3]);
        // A self-join references its table once.
        let s = PhysicalPlan::scan(0).join_with(PhysicalPlan::scan(0), JoinAlgorithm::Hash);
        assert_eq!(s.tables(), vec![0]);
    }
}
