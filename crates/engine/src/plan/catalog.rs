//! Versioned table statistics: the logical-cost oracle with an *epoch*.
//!
//! A plan cache memoizes optimizer output per logical plan — but a
//! cached physical plan is only as good as the statistics it was priced
//! under. [`StatsCatalog`] wraps the per-table [`TableStats`] and
//! stamps them with an epoch that advances only when an update *drifts*
//! past a threshold relative to the stats the current epoch's plans
//! were optimized against. Small refreshes keep the epoch (cached plans
//! stay valid under mildly stale statistics, the usual DBMS trade-off);
//! a past-threshold drift bumps it, and every cache key containing the
//! old epoch becomes unreachable — forced re-optimization without any
//! explicit invalidation walk.
//!
//! Since PR 6 the catalog is **transactionally readable**: the tables
//! live in a [`gcm_trie::TrieMap`] and readers take a
//! [`StatsSnapshot`] — a consistent `(epoch, stats)` pair validated by
//! a seqlock-style sequence counter — so in-flight optimizations read
//! one coherent version while drift updates publish new epochs
//! concurrently. Writers serialize on a small lock; readers only retry
//! in the short window while a writer is mid-publish.

use super::optimizer::TableStats;
use gcm_trie::TrieMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Fraction of relative change in a table's cardinality, distinct
/// count, or key bound beyond which cached plans are considered stale
/// (see [`StatsCatalog::update`]).
pub const DEFAULT_DRIFT_THRESHOLD: f64 = 0.2;

/// One table's current stats plus the reference point its drift is
/// measured against.
#[derive(Debug, Clone)]
struct TableEntry {
    stats: TableStats,
    /// Snapshot of the stats as of the last epoch bump — the base
    /// drift accumulates against, so repeated small updates add up
    /// instead of resetting the comparison.
    baseline: TableStats,
}

/// A set of per-table statistics with drift-tracked epochs and
/// consistent concurrent snapshots.
#[derive(Debug)]
pub struct StatsCatalog {
    entries: TrieMap<usize, TableEntry>,
    /// Seqlock word: odd while a writer is publishing, bumped to even
    /// when the `(tables, epoch)` pair is coherent again.
    seq: AtomicU64,
    epoch: AtomicU64,
    drift_threshold: f64,
    write: Mutex<()>,
}

/// A consistent `(epoch, statistics)` view of a [`StatsCatalog`]: the
/// tables are exactly the ones epoch [`StatsSnapshot::epoch`] was
/// current for at read time, no matter what writers do afterwards.
#[derive(Debug, Clone)]
pub struct StatsSnapshot {
    epoch: u64,
    tables: Vec<TableStats>,
}

impl StatsSnapshot {
    /// The statistics, in catalog (registration) order.
    pub fn tables(&self) -> &[TableStats] {
        &self.tables
    }

    /// The epoch these statistics belong to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of tables in this view.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when the view holds no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

impl StatsCatalog {
    /// A catalog over the given tables at epoch 0, with the
    /// [`DEFAULT_DRIFT_THRESHOLD`].
    pub fn new(tables: Vec<TableStats>) -> StatsCatalog {
        let entries = TrieMap::new();
        for (idx, stats) in tables.into_iter().enumerate() {
            entries.insert(
                idx,
                TableEntry {
                    baseline: stats.clone(),
                    stats,
                },
            );
        }
        StatsCatalog {
            entries,
            seq: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            drift_threshold: DEFAULT_DRIFT_THRESHOLD,
            write: Mutex::new(()),
        }
    }

    /// Use a different drift threshold (clamped to ≥ 0; 0 makes every
    /// update bump the epoch).
    pub fn with_drift_threshold(mut self, threshold: f64) -> StatsCatalog {
        self.drift_threshold = threshold.max(0.0);
        self
    }

    /// A consistent `(epoch, tables)` snapshot. Readers never take the
    /// writer lock: the loop re-reads only if a writer published
    /// between the two sequence loads, so optimizations in flight keep
    /// reading their own version while drift updates land.
    pub fn snapshot(&self) -> StatsSnapshot {
        loop {
            let before = self.seq.load(Ordering::SeqCst);
            if before % 2 == 1 {
                // A writer is mid-publish; the pair would be torn.
                std::hint::spin_loop();
                continue;
            }
            let epoch = self.epoch.load(Ordering::SeqCst);
            let trie = self.entries.snapshot();
            if self.seq.load(Ordering::SeqCst) != before {
                continue;
            }
            let mut indexed: Vec<(usize, TableStats)> = trie
                .iter()
                .map(|(idx, entry)| (*idx, entry.stats.clone()))
                .collect();
            indexed.sort_unstable_by_key(|(idx, _)| *idx);
            let tables = indexed.into_iter().map(|(_, stats)| stats).collect();
            return StatsSnapshot { epoch, tables };
        }
    }

    /// The current epoch. Pairs with
    /// [`LogicalPlan::fingerprint`](super::LogicalPlan::fingerprint) as
    /// a plan-cache key. For a *coherent* epoch-stats pair use
    /// [`StatsCatalog::snapshot`].
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the catalog holds no tables.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn lock_write(&self) -> MutexGuard<'_, ()> {
        // All guarded state is published atomically; a poisoned lock
        // carries no torn state worth propagating.
        self.write.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Append a table, returning its catalog index. Registration never
    /// bumps the epoch: no existing plan can reference a table that did
    /// not exist when it was optimized.
    pub fn push(&self, stats: TableStats) -> usize {
        let _guard = self.lock_write();
        let idx = self.entries.len();
        self.seq.fetch_add(1, Ordering::SeqCst);
        self.entries.insert(
            idx,
            TableEntry {
                baseline: stats.clone(),
                stats,
            },
        );
        self.seq.fetch_add(1, Ordering::SeqCst);
        idx
    }

    /// Replace table `idx`'s statistics. Returns `true` when the update
    /// drifted past the threshold relative to the epoch's baseline and
    /// therefore bumped the epoch (invalidating cached plans keyed on
    /// the old one). Concurrent snapshot readers are never blocked;
    /// they see either the old `(epoch, stats)` pair or the new one.
    ///
    /// # Panics
    /// If `idx` is out of range.
    pub fn update(&self, idx: usize, stats: TableStats) -> bool {
        let _guard = self.lock_write();
        let entry = self
            .entries
            .get(&idx)
            .unwrap_or_else(|| panic!("table index {idx} out of range"));
        let drift = drift(&entry.baseline, &stats);
        let bumped = drift > self.drift_threshold;
        let next = TableEntry {
            baseline: if bumped {
                stats.clone()
            } else {
                entry.baseline
            },
            stats,
        };
        self.seq.fetch_add(1, Ordering::SeqCst);
        self.entries.insert(idx, next);
        if bumped {
            self.epoch.fetch_add(1, Ordering::SeqCst);
        }
        self.seq.fetch_add(1, Ordering::SeqCst);
        bumped
    }

    /// Unconditionally advance the epoch — the invalidation a
    /// *model-side* change needs. Statistics drift is not the only
    /// reason cached plans go stale: when the cost parameters they
    /// were priced under are replaced (a recalibration swapping in a
    /// fresh `CpuCost`/spec), every cached plan must re-price even
    /// though no table changed. Resets every table's drift baseline to
    /// its current stats (the new epoch re-prices everything, so
    /// accumulated drift is spent) and returns the new epoch.
    pub fn force_epoch_bump(&self) -> u64 {
        let _guard = self.lock_write();
        let keys: Vec<usize> = {
            let trie = self.entries.snapshot();
            trie.iter().map(|(idx, _)| *idx).collect()
        };
        self.seq.fetch_add(1, Ordering::SeqCst);
        for idx in keys {
            if let Some(entry) = self.entries.get(&idx) {
                self.entries.insert(
                    idx,
                    TableEntry {
                        baseline: entry.stats.clone(),
                        stats: entry.stats,
                    },
                );
            }
        }
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        self.seq.fetch_add(1, Ordering::SeqCst);
        epoch
    }
}

/// Relative drift between two statistics snapshots of one table: the
/// largest relative change across cardinality, distinct count, and key
/// bound; a sortedness flip or width change counts as total drift (the
/// optimizer's algorithm choices hinge on both).
fn drift(old: &TableStats, new: &TableStats) -> f64 {
    if old.sorted != new.sorted || old.w != new.w {
        return f64::INFINITY;
    }
    let rel = |a: f64, b: f64| (a - b).abs() / a.abs().max(1.0);
    rel(old.n as f64, new.n as f64)
        .max(rel(old.distinct, new.distinct))
        .max(rel(old.key_bound as f64, new.key_bound as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> StatsCatalog {
        StatsCatalog::new(vec![
            TableStats::uniform(10_000, 8, 1_000, false),
            TableStats::key_column(1_000, 8, false),
        ])
    }

    #[test]
    fn small_drift_keeps_the_epoch() {
        let c = catalog();
        assert_eq!(c.epoch(), 0);
        // +10% rows: below the 20% default threshold.
        let bumped = c.update(0, TableStats::uniform(11_000, 8, 1_000, false));
        assert!(!bumped);
        assert_eq!(c.epoch(), 0);
        // The stats themselves are refreshed even without a bump.
        assert_eq!(c.snapshot().tables()[0].n, 11_000);
    }

    #[test]
    fn large_drift_bumps_the_epoch() {
        let c = catalog();
        let bumped = c.update(0, TableStats::uniform(20_000, 8, 1_000, false));
        assert!(bumped);
        assert_eq!(c.epoch(), 1);
        // The other table is untouched.
        assert_eq!(c.snapshot().tables()[1].n, 1_000);
    }

    #[test]
    fn small_drifts_accumulate_against_the_baseline() {
        // Three +10% updates: each is small, but the third leaves the
        // table 33% past the epoch baseline and must bump.
        let c = catalog();
        assert!(!c.update(0, TableStats::uniform(11_000, 8, 1_000, false)));
        assert!(!c.update(0, TableStats::uniform(12_000, 8, 1_000, false)));
        assert!(c.update(0, TableStats::uniform(13_300, 8, 1_000, false)));
        assert_eq!(c.epoch(), 1);
        // After the bump the baseline resets: another small step stays.
        assert!(!c.update(0, TableStats::uniform(14_000, 8, 1_000, false)));
        assert_eq!(c.epoch(), 1);
    }

    #[test]
    fn sortedness_flip_is_total_drift() {
        let c = catalog();
        assert!(c.update(1, TableStats::key_column(1_000, 8, true)));
        assert_eq!(c.epoch(), 1);
    }

    #[test]
    fn zero_threshold_bumps_on_any_change() {
        let c = catalog().with_drift_threshold(0.0);
        assert!(c.update(0, TableStats::uniform(10_001, 8, 1_000, false)));
        // A byte-identical refresh still does not bump (drift 0 is not
        // > 0).
        assert!(!c.update(0, TableStats::uniform(10_001, 8, 1_000, false)));
        assert_eq!(c.epoch(), 1);
    }

    #[test]
    fn len_and_empty() {
        let c = catalog();
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert!(StatsCatalog::new(Vec::new()).is_empty());
        assert!(StatsCatalog::new(Vec::new()).snapshot().is_empty());
    }

    #[test]
    fn push_registers_without_bumping() {
        let c = StatsCatalog::new(Vec::new());
        assert_eq!(c.push(TableStats::key_column(100, 8, false)), 0);
        assert_eq!(c.push(TableStats::uniform(1_000, 8, 100, false)), 1);
        assert_eq!(c.epoch(), 0);
        assert_eq!(c.len(), 2);
        // A pushed table participates in drift tracking like any other.
        assert!(c.update(0, TableStats::key_column(500, 8, false)));
        assert_eq!(c.epoch(), 1);
    }

    #[test]
    fn force_bump_advances_the_epoch_and_spends_drift() {
        let c = catalog();
        // Accumulate sub-threshold drift, then force-bump (as a
        // recalibration would): the epoch advances with no stats
        // change, and the drift baseline resets to current stats.
        assert!(!c.update(0, TableStats::uniform(11_900, 8, 1_000, false)));
        assert_eq!(c.force_epoch_bump(), 1);
        assert_eq!(c.epoch(), 1);
        assert_eq!(c.snapshot().epoch(), 1);
        assert_eq!(c.snapshot().tables()[0].n, 11_900);
        // Pre-bump accumulated drift was spent: another small step
        // relative to the *new* baseline does not bump.
        assert!(!c.update(0, TableStats::uniform(13_000, 8, 1_000, false)));
        assert_eq!(c.epoch(), 1);
        assert_eq!(c.force_epoch_bump(), 2);
    }

    #[test]
    fn snapshots_pair_epoch_and_stats_coherently() {
        let c = catalog();
        let before = c.snapshot();
        assert_eq!(before.epoch(), 0);
        assert_eq!(before.len(), 2);
        c.update(0, TableStats::uniform(30_000, 8, 1_000, false));
        // The old view is a version, not a reference: it still pairs
        // epoch 0 with the stats epoch 0 was current for.
        assert_eq!(before.epoch(), 0);
        assert_eq!(before.tables()[0].n, 10_000);
        let after = c.snapshot();
        assert_eq!(after.epoch(), 1);
        assert_eq!(after.tables()[0].n, 30_000);
    }

    #[test]
    fn concurrent_readers_see_only_coherent_pairs() {
        let c = std::sync::Arc::new(catalog());
        std::thread::scope(|s| {
            let writer = std::sync::Arc::clone(&c);
            s.spawn(move || {
                for step in 1..=40u64 {
                    // Every step triples the previous cardinality:
                    // always past the 20% threshold, so epoch == step
                    // and n == 10_000 · 2^step move in lockstep.
                    let n = 10_000 * (1 << (step % 16));
                    writer.update(0, TableStats::uniform(n, 8, 1_000, false));
                }
            });
            for _ in 0..4 {
                let reader = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    let mut last_epoch = 0;
                    loop {
                        let snap = reader.snapshot();
                        assert!(snap.epoch() >= last_epoch, "epochs are monotone");
                        let expected = 10_000 * (1 << (snap.epoch() % 16));
                        assert_eq!(
                            snap.tables()[0].n,
                            expected,
                            "stats must match the epoch they are stamped with"
                        );
                        last_epoch = snap.epoch();
                        if last_epoch == 40 {
                            break;
                        }
                    }
                });
            }
        });
    }
}
