//! Versioned table statistics: the logical-cost oracle with an *epoch*.
//!
//! A plan cache memoizes optimizer output per logical plan — but a
//! cached physical plan is only as good as the statistics it was priced
//! under. [`StatsCatalog`] wraps the per-table [`TableStats`] and
//! stamps them with an epoch that advances only when an update *drifts*
//! past a threshold relative to the stats the current epoch's plans
//! were optimized against. Small refreshes keep the epoch (cached plans
//! stay valid under mildly stale statistics, the usual DBMS trade-off);
//! a past-threshold drift bumps it, and every cache key containing the
//! old epoch becomes unreachable — forced re-optimization without any
//! explicit invalidation walk.

use super::optimizer::TableStats;

/// Fraction of relative change in a table's cardinality, distinct
/// count, or key bound beyond which cached plans are considered stale
/// (see [`StatsCatalog::update`]).
pub const DEFAULT_DRIFT_THRESHOLD: f64 = 0.2;

/// A set of per-table statistics with drift-tracked epochs.
#[derive(Debug, Clone)]
pub struct StatsCatalog {
    tables: Vec<TableStats>,
    /// Per-table snapshot of the stats as of the last epoch bump —
    /// the reference point drift is measured against, so repeated small
    /// updates accumulate instead of resetting the comparison base.
    baseline: Vec<TableStats>,
    epoch: u64,
    drift_threshold: f64,
}

impl StatsCatalog {
    /// A catalog over the given tables at epoch 0, with the
    /// [`DEFAULT_DRIFT_THRESHOLD`].
    pub fn new(tables: Vec<TableStats>) -> StatsCatalog {
        StatsCatalog {
            baseline: tables.clone(),
            tables,
            epoch: 0,
            drift_threshold: DEFAULT_DRIFT_THRESHOLD,
        }
    }

    /// Use a different drift threshold (clamped to ≥ 0; 0 makes every
    /// update bump the epoch).
    pub fn with_drift_threshold(mut self, threshold: f64) -> StatsCatalog {
        self.drift_threshold = threshold.max(0.0);
        self
    }

    /// The current statistics, in catalog order.
    pub fn tables(&self) -> &[TableStats] {
        &self.tables
    }

    /// The current epoch. Pairs with
    /// [`LogicalPlan::fingerprint`](super::LogicalPlan::fingerprint) as
    /// a plan-cache key.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when the catalog holds no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Append a table, returning its catalog index. Registration never
    /// bumps the epoch: no existing plan can reference a table that did
    /// not exist when it was optimized.
    pub fn push(&mut self, stats: TableStats) -> usize {
        self.baseline.push(stats.clone());
        self.tables.push(stats);
        self.tables.len() - 1
    }

    /// Replace table `idx`'s statistics. Returns `true` when the update
    /// drifted past the threshold relative to the epoch's baseline and
    /// therefore bumped the epoch (invalidating cached plans keyed on
    /// the old one).
    ///
    /// # Panics
    /// If `idx` is out of range.
    pub fn update(&mut self, idx: usize, stats: TableStats) -> bool {
        let drift = drift(&self.baseline[idx], &stats);
        self.tables[idx] = stats;
        if drift > self.drift_threshold {
            self.baseline[idx] = self.tables[idx].clone();
            self.epoch += 1;
            true
        } else {
            false
        }
    }
}

/// Relative drift between two statistics snapshots of one table: the
/// largest relative change across cardinality, distinct count, and key
/// bound; a sortedness flip or width change counts as total drift (the
/// optimizer's algorithm choices hinge on both).
fn drift(old: &TableStats, new: &TableStats) -> f64 {
    if old.sorted != new.sorted || old.w != new.w {
        return f64::INFINITY;
    }
    let rel = |a: f64, b: f64| (a - b).abs() / a.abs().max(1.0);
    rel(old.n as f64, new.n as f64)
        .max(rel(old.distinct, new.distinct))
        .max(rel(old.key_bound as f64, new.key_bound as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> StatsCatalog {
        StatsCatalog::new(vec![
            TableStats::uniform(10_000, 8, 1_000, false),
            TableStats::key_column(1_000, 8, false),
        ])
    }

    #[test]
    fn small_drift_keeps_the_epoch() {
        let mut c = catalog();
        assert_eq!(c.epoch(), 0);
        // +10% rows: below the 20% default threshold.
        let bumped = c.update(0, TableStats::uniform(11_000, 8, 1_000, false));
        assert!(!bumped);
        assert_eq!(c.epoch(), 0);
        // The stats themselves are refreshed even without a bump.
        assert_eq!(c.tables()[0].n, 11_000);
    }

    #[test]
    fn large_drift_bumps_the_epoch() {
        let mut c = catalog();
        let bumped = c.update(0, TableStats::uniform(20_000, 8, 1_000, false));
        assert!(bumped);
        assert_eq!(c.epoch(), 1);
        // The other table is untouched.
        assert_eq!(c.tables()[1].n, 1_000);
    }

    #[test]
    fn small_drifts_accumulate_against_the_baseline() {
        // Three +10% updates: each is small, but the third leaves the
        // table 33% past the epoch baseline and must bump.
        let mut c = catalog();
        assert!(!c.update(0, TableStats::uniform(11_000, 8, 1_000, false)));
        assert!(!c.update(0, TableStats::uniform(12_000, 8, 1_000, false)));
        assert!(c.update(0, TableStats::uniform(13_300, 8, 1_000, false)));
        assert_eq!(c.epoch(), 1);
        // After the bump the baseline resets: another small step stays.
        assert!(!c.update(0, TableStats::uniform(14_000, 8, 1_000, false)));
        assert_eq!(c.epoch(), 1);
    }

    #[test]
    fn sortedness_flip_is_total_drift() {
        let mut c = catalog();
        assert!(c.update(1, TableStats::key_column(1_000, 8, true)));
        assert_eq!(c.epoch(), 1);
    }

    #[test]
    fn zero_threshold_bumps_on_any_change() {
        let mut c = catalog().with_drift_threshold(0.0);
        assert!(c.update(0, TableStats::uniform(10_001, 8, 1_000, false)));
        // A byte-identical refresh still does not bump (drift 0 is not
        // > 0).
        assert!(!c.update(0, TableStats::uniform(10_001, 8, 1_000, false)));
        assert_eq!(c.epoch(), 1);
    }

    #[test]
    fn len_and_empty() {
        let c = catalog();
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert!(StatsCatalog::new(Vec::new()).is_empty());
    }

    #[test]
    fn push_registers_without_bumping() {
        let mut c = StatsCatalog::new(Vec::new());
        assert_eq!(c.push(TableStats::key_column(100, 8, false)), 0);
        assert_eq!(c.push(TableStats::uniform(1_000, 8, 100, false)), 1);
        assert_eq!(c.epoch(), 0);
        assert_eq!(c.len(), 2);
        // A pushed table participates in drift tracking like any other.
        assert!(c.update(0, TableStats::key_column(500, 8, false)));
        assert_eq!(c.epoch(), 1);
    }
}
