//! `EXPLAIN ANALYZE`: execute a plan and attribute predicted and
//! measured cost to every plan node.
//!
//! This is the paper's validation loop at plan-node granularity.
//! Execution ([`exec::execute_traced`]) reports each operator node's
//! backend counter deltas; the same node patterns — with the *actual*
//! intermediate cardinalities execution discovered — are then priced by
//! [`CostModel::advance_total`], threading one `HierarchyState`
//! through the nodes in execution order so Eq 5.2 cache-state carry
//! (an operator reading what its producer just wrote) prices exactly
//! like the composed whole-plan pattern. The result is an annotated
//! tree: predicted Eq 6.1 cost next to measured per node, with
//! per-level miss breakdowns on the sim backend and wall-ns on native,
//! rendered as pretty text and JSON. On a native backend with a PMU
//! group attached ([`crate::NativeBackend::attach_pmu`]) the measured
//! rows are *hardware* miss counts (`"L1d"`, `"LLC"`, `"dTLB"`), and
//! the predicted rows are remapped onto those names (first cache level
//! → L1d, last cache level → LLC, TLB level → dTLB) so the table shape
//! matches what the sim already gets — the paper's miss predictions
//! against real silicon.
//!
//! Per-node measured/predicted pairs can be streamed into a
//! [`gcm_obs::DriftMonitor`] ([`ExplainReport::feed`]),
//! which is how a mis-calibrated CPU parameter surfaces as a
//! recalibration flag.

use super::exec::{self, BuildSource, ExecTracer, NoPrebuilt};
use super::optimizer::PlanError;
use super::physical::PhysicalPlan;
use crate::backend::MemoryBackend;
use crate::ctx::ExecContext;
use crate::planner::JoinAlgorithm;
use crate::relation::Relation;
use gcm_core::{CacheState, CostModel, CpuCost, Pattern};
use gcm_hardware::{HardwareSpec, LevelKind};
use gcm_obs::json::{Arr, Obj};
use gcm_obs::DriftMonitor;

/// Measured side of one node: backend counter deltas across the node's
/// own (exclusive) execution.
#[derive(Debug, Clone)]
pub struct NodeMeasure {
    /// Measured total under the measurement-side per-op calibration:
    /// charged memory ns + `per_op_ns × ops` on the simulator (Eq 6.1);
    /// wall ns alone on native.
    pub total_ns: f64,
    /// Backend elapsed ns (charged on sim, wall on native).
    pub elapsed_ns: f64,
    /// Charged accesses, when the backend counts them.
    pub accesses: Option<u64>,
    /// Per-level `(name, misses)`: spec-named exact counts on the sim
    /// backend, PMU-named hardware counts (`"L1d"`/`"LLC"`/`"dTLB"`)
    /// on a native backend with counters attached; empty = not
    /// observable.
    pub level_misses: Vec<(String, u64)>,
    /// Logical CPU operations the node performed.
    pub ops: u64,
}

/// Predicted side of one node: the model's Eq 6.1 price for the node's
/// pattern under the threaded cache state.
#[derive(Debug, Clone)]
pub struct NodePredict {
    /// `T_mem + T_cpu` in nanoseconds.
    pub total_ns: f64,
    /// `T_mem` (Eq 3.1 over the threaded state).
    pub mem_ns: f64,
    /// `T_cpu` for the node's actual logical ops.
    pub cpu_ns: f64,
    /// Per-level `(name, estimated misses)`.
    pub level_misses: Vec<(String, f64)>,
}

/// One node of the annotated plan tree. Scan nodes are bindings (no
/// work) and `parallel` wrappers are scheduling annotations; both carry
/// no measurement or prediction.
#[derive(Debug, Clone)]
pub struct ExplainNode {
    /// Display label, e.g. `"join[hash]"`.
    pub label: String,
    /// Stable operator class for drift statistics, e.g. `"join_hash"`.
    pub class: String,
    /// Input subtrees, in plan order.
    pub children: Vec<ExplainNode>,
    /// Measured cost (operator nodes only).
    pub measured: Option<NodeMeasure>,
    /// Predicted cost (operator nodes only).
    pub predicted: Option<NodePredict>,
}

impl ExplainNode {
    fn to_json(&self) -> String {
        let mut children = Arr::new();
        for c in &self.children {
            children.raw(&c.to_json());
        }
        let mut o = Obj::new();
        o.str("label", &self.label).str("class", &self.class);
        if let Some(m) = &self.measured {
            let mut mo = Obj::new();
            mo.num("total_ns", m.total_ns)
                .num("elapsed_ns", m.elapsed_ns)
                .u64("ops", m.ops);
            if let Some(a) = m.accesses {
                mo.u64("accesses", a);
            }
            let mut rows = Arr::new();
            for (name, misses) in &m.level_misses {
                let mut r = Obj::new();
                r.str("level", name).u64("misses", *misses);
                rows.raw(&r.finish());
            }
            mo.raw("level_misses", &rows.finish());
            o.raw("measured", &mo.finish());
        }
        if let Some(p) = &self.predicted {
            let mut po = Obj::new();
            po.num("total_ns", p.total_ns)
                .num("mem_ns", p.mem_ns)
                .num("cpu_ns", p.cpu_ns);
            let mut rows = Arr::new();
            for (name, misses) in &p.level_misses {
                let mut r = Obj::new();
                r.str("level", name).num("misses", *misses);
                rows.raw(&r.finish());
            }
            po.raw("level_misses", &rows.finish());
            o.raw("predicted", &po.finish());
        }
        o.raw("inputs", &children.finish());
        o.finish()
    }

    fn render(&self, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        match (&self.predicted, &self.measured) {
            (Some(p), Some(m)) => {
                let ratio = if p.total_ns > 0.0 {
                    m.total_ns / p.total_ns
                } else {
                    f64::NAN
                };
                out.push_str(&format!(
                    "{pad}{}  predicted={:.0} ns  measured={:.0} ns  ratio={:.2}  ops={}\n",
                    self.label, p.total_ns, m.total_ns, ratio, m.ops
                ));
                // Per-level rows only where the backend observed them.
                if !m.level_misses.is_empty() {
                    let rows: Vec<String> = m
                        .level_misses
                        .iter()
                        .map(|(name, meas)| {
                            let pred = p
                                .level_misses
                                .iter()
                                .find(|(n, _)| n == name)
                                .map(|(_, v)| *v)
                                .unwrap_or(0.0);
                            format!("{name} pred={pred:.0} meas={meas}")
                        })
                        .collect();
                    out.push_str(&format!("{pad}  [misses: {}]\n", rows.join(" | ")));
                }
            }
            _ => out.push_str(&format!("{pad}{}\n", self.label)),
        }
        for c in &self.children {
            c.render(indent + 1, out);
        }
    }

    fn feed(&self, monitor: &DriftMonitor) {
        if let (Some(p), Some(m)) = (&self.predicted, &self.measured) {
            monitor.observe(&self.class, m.total_ns, p.total_ns);
        }
        for c in &self.children {
            c.feed(monitor);
        }
    }
}

/// The annotated plan tree of one `EXPLAIN ANALYZE` run.
#[derive(Debug, Clone)]
pub struct ExplainReport {
    /// The plan's root node.
    pub root: ExplainNode,
}

impl ExplainReport {
    /// Pretty text: one line per node (indented by depth) with
    /// predicted vs measured totals and the measured/predicted ratio,
    /// plus a per-level miss row where the backend observed misses.
    pub fn to_text(&self) -> String {
        let mut out = String::from("EXPLAIN ANALYZE\n");
        self.root.render(0, &mut out);
        out
    }

    /// The tree as one JSON object (`inputs` holds the child nodes).
    pub fn to_json(&self) -> String {
        let mut o = Obj::new();
        o.raw("plan", &self.root.to_json());
        o.finish()
    }

    /// [`to_text`](ExplainReport::to_text) with every run of digits
    /// collapsed to `#`: the tree *structure* (labels, nesting, which
    /// nodes carry measurements and miss rows) without the
    /// machine-varying numbers — what golden tests pin.
    pub fn redacted_text(&self) -> String {
        let mut out = String::new();
        let mut in_digits = false;
        for c in self.to_text().chars() {
            if c.is_ascii_digit() {
                if !in_digits {
                    out.push('#');
                }
                in_digits = true;
            } else {
                // A decimal point inside a number is part of the run.
                if c == '.' && in_digits {
                    continue;
                }
                in_digits = false;
                out.push(c);
            }
        }
        out
    }

    /// Feed every node's `(measured, predicted)` total into a drift
    /// monitor, keyed by operator class.
    pub fn feed(&self, monitor: &DriftMonitor) {
        self.root.feed(monitor);
    }
}

/// Per-node record collected during the traced run, in post-order.
struct NodeRecord {
    label: String,
    class: String,
    pattern: Pattern,
    measure: NodeMeasure,
}

/// An [`ExecTracer`] that keeps every node's pattern and counter
/// deltas for post-run attribution.
struct Collect<B: MemoryBackend> {
    records: Vec<NodeRecord>,
    per_op_ns: f64,
    _backend: std::marker::PhantomData<fn(B)>,
}

impl<B: MemoryBackend> ExecTracer<B> for Collect<B> {
    fn node(
        &mut self,
        mem: &B,
        label: &str,
        class: &str,
        pattern: &Pattern,
        delta: &B::Counters,
        ops: u64,
    ) {
        self.records.push(NodeRecord {
            label: label.to_string(),
            class: class.to_string(),
            pattern: pattern.clone(),
            measure: NodeMeasure {
                total_ns: B::total_ns(delta, ops, self.per_op_ns),
                elapsed_ns: B::elapsed_ns(delta),
                accesses: B::counter_accesses(delta),
                level_misses: mem.counter_level_misses(delta),
                ops,
            },
        });
    }
}

/// Execute `plan` and return the run plus the annotated tree:
/// per-node measured cost (from the backend's counters) against the
/// model's per-node Eq 6.1 prediction over the node patterns with
/// actual cardinalities.
///
/// `cpu` is the *prediction-side* CPU calibration the model prices
/// `T_cpu` with; `measured_per_op_ns` is the *measurement-side*
/// parameter the simulator's charged memory time is completed with
/// (ignored by wall-clock backends, whose elapsed time already
/// contains CPU work). Passing a `cpu` that disagrees with reality is
/// exactly what the drift monitor exists to catch.
pub fn explain_analyze<B: MemoryBackend>(
    ctx: &mut ExecContext<B>,
    plan: &PhysicalPlan,
    tables: &[Relation],
    model: &CostModel,
    cpu: &CpuCost,
    measured_per_op_ns: f64,
) -> Result<(exec::PlanRun, ExplainReport), PlanError> {
    explain_analyze_with_builds(
        ctx,
        plan,
        tables,
        &NoPrebuilt,
        model,
        cpu,
        measured_per_op_ns,
    )
}

/// [`explain_analyze`] with a shared-build source (the service
/// executor's flavour).
pub fn explain_analyze_with_builds<B: MemoryBackend>(
    ctx: &mut ExecContext<B>,
    plan: &PhysicalPlan,
    tables: &[Relation],
    builds: &dyn BuildSource,
    model: &CostModel,
    cpu: &CpuCost,
    measured_per_op_ns: f64,
) -> Result<(exec::PlanRun, ExplainReport), PlanError> {
    let mut tracer = Collect::<B> {
        records: Vec::new(),
        per_op_ns: measured_per_op_ns,
        _backend: std::marker::PhantomData,
    };
    let run = exec::execute_traced(ctx, plan, tables, builds, &mut tracer)?;

    // Price each node's pattern in execution order, threading one
    // hierarchy state so Eq 5.2 carry between producer and consumer
    // matches the whole-plan composed pricing.
    let mut st = model.staged(&CacheState::cold());
    let mut priced = Vec::with_capacity(tracer.records.len());
    for rec in &tracer.records {
        let (report, total_ns) = model.advance_total(&rec.pattern, &mut st, cpu, rec.measure.ops);
        let mut level_misses: Vec<(String, f64)> = report
            .levels
            .iter()
            .map(|l| (l.name.clone(), l.misses()))
            .collect();
        // Hardware counters report misses under PMU names, not the
        // spec's level names; remap the predictions so the render can
        // pair pred/meas rows by name, same table shape as the sim.
        if rec
            .measure
            .level_misses
            .iter()
            .any(|(n, _)| n == "L1d" || n == "LLC" || n == "dTLB")
        {
            level_misses = align_predicted_to_pmu(model.spec(), &level_misses);
        }
        priced.push(NodePredict {
            total_ns,
            mem_ns: report.mem_ns,
            cpu_ns: cpu.ns(rec.measure.ops),
            level_misses,
        });
    }

    // Rebuild the tree: operator nodes consume records in the same
    // post-order the executor reported them.
    let mut next = 0usize;
    let root = attach(plan, &tracer.records, &priced, &mut next);
    debug_assert_eq!(next, tracer.records.len(), "every record attached");
    Ok((run, ExplainReport { root }))
}

/// Remap spec-named predicted miss rows onto the PMU's counter names:
/// the first `Cache` level's misses are the model's L1d-miss estimate,
/// the last `Cache` level's misses its LLC-miss estimate (the same
/// level when the spec has a single cache), and the first `Tlb`
/// level's misses its dTLB estimate. `rows` is in spec level order
/// (the order every `CostReport` emits).
fn align_predicted_to_pmu(spec: &HardwareSpec, rows: &[(String, f64)]) -> Vec<(String, f64)> {
    let cache: Vec<usize> = spec
        .levels()
        .iter()
        .enumerate()
        .filter(|(_, l)| l.kind == LevelKind::Cache)
        .map(|(i, _)| i)
        .collect();
    let tlb = spec.levels().iter().position(|l| l.kind == LevelKind::Tlb);
    let miss_at = |i: usize| rows.get(i).map(|(_, m)| *m).unwrap_or(0.0);
    let mut out = Vec::with_capacity(3);
    if let Some(&first) = cache.first() {
        out.push(("L1d".to_string(), miss_at(first)));
    }
    if let Some(&last) = cache.last() {
        out.push(("LLC".to_string(), miss_at(last)));
    }
    if let Some(t) = tlb {
        out.push(("dTLB".to_string(), miss_at(t)));
    }
    out
}

/// Walk `plan` in the executor's order (children first), consuming one
/// record per operator node.
fn attach(
    plan: &PhysicalPlan,
    records: &[NodeRecord],
    priced: &[NodePredict],
    next: &mut usize,
) -> ExplainNode {
    fn operator(
        records: &[NodeRecord],
        priced: &[NodePredict],
        next: &mut usize,
        children: Vec<ExplainNode>,
    ) -> ExplainNode {
        let i = *next;
        *next += 1;
        ExplainNode {
            label: records[i].label.clone(),
            class: records[i].class.clone(),
            children,
            measured: Some(records[i].measure.clone()),
            predicted: Some(priced[i].clone()),
        }
    }
    match plan {
        PhysicalPlan::Scan { table } => ExplainNode {
            label: format!("scan({table})"),
            class: "scan".into(),
            children: Vec::new(),
            measured: None,
            predicted: None,
        },
        PhysicalPlan::Select { input, .. }
        | PhysicalPlan::Aggregate { input }
        | PhysicalPlan::Sort { input }
        | PhysicalPlan::Dedup { input }
        | PhysicalPlan::Partition { input, .. } => {
            let child = attach(input, records, priced, next);
            operator(records, priced, next, vec![child])
        }
        PhysicalPlan::Join { left, right, .. } => {
            let l = attach(left, records, priced, next);
            let r = attach(right, records, priced, next);
            operator(records, priced, next, vec![l, r])
        }
        PhysicalPlan::Parallel { input, dop } => {
            let child = attach(input, records, priced, next);
            ExplainNode {
                label: format!("parallel({dop})"),
                class: "parallel".into(),
                children: vec![child],
                measured: None,
                predicted: None,
            }
        }
    }
}

/// The operator classes a plan contains (used by the service to key
/// whole-query drift observations without re-walking the tree).
pub fn plan_classes(plan: &PhysicalPlan) -> Vec<&'static str> {
    fn walk(plan: &PhysicalPlan, out: &mut Vec<&'static str>) {
        match plan {
            PhysicalPlan::Scan { .. } => {}
            PhysicalPlan::Select { input, .. } => {
                walk(input, out);
                out.push("select");
            }
            PhysicalPlan::Aggregate { input } => {
                walk(input, out);
                out.push("aggregate");
            }
            PhysicalPlan::Sort { input } => {
                walk(input, out);
                out.push("sort");
            }
            PhysicalPlan::Dedup { input } => {
                walk(input, out);
                out.push("dedup");
            }
            PhysicalPlan::Partition { input, .. } => {
                walk(input, out);
                out.push("partition");
            }
            PhysicalPlan::Join {
                left,
                right,
                algorithm,
            } => {
                walk(left, out);
                walk(right, out);
                out.push(match algorithm {
                    JoinAlgorithm::NestedLoop => "join_nl",
                    JoinAlgorithm::Merge { .. } => "join_merge",
                    JoinAlgorithm::Hash => "join_hash",
                    JoinAlgorithm::PartitionedHash { .. } => "join_part_hash",
                });
            }
            PhysicalPlan::Parallel { input, .. } => walk(input, out),
        }
    }
    let mut out = Vec::new();
    walk(plan, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcm_hardware::presets;
    use gcm_workload::Workload;

    fn two_join_setup() -> (ExecContext, Vec<Relation>, PhysicalPlan) {
        let mut ctx = ExecContext::new(presets::tiny());
        let star = Workload::new(41).star_scenario(2_000, 400, 2);
        let tables = vec![
            ctx.relation_from_keys("F", &star.fact, 8),
            ctx.relation_from_keys("D1", &star.dims[0], 8),
            ctx.relation_from_keys("D2", &star.dims[1], 8),
        ];
        let plan = PhysicalPlan::scan(0)
            .select_lt(200)
            .join_with(PhysicalPlan::scan(1), JoinAlgorithm::Hash)
            .join_with(PhysicalPlan::scan(2), JoinAlgorithm::Hash)
            .group_count();
        (ctx, tables, plan)
    }

    #[test]
    fn two_join_plan_annotates_every_operator_node() {
        let (mut ctx, tables, plan) = two_join_setup();
        let model = CostModel::new(presets::tiny());
        let cpu = CpuCost::default_planner();
        let (run, report) =
            explain_analyze(&mut ctx, &plan, &tables, &model, &cpu, cpu.per_op_ns).unwrap();
        assert!(run.output.n() > 0);

        // Tree shape: group_count → join → (join → (select → scan, scan), scan).
        let agg = &report.root;
        assert_eq!(agg.label, "group_count");
        assert!(agg.measured.is_some() && agg.predicted.is_some());
        let join2 = &agg.children[0];
        assert_eq!(join2.label, "join[hash]");
        let join1 = &join2.children[0];
        assert_eq!(join1.label, "join[hash]");
        assert_eq!(join2.children[1].label, "scan(2)");
        assert_eq!(join1.children[0].label, "select");
        assert!(join1.children[0].measured.is_some());

        // Sim backend: every annotated node has per-level miss rows and
        // a positive measured and predicted cost.
        for node in [agg, join2, join1, &join1.children[0]] {
            let m = node.measured.as_ref().unwrap();
            let p = node.predicted.as_ref().unwrap();
            assert!(!m.level_misses.is_empty(), "{}", node.label);
            assert!(m.accesses.unwrap() > 0, "{}", node.label);
            assert!(m.total_ns > 0.0 && p.total_ns > 0.0, "{}", node.label);
        }

        // Per-node predictions sum to the whole-plan composed price
        // (same Eq 5.2 threading, so the fold must agree).
        let whole = model.report(&run.pattern).mem_ns;
        let sum: f64 = [agg, join2, join1, &join1.children[0]]
            .iter()
            .map(|n| n.predicted.as_ref().unwrap().mem_ns)
            .sum();
        assert!(
            (whole - sum).abs() < 1e-6 * whole.max(1.0),
            "whole {whole} vs per-node sum {sum}"
        );

        let text = report.to_text();
        assert!(text.contains("EXPLAIN ANALYZE"), "{text}");
        assert!(text.contains("ratio="), "{text}");
        assert!(text.contains("[misses:"), "{text}");
        let json = report.to_json();
        assert!(json.contains("\"label\":\"group_count\""), "{json}");
        assert!(json.contains("\"level_misses\""), "{json}");
    }

    #[test]
    fn traced_and_untraced_results_are_byte_identical() {
        let run_once = |traced: bool| -> (Vec<u8>, u64, String) {
            let (mut ctx, tables, plan) = two_join_setup();
            let run = if traced {
                let model = CostModel::new(presets::tiny());
                let cpu = CpuCost::default_planner();
                explain_analyze(&mut ctx, &plan, &tables, &model, &cpu, cpu.per_op_ns)
                    .unwrap()
                    .0
            } else {
                exec::execute(&mut ctx, &plan, &tables).unwrap()
            };
            (
                ctx.relation_bytes(&run.output),
                run.output.n(),
                run.pattern.to_string(),
            )
        };
        let (b0, n0, p0) = run_once(false);
        let (b1, n1, p1) = run_once(true);
        assert_eq!(n0, n1);
        assert_eq!(b0, b1, "tracing must not change results");
        assert_eq!(p0, p1, "tracing must not change the pattern");
    }

    #[test]
    fn miscalibrated_cpu_flips_the_drift_flag() {
        // A CPU-heavy plan priced with a per-op parameter 4× below the
        // measured one: the drift monitor must flag after enough
        // queries, and must stay quiet when the calibration is honest.
        let mut ctx = ExecContext::new(presets::tiny());
        let keys = Workload::new(42).shuffled_keys(4_000);
        let tables = vec![ctx.relation_from_keys("F", &keys, 8)];
        let plan = PhysicalPlan::scan(0).sort();
        let model = CostModel::new(presets::tiny());
        let measured_per_op = gcm_core::CpuCost::DEFAULT_PLANNER_PER_OP_NS;

        let honest = DriftMonitor::new();
        let lowballed = DriftMonitor::new();
        let bad_cpu = CpuCost::per_op(measured_per_op / 4.0);
        let good_cpu = CpuCost::per_op(measured_per_op);
        for _ in 0..10 {
            ctx.cold_caches();
            let (_, report) =
                explain_analyze(&mut ctx, &plan, &tables, &model, &good_cpu, measured_per_op)
                    .unwrap();
            report.feed(&honest);
            ctx.cold_caches();
            let (_, report) =
                explain_analyze(&mut ctx, &plan, &tables, &model, &bad_cpu, measured_per_op)
                    .unwrap();
            report.feed(&lowballed);
        }
        assert!(!honest.needs_recalibration());
        assert!(lowballed.needs_recalibration());
        assert!(lowballed.stale_classes().contains(&"sort".to_string()));
        let ratio = lowballed.ratio("sort").unwrap();
        assert!(ratio > 2.0, "lowballed CPU must over-run: ratio {ratio}");
    }

    #[test]
    fn plan_classes_walks_in_execution_order() {
        let plan = PhysicalPlan::scan(0)
            .select_lt(10)
            .join_with(PhysicalPlan::scan(1), JoinAlgorithm::Hash)
            .group_count();
        assert_eq!(
            plan_classes(&plan),
            vec!["select", "join_hash", "aggregate"]
        );
    }

    #[test]
    fn predicted_rows_remap_onto_pmu_counter_names() {
        let spec = presets::tiny(); // L1, L2 (caches), TLB
        let rows = vec![
            ("L1".to_string(), 10.0),
            ("L2".to_string(), 4.0),
            ("TLB".to_string(), 2.0),
        ];
        let aligned = align_predicted_to_pmu(&spec, &rows);
        assert_eq!(
            aligned,
            vec![
                ("L1d".to_string(), 10.0),
                ("LLC".to_string(), 4.0),
                ("dTLB".to_string(), 2.0),
            ]
        );
    }

    #[test]
    fn native_explain_carries_pmu_rows_or_an_honest_nothing() {
        // EXPLAIN ANALYZE on the native backend: without PMU counters
        // the nodes carry no miss rows at all (fallback); with them,
        // measured and predicted rows share the PMU names so the text
        // render pairs them like the sim's table.
        let mut ctx = ExecContext::native();
        let status = ctx.mem.attach_pmu();
        let keys = Workload::new(7).shuffled_keys(4_000);
        let tables = vec![ctx.relation_from_keys("F", &keys, 8)];
        let plan = PhysicalPlan::scan(0).select_lt(2_000).group_count();
        let model = CostModel::new(presets::tiny());
        let cpu = CpuCost::default_planner();
        let (run, report) =
            explain_analyze(&mut ctx, &plan, &tables, &model, &cpu, cpu.per_op_ns).unwrap();
        assert!(run.output.n() > 0);
        let agg = &report.root;
        let m = agg.measured.as_ref().unwrap();
        match status {
            gcm_obs::PmuStatus::Available => {
                let names: Vec<&str> = m.level_misses.iter().map(|(n, _)| n.as_str()).collect();
                assert_eq!(names, ["L1d", "LLC", "dTLB"]);
                let p = agg.predicted.as_ref().unwrap();
                let pnames: Vec<&str> = p.level_misses.iter().map(|(n, _)| n.as_str()).collect();
                assert_eq!(pnames, ["L1d", "LLC", "dTLB"]);
                let text = report.to_text();
                assert!(text.contains("L1d pred="), "{text}");
            }
            gcm_obs::PmuStatus::Unavailable { reason } => {
                eprintln!("SKIPPED native_explain_carries_pmu_rows (fallback asserted): {reason}");
                println!("SKIPPED native_explain_carries_pmu_rows (fallback asserted): {reason}");
                assert!(m.level_misses.is_empty());
                assert!(!report.to_text().contains("[misses:"));
            }
        }
    }

    #[test]
    fn redacted_text_is_machine_independent() {
        let (mut ctx, tables, plan) = two_join_setup();
        let model = CostModel::new(presets::tiny());
        let cpu = CpuCost::default_planner();
        let (_, report) =
            explain_analyze(&mut ctx, &plan, &tables, &model, &cpu, cpu.per_op_ns).unwrap();
        let red = report.redacted_text();
        assert!(red.contains("predicted=# ns"), "{red}");
        assert!(!red.chars().any(|c| c.is_ascii_digit()), "{red}");
    }
}
