//! The logical plan tree: *what* a query computes, with no algorithm
//! choices. Joins carry no algorithm and partitions may leave their
//! fan-out open — the optimizer fills both in.

use std::fmt;

/// A logical query plan over a catalog of base relations (referenced by
/// index into the table slice handed to the optimizer/executor).
///
/// Built with the fluent helpers ([`LogicalPlan::scan`],
/// [`LogicalPlan::select_lt`], [`LogicalPlan::join`], …); the left input
/// of a join is the probe/outer side, the right input the build/inner
/// side, matching the engine's operator conventions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LogicalPlan {
    /// A base relation (index into the catalog).
    Scan {
        /// Catalog index of the base relation.
        table: usize,
    },
    /// Keep tuples with `key < threshold`.
    Select {
        /// Producer of the tuples to filter.
        input: Box<LogicalPlan>,
        /// Exclusive upper bound on surviving keys.
        threshold: u64,
    },
    /// Equi-join on the key column; algorithm left to the optimizer.
    Join {
        /// Outer (probe) input.
        left: Box<LogicalPlan>,
        /// Inner (build) input.
        right: Box<LogicalPlan>,
    },
    /// Group by key, counting (output: `(key, count)` pairs).
    Aggregate {
        /// Producer of the tuples to group.
        input: Box<LogicalPlan>,
    },
    /// Sort by key (in place).
    Sort {
        /// Producer of the tuples to sort.
        input: Box<LogicalPlan>,
    },
    /// Eliminate duplicate keys.
    Dedup {
        /// Producer of the tuples to deduplicate.
        input: Box<LogicalPlan>,
    },
    /// Hash-partition into `m` buffers; `None` lets the optimizer pick
    /// the fan-out.
    Partition {
        /// Producer of the tuples to partition.
        input: Box<LogicalPlan>,
        /// Fan-out, or `None` for optimizer-chosen.
        m: Option<u64>,
    },
}

impl LogicalPlan {
    /// Scan base relation `table`.
    pub fn scan(table: usize) -> LogicalPlan {
        LogicalPlan::Scan { table }
    }

    /// Filter to `key < threshold`.
    pub fn select_lt(self, threshold: u64) -> LogicalPlan {
        LogicalPlan::Select {
            input: Box::new(self),
            threshold,
        }
    }

    /// Join `self` (outer/probe) with `right` (inner/build).
    pub fn join(self, right: LogicalPlan) -> LogicalPlan {
        LogicalPlan::Join {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Group by key, counting.
    pub fn group_count(self) -> LogicalPlan {
        LogicalPlan::Aggregate {
            input: Box::new(self),
        }
    }

    /// Sort by key.
    pub fn sort(self) -> LogicalPlan {
        LogicalPlan::Sort {
            input: Box::new(self),
        }
    }

    /// Eliminate duplicate keys.
    pub fn dedup(self) -> LogicalPlan {
        LogicalPlan::Dedup {
            input: Box::new(self),
        }
    }

    /// Hash-partition `m` ways (`None`: the optimizer chooses).
    pub fn partition(self, m: Option<u64>) -> LogicalPlan {
        LogicalPlan::Partition {
            input: Box::new(self),
            m,
        }
    }

    /// Number of operator nodes (scans excluded — a scan is a binding,
    /// not work).
    pub fn operators(&self) -> usize {
        match self {
            LogicalPlan::Scan { .. } => 0,
            LogicalPlan::Select { input, .. }
            | LogicalPlan::Aggregate { input }
            | LogicalPlan::Sort { input }
            | LogicalPlan::Dedup { input }
            | LogicalPlan::Partition { input, .. } => 1 + input.operators(),
            LogicalPlan::Join { left, right } => 1 + left.operators() + right.operators(),
        }
    }

    /// Number of join nodes.
    pub fn joins(&self) -> usize {
        match self {
            LogicalPlan::Scan { .. } => 0,
            LogicalPlan::Select { input, .. }
            | LogicalPlan::Aggregate { input }
            | LogicalPlan::Sort { input }
            | LogicalPlan::Dedup { input }
            | LogicalPlan::Partition { input, .. } => input.joins(),
            LogicalPlan::Join { left, right } => 1 + left.joins() + right.joins(),
        }
    }

    /// A structural fingerprint of the plan: identical trees (same
    /// operators, same literals, same table references) always
    /// fingerprint equal; distinct trees collide only with 64-bit-hash
    /// probability, so a cache keying on the fingerprint must still
    /// verify tree equality on a hit. This is the plan-cache key
    /// component a service pairs with a statistics epoch — stable
    /// within one process, not across processes (it hashes with the
    /// std `DefaultHasher`).
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }

    /// Highest catalog index referenced, if any table is referenced.
    pub fn max_table(&self) -> Option<usize> {
        match self {
            LogicalPlan::Scan { table } => Some(*table),
            LogicalPlan::Select { input, .. }
            | LogicalPlan::Aggregate { input }
            | LogicalPlan::Sort { input }
            | LogicalPlan::Dedup { input }
            | LogicalPlan::Partition { input, .. } => input.max_table(),
            LogicalPlan::Join { left, right } => match (left.max_table(), right.max_table()) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            },
        }
    }
}

impl fmt::Display for LogicalPlan {
    /// Functional one-line rendering, e.g.
    /// `group_count(join(select_lt<100>(scan(0)), scan(1)))`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicalPlan::Scan { table } => write!(f, "scan({table})"),
            LogicalPlan::Select { input, threshold } => {
                write!(f, "select_lt<{threshold}>({input})")
            }
            LogicalPlan::Join { left, right } => write!(f, "join({left}, {right})"),
            LogicalPlan::Aggregate { input } => write!(f, "group_count({input})"),
            LogicalPlan::Sort { input } => write!(f, "sort({input})"),
            LogicalPlan::Dedup { input } => write!(f, "dedup({input})"),
            LogicalPlan::Partition { input, m: Some(m) } => {
                write!(f, "partition<{m}>({input})")
            }
            LogicalPlan::Partition { input, m: None } => write!(f, "partition<?>({input})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star_query() -> LogicalPlan {
        LogicalPlan::scan(0)
            .select_lt(100)
            .join(LogicalPlan::scan(1))
            .join(LogicalPlan::scan(2))
            .group_count()
    }

    #[test]
    fn builders_produce_the_expected_tree() {
        let q = star_query();
        assert_eq!(q.operators(), 4);
        assert_eq!(q.joins(), 2);
        assert_eq!(q.max_table(), Some(2));
        assert_eq!(
            q.to_string(),
            "group_count(join(join(select_lt<100>(scan(0)), scan(1)), scan(2)))"
        );
    }

    #[test]
    fn unary_chain_counts() {
        let q = LogicalPlan::scan(3).sort().dedup().partition(Some(8));
        assert_eq!(q.operators(), 3);
        assert_eq!(q.joins(), 0);
        assert_eq!(q.max_table(), Some(3));
        assert_eq!(q.to_string(), "partition<8>(dedup(sort(scan(3))))");
    }

    #[test]
    fn open_fanout_renders_as_question_mark() {
        let q = LogicalPlan::scan(0).partition(None);
        assert_eq!(q.to_string(), "partition<?>(scan(0))");
    }

    #[test]
    fn fingerprints_follow_structure() {
        // Equal trees agree; any structural or literal difference
        // separates them.
        assert_eq!(star_query().fingerprint(), star_query().fingerprint());
        let base = LogicalPlan::scan(0).select_lt(100);
        assert_ne!(
            base.fingerprint(),
            LogicalPlan::scan(0).select_lt(101).fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            LogicalPlan::scan(1).select_lt(100).fingerprint()
        );
        assert_ne!(
            LogicalPlan::scan(0).sort().fingerprint(),
            LogicalPlan::scan(0).dedup().fingerprint()
        );
        // Join order matters (left = probe, right = build).
        let ab = LogicalPlan::scan(0).join(LogicalPlan::scan(1));
        let ba = LogicalPlan::scan(1).join(LogicalPlan::scan(0));
        assert_ne!(ab.fingerprint(), ba.fingerprint());
    }
}
