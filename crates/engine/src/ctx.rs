//! Execution context: the engine's handle on a machine's memory.
//!
//! [`ExecContext`] wraps any [`MemoryBackend`] — the simulated hierarchy
//! ([`SimBackend`], the default) or the host's real memory
//! ([`NativeBackend`](crate::native::NativeBackend)) — and counts
//! *logical CPU operations* (comparisons, swaps, hash computations,
//! tuple moves). The paper's Eq 6.1 splits total time into
//! `T_mem + T_cpu` with `T_cpu` calibrated per algorithm in an in-cache
//! setting; the measured analogue is the backend's elapsed time plus
//! `per_op_ns × ops` (on native memory the wall clock already contains
//! `T_cpu`, see [`MemoryBackend::total_ns`]).

use crate::backend::{MemoryBackend, SimBackend};
use crate::relation::Relation;
use gcm_hardware::HardwareSpec;
use gcm_sim::MemorySystem;

/// Measured counters of one operator run on backend `B`.
pub struct RunStats<B: MemoryBackend = SimBackend> {
    /// Backend interval counters: per-level misses and charged memory
    /// nanoseconds on the simulator, wall-clock time on native memory.
    pub mem: B::Counters,
    /// Logical CPU operations performed.
    pub ops: u64,
}

impl<B: MemoryBackend> Clone for RunStats<B> {
    fn clone(&self) -> Self {
        RunStats {
            mem: self.mem.clone(),
            ops: self.ops,
        }
    }
}

impl<B: MemoryBackend> std::fmt::Debug for RunStats<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunStats")
            .field("mem", &self.mem)
            .field("ops", &self.ops)
            .finish()
    }
}

impl<B: MemoryBackend> RunStats<B> {
    /// Measured total time under a per-op CPU calibration (the
    /// engine-side Eq 6.1; wall-clock backends return elapsed time alone
    /// — see [`MemoryBackend::total_ns`]).
    pub fn total_ns(&self, per_op_ns: f64) -> f64 {
        B::total_ns(&self.mem, self.ops, per_op_ns)
    }

    /// Elapsed (charged or wall-clock) nanoseconds.
    pub fn elapsed_ns(&self) -> f64 {
        B::elapsed_ns(&self.mem)
    }
}

impl RunStats<SimBackend> {
    /// Misses at spec level `idx` (simulated runs only: native memory
    /// has no per-level counters).
    pub fn misses_at(&self, idx: usize) -> u64 {
        self.mem.levels[idx].seq_misses + self.mem.levels[idx].rand_misses
    }
}

/// The engine's execution environment over a pluggable memory backend.
#[derive(Debug)]
pub struct ExecContext<B: MemoryBackend = SimBackend> {
    /// The memory substrate (public: operators drive it directly).
    pub mem: B,
    ops: u64,
}

impl ExecContext<SimBackend> {
    /// A context on the given simulated machine.
    pub fn new(spec: HardwareSpec) -> ExecContext<SimBackend> {
        ExecContext::with_backend(MemorySystem::new(spec))
    }

    /// A simulated context with `[HS89]` miss classification enabled.
    pub fn with_classification(spec: HardwareSpec) -> ExecContext<SimBackend> {
        ExecContext::with_backend(MemorySystem::with_classification(spec))
    }
}

impl<B: MemoryBackend> ExecContext<B> {
    /// A context over an explicit backend (the generic constructor; see
    /// [`ExecContext::new`] for the simulator and
    /// [`ExecContext::native`](crate::native) for host memory).
    pub fn with_backend(mem: B) -> ExecContext<B> {
        ExecContext { mem, ops: 0 }
    }

    /// Allocate a zeroed relation of `n` tuples × `w` bytes, aligned to
    /// the largest cache line (so regions start line-aligned unless an
    /// experiment asks otherwise).
    pub fn relation(&mut self, name: &str, n: u64, w: u64) -> Relation {
        let align = self.mem.line_align();
        let base = self.mem.alloc((n * w).max(1), align);
        Relation::new(name, base, n, w)
    }

    /// Allocate a relation and fill its keys host-side (setup data does
    /// not perturb the simulator's counters; payload bytes stay zero).
    pub fn relation_from_keys(&mut self, name: &str, keys: &[u64], w: u64) -> Relation {
        let rel = self.relation(name, keys.len() as u64, w);
        for (i, &k) in keys.iter().enumerate() {
            self.mem.host_write_u64(rel.tuple(i as u64), k);
        }
        rel
    }

    /// Read a relation's full content host-side, as raw bytes — the
    /// result-equality surface: two backends executing the same plan must
    /// produce byte-identical relation contents.
    pub fn relation_bytes(&self, rel: &Relation) -> Vec<u8> {
        let mut buf = vec![0u8; rel.bytes() as usize];
        if !buf.is_empty() {
            self.mem.host_read_bytes(rel.base(), &mut buf);
        }
        buf
    }

    /// Read tuple `i`'s key (charged access).
    #[inline]
    pub fn read_key(&mut self, rel: &Relation, i: u64) -> u64 {
        self.mem.read_u64(rel.key_addr(i))
    }

    /// Write tuple `i`'s key (charged access).
    #[inline]
    pub fn write_key(&mut self, rel: &Relation, i: u64, key: u64) {
        self.mem.write_u64(rel.key_addr(i), key);
    }

    /// Touch tuple `i` entirely (charged read of all `w` bytes) and
    /// return its key.
    #[inline]
    pub fn read_tuple(&mut self, rel: &Relation, i: u64) -> u64 {
        let addr = rel.tuple(i);
        self.mem.touch(addr, rel.w());
        self.mem.host_read_u64(addr)
    }

    /// Write tuple `i` entirely (charged write of all `w` bytes), with
    /// the given key and zero payload.
    #[inline]
    pub fn write_tuple(&mut self, rel: &Relation, i: u64, key: u64) {
        let addr = rel.tuple(i);
        self.mem.touch(addr, rel.w());
        self.mem.host_write_u64(addr, key);
    }

    /// Copy tuple `src_i` of `src` to `dst_i` of `dst` (charged).
    pub fn copy_tuple(&mut self, src: &Relation, src_i: u64, dst: &Relation, dst_i: u64) {
        let n = src.w().min(dst.w());
        self.mem.copy(src.tuple(src_i), dst.tuple(dst_i), n);
    }

    /// Swap tuples `i` and `j` in place (charged read+write of both).
    pub fn swap_tuples(&mut self, rel: &Relation, i: u64, j: u64) {
        self.mem.swap(rel.tuple(i), rel.tuple(j), rel.w());
    }

    /// Count `k` logical CPU operations.
    #[inline]
    pub fn count_ops(&mut self, k: u64) {
        self.ops += k;
    }

    /// Logical CPU operations so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Run `f`, returning its result and the interval counters (backend
    /// counters and logical ops) it produced.
    pub fn measure<T>(&mut self, f: impl FnOnce(&mut ExecContext<B>) -> T) -> (T, RunStats<B>) {
        let before_mem = self.mem.counters();
        let before_ops = self.ops;
        let out = f(self);
        let stats = RunStats {
            mem: self.mem.counters_since(&before_mem),
            ops: self.ops - before_ops,
        };
        (out, stats)
    }

    /// Restore cold caches as well as the backend can (paper §4.5
    /// assumes initially empty caches before each experiment; the
    /// simulator flushes exactly, native memory sweeps an eviction
    /// buffer).
    pub fn cold_caches(&mut self) {
        self.mem.cold_caches();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcm_hardware::presets;
    use gcm_sim::Snapshot;

    fn ctx() -> ExecContext {
        ExecContext::new(presets::tiny())
    }

    #[test]
    fn relation_setup_does_not_charge() {
        let mut c = ctx();
        let keys: Vec<u64> = (0..100).collect();
        let rel = c.relation_from_keys("R", &keys, 16);
        assert_eq!(c.mem.clock_ns(), 0.0);
        assert_eq!(c.mem.host().read_u64(rel.tuple(7)), 7);
    }

    #[test]
    fn read_key_is_simulated() {
        let mut c = ctx();
        let rel = c.relation_from_keys("R", &[5, 6, 7], 16);
        assert_eq!(c.read_key(&rel, 2), 7);
        assert!(c.mem.clock_ns() > 0.0);
    }

    #[test]
    fn swap_tuples_swaps_whole_tuples() {
        let mut c = ctx();
        let rel = c.relation_from_keys("R", &[1, 2], 16);
        c.mem.host_mut().write_u64(rel.tuple(0) + 8, 111); // payload of t0
        c.swap_tuples(&rel, 0, 1);
        assert_eq!(c.mem.host().read_u64(rel.tuple(0)), 2);
        assert_eq!(c.mem.host().read_u64(rel.tuple(1)), 1);
        assert_eq!(c.mem.host().read_u64(rel.tuple(1) + 8), 111);
    }

    #[test]
    fn measure_isolates_intervals() {
        let mut c = ctx();
        let rel = c.relation_from_keys("R", &(0..64u64).collect::<Vec<_>>(), 8);
        let (_, warm) = c.measure(|c| {
            for i in 0..64 {
                c.read_key(&rel, i);
            }
            c.count_ops(64);
        });
        assert_eq!(warm.ops, 64);
        assert!(warm.mem.clock_ns > 0.0);
        // A second identical run hits the warm cache.
        let (_, rerun) = c.measure(|c| {
            for i in 0..64 {
                c.read_key(&rel, i);
            }
        });
        assert_eq!(rerun.mem.total_misses(), 0);
        assert_eq!(rerun.mem.clock_ns, 0.0);
        assert_eq!(rerun.elapsed_ns(), 0.0);
    }

    #[test]
    fn cold_caches_restores_misses() {
        let mut c = ctx();
        let rel = c.relation_from_keys("R", &[1, 2, 3], 8);
        c.read_key(&rel, 0);
        c.cold_caches();
        let (_, s) = c.measure(|c| {
            c.read_key(&rel, 0);
        });
        assert!(s.mem.total_misses() > 0);
    }

    #[test]
    fn run_stats_total_time() {
        let s: RunStats = RunStats {
            mem: Snapshot {
                levels: vec![],
                clock_ns: 100.0,
            },
            ops: 50,
        };
        assert!((s.total_ns(2.0) - 200.0).abs() < 1e-12);
        let s2 = s.clone();
        assert_eq!(s2.ops, 50);
        assert!(format!("{s2:?}").contains("RunStats"));
    }

    #[test]
    fn copy_tuple_moves_data() {
        let mut c = ctx();
        let a = c.relation_from_keys("A", &[42], 16);
        let b = c.relation("B", 1, 16);
        c.copy_tuple(&a, 0, &b, 0);
        assert_eq!(c.mem.host().read_u64(b.tuple(0)), 42);
    }

    #[test]
    fn relation_bytes_reads_whole_content() {
        let mut c = ctx();
        let rel = c.relation_from_keys("R", &[1, 2], 16);
        let bytes = c.relation_bytes(&rel);
        assert_eq!(bytes.len(), 32);
        assert_eq!(u64::from_le_bytes(bytes[0..8].try_into().unwrap()), 1);
        assert_eq!(u64::from_le_bytes(bytes[16..24].try_into().unwrap()), 2);
        let empty = c.relation("E", 0, 8);
        assert!(c.relation_bytes(&empty).is_empty());
    }
}
