//! Execution context: the engine's handle on the simulated machine.
//!
//! Wraps a [`MemorySystem`] and counts *logical CPU operations*
//! (comparisons, swaps, hash computations, tuple moves). The paper's
//! Eq 6.1 splits total time into `T_mem + T_cpu` with `T_cpu` calibrated
//! per algorithm in an in-cache setting; our measured analogue is
//! `clock_ns (charged memory latency) + per_op_ns × ops`.

use crate::relation::Relation;
use gcm_hardware::HardwareSpec;
use gcm_sim::{MemorySystem, Snapshot};

/// Measured counters of one operator run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Per-level interval counters and charged memory nanoseconds.
    pub mem: Snapshot,
    /// Logical CPU operations performed.
    pub ops: u64,
}

impl RunStats {
    /// Measured total time under a per-op CPU calibration (the engine-side
    /// Eq 6.1).
    pub fn total_ns(&self, per_op_ns: f64) -> f64 {
        self.mem.clock_ns + per_op_ns * self.ops as f64
    }

    /// Misses at spec level `idx`.
    pub fn misses_at(&self, idx: usize) -> u64 {
        self.mem.levels[idx].seq_misses + self.mem.levels[idx].rand_misses
    }
}

/// The engine's execution environment.
#[derive(Debug)]
pub struct ExecContext {
    /// The simulated memory hierarchy (public: operators drive it
    /// directly).
    pub mem: MemorySystem,
    ops: u64,
}

impl ExecContext {
    /// A context on the given machine.
    pub fn new(spec: HardwareSpec) -> ExecContext {
        ExecContext {
            mem: MemorySystem::new(spec),
            ops: 0,
        }
    }

    /// A context with `[HS89]` miss classification enabled.
    pub fn with_classification(spec: HardwareSpec) -> ExecContext {
        ExecContext {
            mem: MemorySystem::with_classification(spec),
            ops: 0,
        }
    }

    /// Allocate a zeroed relation of `n` tuples × `w` bytes, aligned to
    /// the largest cache line (so regions start line-aligned unless an
    /// experiment asks otherwise).
    pub fn relation(&mut self, name: &str, n: u64, w: u64) -> Relation {
        let align = self
            .mem
            .spec()
            .data_caches()
            .map(|l| l.line)
            .max()
            .unwrap_or(64);
        let base = self.mem.alloc((n * w).max(1), align);
        Relation::new(name, base, n, w)
    }

    /// Allocate a relation and fill its keys host-side (setup data does
    /// not perturb the counters; payload bytes stay zero).
    pub fn relation_from_keys(&mut self, name: &str, keys: &[u64], w: u64) -> Relation {
        let rel = self.relation(name, keys.len() as u64, w);
        for (i, &k) in keys.iter().enumerate() {
            self.mem.host_mut().write_u64(rel.tuple(i as u64), k);
        }
        rel
    }

    /// Read tuple `i`'s key (simulated: the access is charged).
    #[inline]
    pub fn read_key(&mut self, rel: &Relation, i: u64) -> u64 {
        self.mem.read_u64(rel.key_addr(i))
    }

    /// Write tuple `i`'s key (simulated).
    #[inline]
    pub fn write_key(&mut self, rel: &Relation, i: u64, key: u64) {
        self.mem.write_u64(rel.key_addr(i), key);
    }

    /// Touch tuple `i` entirely (simulated read of all `w` bytes) and
    /// return its key.
    #[inline]
    pub fn read_tuple(&mut self, rel: &Relation, i: u64) -> u64 {
        let addr = rel.tuple(i);
        self.mem.touch(addr, rel.w());
        self.mem.host().read_u64(addr)
    }

    /// Write tuple `i` entirely (simulated write of all `w` bytes), with
    /// the given key and zero payload.
    #[inline]
    pub fn write_tuple(&mut self, rel: &Relation, i: u64, key: u64) {
        let addr = rel.tuple(i);
        self.mem.touch(addr, rel.w());
        self.mem.host_mut().write_u64(addr, key);
    }

    /// Copy tuple `src_i` of `src` to `dst_i` of `dst` (both simulated).
    pub fn copy_tuple(&mut self, src: &Relation, src_i: u64, dst: &Relation, dst_i: u64) {
        let n = src.w().min(dst.w());
        self.mem.copy(src.tuple(src_i), dst.tuple(dst_i), n);
    }

    /// Swap tuples `i` and `j` in place (simulated read+write of both).
    pub fn swap_tuples(&mut self, rel: &Relation, i: u64, j: u64) {
        let (a, b) = (rel.tuple(i), rel.tuple(j));
        let w = rel.w();
        self.mem.touch(a, w);
        self.mem.touch(b, w);
        let mut ta = vec![0u8; w as usize];
        let mut tb = vec![0u8; w as usize];
        self.mem.host().read_bytes(a, &mut ta);
        self.mem.host().read_bytes(b, &mut tb);
        self.mem.host_mut().write_bytes(a, &tb);
        self.mem.host_mut().write_bytes(b, &ta);
    }

    /// Count `k` logical CPU operations.
    #[inline]
    pub fn count_ops(&mut self, k: u64) {
        self.ops += k;
    }

    /// Logical CPU operations so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Run `f`, returning its result and the interval counters (memory
    /// counters and logical ops) it produced.
    pub fn measure<T>(&mut self, f: impl FnOnce(&mut ExecContext) -> T) -> (T, RunStats) {
        let before_mem = self.mem.snapshot();
        let before_ops = self.ops;
        let out = f(self);
        let stats = RunStats {
            mem: self.mem.delta_since(&before_mem),
            ops: self.ops - before_ops,
        };
        (out, stats)
    }

    /// Flush all caches (paper §4.5 assumes initially empty caches before
    /// each experiment).
    pub fn cold_caches(&mut self) {
        self.mem.flush_caches();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcm_hardware::presets;

    fn ctx() -> ExecContext {
        ExecContext::new(presets::tiny())
    }

    #[test]
    fn relation_setup_does_not_charge() {
        let mut c = ctx();
        let keys: Vec<u64> = (0..100).collect();
        let rel = c.relation_from_keys("R", &keys, 16);
        assert_eq!(c.mem.clock_ns(), 0.0);
        assert_eq!(c.mem.host().read_u64(rel.tuple(7)), 7);
    }

    #[test]
    fn read_key_is_simulated() {
        let mut c = ctx();
        let rel = c.relation_from_keys("R", &[5, 6, 7], 16);
        assert_eq!(c.read_key(&rel, 2), 7);
        assert!(c.mem.clock_ns() > 0.0);
    }

    #[test]
    fn swap_tuples_swaps_whole_tuples() {
        let mut c = ctx();
        let rel = c.relation_from_keys("R", &[1, 2], 16);
        c.mem.host_mut().write_u64(rel.tuple(0) + 8, 111); // payload of t0
        c.swap_tuples(&rel, 0, 1);
        assert_eq!(c.mem.host().read_u64(rel.tuple(0)), 2);
        assert_eq!(c.mem.host().read_u64(rel.tuple(1)), 1);
        assert_eq!(c.mem.host().read_u64(rel.tuple(1) + 8), 111);
    }

    #[test]
    fn measure_isolates_intervals() {
        let mut c = ctx();
        let rel = c.relation_from_keys("R", &(0..64u64).collect::<Vec<_>>(), 8);
        let (_, warm) = c.measure(|c| {
            for i in 0..64 {
                c.read_key(&rel, i);
            }
            c.count_ops(64);
        });
        assert_eq!(warm.ops, 64);
        assert!(warm.mem.clock_ns > 0.0);
        // A second identical run hits the warm cache.
        let (_, rerun) = c.measure(|c| {
            for i in 0..64 {
                c.read_key(&rel, i);
            }
        });
        assert_eq!(rerun.mem.total_misses(), 0);
        assert_eq!(rerun.mem.clock_ns, 0.0);
    }

    #[test]
    fn cold_caches_restores_misses() {
        let mut c = ctx();
        let rel = c.relation_from_keys("R", &[1, 2, 3], 8);
        c.read_key(&rel, 0);
        c.cold_caches();
        let (_, s) = c.measure(|c| {
            c.read_key(&rel, 0);
        });
        assert!(s.mem.total_misses() > 0);
    }

    #[test]
    fn run_stats_total_time() {
        let s = RunStats {
            mem: Snapshot {
                levels: vec![],
                clock_ns: 100.0,
            },
            ops: 50,
        };
        assert!((s.total_ns(2.0) - 200.0).abs() < 1e-12);
    }

    #[test]
    fn copy_tuple_moves_data() {
        let mut c = ctx();
        let a = c.relation_from_keys("A", &[42], 16);
        let b = c.relation("B", 1, 16);
        c.copy_tuple(&a, 0, &b, 0);
        assert_eq!(c.mem.host().read_u64(b.tuple(0)), 42);
    }
}
