//! The pluggable memory substrate every operator executes against.
//!
//! The engine's operators are generic over a [`MemoryBackend`]: the same
//! algorithm code runs either on the **simulated** hierarchy
//! ([`SimBackend`], i.e. [`gcm_sim::MemorySystem`] — deterministic
//! per-level miss counters and a charged-latency clock) or on the
//! **native** memory of the host machine
//! ([`NativeBackend`](crate::native::NativeBackend) — real buffers, real
//! loads and stores, wall-clock time). Results are bit-identical across
//! backends because only the substrate differs, never the algorithm;
//! what differs is *what can be measured*:
//!
//! | capability                | sim                  | native            |
//! |---------------------------|----------------------|-------------------|
//! | per-level miss counters   | exact                | not observable    |
//! | elapsed time              | charged (Eq 3.1)     | wall clock        |
//! | `host_*` setup accesses   | free (uncounted)     | real, timed       |
//! | cold caches               | exact flush          | eviction sweep    |
//!
//! This closes the paper's loop: the cost model is calibrated on and
//! validated against the *actual* machine (§6), not only the simulator.

use gcm_core::CpuCost;
use gcm_sim::{Addr, MemorySystem, MissTrace};

/// The simulated backend: the deterministic measurement substrate the
/// validation experiments use (bit-for-bit the engine's historical
/// behaviour).
pub type SimBackend = MemorySystem;

/// A memory substrate operators can run on.
///
/// *Charged* accesses ([`touch`](MemoryBackend::touch),
/// [`read_u64`](MemoryBackend::read_u64), …) are part of the algorithm
/// and must be accounted (simulated or actually performed); `host_*`
/// accesses are setup/oracle bookkeeping that the simulator leaves
/// uncounted (on native memory they are real accesses like any other —
/// wall clock cannot be told to ignore them, which is documented
/// per-measurement).
pub trait MemoryBackend {
    /// Interval counters of one run: per-level [`gcm_sim::Snapshot`] for
    /// the simulator, elapsed wall time for native memory.
    type Counters: Clone + std::fmt::Debug + Send;

    /// Allocate `bytes` zeroed bytes aligned to `align` (a power of two).
    fn alloc(&mut self, bytes: u64, align: u64) -> Addr;

    /// Preferred relation alignment (the largest cache line the backend
    /// knows about).
    fn line_align(&self) -> u64;

    /// Charged access touching `[addr, addr+len)` (read/write symmetric,
    /// paper §2.2).
    fn touch(&mut self, addr: Addr, len: u64);

    /// Charged read of a little-endian `u64`.
    fn read_u64(&mut self, addr: Addr) -> u64;

    /// Charged write of a little-endian `u64`.
    fn write_u64(&mut self, addr: Addr, v: u64);

    /// Charged copy of `len` bytes (reads source, writes destination).
    fn copy(&mut self, src: Addr, dst: Addr, len: u64);

    /// Charged swap of two `w`-byte tuples.
    fn swap(&mut self, a: Addr, b: Addr, w: u64) {
        self.touch(a, w);
        self.touch(b, w);
        let mut ta = vec![0u8; w as usize];
        let mut tb = vec![0u8; w as usize];
        self.host_read_bytes(a, &mut ta);
        self.host_read_bytes(b, &mut tb);
        self.host_write_bytes(a, &tb);
        self.host_write_bytes(b, &ta);
    }

    /// Hint that the line holding `addr` will soon be **read**. Never
    /// charged, never required for correctness: the simulator's charged
    /// clock already prices every future access, so its hint is a no-op;
    /// the native backend forwards it to the hardware prefetcher.
    fn prefetch_read(&mut self, _addr: Addr) {}

    /// Hint that the line holding `addr` will soon be **written**.
    /// Uncharged no-op by default, like
    /// [`prefetch_read`](MemoryBackend::prefetch_read).
    fn prefetch_write(&mut self, _addr: Addr) {}

    /// How many items ahead operators should issue software prefetches
    /// on this backend. `0` disables prefetching entirely (the
    /// simulator's default — hints would neither help nor be priced);
    /// the native backend derives a positive distance from the
    /// calibrated latency/bandwidth ratio.
    fn prefetch_distance(&self) -> u64 {
        0
    }

    /// Charged bulk scan: touch `u` bytes of each of `n` `w`-byte tuples
    /// starting at `base` and return the wrapping sum of their 8-byte
    /// keys. The default performs exactly the per-tuple charged loop the
    /// scalar scan operator historically ran (one
    /// [`touch`](MemoryBackend::touch) plus one uncharged key read per
    /// tuple), so simulated counters are bit-identical whether or not an
    /// operator routes through this entry point; vectorizing backends
    /// override it with real SIMD sweeps that preserve the same
    /// access/line accounting.
    fn scan_sum_bulk(&mut self, base: Addr, n: u64, w: u64, u: u64) -> u64 {
        let mut sum = 0u64;
        for i in 0..n {
            let addr = base + i * w;
            self.touch(addr, u);
            sum = sum.wrapping_add(self.host_read_u64(addr));
        }
        sum
    }

    /// Charged bulk filter: read each of `n` `w`-byte tuples at `src`
    /// and copy those with key `< threshold` densely into `dst`
    /// (`dst_w`-byte slots); returns the number of hits. The default is
    /// exactly the scalar selection loop (per-tuple full-width
    /// [`touch`](MemoryBackend::touch), then a charged
    /// [`copy`](MemoryBackend::copy) of `min(w, dst_w)` bytes per hit);
    /// overrides must preserve that accounting.
    fn select_lt_bulk(
        &mut self,
        src: Addr,
        n: u64,
        w: u64,
        threshold: u64,
        dst: Addr,
        dst_w: u64,
    ) -> u64 {
        let cw = w.min(dst_w);
        let mut hits = 0u64;
        for i in 0..n {
            let addr = src + i * w;
            self.touch(addr, w);
            let key = self.host_read_u64(addr);
            if key < threshold {
                self.copy(addr, dst + hits * dst_w, cw);
                hits += 1;
            }
        }
        hits
    }

    /// Charged bulk hash-scatter: append each of `n` `w`-byte tuples at
    /// `src` to its output buffer in `dst`, where `buckets[i]` names
    /// tuple `i`'s buffer and `cursors[b]` is buffer `b`'s running write
    /// position (a tuple index into `dst`, advanced by the call). The
    /// default is exactly the scalar partition scatter (per-tuple
    /// full-width [`touch`](MemoryBackend::touch) of the input, then a
    /// charged [`copy`](MemoryBackend::copy) to the destination);
    /// overrides must preserve that accounting.
    fn partition_scatter_bulk(
        &mut self,
        src: Addr,
        n: u64,
        w: u64,
        dst: Addr,
        buckets: &[u32],
        cursors: &mut [u64],
    ) {
        debug_assert_eq!(buckets.len() as u64, n);
        for i in 0..n {
            let from = src + i * w;
            self.touch(from, w);
            let b = buckets[i as usize] as usize;
            self.copy(from, dst + cursors[b] * w, w);
            cursors[b] += 1;
        }
    }

    /// Uncharged (setup/oracle) read of a `u64`.
    fn host_read_u64(&self, addr: Addr) -> u64;

    /// Uncharged (setup/oracle) write of a `u64`.
    fn host_write_u64(&mut self, addr: Addr, v: u64);

    /// Uncharged read into `buf`.
    fn host_read_bytes(&self, addr: Addr, buf: &mut [u8]);

    /// Uncharged write of `buf`.
    fn host_write_bytes(&mut self, addr: Addr, buf: &[u8]);

    /// Current cumulative counters (monotone; diff two with
    /// [`counters_since`](MemoryBackend::counters_since) for an interval).
    fn counters(&self) -> Self::Counters;

    /// Counters accumulated since `earlier`.
    fn counters_since(&self, earlier: &Self::Counters) -> Self::Counters;

    /// Elapsed (charged or wall-clock) nanoseconds of an interval.
    fn elapsed_ns(c: &Self::Counters) -> f64;

    /// Charged accesses of an interval, when the backend counts them
    /// (the simulator's first-level probe count; `None` on backends
    /// without access counters).
    fn counter_accesses(c: &Self::Counters) -> Option<u64> {
        let _ = c;
        None
    }

    /// Per-cache-level `(name, misses)` of an interval. Empty on
    /// backends without per-level counters (native memory): callers
    /// treat "no rows" as "not observable", never as "zero misses".
    fn counter_level_misses(&self, c: &Self::Counters) -> Vec<(String, u64)> {
        let _ = c;
        Vec::new()
    }

    /// Attach a bounded miss trace of `capacity` events, replacing any
    /// existing one. Returns whether the backend records traces at all
    /// — `false` (the default) on backends without observable misses,
    /// where attach/take are documented no-ops.
    fn attach_miss_trace(&mut self, capacity: usize) -> bool {
        let _ = capacity;
        false
    }

    /// Detach and return the miss trace. Check
    /// [`MissTrace::dropped`] before trusting it: a full ring drops
    /// (and counts) events rather than growing.
    fn take_miss_trace(&mut self) -> Option<MissTrace> {
        None
    }

    /// Events dropped by the currently attached trace, if one exists —
    /// exposed separately so truncation can be monitored without
    /// detaching the trace.
    fn miss_trace_dropped(&self) -> Option<u64> {
        None
    }

    /// Measured total time of an interval under a per-op CPU calibration
    /// — the engine-side Eq 6.1 (`T = T_mem + T_cpu`), routed through
    /// [`CpuCost::eq61_ns`]. Backends whose elapsed time already
    /// *includes* CPU work (wall clocks) override this to return the
    /// elapsed time alone.
    fn total_ns(c: &Self::Counters, ops: u64, per_op_ns: f64) -> f64 {
        CpuCost::per_op(per_op_ns).eq61_ns(Self::elapsed_ns(c), ops)
    }

    /// Restore the paper's §4.5 initial condition ("initially empty
    /// caches") as well as the backend can: the simulator flushes
    /// exactly, native memory runs an eviction sweep.
    fn cold_caches(&mut self);
}

impl MemoryBackend for MemorySystem {
    type Counters = gcm_sim::Snapshot;

    fn alloc(&mut self, bytes: u64, align: u64) -> Addr {
        MemorySystem::alloc(self, bytes, align)
    }

    fn line_align(&self) -> u64 {
        self.spec()
            .data_caches()
            .map(|l| l.line)
            .max()
            .unwrap_or(64)
    }

    fn touch(&mut self, addr: Addr, len: u64) {
        MemorySystem::touch(self, addr, len);
    }

    fn read_u64(&mut self, addr: Addr) -> u64 {
        MemorySystem::read_u64(self, addr)
    }

    fn write_u64(&mut self, addr: Addr, v: u64) {
        MemorySystem::write_u64(self, addr, v);
    }

    fn copy(&mut self, src: Addr, dst: Addr, len: u64) {
        MemorySystem::copy(self, src, dst, len);
    }

    fn host_read_u64(&self, addr: Addr) -> u64 {
        self.host().read_u64(addr)
    }

    fn host_write_u64(&mut self, addr: Addr, v: u64) {
        self.host_mut().write_u64(addr, v);
    }

    fn host_read_bytes(&self, addr: Addr, buf: &mut [u8]) {
        self.host().read_bytes(addr, buf);
    }

    fn host_write_bytes(&mut self, addr: Addr, buf: &[u8]) {
        self.host_mut().write_bytes(addr, buf);
    }

    fn counters(&self) -> gcm_sim::Snapshot {
        self.snapshot()
    }

    fn counters_since(&self, earlier: &gcm_sim::Snapshot) -> gcm_sim::Snapshot {
        self.delta_since(earlier)
    }

    fn elapsed_ns(c: &gcm_sim::Snapshot) -> f64 {
        c.clock_ns
    }

    fn counter_accesses(c: &gcm_sim::Snapshot) -> Option<u64> {
        // Every charged access probes the first level exactly once.
        c.levels.first().map(|l| l.accesses)
    }

    fn counter_level_misses(&self, c: &gcm_sim::Snapshot) -> Vec<(String, u64)> {
        self.spec()
            .levels()
            .iter()
            .zip(&c.levels)
            .map(|(level, stats)| (level.name.clone(), stats.misses()))
            .collect()
    }

    fn attach_miss_trace(&mut self, capacity: usize) -> bool {
        MemorySystem::attach_trace(self, capacity);
        true
    }

    fn take_miss_trace(&mut self) -> Option<MissTrace> {
        MemorySystem::take_trace(self)
    }

    fn miss_trace_dropped(&self) -> Option<u64> {
        self.trace().map(|t| t.dropped())
    }

    fn cold_caches(&mut self) {
        self.flush_caches();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcm_hardware::presets;

    /// Drive a backend through the trait only (the way generic operators
    /// see it) and check the sim impl forwards faithfully.
    fn roundtrip<B: MemoryBackend>(mem: &mut B) {
        let a = mem.alloc(64, 8);
        let b = mem.alloc(64, 8);
        mem.write_u64(a, 7);
        assert_eq!(mem.read_u64(a), 7);
        mem.host_write_u64(b, 9);
        assert_eq!(mem.host_read_u64(b), 9);
        mem.copy(a, b, 16);
        assert_eq!(mem.host_read_u64(b), 7);
        mem.host_write_u64(a + 8, 1);
        mem.host_write_u64(b + 8, 2);
        mem.swap(a, b, 16);
        assert_eq!(mem.host_read_u64(a + 8), 2);
        assert_eq!(mem.host_read_u64(b + 8), 1);
    }

    #[test]
    fn sim_backend_roundtrips_through_the_trait() {
        let mut mem = MemorySystem::new(presets::tiny());
        roundtrip(&mut mem);
        // Charged accesses moved the charged clock; interval diffs work.
        let before = MemoryBackend::counters(&mem);
        assert!(MemorySystem::clock_ns(&mem) > 0.0);
        MemoryBackend::read_u64(&mut mem, 4096);
        let d = mem.counters_since(&before);
        assert!(<MemorySystem as MemoryBackend>::elapsed_ns(&d) >= 0.0);
    }

    #[test]
    fn sim_line_align_is_the_largest_data_line() {
        let mem = MemorySystem::new(presets::tiny()); // L1 32 B, L2 64 B
        assert_eq!(mem.line_align(), 64);
    }

    #[test]
    fn default_total_ns_is_eq61() {
        let mem = MemorySystem::new(presets::tiny());
        let c = gcm_sim::Snapshot {
            levels: mem.snapshot().levels,
            clock_ns: 100.0,
        };
        let t = <MemorySystem as MemoryBackend>::total_ns(&c, 50, 2.0);
        assert!((t - 200.0).abs() < 1e-12);
    }
}
