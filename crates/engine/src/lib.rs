//! # gcm-engine — a column-oriented engine over pluggable memory
//!
//! The reproduction's substitute for the paper's Monet/MonetDB platform
//! (§6.1): a small main-memory database engine whose operators
//!
//! * compute **real results** (every operator is tested against host-side
//!   references), while
//! * executing **every data access through a pluggable
//!   [`MemoryBackend`]** — the cache simulator ([`SimBackend`]: exact
//!   L1/L2/TLB miss counts and charged memory time) or the host's real
//!   memory ([`NativeBackend`]: real buffers, wall-clock time) — with
//!   byte-identical results either way, and
//! * **describe themselves** in the access-pattern language (the paper's
//!   Table 2), so the cost model predicts the same quantities.
//!
//! The validation experiments (Figure 7) run each operator and compare
//! simulator-measured counters with model predictions; the native
//! backend closes the remaining gap to the paper, which validated on an
//! actual machine (calibrate → model → measure, see
//! `tests/native_vs_model.rs`).
//!
//! ```
//! use gcm_engine::{ops, ExecContext};
//! use gcm_core::CostModel;
//! use gcm_hardware::presets;
//! use gcm_workload::Workload;
//!
//! let mut ctx = ExecContext::new(presets::tiny());
//! let keys = Workload::new(1).shuffled_keys(1024);
//! let table = ctx.relation_from_keys("U", &keys, 8);
//!
//! // Run the real quick-sort, measuring its memory behaviour...
//! let (_, measured) = ctx.measure(|c| ops::sort::quick_sort(c, &table));
//!
//! // ...and predict the same quantities from the pattern description.
//! let model = CostModel::new(presets::tiny());
//! let predicted = model.report(&ops::sort::quick_sort_pattern(table.region()));
//!
//! assert!(measured.mem.clock_ns > 0.0);
//! assert!(predicted.mem_ns > 0.0);
//! ```

pub mod backend;
pub mod ctx;
pub mod kernels;
pub mod native;
pub mod ops;
pub mod parallel;
pub mod plan;
pub mod planner;
pub mod query;
pub mod relation;

pub use backend::{MemoryBackend, SimBackend};
pub use ctx::{ExecContext, RunStats};
pub use native::{NativeBackend, NativeCounters};
pub use relation::Relation;
