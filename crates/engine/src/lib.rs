//! # gcm-engine — a column-oriented engine over simulated memory
//!
//! The reproduction's substitute for the paper's Monet/MonetDB platform
//! (§6.1): a small main-memory database engine whose operators
//!
//! * compute **real results** (every operator is tested against host-side
//!   references), while
//! * executing **every data access through the cache simulator**, so their
//!   L1/L2/TLB miss counts and charged memory time are measured exactly,
//!   and
//! * **describe themselves** in the access-pattern language (the paper's
//!   Table 2), so the cost model predicts the same quantities.
//!
//! The validation experiments (Figure 7) run each operator and compare
//! simulator-measured counters with model predictions.
//!
//! ```
//! use gcm_engine::{ops, ExecContext};
//! use gcm_core::CostModel;
//! use gcm_hardware::presets;
//! use gcm_workload::Workload;
//!
//! let mut ctx = ExecContext::new(presets::tiny());
//! let keys = Workload::new(1).shuffled_keys(1024);
//! let table = ctx.relation_from_keys("U", &keys, 8);
//!
//! // Run the real quick-sort, measuring its memory behaviour...
//! let (_, measured) = ctx.measure(|c| ops::sort::quick_sort(c, &table));
//!
//! // ...and predict the same quantities from the pattern description.
//! let model = CostModel::new(presets::tiny());
//! let predicted = model.report(&ops::sort::quick_sort_pattern(table.region()));
//!
//! assert!(measured.mem.clock_ns > 0.0);
//! assert!(predicted.mem_ns > 0.0);
//! ```

pub mod ctx;
pub mod ops;
pub mod parallel;
pub mod plan;
pub mod planner;
pub mod query;
pub mod relation;

pub use ctx::{ExecContext, RunStats};
pub use relation::Relation;
