//! Whole-query costing (paper §6: "Extension to further operations and
//! whole queries, however, is straight forward, as it just means
//! applying the same techniques to combine access patterns and derive
//! their cost functions").
//!
//! A [`Pipeline`] chains operators; executing it yields both the real
//! result (every stage runs over the simulator) and the end-to-end
//! compound pattern `stage₁ ⊕ stage₂ ⊕ …` with the *actual* intermediate
//! cardinalities (the paper assumes a perfect logical-cost oracle, §1 —
//! execution provides one).

use crate::ctx::ExecContext;
use crate::ops;
use crate::relation::Relation;
use gcm_core::{Pattern, Region};

/// One pipeline stage.
#[derive(Debug, Clone)]
pub enum Stage {
    /// Keep tuples with `key < threshold`.
    SelectLt(u64),
    /// Sort in place by key.
    Sort,
    /// Hash-join against a second relation (the build side).
    HashJoin(Relation),
    /// Merge-join against a second (sorted) relation.
    MergeJoin(Relation),
    /// Hash partition `m` ways.
    Partition(u64),
    /// Group by key, counting.
    GroupCount,
    /// Eliminate duplicates via sort.
    Dedup,
}

/// A left-deep operator chain over one driving input.
#[derive(Debug, Default)]
pub struct Pipeline {
    stages: Vec<Stage>,
}

/// Result of running a pipeline: the final relation plus the compound
/// access pattern describing everything that was executed.
#[derive(Debug)]
pub struct QueryRun {
    /// The final output.
    pub output: Relation,
    /// `stage₁ ⊕ stage₂ ⊕ …` with actual intermediate cardinalities.
    pub pattern: Pattern,
}

impl Pipeline {
    /// An empty pipeline (identity).
    pub fn new() -> Pipeline {
        Pipeline::default()
    }

    /// Append a stage.
    pub fn stage(mut self, s: Stage) -> Pipeline {
        self.stages.push(s);
        self
    }

    /// Execute over `input`, producing the output relation and the
    /// end-to-end pattern.
    pub fn run(&self, ctx: &mut ExecContext, input: &Relation) -> QueryRun {
        let mut current = input.clone();
        let mut phases: Vec<Pattern> = Vec::new();
        for (i, stage) in self.stages.iter().enumerate() {
            let name = format!("q{i}");
            match stage {
                Stage::SelectLt(threshold) => {
                    let out = ops::scan::select_lt(ctx, &current, *threshold, &name);
                    phases.push(ops::scan::select_pattern(current.region(), out.region()));
                    current = out;
                }
                Stage::Sort => {
                    ops::sort::quick_sort(ctx, &current);
                    phases.push(ops::sort::quick_sort_pattern(current.region()));
                }
                Stage::HashJoin(build_side) => {
                    let out = ops::hash::hash_join(ctx, &current, build_side, &name, 16);
                    let h = Region::new(
                        format!("H{i}"),
                        (2 * build_side.n().max(1)).next_power_of_two(),
                        ops::hash::ENTRY_BYTES,
                    );
                    phases.push(ops::hash::hash_join_pattern(
                        current.region(),
                        build_side.region(),
                        &h,
                        out.region(),
                    ));
                    current = out;
                }
                Stage::MergeJoin(other) => {
                    let out = ops::merge_join::merge_join(ctx, &current, other, &name, 16);
                    phases.push(ops::merge_join::merge_join_pattern(
                        current.region(),
                        other.region(),
                        out.region(),
                    ));
                    current = out;
                }
                Stage::Partition(m) => {
                    let parts = ops::partition::hash_partition(ctx, &current, *m, &name);
                    phases.push(ops::partition::partition_pattern(
                        current.region(),
                        parts.rel.region(),
                        *m,
                    ));
                    current = parts.rel;
                }
                Stage::GroupCount => {
                    let out = ops::aggregate::hash_group_count(ctx, &current, &name);
                    let h = Region::new(
                        format!("H{i}"),
                        (2 * out.n().max(1)).next_power_of_two(),
                        ops::hash::ENTRY_BYTES,
                    );
                    phases.push(ops::aggregate::hash_group_pattern(
                        current.region(),
                        &h,
                        out.region(),
                    ));
                    current = out;
                }
                Stage::Dedup => {
                    let out = ops::aggregate::sort_dedup(ctx, &current, &name);
                    phases.push(ops::aggregate::sort_dedup_pattern(
                        current.region(),
                        out.region(),
                    ));
                    current = out;
                }
            }
        }
        QueryRun {
            output: current,
            pattern: Pattern::seq(phases),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcm_core::CostModel;
    use gcm_hardware::presets;
    use gcm_workload::Workload;

    #[test]
    fn select_join_aggregate_end_to_end() {
        let spec = presets::tiny_full_assoc();
        let mut ctx = ExecContext::new(spec.clone());
        let n = 4096usize;
        let (uk, vk) = Workload::new(42).join_pair(n);
        let u = ctx.relation_from_keys("U", &uk, 8);
        let v = ctx.relation_from_keys("V", &vk, 8);

        let pipeline = Pipeline::new()
            .stage(Stage::SelectLt(2048)) // half qualify
            .stage(Stage::HashJoin(v.clone()))
            .stage(Stage::GroupCount);
        let (run, stats) = ctx.measure(|c| pipeline.run(c, &u));

        // Correctness: 2048 qualifying keys, each joins once, distinct.
        assert_eq!(run.output.n(), 2048);

        // The pattern covers all three operators.
        let s = run.pattern.to_string();
        assert!(s.contains("r_acc"), "{s}");
        assert!(s.matches("⊕").count() >= 3, "{s}");

        // End-to-end model agreement within 2× on L2 misses.
        let model = CostModel::new(spec.clone());
        let report = model.report(&run.pattern);
        let l2 = spec.level_index("L2").unwrap();
        let measured = stats.misses_at(l2) as f64;
        let predicted = report.levels[l2].misses();
        let ratio = predicted / measured.max(1.0);
        assert!(
            (0.4..2.5).contains(&ratio),
            "L2: measured {measured} predicted {predicted}"
        );
    }

    #[test]
    fn sort_then_merge_join_uses_order() {
        let spec = presets::tiny();
        let mut ctx = ExecContext::new(spec.clone());
        let keys = Workload::new(43).shuffled_keys(1024);
        let sorted: Vec<u64> = (0..1024).collect();
        let u = ctx.relation_from_keys("U", &keys, 8);
        let v = ctx.relation_from_keys("V", &sorted, 8);

        let pipeline = Pipeline::new()
            .stage(Stage::Sort)
            .stage(Stage::MergeJoin(v.clone()));
        let (run, _) = ctx.measure(|c| pipeline.run(c, &u));
        assert_eq!(run.output.n(), 1024);
        for i in 1..1024 {
            let a = ctx.mem.host().read_u64(run.output.tuple(i - 1));
            let b = ctx.mem.host().read_u64(run.output.tuple(i));
            assert!(a <= b, "merge output must be ordered");
        }
    }

    #[test]
    fn partition_then_dedup() {
        let spec = presets::tiny();
        let mut ctx = ExecContext::new(spec.clone());
        let keys = Workload::new(44).uniform_keys_bounded(2000, 300);
        let u = ctx.relation_from_keys("U", &keys, 8);
        let pipeline = Pipeline::new()
            .stage(Stage::Partition(8))
            .stage(Stage::Dedup);
        let (run, _) = ctx.measure(|c| pipeline.run(c, &u));
        // ≤ 300 distinct keys survive.
        assert!(run.output.n() <= 300);
        assert!(run.output.n() > 200, "most keys should appear");
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let spec = presets::tiny();
        let mut ctx = ExecContext::new(spec.clone());
        let u = ctx.relation_from_keys("U", &[1, 2, 3], 8);
        let run = Pipeline::new().run(&mut ctx, &u);
        assert_eq!(run.output.n(), 3);
        assert!(matches!(run.pattern, Pattern::Seq(ref v) if v.is_empty()));
    }
}
