//! Whole-query costing (paper §6: "Extension to further operations and
//! whole queries, however, is straight forward, as it just means
//! applying the same techniques to combine access patterns and derive
//! their cost functions").
//!
//! A [`Pipeline`] chains operators; executing it yields both the real
//! result (every stage runs over the simulator) and the end-to-end
//! compound pattern `stage₁ ⊕ stage₂ ⊕ …` with the *actual* intermediate
//! cardinalities (the paper assumes a perfect logical-cost oracle, §1 —
//! execution provides one).
//!
//! `Pipeline` is a convenience front-end: it is a thin builder over the
//! plan-tree IR in [`crate::plan`], lowering each stage onto a
//! [`PhysicalPlan`] node with the algorithm fixed by the stage (use the
//! [`crate::plan::Optimizer`] when the algorithm choice should be
//! cost-based).

use crate::backend::MemoryBackend;
use crate::ctx::ExecContext;
use crate::plan::{self, PhysicalPlan};
use crate::planner::JoinAlgorithm;
use crate::relation::Relation;
use gcm_core::Pattern;

/// One pipeline stage.
#[derive(Debug, Clone)]
pub enum Stage {
    /// Keep tuples with `key < threshold`.
    SelectLt(u64),
    /// Sort in place by key.
    Sort,
    /// Hash-join against a second relation (the build side).
    HashJoin(Relation),
    /// Merge-join against a second (sorted) relation.
    MergeJoin(Relation),
    /// Hash partition `m` ways.
    Partition(u64),
    /// Group by key, counting.
    GroupCount,
    /// Eliminate duplicates via sort.
    Dedup,
}

/// A left-deep operator chain over one driving input.
#[derive(Debug, Default)]
pub struct Pipeline {
    stages: Vec<Stage>,
}

/// Result of running a pipeline: the final relation plus the compound
/// access pattern describing everything that was executed.
#[derive(Debug)]
pub struct QueryRun {
    /// The final output.
    pub output: Relation,
    /// `stage₁ ⊕ stage₂ ⊕ …` with actual intermediate cardinalities.
    pub pattern: Pattern,
}

impl Pipeline {
    /// An empty pipeline (identity).
    pub fn new() -> Pipeline {
        Pipeline::default()
    }

    /// Append a stage.
    pub fn stage(mut self, s: Stage) -> Pipeline {
        self.stages.push(s);
        self
    }

    /// Lower the stage chain onto the plan-tree IR: the driving input
    /// is table 0, each join build side becomes a further catalog
    /// entry, and every stage fixes its node's algorithm.
    fn lower(&self, input: &Relation) -> (PhysicalPlan, Vec<Relation>) {
        let mut tables = vec![input.clone()];
        let mut node = PhysicalPlan::scan(0);
        for stage in &self.stages {
            node = match stage {
                Stage::SelectLt(threshold) => node.select_lt(*threshold),
                Stage::Sort => node.sort(),
                Stage::HashJoin(build_side) => {
                    tables.push(build_side.clone());
                    node.join_with(PhysicalPlan::scan(tables.len() - 1), JoinAlgorithm::Hash)
                }
                Stage::MergeJoin(other) => {
                    tables.push(other.clone());
                    node.join_with(
                        PhysicalPlan::scan(tables.len() - 1),
                        JoinAlgorithm::Merge {
                            sort_u: false,
                            sort_v: false,
                        },
                    )
                }
                Stage::Partition(m) => node.partition(*m),
                Stage::GroupCount => node.group_count(),
                Stage::Dedup => node.dedup(),
            };
        }
        (node, tables)
    }

    /// Execute over `input`, producing the output relation and the
    /// end-to-end pattern.
    pub fn run<B: MemoryBackend>(&self, ctx: &mut ExecContext<B>, input: &Relation) -> QueryRun {
        let (node, tables) = self.lower(input);
        let run = plan::execute(ctx, &node, &tables)
            .expect("pipeline lowering references only its own tables");
        QueryRun {
            output: run.output,
            pattern: run.pattern,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcm_core::CostModel;
    use gcm_hardware::presets;
    use gcm_workload::Workload;

    #[test]
    fn select_join_aggregate_end_to_end() {
        let spec = presets::tiny_full_assoc();
        let mut ctx = ExecContext::new(spec.clone());
        let n = 4096usize;
        let (uk, vk) = Workload::new(42).join_pair(n);
        let u = ctx.relation_from_keys("U", &uk, 8);
        let v = ctx.relation_from_keys("V", &vk, 8);

        let pipeline = Pipeline::new()
            .stage(Stage::SelectLt(2048)) // half qualify
            .stage(Stage::HashJoin(v.clone()))
            .stage(Stage::GroupCount);
        let (run, stats) = ctx.measure(|c| pipeline.run(c, &u));

        // Correctness: 2048 qualifying keys, each joins once, distinct.
        assert_eq!(run.output.n(), 2048);

        // The pattern covers all three operators.
        let s = run.pattern.to_string();
        assert!(s.contains("r_acc"), "{s}");
        assert!(s.matches("⊕").count() >= 3, "{s}");

        // End-to-end model agreement within 2× on L2 misses.
        let model = CostModel::new(spec.clone());
        let report = model.report(&run.pattern);
        let l2 = spec.level_index("L2").unwrap();
        let measured = stats.misses_at(l2) as f64;
        let predicted = report.levels[l2].misses();
        let ratio = predicted / measured.max(1.0);
        assert!(
            (0.4..2.5).contains(&ratio),
            "L2: measured {measured} predicted {predicted}"
        );
    }

    #[test]
    fn sort_then_merge_join_uses_order() {
        let spec = presets::tiny();
        let mut ctx = ExecContext::new(spec.clone());
        let keys = Workload::new(43).shuffled_keys(1024);
        let sorted: Vec<u64> = (0..1024).collect();
        let u = ctx.relation_from_keys("U", &keys, 8);
        let v = ctx.relation_from_keys("V", &sorted, 8);

        let pipeline = Pipeline::new()
            .stage(Stage::Sort)
            .stage(Stage::MergeJoin(v.clone()));
        let (run, _) = ctx.measure(|c| pipeline.run(c, &u));
        assert_eq!(run.output.n(), 1024);
        for i in 1..1024 {
            let a = ctx.mem.host().read_u64(run.output.tuple(i - 1));
            let b = ctx.mem.host().read_u64(run.output.tuple(i));
            assert!(a <= b, "merge output must be ordered");
        }
    }

    #[test]
    fn partition_then_dedup() {
        let spec = presets::tiny();
        let mut ctx = ExecContext::new(spec.clone());
        let keys = Workload::new(44).uniform_keys_bounded(2000, 300);
        let u = ctx.relation_from_keys("U", &keys, 8);
        let pipeline = Pipeline::new()
            .stage(Stage::Partition(8))
            .stage(Stage::Dedup);
        let (run, _) = ctx.measure(|c| pipeline.run(c, &u));
        // ≤ 300 distinct keys survive.
        assert!(run.output.n() <= 300);
        assert!(run.output.n() > 200, "most keys should appear");
    }

    #[test]
    fn pipeline_lowers_to_a_plan_tree() {
        let spec = presets::tiny();
        let mut ctx = ExecContext::new(spec);
        let u = ctx.relation_from_keys("U", &[1, 2, 3], 8);
        let v = ctx.relation_from_keys("V", &[1, 2], 8);
        let pipeline = Pipeline::new()
            .stage(Stage::SelectLt(5))
            .stage(Stage::HashJoin(v))
            .stage(Stage::GroupCount);
        let (node, tables) = pipeline.lower(&u);
        assert_eq!(tables.len(), 2);
        assert_eq!(
            node.to_string(),
            "group_count(join[hash join](select_lt<5>(scan(0)), scan(1)))"
        );
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let spec = presets::tiny();
        let mut ctx = ExecContext::new(spec.clone());
        let u = ctx.relation_from_keys("U", &[1, 2, 3], 8);
        let run = Pipeline::new().run(&mut ctx, &u);
        assert_eq!(run.output.n(), 3);
        assert!(matches!(run.pattern, Pattern::Seq(ref v) if v.is_empty()));
    }
}
