fn main() {
    let r = gcm_calibrate::calibrate_host(16 * 1024 * 1024);
    println!("caches: {:#?}", r.caches);
    println!("sustained_bw: {:?}", r.sustained_bw);
    println!("prefetch_depth: {}", r.prefetch_depth);
    println!("tlb: {:?}", r.tlb);
    for bytes in [64 * 1024u64, 1 << 20, 8 << 20, 32 << 20] {
        println!(
            "sustained({} KiB) = {:.2} B/ns",
            bytes / 1024,
            gcm_calibrate::sustained_bytes_per_ns(bytes)
        );
    }
}
