//! Native calibration: the Calibrator's micro-benchmarks on **real**
//! memory, timed with the wall clock.
//!
//! This is the paper's original methodology (§2.3, `[MBK00b]`): the
//! Calibrator ran on actual hardware and read the actual clock; the
//! simulated pipeline in [`crate::detect`] replays it against
//! `gcm_sim`. This module brings the real-machine half back — pointer
//! chases (a dependent-load cycle, so latency cannot be hidden by
//! out-of-order execution; the same latency-detection idea as the
//! pointer-chasing cache explorers) and sequential sweeps over host
//! buffers — so the *whole* loop closes on the machine the tests run
//! on: calibrate it, instantiate a cost-model-ready
//! [`HardwareSpec`](gcm_hardware::HardwareSpec), predict a plan, execute
//! it natively, compare.
//!
//! Wall-clock numbers on a shared/virtualized CI box are noisy; every
//! probe takes the minimum of several repetitions (interference only
//! ever adds time) and the detection thresholds are relative, so a
//! constant measurement overhead per access cancels out of the level
//! deltas. Consumers still must use generous tolerances — this is real
//! hardware, not the deterministic simulator.

use crate::detect::{CalibrationReport, DetectedCache};
use std::hint::black_box;
use std::time::Instant;

/// Chase stride in bytes: past any plausible cache line (so every step
/// is its own line) while well below page size.
const CHASE_STRIDE: u64 = 256;

/// Cap on timed steps per probe, bounding calibration time.
const MAX_STEPS: u64 = 1 << 18;

/// Repetitions per probe; the minimum is kept.
const REPS: usize = 3;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Steady-state nanoseconds per step of a pointer chase over `bytes` of
/// host memory (nodes every 256 bytes — past any plausible line, below
/// any plausible page — one random cycle by Sattolo's algorithm,
/// warm-up cycle first, minimum of three timed runs). The chase is a chain of dependent loads: each step's address
/// is the previous step's value, so the measured time *is* the access
/// latency of the working set's resident level.
pub fn chase_ns_per_step(bytes: u64, seed: u64) -> f64 {
    let count = (bytes / CHASE_STRIDE).max(2);
    let mut order: Vec<u64> = (0..count).collect();
    let mut rng = seed;
    for i in (1..count as usize).rev() {
        let j = (splitmix(&mut rng) % i as u64) as usize;
        order.swap(i, j);
    }
    let mut buf = vec![0u8; (count * CHASE_STRIDE) as usize];
    for w in 0..count as usize {
        let from = (order[w] * CHASE_STRIDE) as usize;
        let to = order[(w + 1) % count as usize] * CHASE_STRIDE;
        buf[from..from + 8].copy_from_slice(&to.to_le_bytes());
    }
    let steps = (2 * count).min(MAX_STEPS);
    let mut best = f64::INFINITY;
    let mut p = order[0] * CHASE_STRIDE;
    // Warm-up: one full cycle brings the set to steady state.
    for _ in 0..count {
        let i = p as usize;
        p = u64::from_le_bytes(buf[i..i + 8].try_into().expect("node"));
    }
    for _ in 0..REPS {
        let t0 = Instant::now();
        for _ in 0..steps {
            let i = p as usize;
            p = u64::from_le_bytes(buf[i..i + 8].try_into().expect("node"));
        }
        let ns = t0.elapsed().as_secs_f64() * 1e9 / steps as f64;
        best = best.min(ns);
    }
    black_box(p);
    best
}

/// Steady-state nanoseconds per byte of a unit-stride sequential sweep
/// (8-byte reads) over `bytes` of host memory — the bandwidth side of
/// the calibration, from which per-level *sequential* miss latencies
/// are derived.
pub fn sweep_ns_per_byte(bytes: u64) -> f64 {
    let words = (bytes / 8).max(1) as usize;
    let buf = vec![1u64; words];
    let mut best = f64::INFINITY;
    let mut acc = 0u64;
    // Warm-up sweep.
    for &w in &buf {
        acc = acc.wrapping_add(w);
    }
    for _ in 0..REPS {
        let t0 = Instant::now();
        for &w in &buf {
            acc = acc.wrapping_add(w);
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e9 / (words * 8) as f64);
    }
    black_box(acc);
    best
}

/// Calibrate the host machine: chase a size grid up to `max_bytes`
/// (choose ≥ 4× the LLC you expect, like the real tool's command-line
/// argument), detect capacity boundaries from the latency staircase,
/// and derive per-level sequential/random latencies. Line sizes are not
/// timing-detectable without hardware event counters (the paper reads
/// the R10000's, §6.1); the ubiquitous 64-byte line is assumed.
///
/// The returned report plugs into
/// [`CalibrationReport::to_spec`] to instantiate the cost model for
/// this machine — the paper's "adaptation of the model to a specific
/// hardware" step, performed on the hardware itself.
pub fn calibrate_host(max_bytes: u64) -> CalibrationReport {
    let floor = 16 * 1024u64;
    let max_bytes = max_bytes.max(4 * floor);
    // Size grid: powers of two plus 1.5× midpoints.
    let mut sizes = Vec::new();
    let mut s = floor;
    while s <= max_bytes {
        sizes.push(s);
        if s + s / 2 <= max_bytes {
            sizes.push(s + s / 2);
        }
        s *= 2;
    }
    let costs: Vec<(u64, f64)> = sizes
        .iter()
        .enumerate()
        .map(|(i, &size)| (size, chase_ns_per_step(size, 0xC0FFEE + i as u64)))
        .collect();

    // Staircase detection (as in the simulated detector, with thresholds
    // sized for wall-clock noise): a boundary starts where cost grows by
    // more than max(30%, 2 ns); consecutive growth merges into one run.
    let mut boundaries: Vec<(u64, f64)> = Vec::new();
    let mut plateau = costs.first().map(|&(_, c)| c).unwrap_or(0.0);
    let mut i = 1;
    while i < costs.len() {
        let (_, c) = costs[i];
        let (prev_size, prev_c) = costs[i - 1];
        if c - prev_c > (0.3 * prev_c).max(2.0) {
            let mut j = i;
            while j + 1 < costs.len() {
                let (_, a) = costs[j];
                let (_, b) = costs[j + 1];
                if b - a > (0.1 * a).max(1.0) {
                    j += 1;
                } else {
                    break;
                }
            }
            let top = costs[j].1;
            boundaries.push((prev_size, (top - plateau).max(0.1)));
            plateau = top;
            i = j + 1;
        } else {
            i += 1;
        }
    }
    // Fallback: a perfectly flat staircase (tiny grid, or a machine
    // whose caches all exceed max_bytes) still yields one usable level.
    if boundaries.is_empty() {
        let last = costs.last().expect("non-empty grid");
        boundaries.push((last.0 / 4, last.1.max(0.5)));
    }

    let line = 64u64;
    let mut caches = Vec::new();
    let mut inner_per_byte = 0.0;
    for (idx, &(capacity, rand_ns)) in boundaries.iter().enumerate() {
        let footprint = match boundaries.get(idx + 1) {
            Some(&(next, _)) => (4 * capacity).min(next),
            None => (4 * capacity).min(max_bytes),
        };
        let per_byte = sweep_ns_per_byte(footprint);
        let seq_ns = ((per_byte - inner_per_byte) * line as f64).max(0.01);
        inner_per_byte += seq_ns / line as f64;
        caches.push(DetectedCache {
            capacity,
            line,
            seq_miss_ns: seq_ns,
            rand_miss_ns: rand_ns,
        });
    }
    CalibrationReport { caches, tlb: None }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_cache_chase_is_slower() {
        // 16 KB sits in L1/L2 on anything built this century; 64 MB does
        // not. Dependent loads must therefore take measurably longer per
        // step — on any machine, physical or virtual.
        let small = chase_ns_per_step(16 * 1024, 1);
        let large = chase_ns_per_step(64 * 1024 * 1024, 2);
        assert!(
            large > 1.2 * small,
            "latency must grow out of cache: {small:.2} -> {large:.2} ns/step"
        );
    }

    #[test]
    fn sweep_cost_is_positive_and_small() {
        let per_byte = sweep_ns_per_byte(8 * 1024 * 1024);
        assert!(per_byte > 0.0 && per_byte < 100.0, "{per_byte} ns/B");
    }

    #[test]
    fn host_calibration_yields_a_valid_spec() {
        let report = calibrate_host(16 * 1024 * 1024);
        assert!(!report.caches.is_empty());
        // Capacities ascend, all parameters positive.
        for w in report.caches.windows(2) {
            assert!(w[0].capacity < w[1].capacity, "{report:?}");
        }
        for c in &report.caches {
            assert!(c.capacity >= 4096, "{c:?}");
            assert!(c.seq_miss_ns > 0.0 && c.rand_miss_ns > 0.0, "{c:?}");
        }
        let spec = report.to_spec("host", 1000.0).expect("valid spec");
        assert!(!spec.levels().is_empty());
    }
}
