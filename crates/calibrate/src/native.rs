//! Native calibration: the Calibrator's micro-benchmarks on **real**
//! memory, timed with the wall clock.
//!
//! This is the paper's original methodology (§2.3, `[MBK00b]`): the
//! Calibrator ran on actual hardware and read the actual clock; the
//! simulated pipeline in [`crate::detect`] replays it against
//! `gcm_sim`. This module brings the real-machine half back — pointer
//! chases (a dependent-load cycle, so latency cannot be hidden by
//! out-of-order execution; the same latency-detection idea as the
//! pointer-chasing cache explorers) and sequential sweeps over host
//! buffers — so the *whole* loop closes on the machine the tests run
//! on: calibrate it, instantiate a cost-model-ready
//! [`HardwareSpec`](gcm_hardware::HardwareSpec), predict a plan, execute
//! it natively, compare.
//!
//! Wall-clock numbers on a shared/virtualized CI box are noisy; every
//! probe takes the minimum of several repetitions (interference only
//! ever adds time) and the detection thresholds are relative, so a
//! constant measurement overhead per access cancels out of the level
//! deltas. Consumers still must use generous tolerances — this is real
//! hardware, not the deterministic simulator.

use crate::detect::{CalibrationReport, DetectedCache, DetectedTlb};
use gcm_hardware::stride;
use std::hint::black_box;
use std::time::Instant;

/// Chase stride in bytes: past any plausible cache line (so every step
/// is its own line) while well below page size.
const CHASE_STRIDE: u64 = 256;

/// Cap on timed steps per probe, bounding calibration time.
const MAX_STEPS: u64 = 1 << 18;

/// Repetitions per probe; the minimum is kept.
const REPS: usize = 3;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Steady-state nanoseconds per step of a pointer chase over `bytes` of
/// host memory (nodes every 256 bytes — past any plausible line, below
/// any plausible page — one random cycle by Sattolo's algorithm,
/// warm-up cycle first, minimum of three timed runs). The chase is a chain of dependent loads: each step's address
/// is the previous step's value, so the measured time *is* the access
/// latency of the working set's resident level.
pub fn chase_ns_per_step(bytes: u64, seed: u64) -> f64 {
    chase_ns_per_step_at(bytes, CHASE_STRIDE, seed)
}

/// [`chase_ns_per_step`] with an explicit node stride: the TLB probe
/// chases page-stride nodes (one line per page) so every step pays a
/// page-table lookup on top of the line fetch.
fn chase_ns_per_step_at(bytes: u64, node_stride: u64, seed: u64) -> f64 {
    let count = (bytes / node_stride).max(2);
    let mut order: Vec<u64> = (0..count).collect();
    let mut rng = seed;
    for i in (1..count as usize).rev() {
        let j = (splitmix(&mut rng) % i as u64) as usize;
        order.swap(i, j);
    }
    let mut buf = vec![0u8; (count * node_stride) as usize];
    for w in 0..count as usize {
        let from = (order[w] * node_stride) as usize;
        let to = order[(w + 1) % count as usize] * node_stride;
        buf[from..from + 8].copy_from_slice(&to.to_le_bytes());
    }
    let steps = (2 * count).min(MAX_STEPS);
    let mut best = f64::INFINITY;
    let mut p = order[0] * node_stride;
    // Warm-up: one full cycle brings the set to steady state.
    for _ in 0..count {
        let i = p as usize;
        p = u64::from_le_bytes(buf[i..i + 8].try_into().expect("node"));
    }
    for _ in 0..REPS {
        let t0 = Instant::now();
        for _ in 0..steps {
            let i = p as usize;
            p = u64::from_le_bytes(buf[i..i + 8].try_into().expect("node"));
        }
        let ns = t0.elapsed().as_secs_f64() * 1e9 / steps as f64;
        best = best.min(ns);
    }
    black_box(p);
    best
}

/// Steady-state nanoseconds per byte of a unit-stride sequential sweep
/// (8-byte reads) over `bytes` of host memory — the bandwidth side of
/// the calibration, from which per-level *sequential* miss latencies
/// are derived.
pub fn sweep_ns_per_byte(bytes: u64) -> f64 {
    let buf = vec![1u8; bytes.max(8) as usize];
    // Warm-up sweep; `sweep_fold` at stride 8 is the same unit-stride
    // word walk the native backend's line-touch loop uses, so the
    // calibration times exactly the primitive the engine charges for.
    let (warm, steps) = stride::sweep_fold(&buf, 8);
    black_box(warm);
    let swept = (steps * 8).max(1);
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let (acc, _) = stride::sweep_fold(&buf, 8);
        black_box(acc);
        best = best.min(t0.elapsed().as_secs_f64() * 1e9 / swept as f64);
    }
    best
}

/// Number of interleaved sequential streams in the sustained-bandwidth
/// probe. One thread issues all of them, so the measured rate is the
/// single-core sustained bandwidth — the ceiling a vectorized scan can
/// reach, as opposed to the single-stream latency-bound sweep.
const STREAMS: usize = 4;

/// Sustained sequential bandwidth (bytes per nanosecond) over `bytes`
/// of host memory: `STREAMS` independent unit-stride streams
/// interleaved in one thread, so multiple cache-line fills are in
/// flight at once. This is the `T_mem_bw` side of the overlap model —
/// what the memory system delivers when the access pattern exposes
/// enough parallelism to hide individual miss latencies.
pub fn sustained_bytes_per_ns(bytes: u64) -> f64 {
    let chunk = ((bytes / 8) as usize / STREAMS).max(1);
    let buf = vec![1u64; chunk * STREAMS];
    let (a, rest) = buf.split_at(chunk);
    let (b, rest) = rest.split_at(chunk);
    let (c, d) = rest.split_at(chunk);
    let sweep = || {
        let (mut s0, mut s1, mut s2, mut s3) = (0u64, 0u64, 0u64, 0u64);
        for i in 0..chunk {
            s0 = s0.wrapping_add(a[i]);
            s1 = s1.wrapping_add(b[i]);
            s2 = s2.wrapping_add(c[i]);
            s3 = s3.wrapping_add(d[i]);
        }
        s0 ^ s1 ^ s2 ^ s3
    };
    black_box(sweep()); // warm-up
    let mut best_ns = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        black_box(sweep());
        best_ns = best_ns.min(t0.elapsed().as_secs_f64() * 1e9);
    }
    (chunk * STREAMS * 8) as f64 / best_ns.max(1e-9)
}

/// Find the software-prefetch look-ahead that minimizes a random
/// gather over `bytes` of host memory. Depth 0 (no prefetch) competes
/// on equal terms: on hardware where explicit prefetching does not pay
/// (or under a hypervisor that ignores the hints) the probe honestly
/// reports 0 and the engine's kernels fall back to their default.
pub fn calibrate_prefetch_depth(bytes: u64) -> u64 {
    let n = (bytes / 8).max(1024) as usize;
    let buf = vec![1u64; n];
    // One shared random visit order: the work is identical across
    // depths, only the hint placement differs.
    let mut idx: Vec<u32> = (0..n as u32).collect();
    let mut rng = 0xF00D_u64;
    for i in (1..n).rev() {
        let j = (splitmix(&mut rng) % (i as u64 + 1)) as usize;
        idx.swap(i, j);
    }
    let gather = |depth: usize| {
        let mut acc = 0u64;
        for i in 0..n {
            if depth > 0 && i + depth < n {
                let ahead = idx[i + depth] as usize;
                stride::prefetch_read(buf[ahead..].as_ptr().cast());
            }
            acc = acc.wrapping_add(buf[idx[i] as usize]);
        }
        acc
    };
    let mut best = (f64::INFINITY, 0u64);
    for &depth in &[0usize, 1, 2, 4, 8, 16, 32] {
        black_box(gather(depth)); // warm-up
        let mut best_ns = f64::INFINITY;
        for _ in 0..REPS {
            let t0 = Instant::now();
            black_box(gather(depth));
            best_ns = best_ns.min(t0.elapsed().as_secs_f64() * 1e9);
        }
        if best_ns < best.0 {
            best = (best_ns, depth as u64);
        }
    }
    best.1
}

/// Detect the host's data TLB: pointer chases with one node per 4 KiB
/// page over a doubling page-count grid. While the pages fit the TLB
/// each step costs one (cached) line fetch; past the entry count every
/// step adds a page-table walk — the first jump in the staircase gives
/// the entry count, its height the miss latency. Returns `None` when
/// no clear staircase appears (common under virtualization, where EPT
/// walks blur the boundary) — calibrated specs then simply omit the
/// TLB level, exactly like the pre-probe reports.
pub fn detect_host_tlb(max_pages: u64) -> Option<DetectedTlb> {
    const PAGE: u64 = 4096;
    let mut counts = Vec::new();
    let mut k = 16u64;
    while k <= max_pages.max(32) {
        counts.push(k);
        k *= 2;
    }
    let costs: Vec<(u64, f64)> = counts
        .iter()
        .map(|&k| (k, chase_ns_per_step_at(k * PAGE, PAGE, 0x7AB5 + k)))
        .collect();
    for w in costs.windows(2) {
        let ((prev_k, prev_c), (_, c)) = (w[0], w[1]);
        if c - prev_c > (0.3 * prev_c).max(2.0) {
            return Some(DetectedTlb {
                entries: prev_k,
                page: PAGE,
                miss_ns: (c - prev_c).max(0.1),
            });
        }
    }
    None
}

/// Calibrate the host machine: chase a size grid up to `max_bytes`
/// (choose ≥ 4× the LLC you expect, like the real tool's command-line
/// argument), detect capacity boundaries from the latency staircase,
/// and derive per-level sequential/random latencies. Line sizes are not
/// timing-detectable without hardware event counters (the paper reads
/// the R10000's, §6.1); the ubiquitous 64-byte line is assumed.
///
/// Beyond the classic capacity/latency staircase, the report also
/// carries the kernel-layer extensions: per-level sustained
/// bandwidths (interleaved-stream sweep), the detected host TLB
/// (page-stride chase), and the winning software-prefetch depth —
/// everything [`CalibrationReport::overlap_params`] and the engine's
/// prefetched kernels need.
///
/// The returned report plugs into
/// [`CalibrationReport::to_spec`] to instantiate the cost model for
/// this machine — the paper's "adaptation of the model to a specific
/// hardware" step, performed on the hardware itself.
pub fn calibrate_host(max_bytes: u64) -> CalibrationReport {
    let floor = 16 * 1024u64;
    let max_bytes = max_bytes.max(4 * floor);
    // Size grid: powers of two plus 1.5× midpoints.
    let mut sizes = Vec::new();
    let mut s = floor;
    while s <= max_bytes {
        sizes.push(s);
        if s + s / 2 <= max_bytes {
            sizes.push(s + s / 2);
        }
        s *= 2;
    }
    let costs: Vec<(u64, f64)> = sizes
        .iter()
        .enumerate()
        .map(|(i, &size)| (size, chase_ns_per_step(size, 0xC0FFEE + i as u64)))
        .collect();

    // Staircase detection (as in the simulated detector, with thresholds
    // sized for wall-clock noise): a boundary starts where cost grows by
    // more than max(30%, 2 ns); consecutive growth merges into one run.
    let mut boundaries: Vec<(u64, f64)> = Vec::new();
    let mut plateau = costs.first().map(|&(_, c)| c).unwrap_or(0.0);
    let mut i = 1;
    while i < costs.len() {
        let (_, c) = costs[i];
        let (prev_size, prev_c) = costs[i - 1];
        if c - prev_c > (0.3 * prev_c).max(2.0) {
            let mut j = i;
            while j + 1 < costs.len() {
                let (_, a) = costs[j];
                let (_, b) = costs[j + 1];
                if b - a > (0.1 * a).max(1.0) {
                    j += 1;
                } else {
                    break;
                }
            }
            let top = costs[j].1;
            boundaries.push((prev_size, (top - plateau).max(0.1)));
            plateau = top;
            i = j + 1;
        } else {
            i += 1;
        }
    }
    // Fallback: a perfectly flat staircase (tiny grid, or a machine
    // whose caches all exceed max_bytes) still yields one usable level.
    if boundaries.is_empty() {
        let last = costs.last().expect("non-empty grid");
        boundaries.push((last.0 / 4, last.1.max(0.5)));
    }

    let line = 64u64;
    let mut caches = Vec::new();
    let mut sustained_bw = Vec::new();
    let mut inner_per_byte = 0.0;
    let mut inner_sus_per_byte = 0.0;
    for (idx, &(capacity, rand_ns)) in boundaries.iter().enumerate() {
        let footprint = match boundaries.get(idx + 1) {
            Some(&(next, _)) => (4 * capacity).min(next),
            None => (4 * capacity).min(max_bytes),
        };
        let per_byte = sweep_ns_per_byte(footprint);
        let seq_ns = ((per_byte - inner_per_byte) * line as f64).max(0.01);
        inner_per_byte += seq_ns / line as f64;
        // Per-level *sustained* sequential cost, derived by the same
        // inside-out subtraction as `seq_ns` but from the interleaved
        // multi-stream sweep: line/bw is what a bandwidth-bound scan
        // pays per line miss at this level.
        let sus_per_byte = 1.0 / sustained_bytes_per_ns(footprint).max(1e-9);
        let sus_seq_ns = ((sus_per_byte - inner_sus_per_byte) * line as f64).max(0.01);
        inner_sus_per_byte += sus_seq_ns / line as f64;
        sustained_bw.push(line as f64 / sus_seq_ns);
        caches.push(DetectedCache {
            capacity,
            line,
            seq_miss_ns: seq_ns,
            rand_miss_ns: rand_ns,
        });
    }
    let tlb = detect_host_tlb((max_bytes / 4096).min(4096));
    let prefetch_depth = calibrate_prefetch_depth((8 * 1024 * 1024).min(max_bytes));
    CalibrationReport {
        caches,
        tlb,
        sustained_bw,
        prefetch_depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_cache_chase_is_slower() {
        // 16 KB sits in L1/L2 on anything built this century; 64 MB does
        // not. Dependent loads must therefore take measurably longer per
        // step — on any machine, physical or virtual.
        let small = chase_ns_per_step(16 * 1024, 1);
        let large = chase_ns_per_step(64 * 1024 * 1024, 2);
        assert!(
            large > 1.2 * small,
            "latency must grow out of cache: {small:.2} -> {large:.2} ns/step"
        );
    }

    #[test]
    fn sweep_cost_is_positive_and_small() {
        let per_byte = sweep_ns_per_byte(8 * 1024 * 1024);
        assert!(per_byte > 0.0 && per_byte < 100.0, "{per_byte} ns/B");
    }

    #[test]
    fn host_calibration_yields_a_valid_spec() {
        let report = calibrate_host(16 * 1024 * 1024);
        assert!(!report.caches.is_empty());
        // Capacities ascend, all parameters positive.
        for w in report.caches.windows(2) {
            assert!(w[0].capacity < w[1].capacity, "{report:?}");
        }
        for c in &report.caches {
            assert!(c.capacity >= 4096, "{c:?}");
            assert!(c.seq_miss_ns > 0.0 && c.rand_miss_ns > 0.0, "{c:?}");
        }
        // Kernel-layer extensions: one sustained bandwidth per cache
        // level, each finite and positive; a bounded prefetch depth.
        assert_eq!(report.sustained_bw.len(), report.caches.len());
        for &bw in &report.sustained_bw {
            assert!(bw.is_finite() && bw > 0.0, "{report:?}");
        }
        assert!(report.prefetch_depth <= 64, "{report:?}");
        if let Some(t) = &report.tlb {
            assert_eq!(t.page, 4096);
            assert!(t.entries >= 16 && t.miss_ns > 0.0, "{t:?}");
        }
        let spec = report.to_spec("host", 1000.0).expect("valid spec");
        assert!(!spec.levels().is_empty());
    }

    #[test]
    fn sustained_bandwidth_is_positive_and_plausible() {
        let bw = sustained_bytes_per_ns(4 * 1024 * 1024);
        // Anything from an ancient VM (0.01 B/ns) to a wide modern core
        // (hundreds of B/ns) passes; the point is the probe works.
        assert!(bw > 0.001 && bw < 10_000.0, "{bw} bytes/ns");
    }

    #[test]
    fn prefetch_depth_probe_stays_in_range() {
        let d = calibrate_prefetch_depth(2 * 1024 * 1024);
        assert!(d <= 32, "{d}");
    }

    #[test]
    fn tlb_detection_is_sane_when_present() {
        if let Some(t) = detect_host_tlb(2048) {
            assert_eq!(t.page, 4096);
            assert!(t.entries >= 16);
            assert!(t.entries.is_power_of_two());
            assert!(t.miss_ns > 0.0);
        }
    }
}
