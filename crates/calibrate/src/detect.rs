//! Detection algorithms: turning raw chase/sweep timings into hardware
//! parameters (the analysis half of the Calibrator, `[MBK00b]`).
//!
//! All scans are *blind*: they see only measured per-access costs, never
//! the simulated machine's configuration. The pipeline:
//!
//! 1. **TLB**: pointer chases with page-candidate strides. The first
//!    cost jump in the node-count scan happens at `entries·(page/stride)`
//!    for strides below the page size and stabilises at `entries` once
//!    the stride reaches the page size — that stable point gives both
//!    parameters; the miss latency is extrapolated from the miss-ratio
//!    ramp.
//! 2. **Cache capacities + random latencies**: pointer chases with a
//!    line-exceeding stride over a size grid. A chase cycle larger than a
//!    level's capacity misses on *every* step (cyclic-LRU pathology), so
//!    per-step cost is a staircase; the predicted TLB contribution is
//!    subtracted first so the TLB ramp cannot masquerade as a cache
//!    level.
//! 3. **Line sizes + sequential latencies**: repeated sequential sweeps
//!    of a footprint that only the inner `i` levels keep missing, with
//!    growing stride: per-access cost grows with stride until the stride
//!    reaches the line size (each access then misses once) — the knee
//!    gives `B_i`, the plateau gives the cumulative sequential latency.

use crate::chase::{alloc_sweep, sweep_cost, Chase};
use gcm_hardware::HardwareSpec;
use gcm_sim::MemorySystem;

/// One detected cache level.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectedCache {
    /// Detected capacity in bytes (grid resolution: the largest probed
    /// size that still fit).
    pub capacity: u64,
    /// Detected line size in bytes.
    pub line: u64,
    /// Sequential miss latency in ns.
    pub seq_miss_ns: f64,
    /// Random miss latency in ns.
    pub rand_miss_ns: f64,
}

/// Detected TLB parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectedTlb {
    /// Number of entries.
    pub entries: u64,
    /// Page size in bytes.
    pub page: u64,
    /// Miss latency in ns.
    pub miss_ns: f64,
}

/// Everything the Calibrator recovered about a machine.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationReport {
    /// Data-cache levels, inside-out.
    pub caches: Vec<DetectedCache>,
    /// The TLB, if one was detected.
    pub tlb: Option<DetectedTlb>,
    /// Sustained sequential bandwidth in bytes/ns per cache level
    /// (aligned with `caches`), measured with interleaved independent
    /// streams — the ceiling the overlap model prices sequential
    /// misses at. Empty when not probed (the simulated pipeline
    /// charges fixed latencies, so there is nothing to sustain).
    pub sustained_bw: Vec<f64>,
    /// Best software-prefetch look-ahead (in items) found by the
    /// gather probe; 0 when not probed or when prefetching did not
    /// help.
    pub prefetch_depth: u64,
}

impl CalibrationReport {
    /// The report as one JSON object (via [`gcm_obs::json`]) — the
    /// machine-readable form the `host_report` example emits, so a
    /// calibration run can be committed or diffed against a later one.
    pub fn to_json(&self) -> String {
        let mut caches = gcm_obs::json::Arr::new();
        for (i, c) in self.caches.iter().enumerate() {
            let mut o = gcm_obs::json::Obj::new();
            o.u64("level", i as u64 + 1)
                .u64("capacity_bytes", c.capacity)
                .u64("line_bytes", c.line)
                .num("seq_miss_ns", c.seq_miss_ns)
                .num("rand_miss_ns", c.rand_miss_ns);
            if let Some(bw) = self.sustained_bw.get(i) {
                o.num("sustained_bytes_per_ns", *bw);
            }
            caches.raw(&o.finish());
        }
        let mut top = gcm_obs::json::Obj::new();
        top.str("report", "gcm-calibration/v1")
            .raw("caches", &caches.finish())
            .u64("prefetch_depth", self.prefetch_depth);
        match &self.tlb {
            Some(t) => {
                let mut o = gcm_obs::json::Obj::new();
                o.u64("entries", t.entries)
                    .u64("page_bytes", t.page)
                    .num("miss_ns", t.miss_ns);
                top.raw("tlb", &o.finish());
            }
            None => {
                top.raw("tlb", "null");
            }
        }
        top.finish()
    }
}

/// The Calibrator: measures a (simulated) machine blind and recovers its
/// parameters.
#[derive(Debug)]
pub struct Calibrator {
    spec: HardwareSpec,
    /// Upper bound of the size scan; must exceed the outermost cache.
    max_bytes: u64,
    seed: u64,
}

impl Calibrator {
    /// A calibrator probing sizes up to `max_bytes` (choose ≥ 4× the
    /// outermost capacity you expect, exactly like the real tool's
    /// command-line argument).
    pub fn new(spec: HardwareSpec, max_bytes: u64) -> Calibrator {
        Calibrator {
            spec,
            max_bytes,
            seed: 0xC0FFEE,
        }
    }

    fn fresh(&self) -> MemorySystem {
        MemorySystem::new(self.spec.clone())
    }

    /// Run the full pipeline.
    pub fn run(&mut self) -> CalibrationReport {
        let tlb = self.detect_tlb();
        let caches = self.detect_caches(&tlb);
        CalibrationReport {
            caches,
            tlb,
            sustained_bw: Vec::new(),
            prefetch_depth: 0,
        }
    }

    /// TLB scan (stage 1).
    pub fn detect_tlb(&mut self) -> Option<DetectedTlb> {
        // First significant jump position for each page-size candidate.
        let mut candidates: Vec<(u64, u64)> = Vec::new(); // (stride, k*)
        let mut stride = 256u64;
        while stride <= 64 * 1024 {
            if let Some(k) = self.first_jump_k(stride) {
                candidates.push((stride, k));
            }
            stride *= 2;
        }
        // Find the first stride whose jump position matches the next
        // stride's (stable region = stride has reached the page size).
        // The jump lands on the first power-of-two count *exceeding* the
        // entry count, so entries = k*/2.
        for w in candidates.windows(2) {
            let ((p1, k1), (p2, k2)) = (w[0], w[1]);
            if k1 == k2 && p2 == p1 * 2 {
                let entries = k1 / 2;
                let page = p1;
                let miss_ns = self.tlb_latency(page, entries);
                return Some(DetectedTlb {
                    entries,
                    page,
                    miss_ns,
                });
            }
        }
        None
    }

    /// Scan node counts at the given stride; return the first count whose
    /// steady cost jumps by more than 40 ns over the previous count.
    fn first_jump_k(&mut self, stride: u64) -> Option<u64> {
        let mut prev_cost = None;
        let mut k = 4u64;
        while k * stride <= self.max_bytes {
            let mut mem = self.fresh();
            let chase = Chase::build(&mut mem, k, stride, self.seed);
            self.seed += 1;
            let cost = chase.steady_cost(&mut mem);
            if let Some(p) = prev_cost {
                if cost - p > 40.0 {
                    return Some(k);
                }
            }
            prev_cost = Some(cost);
            k *= 2;
        }
        None
    }

    /// TLB miss latency: a cyclic chase over `2·entries` single-node
    /// pages misses on *every* step (cyclic-LRU pathology), while one
    /// over `entries/2` pages never misses, so the difference is exactly
    /// the miss latency — provided no data-cache boundary lies between
    /// the two footprints (true for the machines probed here; the real
    /// Calibrator carries the same caveat).
    fn tlb_latency(&mut self, page: u64, entries: u64) -> f64 {
        let lo = (entries / 2).max(2);
        let hi = entries * 2;
        let mut mem = self.fresh();
        let c_lo = Chase::build(&mut mem, lo, page, self.seed).steady_cost(&mut mem);
        self.seed += 1;
        let mut mem = self.fresh();
        let c_hi = Chase::build(&mut mem, hi, page, self.seed).steady_cost(&mut mem);
        self.seed += 1;
        (c_hi - c_lo).max(0.0)
    }

    /// Cache capacity/latency scan (stage 2), with the TLB contribution
    /// subtracted, followed by the line/sequential-latency scans
    /// (stage 3).
    pub fn detect_caches(&mut self, tlb: &Option<DetectedTlb>) -> Vec<DetectedCache> {
        // The chase stride must exceed every line size; detect the largest
        // line first from a full-footprint stride scan.
        let max_line = self.detect_max_line(tlb);
        let stride = max_line;

        // Size grid: powers of two and 1.5× midpoints.
        let mut sizes = Vec::new();
        let mut s = (4 * stride).max(1024);
        while s <= self.max_bytes {
            sizes.push(s);
            sizes.push(s + s / 2);
            s *= 2;
        }
        sizes.retain(|&x| x <= self.max_bytes);

        // Measure corrected steady chase cost per size.
        let corrected: Vec<(u64, f64)> = sizes
            .iter()
            .map(|&size| {
                let count = size / stride;
                let mut mem = self.fresh();
                let chase = Chase::build(&mut mem, count, stride, self.seed);
                self.seed += 1;
                let raw = chase.steady_cost(&mut mem);
                // Subtract the TLB's probabilistic ramp (many chase nodes
                // share a page at this stride, so the page-visit order is
                // effectively random sampling, miss ratio ≈ 1 − reach/s;
                // the 1.15 factor compensates LRU's below-random
                // retention, capped at a full miss per access).
                let tlb_part = tlb
                    .as_ref()
                    .map(|t| {
                        let reach = (t.entries * t.page) as f64;
                        ((1.0 - (reach / size as f64).min(1.0)) * t.miss_ns * 1.15).min(t.miss_ns)
                    })
                    .unwrap_or(0.0);
                (size, (raw - tlb_part).max(0.0))
            })
            .collect();

        // Staircase detection: a boundary starts where cost grows by more
        // than max(3 ns, 30%); consecutive growth merges into one run.
        let mut boundaries: Vec<(u64, f64)> = Vec::new(); // (capacity, plateau cost before)
        let mut plateau = corrected.first().map(|&(_, c)| c).unwrap_or(0.0);
        let mut i = 1;
        while i < corrected.len() {
            let (_, c) = corrected[i];
            let (prev_size, prev_c) = corrected[i - 1];
            if c - prev_c > (0.3 * prev_c).max(5.0) {
                // Run of growth: advance to its end.
                let mut j = i;
                while j + 1 < corrected.len() {
                    let (_, a) = corrected[j];
                    let (_, b) = corrected[j + 1];
                    if b - a > (0.1 * a).max(3.0) {
                        j += 1;
                    } else {
                        break;
                    }
                }
                let top = corrected[j].1;
                boundaries.push((prev_size, top - plateau));
                plateau = top;
                i = j + 1;
            } else {
                i += 1;
            }
        }

        // Assemble levels: capacity + random latency per boundary from the
        // chase staircase; line sizes from event counters (stage 3a); and
        // sequential latencies from unit-stride sweeps with inner-level
        // subtraction (stage 3b).
        let lines = self.detect_lines(boundaries.len());
        let mut levels = Vec::new();
        let mut inner_per_byte = 0.0; // Σ_{j<i} l_s,j / B_j
        for (idx, &(capacity, rand_ns)) in boundaries.iter().enumerate() {
            let line = lines.get(idx).copied().unwrap_or(stride);
            let footprint = match boundaries.get(idx + 1) {
                Some(&(next, _)) => (4 * capacity).min(next),
                None => (4 * capacity).min(self.max_bytes),
            };
            let per_byte = self.seq_cost_per_byte(footprint, tlb);
            let seq_ns = ((per_byte - inner_per_byte) * line as f64).max(0.0);
            inner_per_byte += seq_ns / line as f64;
            levels.push(DetectedCache {
                capacity,
                line,
                seq_miss_ns: seq_ns,
                rand_miss_ns: rand_ns,
            });
        }
        levels
    }

    /// Stride scan over the full footprint: the largest stride that still
    /// grows per-access cost substantially bounds the largest line size.
    /// The sequential page-walk cost (one TLB miss per page) is removed
    /// first, or its ramp would masquerade as an ever-growing line.
    fn detect_max_line(&mut self, tlb: &Option<DetectedTlb>) -> u64 {
        let footprint = self.max_bytes;
        let mut best = 8u64;
        let mut prev_cost = None;
        let mut stride = 8u64;
        while stride <= 4096 {
            let count = footprint / stride;
            let mut mem = self.fresh();
            let base = alloc_sweep(&mut mem, count, stride);
            let raw = sweep_cost(&mut mem, base, count, stride, 2);
            let cost = tlb
                .as_ref()
                .filter(|t| footprint > t.entries * t.page)
                .map(|t| raw - (stride as f64 / t.page as f64).min(1.0) * t.miss_ns)
                .unwrap_or(raw)
                .max(0.0);
            if let Some(p) = prev_cost {
                if p > 0.0 && cost > p * 1.15 {
                    best = stride;
                }
            }
            prev_cost = Some(cost);
            stride *= 2;
        }
        best
    }

    /// Line sizes via per-level miss counters (stage 3a).
    ///
    /// A strided sweep over a footprint exceeding every capacity misses
    /// `stride/B_i` of its accesses at level `i`; the smallest stride
    /// with one miss per access is the line size. Pure time-based knee
    /// detection is confounded by the sequential→random latency flip at
    /// the line boundary; the paper's own validation reads the R10000's
    /// hardware event counters (§6.1), so the Calibrator may too.
    fn detect_lines(&mut self, levels: usize) -> Vec<u64> {
        let footprint = self.max_bytes;
        let mut result = vec![0u64; levels];
        let mut stride = 8u64;
        while stride <= 16384 && result.contains(&0) {
            let count = footprint / stride;
            if count < 16 {
                break;
            }
            let mut mem = self.fresh();
            let base = alloc_sweep(&mut mem, count, stride);
            // Warm sweep, then measure one steady sweep.
            for i in 0..count {
                mem.read(base + i * stride, 8);
            }
            let before = mem.snapshot();
            for i in 0..count {
                mem.read(base + i * stride, 8);
            }
            let delta = mem.delta_since(&before);
            // Walk the data-cache levels inside-out (counter order mirrors
            // the hierarchy; TLB levels are skipped by their kind).
            let mut cache_idx = 0usize;
            for (li, lvl) in mem.spec().levels().iter().enumerate() {
                if lvl.kind != gcm_hardware::LevelKind::Cache {
                    continue;
                }
                if cache_idx < levels && result[cache_idx] == 0 {
                    let misses = delta.levels[li].seq_misses + delta.levels[li].rand_misses;
                    if misses as f64 >= 0.99 * count as f64 {
                        result[cache_idx] = stride;
                    }
                }
                cache_idx += 1;
            }
            stride *= 2;
        }
        result
    }

    /// Steady unit-stride sweep cost per byte over `footprint` (stage 3b),
    /// with the sequential TLB page walk removed. All levels whose
    /// capacity is below the footprint miss on every line, so the cost
    /// per byte is `Σ_{C_j < footprint} l_s,j / B_j`.
    fn seq_cost_per_byte(&mut self, footprint: u64, tlb: &Option<DetectedTlb>) -> f64 {
        let count = footprint / 8;
        let mut mem = self.fresh();
        let base = alloc_sweep(&mut mem, count, 8);
        let per_access = sweep_cost(&mut mem, base, count, 8, 3);
        let per_byte = per_access / 8.0;
        let walk = tlb
            .as_ref()
            .filter(|t| footprint > t.entries * t.page)
            .map(|t| t.miss_ns / t.page as f64)
            .unwrap_or(0.0);
        (per_byte - walk).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcm_hardware::presets;

    #[test]
    fn report_serializes_to_json() {
        let r = CalibrationReport {
            caches: vec![DetectedCache {
                capacity: 32 * 1024,
                line: 64,
                seq_miss_ns: 4.0,
                rand_miss_ns: 12.5,
            }],
            tlb: Some(DetectedTlb {
                entries: 64,
                page: 4096,
                miss_ns: 20.0,
            }),
            sustained_bw: vec![16.0],
            prefetch_depth: 8,
        };
        let json = r.to_json();
        assert!(json.contains("\"report\":\"gcm-calibration/v1\""), "{json}");
        assert!(json.contains("\"capacity_bytes\":32768"), "{json}");
        assert!(json.contains("\"rand_miss_ns\":12.500"), "{json}");
        assert!(json.contains("\"page_bytes\":4096"), "{json}");
        let no_tlb = CalibrationReport { tlb: None, ..r };
        assert!(no_tlb.to_json().contains("\"tlb\":null"));
    }

    #[test]
    fn recovers_tiny_machine() {
        // tiny: L1 2 KB/32 B (5/15 ns), L2 16 KB/64 B (50/150 ns),
        // TLB 8 × 1 KB (100 ns).
        let mut cal = Calibrator::new(presets::tiny(), 128 * 1024);
        let report = cal.run();

        let tlb = report.tlb.as_ref().expect("TLB must be found");
        assert_eq!(tlb.page, 1024, "page size");
        assert_eq!(tlb.entries, 8, "entries");
        assert!(
            (tlb.miss_ns - 100.0).abs() < 35.0,
            "TLB latency {}",
            tlb.miss_ns
        );

        assert_eq!(
            report.caches.len(),
            2,
            "two cache levels: {:?}",
            report.caches
        );
        let l1 = &report.caches[0];
        assert_eq!(l1.capacity, 2048);
        assert_eq!(l1.line, 32);
        assert!(
            (l1.rand_miss_ns - 15.0).abs() < 6.0,
            "L1 rand {}",
            l1.rand_miss_ns
        );
        assert!(
            (l1.seq_miss_ns - 5.0).abs() < 3.0,
            "L1 seq {}",
            l1.seq_miss_ns
        );
        let l2 = &report.caches[1];
        assert_eq!(l2.capacity, 16 * 1024);
        assert_eq!(l2.line, 64);
        assert!(
            (l2.rand_miss_ns - 150.0).abs() < 40.0,
            "L2 rand {}",
            l2.rand_miss_ns
        );
        assert!(
            (l2.seq_miss_ns - 50.0).abs() < 20.0,
            "L2 seq {}",
            l2.seq_miss_ns
        );
    }

    #[test]
    fn blind_to_the_spec() {
        // Doubling the L1 capacity must move the detected boundary.
        use gcm_hardware::{Associativity, HardwareBuilder};
        let hw = HardwareBuilder::new("alt", 100.0)
            .cache("L1", 4096, 32, Associativity::Ways(2), 5.0, 15.0)
            .cache("L2", 32 * 1024, 64, Associativity::Ways(4), 50.0, 150.0)
            .tlb("TLB", 8, 1024, 100.0)
            .build()
            .unwrap();
        let mut cal = Calibrator::new(hw, 256 * 1024);
        let report = cal.run();
        assert_eq!(report.caches.len(), 2);
        assert_eq!(report.caches[0].capacity, 4096);
        assert_eq!(report.caches[1].capacity, 32 * 1024);
    }
}

#[cfg(test)]
mod origin_tests {
    use super::*;
    use gcm_hardware::presets;

    /// Full Table-3 recovery on the paper's machine. Heavier than the
    /// tiny-machine test (≈ seconds in debug builds) but the headline
    /// check of the calibration methodology.
    #[test]
    fn recovers_origin2000() {
        let mut cal = Calibrator::new(presets::origin2000(), 16 * 1024 * 1024);
        let report = cal.run();

        let tlb = report.tlb.as_ref().expect("TLB must be found");
        assert_eq!(tlb.entries, 64);
        assert_eq!(tlb.page, 16 * 1024);
        assert!(
            (tlb.miss_ns - 228.0).abs() < 30.0,
            "TLB latency {}",
            tlb.miss_ns
        );

        assert_eq!(report.caches.len(), 2, "{:?}", report.caches);
        let l1 = &report.caches[0];
        assert_eq!(l1.capacity, 32 * 1024);
        assert_eq!(l1.line, 32);
        assert!((l1.seq_miss_ns - 8.0).abs() < 2.0);
        assert!((l1.rand_miss_ns - 24.0).abs() < 6.0);
        let l2 = &report.caches[1];
        assert_eq!(l2.capacity, 4 * 1024 * 1024);
        assert_eq!(l2.line, 128);
        assert!((l2.seq_miss_ns - 188.0).abs() < 25.0);
        assert!((l2.rand_miss_ns - 400.0).abs() < 60.0);
    }
}
