//! Measurement primitives: pointer chases and strided sweeps over
//! simulated memory.
//!
//! These are the micro-benchmarks of the paper's Calibrator tool
//! (`[MBK00b]`, §2.3): they know nothing about the machine they probe —
//! they only time accesses (here: charged simulator latency) and leave
//! interpretation to the detection layer.

use gcm_sim::{Addr, MemorySystem};

/// Deterministic PRNG for building chase cycles (self-contained so the
/// calibrator does not depend on the workload crate).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A pointer-chase cycle: `count` nodes spaced `stride` bytes apart,
/// linked in a random single cycle (Sattolo's algorithm), each node
/// holding the simulated address of its successor.
pub struct Chase {
    start: Addr,
    count: u64,
}

impl Chase {
    /// Build a chase over a fresh allocation (host-side setup: building
    /// the cycle charges nothing).
    pub fn build(mem: &mut MemorySystem, count: u64, stride: u64, seed: u64) -> Chase {
        assert!(count >= 2, "a cycle needs at least two nodes");
        assert!(stride >= 8, "nodes hold an 8-byte pointer");
        let base = mem.alloc(count * stride, stride.clamp(8, 4096));
        // Sattolo: a uniformly random single cycle over the nodes.
        let mut order: Vec<u64> = (0..count).collect();
        let mut rng = seed;
        for i in (1..count as usize).rev() {
            let j = (splitmix(&mut rng) % i as u64) as usize;
            order.swap(i, j);
        }
        for w in 0..count as usize {
            let from = order[w];
            let to = order[(w + 1) % count as usize];
            mem.host_mut()
                .write_u64(base + from * stride, base + to * stride);
        }
        Chase {
            start: base + order[0] * stride,
            count,
        }
    }

    /// Number of nodes in the cycle.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Run `steps` chase steps (simulated), returning charged nanoseconds
    /// per step.
    pub fn run(&self, mem: &mut MemorySystem, steps: u64) -> f64 {
        let before = mem.clock_ns();
        let mut p = self.start;
        for _ in 0..steps {
            p = mem.read_u64(p);
        }
        (mem.clock_ns() - before) / steps as f64
    }

    /// Warm the caches with one full cycle, then measure one full cycle:
    /// the Calibrator's steady-state per-access latency.
    pub fn steady_cost(&self, mem: &mut MemorySystem) -> f64 {
        self.run(mem, self.count); // warm-up
        self.run(mem, self.count)
    }
}

/// Sequentially sweep `count` nodes spaced `stride` bytes, `reps` times,
/// reading 8 bytes per node; returns charged nanoseconds per access in
/// the *last* sweep (steady state).
pub fn sweep_cost(mem: &mut MemorySystem, base: Addr, count: u64, stride: u64, reps: u64) -> f64 {
    assert!(reps >= 1);
    for _ in 0..reps.saturating_sub(1) {
        for i in 0..count {
            mem.read(base + i * stride, 8);
        }
    }
    let before = mem.clock_ns();
    for i in 0..count {
        mem.read(base + i * stride, 8);
    }
    (mem.clock_ns() - before) / count as f64
}

/// Allocate a region for sweeping (stride-aligned).
pub fn alloc_sweep(mem: &mut MemorySystem, count: u64, stride: u64) -> Addr {
    mem.alloc(count * stride, stride.clamp(8, 4096))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcm_hardware::presets;

    #[test]
    fn chase_visits_every_node() {
        let mut mem = MemorySystem::new(presets::tiny());
        let chase = Chase::build(&mut mem, 64, 32, 7);
        // Follow host-side: must return to start after exactly count hops.
        let mut p = chase.start;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            assert!(seen.insert(p), "premature cycle");
            p = mem.host().read_u64(p);
        }
        assert_eq!(p, chase.start);
    }

    #[test]
    fn fitting_chase_costs_nothing_in_steady_state() {
        let mut mem = MemorySystem::new(presets::tiny());
        // 32 nodes × 32 B = 1 KB < 2 KB L1.
        let chase = Chase::build(&mut mem, 32, 32, 1);
        let cost = chase.steady_cost(&mut mem);
        assert_eq!(cost, 0.0, "in-cache chase must be free of miss charges");
    }

    #[test]
    fn oversized_chase_pays_random_latency() {
        let mut mem = MemorySystem::new(presets::tiny());
        // 1024 nodes × 32 B = 32 KB ≫ L1 (2 KB): every step misses L1.
        let chase = Chase::build(&mut mem, 1024, 32, 2);
        let cost = chase.steady_cost(&mut mem);
        // At least the L1 random miss latency (15 ns) per step.
        assert!(cost >= 14.0, "cost {cost}");
    }

    #[test]
    fn sweep_steady_state_in_cache_is_free() {
        let mut mem = MemorySystem::new(presets::tiny());
        let base = alloc_sweep(&mut mem, 32, 32);
        let cost = sweep_cost(&mut mem, base, 32, 32, 3);
        assert_eq!(cost, 0.0);
    }

    #[test]
    fn sweep_cost_grows_with_stride() {
        // Classic line-size detection signal: per-access cost grows with
        // stride until stride reaches the line size.
        let mut mem = MemorySystem::new(presets::tiny());
        let mut costs = Vec::new();
        for stride in [8u64, 16, 32] {
            let count = 64 * 1024 / stride; // fixed 64 KB footprint ≫ L2
            let base = alloc_sweep(&mut mem, count, stride);
            costs.push(sweep_cost(&mut mem, base, count, stride, 2));
        }
        assert!(costs[0] < costs[1] && costs[1] < costs[2], "{costs:?}");
    }
}
