//! # gcm-calibrate — the Calibrator
//!
//! Re-implementation of the paper's calibration tool (§2.3, `[MBK00b]`):
//! a set of blind micro-benchmarks — pointer chases and strided sweeps —
//! that recover a machine's memory-hierarchy parameters (capacities,
//! line/page sizes, TLB entries, sequential and random miss latencies)
//! purely from measured access costs.
//!
//! The original runs on real hardware and reads the wall clock; the
//! [`detect`] pipeline here runs against [`gcm_sim::MemorySystem`] and
//! reads the charged-latency clock, closing the loop of the
//! reproduction: the parameters the cost model needs are recoverable
//! from the very substrate the validation experiments measure (Table
//! 3's methodology). The [`native`] module restores the original's
//! real-machine half — pointer chases and sweeps over host memory,
//! timed with [`std::time::Instant`] — so the same workflow also
//! calibrates the machine the tests actually run on
//! ([`calibrate_host`]).
//!
//! ```
//! use gcm_calibrate::Calibrator;
//! use gcm_hardware::presets;
//!
//! let mut cal = Calibrator::new(presets::tiny(), 128 * 1024);
//! let report = cal.run();
//! assert_eq!(report.caches[0].capacity, 2048); // tiny L1 recovered
//! ```

pub mod chase;
pub mod detect;
pub mod native;

pub use detect::{CalibrationReport, Calibrator, DetectedCache, DetectedTlb};
pub use native::{
    calibrate_host, calibrate_prefetch_depth, chase_ns_per_step, detect_host_tlb,
    sustained_bytes_per_ns, sweep_ns_per_byte,
};

use gcm_hardware::{Associativity, CacheLevel, HardwareSpec, LevelKind, Sharing};

impl CalibrationReport {
    /// Build a [`HardwareSpec`] from the calibrated parameters — the
    /// closing step of the paper's workflow: run the Calibrator on a new
    /// machine, feed its output to the cost model (§2.3, "Adaptation of
    /// the model to a specific hardware is done by instantiating the
    /// parameters").
    ///
    /// Associativity is not measurable by the timing scans (and the model
    /// ignores it); calibrated specs are created fully associative.
    pub fn to_spec(
        &self,
        name: impl Into<String>,
        cpu_mhz: f64,
    ) -> Result<HardwareSpec, gcm_hardware::HardwareError> {
        let mut levels: Vec<CacheLevel> = self
            .caches
            .iter()
            .enumerate()
            .map(|(i, c)| CacheLevel {
                name: format!("L{}", i + 1),
                kind: LevelKind::Cache,
                capacity: c.capacity,
                line: c.line,
                assoc: Associativity::Full,
                seq_miss_ns: c.seq_miss_ns.max(0.01),
                rand_miss_ns: c.rand_miss_ns.max(0.01),
                sharing: Sharing::Private,
            })
            .collect();
        if let Some(t) = &self.tlb {
            levels.push(CacheLevel {
                name: "TLB".into(),
                kind: LevelKind::Tlb,
                capacity: t.entries * t.page,
                line: t.page,
                assoc: Associativity::Full,
                seq_miss_ns: t.miss_ns.max(0.01),
                rand_miss_ns: t.miss_ns.max(0.01),
                sharing: Sharing::Private,
            });
        }
        HardwareSpec::new(name, cpu_mhz, levels)
    }

    /// Overlap parameters for the bandwidth-aware extension of Eq 6.1,
    /// priced from this report's sustained-bandwidth probe: sequential
    /// misses at each calibrated cache level cost `line / bandwidth`
    /// instead of the latency-bound `l_s`. Levels beyond the probed
    /// vector (the TLB appended by [`to_spec`](Self::to_spec)) keep
    /// their latency pricing. `alpha` is the residual serialization
    /// factor (0 = perfect memory/compute overlap, 1 = none — exactly
    /// Eq 6.1 when no bandwidths were probed).
    pub fn overlap_params(&self, alpha: f64) -> gcm_core::OverlapParams {
        gcm_core::OverlapParams::new(alpha, self.sustained_bw.clone())
    }
}

/// Render a Table-3 style comparison of configured vs. calibrated
/// parameters.
pub fn comparison_table(spec: &HardwareSpec, report: &CalibrationReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("machine: {}\n", spec.name));
    out.push_str("parameter                         configured     calibrated\n");
    let caches: Vec<_> = spec.data_caches().collect();
    for (i, lvl) in caches.iter().enumerate() {
        let det = report.caches.get(i);
        let fmt = |v: Option<String>| v.unwrap_or_else(|| "-".into());
        out.push_str(&format!(
            "{} capacity [bytes]               {:>11} {:>14}\n",
            lvl.name,
            lvl.capacity,
            fmt(det.map(|d| d.capacity.to_string()))
        ));
        out.push_str(&format!(
            "{} line size [bytes]              {:>11} {:>14}\n",
            lvl.name,
            lvl.line,
            fmt(det.map(|d| d.line.to_string()))
        ));
        out.push_str(&format!(
            "{} seq. miss latency [ns]         {:>11} {:>14}\n",
            lvl.name,
            lvl.seq_miss_ns,
            fmt(det.map(|d| format!("{:.1}", d.seq_miss_ns)))
        ));
        out.push_str(&format!(
            "{} rand. miss latency [ns]        {:>11} {:>14}\n",
            lvl.name,
            lvl.rand_miss_ns,
            fmt(det.map(|d| format!("{:.1}", d.rand_miss_ns)))
        ));
    }
    if let Some(tlb_spec) = spec.tlbs().next() {
        let det = report.tlb.as_ref();
        out.push_str(&format!(
            "TLB entries                       {:>11} {:>14}\n",
            tlb_spec.lines(),
            det.map(|t| t.entries.to_string())
                .unwrap_or_else(|| "-".into())
        ));
        out.push_str(&format!(
            "page size [bytes]                 {:>11} {:>14}\n",
            tlb_spec.line,
            det.map(|t| t.page.to_string())
                .unwrap_or_else(|| "-".into())
        ));
        out.push_str(&format!(
            "TLB miss latency [ns]             {:>11} {:>14}\n",
            tlb_spec.seq_miss_ns,
            det.map(|t| format!("{:.1}", t.miss_ns))
                .unwrap_or_else(|| "-".into())
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcm_hardware::presets;

    #[test]
    fn comparison_table_renders() {
        let report = CalibrationReport {
            caches: vec![DetectedCache {
                capacity: 2048,
                line: 32,
                seq_miss_ns: 5.0,
                rand_miss_ns: 15.0,
            }],
            tlb: Some(DetectedTlb {
                entries: 8,
                page: 1024,
                miss_ns: 100.0,
            }),
            sustained_bw: vec![6.4],
            prefetch_depth: 8,
        };
        let table = comparison_table(&presets::tiny(), &report);
        assert!(table.contains("L1 capacity"));
        assert!(table.contains("2048"));
        assert!(table.contains("TLB entries"));
    }
}
