//! Observability — open-loop serving latency under a Zipf-skewed
//! multi-tenant mix.
//!
//! Three tenants (point-lookup / scan-heavy / join-heavy) share one
//! machine; requests arrive *open-loop* on a simulated clock — a fixed
//! interarrival gap calibrated to ~80% utilization of the mean solo
//! service time, so arrivals do not wait for completions and queueing
//! delay is part of every latency. The service batches admitted
//! queries with its `⊙`-priced admission controller exactly as in
//! production; a query's **sojourn** latency is `completion − arrival`
//! on the simulated clock (queue wait + its batch's measured wall).
//!
//! Latencies land in the log-linear histograms of [`gcm_obs::hist`]
//! (one per tenant class, labels baked into the metric name), and the
//! p50/p99/p999 rows — bounded-error quantiles, see
//! [`gcm_obs::hist::QUANTILE_REL_ERROR`] — are written to
//! `BENCH_service.json` (schema `gcm-service-latency/v1`) at the repo
//! root. Every number in the file is *simulated* (charged ns), so the
//! artifact is machine-independent and committable: regressions in
//! admission, batching, or the executor show up as latency-row diffs.

use gcm_obs::json::{Arr, Obj};
use gcm_obs::MetricsRegistry;
use gcm_service::{plan_for, QueryService, TenantTables};
use gcm_workload::{TenantClass, Workload};
use std::collections::HashMap;

/// Requests in the open-loop run.
const REQUESTS: usize = 48;

/// Zipf exponent for the tenant-ownership draw (0 = uniform).
const ZIPF_THETA: f64 = 0.8;

/// Target utilization the interarrival gap is calibrated to.
const UTILIZATION: f64 = 0.8;

const TENANTS: [TenantClass; 3] = [
    TenantClass::PointLookup,
    TenantClass::ScanHeavy,
    TenantClass::JoinHeavy,
];

fn class_label(c: TenantClass) -> &'static str {
    match c {
        TenantClass::PointLookup => "point_lookup",
        TenantClass::ScanHeavy => "scan_heavy",
        TenantClass::JoinHeavy => "join_heavy",
    }
}

/// A service with one fact + dimension pair per tenant, and the
/// binding each tenant's requests resolve against.
fn service(seed: u64) -> (QueryService, Vec<TenantTables>) {
    let mut svc = QueryService::new(gcm_hardware::presets::modern_smp(4));
    let mut wl = Workload::new(seed);
    let mut tenants = Vec::new();
    for t in 0..TENANTS.len() {
        let star = wl.star_scenario(60_000, 4_000, 1);
        let fact = svc.register_table(&format!("t{t}.F"), star.fact, 8);
        let dim = svc.register_table(&format!("t{t}.D"), star.dims[0].clone(), 8);
        tenants.push(TenantTables {
            fact,
            dim,
            key_bound: 4_000,
        });
    }
    (svc, tenants)
}

/// Mean solo (unbatched, uncontended) service time of the three class
/// shapes, simulated ns — the calibration base for the arrival rate.
fn mean_solo_service_ns(tenants: &[TenantTables]) -> f64 {
    let (mut svc, _) = service(9001);
    for (t, &class) in TENANTS.iter().enumerate() {
        let req = gcm_workload::QueryRequest {
            tenant: t,
            class,
            selectivity: 0.25,
        };
        svc.submit(plan_for(&req, &tenants[t]))
            .expect("calibration");
    }
    while let Some(batch) = svc.next_batch() {
        svc.execute_batch(batch).expect("calibration batch");
    }
    let m = svc.metrics();
    m.queries.iter().map(|q| q.measured_ns).sum::<f64>() / m.queries.len() as f64
}

fn main() {
    let (mut svc, tenants) = service(77);
    let mut wl = Workload::new(78);
    let reqs = wl.query_mix(REQUESTS, &TENANTS, ZIPF_THETA);

    let interarrival_ns = (mean_solo_service_ns(&tenants) / UTILIZATION).round() as u64;
    let arrivals: Vec<u64> = (0..REQUESTS as u64).map(|i| i * interarrival_ns).collect();

    // Open loop on the simulated clock: submit everything that has
    // arrived by `now`, let the admission controller batch what is
    // pending, advance the clock by the batch's measured wall.
    let mut pending: HashMap<u64, (TenantClass, u64)> = HashMap::new();
    let mut done: Vec<(TenantClass, u64)> = Vec::new(); // (class, sojourn)
    let mut now = 0u64;
    let mut next = 0usize;
    while next < reqs.len() || svc.queue_len() > 0 {
        while next < reqs.len() && arrivals[next] <= now {
            let req = &reqs[next];
            let id = svc
                .submit(plan_for(req, &tenants[req.tenant]))
                .expect("registered tables");
            pending.insert(id, (req.class, arrivals[next]));
            next += 1;
        }
        if svc.queue_len() == 0 {
            now = arrivals[next]; // idle until the next arrival
            continue;
        }
        let batch = svc.next_batch().expect("queue is non-empty");
        let ids = batch.ids();
        let idx = svc.execute_batch(batch).expect("batch executes");
        now += svc.metrics().batches[idx].measured_wall_ns.round() as u64;
        for id in ids {
            let (class, arrived) = pending.remove(&id).expect("admitted id was pending");
            done.push((class, now - arrived));
        }
    }
    assert_eq!(done.len(), REQUESTS);
    assert_eq!(svc.spans().dropped(), 0, "trace must not truncate");

    // Per-class sojourn histograms, labels baked into the metric name.
    let reg = MetricsRegistry::default();
    for (class, sojourn) in &done {
        let name = format!("service_sojourn_ns{{class=\"{}\"}}", class_label(*class));
        reg.observe(&name, *sojourn);
        reg.observe("service_sojourn_ns_overall", *sojourn);
    }

    let m = svc.metrics();
    let (ep50, ep99, ep999) = m
        .latency_quantiles()
        .expect("execution-latency histogram populated");
    let overall = reg
        .histogram("service_sojourn_ns_overall")
        .expect("overall sojourn histogram");
    assert!(overall.p50() <= overall.p99() && overall.p99() <= overall.p999());

    println!(
        "open-loop mix: {REQUESTS} requests, interarrival {:.2} ms, {} batches (max size {})",
        interarrival_ns as f64 / 1e6,
        m.batches.len(),
        m.max_batch_size()
    );
    println!(
        "execution latency (sim):  p50 {:.2} ms  p99 {:.2} ms  p999 {:.2} ms",
        ep50 as f64 / 1e6,
        ep99 as f64 / 1e6,
        ep999 as f64 / 1e6
    );
    println!(
        "{:>14} {:>6} {:>12} {:>12} {:>12}",
        "class", "count", "p50 (ms)", "p99 (ms)", "p999 (ms)"
    );

    let mut class_rows = Arr::new();
    for &class in &TENANTS {
        let label = class_label(class);
        let Some(h) = reg.histogram(&format!("service_sojourn_ns{{class=\"{label}\"}}")) else {
            continue; // class drew no requests in this mix
        };
        println!(
            "{label:>14} {:>6} {:>12.2} {:>12.2} {:>12.2}",
            h.count(),
            h.p50() as f64 / 1e6,
            h.p99() as f64 / 1e6,
            h.p999() as f64 / 1e6
        );
        let mut row = Obj::new();
        row.str("class", label)
            .u64("count", h.count())
            .u64("p50_ns", h.p50())
            .u64("p99_ns", h.p99())
            .u64("p999_ns", h.p999())
            .num("mean_ns", h.mean());
        class_rows.raw(&row.finish());
    }

    let mut sojourn = Obj::new();
    sojourn
        .u64("count", overall.count())
        .u64("p50_ns", overall.p50())
        .u64("p99_ns", overall.p99())
        .u64("p999_ns", overall.p999())
        .num("mean_ns", overall.mean());
    let mut execution = Obj::new();
    execution
        .u64("p50_ns", ep50)
        .u64("p99_ns", ep99)
        .u64("p999_ns", ep999);
    let mut top = Obj::new();
    top.str("bench", "service_latency")
        .str("schema", "gcm-service-latency/v1")
        .u64("requests", REQUESTS as u64)
        .num("zipf_theta", ZIPF_THETA)
        .u64("interarrival_ns", interarrival_ns)
        .u64("batches", m.batches.len() as u64)
        .u64("max_batch", m.max_batch_size() as u64)
        .raw("sojourn", &sojourn.finish())
        .raw("execution", &execution.finish())
        .raw("classes", &class_rows.finish());
    let json = format!("{}\n", top.finish());

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    std::fs::write(path, json).expect("write BENCH_service.json");
    println!("wrote {path}");
}
