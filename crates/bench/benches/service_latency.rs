//! Observability — open-loop serving latency under a Zipf-skewed
//! multi-tenant mix, plus an SLO-gated overload phase.
//!
//! Three tenants (point-lookup / scan-heavy / join-heavy) share one
//! machine; requests arrive *open-loop* on a simulated clock — Poisson
//! interarrivals calibrated to ~80% utilization of the mean solo
//! service time, so arrivals do not wait for completions and queueing
//! delay is part of every latency. The service batches admitted
//! queries with its `⊙`-priced admission controller exactly as in
//! production; a query's **sojourn** latency is `completion − arrival`
//! on the simulated clock (queue wait + its batch's measured wall).
//!
//! A second phase reruns the same mix at 2× the nominal rate with a
//! per-class [`SloPolicy`] installed: the shed gate projects each
//! query's sojourn at arrival (`waited + ⊙-priced batch wall`) and
//! refuses the doomed ones once, fail-fast. The artifact therefore
//! pins the **offered vs. achieved rate and the shed count** — the
//! serving-tier knobs the `gcm-net` front end builds on.
//!
//! Latencies land in the log-linear histograms of [`gcm_obs::hist`]
//! (one per tenant class), and the p50/p99/p999 rows — bounded-error
//! quantiles, see [`gcm_obs::hist::QUANTILE_REL_ERROR`] — are written
//! to `BENCH_service.json` (schema `gcm-service-latency/v2`) at the
//! repo root. Every number in the file is *simulated* (charged ns), so
//! the artifact is machine-independent and committable: regressions in
//! admission, batching, shedding, or the executor show up as diffs.

use gcm_obs::json::{Arr, Obj};
use gcm_obs::Histogram;
use gcm_service::{plan_for, QueryService, ServiceConfig, SloPolicy, TenantTables};
use gcm_workload::{TenantClass, Workload};
use std::collections::HashMap;

/// Requests in each open-loop run.
const REQUESTS: usize = 48;

/// Zipf exponent for the tenant-ownership draw (0 = uniform).
const ZIPF_THETA: f64 = 0.8;

/// Target utilization the nominal interarrival gap is calibrated to.
const UTILIZATION: f64 = 0.8;

/// Offered-rate multiplier for the overload phase.
const OVERLOAD_FACTOR: f64 = 2.0;

/// Sojourn budget for the overload phase, in mean solo times.
const BUDGET_SOLOS: f64 = 10.0;

const TENANTS: [TenantClass; 3] = [
    TenantClass::PointLookup,
    TenantClass::ScanHeavy,
    TenantClass::JoinHeavy,
];

fn class_label(c: TenantClass) -> &'static str {
    match c {
        TenantClass::PointLookup => "point_lookup",
        TenantClass::ScanHeavy => "scan_heavy",
        TenantClass::JoinHeavy => "join_heavy",
    }
}

/// A service with one fact + dimension pair per tenant, and the
/// binding each tenant's requests resolve against.
fn service(seed: u64, slo: Option<SloPolicy>) -> (QueryService, Vec<TenantTables>) {
    let cfg = ServiceConfig {
        slo,
        ..ServiceConfig::default()
    };
    let mut svc = QueryService::with_config(gcm_hardware::presets::modern_smp(4), cfg);
    let mut wl = Workload::new(seed);
    let mut tenants = Vec::new();
    for t in 0..TENANTS.len() {
        let star = wl.star_scenario(60_000, 4_000, 1);
        let fact = svc.register_table(&format!("t{t}.F"), star.fact, 8);
        let dim = svc.register_table(&format!("t{t}.D"), star.dims[0].clone(), 8);
        tenants.push(TenantTables {
            fact,
            dim,
            key_bound: 4_000,
        });
    }
    (svc, tenants)
}

/// Mean solo (unbatched, uncontended) service time of the three class
/// shapes, simulated ns — the calibration base for the arrival rate.
fn mean_solo_service_ns(tenants: &[TenantTables]) -> f64 {
    let (mut svc, _) = service(9001, None);
    for (t, &class) in TENANTS.iter().enumerate() {
        let req = gcm_workload::QueryRequest {
            tenant: t,
            class,
            selectivity: 0.25,
        };
        svc.submit(plan_for(&req, &tenants[t]))
            .expect("calibration");
    }
    while let Some(batch) = svc.next_batch() {
        svc.execute_batch(batch).expect("calibration batch");
    }
    let m = svc.metrics();
    m.queries.iter().map(|q| q.measured_ns).sum::<f64>() / m.queries.len() as f64
}

/// One open-loop run on the simulated clock.
struct RunOutcome {
    /// (class, sojourn_ns) for every query that executed.
    served: Vec<(TenantClass, u64)>,
    /// (class, waited_ns) for every query the SLO gate refused.
    shed: Vec<(TenantClass, u64)>,
    batches: usize,
    max_batch: usize,
    /// Simulated clock at the last completion, ns.
    elapsed_ns: u64,
    /// (p50, p99, p999) of per-query execution latency, charged ns.
    exec_quantiles: (u64, u64, u64),
}

/// Drive `REQUESTS` queries open-loop: submit everything that has
/// arrived by `now`, let the admission controller shed and batch what
/// is pending, advance the clock by each batch's measured wall.
fn open_loop(mix_seed: u64, interarrival_ns: f64, slo: Option<SloPolicy>) -> RunOutcome {
    let (mut svc, tenants) = service(77, slo);
    let mut wl = Workload::new(mix_seed);
    let reqs = wl.query_mix(REQUESTS, &TENANTS, ZIPF_THETA);
    let arrivals = wl.poisson_arrivals(REQUESTS, interarrival_ns);

    let mut pending: HashMap<u64, (TenantClass, u64)> = HashMap::new();
    let mut served: Vec<(TenantClass, u64)> = Vec::new();
    let mut shed: Vec<(TenantClass, u64)> = Vec::new();
    let mut now = 0u64;
    let mut next = 0usize;
    while next < reqs.len() || svc.queue_len() > 0 {
        while next < reqs.len() && arrivals[next] <= now {
            let req = &reqs[next];
            let id = svc
                .submit_classed(
                    plan_for(req, &tenants[req.tenant]),
                    req.class,
                    arrivals[next],
                )
                .expect("registered tables");
            pending.insert(id, (req.class, arrivals[next]));
            next += 1;
        }
        if svc.queue_len() == 0 {
            now = arrivals[next]; // idle until the next arrival
            continue;
        }
        let (shed_now, batch) = svc.next_batch_at(now);
        for s in &shed_now {
            let (class, _) = pending.remove(&s.id).expect("shed id was pending");
            shed.push((class, s.waited_ns));
        }
        let Some(batch) = batch else {
            continue; // the whole queue was shed this pass
        };
        let ids = batch.ids();
        let idx = svc.execute_batch(batch).expect("batch executes");
        now += svc.metrics().batches[idx].measured_wall_ns.round() as u64;
        for id in ids {
            let (class, arrived) = pending.remove(&id).expect("admitted id was pending");
            served.push((class, now - arrived));
        }
    }
    assert_eq!(served.len() + shed.len(), REQUESTS);
    assert_eq!(svc.spans().dropped(), 0, "trace must not truncate");

    let m = svc.metrics();
    RunOutcome {
        served,
        shed,
        batches: m.batches.len(),
        max_batch: m.max_batch_size(),
        elapsed_ns: now,
        exec_quantiles: m
            .latency_quantiles()
            .expect("execution-latency histogram populated"),
    }
}

/// Served (achieved) rate in qps on the simulated clock.
fn achieved_qps(outcome: &RunOutcome) -> f64 {
    outcome.served.len() as f64 / (outcome.elapsed_ns.max(1) as f64 / 1e9)
}

/// Per-class rows: served/shed counts and sojourn quantiles.
fn class_rows(outcome: &RunOutcome) -> String {
    let mut rows = Arr::new();
    for &class in &TENANTS {
        let mut h = Histogram::new();
        for &(c, sojourn) in &outcome.served {
            if c == class {
                h.record(sojourn);
            }
        }
        let shed = outcome.shed.iter().filter(|&&(c, _)| c == class).count() as u64;
        if h.count() == 0 && shed == 0 {
            continue; // class drew no requests in this mix
        }
        let mut row = Obj::new();
        row.str("class", class_label(class))
            .u64("served", h.count())
            .u64("shed", shed)
            .u64("p50_ns", h.p50())
            .u64("p99_ns", h.p99())
            .u64("p999_ns", h.p999())
            .num("mean_ns", h.mean());
        rows.raw(&row.finish());
    }
    rows.finish()
}

/// One phase's JSON object: rates, counts, sojourn + execution tails.
fn phase_obj(outcome: &RunOutcome, offered_qps: f64) -> String {
    let mut overall = Histogram::new();
    for &(_, sojourn) in &outcome.served {
        overall.record(sojourn);
    }
    assert!(overall.p50() <= overall.p99() && overall.p99() <= overall.p999());
    let mut sojourn = Obj::new();
    sojourn
        .u64("count", overall.count())
        .u64("p50_ns", overall.p50())
        .u64("p99_ns", overall.p99())
        .u64("p999_ns", overall.p999())
        .num("mean_ns", overall.mean());
    let (ep50, ep99, ep999) = outcome.exec_quantiles;
    let mut execution = Obj::new();
    execution
        .u64("p50_ns", ep50)
        .u64("p99_ns", ep99)
        .u64("p999_ns", ep999);
    let mut o = Obj::new();
    o.num("offered_qps", offered_qps)
        .num("achieved_qps", achieved_qps(outcome))
        .u64("served", outcome.served.len() as u64)
        .u64("shed", outcome.shed.len() as u64)
        .u64("batches", outcome.batches as u64)
        .u64("max_batch", outcome.max_batch as u64)
        .u64("elapsed_ns", outcome.elapsed_ns)
        .raw("sojourn", &sojourn.finish())
        .raw("execution", &execution.finish())
        .raw("classes", &class_rows(outcome));
    o.finish()
}

fn print_phase(name: &str, outcome: &RunOutcome, offered_qps: f64) {
    println!(
        "{name}: offered {offered_qps:.0} qps, achieved {:.0} qps | served {} shed {} | {} batches (max size {})",
        achieved_qps(outcome),
        outcome.served.len(),
        outcome.shed.len(),
        outcome.batches,
        outcome.max_batch
    );
    println!(
        "{:>14} {:>6} {:>6} {:>12} {:>12} {:>12}",
        "class", "served", "shed", "p50 (ms)", "p99 (ms)", "p999 (ms)"
    );
    for &class in &TENANTS {
        let mut h = Histogram::new();
        for &(c, sojourn) in &outcome.served {
            if c == class {
                h.record(sojourn);
            }
        }
        let shed = outcome.shed.iter().filter(|&&(c, _)| c == class).count();
        if h.count() == 0 && shed == 0 {
            continue;
        }
        println!(
            "{:>14} {:>6} {:>6} {:>12.2} {:>12.2} {:>12.2}",
            class_label(class),
            h.count(),
            shed,
            h.p50() as f64 / 1e6,
            h.p99() as f64 / 1e6,
            h.p999() as f64 / 1e6
        );
    }
}

fn main() {
    let (_, tenants) = service(77, None);
    let solo_ns = mean_solo_service_ns(&tenants);
    let interarrival_ns = (solo_ns / UTILIZATION).round();
    let offered_qps = 1e9 / interarrival_ns;

    // Phase 1 — nominal 80% utilization, no SLO: every request is
    // served; sojourn tails are pure queueing + batching behaviour.
    let nominal = open_loop(78, interarrival_ns, None);
    assert_eq!(nominal.shed.len(), 0, "no gate, nothing may be shed");
    print_phase("nominal", &nominal, offered_qps);

    // Phase 2 — the same mix offered at 2x with a uniform sojourn
    // budget: the gate must shed some load and serve the rest.
    let budget_ns = BUDGET_SOLOS * solo_ns;
    let overload_interarrival = interarrival_ns / OVERLOAD_FACTOR;
    let overload_offered = 1e9 / overload_interarrival;
    let overload = open_loop(
        78,
        overload_interarrival,
        Some(SloPolicy::uniform(budget_ns)),
    );
    assert!(!overload.shed.is_empty(), "2x overload must shed");
    assert!(!overload.served.is_empty(), "the gate must not shed all");
    print_phase("overload (2x, SLO gate)", &overload, overload_offered);
    println!(
        "budget {:.2} ms | shed waited p99 {:.2} ms",
        budget_ns / 1e6,
        {
            let mut h = Histogram::new();
            for &(_, waited) in &overload.shed {
                h.record(waited);
            }
            h.p99() as f64 / 1e6
        }
    );

    let mut top = Obj::new();
    top.str("bench", "service_latency")
        .str("schema", "gcm-service-latency/v2")
        .u64("requests", REQUESTS as u64)
        .num("zipf_theta", ZIPF_THETA)
        .num("utilization", UTILIZATION)
        .u64("interarrival_ns", interarrival_ns as u64)
        .num("mean_solo_ns", solo_ns)
        .num("overload_factor", OVERLOAD_FACTOR)
        .num("budget_ns", budget_ns)
        .raw("nominal", &phase_obj(&nominal, offered_qps))
        .raw("overload", &phase_obj(&overload, overload_offered));
    let json = format!("{}\n", top.finish());

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    std::fs::write(path, json).expect("write BENCH_service.json");
    println!("wrote {path}");
}
