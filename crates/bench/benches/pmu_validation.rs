//! PMU ground truth for the cost model: execute representative plans on
//! **host memory** with hardware performance counters attached, and
//! compare the model's predicted cache misses against what the CPU's
//! PMU actually counted — the validation loop the simulator's charged
//! counters can only approximate.
//!
//! On a perf-capable host (`/proc/sys/kernel/perf_event_paranoid` ≤ 2
//! or `CAP_PERFMON`; see `gcm-obs::pmu`), every operator row reports
//! predicted vs PMU-measured L1d misses and their ratio, and the run is
//! checked against the committed `BENCH_pmu.json`: a per-operator ratio
//! drifting more than `REGRESSION_BOUND`× (2×) from the committed one
//! fails the bench. The check only fires when **both** the committed
//! artifact and the current run are PMU-capable — comparing a counter
//! run against a fallback run (or vice versa) is meaningless, and the
//! bench prints a visible `SKIPPED` marker instead.
//!
//! On a host without counters (VMs without vPMU, locked-down runners)
//! the bench still runs every plan, asserts the honest fallback (no
//! miss rows anywhere), and writes a **deterministic** artifact
//! (`pmu_available: false`, empty operator list, no host-specific
//! strings) so CI can `git diff --exit-code` it.

use gcm_calibrate::calibrate_host;
use gcm_core::{CostModel, CpuCost};
use gcm_engine::native::calibrate_per_op_ns;
use gcm_engine::plan::{explain_analyze, ExplainNode, PhysicalPlan};
use gcm_engine::planner::JoinAlgorithm;
use gcm_engine::ExecContext;
use gcm_hardware::presets;
use gcm_obs::json::{Arr, Obj};
use gcm_obs::pmu::{pmu_status, PmuStatus};
use gcm_obs::FlightRecorder;
use gcm_workload::Workload;

const SCHEMA: &str = "gcm-pmu-validation/v1";
const REGRESSION_BOUND: f64 = 2.0;
const ARTIFACT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pmu.json");

/// One operator's predicted-vs-PMU-measured L1d misses.
struct OpRow {
    class: String,
    predicted: f64,
    measured: u64,
}

impl OpRow {
    fn ratio(&self) -> f64 {
        self.predicted / self.measured.max(1) as f64
    }
}

fn l1d(rows: &[(String, u64)]) -> Option<u64> {
    rows.iter().find(|(n, _)| n == "L1d").map(|(_, m)| *m)
}

fn l1d_pred(rows: &[(String, f64)]) -> Option<f64> {
    rows.iter().find(|(n, _)| n == "L1d").map(|(_, m)| *m)
}

/// Walk the annotated tree collecting per-operator L1d rows (operator
/// nodes only; scans and `parallel` wrappers carry no measurement).
fn collect(node: &ExplainNode, out: &mut Vec<OpRow>) {
    for c in &node.children {
        collect(c, out);
    }
    let (Some(m), Some(p)) = (&node.measured, &node.predicted) else {
        return;
    };
    if let (Some(measured), Some(predicted)) = (l1d(&m.level_misses), l1d_pred(&p.level_misses)) {
        out.push(OpRow {
            class: node.class.clone(),
            predicted,
            measured,
        });
    }
}

/// Pull `"ratio":<x>` out of the committed artifact's entry for `class`
/// (string scan — the artifact is flat, machine-written, one line).
fn committed_ratio(artifact: &str, class: &str) -> Option<f64> {
    let needle = format!("\"class\":\"{class}\"");
    let at = artifact.find(&needle)?;
    let rest = &artifact[at..];
    let r = rest.find("\"ratio\":")? + "\"ratio\":".len();
    let tail = &rest[r..];
    let end = tail
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

fn main() {
    let status = pmu_status();
    let committed = std::fs::read_to_string(ARTIFACT).ok();

    // The plans under validation: the operator set the paper's cost
    // functions cover, at sizes that spill L1 so misses are non-trivial.
    let star = Workload::new(11).star_scenario(200_000, 20_000, 1);
    let plans: Vec<(&str, PhysicalPlan)> = vec![
        (
            "scan_select_aggregate",
            PhysicalPlan::scan(0).select_lt(10_000).group_count(),
        ),
        (
            "hash_join",
            PhysicalPlan::scan(0)
                .join_with(PhysicalPlan::scan(1), JoinAlgorithm::Hash)
                .group_count(),
        ),
        (
            "sort_merge_join",
            PhysicalPlan::scan(0).select_lt(12_000).join_with(
                PhysicalPlan::scan(1),
                JoinAlgorithm::Merge {
                    sort_u: true,
                    sort_v: true,
                },
            ),
        ),
    ];

    // Model: calibrated from the host when we will compare counters,
    // the deterministic tiny preset when we only assert the fallback
    // (no artifact numbers depend on it there).
    let (model, per_op) = if status.is_available() {
        let spec = calibrate_host(16 * 1024 * 1024)
            .to_spec("host (calibrated)", 0.0)
            .expect("calibrated spec");
        (CostModel::new(spec), calibrate_per_op_ns())
    } else {
        (
            CostModel::new(presets::tiny()),
            CpuCost::DEFAULT_PLANNER_PER_OP_NS,
        )
    };
    let cpu = CpuCost::per_op(per_op);

    let flight = FlightRecorder::new(plans.len());
    let mut rows: Vec<OpRow> = Vec::new();
    for (name, plan) in &plans {
        let mut ctx = ExecContext::native();
        let attach = ctx.mem.attach_pmu();
        assert_eq!(
            attach.is_available(),
            status.is_available(),
            "probe and attach must agree"
        );
        let tables = vec![
            ctx.relation_from_keys("F", &star.fact, 8),
            ctx.relation_from_keys("D", &star.dims[0], 8),
        ];
        let (run, report) = explain_analyze(&mut ctx, plan, &tables, &model, &cpu, per_op)
            .expect("plan executes natively");
        assert!(run.output.n() > 0, "{name}: empty result");
        flight.record(name, &report.to_json());
        if status.is_available() {
            collect(&report.root, &mut rows);
        } else {
            let mut any = Vec::new();
            collect(&report.root, &mut any);
            assert!(
                any.is_empty(),
                "{name}: miss rows must be honestly absent without counters"
            );
        }
    }
    println!(
        "flight recorder: {} EXPLAIN ANALYZE report(s) retained",
        flight.len()
    );

    let mut op_rows = Arr::new();
    match &status {
        PmuStatus::Available => {
            println!(
                "{:<24} {:>14} {:>14} {:>7}",
                "operator", "pred L1d", "PMU L1d", "ratio"
            );
            for row in &rows {
                println!(
                    "{:<24} {:>14.0} {:>14} {:>7.2}",
                    row.class,
                    row.predicted,
                    row.measured,
                    row.ratio()
                );
                let mut o = Obj::new();
                o.str("class", &row.class)
                    .num("predicted_l1d", row.predicted)
                    .u64("measured_l1d", row.measured)
                    .num("ratio", row.ratio());
                op_rows.raw(&o.finish());
            }
            // Regression gate: only against a committed PMU-capable run.
            match committed.as_deref() {
                Some(old) if old.contains("\"pmu_available\":true") => {
                    for row in &rows {
                        let Some(was) = committed_ratio(old, &row.class) else {
                            continue;
                        };
                        let drift = (row.ratio() / was).max(was / row.ratio());
                        assert!(
                            drift <= REGRESSION_BOUND,
                            "{}: ratio {:.2} drifted {drift:.2}x from committed {was:.2} \
                             (bound {REGRESSION_BOUND}x)",
                            row.class,
                            row.ratio()
                        );
                    }
                    println!("regression check vs committed BENCH_pmu.json: within {REGRESSION_BOUND}x ✓");
                }
                _ => println!(
                    "SKIPPED pmu_validation regression check: committed artifact is not PMU-capable"
                ),
            }
        }
        PmuStatus::Unavailable { reason } => {
            println!("SKIPPED pmu_validation counter comparison: {reason}");
            println!("fallback asserted: no miss rows on any operator ✓");
        }
    }

    // The artifact. Without counters it is byte-deterministic (no
    // host-specific strings) so CI diffs it against the committed copy.
    let mut top = Obj::new();
    top.str("bench", "pmu_validation")
        .str("schema", SCHEMA)
        .bool("pmu_available", status.is_available())
        .raw("operators", &op_rows.finish());
    std::fs::write(ARTIFACT, format!("{}\n", top.finish())).expect("write BENCH_pmu.json");
    println!("wrote {ARTIFACT}");
}
