//! Ablation — cache-state carry-over in sequential execution (Eq 5.2).
//!
//! Compares the full model (pattern state threads through `⊕`) against a
//! naive variant that sums the children's cold-cache costs, on the
//! operators where reuse matters (hash-join build→probe; quick-sort's
//! recursion depths). The measured simulator numbers arbitrate.

use gcm_bench::table::Series;
use gcm_core::{CostModel, Pattern, Region};
use gcm_engine::{ops, ExecContext};
use gcm_hardware::presets;
use gcm_workload::Workload;

/// Evaluate a pattern with each ⊕-child costed from a cold cache
/// (the ablated model).
fn cold_sum(model: &CostModel, p: &Pattern) -> f64 {
    match p {
        Pattern::Seq(children) => children.iter().map(|c| cold_sum(model, c)).sum(),
        Pattern::Repeat { k, inner } => *k as f64 * cold_sum(model, inner),
        other => model.mem_ns(other),
    }
}

fn main() {
    let spec = presets::origin2000();
    let model = CostModel::new(spec.clone());
    let mut series = Series::new(
        "Ablation — Eq 5.2 state carry-over (predicted/measured memory ms)",
        &["case", "measured ms", "full model ms", "no-state model ms"],
    );

    // Case 0: hash-join with a cache-fitting table (state matters: the
    // probe phase finds the table warm).
    {
        let n: u64 = 64 * 1024; // H = 2 MB < C2
        let mut ctx = ExecContext::new(spec.clone());
        let (uk, vk) = Workload::new(3).join_pair(n as usize);
        let u = ctx.relation_from_keys("U", &uk, 8);
        let v = ctx.relation_from_keys("V", &vk, 8);
        let (out, stats) = ctx.measure(|c| ops::hash::hash_join(c, &u, &v, "W", 16));
        let h = Region::new("H", (2 * n).next_power_of_two(), 16);
        let p = ops::hash::hash_join_pattern(u.region(), v.region(), &h, out.region());
        series.row(&[
            0.0,
            stats.mem.clock_ns / 1e6,
            model.mem_ns(&p) / 1e6,
            cold_sum(&model, &p) / 1e6,
        ]);
    }

    // Case 1: quick-sort of a cache-fitting table (recursion reuse).
    {
        let n: u64 = 256 * 1024; // 2 MB < C2
        let mut ctx = ExecContext::new(spec.clone());
        let keys = Workload::new(4).shuffled_keys(n as usize);
        let rel = ctx.relation_from_keys("U", &keys, 8);
        let (_, stats) = ctx.measure(|c| ops::sort::quick_sort(c, &rel));
        let p = ops::sort::quick_sort_pattern(rel.region());
        series.row(&[
            1.0,
            stats.mem.clock_ns / 1e6,
            model.mem_ns(&p) / 1e6,
            cold_sum(&model, &p) / 1e6,
        ]);
    }

    // Case 2: quick-sort of an oversized table (state matters less).
    {
        let n: u64 = 2 * 1024 * 1024; // 16 MB > C2
        let mut ctx = ExecContext::new(spec.clone());
        let keys = Workload::new(5).shuffled_keys(n as usize);
        let rel = ctx.relation_from_keys("U", &keys, 8);
        let (_, stats) = ctx.measure(|c| ops::sort::quick_sort(c, &rel));
        let p = ops::sort::quick_sort_pattern(rel.region());
        series.row(&[
            2.0,
            stats.mem.clock_ns / 1e6,
            model.mem_ns(&p) / 1e6,
            cold_sum(&model, &p) / 1e6,
        ]);
    }

    println!(
        "case 0: hash-join, H fits L2; case 1: quick-sort, fits L2; case 2: quick-sort, 4x L2"
    );
    series.print();
    let meas = series.column("measured ms").unwrap();
    let full = series.column("full model ms").unwrap();
    let cold = series.column("no-state model ms").unwrap();
    for i in 0..meas.len() {
        println!(
            "case {i}: full-model error {:+.0}%, no-state error {:+.0}%",
            (full[i] / meas[i] - 1.0) * 100.0,
            (cold[i] / meas[i] - 1.0) * 100.0
        );
    }
}
