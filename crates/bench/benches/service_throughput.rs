//! Extension — serving-layer throughput: ⊙-priced batches vs serial.
//!
//! The query service's admission controller prices a candidate batch as
//! the `⊙`-composition of the members' whole-plan patterns
//! (`CostModel::batch_cost`) and admits a query only while that beats
//! appending it serially. This bench closes the loop on that claim with
//! the executor pool's *measured* walls:
//!
//! * for a 2-query and a 4-query batch the service forms, the measured
//!   batch wall must land within 40% of the ⊙ prediction;
//! * on the join-heavy mix, draining the queue with batching enabled
//!   must be at least as fast (measured, simulated ns) as draining the
//!   same queue one query at a time.

use gcm_bench::table::Series;
use gcm_engine::plan::LogicalPlan;
use gcm_hardware::presets;
use gcm_service::{QueryService, ServiceConfig};
use gcm_workload::Workload;

const TOLERANCE: f64 = 0.40;
const POOL_PAGES: u64 = 96;
const PAGE: u64 = 8192;

fn service(max_batch: usize) -> (QueryService, usize, usize, usize, usize) {
    let spec = presets::with_ssd_buffer_pool(presets::modern_smp(4), POOL_PAGES * PAGE, PAGE);
    let mut svc = QueryService::with_config(
        spec,
        ServiceConfig {
            max_batch,
            ..ServiceConfig::default()
        },
    );
    let mut wl = Workload::new(2002);
    let point_dim = svc.register_table("point.D", wl.shuffled_keys(65_536), 8);
    let scan_star = wl.star_scenario(131_072, 2_048, 0);
    let scan_fact = svc.register_table("scan.F", scan_star.fact, 8);
    let join_star = wl.star_scenario(240_000, 16_000, 1);
    let join_fact = svc.register_table("join.F", join_star.fact, 8);
    let join_dim = svc.register_table("join.D", join_star.dims[0].clone(), 8);
    (svc, point_dim, scan_fact, join_fact, join_dim)
}

fn main() {
    // --- Part 1: batch-wall accuracy for a 2- and a 4-query batch. ---
    let (mut svc, point_dim, scan_fact, join_fact, join_dim) = service(0);
    let point = |cut: u64| LogicalPlan::scan(point_dim).select_lt(cut);
    let scan = |cut: u64| LogicalPlan::scan(scan_fact).select_lt(cut).group_count();
    let join = |cut: u64| {
        LogicalPlan::scan(join_fact)
            .select_lt(cut)
            .join(LogicalPlan::scan(join_dim))
            .group_count()
    };

    // A 4-query streaming batch, then a 2-query join batch (a heavy
    // and a light join fit the pool together; two heavies would not).
    for q in [
        scan(1_024),
        point(131),
        point(655),
        scan(2_048),
        join(8_000),
        join(4_000),
    ] {
        svc.submit(q).expect("registered tables");
    }
    svc.run().expect("queue drains");
    let m = svc.metrics().clone();

    let mut series = Series::new(
        "Extension — service batches: ⊙-predicted vs measured wall (ms)".to_string(),
        &["size", "predicted", "measured", "meas/pred"],
    );
    for b in &m.batches {
        series.row(&[
            b.size() as f64,
            b.predicted_wall_ns / 1e6,
            b.measured_wall_ns / 1e6,
            b.accuracy(),
        ]);
    }
    series.print();

    let sizes: Vec<usize> = m.batches.iter().map(|b| b.size()).collect();
    assert!(
        sizes.contains(&4) && sizes.contains(&2),
        "expected a 4-query and a 2-query batch, got {sizes:?}"
    );
    for b in &m.batches {
        let acc = b.accuracy();
        assert!(
            (acc - 1.0).abs() <= TOLERANCE,
            "batch of {} deviates {:.0}% (measured {:.2} ms vs predicted {:.2} ms)",
            b.size(),
            (acc - 1.0).abs() * 100.0,
            b.measured_wall_ns / 1e6,
            b.predicted_wall_ns / 1e6
        );
    }
    println!(
        "\nbatch walls within {:.0}% of the ⊙ prediction for sizes {sizes:?} ✓",
        TOLERANCE * 100.0
    );

    // --- Part 2: batched ≥ serial throughput on the join-heavy mix. ---
    let queue = |svc: &mut QueryService| {
        for cut in [4_000, 8_000, 4_000, 4_000, 8_000, 4_000] {
            let q = LogicalPlan::scan(join_fact)
                .select_lt(cut)
                .join(LogicalPlan::scan(join_dim))
                .group_count();
            svc.submit(q).expect("registered tables");
        }
    };
    let (mut batched, ..) = service(0);
    queue(&mut batched);
    batched.run().expect("drains");
    let batched_m = batched.metrics().clone();

    let (mut serial, ..) = service(1);
    queue(&mut serial);
    serial.run().expect("drains");
    let serial_m = serial.metrics().clone();

    let (b_ns, s_ns) = (batched_m.total_wall_ns(), serial_m.total_wall_ns());
    println!(
        "join-heavy mix: batched {:.1} ms over {} batches (max size {}) vs serial {:.1} ms",
        b_ns / 1e6,
        batched_m.batches.len(),
        batched_m.max_batch_size(),
        s_ns / 1e6
    );
    assert!(
        batched_m.max_batch_size() > 1,
        "the light joins must share the machine"
    );
    assert!(
        b_ns <= s_ns,
        "batched throughput regressed: {:.1} ms vs serial {:.1} ms",
        b_ns / 1e6,
        s_ns / 1e6
    );
    // Identical results either way.
    let outputs = |m: &gcm_service::ServiceMetrics| {
        let mut v: Vec<(String, u64)> = m
            .queries
            .iter()
            .map(|q| (q.plan.clone(), q.output_n))
            .collect();
        v.sort();
        v
    };
    assert_eq!(outputs(&batched_m), outputs(&serial_m));
    println!("batched throughput ≥ serial on the join-heavy mix ✓");
}
