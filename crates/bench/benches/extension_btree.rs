//! Extension — cache-conscious index nodes ([RR99], cited by the paper
//! as the query-execution answer to memory latency).
//!
//! Sweeps the B+-tree node size for a batch of random lookups against a
//! 2M-key index on the Origin2000: small nodes mean deep trees (many
//! random accesses), huge nodes waste bandwidth within each node; the
//! sweet spot tracks the cache line / page structure. Measured
//! (simulator) vs predicted (the `⊕_level r_acc` pattern).

use gcm_bench::table::Series;
use gcm_core::CostModel;
use gcm_engine::{ops::btree::BTree, ExecContext};
use gcm_hardware::presets;
use gcm_workload::Workload;

fn main() {
    let spec = presets::origin2000();
    let model = CostModel::new(spec.clone());
    let n: usize = 2 * 1024 * 1024;
    let q: usize = 50_000;
    let keys: Vec<u64> = (0..n as u64).collect();
    let probes = Workload::new(9).random_indices(q, n as u64);

    let mut series = Series::new(
        format!("Extension — B+-tree lookups, {n} keys, {q} probes (x = node bytes)"),
        &[
            "node B", "height", "meas L2", "pred L2", "meas ms", "pred ms",
        ],
    );

    for node_w in [16u64, 32, 64, 128, 256, 1024] {
        let mut ctx = ExecContext::new(spec.clone());
        let tree = BTree::build(&mut ctx, &keys, node_w, "T");
        ctx.cold_caches();
        let (_, stats) = ctx.measure(|c| {
            for &p in &probes {
                tree.lookup(c, p as u64);
            }
        });
        let report = model.report(&tree.lookup_pattern(q as u64));
        let l2 = spec.level_index("L2").unwrap();
        series.row(&[
            node_w as f64,
            tree.height() as f64,
            (stats.mem.levels[l2].seq_misses + stats.mem.levels[l2].rand_misses) as f64,
            report.levels[l2].misses(),
            stats.mem.clock_ns / 1e6,
            report.mem_ns / 1e6,
        ]);
    }
    series.print();

    let ms = series.column("meas ms").unwrap();
    let nodes = series.column("node B").unwrap();
    let best = ms
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| nodes[i])
        .unwrap();
    println!(
        "measured optimum node size: {best} B — nodes sized to amortize a line \
         fetch beat both pointer-chasing (16 B) and page-wide (1 KB) nodes, the \
         [RR99] design rule derived here from the generic model."
    );
}
