//! Observability — the tracing tax, guarded.
//!
//! Span tracing must be affordable in both of its off/on states:
//!
//! * **disabled** (recorder present, `set_enabled(false)`): the traced
//!   executor path costs one relaxed atomic load per operator node —
//!   host wall time within **5%** of the untraced path;
//! * **enabled**: per-node counter snapshots plus a lock-free ring
//!   push — within **25%** of untraced.
//!
//! Methodology: the same two-join plan executes over the simulator in
//! three modes (untraced / disabled / enabled), `ROUNDS` times each,
//! interleaved; the **minimum** per-mode wall time is compared (min is
//! the standard noise floor for micro-guards — any scheduler hiccup
//! only inflates, never deflates). Results are also asserted
//! byte-identical across modes, the executable form of "observability
//! never changes what it observes".

use gcm_engine::plan::{self, LogicalPlan, NoPrebuilt, NoTrace, Optimizer, SpanTracer, TableStats};
use gcm_engine::ExecContext;
use gcm_hardware::presets;
use gcm_obs::SpanRecorder;
use std::time::Instant;

/// Timed executions per mode (minimum taken).
const ROUNDS: usize = 9;

/// Disabled-recorder budget over untraced.
const DISABLED_BUDGET: f64 = 1.05;

/// Enabled-recorder budget over untraced.
const ENABLED_BUDGET: f64 = 1.25;

fn main() {
    let spec = presets::tiny_smp(4);
    let mut wl = gcm_workload::Workload::new(4242);
    let star = wl.star_scenario(40_000, 2_000, 2);

    // σ(F) ⋈ D0 ⋈ D1 with a grouped count: two joins, six traced nodes.
    let logical = LogicalPlan::scan(0)
        .select_lt(1_000)
        .join(LogicalPlan::scan(1))
        .join(LogicalPlan::scan(2))
        .group_count();
    let stats = [
        TableStats::uniform(40_000, 8, 2_000, false),
        TableStats::key_column(2_000, 8, false),
        TableStats::key_column(2_000, 8, false),
    ];
    let model = gcm_core::CostModel::new(spec.thread_view(1));
    let planned = Optimizer::new(&model)
        .optimize(&logical, &stats)
        .expect("plan optimizes");

    let recorder = SpanRecorder::new();
    let mut sink = recorder.sink();

    // One measured execution; returns (wall_ns, output_n, output_hash).
    let mut run = |mode: &str| -> (u64, u64, u64) {
        let mut ctx = ExecContext::new(spec.clone());
        let tables = [
            ctx.relation_from_keys("F", &star.fact, 8),
            ctx.relation_from_keys("D0", &star.dims[0], 8),
            ctx.relation_from_keys("D1", &star.dims[1], 8),
        ];
        let t0 = Instant::now();
        let out = match mode {
            "untraced" => plan::execute_with_builds(&mut ctx, &planned.plan, &tables, &NoPrebuilt),
            "disabled" => {
                recorder.set_enabled(false);
                let mut tracer = SpanTracer::new(&mut sink);
                plan::execute_traced(&mut ctx, &planned.plan, &tables, &NoPrebuilt, &mut tracer)
            }
            "enabled" => {
                recorder.set_enabled(true);
                let mut tracer = SpanTracer::new(&mut sink);
                plan::execute_traced(&mut ctx, &planned.plan, &tables, &NoPrebuilt, &mut tracer)
            }
            _ => plan::execute_traced(&mut ctx, &planned.plan, &tables, &NoPrebuilt, &mut NoTrace),
        }
        .expect("plan executes");
        let wall = t0.elapsed().as_nanos() as u64;
        let bytes = ctx.relation_bytes(&out.output);
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes.iter() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (wall, out.output.n(), hash)
    };

    // Interleave modes so drift (thermal, frequency) hits all equally.
    let mut mins = [u64::MAX; 3];
    let mut results = [None::<(u64, u64)>; 3];
    for _ in 0..ROUNDS {
        for (i, mode) in ["untraced", "disabled", "enabled"].iter().enumerate() {
            let (wall, n, hash) = run(mode);
            mins[i] = mins[i].min(wall);
            match results[i] {
                None => results[i] = Some((n, hash)),
                Some(prev) => assert_eq!(prev, (n, hash), "{mode} result changed between rounds"),
            }
        }
    }
    assert_eq!(results[0], results[1], "disabled tracing changed results");
    assert_eq!(results[0], results[2], "enabled tracing changed results");

    let spans = recorder.drain();
    assert!(
        !spans.is_empty(),
        "enabled rounds must have recorded execute spans"
    );
    assert_eq!(recorder.dropped(), 0);

    let [untraced, disabled, enabled] = mins.map(|v| v as f64);
    println!("tracing overhead over {ROUNDS} interleaved rounds (min wall per mode):");
    println!("  untraced  {:.3} ms", untraced / 1e6);
    println!(
        "  disabled  {:.3} ms  ({:.3}x, budget {DISABLED_BUDGET}x)",
        disabled / 1e6,
        disabled / untraced
    );
    println!(
        "  enabled   {:.3} ms  ({:.3}x, budget {ENABLED_BUDGET}x)  [{} spans]",
        enabled / 1e6,
        enabled / untraced,
        spans.len()
    );

    assert!(
        disabled <= untraced * DISABLED_BUDGET,
        "disabled tracing overhead {:.3}x exceeds {DISABLED_BUDGET}x budget",
        disabled / untraced
    );
    assert!(
        enabled <= untraced * ENABLED_BUDGET,
        "enabled tracing overhead {:.3}x exceeds {ENABLED_BUDGET}x budget",
        enabled / untraced
    );
    println!("within budget ✓");
}
