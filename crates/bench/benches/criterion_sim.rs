//! Criterion microbenches: simulator throughput.
//!
//! The experiments simulate hundreds of millions of accesses; these
//! benches track the per-access cost of the three access shapes.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gcm_hardware::presets;
use gcm_sim::MemorySystem;
use gcm_workload::Workload;
use std::hint::black_box;

const N: u64 = 64 * 1024;

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim");
    group.throughput(Throughput::Elements(N));

    group.bench_function("sequential_reads", |b| {
        let mut mem = MemorySystem::new(presets::origin2000());
        let base = mem.alloc(N * 8, 128);
        b.iter(|| {
            for i in 0..N {
                mem.read(base + i * 8, 8);
            }
            black_box(mem.clock_ns())
        })
    });

    group.bench_function("random_reads", |b| {
        let mut mem = MemorySystem::new(presets::origin2000());
        let base = mem.alloc(N * 8, 128);
        let perm = Workload::new(9).permutation(N as usize);
        b.iter(|| {
            for &i in &perm {
                mem.read(base + i as u64 * 8, 8);
            }
            black_box(mem.clock_ns())
        })
    });

    group.bench_function("classified_sequential_reads", |b| {
        let mut mem = MemorySystem::with_classification(presets::origin2000());
        let base = mem.alloc(N * 8, 128);
        b.iter(|| {
            for i in 0..N {
                mem.read(base + i * 8, 8);
            }
            black_box(mem.clock_ns())
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sim
}
criterion_main!(benches);
