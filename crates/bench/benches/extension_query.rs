//! Extension — whole-query costing (paper §6: "Extension to further
//! operations and whole queries, however, is straight forward").
//!
//! Runs a three-operator pipeline (σ → ⋈ → γ) end to end on the
//! Origin2000 simulator and compares against the composed pattern
//! `select ⊕ hash_join ⊕ aggregate` evaluated in one shot — including
//! the cross-operator cache reuse that per-operator costing would miss.

use gcm_bench::fig7;
use gcm_bench::table::Series;
use gcm_core::CostModel;
use gcm_engine::query::{Pipeline, Stage};
use gcm_engine::ExecContext;
use gcm_hardware::presets;
use gcm_workload::Workload;

fn main() {
    let spec = presets::origin2000();
    let model = CostModel::new(spec.clone());
    let cols = fig7::columns();
    let mut series = Series::new(
        "Extension — query σ(U) ⋈ V → γ (x = ||U|| = ||V|| in KB; 50% selectivity)",
        &cols,
    );

    let kb = 1024u64;
    for size in [256 * kb, 1024 * kb, 4096 * kb] {
        let n = size / 8;
        let mut ctx = ExecContext::new(spec.clone());
        let (uk, vk) = Workload::new(size).join_pair(n as usize);
        let u = ctx.relation_from_keys("U", &uk, 8);
        let v = ctx.relation_from_keys("V", &vk, 8);

        let pipeline = Pipeline::new()
            .stage(Stage::SelectLt(n / 2)) // 50% selectivity
            .stage(Stage::HashJoin(v.clone()))
            .stage(Stage::GroupCount);
        let (run, stats) = ctx.measure(|c| pipeline.run(c, &u));

        let report = model.report(&run.pattern);
        let pred_ops = 8 * n;
        series.row(&fig7::row(
            &spec,
            (size / kb) as f64,
            &stats.mem,
            stats.ops,
            &report,
            pred_ops,
        ));
    }
    series.print();
    fig7::summarize(&series);
    println!(
        "the composed pattern (one ⊕-chain with actual intermediate cardinalities)\n\
         prices the whole query, cross-operator cache reuse included."
    );
}
