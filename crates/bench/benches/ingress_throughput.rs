//! Ingress — socket-path throughput and ⊙-priced shedding under
//! overload (the tentpole claims of the network tier).
//!
//! Three measurements against one native-executing service:
//!
//! 1. **Ceiling** — closed-loop, in-process `execute_batch_native`
//!    throughput of the mixed workload: the hardware-speed bound no
//!    network stack can beat.
//! 2. **Socket path** — the same workload offered open-loop through
//!    the thread-per-core TCP front end at 2× the ceiling (saturation),
//!    shedding off: the sustained served rate, reported as a fraction
//!    of the ceiling. The acceptance bar is ≥ 0.80 — the wire protocol,
//!    epoll shards, and response routing may cost at most 20%.
//! 3. **Overload** — 2× the ceiling with the SLO gate on vs. off:
//!    per-class served/shed tails from the open-loop (coordinated-
//!    omission-free) load generator. The gate must hold the served
//!    point-lookup p99 at least 5× below the no-shedding run's.
//!
//! Results go to `BENCH_net.json` (schema `gcm-net-ingress/v1`) at the
//! repo root. Unlike the simulated-clock artifacts, the timing numbers
//! here are real wall measurements of this machine; the committed file
//! records the run that validated the acceptance criteria, and CI
//! checks only its non-timing fields (schema, counts, criteria flags).

#[cfg(not(target_os = "linux"))]
fn main() {
    eprintln!("ingress_throughput requires the Linux epoll ingress tier; skipping");
}

#[cfg(target_os = "linux")]
fn main() {
    linux::main()
}

#[cfg(target_os = "linux")]
mod linux {
    use gcm_net::loadgen::{self, LoadReport, LoadgenConfig};
    use gcm_net::{NetConfig, NetServer};
    use gcm_obs::json::{Arr, Obj};
    use gcm_obs::Histogram;
    use gcm_service::{plan_for, QueryService, ServiceConfig, SloPolicy, TenantTables};
    use gcm_workload::{TenantClass, Workload};
    use std::time::{Duration, Instant};

    const FACT_N: usize = 60_000;
    const DIM_N: usize = 4_000;
    const TABLE_SEED: u64 = 2002;
    const MIX_SEED: u64 = 1_000_003;
    const REQUESTS: usize = 240;
    const ZIPF_THETA: f64 = 0.99;
    const CONNECTIONS: usize = 4;
    const SHARDS: usize = 2;
    /// Sojourn budget, in multiples of the measured mean solo time.
    const BUDGET_SOLOS: f64 = 60.0;

    const TENANTS: [TenantClass; 3] = [
        TenantClass::PointLookup,
        TenantClass::ScanHeavy,
        TenantClass::JoinHeavy,
    ];

    fn service(slo: Option<SloPolicy>) -> (QueryService, Vec<TenantTables>) {
        let cfg = ServiceConfig {
            slo,
            ..ServiceConfig::default()
        };
        let mut svc = QueryService::with_config(gcm_hardware::presets::modern_smp(4), cfg);
        let mut wl = Workload::new(TABLE_SEED);
        let star = wl.star_scenario(FACT_N, DIM_N, 1);
        let fact = svc.register_table("net.F", star.fact, 8);
        let dim = svc.register_table("net.D", star.dims[0].clone(), 8);
        let t = TenantTables {
            fact,
            dim,
            key_bound: DIM_N as u64,
        };
        (svc, vec![t, t, t])
    }

    /// Closed-loop in-process ceiling: qps and mean solo ns, measured
    /// on a plan-cache-warm second pass.
    fn ceiling() -> (f64, f64) {
        let (mut svc, tenants) = service(None);
        let mut wl = Workload::new(MIX_SEED);
        let mix = wl.query_mix(REQUESTS, &TENANTS, ZIPF_THETA);
        for pass in 0..2 {
            let t0 = Instant::now();
            for req in &mix {
                svc.submit(plan_for(req, &tenants[req.tenant]))
                    .expect("plan");
            }
            while let Some(batch) = svc.next_batch() {
                svc.execute_batch_native(batch).expect("native execution");
            }
            if pass == 1 {
                let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
                return (REQUESTS as f64 / elapsed, elapsed * 1e9 / REQUESTS as f64);
            }
        }
        unreachable!()
    }

    fn drive(offered_qps: f64, slo: Option<SloPolicy>) -> LoadReport {
        let (svc, tenants) = service(slo);
        let server = NetServer::start(
            svc,
            tenants,
            NetConfig {
                shards: SHARDS,
                ..NetConfig::default()
            },
        )
        .expect("server start");
        let report = loadgen::run(
            server.addr(),
            &LoadgenConfig {
                requests: REQUESTS,
                offered_qps,
                connections: CONNECTIONS,
                tenants: TENANTS.to_vec(),
                zipf_theta: ZIPF_THETA,
                seed: MIX_SEED,
                drain_timeout: Duration::from_secs(60),
            },
        )
        .expect("load run");
        server.shutdown();
        report
    }

    fn class_rows(report: &LoadReport) -> String {
        let mut rows = Arr::new();
        for c in &report.classes {
            let mut row = Obj::new();
            row.str("class", c.class.label())
                .u64("sent", c.sent)
                .u64("served", c.served)
                .u64("shed", c.shed);
            let mut served = Obj::new();
            served
                .u64("p50_ns", c.served_latency.p50())
                .u64("p99_ns", c.served_latency.p99())
                .u64("p999_ns", c.served_latency.p999());
            let mut shed = Obj::new();
            shed.u64("p50_ns", c.shed_latency.p50())
                .u64("p99_ns", c.shed_latency.p99())
                .u64("p999_ns", c.shed_latency.p999());
            row.raw("served_latency", &served.finish())
                .raw("shed_latency", &shed.finish());
            rows.raw(&row.finish());
        }
        rows.finish()
    }

    fn phase_obj(report: &LoadReport) -> String {
        let mut o = Obj::new();
        o.num("offered_qps", report.offered_qps)
            .num("achieved_qps", report.achieved_qps)
            .u64("sent", report.sent)
            .u64("served", report.served)
            .u64("shed", report.shed)
            .u64("lost", report.lost)
            .raw("classes", &class_rows(report));
        o.finish()
    }

    pub fn main() {
        let (ceiling_qps, solo_ns) = ceiling();
        println!(
            "in-process ceiling: {ceiling_qps:.0} qps (mean solo {:.2} ms)",
            solo_ns / 1e6
        );

        // Saturation through the socket, shedding off: offered 2x, the
        // served rate is the socket path's sustained throughput.
        let saturation = drive(2.0 * ceiling_qps, None);
        let sustained_fraction = saturation.achieved_qps / ceiling_qps;
        println!(
            "socket path at 2x offer: {:.0} qps served = {:.1}% of ceiling",
            saturation.achieved_qps,
            100.0 * sustained_fraction
        );

        // Overload with the gate on vs off.
        let budget_ns = BUDGET_SOLOS * solo_ns;
        let gated = drive(2.0 * ceiling_qps, Some(SloPolicy::uniform(budget_ns)));
        let open = &saturation; // gate-off overload is the same run
        let gated_point = gated.class(TenantClass::PointLookup);
        let open_point = open.class(TenantClass::PointLookup);
        let point_p99_improvement =
            open_point.served_latency.p99() as f64 / gated_point.served_latency.p99().max(1) as f64;
        let mut served_all = Histogram::new();
        let mut shed_all = Histogram::new();
        for c in &gated.classes {
            served_all.merge(&c.served_latency);
            shed_all.merge(&c.shed_latency);
        }
        println!(
            "gated 2x overload: served {} shed {} | point p99 {:.2} ms (budget {:.2} ms) | open point p99 {:.2} ms -> {point_p99_improvement:.1}x better",
            gated.served,
            gated.shed,
            gated_point.served_latency.p99() as f64 / 1e6,
            budget_ns / 1e6,
            open_point.served_latency.p99() as f64 / 1e6,
        );
        println!(
            "fail-fast: shed p99 {:.2} ms vs served p99 {:.2} ms",
            shed_all.p99() as f64 / 1e6,
            served_all.p99() as f64 / 1e6
        );

        let meets_sustained = sustained_fraction >= 0.80;
        let meets_protection = point_p99_improvement >= 5.0;
        assert!(
            meets_sustained,
            "socket path sustained only {:.1}% of the native ceiling",
            100.0 * sustained_fraction
        );
        assert!(
            meets_protection,
            "shedding bought only {point_p99_improvement:.1}x on point-lookup p99"
        );

        let mut criteria = Obj::new();
        criteria
            .bool("sustained_ge_80pct_of_ceiling", meets_sustained)
            .bool("point_p99_ge_5x_better_with_shedding", meets_protection);
        let mut top = Obj::new();
        top.str("bench", "ingress_throughput")
            .str("schema", "gcm-net-ingress/v1")
            .u64("requests", REQUESTS as u64)
            .u64("connections", CONNECTIONS as u64)
            .u64("shards", SHARDS as u64)
            .num("zipf_theta", ZIPF_THETA)
            .u64("seed", MIX_SEED)
            .num("ceiling_qps", ceiling_qps)
            .num("mean_solo_ns", solo_ns)
            .num("budget_ns", budget_ns)
            .num("sustained_fraction", sustained_fraction)
            .num("point_p99_improvement", point_p99_improvement)
            .u64("shed_p99_ns", shed_all.p99())
            .u64("served_p99_ns", served_all.p99())
            .raw("saturation_no_shedding", &phase_obj(&saturation))
            .raw("overload_with_shedding", &phase_obj(&gated))
            .raw("criteria", &criteria.finish());
        let json = format!("{}\n", top.finish());

        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_net.json");
        std::fs::write(path, json).expect("write BENCH_net.json");
        println!("wrote {path}");
    }
}
