//! Criterion microbenches: cost-model evaluation speed.
//!
//! A query optimizer evaluates cost functions thousands of times per
//! plan search; the generic model must therefore be cheap. These benches
//! time a full per-level report for representative patterns.

use criterion::{criterion_group, criterion_main, Criterion};
use gcm_core::{library, CostModel, Region};
use gcm_hardware::presets;
use std::hint::black_box;

fn bench_model(c: &mut Criterion) {
    let model = CostModel::new(presets::origin2000());
    let n = 16 * 1024 * 1024u64;

    c.bench_function("model/hash_join_report", |b| {
        b.iter(|| {
            let u = Region::new("U", n, 8);
            let v = Region::new("V", n, 8);
            let h = Region::new("H", 2 * n, 16);
            let w = Region::new("W", n, 16);
            black_box(model.report(&library::hash_join(u, v, h, w)))
        })
    });

    c.bench_function("model/quick_sort_report", |b| {
        b.iter(|| {
            let u = Region::new("U", n, 8);
            black_box(model.report(&library::quick_sort(u)))
        })
    });

    c.bench_function("model/partitioned_hash_join_64_report", |b| {
        b.iter(|| {
            let u = Region::new("U", n, 8);
            let v = Region::new("V", n, 8);
            let w = Region::new("W", n, 16);
            black_box(model.report(&library::partitioned_hash_join_uniform(u, v, w, 64, 16)))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_model
}
criterion_main!(benches);
