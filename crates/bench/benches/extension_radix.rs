//! Extension — multi-pass radix partitioning ([MBK00a], the follow-up
//! the paper's §6.2 partitioning experiment motivates).
//!
//! Reaching a large cluster count in one pass crosses the Figure-7d
//! cliffs; `p` passes of `2^(bits/p)`-way partitioning stay below them
//! at the price of re-reading the data. This harness sweeps the pass
//! count for a 4096-way clustering of a 16 MB table on the Origin2000,
//! measured (simulator) vs predicted (model).

use gcm_bench::fig7;
use gcm_bench::table::Series;
use gcm_core::{CostModel, Region};
use gcm_engine::{ops, ExecContext};
use gcm_hardware::presets;
use gcm_workload::Workload;

fn main() {
    let spec = presets::origin2000();
    let model = CostModel::new(spec.clone());
    let n: u64 = 2 * 1024 * 1024; // 16 MB
    let bits = 12; // 4096 clusters
    let cols = fig7::columns();
    let mut series = Series::new(
        format!("Extension — radix clustering, 2^{bits} clusters of a 16 MB table (x = passes)"),
        &cols,
    );

    for passes in [1u32, 2, 3, 4] {
        let mut ctx = ExecContext::new(spec.clone());
        let keys = Workload::new(passes as u64).shuffled_keys(n as usize);
        let input = ctx.relation_from_keys("U", &keys, 8);
        let (_, stats) = ctx.measure(|c| ops::radix::radix_partition(c, &input, bits, passes, "R"));

        let w = Region::new("W", n, 8);
        let pattern = ops::radix::radix_partition_pattern(input.region(), &w, bits, passes);
        let report = model.report(&pattern);
        let pred_ops = passes as u64 * n;

        series.row(&fig7::row(
            &spec,
            passes as f64,
            &stats.mem,
            stats.ops,
            &report,
            pred_ops,
        ));
    }
    series.print();
    fig7::summarize(&series);

    let ms = series.column("ms meas").unwrap();
    let best = ms
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i + 1)
        .unwrap();
    println!(
        "measured optimum: {best} passes ({:.0} ms vs {:.0} ms single-pass) — \
         the [MBK00a] result, priced by the generic model with no radix-specific code.",
        ms[best - 1],
        ms[0]
    );
}
