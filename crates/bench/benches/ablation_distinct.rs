//! Ablation — distinct-items estimator for `r_acc` (paper §4.6).
//!
//! The paper derives the expected number of distinct items hit by `q`
//! random accesses via Stirling numbers of the second kind; the
//! implementation uses the equivalent closed form. This harness checks
//! the two against each other and against an empirical simulation, and
//! reports evaluation cost.

use gcm_bench::table::Series;
use gcm_core::distinct::{expected_distinct, expected_distinct_stirling};
use gcm_workload::Workload;
use std::time::Instant;

fn empirical(n: u64, q: u64, reps: u64) -> f64 {
    let mut total = 0usize;
    for rep in 0..reps {
        let mut wl = Workload::new(rep ^ 0xD15C);
        let mut seen = vec![false; n as usize];
        let mut distinct = 0usize;
        for i in wl.random_indices(q as usize, n) {
            if !seen[i] {
                seen[i] = true;
                distinct += 1;
            }
        }
        total += distinct;
    }
    total as f64 / reps as f64
}

fn main() {
    let mut series = Series::new(
        "Ablation — E[distinct items] after q draws from n (paper §4.6)",
        &["n", "q", "closed form", "stirling sum", "empirical"],
    );
    for (n, q) in [(16u64, 16u64), (64, 32), (64, 256), (256, 256), (1024, 512)] {
        series.row(&[
            n as f64,
            q as f64,
            expected_distinct(n, q),
            expected_distinct_stirling(n, q),
            empirical(n, q, 200),
        ]);
    }
    series.print();

    // Where the Stirling sum stops being usable: cost comparison.
    let t0 = Instant::now();
    let mut acc = 0.0;
    for _ in 0..1000 {
        acc += expected_distinct(1 << 20, 1 << 20);
    }
    let closed_ns = t0.elapsed().as_nanos() as f64 / 1000.0;
    let t1 = Instant::now();
    let mut acc2 = 0.0;
    for _ in 0..10 {
        acc2 += expected_distinct_stirling(512, 512);
    }
    let stirling_ns = t1.elapsed().as_nanos() as f64 / 10.0;
    println!("closed form @ n=q=2^20:   {closed_ns:.0} ns/eval (usable inside the optimizer)");
    println!("stirling sum @ n=q=512:   {stirling_ns:.0} ns/eval (O(r²) table; validation only)");
    let _ = (acc, acc2);
}
