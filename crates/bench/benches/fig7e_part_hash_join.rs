//! Figure 7e — partitioned hash-join: measured vs predicted misses and
//! time across the partition size `||Hj||` (paper §6.2).
//!
//! Inputs are pre-partitioned (the partitioning cost is Figure 7d's);
//! the join phase is measured as the per-partition hash-table size
//! sweeps from input-sized down to a few cache lines. Cost drops once
//! `||Hj|| ≤ C2`, again at the TLB reach, and at `||Hj|| ≤ C1`.

use gcm_bench::fig7;
use gcm_bench::table::Series;
use gcm_core::{CostModel, Region};
use gcm_engine::{ops, ExecContext};
use gcm_hardware::presets;
use gcm_workload::Workload;

fn main() {
    let spec = presets::origin2000();
    let model = CostModel::new(spec.clone());
    let cols = fig7::columns();
    let n: u64 = 1024 * 1024; // ||U|| = ||V|| = 8 MB
    let mut series = Series::new(
        format!(
            "Figure 7e — partitioned hash-join (x = ||Hj|| in KB; ||U|| = ||V|| = {} MB)",
            n * 8 / (1024 * 1024)
        ),
        &cols,
    );

    let (uk, vk) = Workload::new(77).join_pair(n as usize);
    let mut m = 1u64;
    while m <= 16_384 {
        let mut ctx = ExecContext::new(spec.clone());
        let u = ctx.relation_from_keys("U", &uk, 8);
        let v = ctx.relation_from_keys("V", &vk, 8);
        // Partition outside the measurement (Figure 7d covers that).
        let pu = ops::partition::hash_partition(&mut ctx, &u, m, "Up");
        let pv = ops::partition::hash_partition(&mut ctx, &v, m, "Vp");
        ctx.cold_caches();
        let (out, stats) =
            ctx.measure(|c| ops::part_hash_join::join_partitions(c, &pu, &pv, "W", 16));

        let table_slots = (2 * n / m).next_power_of_two();
        let hj_bytes = table_slots * 16;
        let parts = (0..m)
            .map(|j| {
                (
                    pu.rel.region().slice(m),
                    pv.rel.region().slice(m),
                    Region::new(format!("H{j}"), table_slots, 16),
                    out.region().slice(m),
                )
            })
            .collect();
        let pattern = gcm_core::library::partitioned_hash_join(parts);
        let report = model.report(&pattern);
        let pred_ops = 5 * n;

        series.row(&fig7::row(
            &spec,
            (hj_bytes / 1024) as f64,
            &stats.mem,
            stats.ops,
            &report,
            pred_ops,
        ));
        m *= 8;
    }
    series.print();
    fig7::summarize(&series);

    // The headline: join cost at cache-fitting partitions is a fraction
    // of the unpartitioned cost.
    let ms = series.column("ms meas").unwrap();
    let best = ms.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "join-phase speedup from partitioning: {:.1}x (unpartitioned {:.1} ms -> best {best:.1} ms)",
        ms[0] / best,
        ms[0]
    );
}
