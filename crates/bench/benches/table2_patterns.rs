//! Table 2 — sample data access patterns (paper §3.3).
//!
//! Prints the pattern-language description of every operator the library
//! models, in the paper's notation, instantiated for a representative
//! 1M-tuple workload.

use gcm_core::{library, Region};

fn main() {
    let n = 1_000_000u64;
    let u = Region::new("U", n, 8);
    let v = Region::new("V", n, 8);
    let h = Region::new("H", (2 * n).next_power_of_two(), 16);
    let w = Region::new("W", n, 8);
    let w16 = Region::new("W", n, 16);
    let g = Region::new("G", 1000, 16);
    let hp = Region::new("Up", n, 8);
    let vp = Region::new("Vp", n, 8);

    let rows: Vec<(&str, String)> = vec![
        ("scan(U)", library::scan(u.clone()).to_string()),
        (
            "select(U) -> W",
            library::select(u.clone(), w.clone()).to_string(),
        ),
        (
            "project(U, 8) -> W",
            library::project(u.clone(), 8, w.clone()).to_string(),
        ),
        (
            "build_hash(V) -> H",
            library::build_hash(v.clone(), h.clone()).to_string(),
        ),
        (
            "hash_join(U, V) -> W",
            library::hash_join(u.clone(), v.clone(), h.clone(), w16.clone()).to_string(),
        ),
        (
            "merge_join(U, V) -> W",
            library::merge_join(u.clone(), v.clone(), w16.clone()).to_string(),
        ),
        (
            "nl_join(U, V) -> W",
            library::nested_loop_join(u.clone(), v.clone(), w16.clone()).to_string(),
        ),
        ("quick_sort(U)  [first 3 depths]", {
            let p = library::quick_sort(Region::new("U", 16, 8));
            p.to_string()
        }),
        (
            "partition(U, 64) -> W",
            library::partition(u.clone(), w.clone(), 64).to_string(),
        ),
        (
            "range_partition(U, 64) -> W",
            library::range_partition(u.clone(), w.clone(), 64).to_string(),
        ),
        ("part_hash_join(U, V, m=4)", {
            // Show the 4-way version; larger fan-outs print analogously.
            library::partitioned_hash_join_uniform(u.clone(), v.clone(), w16.clone(), 4, 16)
                .to_string()
        }),
        (
            "hash_aggregate(U) -> G",
            library::hash_aggregate(u.clone(), g.clone(), w.clone()).to_string(),
        ),
        ("sort_aggregate(U) -> W", {
            let p = library::sort_aggregate(Region::new("U", 16, 8), w);
            p.to_string()
        }),
    ];

    println!("### Table 2 — operator descriptions in the pattern language\n");
    for (name, pattern) in rows {
        println!("{name}:");
        println!("    {pattern}\n");
    }
    let _ = (hp, vp);
}
