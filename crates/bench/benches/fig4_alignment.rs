//! Figure 4 — impact of alignment on the number of cache misses
//! (paper §4.2).
//!
//! An access of `u` bytes that starts at the beginning of a cache line
//! loads one line; shifted past `B − u`, it straddles two. This harness
//! demonstrates the effect directly on the simulator and prints the
//! measured misses for every alignment offset, next to the model's
//! uniform-alignment average (Eq 4.3's `lines_per_item`).

use gcm_core::misses::lines_per_item;
use gcm_hardware::presets;
use gcm_sim::MemorySystem;

fn main() {
    let spec = presets::origin2000();
    let b = spec.level("L1").unwrap().line; // 32 bytes
    println!("### Figure 4 — one access of u bytes at in-line offset a (L1, B = {b})\n");
    for u in [8u64, 16, 24, 32] {
        print!("u = {u:>2}: misses per offset a = ");
        let mut total = 0u64;
        for a in 0..b {
            let mut mem = MemorySystem::new(spec.clone());
            let base = mem.alloc_offset(u + b, b, a);
            let before = mem.snapshot();
            mem.read(base, u);
            let misses = mem.delta_since(&before).levels[0].seq_misses
                + mem.delta_since(&before).levels[0].rand_misses;
            total += misses;
            print!("{misses}");
        }
        let avg = total as f64 / b as f64;
        let model = lines_per_item(u, b as f64);
        println!("  | measured avg {avg:.4}, model {model:.4}");
    }
    println!(
        "\nEach digit is the L1 miss count of a single u-byte access at offset a=0..{};",
        b - 1
    );
    println!("the model's lines_per_item reproduces the average over alignments exactly.");
}
