//! Extension — the whole-plan optimizer against simulated reality.
//!
//! For a two-join star query at several scales, the optimizer
//! enumerates complete physical plans and prices each as one composed
//! pattern (Eq 5.2/5.3 across operator boundaries). Every enumerated
//! plan is then executed on the Origin2000 simulator; the table reports
//! how close the model-guided choice lands to the measured best — the
//! "choose the most suitable algorithm" use-case of §1, applied to
//! whole queries (§6).

use gcm_bench::table::Series;
use gcm_core::CostModel;
use gcm_engine::plan::{execute, LogicalPlan, Optimizer, TableStats};
use gcm_engine::planner::DEFAULT_PLANNER_PER_OP_NS;
use gcm_engine::ExecContext;
use gcm_hardware::presets;
use gcm_workload::Workload;

fn main() {
    let spec = presets::origin2000();
    let model = CostModel::new(spec.clone());
    let mut series = Series::new(
        "Extension — whole-plan optimizer: γ(σ(F) ⋈ D1 ⋈ D2), 50% selectivity \
         (x = fact tuples; times in ms)",
        &[
            "fact n",
            "plans",
            "pred chosen",
            "meas chosen",
            "meas best",
            "chosen/best",
        ],
    );

    for fact_n in [10_000usize, 40_000, 160_000] {
        let dim_n = fact_n / 4;
        let star = Workload::new(fact_n as u64).star_scenario(fact_n, dim_n, 2);
        let threshold = star.threshold(0.5);
        let logical = LogicalPlan::scan(0)
            .select_lt(threshold)
            .join(LogicalPlan::scan(1))
            .join(LogicalPlan::scan(2))
            .group_count();
        let stats = [
            TableStats::uniform(fact_n as u64, 8, dim_n as u64, false),
            TableStats::key_column(dim_n as u64, 8, false),
            TableStats::key_column(dim_n as u64, 8, false),
        ];
        let plans = Optimizer::new(&model)
            .enumerate(&logical, &stats)
            .expect("star query plans");

        let mut measured = Vec::new();
        for planned in &plans {
            let mut ctx = ExecContext::new(spec.clone());
            let tables = [
                ctx.relation_from_keys("F", &star.fact, 8),
                ctx.relation_from_keys("D1", &star.dims[0], 8),
                ctx.relation_from_keys("D2", &star.dims[1], 8),
            ];
            let (_, stats) = ctx.measure(|c| {
                execute(c, &planned.plan, &tables).expect("plan executes");
            });
            measured.push(stats.total_ns(DEFAULT_PLANNER_PER_OP_NS));
        }
        let chosen = measured[0];
        let best = measured.iter().copied().fold(f64::INFINITY, f64::min);
        series.row(&[
            fact_n as f64,
            plans.len() as f64,
            plans[0].total_ns() / 1e6,
            chosen / 1e6,
            best / 1e6,
            chosen / best,
        ]);
    }
    series.print();
    println!(
        "chosen/best = 1.0 means the whole-plan model picked the measured-fastest\n\
         physical plan; the enumerated alternatives differ by join algorithm\n\
         (nested-loop plans are beam-pruned before execution)."
    );
}
