//! Figure 7c — hash-join: measured vs predicted misses and time across
//! input sizes (paper §6.2).
//!
//! The signature effect: L2 and TLB misses jump once the hash table
//! `||H||` exceeds the respective capacity (`C2 = 4 MB`; TLB reach =
//! 1 MB). L1 shows no such step in the plotted range because every
//! table already exceeds the 32 KB L1 (the paper's footnote 7).

use gcm_bench::fig7;
use gcm_bench::table::Series;
use gcm_core::{CostModel, Region};
use gcm_engine::{ops, ExecContext};
use gcm_hardware::presets;
use gcm_workload::Workload;

fn main() {
    let spec = presets::origin2000();
    let model = CostModel::new(spec.clone());
    let cols = fig7::columns();
    let mut series = Series::new(
        "Figure 7c — hash-join (x = ||U|| = ||V|| in KB; H = open-addressing table, 16-byte entries)",
        &cols,
    );

    let kb = 1024u64;
    for size in [128 * kb, 512 * kb, 2048 * kb, 8192 * kb] {
        let n = size / 8;
        let mut ctx = ExecContext::new(spec.clone());
        let (uk, vk) = Workload::new(size).join_pair(n as usize);
        let u = ctx.relation_from_keys("U", &uk, 8);
        let v = ctx.relation_from_keys("V", &vk, 8);
        let (out, stats) = ctx.measure(|c| ops::hash::hash_join(c, &u, &v, "W", 16));

        let h = Region::new("H", (2 * n).next_power_of_two(), 16);
        let pattern = ops::hash::hash_join_pattern(u.region(), v.region(), &h, out.region());
        let report = model.report(&pattern);
        // CPU: ~2 probes per build insert + ~2 per probe + 1 per output.
        let pred_ops = 5 * n;

        series.row(&fig7::row(
            &spec,
            (size / kb) as f64,
            &stats.mem,
            stats.ops,
            &report,
            pred_ops,
        ));
    }
    series.print();
    fig7::summarize(&series);

    // Cliff checks: per-tuple L2 and TLB misses jump across ||H|| = C.
    for (metric, label) in [("L2 meas", "||H|| = C2"), ("TLB meas", "||H|| = TLB reach")] {
        let m = series.column(metric).unwrap();
        let xs = series.column("x").unwrap();
        let per_tuple: Vec<f64> = m.iter().zip(&xs).map(|(&v, &x)| v / (x * 128.0)).collect();
        let jumped = per_tuple.last().unwrap() > &(2.0 * per_tuple[0]);
        println!(
            "{label} cliff in {metric}: {} (per-tuple {:?})",
            if jumped {
                "reproduced"
            } else {
                "NOT reproduced"
            },
            per_tuple
                .iter()
                .map(|v| (v * 100.0).round() / 100.0)
                .collect::<Vec<_>>()
        );
    }
}
