//! Extension — predicted vs measured parallel speedup.
//!
//! A partition-parallel stage run by `d` worker threads is priced as the
//! `⊙`-composition of `d` per-thread patterns: shared cache levels are
//! divided among the threads by footprint (Eq 5.3 across cores), private
//! levels see only their own thread, and the stage's elapsed time is the
//! slowest thread (`CostModel::advance_parallel`). The measured side
//! runs real `std::thread::scope` workers, each over its own simulated
//! hierarchy on the machine's per-thread view (`gcm_engine::parallel`).
//!
//! For DOP ∈ {1, 2, 4} on the 4-core tiny SMP, the measured speedup must
//! land within 35% of the ⊙-predicted curve — for the parallel filter,
//! the parallel aggregation, and the partition-parallel hash join.
//! T_cpu uses Eq 6.1 with the run's logical-op counts (the paper's
//! calibrated-CPU convention).

use gcm_bench::table::Series;
use gcm_core::{CacheState, CostModel, Region};
use gcm_engine::parallel;
use gcm_hardware::presets;
use gcm_workload::Workload;

const PER_OP_NS: f64 = 4.0;
const TOLERANCE: f64 = 0.35;
const DOPS: [usize; 3] = [1, 2, 4];

struct Curve {
    name: &'static str,
    measured_ns: Vec<f64>,
    predicted_ns: Vec<f64>,
}

impl Curve {
    fn speedups(&self) -> (Vec<f64>, Vec<f64>) {
        let m: Vec<f64> = self
            .measured_ns
            .iter()
            .map(|t| self.measured_ns[0] / t)
            .collect();
        let p: Vec<f64> = self
            .predicted_ns
            .iter()
            .map(|t| self.predicted_ns[0] / t)
            .collect();
        (m, p)
    }
}

fn main() {
    let spec = presets::tiny_smp(4);
    let model = CostModel::new(spec.clone());
    let mut wl = Workload::new(4242);

    // --- Parallel filter over a far-beyond-cache table. ---
    let scan_keys = wl.shuffled_keys(131_072); // 1 MB
    let filter = {
        let n = scan_keys.len() as u64;
        let mut measured = Vec::new();
        let mut predicted = Vec::new();
        for &dop in &DOPS {
            let run = parallel::par_filter_lt(&spec, &scan_keys, n / 2, dop, PER_OP_NS);
            let u = Region::new("U", n, 8);
            let w = Region::new("W", run.out.len() as u64, 8);
            let threads = parallel::par_select_patterns(&u, &w, dop as u64);
            let par = model.advance_parallel(&threads, &mut model.staged(&CacheState::cold()));
            measured.push(run.wall_ns);
            predicted.push(par.wall_ns + PER_OP_NS * run.ops as f64 / dop as f64);
        }
        Curve {
            name: "filter",
            measured_ns: measured,
            predicted_ns: predicted,
        }
    };

    // --- Parallel aggregation with few (cache-resident) groups. ---
    let agg_keys = wl.uniform_keys_bounded(131_072, 512);
    let aggregate = {
        let n = agg_keys.len() as u64;
        let mut measured = Vec::new();
        let mut predicted = Vec::new();
        for &dop in &DOPS {
            let run = parallel::par_group_count(&spec, &agg_keys, dop, PER_OP_NS);
            let u = Region::new("U", n, 8);
            let w = Region::new("G", run.out.len() as u64, 16);
            let (threads, merge) =
                parallel::par_group_patterns(&u, run.out.len() as u64, &w, dop as u64);
            let mut st = model.staged(&CacheState::cold());
            let par = model.advance_parallel(&threads, &mut st);
            let merge_ns = model.advance(&merge, &mut st).mem_ns;
            measured.push(run.wall_ns);
            // The merge is sequential: its ops are charged at full,
            // only the thread-phase ops divide by the DOP.
            let thread_ops = (run.ops - run.serial_ops) as f64;
            predicted.push(
                par.wall_ns
                    + merge_ns
                    + PER_OP_NS * (thread_ops / dop as f64 + run.serial_ops as f64),
            );
        }
        Curve {
            name: "aggregate",
            measured_ns: measured,
            predicted_ns: predicted,
        }
    };

    // --- Partition-parallel hash join, 16-way partitioned. ---
    let (uk, vk) = wl.join_pair(32_768); // per side: 256 KB + tables
    let join = {
        let n = uk.len() as u64;
        let mut measured = Vec::new();
        let mut predicted = Vec::new();
        for &dop in &DOPS {
            let run = parallel::par_hash_join(&spec, &uk, &vk, 4, dop, PER_OP_NS);
            let u = Region::new("U", n, 8);
            let v = Region::new("V", n, 8);
            let w = Region::new("W", run.out.len() as u64, 16);
            let up = Region::new("Up", n, 8);
            let vp = Region::new("Vp", n, 8);
            let threads = parallel::par_hash_join_patterns(&u, &v, &w, &up, &vp, 16, dop as u64);
            let par = model.advance_parallel(&threads, &mut model.staged(&CacheState::cold()));
            measured.push(run.wall_ns);
            predicted.push(par.wall_ns + PER_OP_NS * run.ops as f64 / dop as f64);
        }
        Curve {
            name: "hash join",
            measured_ns: measured,
            predicted_ns: predicted,
        }
    };

    let mut series = Series::new(
        format!(
            "Extension — parallel speedup on {} (times in ms; speedup vs DOP 1)",
            spec.name
        ),
        &[
            "DOP",
            "filt meas",
            "filt pred",
            "agg meas",
            "agg pred",
            "join meas",
            "join pred",
            "join meas spd",
            "join pred spd",
        ],
    );
    let (jm, jp) = join.speedups();
    for (i, &dop) in DOPS.iter().enumerate() {
        series.row(&[
            dop as f64,
            filter.measured_ns[i] / 1e6,
            filter.predicted_ns[i] / 1e6,
            aggregate.measured_ns[i] / 1e6,
            aggregate.predicted_ns[i] / 1e6,
            join.measured_ns[i] / 1e6,
            join.predicted_ns[i] / 1e6,
            jm[i],
            jp[i],
        ]);
    }
    series.print();

    for curve in [&filter, &aggregate, &join] {
        let (m, p) = curve.speedups();
        for (i, &dop) in DOPS.iter().enumerate() {
            let ratio = m[i] / p[i];
            println!(
                "{:>9} DOP {dop}: measured speedup {:.2}x, ⊙-predicted {:.2}x (ratio {:.2})",
                curve.name, m[i], p[i], ratio
            );
            assert!(
                (ratio - 1.0).abs() <= TOLERANCE,
                "{} at DOP {dop}: measured speedup {:.2} deviates more than {:.0}% \
                 from the ⊙-predicted {:.2}",
                curve.name,
                m[i],
                TOLERANCE * 100.0,
                p[i]
            );
        }
    }
    println!(
        "\nmeasured speedups track the ⊙-composed predictions within {:.0}% \
         for DOP ∈ {{1, 2, 4}} ✓",
        TOLERANCE * 100.0
    );
    // Sanity: parallelism actually helps on this workload.
    let (jm, _) = join.speedups();
    assert!(jm[2] > 1.8, "4-way join speedup {:.2} too low", jm[2]);
}
