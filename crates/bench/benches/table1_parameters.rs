//! Table 1 — characteristic parameters per cache level (paper §2.3).
//!
//! Prints the unified-hardware-model parameter table for the paper's
//! experimentation platform (the Table-3 values slot into the Table-1
//! schema) plus the derived quantities (#lines, miss bandwidths).

use gcm_hardware::presets;

fn main() {
    for spec in [presets::origin2000(), presets::modern_commodity()] {
        println!("{}", spec.characteristics_table());
        println!("derived quantities:");
        for l in spec.levels() {
            println!(
                "  {:<5} #={:<8} b_s={:.0} MB/s  b_r={:.0} MB/s  l_s={:.0} cy  l_r={:.0} cy",
                l.name,
                l.lines(),
                l.seq_bandwidth() * 1000.0,
                l.rand_bandwidth() * 1000.0,
                spec.ns_to_cycles(l.seq_miss_ns),
                spec.ns_to_cycles(l.rand_miss_ns),
            );
        }
        println!();
    }
}
