//! Figure 7b — merge-join: measured vs predicted misses and time across
//! input sizes (paper §6.2).
//!
//! Both operands sorted, equal-sized, 1:1 match. Pure streaming: costs
//! are proportional to the data size and unaffected by cache capacities
//! (the paper's "single sequential access is not affected by cache
//! sizes").

use gcm_bench::fig7;
use gcm_bench::table::Series;
use gcm_core::CostModel;
use gcm_engine::{ops, ExecContext};
use gcm_hardware::presets;

fn main() {
    let spec = presets::origin2000();
    let model = CostModel::new(spec.clone());
    let cols = fig7::columns();
    let mut series = Series::new(
        "Figure 7b — merge-join (x = ||U|| = ||V|| in KB, 8-byte tuples, 16-byte output)",
        &cols,
    );

    let kb = 1024u64;
    for size in [128 * kb, 512 * kb, 2048 * kb, 8192 * kb, 32_768 * kb] {
        let n = size / 8;
        let mut ctx = ExecContext::new(spec.clone());
        let keys: Vec<u64> = (0..n).collect();
        let u = ctx.relation_from_keys("U", &keys, 8);
        let v = ctx.relation_from_keys("V", &keys, 8);
        let (out, stats) = ctx.measure(|c| ops::merge_join::merge_join(c, &u, &v, "W", 16));

        let pattern = ops::merge_join::merge_join_pattern(u.region(), v.region(), out.region());
        let report = model.report(&pattern);
        // CPU: one comparison per cursor advance plus one per output.
        let pred_ops = 2 * n + n;

        series.row(&fig7::row(
            &spec,
            (size / kb) as f64,
            &stats.mem,
            stats.ops,
            &report,
            pred_ops,
        ));
    }
    series.print();
    fig7::summarize(&series);

    // Linearity check: cost per input byte is flat across the sweep.
    let xs = series.column("x").unwrap();
    let ms = series.column("ms meas").unwrap();
    let per_kb: Vec<f64> = ms.iter().zip(&xs).map(|(&t, &x)| t / x).collect();
    let flat = per_kb
        .iter()
        .all(|&v| (v - per_kb[0]).abs() / per_kb[0] < 0.25);
    println!(
        "cost proportional to data size (no cache-size effect): {}",
        if flat { "reproduced" } else { "NOT reproduced" }
    );
}
