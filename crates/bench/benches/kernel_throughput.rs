//! Kernel throughput: the vectorized/prefetched native kernels vs the
//! scalar per-tuple reference path, with the calibrated overlap model's
//! prediction alongside.
//!
//! For each operator the same work runs twice on real host memory —
//! once through the kernel path (SIMD scan/filter, N-ahead software
//! prefetch on probes and scatters) and once through the scalar
//! reference ([`NativeBackend::scalar_reference`], the per-tuple
//! charged loops that are byte- and counter-identical to the
//! simulator's) — and the minimum of [`RUNS`] wall-clock times is kept.
//! Input materialization happens outside the measured interval.
//! Throughput is input bytes over wall time (1 byte/ns = 1 GB/s).
//!
//! Each path gets its own prediction on the host-calibrated spec:
//! the scalar reference is priced by the paper's additive Eq 6.1
//! (latency-derived sequential misses, scalar-calibrated per-op CPU),
//! the kernel path by the bandwidth-overlap extension at `α = 0`
//! (sequential misses at the calibrated sustained bandwidths, fully
//! overlapped with the kernel-calibrated per-op CPU) — the fast-path
//! number the optimizer would use.
//!
//! Results land in `BENCH_kernels.json` at the repo root so kernel
//! regressions stay visible across PRs. Two claims are *enforced* when
//! the SIMD dispatch is live: the scan kernel beats the scalar
//! reference by ≥ 2× on the large out-of-cache scan (per-tuple charged
//! loads cost several ns each; the kernel streams whole lines), and
//! the overlap model's fast-path prediction lands within
//! [`MODEL_BOUND`] (4×) of the measured kernel scan.

use gcm_calibrate::calibrate_host;
use gcm_core::{CostModel, CpuCost, Pattern, Region};
use gcm_engine::native::{calibrate_kernel_per_op_ns, calibrate_per_op_ns};
use gcm_engine::{kernels, ops, ExecContext, MemoryBackend, NativeBackend};
use gcm_workload::Workload;

/// Tuples in the large scan/filter input: 4 Mi keys = 32 MB, well past
/// any LLC this runs on.
const SCAN_N: usize = 4 * 1024 * 1024;

/// Fact/dimension sizes of the probe and partition cases: the hash
/// table (2·dim slots × 16 B = 8 MB) exceeds the LLC, so probes are
/// genuine random memory misses — the case N-ahead prefetch targets.
const FACT_N: usize = 1024 * 1024;
const DIM_N: usize = 256 * 1024;

/// Partition fan-out: past the TLB-entry and L1-line cliffs (§4.7), so
/// the scattered stores actually miss — the case write prefetch
/// targets.
const FANOUT: u64 = 4096;

/// Timed repetitions per case; the minimum is kept.
const RUNS: usize = 3;

/// Enforced agreement factor between the overlap model's fast-path
/// prediction and the measured kernel scan.
const MODEL_BOUND: f64 = 4.0;

struct Case {
    name: &'static str,
    bytes: u64,
    scalar_ns: f64,
    kernel_ns: f64,
    modeled_scalar_ns: f64,
    modeled_kernel_ns: f64,
}

/// A fresh context per run: kernel path with the given prefetch
/// distance, or the scalar reference.
fn fresh_ctx(kernel: bool, dist: u64) -> ExecContext<NativeBackend> {
    let mut b = NativeBackend::with_capacity(96 << 20);
    if kernel {
        b.set_prefetch_distance(dist);
    } else {
        b.set_use_kernels(false);
        b.set_prefetch_distance(0);
    }
    ExecContext::with_backend(b)
}

/// Minimum wall time of `RUNS` fresh executions: materialize inputs
/// with `setup` (outside the measured interval), measure `work`.
fn min_wall_ns(
    kernel: bool,
    dist: u64,
    keys: &[&[u64]],
    work: impl Fn(&mut ExecContext<NativeBackend>, &[gcm_engine::Relation]),
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..RUNS {
        let mut ctx = fresh_ctx(kernel, dist);
        let rels: Vec<gcm_engine::Relation> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| ctx.relation_from_keys(&format!("T{i}"), k, 8))
            .collect();
        let (_, stats) = ctx.measure(|c| work(c, &rels));
        best = best.min(NativeBackend::elapsed_ns(&stats.mem));
    }
    best
}

fn gbps(bytes: u64, ns: f64) -> f64 {
    bytes as f64 / ns.max(1e-9)
}

fn main() {
    // Calibrate once: the spec prices the modeled column, the probed
    // prefetch depth tunes the kernel contexts.
    let report = calibrate_host(16 * 1024 * 1024);
    let spec = report
        .to_spec("host (calibrated)", 1_000.0)
        .expect("calibrated spec");
    let model = CostModel::new(spec.clone());
    // Scalar path: the paper's additive Eq 6.1 (α = 1, latency-derived
    // sequential pricing). Kernel path: the overlap extension (α = 0,
    // sustained-bandwidth pricing, kernel-calibrated CPU).
    let ov_scalar = gcm_core::OverlapParams::eq61();
    let ov_kernel = report.overlap_params(0.0);
    let cpu_scalar = CpuCost::per_op(calibrate_per_op_ns());
    let cpu_kernel = CpuCost::per_op(calibrate_kernel_per_op_ns());
    let dist = if report.prefetch_depth > 0 {
        report.prefetch_depth
    } else {
        kernels::prefetch_distance_for(&spec)
    };

    let scan_keys = Workload::new(71).shuffled_keys(SCAN_N);
    let fact = Workload::new(72).uniform_keys_bounded(FACT_N, DIM_N as u64);
    let dim: Vec<u64> = (0..DIM_N as u64).collect();

    let modeled = |pattern: &Pattern, ops_est: u64| {
        (
            model
                .overlap_ns(pattern, cpu_scalar, ops_est, &ov_scalar)
                .total_ns,
            model
                .overlap_ns(pattern, cpu_kernel, ops_est, &ov_kernel)
                .total_ns,
        )
    };
    let both =
        |keys: &[&[u64]],
         work: &dyn Fn(&mut ExecContext<NativeBackend>, &[gcm_engine::Relation])| {
            (
                min_wall_ns(false, dist, keys, work),
                min_wall_ns(true, dist, keys, work),
            )
        };

    let mut cases: Vec<Case> = Vec::new();

    // --- scan: SIMD sum over 32 MB -----------------------------------
    {
        let (scalar_ns, kernel_ns) = both(&[&scan_keys], &|c, r| {
            std::hint::black_box(ops::scan::scan_sum(c, &r[0], 8));
        });
        let u = Region::new("U", SCAN_N as u64, 8);
        let (modeled_scalar_ns, modeled_kernel_ns) =
            modeled(&ops::scan::scan_pattern(&u, 8), SCAN_N as u64);
        cases.push(Case {
            name: "scan_sum",
            bytes: (SCAN_N * 8) as u64,
            scalar_ns,
            kernel_ns,
            modeled_scalar_ns,
            modeled_kernel_ns,
        });
    }

    // --- filter: SIMD select_lt at ~50% selectivity ------------------
    {
        let threshold = SCAN_N as u64 / 2;
        let (scalar_ns, kernel_ns) = both(&[&scan_keys], &move |c, r| {
            std::hint::black_box(ops::scan::select_lt(c, &r[0], threshold, "W"));
        });
        let u = Region::new("U", SCAN_N as u64, 8);
        let w = Region::new("W", threshold, 8);
        let (modeled_scalar_ns, modeled_kernel_ns) =
            modeled(&ops::scan::select_pattern(&u, &w), SCAN_N as u64);
        cases.push(Case {
            name: "select_lt",
            bytes: (SCAN_N * 8) as u64,
            scalar_ns,
            kernel_ns,
            modeled_scalar_ns,
            modeled_kernel_ns,
        });
    }

    // --- probe: hash join, prefetched table probes -------------------
    {
        let (scalar_ns, kernel_ns) = both(&[&fact, &dim], &|c, r| {
            std::hint::black_box(ops::hash::hash_join(c, &r[0], &r[1], "W", 16));
        });
        let u = Region::new("U", FACT_N as u64, 8);
        let v = Region::new("V", DIM_N as u64, 8);
        let h = Region::new(
            "H",
            ops::hash::table_slots(DIM_N as u64),
            ops::hash::ENTRY_BYTES,
        );
        let w = Region::new("W", FACT_N as u64, 16);
        let ops_est = ops::hash::build_ops(DIM_N as u64) + 5 * FACT_N as u64;
        let (modeled_scalar_ns, modeled_kernel_ns) =
            modeled(&ops::hash::hash_join_pattern(&u, &v, &h, &w), ops_est);
        cases.push(Case {
            name: "hash_probe",
            bytes: ((FACT_N + DIM_N) * 8) as u64,
            scalar_ns,
            kernel_ns,
            modeled_scalar_ns,
            modeled_kernel_ns,
        });
    }

    // --- partition: scatter with write prefetch ----------------------
    {
        let (scalar_ns, kernel_ns) = both(&[&fact], &|c, r| {
            std::hint::black_box(ops::partition::hash_partition(c, &r[0], FANOUT, "P"));
        });
        let u = Region::new("U", FACT_N as u64, 8);
        let p = Region::new("P", FACT_N as u64, 8);
        let (modeled_scalar_ns, modeled_kernel_ns) = modeled(
            &ops::partition::partition_pattern(&u, &p, FANOUT),
            FACT_N as u64,
        );
        cases.push(Case {
            name: "partition",
            bytes: (FACT_N * 8) as u64,
            scalar_ns,
            kernel_ns,
            modeled_scalar_ns,
            modeled_kernel_ns,
        });
    }

    println!(
        "kernel_throughput (dispatch: {:?}, prefetch distance: {dist})",
        kernels::active()
    );
    println!("operator     scalar GB/s (modeled)  kernel GB/s (modeled)  speedup");
    let mut rows = Vec::new();
    for c in &cases {
        let (s, k) = (gbps(c.bytes, c.scalar_ns), gbps(c.bytes, c.kernel_ns));
        let (ms, mk) = (
            gbps(c.bytes, c.modeled_scalar_ns),
            gbps(c.bytes, c.modeled_kernel_ns),
        );
        let speedup = c.scalar_ns / c.kernel_ns.max(1e-9);
        println!(
            "{:<12} {s:>11.2} {ms:>9.2} {k:>12.2} {mk:>9.2} {speedup:>8.2}x",
            c.name
        );
        rows.push(format!(
            "    {{\"operator\": \"{}\", \"input_bytes\": {}, \"scalar_gbps\": {s:.3}, \
             \"modeled_scalar_gbps\": {ms:.3}, \"kernel_gbps\": {k:.3}, \
             \"modeled_kernel_gbps\": {mk:.3}, \"speedup\": {speedup:.3}}}",
            c.name, c.bytes
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"kernel_throughput\",\n  \"dispatch\": \"{:?}\",\n  \
         \"prefetch_distance\": {dist},\n  \"results\": [\n{}\n  ]\n}}\n",
        kernels::active(),
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(path, json).expect("write BENCH_kernels.json");
    println!("wrote {path}");

    // The tentpole's acceptance bar: ≥ 2× on the large dense scan when
    // the SIMD dispatch is actually live (scalar dispatch — the
    // `--no-default-features` build or a pre-AVX2 machine — still runs
    // and records, but the claim is about the vectorized kernel).
    let scan = &cases[0];
    let speedup = scan.scalar_ns / scan.kernel_ns.max(1e-9);
    if matches!(kernels::active(), kernels::Dispatch::Simd) {
        assert!(
            speedup >= 2.0,
            "SIMD scan kernel must be ≥2× the scalar reference, got {speedup:.2}x"
        );
        let model_ratio = scan.modeled_kernel_ns / scan.kernel_ns.max(1e-9);
        assert!(
            (1.0 / MODEL_BOUND..MODEL_BOUND).contains(&model_ratio),
            "overlap model must price the kernel scan within {MODEL_BOUND}x, \
             got ratio {model_ratio:.2}"
        );
    }
}
