//! Plan-cache contention: hit-path throughput of the trie-backed
//! [`PlanCache`] vs the pre-trie mutex-around-a-`HashMap` baseline
//! ([`MutexPlanCache`], kept behind the `mutex-baseline` feature for
//! exactly this measurement).
//!
//! Setup: both caches are prefilled with [`PLANS`] distinct plan shapes
//! (one `select_lt` cut each). Measurement: 1 / 4 / 16 / 64 reader
//! threads hammer the hit path — every lookup must find its entry, the
//! optimize closure panics if invoked — and aggregate lookups/sec is
//! recorded per thread count. The trie's hit path is a wait-free
//! snapshot read, so its throughput should *scale* with readers; the
//! mutex serializes every hit, so its curve plateaus (or inverts) as
//! soon as there is real parallelism.
//!
//! Results land in `BENCH_contention.json` at the repo root so
//! throughput regressions stay visible across PRs (`BENCH_service.json`
//! belongs to the `service_latency` bench, which reports the serving
//! path's latency distribution). Scaling assertions are gated on
//! [`std::thread::available_parallelism`]: on a single-core runner the
//! numbers are still recorded, but no claim about scaling is enforced.

use gcm_core::CostModel;
use gcm_engine::plan::{optimize_and_lower, LogicalPlan, TableStats};
use gcm_hardware::presets;
use gcm_service::{MutexPlanCache, PlanCache};
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// Distinct cached plan shapes (one per `select_lt` cut).
const PLANS: u64 = 64;

/// Hit-path lookups per reader thread per measured run.
const LOOKUPS_PER_THREAD: u64 = 100_000;

/// Reader-thread counts swept.
const THREADS: [usize; 4] = [1, 4, 16, 64];

fn plans_and_stats() -> (Vec<LogicalPlan>, Vec<TableStats>) {
    let stats = vec![
        TableStats::uniform(2_000, 8, 400, false),
        TableStats::key_column(400, 8, false),
    ];
    let plans = (0..PLANS)
        .map(|i| {
            LogicalPlan::scan(0)
                .select_lt(2 + i * 6)
                .join(LogicalPlan::scan(1))
                .group_count()
        })
        .collect();
    (plans, stats)
}

fn main() {
    let (plans, stats) = plans_and_stats();
    let model = CostModel::new(presets::tiny_smp(4));

    let trie = Arc::new(PlanCache::new());
    let mutex = Arc::new(MutexPlanCache::new());
    for p in &plans {
        let key = (p.fingerprint(), 0);
        trie.get_or_optimize(key, p, || optimize_and_lower(&model, p, &stats))
            .expect("prefill optimizes");
        mutex
            .get_or_optimize(key, p, || optimize_and_lower(&model, p, &stats))
            .expect("prefill optimizes");
    }

    let run = |which: &str, threads: usize| -> f64 {
        let barrier = Barrier::new(threads);
        let plans = &plans;
        let (trie, mutex) = (&trie, &mutex);
        let start = Instant::now();
        std::thread::scope(|s| {
            for t in 0..threads {
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    for i in 0..LOOKUPS_PER_THREAD {
                        let p = &plans[((t as u64 + i) % PLANS) as usize];
                        let key = (p.fingerprint(), 0);
                        let got = match which {
                            "trie" => trie
                                .get_or_optimize(key, p, || panic!("hit path must not optimize")),
                            _ => mutex
                                .get_or_optimize(key, p, || panic!("hit path must not optimize")),
                        };
                        assert!(got.is_ok());
                    }
                });
            }
        });
        let secs = start.elapsed().as_secs_f64();
        (threads as u64 * LOOKUPS_PER_THREAD) as f64 / secs
    };

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("plan-cache hit-path contention ({cores} cores available)");
    println!(
        "{:>8} {:>16} {:>16} {:>8}",
        "threads", "trie (ops/s)", "mutex (ops/s)", "ratio"
    );
    let mut rows = Vec::new();
    for &t in &THREADS {
        let trie_ops = run("trie", t);
        let mutex_ops = run("mutex", t);
        println!(
            "{:>8} {:>16.0} {:>16.0} {:>8.2}",
            t,
            trie_ops,
            mutex_ops,
            trie_ops / mutex_ops
        );
        rows.push((t, trie_ops, mutex_ops));
    }

    // Scaling claim, only where there is real parallelism to claim it
    // on: with ≥ 4 cores, 4 trie readers must beat 1 (the wait-free hit
    // path scales); the mutex baseline is measured, not asserted.
    if cores >= 4 {
        let one = rows.iter().find(|r| r.0 == 1).unwrap().1;
        let four = rows.iter().find(|r| r.0 == 4).unwrap().1;
        assert!(
            four > one,
            "trie hit path failed to scale: {four:.0} ops/s at 4 threads vs {one:.0} at 1"
        );
        println!("\ntrie hit-path scaling 1→4 threads: {:.2}× ✓", four / one);
    } else {
        println!("\n(single-core runner: scaling assertion skipped, numbers recorded)");
    }

    // Record the sweep for cross-PR visibility.
    let mut json = String::from("{\n  \"bench\": \"plan_cache_contention\",\n");
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str(&format!("  \"plans\": {PLANS},\n"));
    json.push_str(&format!(
        "  \"lookups_per_thread\": {LOOKUPS_PER_THREAD},\n  \"results\": [\n"
    ));
    for (i, (t, trie_ops, mutex_ops)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"threads\": {t}, \"trie_lookups_per_sec\": {trie_ops:.0}, \
             \"mutex_lookups_per_sec\": {mutex_ops:.0}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_contention.json");
    std::fs::write(path, json).expect("write BENCH_contention.json");
    println!("wrote {path}");
}
