//! Figure 7a — quick-sort: measured vs predicted L1/L2/TLB misses and
//! execution time across table sizes (paper §6.2).
//!
//! The paper sweeps `||U||` from 128 KB to 128 MB on the Origin2000; we
//! sweep 128 KB to 32 MB on the simulated machine (same cliff structure:
//! the L2 step sits at `||U|| = C2 = 4 MB`, the TLB step at the 1 MB TLB
//! reach).

use gcm_bench::fig7;
use gcm_bench::table::Series;
use gcm_core::{CostModel, CpuCost};
use gcm_engine::{ops, ExecContext};
use gcm_hardware::presets;
use gcm_workload::Workload;

fn main() {
    let spec = presets::origin2000();
    let model = CostModel::new(spec.clone());
    let cols = fig7::columns();
    let mut series = Series::new(
        "Figure 7a — quick-sort (x = ||U|| in KB, 8-byte tuples)",
        &cols,
    );

    let kb = 1024u64;
    for size in [128 * kb, 512 * kb, 2048 * kb, 8192 * kb, 32_768 * kb] {
        let n = size / 8;
        let mut ctx = ExecContext::new(spec.clone());
        let keys = Workload::new(size).shuffled_keys(n as usize);
        let rel = ctx.relation_from_keys("U", &keys, 8);
        let (_, stats) = ctx.measure(|c| ops::sort::quick_sort(c, &rel));

        let pattern = ops::sort::quick_sort_pattern(rel.region());
        let report = model.report(&pattern);
        let pred_ops = ops::sort::quick_sort_expected_ops(n);

        series.row(&fig7::row(
            &spec,
            (size / kb) as f64,
            &stats.mem,
            stats.ops,
            &report,
            pred_ops,
        ));
    }
    series.print();
    fig7::summarize(&series);

    // The Figure-7a step: L2 misses per tuple jump once ||U|| > C2 (4 MB).
    let l2 = series.column("L2 meas").unwrap();
    let xs = series.column("x").unwrap();
    let per_tuple: Vec<f64> = l2.iter().zip(&xs).map(|(&m, &x)| m / (x * 128.0)).collect(); // n = x KB / 8
    println!(
        "L2 misses per tuple: {:?}",
        per_tuple
            .iter()
            .map(|v| (v * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    println!(
        "step at ||U|| = C2: {}",
        if per_tuple[4] > 2.0 * per_tuple[1] {
            "reproduced"
        } else {
            "NOT reproduced"
        }
    );

    // Eq 6.1 check: CPU + memory decomposition printed for the largest run.
    let cpu = CpuCost::per_op(fig7::PER_OP_NS);
    let n = 32_768 * kb / 8;
    let region = gcm_core::Region::new("U", n, 8);
    let pattern = ops::sort::quick_sort_pattern(&region);
    let t_mem = model.mem_ns(&pattern) / 1e6;
    let t_cpu = cpu.ns(ops::sort::quick_sort_expected_ops(n)) / 1e6;
    println!("largest run decomposition (Eq 6.1): T_mem = {t_mem:.1} ms, T_cpu = {t_cpu:.1} ms");
}
