//! Ablation — associativity / conflict misses.
//!
//! The analytical model assumes a fully-associative cache (it predicts
//! compulsory + capacity misses only; §2.1 notes conflict misses "are
//! the hardest to remove"). This ablation quantifies the resulting
//! error: the same workloads run on direct-mapped, 2-way, 8-way, and
//! fully-associative variants of the Origin2000, with the [HS89] miss
//! taxonomy recorded.

use gcm_bench::table::Series;
use gcm_engine::{ops, ExecContext};
use gcm_hardware::{presets, Associativity, HardwareSpec};
use gcm_workload::Workload;

fn with_assoc(assoc: Associativity) -> HardwareSpec {
    let base = presets::origin2000();
    let levels = base
        .levels()
        .iter()
        .cloned()
        .map(|mut l| {
            if l.kind == gcm_hardware::LevelKind::Cache {
                l.assoc = assoc;
            }
            l
        })
        .collect();
    HardwareSpec::new(format!("{} [{assoc:?}]", base.name), base.cpu_mhz, levels).expect("valid")
}

fn main() {
    let variants = [
        ("direct", with_assoc(Associativity::DirectMapped)),
        ("2-way", with_assoc(Associativity::Ways(2))),
        ("8-way", with_assoc(Associativity::Ways(8))),
        ("full", with_assoc(Associativity::Full)),
    ];
    let n: u64 = 256 * 1024; // 2 MB table

    let mut series = Series::new(
        "Ablation — conflict misses by associativity (quick-sort + hash-join, L1)",
        &[
            "variant",
            "qs L1 total",
            "qs L1 conflict",
            "hj L1 total",
            "hj L1 conflict",
        ],
    );

    for (i, (name, spec)) in variants.iter().enumerate() {
        let l1 = spec.level_index("L1").unwrap();

        let mut ctx = ExecContext::with_classification(spec.clone());
        let keys = Workload::new(1).shuffled_keys(n as usize);
        let rel = ctx.relation_from_keys("U", &keys, 8);
        let (_, qs) = ctx.measure(|c| ops::sort::quick_sort(c, &rel));

        let mut ctx2 = ExecContext::with_classification(spec.clone());
        let (uk, vk) = Workload::new(2).join_pair((n / 4) as usize);
        let u = ctx2.relation_from_keys("U", &uk, 8);
        let v = ctx2.relation_from_keys("V", &vk, 8);
        let (_, hj) = ctx2.measure(|c| ops::hash::hash_join(c, &u, &v, "W", 16));

        let qs_l1 = &qs.mem.levels[l1];
        let hj_l1 = &hj.mem.levels[l1];
        series.row(&[
            i as f64,
            (qs_l1.seq_misses + qs_l1.rand_misses) as f64,
            qs_l1.conflict_misses as f64,
            (hj_l1.seq_misses + hj_l1.rand_misses) as f64,
            hj_l1.conflict_misses as f64,
        ]);
        println!("variant {i} = {name}");
    }
    series.print();

    let totals = series.column("qs L1 total").unwrap();
    let conflicts = series.column("qs L1 conflict").unwrap();
    let err = (totals[0] - totals[3]).abs() / totals[3] * 100.0;
    println!(
        "conflict misses: {:.0} on direct-mapped vs 0 on fully-associative \
         (which the model assumes); net total-miss deviation stays {err:.1}% on \
         these workloads because conflicts partly displace the capacity misses \
         LRU's cyclic pathology would otherwise cause — the reason the paper can \
         afford to ignore conflicts in the formulas (§2.1).",
        conflicts[0]
    );
}
