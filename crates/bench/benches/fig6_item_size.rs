//! Figure 6 — impact of `R.w` (item size) and `||R||` (region size) on
//! cache misses (paper §4.4).
//!
//! Four panels: (a) L1 / (b) L2 misses of a sequential traversal, (c) L1
//! / (d) L2 misses of a random traversal, each for item sizes 1…256 B at
//! several region sizes around the respective capacity. Reproduces the
//! §4.4 invariants: sequential misses depend only on `||R||` while the
//! gaps stay below the line size; random misses explode once `||R||`
//! exceeds the capacity; and for gaps ≥ line size the two coincide.

use gcm_bench::{exec, table::Series};
use gcm_core::{CostModel, Pattern, Region};
use gcm_hardware::presets;
use gcm_sim::MemorySystem;
use gcm_workload::Workload;

fn measure(
    spec: &gcm_hardware::HardwareSpec,
    bytes: u64,
    w: u64,
    random: bool,
    level: usize,
) -> u64 {
    let n = bytes / w;
    let mut mem = MemorySystem::new(spec.clone());
    let base = mem.alloc(bytes + 256, 4096);
    let before = mem.snapshot();
    if random {
        let perm = Workload::new(bytes ^ w).permutation(n as usize);
        exec::r_trav(&mut mem, base, w, w, &perm);
    } else {
        exec::s_trav(&mut mem, base, n, w, w);
    }
    let d = mem.delta_since(&before);
    d.levels[level].seq_misses + d.levels[level].rand_misses
}

fn main() {
    let spec = presets::origin2000();
    let model = CostModel::new(spec.clone());
    let kb = 1024u64;
    let mb = 1024 * kb;
    let widths: Vec<u64> = (0..=8).map(|i| 1u64 << i).collect();

    let panels: [(&str, &str, bool, Vec<u64>); 4] = [
        (
            "a) s_trav, L1",
            "L1",
            false,
            vec![16 * kb, 24 * kb, 32 * kb, 40 * kb, 64 * kb],
        ),
        (
            "b) s_trav, L2",
            "L2",
            false,
            vec![2 * mb, 6 * mb, 8 * mb, 12 * mb, 16 * mb],
        ),
        (
            "c) r_trav, L1",
            "L1",
            true,
            vec![16 * kb, 24 * kb, 32 * kb, 40 * kb, 64 * kb],
        ),
        (
            "d) r_trav, L2",
            "L2",
            true,
            vec![2 * mb, 6 * mb, 8 * mb, 12 * mb, 16 * mb],
        ),
    ];

    for (panel, level, random, sizes) in panels {
        let li = spec.level_index(level).unwrap();
        let mut columns: Vec<String> = vec!["R.w".into()];
        for &s in &sizes {
            let label = if s >= mb {
                format!("{}MB", s / mb)
            } else {
                format!("{}kB", s / kb)
            };
            columns.push(format!("meas {label}"));
            columns.push(format!("model {label}"));
        }
        let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
        let mut series = Series::new(format!("Figure 6{panel}"), &col_refs);
        for &w in &widths {
            let mut row = vec![w as f64];
            for &bytes in &sizes {
                let measured = measure(&spec, bytes, w, random, li) as f64;
                let region = Region::new("R", bytes / w, w);
                let pattern = if random {
                    Pattern::r_trav(region)
                } else {
                    Pattern::s_trav(region)
                };
                let predicted = model.misses(&pattern)[li].total();
                row.push(measured);
                row.push(predicted);
            }
            series.row(&row);
        }
        series.print();
    }

    println!("Invariant checks (paper §4.4):");
    // s_trav at fixed ||R||: invariant to w (within 2 % across widths).
    let li = spec.level_index("L1").unwrap();
    let base = measure(&spec, 32 * kb, 1, false, li) as f64;
    let ok_flat = widths.iter().all(|&w| {
        let m = measure(&spec, 32 * kb, w, false, li) as f64;
        (m - base).abs() / base < 0.02
    });
    println!(
        "  s_trav invariant to item size at fixed ||R||: {}",
        yesno(ok_flat)
    );
    // r_trav == s_trav while the region fits the cache.
    let fits_r = measure(&spec, 16 * kb, 8, true, li);
    let fits_s = measure(&spec, 16 * kb, 8, false, li);
    println!(
        "  r_trav == s_trav for fitting regions: {} ({fits_r} vs {fits_s})",
        yesno(fits_r == fits_s)
    );
    // r_trav >> s_trav once ||R|| exceeds the capacity.
    let big_r = measure(&spec, 64 * kb, 8, true, li);
    let big_s = measure(&spec, 64 * kb, 8, false, li);
    println!(
        "  r_trav > s_trav for oversized regions: {} ({big_r} vs {big_s})",
        yesno(big_r > big_s)
    );
}

fn yesno(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "NO"
    }
}
