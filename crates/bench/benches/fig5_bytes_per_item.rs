//! Figure 5 — impact of `u` (bytes accessed per item) and alignment on
//! cache misses (paper §4.2/§4.3).
//!
//! A region of `n` items of width 256 B is traversed touching
//! `u = 1…256` bytes per item, sequentially and randomly, at the two
//! extreme alignments (`align=0`: region starts on a line boundary;
//! `align=-1`: region starts on the last byte of a line) and averaged
//! over sampled alignments. The model curves are Eq 4.2 (all lines),
//! Eq 4.3/4.5 (per-item lines, alignment-averaged) and Eq 4.4.

use gcm_bench::{exec, table::Series};
use gcm_core::{CostModel, Pattern, Region};
use gcm_hardware::presets;
use gcm_sim::MemorySystem;
use gcm_workload::Workload;

const N: u64 = 65_536;
const W: u64 = 256;

fn measure(
    spec: &gcm_hardware::HardwareSpec,
    offset: u64,
    u: u64,
    perm: Option<&[usize]>,
) -> Vec<u64> {
    let mut mem = MemorySystem::new(spec.clone());
    let base = mem.alloc_offset(N * W + 256, 4096, offset);
    let before = mem.snapshot();
    match perm {
        None => exec::s_trav(&mut mem, base, N, W, u),
        Some(p) => exec::r_trav(&mut mem, base, W, u, p),
    }
    let d = mem.delta_since(&before);
    d.levels
        .iter()
        .map(|l| l.seq_misses + l.rand_misses)
        .collect()
}

fn main() {
    let spec = presets::origin2000();
    let model = CostModel::new(spec.clone());
    let perm = Workload::new(5).permutation(N as usize);
    let us: Vec<u64> = (0..=8).map(|i| 1u64 << i).collect(); // 1..256

    for (panel, level) in [("a) L1 misses", "L1"), ("b) L2 misses", "L2")] {
        let li = spec.level_index(level).unwrap();
        let b = spec.level(level).unwrap().line;
        let mut series = Series::new(
            format!("Figure 5{panel} (R.n = {N}, R.w = {W} B)"),
            &[
                "u",
                "s_trav align=0",
                "s_trav align=-1",
                "s_trav avg",
                "r_trav avg",
                "model s_trav",
                "model r_trav",
            ],
        );
        for &u in &us {
            let align0 = measure(&spec, 0, u, None)[li];
            let alignm1 = measure(&spec, b - 1, u, None)[li];
            // Average measured over 8 sampled alignments.
            let offsets: Vec<u64> = (0..8).map(|k| k * b / 8).collect();
            let s_avg: f64 = offsets
                .iter()
                .map(|&o| measure(&spec, o, u, None)[li] as f64)
                .sum::<f64>()
                / offsets.len() as f64;
            let r_avg: f64 = offsets
                .iter()
                .map(|&o| measure(&spec, o, u, Some(&perm))[li] as f64)
                .sum::<f64>()
                / offsets.len() as f64;

            let region = Region::new("R", N, W);
            let m_s = model.misses(&Pattern::s_trav_u(region.clone(), u))[li].total();
            let m_r = model.misses(&Pattern::r_trav_u(region, u))[li].total();
            series.row(&[
                u as f64,
                align0 as f64,
                alignm1 as f64,
                s_avg,
                r_avg,
                m_s,
                m_r,
            ]);
        }
        series.print();
        // Shape check: the model's average must sit between the two
        // alignment extremes wherever they differ.
        let a0 = series.column("s_trav align=0").unwrap();
        let a1 = series.column("s_trav align=-1").unwrap();
        let ms = series.column("model s_trav").unwrap();
        let ok = a0
            .iter()
            .zip(&a1)
            .zip(&ms)
            .all(|((&lo, &hi), &m)| m >= lo.min(hi) * 0.98 && m <= lo.max(hi) * 1.02);
        println!(
            "model within alignment envelope: {}\n",
            if ok { "yes" } else { "NO" }
        );
    }
}
