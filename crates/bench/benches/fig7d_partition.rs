//! Figure 7d — partitioning: measured vs predicted misses and time
//! across the fan-out `m` (paper §6.2).
//!
//! The input size is fixed; `m` sweeps from 2 to the tuple count. The
//! cost cliffs every time `m` exceeds a level's entry/line count:
//! TLB (64 entries), then L1 (1024 lines), then L2 (32768 lines) — the
//! paper's `m = #3, #1, #2` annotations.

use gcm_bench::fig7;
use gcm_bench::table::Series;
use gcm_core::CostModel;
use gcm_engine::{ops, ExecContext};
use gcm_hardware::presets;
use gcm_workload::Workload;

fn main() {
    let spec = presets::origin2000();
    let model = CostModel::new(spec.clone());
    let cols = fig7::columns();
    // Paper: ||U|| = 96 MB; we use 16 MB (2M tuples) — same cliff
    // structure, a sixth of the simulation time.
    let n: u64 = 2 * 1024 * 1024;
    let mut series = Series::new(
        format!(
            "Figure 7d — partitioning (x = m; ||U|| = {} MB)",
            n * 8 / (1024 * 1024)
        ),
        &cols,
    );

    let mut m = 2u64;
    while m <= n {
        let mut ctx = ExecContext::new(spec.clone());
        let keys = Workload::new(m).shuffled_keys(n as usize);
        let input = ctx.relation_from_keys("U", &keys, 8);
        let (parts, stats) = ctx.measure(|c| ops::partition::hash_partition(c, &input, m, "W"));

        let pattern = ops::partition::partition_pattern(input.region(), parts.rel.region(), m);
        let report = model.report(&pattern);
        let pred_ops = n; // one bucket computation per tuple

        series.row(&fig7::row(
            &spec, m as f64, &stats.mem, stats.ops, &report, pred_ops,
        ));
        m *= 8;
    }
    series.print();
    fig7::summarize(&series);

    // Cliff positions: each level's misses at the largest m exceed the
    // m=2 baseline by a large factor.
    for (metric, lines) in [("TLB meas", 64u64), ("L1 meas", 1024), ("L2 meas", 32768)] {
        let col = series.column(metric).unwrap();
        let ratio = col.last().unwrap() / col[0].max(1.0);
        println!("{metric}: misses grow {ratio:.0}x across the m sweep (cliff at m = {lines})");
    }
}
