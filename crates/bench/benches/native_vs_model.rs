//! Extension — the calibrate → model → **native-measure** loop as a
//! bench target: calibrate this machine's hierarchy with real pointer
//! chases, price plans with the cost model instantiated from the
//! calibrated parameters, execute the same plans on the native backend
//! (real buffers, wall clock), and report predicted vs measured.
//!
//! Assertions (documented bounds, sized for wall-clock noise on shared
//! runners):
//!
//! * every plan's predicted total lands within 10× of its measured wall
//!   (the enforced check, same bound as `tests/native_vs_model.rs` now
//!   that calibration recovers sustained bandwidths and the TLB);
//! * measured walls grow monotonically with the input size for the
//!   scan curve (structure, immune to constant factors);
//! * sim- and native-backend outputs of every plan are byte-identical.

use gcm_calibrate::calibrate_host;
use gcm_core::{CostModel, CpuCost};
use gcm_engine::native::calibrate_per_op_ns;
use gcm_engine::plan::{run_on, PhysicalPlan, TableDef};
use gcm_engine::planner::JoinAlgorithm;
use gcm_engine::{ExecContext, MemoryBackend, NativeBackend};
use gcm_hardware::presets;
use gcm_workload::Workload;

const BOUND: f64 = 10.0;

fn predict_measure(
    model: &CostModel,
    per_op: f64,
    plan: &PhysicalPlan,
    tables: &[TableDef],
) -> (f64, f64, u64) {
    let mut native = ExecContext::native();
    let (run, stats) = run_on(&mut native, plan, tables).expect("plan executes natively");
    let predicted = CpuCost::per_op(per_op).eq61_ns(model.mem_ns(&run.pattern), stats.ops);
    let measured = NativeBackend::elapsed_ns(&stats.mem);
    // Result equality against the simulated backend.
    let mut sim = ExecContext::new(presets::tiny());
    let (sim_run, _) = run_on(&mut sim, plan, tables).expect("plan executes on sim");
    assert_eq!(
        native.relation_bytes(&run.output),
        sim.relation_bytes(&sim_run.output),
        "backend outputs must be byte-identical"
    );
    (predicted, measured, run.output.n())
}

fn main() {
    let report = calibrate_host(16 * 1024 * 1024);
    let spec = report
        .to_spec("host (calibrated)", 1_000.0)
        .expect("calibrated spec");
    let model = CostModel::new(spec);
    let per_op = calibrate_per_op_ns();
    println!(
        "calibrated {} level(s), per-op {per_op:.3} ns",
        report.caches.len()
    );
    println!(
        "{:<28} {:>14} {:>14} {:>7}",
        "plan", "predicted[ms]", "measured[ms]", "ratio"
    );

    // Scan curve: measured wall must grow with n. Each size takes the
    // minimum of three runs — a scheduler preemption only ever *adds*
    // time, and a single inflated small-n wall would fake a
    // monotonicity violation on a busy shared runner.
    let mut scan_walls = Vec::new();
    for n in [20_000usize, 80_000, 320_000] {
        let star = Workload::new(5).star_scenario(n, 1_000, 1);
        let tables = vec![TableDef::new("F", star.fact, 8)];
        let plan = PhysicalPlan::scan(0).select_lt(500).group_count();
        let (p, m, _) = (0..3)
            .map(|_| predict_measure(&model, per_op, &plan, &tables))
            .reduce(|best, run| if run.1 < best.1 { run } else { best })
            .expect("three runs");
        let ratio = p / m;
        println!(
            "{:<28} {:>14.3} {:>14.3} {:>7.2}",
            format!("scan n={n}"),
            p / 1e6,
            m / 1e6,
            ratio
        );
        assert!(
            (1.0 / BOUND..BOUND).contains(&ratio),
            "scan n={n}: ratio {ratio:.3} outside {BOUND}x"
        );
        scan_walls.push(m);
    }
    assert!(
        scan_walls.windows(2).all(|w| w[0] < w[1]),
        "scan walls must grow with n: {scan_walls:?}"
    );

    // Join plans at a fixed size.
    let star = Workload::new(6).star_scenario(120_000, 12_000, 1);
    let tables = vec![
        TableDef::new("F", star.fact, 8),
        TableDef::new("D", star.dims[0].clone(), 8),
    ];
    for (name, plan) in [
        (
            "hash join",
            PhysicalPlan::scan(0)
                .select_lt(8_000)
                .join_with(PhysicalPlan::scan(1), JoinAlgorithm::Hash)
                .group_count(),
        ),
        (
            "part. hash join m=32",
            PhysicalPlan::scan(0)
                .join_with(
                    PhysicalPlan::scan(1),
                    JoinAlgorithm::PartitionedHash { m: 32 },
                )
                .group_count(),
        ),
        (
            "sort-merge join",
            PhysicalPlan::scan(0).select_lt(6_000).join_with(
                PhysicalPlan::scan(1),
                JoinAlgorithm::Merge {
                    sort_u: true,
                    sort_v: true,
                },
            ),
        ),
    ] {
        let (p, m, rows) = predict_measure(&model, per_op, &plan, &tables);
        let ratio = p / m;
        println!(
            "{name:<28} {:>14.3} {:>14.3} {:>7.2}  ({rows} rows)",
            p / 1e6,
            m / 1e6,
            ratio
        );
        assert!(
            (1.0 / BOUND..BOUND).contains(&ratio),
            "{name}: ratio {ratio:.3} outside {BOUND}x"
        );
    }
    println!("native_vs_model: all plans within {BOUND}x, outputs byte-identical ✓");
}
