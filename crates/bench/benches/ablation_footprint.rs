//! Ablation — footprint-proportional cache division in `⊙` (Eq 5.3).
//!
//! The full model grants each concurrently executing pattern a cache
//! share proportional to its footprint; the ablated variant splits the
//! cache evenly. The difference shows on asymmetric combinations like
//! hash-join's probe phase (`s_trav ⊙ r_acc(H) ⊙ s_trav`): an even split
//! would give the two streaming cursors two thirds of the cache, halving
//! the hash table's effective capacity and moving the predicted cliff.

use gcm_bench::table::Series;
use gcm_core::{eval, CacheState, CostModel, Geometry, Pattern, Region};
use gcm_engine::{ops, ExecContext};
use gcm_hardware::presets;
use gcm_workload::Workload;

/// Evaluate with even cache division instead of footprints.
fn even_split_ns(spec: &gcm_hardware::HardwareSpec, p: &Pattern) -> f64 {
    fn eval_even(p: &Pattern, geo: &Geometry, st: &mut CacheState) -> gcm_core::MissPair {
        match p {
            Pattern::Seq(ps) => {
                let mut total = gcm_core::MissPair::default();
                for c in ps {
                    total += eval_even(c, geo, st);
                }
                total
            }
            Pattern::Repeat { k, inner } => {
                if *k == 0 {
                    return gcm_core::MissPair::default();
                }
                let first = eval_even(inner, geo, st);
                if *k == 1 {
                    return first;
                }
                let steady = eval_even(inner, geo, st);
                first + steady * (*k - 1) as f64
            }
            Pattern::Conc(ps) => {
                let share = 1.0 / ps.len() as f64;
                let sub = geo.scaled(share);
                let mut total = gcm_core::MissPair::default();
                for c in ps {
                    let mut s = st.clone();
                    total += eval_even(c, &sub, &mut s);
                }
                total
            }
            basic => eval::eval_level(basic, geo, st),
        }
    }
    spec.levels()
        .iter()
        .map(|lvl| {
            let mut st = CacheState::cold();
            let m = eval_even(p, &Geometry::of(lvl), &mut st);
            m.seq * lvl.seq_miss_ns + m.rand * lvl.rand_miss_ns
        })
        .sum()
}

fn main() {
    let spec = presets::origin2000();
    let model = CostModel::new(spec.clone());
    let mut series = Series::new(
        "Ablation — Eq 5.3 footprint division vs even split (hash-join, memory ms)",
        &[
            "||H|| KB",
            "measured ms",
            "footprint model ms",
            "even-split model ms",
        ],
    );

    for n in [64 * 1024u64, 128 * 1024, 256 * 1024, 512 * 1024] {
        let mut ctx = ExecContext::new(spec.clone());
        let (uk, vk) = Workload::new(n).join_pair(n as usize);
        let u = ctx.relation_from_keys("U", &uk, 8);
        let v = ctx.relation_from_keys("V", &vk, 8);
        let (out, stats) = ctx.measure(|c| ops::hash::hash_join(c, &u, &v, "W", 16));
        let slots = (2 * n).next_power_of_two();
        let h = Region::new("H", slots, 16);
        let p = ops::hash::hash_join_pattern(u.region(), v.region(), &h, out.region());
        series.row(&[
            (slots * 16 / 1024) as f64,
            stats.mem.clock_ns / 1e6,
            model.mem_ns(&p) / 1e6,
            even_split_ns(&spec, &p) / 1e6,
        ]);
    }
    series.print();
    println!(
        "around ||H|| ≈ C2 = 4096 KB the even split halves the table's effective \
         cache and over-predicts the cliff; footprints keep the prediction close."
    );
}
