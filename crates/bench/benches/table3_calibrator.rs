//! Table 3 — hardware characteristics measured by the Calibrator
//! (paper §6.1).
//!
//! Runs the blind calibration pipeline against the simulated SGI
//! Origin2000 and prints configured-vs-calibrated values — the
//! reproduction of the paper's Table 3 methodology ([MBK00b]).

use gcm_calibrate::{comparison_table, Calibrator};
use gcm_hardware::presets;

fn main() {
    for (spec, max) in [
        (presets::origin2000(), 16 * 1024 * 1024u64),
        (presets::tiny(), 128 * 1024),
    ] {
        let mut cal = Calibrator::new(spec.clone(), max);
        let report = cal.run();
        println!("{}", comparison_table(&spec, &report));
    }
}
