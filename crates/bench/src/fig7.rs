//! Shared scaffolding for the Figure-7 validation benches: each plots
//! measured (simulator) vs predicted (model) L1/L2/TLB misses and total
//! time across a parameter sweep, on the Origin2000 preset.

use crate::table::Series;
use gcm_core::CostReport;
use gcm_hardware::HardwareSpec;
use gcm_sim::Snapshot;

/// Engine CPU calibration: one logical operation per CPU cycle at the
/// Origin2000's 250 MHz (paper §6.1 calibrates `T_cpu` per algorithm
/// in-cache; the simulator's logical-op counter plays that role here).
pub const PER_OP_NS: f64 = 4.0;

/// The standard Figure-7 column set.
pub fn columns() -> Vec<&'static str> {
    vec![
        "x", "L1 meas", "L1 pred", "L2 meas", "L2 pred", "TLB meas", "TLB pred", "ms meas",
        "ms pred",
    ]
}

/// Build one comparison row.
///
/// * measured: simulator interval counters + logical ops (time =
///   charged memory ns + `PER_OP_NS`·ops, the engine-side Eq 6.1);
/// * predicted: model report + predicted logical ops.
pub fn row(
    spec: &HardwareSpec,
    x: f64,
    measured: &Snapshot,
    measured_ops: u64,
    predicted: &CostReport,
    predicted_ops: u64,
) -> Vec<f64> {
    let idx = |name: &str| spec.level_index(name).expect("level exists");
    let meas = |name: &str| {
        let l = &measured.levels[idx(name)];
        (l.seq_misses + l.rand_misses) as f64
    };
    let pred = |name: &str| predicted.level(name).expect("level exists").misses();
    let ms_meas = (measured.clock_ns + PER_OP_NS * measured_ops as f64) / 1e6;
    let ms_pred = (predicted.mem_ns + PER_OP_NS * predicted_ops as f64) / 1e6;
    vec![
        x,
        meas("L1"),
        pred("L1"),
        meas("L2"),
        pred("L2"),
        meas("TLB"),
        pred("TLB"),
        ms_meas,
        ms_pred,
    ]
}

/// Print the per-metric geometric-mean prediction ratios for a finished
/// series (prediction quality summary, like the paper's "the models
/// accurately predict the actual behavior").
pub fn summarize(series: &Series) {
    for metric in ["L1", "L2", "TLB", "ms"] {
        let meas = series.column(&format!("{metric} meas")).expect("column");
        let pred = series.column(&format!("{metric} pred")).expect("column");
        let g = crate::table::geomean_ratio(&pred, &meas);
        println!("  {metric:>4}: geometric-mean predicted/measured = {g:.2}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcm_core::{CostModel, Pattern, Region};
    use gcm_hardware::presets;
    use gcm_sim::MemorySystem;

    #[test]
    fn row_layout_matches_columns() {
        let spec = presets::origin2000();
        let mut mem = MemorySystem::new(spec.clone());
        let base = mem.alloc(4096, 64);
        let before = mem.snapshot();
        mem.read(base, 4096);
        let measured = mem.delta_since(&before);
        let model = CostModel::new(spec.clone());
        let report = model.report(&Pattern::s_trav(Region::new("R", 512, 8)));
        let r = row(&spec, 1.0, &measured, 100, &report, 100);
        assert_eq!(r.len(), columns().len());
        assert!(r[1] > 0.0); // L1 measured
        assert!(r[7] > 0.0); // time measured
    }
}
