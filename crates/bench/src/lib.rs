//! # gcm-bench — shared experiment harness
//!
//! Code shared by the table/figure bench targets and the integration
//! tests:
//!
//! * [`exec`] — *pattern executors*: programs that drive the memory
//!   simulator with exactly the access sequence a basic pattern
//!   describes. They are the "measured" side of Figures 5 and 6.
//! * [`compare`] — measured-vs-predicted assertion helpers with explicit
//!   tolerances.
//! * [`table`] — plain-text series printing in the paper's layout.

pub mod compare;
pub mod exec;
pub mod fig7;
pub mod table;
