//! Pattern executors: drive the simulator with exactly the access
//! sequence each basic pattern (paper §3.2) describes.
//!
//! Every function touches `u` bytes of each `w`-byte item of a region at
//! `base`, in the order the pattern prescribes. Randomised orders are
//! taken as explicit argument slices so runs are deterministic and the
//! same order can be replayed across configurations.

use gcm_sim::{Addr, MemorySystem};

/// `s_trav(R, u)`: one forward sequential sweep.
pub fn s_trav(mem: &mut MemorySystem, base: Addr, n: u64, w: u64, u: u64) {
    for i in 0..n {
        mem.read(base + i * w, u);
    }
}

/// A single backward sweep (for bi-directional repetitions).
pub fn s_trav_rev(mem: &mut MemorySystem, base: Addr, n: u64, w: u64, u: u64) {
    for i in (0..n).rev() {
        mem.read(base + i * w, u);
    }
}

/// `rs_trav(k, d, R, u)`: `k` sweeps, uni- or bi-directional.
pub fn rs_trav(mem: &mut MemorySystem, base: Addr, n: u64, w: u64, u: u64, k: u64, bi: bool) {
    for rep in 0..k {
        if bi && rep % 2 == 1 {
            s_trav_rev(mem, base, n, w, u);
        } else {
            s_trav(mem, base, n, w, u);
        }
    }
}

/// `r_trav(R, u)`: touch every item once, in the order of `perm`
/// (a permutation of `0..n`).
pub fn r_trav(mem: &mut MemorySystem, base: Addr, w: u64, u: u64, perm: &[usize]) {
    for &i in perm {
        mem.read(base + i as u64 * w, u);
    }
}

/// `rr_trav(k, R, u)`: `k` independent random traversals.
pub fn rr_trav(mem: &mut MemorySystem, base: Addr, w: u64, u: u64, perms: &[Vec<usize>]) {
    for perm in perms {
        r_trav(mem, base, w, u, perm);
    }
}

/// `r_acc(R, q, u)`: random accesses with replacement, per `indices`.
pub fn r_acc(mem: &mut MemorySystem, base: Addr, w: u64, u: u64, indices: &[usize]) {
    for &i in indices {
        mem.read(base + i as u64 * w, u);
    }
}

/// `nest(R, m, s_trav, rnd)`: `m` local sequential cursors over equal
/// sub-regions; the global cursor visits them in the order of `picks`
/// (one entry per access; each value `< m` must occur exactly
/// `n/m` times for a full traversal).
pub fn nest_seq(
    mem: &mut MemorySystem,
    base: Addr,
    n: u64,
    w: u64,
    u: u64,
    m: u64,
    picks: &[usize],
) {
    let per = n / m;
    let mut cursors = vec![0u64; m as usize];
    for &j in picks {
        let local = cursors[j];
        debug_assert!(local < per, "cursor {j} overflow");
        cursors[j] += 1;
        let item = j as u64 * per + local;
        mem.write(base + item * w, u);
    }
}

/// A balanced random pick sequence for [`nest_seq`]: each of the `m`
/// cursors appears exactly `n/m` times, in deterministic shuffled order.
pub fn balanced_picks(n: u64, m: u64, seed: u64) -> Vec<usize> {
    let per = n / m;
    let mut picks: Vec<usize> = (0..m as usize)
        .flat_map(|j| std::iter::repeat_n(j, per as usize))
        .collect();
    let mut wl = gcm_workload::Workload::new(seed);
    wl.shuffle(&mut picks);
    picks
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcm_hardware::presets;

    fn mem() -> MemorySystem {
        MemorySystem::new(presets::tiny())
    }

    #[test]
    fn s_trav_touches_expected_lines() {
        let mut m = mem();
        let base = m.alloc(8192, 64);
        s_trav(&mut m, base, 1024, 8, 8);
        assert_eq!(m.stats_for("L1").unwrap().misses(), 256); // 8192/32
    }

    #[test]
    fn rs_trav_bi_reuses_turning_point() {
        let mut m = mem();
        let base = m.alloc(8192, 64); // 4× L1
        rs_trav(&mut m, base, 1024, 8, 8, 3, true);
        let bi = m.stats_for("L1").unwrap().misses();
        let mut m2 = mem();
        let base2 = m2.alloc(8192, 64);
        rs_trav(&mut m2, base2, 1024, 8, 8, 3, false);
        let uni = m2.stats_for("L1").unwrap().misses();
        assert!(bi < uni, "bi {bi} < uni {uni}");
    }

    #[test]
    fn r_trav_visits_everything_once() {
        let mut m = mem();
        let base = m.alloc(1024, 64);
        let perm = gcm_workload::Workload::new(3).permutation(128);
        r_trav(&mut m, base, 8, 8, &perm);
        assert_eq!(m.stats_for("L1").unwrap().accesses, 128);
    }

    #[test]
    fn nest_writes_each_slot_once() {
        let mut m = mem();
        let n = 256u64;
        let base = m.alloc(n * 8, 64);
        let picks = balanced_picks(n, 8, 42);
        assert_eq!(picks.len(), 256);
        nest_seq(&mut m, base, n, 8, 8, 8, &picks);
        assert_eq!(m.stats_for("L1").unwrap().accesses, 256);
    }

    #[test]
    fn balanced_picks_are_balanced() {
        let picks = balanced_picks(1000, 10, 1);
        for j in 0..10 {
            assert_eq!(picks.iter().filter(|&&p| p == j).count(), 100);
        }
    }
}
