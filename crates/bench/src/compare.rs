//! Measured-vs-predicted comparison with explicit tolerances.

use gcm_core::MissPair;
use gcm_hardware::HardwareSpec;
use gcm_sim::Snapshot;

/// Result of comparing one level's measured misses with the prediction.
#[derive(Debug, Clone)]
pub struct LevelComparison {
    /// Level name.
    pub name: String,
    /// Simulator-measured misses.
    pub measured: f64,
    /// Model-predicted misses.
    pub predicted: f64,
}

impl LevelComparison {
    /// `predicted / measured` (∞ when measured is 0 but predicted is not).
    pub fn ratio(&self) -> f64 {
        if self.measured == 0.0 {
            if self.predicted.abs() < 1e-9 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.predicted / self.measured
        }
    }

    /// True if prediction is within `rel` relative error, ignoring levels
    /// with fewer than `abs_floor` measured misses (tiny counts are
    /// dominated by edge effects the model deliberately averages away).
    pub fn within(&self, rel: f64, abs_floor: f64) -> bool {
        if self.measured < abs_floor && self.predicted < abs_floor {
            return true;
        }
        let denom = self.measured.max(abs_floor);
        ((self.predicted - self.measured) / denom).abs() <= rel
    }
}

/// Compare per-level measured (snapshot delta) and predicted miss
/// counts.
pub fn compare_levels(
    spec: &HardwareSpec,
    measured: &Snapshot,
    predicted: &[MissPair],
) -> Vec<LevelComparison> {
    spec.levels()
        .iter()
        .zip(&measured.levels)
        .zip(predicted)
        .map(|((lvl, m), p)| LevelComparison {
            name: lvl.name.clone(),
            measured: (m.seq_misses + m.rand_misses) as f64,
            predicted: p.total(),
        })
        .collect()
}

/// Assert all levels agree within tolerance; panics with a full table
/// otherwise. `rel` is the allowed relative error, `abs_floor` the miss
/// count below which a level is exempt.
pub fn assert_levels_close(
    spec: &HardwareSpec,
    measured: &Snapshot,
    predicted: &[MissPair],
    rel: f64,
    abs_floor: f64,
    context: &str,
) {
    let rows = compare_levels(spec, measured, predicted);
    let bad: Vec<&LevelComparison> = rows.iter().filter(|r| !r.within(rel, abs_floor)).collect();
    if !bad.is_empty() {
        let mut msg = format!("{context}: model diverges from simulator\n");
        for r in &rows {
            msg.push_str(&format!(
                "  {:<5} measured {:>12.0} predicted {:>12.0} (ratio {:.2})\n",
                r.name,
                r.measured,
                r.predicted,
                r.ratio()
            ));
        }
        panic!("{msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_within() {
        let c = LevelComparison {
            name: "L1".into(),
            measured: 100.0,
            predicted: 110.0,
        };
        assert!((c.ratio() - 1.1).abs() < 1e-12);
        assert!(c.within(0.15, 1.0));
        assert!(!c.within(0.05, 1.0));
    }

    #[test]
    fn small_counts_are_exempt() {
        let c = LevelComparison {
            name: "TLB".into(),
            measured: 2.0,
            predicted: 8.0,
        };
        assert!(c.within(0.10, 10.0));
        assert!(!c.within(0.10, 1.0));
    }

    #[test]
    fn zero_measured_zero_predicted_is_fine() {
        let c = LevelComparison {
            name: "L2".into(),
            measured: 0.0,
            predicted: 0.0,
        };
        assert_eq!(c.ratio(), 1.0);
        assert!(c.within(0.01, 1.0));
    }
}
