//! Plain-text series printing in the layout of the paper's figures:
//! one row per x-value, measured and predicted columns per metric.

use std::fmt::Write as _;

/// A printable experiment series: named columns, one row per x-value.
#[derive(Debug, Default)]
pub struct Series {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<f64>>,
}

impl Series {
    /// A series titled `title` with the given column names (the first
    /// column is the x-axis).
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Series {
        Series {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the column count).
    pub fn row(&mut self, values: &[f64]) {
        assert_eq!(values.len(), self.columns.len(), "row width mismatch");
        self.rows.push(values.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Access a column by name.
    pub fn column(&self, name: &str) -> Option<Vec<f64>> {
        let idx = self.columns.iter().position(|c| c == name)?;
        Some(self.rows.iter().map(|r| r[idx]).collect())
    }

    /// Render the paper-style table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}", self.title);
        let header: Vec<String> = self.columns.iter().map(|c| format!("{c:>16}")).collect();
        let _ = writeln!(out, "{}", header.join(" "));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .map(|v| {
                    if v.abs() >= 1e6 {
                        format!("{:>16.3e}", v)
                    } else if v.fract() == 0.0 {
                        format!("{:>16.0}", v)
                    } else {
                        format!("{:>16.2}", v)
                    }
                })
                .collect();
            let _ = writeln!(out, "{}", cells.join(" "));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Geometric-mean ratio of two columns (prediction quality summary).
pub fn geomean_ratio(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    let mut n = 0usize;
    for (&x, &y) in a.iter().zip(b) {
        if x > 0.0 && y > 0.0 {
            acc += (x / y).ln();
            n += 1;
        }
    }
    if n == 0 {
        1.0
    } else {
        (acc / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rows() {
        let mut s = Series::new("demo", &["x", "measured", "predicted"]);
        s.row(&[1.0, 100.0, 105.0]);
        s.row(&[2.0, 200.0, 210.0]);
        let out = s.render();
        assert!(out.contains("demo"));
        assert!(out.contains("measured"));
        assert!(out.contains("105"));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn column_extraction() {
        let mut s = Series::new("demo", &["x", "y"]);
        s.row(&[1.0, 10.0]);
        s.row(&[2.0, 20.0]);
        assert_eq!(s.column("y").unwrap(), vec![10.0, 20.0]);
        assert!(s.column("z").is_none());
    }

    #[test]
    fn geomean() {
        let g = geomean_ratio(&[2.0, 8.0], &[1.0, 2.0]);
        assert!((g - (2.0f64 * 4.0).sqrt()).abs() < 1e-12);
        assert_eq!(geomean_ratio(&[], &[]), 1.0);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut s = Series::new("demo", &["x", "y"]);
        s.row(&[1.0]);
    }
}
